// Tests for the nn module: linear, layer norm, GELU, and the sparse-
// attention transformer encoder layer.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/linear.hpp"
#include "nn/transformer_layer.hpp"
#include "sparse/build.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::nn {
namespace {

TEST(LinearTest, IdentityWeightPassesThrough) {
  Linear lin(4, 4);
  for (Index i = 0; i < 4; ++i) lin.weight()(i, i) = 1.0f;
  Matrix<float> x(3, 4), y(3, 4);
  Rng rng(1);
  fill_uniform(x, rng);
  lin.apply(x, y);
  EXPECT_EQ(max_abs_diff(x, y), 0.0);
}

TEST(LinearTest, BiasIsAdded) {
  Linear lin(2, 3);
  lin.bias() = {1.0f, 2.0f, 3.0f};
  Matrix<float> x(1, 2), y(1, 3);
  lin.apply(x, y);  // zero input -> bias only
  EXPECT_FLOAT_EQ(y(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 3.0f);
}

TEST(LinearTest, XavierInitIsBoundedAndDeterministic) {
  Linear a(64, 32), b(64, 32);
  Rng r1(7), r2(7);
  a.init(r1);
  b.init(r2);
  const float bound = std::sqrt(6.0f / (64 + 32));
  for (Index i = 0; i < 32; ++i) {
    for (Index j = 0; j < 64; ++j) {
      EXPECT_LE(std::abs(a.weight()(i, j)), bound);
      EXPECT_EQ(a.weight()(i, j), b.weight()(i, j));
    }
  }
}

TEST(LinearTest, ShapeMismatchThrows) {
  Linear lin(4, 4);
  Matrix<float> x(3, 5), y(3, 4);
  EXPECT_THROW(lin.apply(x, y), InvalidArgument);
}

TEST(LayerNormTest, OutputRowsAreNormalised) {
  LayerNorm ln(16);
  Matrix<float> x(8, 16), y(8, 16);
  Rng rng(9);
  fill_uniform(x, rng);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 16; ++j) x(i, j) = x(i, j) * 10.0f - 3.0f;
  }
  ln.apply(x, y);
  for (Index i = 0; i < 8; ++i) {
    float mean = 0, var = 0;
    for (Index j = 0; j < 16; ++j) mean += y(i, j);
    mean /= 16;
    for (Index j = 0; j < 16; ++j) var += (y(i, j) - mean) * (y(i, j) - mean);
    var /= 16;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(LayerNormTest, ConstantRowMapsToZeros) {
  LayerNorm ln(8);
  Matrix<float> x(1, 8), y(1, 8);
  x.fill(5.0f);
  ln.apply(x, y);
  for (Index j = 0; j < 8; ++j) EXPECT_NEAR(y(0, j), 0.0f, 1e-3f);
}

TEST(GeluTest, KnownValues) {
  Matrix<float> x(1, 3);
  x(0, 0) = 0.0f;
  x(0, 1) = 100.0f;   // passes through
  x(0, 2) = -100.0f;  // clamps to ~0
  gelu_inplace(x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.0f);
  EXPECT_NEAR(x(0, 1), 100.0f, 1e-3f);
  EXPECT_NEAR(x(0, 2), 0.0f, 1e-3f);
}

class TransformerLayerFixture : public ::testing::Test {
 protected:
  static constexpr Index kL = 64;
  static constexpr Index kD = 32;

  TransformerLayer make_layer(AttentionOptions attn = {}) {
    TransformerLayerConfig cfg;
    cfg.embed_dim = kD;
    cfg.num_heads = 4;
    cfg.ffn_dim = 64;
    cfg.attention = attn;
    TransformerLayer layer(cfg, build_csr_local(kL, LocalParams{6}));
    Rng rng(31);
    layer.init(rng);
    return layer;
  }

  Matrix<float> make_input(std::uint64_t seed) {
    Matrix<float> x(kL, kD);
    Rng rng(seed);
    fill_uniform(x, rng);
    return x;
  }
};

TEST_F(TransformerLayerFixture, ForwardProducesFiniteOutput) {
  const auto layer = make_layer();
  const auto x = make_input(11);
  Matrix<float> y(kL, kD);
  layer.forward(x, y);
  for (Index i = 0; i < kL; ++i) {
    for (Index j = 0; j < kD; ++j) EXPECT_TRUE(std::isfinite(y(i, j)));
  }
}

TEST_F(TransformerLayerFixture, DeterministicAcrossRuns) {
  const auto layer = make_layer();
  const auto x = make_input(12);
  Matrix<float> y1(kL, kD), y2(kL, kD);
  layer.forward(x, y1);
  layer.forward(x, y2);
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0);
}

TEST_F(TransformerLayerFixture, OutputDependsOnDistantTokensViaGlobal) {
  // With a pure local mask, perturbing token L-1 cannot affect token 0
  // (reach 5 < distance). Adding a global token makes it reachable.
  const auto x = make_input(13);
  auto x_perturbed = x;
  x_perturbed(kL - 1, 0) += 1.0f;

  const auto local_layer = make_layer();
  Matrix<float> y1(kL, kD), y2(kL, kD);
  local_layer.forward(x, y1);
  local_layer.forward(x_perturbed, y2);
  float row0_diff = 0;
  for (Index j = 0; j < kD; ++j) row0_diff += std::abs(y1(0, j) - y2(0, j));
  EXPECT_EQ(row0_diff, 0.0f);  // unreachable under the local mask

  TransformerLayerConfig cfg;
  cfg.embed_dim = kD;
  cfg.num_heads = 4;
  cfg.ffn_dim = 64;
  const auto preset = make_longformer(kL, 5, 1);  // token 0 global
  TransformerLayer global_layer(cfg, preset.fused);
  Rng rng(31);
  global_layer.init(rng);
  // Token 0 is global -> attends to everything, including token L-1.
  global_layer.forward(x, y1);
  global_layer.forward(x_perturbed, y2);
  row0_diff = 0;
  for (Index j = 0; j < kD; ++j) row0_diff += std::abs(y1(0, j) - y2(0, j));
  EXPECT_GT(row0_diff, 0.0f);
}

TEST_F(TransformerLayerFixture, CausalOptionRestrictsInformationFlow) {
  const auto x = make_input(14);
  auto x_perturbed = x;
  x_perturbed(10, 0) += 1.0f;  // perturb token 10

  AttentionOptions causal;
  causal.causal = true;
  const auto layer = make_layer(causal);
  Matrix<float> y1(kL, kD), y2(kL, kD);
  layer.forward(x, y1);
  layer.forward(x_perturbed, y2);
  // Tokens before 10 must be unaffected.
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < kD; ++j) EXPECT_EQ(y1(i, j), y2(i, j)) << "token " << i;
  }
  // Token 10 itself must change.
  float diff10 = 0;
  for (Index j = 0; j < kD; ++j) diff10 += std::abs(y1(10, j) - y2(10, j));
  EXPECT_GT(diff10, 0.0f);
}

TEST_F(TransformerLayerFixture, ParameterCountMatchesFormula) {
  const auto layer = make_layer();
  // 4·(32² + 32) + (32·64 + 64) + (64·32 + 32) + 2·64
  EXPECT_EQ(layer.parameter_count(), 4u * (1024 + 32) + (2048 + 64) + (2048 + 32) + 128u);
}

TEST_F(TransformerLayerFixture, RejectsWrongSequenceLength) {
  const auto layer = make_layer();
  Matrix<float> x(kL / 2, kD), y(kL / 2, kD);
  EXPECT_THROW(layer.forward(x, y), InvalidArgument);
}

TEST(TransformerLayerValidation, HeadDivisibilityEnforced) {
  TransformerLayerConfig cfg;
  cfg.embed_dim = 30;
  cfg.num_heads = 4;  // 30 % 4 != 0
  EXPECT_THROW(TransformerLayer(cfg, build_csr_local(8, LocalParams{2})), InvalidArgument);
}

}  // namespace
}  // namespace gpa::nn
