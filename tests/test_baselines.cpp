// Tests for the comparison baselines: masked SDP, FlashAttention-style
// tiled attention, and block-sparse flash — each against the exact
// reference, plus the structural properties the paper's analysis uses.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/block_sparse_flash.hpp"
#include "baselines/flash_attention.hpp"
#include "baselines/reference_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

class SdpVsReference : public ::testing::TestWithParam<double> {};

TEST_P(SdpVsReference, MatchesAtAllSparsities) {
  const Index L = 96, d = 24;
  const auto in = make_inputs(L, d, 400);
  const auto mask = build_csr_random(L, RandomParams{GetParam(), 21});
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  baselines::sdp_masked_attention(in.q, in.k, in.v, mask, got);
  const auto rep = allclose(got, expected, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "Sf=" << GetParam() << " diff " << rep.max_abs_diff;
}

INSTANTIATE_TEST_SUITE_P(Sparsities, SdpVsReference,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0));

TEST(SdpTest, FullyMaskedRowsAreZero) {
  const Index L = 32, d = 8;
  const auto in = make_inputs(L, d, 401);
  Matrix<std::uint8_t> mask(L, L);
  mask.zero();
  for (Index j = 0; j < L; ++j) mask(0, j) = 1;  // only row 0 attends
  Matrix<float> out(L, d);
  baselines::sdp_masked_attention(in.q, in.k, in.v, mask, out);
  for (Index j = 0; j < d; ++j) EXPECT_NE(out(0, j), 0.0f);
  for (Index i = 1; i < L; ++i) {
    for (Index j = 0; j < d; ++j) EXPECT_EQ(out(i, j), 0.0f);
  }
}

class FlashTileSweep : public ::testing::TestWithParam<Index> {};

TEST_P(FlashTileSweep, MatchesDenseReferenceForAnyTileWidth) {
  const Index L = 128, d = 32;
  const auto in = make_inputs(L, d, 402);
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention_dense(in.q, in.k, in.v, expected);
  baselines::FlashConfig cfg;
  cfg.tile_cols = GetParam();
  baselines::flash_attention(in.q, in.k, in.v, got, {}, cfg);
  const auto rep = allclose(got, expected, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "tile=" << GetParam() << " diff " << rep.max_abs_diff;
}

INSTANTIATE_TEST_SUITE_P(TileWidths, FlashTileSweep,
                         ::testing::Values<Index>(1, 16, 64, 127, 128, 200));

TEST(FlashTest, HalfPrecisionStorage) {
  const Index L = 64, d = 16;
  const auto in = make_inputs(L, d, 403);
  Matrix<float> expected(L, d);
  baselines::reference_attention_dense(in.q, in.k, in.v, expected);
  Matrix<half_t> got_h(L, d);
  baselines::flash_attention(to_f16(in.q), to_f16(in.k), to_f16(in.v), got_h);
  const auto rep = allclose(to_f32(got_h), expected, 5e-3, 5e-3);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST(FlashTest, AgreesWithSdpOnDenseMask) {
  const Index L = 80, d = 16;
  const auto in = make_inputs(L, d, 404);
  Matrix<std::uint8_t> ones(L, L);
  ones.fill(1);
  Matrix<float> sdp(L, d), flash(L, d);
  baselines::sdp_masked_attention(in.q, in.k, in.v, ones, sdp);
  baselines::flash_attention(in.q, in.k, in.v, flash);
  EXPECT_TRUE(allclose(flash, sdp, 1e-5, 1e-6).all_close);
}

TEST(BlockSparseFlashTest, MatchesReferenceOnStructuredMasks) {
  const Index L = 128, d = 16;
  const auto in = make_inputs(L, d, 405);
  for (const double sf : {0.02, 0.1}) {
    const auto mask = build_csr_random(L, RandomParams{sf, 31});
    Matrix<float> expected(L, d), got(L, d);
    baselines::reference_attention(in.q, in.k, in.v, mask, expected);
    baselines::block_sparse_flash_attention(in.q, in.k, in.v, mask, got, {},
                                            baselines::BlockSparseConfig{32});
    const auto rep = allclose(got, expected, 1e-5, 1e-6);
    EXPECT_TRUE(rep.all_close) << "Sf=" << sf << " diff " << rep.max_abs_diff;
  }
}

TEST(BlockSparseFlashTest, LocalMaskWithVariousBlocks) {
  const Index L = 96, d = 8;
  const auto in = make_inputs(L, d, 406);
  const auto mask = build_csr_local(L, LocalParams{5});
  Matrix<float> expected(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  for (const Index block : {8, 16, 33, 96}) {
    Matrix<float> got(L, d);
    baselines::block_sparse_flash_attention(in.q, in.k, in.v, mask, got, {},
                                            baselines::BlockSparseConfig{block});
    const auto rep = allclose(got, expected, 1e-5, 1e-6);
    EXPECT_TRUE(rep.all_close) << "block=" << block << " diff " << rep.max_abs_diff;
  }
}

TEST(BlockOccupancyTest, CountsLiveBlocksOnDiagonalMask) {
  // Diagonal mask, block 4 on L=16 -> only the 4 diagonal blocks live.
  const auto mask = build_csr_local(16, LocalParams{1});
  const auto occ = baselines::analyze_blocks(mask, 4);
  EXPECT_EQ(occ.grid, 4);
  EXPECT_EQ(occ.live_blocks, 4u);
  // 16 nnz spread over 4 live blocks of 16 cells: density 1/4.
  EXPECT_DOUBLE_EQ(occ.in_block_density, 0.25);
}

TEST(BlockOccupancyTest, DensityOneForAlignedDenseBlocks) {
  const auto p = make_dilated2d(16, 4, 0);  // dense 4-aligned groups
  const auto mask = build_csr_dilated2d(p);
  const auto occ = baselines::analyze_blocks(mask, 4);
  EXPECT_DOUBLE_EQ(occ.in_block_density, 1.0);
}

TEST(BlockOccupancyTest, QuantifiesBlockWaste) {
  // The §III critique: low in-block density == wasted O(d) work per zero
  // entry. A very sparse random mask in large blocks is nearly all waste.
  const auto mask = build_csr_random(256, RandomParams{0.005, 3});
  const auto occ = baselines::analyze_blocks(mask, 64);
  EXPECT_LT(occ.in_block_density, 0.05);
}

}  // namespace
}  // namespace gpa
