// Correctness of the six graph-processing kernels against the exact
// dense reference across mask patterns, sequence lengths, head
// dimensions, storage types, and SIMD dispatch arms — the heart of the
// verification story.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

// The paper's allclose tolerances (§V-A). Single-precision accumulation
// differs from the double-precision oracle by more than atol=1e-8 on
// long rows, so an fp32-appropriate bound is used here; the exact
// paper protocol lives in test_verification_protocol.cpp.
constexpr double kRtol = 1e-5;
constexpr double kAtol = 1e-6;

/// The SIMD axis of the verification matrix: the scalar arm always, plus
/// every vector arm this build + CPU can run.
const std::vector<SimdLevel>& simd_axis() {
  static const std::vector<SimdLevel> levels = simd::available_levels();
  return levels;
}

class KernelVsReference : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(KernelVsReference, CsrArbitraryMask) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 101);
  const auto mask = build_csr_random(L, RandomParams{0.15, 5});
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  for (const SimdLevel level : simd_axis()) {
    SCOPED_TRACE(simd::level_name(level));
    AttentionOptions opts;
    opts.policy.simd = level;
    csr_attention(in.q, in.k, in.v, mask, got, opts);
    const auto rep = allclose(got, expected, kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  }
}

TEST_P(KernelVsReference, CooArbitraryMaskBothSearches) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 102);
  const auto csr = build_csr_random(L, RandomParams{0.2, 6});
  const auto coo = csr_to_coo(csr);
  Matrix<float> expected(L, d);
  baselines::reference_attention(in.q, in.k, in.v, csr, expected);
  for (const SimdLevel level : simd_axis()) {
    for (const CooSearch search : {CooSearch::Linear, CooSearch::Binary}) {
      AttentionOptions opts;
      opts.coo_search = search;
      opts.policy.simd = level;
      Matrix<float> got(L, d);
      coo_attention(in.q, in.k, in.v, coo, got, opts);
      const auto rep = allclose(got, expected, kRtol, kAtol);
      EXPECT_TRUE(rep.all_close) << simd::level_name(level) << " search="
                                 << static_cast<int>(search) << " diff " << rep.max_abs_diff;
    }
  }
}

TEST_P(KernelVsReference, LocalWindow) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 103);
  const LocalParams p{5};
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, build_csr_local(L, p), expected);
  for (const SimdLevel level : simd_axis()) {
    SCOPED_TRACE(simd::level_name(level));
    AttentionOptions opts;
    opts.policy.simd = level;
    local_attention(in.q, in.k, in.v, p, got, opts);
    const auto rep = allclose(got, expected, kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  }
}

TEST_P(KernelVsReference, Dilated1D) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 104);
  const Dilated1DParams p{9, 2};
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, build_csr_dilated1d(L, p), expected);
  for (const SimdLevel level : simd_axis()) {
    SCOPED_TRACE(simd::level_name(level));
    AttentionOptions opts;
    opts.policy.simd = level;
    dilated1d_attention(in.q, in.k, in.v, p, got, opts);
    const auto rep = allclose(got, expected, kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  }
}

TEST_P(KernelVsReference, Dilated2D) {
  const auto [L, d] = GetParam();
  if (L % 8 != 0) GTEST_SKIP() << "2D pattern requires b | L";
  const auto in = make_inputs(L, d, 105);
  const auto p = make_dilated2d(L, 8, 1);
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, build_csr_dilated2d(p), expected);
  for (const SimdLevel level : simd_axis()) {
    SCOPED_TRACE(simd::level_name(level));
    AttentionOptions opts;
    opts.policy.simd = level;
    dilated2d_attention(in.q, in.k, in.v, p, got, opts);
    const auto rep = allclose(got, expected, kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  }
}

TEST_P(KernelVsReference, GlobalMinusLocal) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 106);
  GlobalMinusLocalParams p;
  p.global = make_global({0, L / 2}, L);
  p.local = make_local(3);
  const auto mask =
      build_csr_from_predicate(L, [&](Index i, Index j) { return p.contains(i, j); });
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  for (const SimdLevel level : simd_axis()) {
    SCOPED_TRACE(simd::level_name(level));
    AttentionOptions opts;
    opts.policy.simd = level;
    global_attention(in.q, in.k, in.v, p, got, opts);
    const auto rep = allclose(got, expected, kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, KernelVsReference,
                         ::testing::Values(std::make_tuple<Index, Index>(16, 8),
                                           std::make_tuple<Index, Index>(64, 32),
                                           std::make_tuple<Index, Index>(128, 16),
                                           std::make_tuple<Index, Index>(96, 64),
                                           std::make_tuple<Index, Index>(256, 32)));

TEST(KernelEdgeCases, EmptyMaskProducesZeroOutput) {
  const auto in = make_inputs(32, 8, 107);
  Csr<float> empty;
  empty.rows = empty.cols = 32;
  empty.row_offsets.assign(33, 0);
  Matrix<float> got(32, 8);
  got.fill(7.0f);  // poison
  csr_attention(in.q, in.k, in.v, empty, got);
  for (Index i = 0; i < 32; ++i) {
    for (Index j = 0; j < 8; ++j) EXPECT_EQ(got(i, j), 0.0f);
  }
}

TEST(KernelEdgeCases, SingleTokenSequence) {
  const auto in = make_inputs(1, 4, 108);
  Matrix<float> got(1, 4);
  local_attention(in.q, in.k, in.v, LocalParams{1}, got);
  // Attention over {self} returns V[0] exactly.
  for (Index j = 0; j < 4; ++j) EXPECT_NEAR(got(0, j), in.v(0, 0 + j), 1e-6f);
}

TEST(KernelEdgeCases, FullWindowEqualsDenseAttention) {
  const Index L = 48, d = 16;
  const auto in = make_inputs(L, d, 109);
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention_dense(in.q, in.k, in.v, expected);
  local_attention(in.q, in.k, in.v, LocalParams{L}, got);
  const auto rep = allclose(got, expected, kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST(KernelEdgeCases, CustomScaleHonored) {
  const Index L = 24, d = 8;
  const auto in = make_inputs(L, d, 110);
  const auto mask = build_csr_local(L, LocalParams{4});
  AttentionOptions opts;
  opts.scale = 0.25f;
  Matrix<float> expected(L, d), got(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected, 0.25f);
  csr_attention(in.q, in.k, in.v, mask, got, opts);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST(KernelEdgeCases, ShapeMismatchThrows) {
  const auto in = make_inputs(16, 8, 111);
  const auto mask = build_csr_local(8, LocalParams{2});  // wrong L
  Matrix<float> out(16, 8);
  EXPECT_THROW(csr_attention(in.q, in.k, in.v, mask, out), InvalidArgument);
}

TEST(KernelParallelism, ResultsIdenticalAcrossThreadCounts) {
  const Index L = 128, d = 32;
  const auto in = make_inputs(L, d, 112);
  const auto mask = build_csr_random(L, RandomParams{0.1, 9});
  Matrix<float> serial(L, d);
  AttentionOptions o1;
  o1.policy = ExecPolicy::serial();
  csr_attention(in.q, in.k, in.v, mask, serial, o1);
  for (const int threads : {2, 4, 8}) {
    for (const Schedule sched : {Schedule::Static, Schedule::Dynamic}) {
      AttentionOptions on;
      on.policy = ExecPolicy{threads, 16, sched};
      Matrix<float> par(L, d);
      csr_attention(in.q, in.k, in.v, mask, par, on);
      // Row-parallelism does not change per-row arithmetic: bitwise equal.
      EXPECT_EQ(max_abs_diff(par, serial), 0.0) << threads << " threads";
    }
  }
}

TEST(KernelF16, CsrHalfPrecisionStorageStaysClose) {
  const Index L = 64, d = 32;
  const auto in = make_inputs(L, d, 113);
  const auto mask = build_csr_random(L, RandomParams{0.2, 10});
  Matrix<float> expected(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);

  const auto qh = to_f16(in.q), kh = to_f16(in.k), vh = to_f16(in.v);
  Matrix<half_t> got_h(L, d);
  csr_attention(qh, kh, vh, mask, got_h);
  const auto got = to_f32(got_h);
  // fp16 storage: relative error ~2^-10.
  const auto rep = allclose(got, expected, 5e-3, 5e-3);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(KernelF16, LocalHalfPrecisionStorageStaysClose) {
  const Index L = 64, d = 16;
  const auto in = make_inputs(L, d, 114);
  Matrix<float> expected(L, d);
  baselines::reference_attention(in.q, in.k, in.v, build_csr_local(L, LocalParams{6}), expected);
  Matrix<half_t> got_h(L, d);
  local_attention(to_f16(in.q), to_f16(in.k), to_f16(in.v), LocalParams{6}, got_h);
  const auto rep = allclose(to_f32(got_h), expected, 5e-3, 5e-3);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(KernelWeightedMask, MaskValuesScaleScores) {
  const Index L = 16, d = 8;
  const auto in = make_inputs(L, d, 115);
  auto mask = build_csr_local(L, LocalParams{3});
  for (auto& v : mask.values) v = 0.5f;  // uniform down-weighting
  AttentionOptions opts;
  opts.use_mask_values = true;
  Matrix<float> got(L, d);
  csr_attention(in.q, in.k, in.v, mask, got, opts);
  // Equivalent to halving the scale.
  AttentionOptions half_scale;
  half_scale.scale = 0.5f / std::sqrt(static_cast<float>(d));
  Matrix<float> expected(L, d);
  auto plain = build_csr_local(L, LocalParams{3});
  csr_attention(in.q, in.k, in.v, plain, expected, half_scale);
  EXPECT_TRUE(allclose(got, expected, 1e-6, 1e-7).all_close);
}

}  // namespace
}  // namespace gpa
