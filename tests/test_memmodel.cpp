// Memory-model tests: Table II reproduction (the paper's theoretical
// context-length limits on an 80 GiB A100), monotonicity properties, and
// agreement between the analytic model and the empirical MemoryTracker.

#include <gtest/gtest.h>

#include <cmath>

#include "memmodel/memory_model.hpp"
#include "parallel/memory_tracker.hpp"

namespace gpa::memmodel {
namespace {

const DeviceSpec kA100 = DeviceSpec::a100_80gb();

ModelConfig cfg(DType dt, Index dim, Index heads, double sf = 1e-4) {
  ModelConfig c;
  c.dtype = dt;
  c.embed_dim = dim;
  c.heads = heads;
  c.sparsity = sf;
  return c;
}

// Paper Table II values we expect to match to rounding (the paper
// rounds the real-valued root; we return the exact floor, hence ±1).
void expect_near_paper(Index got, Index paper, double rel_tol, const char* what) {
  const double rel =
      std::abs(static_cast<double>(got - paper)) / static_cast<double>(paper);
  EXPECT_LE(rel, rel_tol) << what << ": got " << got << ", paper reports " << paper;
}

TEST(Table2Fp32Dk64, MatchesPaperColumns) {
  const auto c = cfg(DType::F32, 64, 1);
  expect_near_paper(max_context_length(Algo::SdpMasked, kA100, c), 146'416, 1e-4, "SDP");
  expect_near_paper(max_context_length(Algo::Local, kA100, c), 83'235'801, 1e-6, "Local");
  expect_near_paper(max_context_length(Algo::Dilated1D, kA100, c), 83'235'801, 1e-6, "1D");
  expect_near_paper(max_context_length(Algo::Dilated2D, kA100, c), 83'235'801, 1e-6, "2D");
  expect_near_paper(max_context_length(Algo::Global, kA100, c), 83'235'769, 1e-6, "Global");
  // Explicit formats: the paper's byte constants are not stated; our
  // accounting (32-bit indices + dtype values + statistics) lands within
  // 0.2% of their figures.
  expect_near_paper(max_context_length(Algo::Csr, kA100, c), 9'732'519, 2e-3, "CSR");
  expect_near_paper(max_context_length(Algo::Coo, kA100, c), 8'038'418, 2e-3, "COO");
}

TEST(Table2Fp32Dk128, MatchesPaperColumns) {
  const auto c = cfg(DType::F32, 128, 1);
  expect_near_paper(max_context_length(Algo::SdpMasked, kA100, c), 146'288, 1e-4, "SDP");
  expect_near_paper(max_context_length(Algo::Local, kA100, c), 41'779'838, 1e-6, "Local");
  expect_near_paper(max_context_length(Algo::Global, kA100, c), 41'779'830, 1e-6, "Global");
  expect_near_paper(max_context_length(Algo::Csr, kA100, c), 9'152'140, 2e-3, "CSR");
  expect_near_paper(max_context_length(Algo::Coo, kA100, c), 7'644'258, 2e-3, "COO");
}

TEST(Table2Fp16Dk64, MatchesPaperColumns) {
  const auto c = cfg(DType::F16, 64, 1);
  expect_near_paper(max_context_length(Algo::SdpMasked, kA100, c), 207'116, 1e-4, "SDP");
  expect_near_paper(max_context_length(Algo::FlashDense, kA100, c), 166'471'601, 1e-6,
                    "Flash");
  expect_near_paper(max_context_length(Algo::Local, kA100, c), 166'471'601, 1e-6, "Local");
  expect_near_paper(max_context_length(Algo::Global, kA100, c), 166'471'472, 1e-6, "Global");
  expect_near_paper(max_context_length(Algo::Coo, kA100, c), 9'009'893, 2e-3, "COO");
  // The paper's CSR-FP16 cell (14,013,926) implies 4 bytes/nnz, which is
  // inconsistent with its own COO-FP16 cell (10 bytes/nnz); our
  // self-consistent accounting gives 6 bytes/nnz. See EXPERIMENTS.md.
  const Index csr = max_context_length(Algo::Csr, kA100, c);
  EXPECT_GT(csr, 11'000'000);
  EXPECT_LT(csr, 14'013'926);
}

TEST(Table2Fp16Dk128, MatchesPaperColumns) {
  const auto c = cfg(DType::F16, 128, 1);
  expect_near_paper(max_context_length(Algo::SdpMasked, kA100, c), 206'988, 1e-4, "SDP");
  expect_near_paper(max_context_length(Algo::FlashDense, kA100, c), 83'559'676, 1e-6, "Flash");
  expect_near_paper(max_context_length(Algo::Local, kA100, c), 83'559'676, 1e-6, "Local");
  expect_near_paper(max_context_length(Algo::Global, kA100, c), 83'559'643, 1e-6, "Global");
  expect_near_paper(max_context_length(Algo::Coo, kA100, c), 8'764'655, 2e-3, "COO");
}

TEST(Table2Llama3Geometry, MatchesPaperColumns) {
  // "dimensions from the Llama 3 series 8 billion parameter model: 32
  // heads and dk of 4,096".
  const auto c32 = cfg(DType::F32, 4096, 32);
  expect_near_paper(max_context_length(Algo::SdpMasked, kA100, c32), 25'651, 5e-4, "SDP");
  expect_near_paper(max_context_length(Algo::Local, kA100, c32), 1'305'620, 1e-6, "Local");
  expect_near_paper(max_context_length(Algo::Global, kA100, c32), 1'305'620, 1e-5, "Global");
  expect_near_paper(max_context_length(Algo::Csr, kA100, c32), 950'434, 3e-3, "CSR");
  expect_near_paper(max_context_length(Algo::Coo, kA100, c32), 865'272, 3e-3, "COO");

  const auto c16 = cfg(DType::F16, 4096, 32);
  expect_near_paper(max_context_length(Algo::SdpMasked, kA100, c16), 36'381, 5e-4, "SDP");
  expect_near_paper(max_context_length(Algo::FlashDense, kA100, c16), 2'611'240, 1e-6,
                    "Flash");
  expect_near_paper(max_context_length(Algo::Local, kA100, c16), 2'611'240, 1e-6, "Local");
  expect_near_paper(max_context_length(Algo::Global, kA100, c16), 2'611'239, 1e-5, "Global");
  expect_near_paper(max_context_length(Algo::Csr, kA100, c16), 1'601'190, 0.25, "CSR");
  expect_near_paper(max_context_length(Algo::Coo, kA100, c16), 1'200'336, 3e-3, "COO");
}

TEST(MemModelProperties, BytesMonotoneInLength) {
  const auto c = cfg(DType::F32, 64, 1, 1e-3);
  for (const Algo a : {Algo::SdpMasked, Algo::Csr, Algo::Coo, Algo::Local, Algo::Global,
                       Algo::FlashDense, Algo::SpmmTwoPhase}) {
    Size prev = 0;
    for (Index L = 1; L <= 1 << 20; L *= 4) {
      const Size b = bytes_required(a, L, c);
      EXPECT_GT(b, prev) << algo_name(a) << " L=" << L;
      prev = b;
    }
  }
}

TEST(MemModelProperties, MaxLengthIsExactBoundary) {
  // bytes(maxL) <= budget < bytes(maxL + 1) for every algorithm.
  const auto c = cfg(DType::F16, 128, 1, 1e-4);
  for (const Algo a : {Algo::SdpMasked, Algo::Csr, Algo::Coo, Algo::Local, Algo::FlashDense}) {
    const Index maxL = max_context_length(a, kA100, c);
    EXPECT_LE(bytes_required(a, maxL, c), kA100.memory_bytes) << algo_name(a);
    EXPECT_GT(bytes_required(a, maxL + 1, c), kA100.memory_bytes) << algo_name(a);
  }
}

TEST(MemModelProperties, SparserMasksReachLongerContexts) {
  // Fig. 4's core shape: explicit-format max L grows as Sf shrinks.
  Index prev = 0;
  for (const double sf : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
    const Index maxL = max_context_length(Algo::Csr, kA100, cfg(DType::F16, 64, 1, sf));
    EXPECT_GT(maxL, prev) << "Sf=" << sf;
    prev = maxL;
  }
}

TEST(MemModelProperties, ImplicitMasksUnaffectedBySparsity) {
  const Index a = max_context_length(Algo::Local, kA100, cfg(DType::F32, 64, 1, 1.0));
  const Index b = max_context_length(Algo::Local, kA100, cfg(DType::F32, 64, 1, 1e-6));
  EXPECT_EQ(a, b);
}

TEST(MemModelProperties, Fp16DoublesImplicitContext) {
  const Index f32 = max_context_length(Algo::Local, kA100, cfg(DType::F32, 64, 1));
  const Index f16 = max_context_length(Algo::Local, kA100, cfg(DType::F16, 64, 1));
  EXPECT_NEAR(static_cast<double>(f16) / static_cast<double>(f32), 2.0, 1e-6);
}

TEST(MemModelProperties, OrderingMatchesFigure4) {
  // At high sparsity: implicit >= CSR >= COO >= SDP.
  const auto c = cfg(DType::F32, 64, 1, 1e-4);
  const Index local = max_context_length(Algo::Local, kA100, c);
  const Index csr = max_context_length(Algo::Csr, kA100, c);
  const Index coo = max_context_length(Algo::Coo, kA100, c);
  const Index sdp = max_context_length(Algo::SdpMasked, kA100, c);
  EXPECT_GT(local, csr);
  EXPECT_GT(csr, coo);
  EXPECT_GT(coo, sdp);
}

TEST(DeviceTable, CapacityOrderingAcrossDevices) {
  // Fig. 4's device axis: the model sees only the byte budget, so max
  // context length must be monotone in device memory for every
  // algorithm: RTX 4090 (24G) < V100 (32G) < L40 (48G) < A100 = H100 (80G).
  const auto c = cfg(DType::F16, 64, 1, 1e-4);
  for (const Algo a : {Algo::SdpMasked, Algo::Csr, Algo::Coo, Algo::Local, Algo::FlashDense,
                       Algo::Global}) {
    const Index rtx = max_context_length(a, DeviceSpec::rtx4090_24gb(), c);
    const Index v100 = max_context_length(a, DeviceSpec::v100_32gb(), c);
    const Index l40 = max_context_length(a, DeviceSpec::l40_48gb(), c);
    const Index a100 = max_context_length(a, DeviceSpec::a100_80gb(), c);
    const Index h100 = max_context_length(a, DeviceSpec::h100_80gb(), c);
    EXPECT_LT(rtx, v100) << algo_name(a);
    EXPECT_LT(v100, l40) << algo_name(a);
    EXPECT_LT(l40, a100) << algo_name(a);
    EXPECT_EQ(a100, h100) << algo_name(a);  // same 80 GiB budget
  }
}

TEST(DeviceTable, ContextLimitCurveMonotoneInSparsityOnNewDevices) {
  // The Fig. 4 curve shape must hold on the extended device table too:
  // explicit formats reach longer contexts as the mask gets sparser.
  for (const DeviceSpec& dev : {DeviceSpec::h100_80gb(), DeviceSpec::rtx4090_24gb()}) {
    for (const Algo a : {Algo::Csr, Algo::Coo}) {
      Index prev = 0;
      for (const double sf : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
        const Index maxL = max_context_length(a, dev, cfg(DType::F16, 64, 1, sf));
        EXPECT_GT(maxL, prev) << dev.name << " " << algo_name(a) << " Sf=" << sf;
        prev = maxL;
      }
    }
  }
}

TEST(DeviceTable, CurveMonotoneInLengthOnNewDevices) {
  // bytes_required drives the curve; exact boundary semantics must hold
  // for the new budgets exactly as for the A100 (bisection correctness).
  const auto c = cfg(DType::F32, 64, 1, 1e-3);
  for (const DeviceSpec& dev : {DeviceSpec::h100_80gb(), DeviceSpec::rtx4090_24gb()}) {
    for (const Algo a : {Algo::SdpMasked, Algo::Csr, Algo::Local}) {
      const Index maxL = max_context_length(a, dev, c);
      ASSERT_GT(maxL, 0) << dev.name;
      EXPECT_LE(bytes_required(a, maxL, c), dev.memory_bytes) << dev.name << " " << algo_name(a);
      EXPECT_GT(bytes_required(a, maxL + 1, c), dev.memory_bytes)
          << dev.name << " " << algo_name(a);
    }
  }
}

TEST(MemModelProperties, ZeroWhenNothingFits) {
  const DeviceSpec tiny = DeviceSpec::host(16);
  EXPECT_EQ(max_context_length(Algo::SdpMasked, tiny, cfg(DType::F32, 64, 1)), 0);
}

TEST(MemModelVsTracker, AnalyticBoundaryMatchesEmpiricalOom) {
  // Register the model's tensor set against a small tracker: the max L
  // the model reports must allocate cleanly, and L+1 must OOM.
  const DeviceSpec dev = DeviceSpec::host(1 << 20);  // 1 MiB toy device
  const auto c = cfg(DType::F32, 16, 1, 0.01);
  const Index maxL = max_context_length(Algo::Csr, dev, c);
  ASSERT_GT(maxL, 0);
  {
    MemoryTracker t(dev);
    EXPECT_NO_THROW(MemoryLease(t, bytes_required(Algo::Csr, maxL, c)));
  }
  {
    MemoryTracker t(dev);
    EXPECT_THROW(MemoryLease(t, bytes_required(Algo::Csr, maxL + 1, c)), OutOfDeviceMemory);
  }
}

TEST(LongNetTableTest, MatchesSection2D) {
  const auto table = longnet_sparsity_table();
  ASSERT_EQ(table.size(), 7u);
  EXPECT_EQ(table.front().seq_len, 16'384);
  EXPECT_NEAR(table.front().sf, 0.1666, 1e-3);
  EXPECT_EQ(table.back().seq_len, 1'000'000'000);
  EXPECT_NEAR(table.back().sf, 2.73e-6, 1e-8);
}

TEST(AlgoNameTest, AllNamesDistinct) {
  EXPECT_EQ(algo_name(Algo::Csr), "csr");
  EXPECT_EQ(algo_name(Algo::SdpMasked), "sdp-masked");
  EXPECT_EQ(algo_name(Algo::SpmmTwoPhase), "spmm-two-phase");
}

}  // namespace
}  // namespace gpa::memmodel
