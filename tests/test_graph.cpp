// Tests for the graph view: Get_Neighbors generators agree with the
// materialised masks, COO row-bound search variants agree, and degree
// statistics capture the imbalance the paper describes.

#include <gtest/gtest.h>

#include "graph/degree.hpp"
#include "graph/neighbors.hpp"
#include "sparse/build.hpp"

namespace gpa {
namespace {

std::vector<Index> csr_row(const Csr<float>& m, Index i) {
  std::vector<Index> out;
  for (Index k = m.row_begin(i); k < m.row_end(i); ++k) {
    out.push_back(m.col_idx[static_cast<std::size_t>(k)]);
  }
  return out;
}

TEST(NeighborsTest, LocalMatchesMaterialisedMask) {
  const Index L = 48;
  const LocalParams p{5};
  const auto csr = build_csr_local(L, p);
  for (Index i = 0; i < L; ++i) {
    EXPECT_EQ(collect_local(i, L, p), csr_row(csr, i)) << "row " << i;
  }
}

TEST(NeighborsTest, Dilated1DMatchesMaterialisedMask) {
  const Index L = 48;
  for (const Index r : {0, 1, 3}) {
    const Dilated1DParams p{9, r};
    const auto csr = build_csr_dilated1d(L, p);
    for (Index i = 0; i < L; ++i) {
      EXPECT_EQ(collect_dilated1d(i, L, p), csr_row(csr, i)) << "row " << i << " r " << r;
    }
  }
}

TEST(NeighborsTest, Dilated2DMatchesMaterialisedMask) {
  const auto p = make_dilated2d(32, 8, 1);
  const auto csr = build_csr_dilated2d(p);
  for (Index i = 0; i < 32; ++i) {
    EXPECT_EQ(collect_dilated2d(i, p), csr_row(csr, i)) << "row " << i;
  }
}

TEST(NeighborsTest, GlobalMinusLocalMatchesPredicate) {
  const Index L = 40;
  GlobalMinusLocalParams p;
  p.global = make_global({0, 13}, L);
  p.local = make_local(4);
  const auto csr =
      build_csr_from_predicate(L, [&](Index i, Index j) { return p.contains(i, j); });
  for (Index i = 0; i < L; ++i) {
    EXPECT_EQ(collect_global_minus_local(i, L, p), csr_row(csr, i)) << "row " << i;
  }
}

TEST(NeighborsTest, NeighborsAscendAndUnique) {
  const Index L = 64;
  const Dilated1DParams p{11, 2};
  for (Index i = 0; i < L; ++i) {
    const auto n = collect_dilated1d(i, L, p);
    for (std::size_t k = 1; k < n.size(); ++k) EXPECT_LT(n[k - 1], n[k]);
  }
}

TEST(CooBoundsTest, LinearAndBinaryAgree) {
  const auto coo = csr_to_coo(build_csr_dilated1d(64, Dilated1DParams{7, 1}));
  for (Index i = 0; i < 64; ++i) {
    const auto lin = coo_row_bounds_linear(coo, i);
    const auto bin = coo_row_bounds_binary(coo, i);
    EXPECT_EQ(lin.first, bin.first) << "row " << i;
    EXPECT_EQ(lin.last, bin.last) << "row " << i;
  }
}

TEST(CooBoundsTest, EmptyRowsYieldEmptyBounds) {
  // Global mask with one token: most rows have few entries, none empty;
  // craft a mask with empty rows instead.
  Coo<float> coo;
  coo.rows = coo.cols = 8;
  coo.row_idx = {1, 1, 6};
  coo.col_idx = {0, 3, 2};
  coo.values = {1.f, 1.f, 1.f};
  ASSERT_TRUE(coo.is_canonical());
  for (const Index empty_row : {0, 2, 5, 7}) {
    const auto b = coo_row_bounds_binary(coo, empty_row);
    EXPECT_EQ(b.first, b.last) << "row " << empty_row;
    const auto l = coo_row_bounds_linear(coo, empty_row);
    EXPECT_EQ(l.first, l.last) << "row " << empty_row;
  }
  EXPECT_EQ(coo_row_bounds_linear(coo, 1).first, 0);
  EXPECT_EQ(coo_row_bounds_linear(coo, 1).last, 2);
}

TEST(DegreeTest, StatsOnUniformMask) {
  const auto deg = local_degrees(100, LocalParams{1});  // diagonal: degree 1 everywhere
  const auto s = degree_stats(deg);
  EXPECT_EQ(s.total, 100u);
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 1);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(DegreeTest, GlobalMaskIsImbalanced) {
  // §V-C: global rows are (nearly) fully dense while others hold only
  // the global columns — "an imbalanced distribution of work".
  const Index L = 256;
  GlobalMinusLocalParams p;
  p.global = make_global({0, 1}, L);
  p.local = make_local(1);
  const auto s = degree_stats(global_minus_local_degrees(L, p));
  EXPECT_GT(s.imbalance, 10.0);
  EXPECT_EQ(s.max_degree, L - 1);  // a global row sees everything but itself
}

TEST(DegreeTest, CsrDegreesMatchOffsets) {
  const auto csr = build_csr_dilated1d(64, Dilated1DParams{9, 1});
  const auto deg = csr_degrees(csr);
  const auto s = degree_stats(deg);
  EXPECT_EQ(s.total, csr.nnz());
}

}  // namespace
}  // namespace gpa
