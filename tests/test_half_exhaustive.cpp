// Exhaustive verification of the binary16 storage type: all 65,536 bit
// patterns are checked for round-trip identity, ordering, and
// classification — the fp16 kernels and the Table II capacity claims
// both stand on this conversion being exact.
//
// The software converters are additionally pinned AGAINST F16C HARDWARE
// (VCVTPH2PS / VCVTPS2PH, reached through the avx2 arm's h2f/f2h ops)
// when this build + CPU has the arm: fp16 page payloads must not depend
// on which converter wrote them, including NaN payload handling —
// VCVTPS2PH truncates the payload to the top 10 bits and forces the
// quiet bit, VCVTPH2PS quiets signaling NaNs; common/half.hpp mirrors
// both exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/half.hpp"
#include "simd/simd.hpp"

namespace gpa {
namespace {

TEST(HalfExhaustive, AllBitPatternsRoundTripThroughFloat) {
  int checked = 0;
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const half_t h = half_t::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    const half_t back(f);
    if (std::isnan(f)) {
      // NaNs must stay NaN (payloads may differ).
      EXPECT_TRUE(std::isnan(static_cast<float>(back))) << "bits=" << bits;
      continue;
    }
    EXPECT_EQ(back.bits(), bits) << "bits=" << std::hex << bits << " f=" << f;
    ++checked;
  }
  EXPECT_GT(checked, 63000);  // all non-NaN patterns exercised
}

TEST(HalfExhaustive, ConversionPreservesOrderingOfFiniteValues) {
  // Walk all positive finite patterns in bit order: float values must be
  // strictly increasing (the fp16 encoding is monotone).
  float prev = -1.0f;
  for (std::uint32_t bits = 0; bits < 0x7c00u; ++bits) {  // up to +inf exclusive
    const float f = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    EXPECT_GT(f, prev) << "bits=" << std::hex << bits;
    prev = f;
  }
}

TEST(HalfExhaustive, NegativePatternsMirrorPositive) {
  for (std::uint32_t bits = 0; bits <= 0x7fffu; ++bits) {
    const float pos = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    const float neg =
        static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits | 0x8000u)));
    if (std::isnan(pos)) {
      EXPECT_TRUE(std::isnan(neg));
    } else {
      EXPECT_EQ(neg, -pos) << "bits=" << std::hex << bits;
    }
  }
}

TEST(HalfExhaustive, ClassificationBoundaries) {
  // 0x0000..0x03ff subnormal (or zero), 0x0400..0x7bff normal,
  // 0x7c00 inf, 0x7c01..0x7fff NaN.
  EXPECT_EQ(static_cast<float>(half_t::from_bits(0x0000)), 0.0f);
  for (std::uint32_t bits = 0x0001u; bits <= 0x03ffu; ++bits) {
    const float f = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    EXPECT_GT(f, 0.0f);
    EXPECT_LT(f, std::ldexp(1.0f, -14));  // below the smallest normal
  }
  EXPECT_EQ(static_cast<float>(half_t::from_bits(0x0400)), std::ldexp(1.0f, -14));
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t::from_bits(0x7c00))));
  for (std::uint32_t bits = 0x7c01u; bits <= 0x7fffu; bits += 97) {
    EXPECT_TRUE(std::isnan(static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)))));
  }
}

TEST(HalfExhaustive, NarrowingPicksNearestRepresentable) {
  // For a dense sample of floats, the conversion must return one of the
  // two bracketing fp16 values, whichever is closer (ties checked in
  // test_common).
  for (std::uint32_t bits = 0x0400u; bits < 0x7bffu; bits += 51) {
    const float lo = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    const float hi = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits + 1)));
    const float x = lo + 0.3f * (hi - lo);  // closer to lo
    EXPECT_EQ(half_t(x).bits(), bits) << "x=" << x;
    const float y = lo + 0.7f * (hi - lo);  // closer to hi
    EXPECT_EQ(half_t(y).bits(), bits + 1) << "y=" << y;
  }
}

// --- NaN payload semantics (the F16C conventions, pinned numerically) --

TEST(HalfNanSemantics, NarrowingTruncatesPayloadAndForcesQuietBit) {
  // float SNaN 0x7f800001: payload below the top-10 window vanishes,
  // but the result must still be NaN — the quiet bit is forced, exactly
  // as VCVTPS2PH does.
  const auto narrow_bits = [](std::uint32_t fbits) {
    float f;
    std::memcpy(&f, &fbits, sizeof(f));
    return half_t(f).bits();
  };
  EXPECT_EQ(narrow_bits(0x7f800001u), 0x7e00u);  // SNaN, tiny payload -> base qNaN
  EXPECT_EQ(narrow_bits(0xffc00000u), 0xfe00u);  // default qNaN, sign kept
  // Payload bits inside the top-10 window survive the truncation.
  EXPECT_EQ(narrow_bits(0x7f876000u), 0x7e3bu);  // (0x076000 >> 13) | 0x0200
}

TEST(HalfNanSemantics, WideningQuietsSignalingNans) {
  // half SNaN 0x7c01 widens to a QUIET float NaN with the payload
  // shifted up — VCVTPH2PS sets bit 22 of the result.
  const auto widen_bits = [](std::uint16_t hbits) {
    const float f = static_cast<float>(half_t::from_bits(hbits));
    std::uint32_t out;
    std::memcpy(&out, &f, sizeof(out));
    return out;
  };
  EXPECT_EQ(widen_bits(0x7c01u), 0x7fc02000u);  // SNaN quieted
  EXPECT_EQ(widen_bits(0x7e00u), 0x7fc00000u);  // qNaN maps straight across
  EXPECT_EQ(widen_bits(0xfe00u), 0xffc00000u);  // sign preserved
}

// --- software vs F16C hardware ----------------------------------------

bool f16c_arm_available() { return simd::resolve(SimdLevel::Avx2) == SimdLevel::Avx2; }

TEST(HalfHardwareConformance, WideningMatchesF16CForAllBitPatterns) {
  if (!f16c_arm_available()) GTEST_SKIP() << "F16C arm unavailable on this build/CPU";
  // The avx2 arm's h2f is VCVTPH2PS; the scalar arm's is the software
  // converter. All 65,536 inputs, outputs compared as raw bits — NaN
  // payloads included.
  const auto& sw = simd::ops(SimdLevel::Scalar);
  const auto& hw = simd::ops(SimdLevel::Avx2);
  std::vector<half_t> src(65536);
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    src[bits] = half_t::from_bits(static_cast<std::uint16_t>(bits));
  }
  std::vector<float> out_sw(65536), out_hw(65536);
  sw.h2f(out_sw.data(), src.data(), 65536);
  hw.h2f(out_hw.data(), src.data(), 65536);
  for (std::uint32_t i = 0; i <= 0xffffu; ++i) {
    std::uint32_t a, b;
    std::memcpy(&a, &out_sw[i], sizeof(a));
    std::memcpy(&b, &out_hw[i], sizeof(b));
    ASSERT_EQ(a, b) << "half bits=" << std::hex << i;
  }
}

TEST(HalfHardwareConformance, NarrowingMatchesF16COnDenseBitSweep) {
  if (!f16c_arm_available()) GTEST_SKIP() << "F16C arm unavailable on this build/CPU";
  // A ~16.8M-point stride walk of the float bit space (stride 0x101
  // visits every exponent with many mantissa phases, crossing the
  // denormal, overflow, and NaN ranges), compared as raw half bits
  // against VCVTPS2PH's round-to-nearest-even.
  const auto& sw = simd::ops(SimdLevel::Scalar);
  const auto& hw = simd::ops(SimdLevel::Avx2);
  constexpr std::uint32_t kStride = 0x101u;
  constexpr Index kBlock = 4096;
  std::vector<float> in(static_cast<std::size_t>(kBlock));
  std::vector<half_t> out_sw(static_cast<std::size_t>(kBlock));
  std::vector<half_t> out_hw(static_cast<std::size_t>(kBlock));
  std::uint64_t bits = 0;
  while (bits <= 0xffffffffull) {
    Index n = 0;
    for (; n < kBlock && bits <= 0xffffffffull; ++n, bits += kStride) {
      const auto u = static_cast<std::uint32_t>(bits);
      std::memcpy(&in[static_cast<std::size_t>(n)], &u, sizeof(u));
    }
    sw.f2h(out_sw.data(), in.data(), n);
    hw.f2h(out_hw.data(), in.data(), n);
    for (Index i = 0; i < n; ++i) {
      ASSERT_EQ(out_sw[static_cast<std::size_t>(i)].bits(),
                out_hw[static_cast<std::size_t>(i)].bits())
          << "float bits=" << std::hex
          << (static_cast<std::uint32_t>(bits) -
              static_cast<std::uint32_t>((n - i)) * kStride);
    }
  }
}

}  // namespace
}  // namespace gpa
