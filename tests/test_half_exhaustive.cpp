// Exhaustive verification of the binary16 storage type: all 65,536 bit
// patterns are checked for round-trip identity, ordering, and
// classification — the fp16 kernels and the Table II capacity claims
// both stand on this conversion being exact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/half.hpp"

namespace gpa {
namespace {

TEST(HalfExhaustive, AllBitPatternsRoundTripThroughFloat) {
  int checked = 0;
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const half_t h = half_t::from_bits(static_cast<std::uint16_t>(bits));
    const float f = static_cast<float>(h);
    const half_t back(f);
    if (std::isnan(f)) {
      // NaNs must stay NaN (payloads may differ).
      EXPECT_TRUE(std::isnan(static_cast<float>(back))) << "bits=" << bits;
      continue;
    }
    EXPECT_EQ(back.bits(), bits) << "bits=" << std::hex << bits << " f=" << f;
    ++checked;
  }
  EXPECT_GT(checked, 63000);  // all non-NaN patterns exercised
}

TEST(HalfExhaustive, ConversionPreservesOrderingOfFiniteValues) {
  // Walk all positive finite patterns in bit order: float values must be
  // strictly increasing (the fp16 encoding is monotone).
  float prev = -1.0f;
  for (std::uint32_t bits = 0; bits < 0x7c00u; ++bits) {  // up to +inf exclusive
    const float f = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    EXPECT_GT(f, prev) << "bits=" << std::hex << bits;
    prev = f;
  }
}

TEST(HalfExhaustive, NegativePatternsMirrorPositive) {
  for (std::uint32_t bits = 0; bits <= 0x7fffu; ++bits) {
    const float pos = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    const float neg =
        static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits | 0x8000u)));
    if (std::isnan(pos)) {
      EXPECT_TRUE(std::isnan(neg));
    } else {
      EXPECT_EQ(neg, -pos) << "bits=" << std::hex << bits;
    }
  }
}

TEST(HalfExhaustive, ClassificationBoundaries) {
  // 0x0000..0x03ff subnormal (or zero), 0x0400..0x7bff normal,
  // 0x7c00 inf, 0x7c01..0x7fff NaN.
  EXPECT_EQ(static_cast<float>(half_t::from_bits(0x0000)), 0.0f);
  for (std::uint32_t bits = 0x0001u; bits <= 0x03ffu; ++bits) {
    const float f = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    EXPECT_GT(f, 0.0f);
    EXPECT_LT(f, std::ldexp(1.0f, -14));  // below the smallest normal
  }
  EXPECT_EQ(static_cast<float>(half_t::from_bits(0x0400)), std::ldexp(1.0f, -14));
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t::from_bits(0x7c00))));
  for (std::uint32_t bits = 0x7c01u; bits <= 0x7fffu; bits += 97) {
    EXPECT_TRUE(std::isnan(static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)))));
  }
}

TEST(HalfExhaustive, NarrowingPicksNearestRepresentable) {
  // For a dense sample of floats, the conversion must return one of the
  // two bracketing fp16 values, whichever is closer (ties checked in
  // test_common).
  for (std::uint32_t bits = 0x0400u; bits < 0x7bffu; bits += 51) {
    const float lo = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits)));
    const float hi = static_cast<float>(half_t::from_bits(static_cast<std::uint16_t>(bits + 1)));
    const float x = lo + 0.3f * (hi - lo);  // closer to lo
    EXPECT_EQ(half_t(x).bits(), bits) << "x=" << x;
    const float y = lo + 0.7f * (hi - lo);  // closer to hi
    EXPECT_EQ(half_t(y).bits(), bits + 1) << "y=" << y;
  }
}

}  // namespace
}  // namespace gpa
