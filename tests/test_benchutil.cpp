// Tests for the benchmark harness itself: statistics, the paper's
// warmup/iteration protocol, table/CSV rendering, and flag parsing —
// the credibility of EXPERIMENTS.md rests on these being right.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "benchutil/runner.hpp"
#include "common/error.hpp"
#include "benchutil/stats.hpp"
#include "benchutil/table.hpp"

namespace gpa::benchutil {
namespace {

TEST(StatsTest, KnownSample) {
  const auto s = compute_stats({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);  // sample stddev
  EXPECT_EQ(s.samples, 5u);
}

TEST(StatsTest, EvenCountMedianAverages) {
  const auto s = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(StatsTest, SingleSampleHasZeroStddev) {
  const auto s = compute_stats({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, EmptySampleIsInert) {
  const auto s = compute_stats({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(PercentileTest, OrderStatisticsInterpolate) {
  std::vector<double> s{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(s, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(s, 87.5), 45.0);  // between 40 and 50
}

TEST(PercentileTest, UnsortedInputAndClampedRange) {
  std::vector<double> s{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(s, -10.0), 1.0);   // clamped to min
  EXPECT_DOUBLE_EQ(percentile(s, 400.0), 5.0);   // clamped to max
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);   // empty is inert
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(PercentileTest, SmallSamplePinning) {
  // The inclusive definition at tiny n, pinned exactly — serving
  // benchmarks at --smoke scale report p99 over a handful of samples,
  // and the value must be the one this contract promises, not an
  // implementation accident.
  //
  // n=1: every percentile IS the sample.
  for (const double pct : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({7.5}, pct), 7.5);
  }
  // n=2: rank = pct/100 → p50 is the midpoint, p99 sits 99% of the
  // way from low to high.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 99.0), 19.9);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 100.0), 20.0);
  // n=3: rank = pct/50 — p99 of {10,20,30} interpolates 98% into the
  // upper gap.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0}, 99.0), 29.8);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0}, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 25.0), 15.0);  // unsorted too
  // Endpoints are exact min/max at any n (no epsilon drift).
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 4.0, 1.5, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 4.0, 1.5, 9.0}, 100.0), 9.0);
}

TEST(PercentileTest, TailStatsAreMonotone) {
  std::vector<double> s;
  for (int i = 100; i >= 1; --i) s.push_back(static_cast<double>(i));
  const auto t = compute_tail_stats(s);
  EXPECT_EQ(t.samples, 100u);
  EXPECT_LE(t.p50, t.p95);
  EXPECT_LE(t.p95, t.p99);
  EXPECT_LE(t.p99, t.max);
  EXPECT_DOUBLE_EQ(t.max, 100.0);
  EXPECT_NEAR(t.p50, 50.5, 1e-12);
}

TEST(RunnerTest, ExecutesWarmupPlusIterations) {
  int calls = 0;
  const auto s = run_benchmark([&] { ++calls; }, RunConfig{3, 7});
  EXPECT_EQ(calls, 10);
  EXPECT_EQ(s.samples, 7u);
}

TEST(RunnerTest, TimesAreNonNegativeAndOrdered) {
  const auto s = run_benchmark([] {
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }, RunConfig{1, 5});
  EXPECT_GE(s.min, 0.0);
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.max);
}

TEST(ArgsTest, DefaultsApplied) {
  const char* argv[] = {"bench"};
  const auto args = parse_bench_args(1, const_cast<char**>(argv), 2, 5);
  EXPECT_FALSE(args.paper_scale);
  EXPECT_EQ(args.run.warmup, 2);
  EXPECT_EQ(args.run.iterations, 5);
  EXPECT_TRUE(args.csv_path.empty());
}

TEST(ArgsTest, PaperScaleRestoresPaperProtocol) {
  const char* argv[] = {"bench", "--paper-scale"};
  const auto args = parse_bench_args(2, const_cast<char**>(argv), 1, 3);
  EXPECT_TRUE(args.paper_scale);
  EXPECT_EQ(args.run.warmup, 10);   // §V protocol
  EXPECT_EQ(args.run.iterations, 15);
}

TEST(ArgsTest, ExplicitOverridesWin) {
  const char* argv[] = {"bench", "--paper-scale", "--warmup", "4", "--iters", "9",
                        "--csv", "/tmp/x.csv"};
  const auto args = parse_bench_args(8, const_cast<char**>(argv), 1, 3);
  EXPECT_EQ(args.run.warmup, 4);
  EXPECT_EQ(args.run.iterations, 9);
  EXPECT_EQ(args.csv_path, "/tmp/x.csv");
}

TEST(ArgsTest, MissingFlagValueThrows) {
  const char* argv[] = {"bench", "--csv"};
  EXPECT_THROW(parse_bench_args(2, const_cast<char**>(argv), 1, 3), InvalidArgument);
}

class TableFixture : public ::testing::Test {
 protected:
  std::string path_ =
      (std::filesystem::temp_directory_path() / "gpa_table_test.csv").string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(TableFixture, CsvContainsHeaderAndRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x", "y"});
  t.write_csv(path_);
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
}

TEST_F(TableFixture, EmptyPathIsNoOp) {
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.write_csv(""));
}

TEST_F(TableFixture, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TableFormatTest, SecondsUseScientificNotation) {
  EXPECT_EQ(Table::fmt_seconds(0.001234), "1.234e-03");
  EXPECT_EQ(Table::fmt_seconds(12.5), "1.250e+01");
}

TEST(TableFormatTest, DoublePrecisionControl) {
  EXPECT_EQ(Table::fmt_double(0.125, 4), "0.125");
  EXPECT_EQ(Table::fmt_double(1.0 / 3.0, 2), "0.33");
}

}  // namespace
}  // namespace gpa::benchutil
