// Tests for the ring-attention-style sequence-parallel execution.

#include <gtest/gtest.h>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/ring_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::seqpar {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

class RingNodes : public ::testing::TestWithParam<Index> {};

TEST_P(RingNodes, MatchesReferenceOnRandomMask) {
  const Index nodes = GetParam();
  const Index L = 120, d = 16;
  const auto in = make_inputs(L, d, 1400);
  const auto mask = build_csr_random(L, RandomParams{0.15, 95});
  const auto part = partition_uniform_rows(L, nodes, degrees_of(mask));

  Matrix<float> ring_out(L, d), expected(L, d);
  const auto report = ring_csr_attention(in.q, in.k, in.v, mask, part, ring_out);
  gpa::baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  const auto rep = gpa::allclose(ring_out, expected, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "nodes=" << nodes << " diff " << rep.max_abs_diff;

  // Every edge visited exactly once across all steps.
  Size total = 0;
  for (const Size e : report.edges_per_step) total += e;
  EXPECT_EQ(total, mask.nnz());
  EXPECT_EQ(report.steps, nodes);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, RingNodes, ::testing::Values<Index>(1, 2, 3, 5, 8));

TEST(RingTest, MatchesPlainKernelBitwiseWithOneNode) {
  const Index L = 64, d = 8;
  const auto in = make_inputs(L, d, 1401);
  const auto mask = build_csr_random(L, RandomParams{0.2, 96});
  const auto part = partition_uniform_rows(L, 1, degrees_of(mask));
  Matrix<float> ring_out(L, d), plain(L, d);
  ring_csr_attention(in.q, in.k, in.v, mask, part, ring_out);
  csr_attention(in.q, in.k, in.v, mask, plain);
  EXPECT_EQ(max_abs_diff(ring_out, plain), 0.0);  // single shard: same fold order
}

TEST(RingTest, CausalSupport) {
  const Index L = 96, d = 8;
  const auto in = make_inputs(L, d, 1402);
  const auto mask = build_csr_random(L, RandomParams{0.25, 97});
  const auto part = partition_uniform_rows(L, 4, degrees_of(mask));
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> ring_out(L, d), expected(L, d);
  ring_csr_attention(in.q, in.k, in.v, mask, part, ring_out, opts);

  const auto tri = build_csr_from_predicate(L, [](Index i, Index j) { return j <= i; });
  gpa::baselines::reference_attention(in.q, in.k, in.v, mask_intersect(mask, tri), expected);
  EXPECT_TRUE(gpa::allclose(ring_out, expected, 1e-5, 1e-6).all_close);
}

TEST(RingTest, CommunicationModelScalesWithShards) {
  const Index L = 128, d = 16;
  const auto in = make_inputs(L, d, 1403);
  const auto mask = build_csr_local(L, LocalParams{4});
  Matrix<float> out(L, d);

  const auto part2 = partition_uniform_rows(L, 2, degrees_of(mask));
  const auto part8 = partition_uniform_rows(L, 8, degrees_of(mask));
  const auto r2 = ring_csr_attention(in.q, in.k, in.v, mask, part2, out);
  const auto r8 = ring_csr_attention(in.q, in.k, in.v, mask, part8, out);

  // 8 shards -> each node holds 1/4 the K/V of the 2-shard case.
  EXPECT_EQ(r2.peak_node_kv_bytes, 2u * 64 * 16 * sizeof(float));
  EXPECT_EQ(r8.peak_node_kv_bytes, 2u * 16 * 16 * sizeof(float));
  // Total communication: (P-1) shard rotations.
  EXPECT_EQ(r2.total_comm_bytes, 1u * r2.comm_bytes_per_step);
  EXPECT_EQ(r8.total_comm_bytes, 7u * r8.comm_bytes_per_step);
}

TEST(RingTest, LocalMaskTouchesOnlyNeighborShards) {
  // A narrow window means most ring steps process zero edges — the
  // block-sparse structure ring attention exploits.
  const Index L = 128, d = 4;
  const auto in = make_inputs(L, d, 1404);
  const auto mask = build_csr_local(L, LocalParams{4});
  const auto part = partition_uniform_rows(L, 8, degrees_of(mask));
  Matrix<float> out(L, d);
  const auto report = ring_csr_attention(in.q, in.k, in.v, mask, part, out);
  // Steps 0 (own shard), 1 and P-1 (adjacent shards) carry all edges.
  EXPECT_GT(report.edges_per_step[0], 0u);
  for (Index s = 2; s < 7; ++s) {
    EXPECT_EQ(report.edges_per_step[static_cast<std::size_t>(s)], 0u) << "step " << s;
  }
}

TEST(RingTest, NnzBalancedPartitionStillExact) {
  const Index L = 100, d = 8;
  const auto in = make_inputs(L, d, 1405);
  const auto mask = mask_union(build_csr_local(L, LocalParams{3}),
                               build_csr_global(L, make_global({0, 1}, L)));
  const auto part = partition_balanced_nnz(L, 4, degrees_of(mask));
  Matrix<float> ring_out(L, d), expected(L, d);
  ring_csr_attention(in.q, in.k, in.v, mask, part, ring_out);
  gpa::baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  EXPECT_TRUE(gpa::allclose(ring_out, expected, 1e-5, 1e-6).all_close);
}

}  // namespace
}  // namespace gpa::seqpar
