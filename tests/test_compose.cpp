// Tests for mask set-algebra (union / subtract / intersect) — the
// machinery behind Fig. 6's composed masks.

#include <gtest/gtest.h>

#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "sparse/patterns.hpp"

namespace gpa {
namespace {

bool contains_entry(const Csr<float>& m, Index i, Index j) {
  for (Index k = m.row_begin(i); k < m.row_end(i); ++k) {
    if (m.col_idx[static_cast<std::size_t>(k)] == j) return true;
  }
  return false;
}

class ComposeFixture : public ::testing::Test {
 protected:
  const Index L = 32;
  Csr<float> local = build_csr_local(L, LocalParams{3});
  Csr<float> global = build_csr_global(L, make_global({0, 9}, L));
};

TEST_F(ComposeFixture, UnionContainsBothOperands) {
  const auto u = mask_union(local, global);
  EXPECT_TRUE(u.is_canonical());
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) {
      EXPECT_EQ(contains_entry(u, i, j), contains_entry(local, i, j) || contains_entry(global, i, j));
    }
  }
}

TEST_F(ComposeFixture, SubtractRemovesExactlyOverlap) {
  const auto diff = mask_subtract(global, local);
  EXPECT_TRUE(diff.is_canonical());
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) {
      EXPECT_EQ(contains_entry(diff, i, j),
                contains_entry(global, i, j) && !contains_entry(local, i, j));
    }
  }
}

TEST_F(ComposeFixture, IntersectKeepsOnlyShared) {
  const auto inter = mask_intersect(global, local);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) {
      EXPECT_EQ(contains_entry(inter, i, j),
                contains_entry(global, i, j) && contains_entry(local, i, j));
    }
  }
}

TEST_F(ComposeFixture, InclusionExclusionHolds) {
  const auto u = mask_union(local, global);
  const auto inter = mask_intersect(local, global);
  EXPECT_EQ(u.nnz() + inter.nnz(), local.nnz() + global.nnz());
}

TEST_F(ComposeFixture, SubtractThenUnionRestores) {
  const auto diff = mask_subtract(global, local);
  const auto restored = mask_union(diff, mask_intersect(global, local));
  EXPECT_EQ(restored.col_idx, global.col_idx);
  EXPECT_EQ(restored.row_offsets, global.row_offsets);
}

TEST_F(ComposeFixture, DisjointnessDetection) {
  const auto diff = mask_subtract(global, local);
  EXPECT_TRUE(masks_disjoint(diff, local));
  EXPECT_FALSE(masks_disjoint(global, local));  // they overlap at (0, ~0)
}

TEST_F(ComposeFixture, UnionAllFoldsLeft) {
  const auto rnd = build_csr_random(L, RandomParams{0.05, 3});
  const auto all = mask_union_all({local, global, rnd});
  const auto two = mask_union(mask_union(local, global), rnd);
  EXPECT_EQ(all.col_idx, two.col_idx);
}

TEST(ComposeEdgeCases, EmptyMaskIsIdentityForUnion) {
  const auto a = build_csr_local(16, LocalParams{2});
  Csr<float> empty;
  empty.rows = empty.cols = 16;
  empty.row_offsets.assign(17, 0);
  const auto u = mask_union(a, empty);
  EXPECT_EQ(u.col_idx, a.col_idx);
  const auto diff = mask_subtract(a, empty);
  EXPECT_EQ(diff.col_idx, a.col_idx);
}

TEST(ComposeEdgeCases, ShapeMismatchThrows) {
  const auto a = build_csr_local(16, LocalParams{2});
  const auto b = build_csr_local(17, LocalParams{2});
  EXPECT_THROW(mask_union(a, b), InvalidArgument);
}

}  // namespace
}  // namespace gpa
