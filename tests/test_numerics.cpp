// Numerical-property tests of the attention kernels: the algebraic
// identities masked softmax-attention must satisfy, checked on the graph
// kernels (these are what distinguish a correct online-softmax
// implementation from one that merely matches a reference on friendly
// inputs).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

TEST(NumericsTest, StableUnderHugeScoreMagnitudes) {
  // Scores around ±1e4 overflow exp() without the online max trick.
  const Index L = 32, d = 8;
  auto in = make_inputs(L, d, 1200);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      in.q(i, p) = (in.q(i, p) - 0.5f) * 200.0f;
      in.k(i, p) = (in.k(i, p) - 0.5f) * 200.0f;
    }
  }
  const auto mask = build_csr_random(L, RandomParams{0.3, 71});
  Matrix<float> out(L, d);
  csr_attention(in.q, in.k, in.v, mask, out);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      EXPECT_TRUE(std::isfinite(out(i, p))) << i << "," << p;
    }
  }
}

TEST(NumericsTest, ExtremeScoresSelectTheArgmaxValue) {
  // With one dominating key, attention degenerates to a hard lookup.
  const Index L = 8, d = 4;
  auto in = make_inputs(L, d, 1201);
  // Make key 5 align perfectly with every query, others orthogonal-ish.
  for (Index p = 0; p < d; ++p) in.k(5, p) = 0.0f;
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) in.k(5, p) += in.q(i, p);
  }
  for (Index p = 0; p < d; ++p) in.k(5, p) *= 100.0f;
  const auto mask = build_csr_from_predicate(L, [](Index, Index) { return true; });
  Matrix<float> out(L, d);
  csr_attention(in.q, in.k, in.v, mask, out);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) EXPECT_NEAR(out(i, p), in.v(5, p), 1e-3f);
  }
}

TEST(NumericsTest, LinearInValues) {
  // attention(Q, K, aV₁ + bV₂) == a·attention(Q, K, V₁) + b·attention(Q, K, V₂)
  const Index L = 48, d = 12;
  const auto in = make_inputs(L, d, 1202);
  Matrix<float> v2(L, d);
  Rng rng(1203);
  fill_uniform(v2, rng);
  const auto mask = build_csr_random(L, RandomParams{0.2, 72});
  const float a = 2.5f, b = -1.25f;

  Matrix<float> combined_v(L, d);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) combined_v(i, p) = a * in.v(i, p) + b * v2(i, p);
  }
  Matrix<float> lhs(L, d), o1(L, d), o2(L, d);
  csr_attention(in.q, in.k, combined_v, mask, lhs);
  csr_attention(in.q, in.k, in.v, mask, o1);
  csr_attention(in.q, in.k, v2, mask, o2);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      EXPECT_NEAR(lhs(i, p), a * o1(i, p) + b * o2(i, p), 1e-4f);
    }
  }
}

TEST(NumericsTest, ShiftInvarianceOfScores) {
  // Adding a constant vector c to every *query's* contribution that is
  // uniform across keys cannot change the distribution. Realised by
  // appending a constant-coordinate dimension: scores shift by a
  // per-row constant, softmax is shift-invariant.
  const Index L = 32, d = 8;
  const auto in = make_inputs(L, d, 1204);
  const auto mask = build_csr_random(L, RandomParams{0.25, 73});
  AttentionOptions unit_scale;
  unit_scale.scale = 1.0f;  // keep both runs on identical scales

  Matrix<float> base(L, d);
  csr_attention(in.q, in.k, in.v, mask, base, unit_scale);

  // Extended inputs: one extra dimension, q' = 3.0, k' = 1.0 — adds the
  // constant 3.0 to every score of every row.
  Matrix<float> q2(L, d + 1), k2(L, d + 1), v2(L, d + 1);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      q2(i, p) = in.q(i, p);
      k2(i, p) = in.k(i, p);
      v2(i, p) = in.v(i, p);
    }
    q2(i, d) = 3.0f;
    k2(i, d) = 1.0f;
    v2(i, d) = 0.0f;
  }
  Matrix<float> shifted(L, d + 1);
  csr_attention(q2, k2, v2, mask, shifted, unit_scale);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) EXPECT_NEAR(shifted(i, p), base(i, p), 1e-4f);
  }
}

TEST(NumericsTest, IdenticalKeysGiveUniformAveraging) {
  const Index L = 16, d = 4;
  auto in = make_inputs(L, d, 1205);
  for (Index i = 1; i < L; ++i) {
    for (Index p = 0; p < d; ++p) in.k(i, p) = in.k(0, p);  // all keys equal
  }
  const LocalParams window{4};
  const auto mask = build_csr_local(L, window);
  Matrix<float> out(L, d);
  local_attention(in.q, in.k, in.v, window, out);
  for (Index i = 0; i < L; ++i) {
    const Index lo = std::max<Index>(0, i - 3);
    const Index hi = std::min<Index>(L - 1, i + 3);
    for (Index p = 0; p < d; ++p) {
      float mean = 0;
      for (Index j = lo; j <= hi; ++j) mean += in.v(j, p);
      mean /= static_cast<float>(hi - lo + 1);
      EXPECT_NEAR(out(i, p), mean, 1e-5f);
    }
  }
}

TEST(NumericsTest, PermutingMaskedOutKeysChangesNothing) {
  // Values at positions outside the mask must be completely inert.
  const Index L = 32, d = 8;
  const auto in = make_inputs(L, d, 1206);
  const LocalParams window{3};
  Matrix<float> base(L, d);
  local_attention(in.q, in.k, in.v, window, base);

  auto scrambled = in;
  Rng rng(1207);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) {
      const Index dist = i > j ? i - j : j - i;
      (void)dist;
    }
  }
  // Scramble V rows that no query can reach is impossible for a window
  // mask (every row is someone's neighbor) — instead scramble K/V of
  // key 20 and verify only rows within the window of 20 change.
  for (Index p = 0; p < d; ++p) {
    scrambled.k(20, p) = rng.next_float() * 5.0f;
    scrambled.v(20, p) = rng.next_float() * 5.0f;
  }
  Matrix<float> out(L, d);
  local_attention(scrambled.q, scrambled.k, scrambled.v, window, out);
  for (Index i = 0; i < L; ++i) {
    const bool reachable = (i > 20 ? i - 20 : 20 - i) < window.window;
    float diff = 0;
    for (Index p = 0; p < d; ++p) diff += std::abs(out(i, p) - base(i, p));
    if (reachable) {
      EXPECT_GT(diff, 0.0f) << "row " << i << " should see key 20";
    } else {
      EXPECT_EQ(diff, 0.0f) << "row " << i << " must not see key 20";
    }
  }
}

TEST(NumericsTest, OutputIsConvexCombinationEvenWithHugeValues) {
  const Index L = 24, d = 6;
  auto in = make_inputs(L, d, 1208);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) in.v(i, p) = (in.v(i, p) - 0.5f) * 2e6f;
  }
  const auto mask = build_csr_random(L, RandomParams{0.4, 74});
  Matrix<float> out(L, d);
  csr_attention(in.q, in.k, in.v, mask, out);
  for (Index p = 0; p < d; ++p) {
    float vmin = std::numeric_limits<float>::infinity(), vmax = -vmin;
    for (Index j = 0; j < L; ++j) {
      vmin = std::min(vmin, in.v(j, p));
      vmax = std::max(vmax, in.v(j, p));
    }
    for (Index i = 0; i < L; ++i) {
      if (mask.row_degree(i) == 0) continue;
      EXPECT_GE(out(i, p), vmin - 1.0f);
      EXPECT_LE(out(i, p), vmax + 1.0f);
    }
  }
}

}  // namespace
}  // namespace gpa
