// Boundary-condition tests across the kernel surface: degenerate
// sequence lengths, windows exceeding the sequence, dilation beyond the
// window, saturated global masks, and the interplay between them.

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

constexpr double kRtol = 1e-5;
constexpr double kAtol = 1e-6;

TEST(EdgeCases, WindowLargerThanSequenceIsDense) {
  const Index L = 12, d = 4;
  const auto in = make_inputs(L, d, 1300);
  Matrix<float> got(L, d), expected(L, d);
  local_attention(in.q, in.k, in.v, LocalParams{1000}, got);
  baselines::reference_attention_dense(in.q, in.k, in.v, expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST(EdgeCases, DilationBeyondWindowLeavesOnlyDiagonal) {
  // window 5, dilation 9 -> only distance 0 passes (|i-j| % 10 == 0 and
  // |i-j| < 5 forces i == j).
  const Index L = 16, d = 4;
  const auto in = make_inputs(L, d, 1301);
  Matrix<float> got(L, d);
  dilated1d_attention(in.q, in.k, in.v, Dilated1DParams{5, 9}, got);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) EXPECT_NEAR(got(i, p), in.v(i, p), 1e-6f);
  }
  EXPECT_EQ(dilated1d_nnz(L, Dilated1DParams{5, 9}), static_cast<Size>(L));
}

TEST(EdgeCases, EveryTokenGlobalIsDenseMinusWindowPlusWindowKernels) {
  // All tokens global, subtract window 1 (self): chain with local(1)
  // reconstructs dense attention.
  const Index L = 20, d = 8;
  const auto in = make_inputs(L, d, 1302);
  std::vector<Index> all(L);
  std::iota(all.begin(), all.end(), Index{0});
  GlobalMinusLocalParams p;
  p.global = make_global(all, L);
  p.local = make_local(1);

  SoftmaxState state(L, d);
  local_attention_accumulate(in.q, in.k, in.v, p.local, state);
  global_attention_accumulate(in.q, in.k, in.v, p, state);
  Matrix<float> got(L, d), expected(L, d);
  state.finalize_into(got);
  baselines::reference_attention_dense(in.q, in.k, in.v, expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST(EdgeCases, NoGlobalTokensMeansEmptyGlobalKernel) {
  const Index L = 16, d = 4;
  const auto in = make_inputs(L, d, 1303);
  GlobalMinusLocalParams p;
  p.local = make_local(2);
  Matrix<float> got(L, d);
  got.fill(9.0f);
  global_attention(in.q, in.k, in.v, p, got);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < d; ++j) EXPECT_EQ(got(i, j), 0.0f);
  }
}

TEST(EdgeCases, Dilated2DWithBlockEqualLIsOneGroupPerToken) {
  // b == L -> group size 1: token i attends to itself iff (i % L) % (r+1) == 0.
  const Index L = 12, d = 4;
  const auto in = make_inputs(L, d, 1304);
  const auto p = make_dilated2d(L, L, 1);
  Matrix<float> got(L, d);
  dilated2d_attention(in.q, in.k, in.v, p, got);
  for (Index i = 0; i < L; ++i) {
    const bool live = i % 2 == 0;
    for (Index pp = 0; pp < d; ++pp) {
      if (live) {
        EXPECT_NEAR(got(i, pp), in.v(i, pp), 1e-6f);
      } else {
        EXPECT_EQ(got(i, pp), 0.0f);
      }
    }
  }
}

TEST(EdgeCases, Dilated2DWithSingleBlockCoversWholeSequence) {
  const Index L = 12, d = 4;
  const auto in = make_inputs(L, d, 1305);
  const auto p = make_dilated2d(L, 1, 0);  // one block spanning everything
  Matrix<float> got(L, d), expected(L, d);
  dilated2d_attention(in.q, in.k, in.v, p, got);
  baselines::reference_attention_dense(in.q, in.k, in.v, expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST(EdgeCases, EveryKernelHandlesLengthOne) {
  const auto in = make_inputs(1, 4, 1306);
  Matrix<float> got(1, 4);

  local_attention(in.q, in.k, in.v, LocalParams{3}, got);
  for (Index p = 0; p < 4; ++p) EXPECT_NEAR(got(0, p), in.v(0, p), 1e-6f);

  dilated1d_attention(in.q, in.k, in.v, Dilated1DParams{3, 1}, got);
  for (Index p = 0; p < 4; ++p) EXPECT_NEAR(got(0, p), in.v(0, p), 1e-6f);

  dilated2d_attention(in.q, in.k, in.v, make_dilated2d(1, 1, 0), got);
  for (Index p = 0; p < 4; ++p) EXPECT_NEAR(got(0, p), in.v(0, p), 1e-6f);

  const auto mask = build_csr_local(1, LocalParams{1});
  csr_attention(in.q, in.k, in.v, mask, got);
  for (Index p = 0; p < 4; ++p) EXPECT_NEAR(got(0, p), in.v(0, p), 1e-6f);

  coo_attention(in.q, in.k, in.v, csr_to_coo(mask), got);
  for (Index p = 0; p < 4; ++p) EXPECT_NEAR(got(0, p), in.v(0, p), 1e-6f);

  GlobalMinusLocalParams gp;
  gp.global = make_global({0}, 1);
  gp.local = make_local(1);
  got.fill(5.0f);
  global_attention(in.q, in.k, in.v, gp, got);  // global minus self = empty
  for (Index p = 0; p < 4; ++p) EXPECT_EQ(got(0, p), 0.0f);
}

TEST(EdgeCases, HeadDimensionOne) {
  const Index L = 16;
  const auto in = make_inputs(L, 1, 1307);
  const auto mask = build_csr_random(L, RandomParams{0.5, 81});
  Matrix<float> got(L, 1), expected(L, 1);
  csr_attention(in.q, in.k, in.v, mask, got);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST(EdgeCases, ZeroLengthSequence) {
  Matrix<float> empty(0, 4), out(0, 4);
  Csr<float> mask;
  mask.rows = mask.cols = 0;
  mask.row_offsets = {0};
  EXPECT_NO_THROW(csr_attention(empty, empty, empty, mask, out));
}

TEST(EdgeCases, SolverAtExtremeSparsityTargets) {
  // Sf so small that only the diagonal survives.
  const Index L = 1024;
  const Index w = local_window_for_sparsity(L, 1.0 / (static_cast<double>(L) * L));
  EXPECT_EQ(w, 1);
  // Sf of exactly 1.0 -> full window.
  EXPECT_EQ(local_window_for_sparsity(L, 1.0), L);
}

TEST(EdgeCases, ChainingWithEmptyComponentIsIdentity) {
  const Index L = 24, d = 8;
  const auto in = make_inputs(L, d, 1308);
  const auto mask = build_csr_local(L, LocalParams{3});
  Csr<float> empty;
  empty.rows = empty.cols = L;
  empty.row_offsets.assign(static_cast<std::size_t>(L) + 1, 0);

  SoftmaxState state(L, d);
  csr_attention_accumulate(in.q, in.k, in.v, empty, state);
  csr_attention_accumulate(in.q, in.k, in.v, mask, state);
  csr_attention_accumulate(in.q, in.k, in.v, empty, state);
  Matrix<float> chained(L, d), direct(L, d);
  state.finalize_into(chained);
  csr_attention(in.q, in.k, in.v, mask, direct);
  EXPECT_EQ(max_abs_diff(chained, direct), 0.0);
}

}  // namespace
}  // namespace gpa
