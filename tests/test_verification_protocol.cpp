// The paper's §V-A verification protocol, reproduced as closely as the
// substrate allows: context length 256, embedded dimension 32, inputs
// uniform [0,1), comparison via allclose with rtol=1e-5, atol=1e-8,
// NaN==NaN, against the SDP-with-binary-mask oracle, across "varied
// levels of sparsity". One deviation: our oracle accumulates in double,
// so the paper's atol=1e-8 is widened to 2e-6 for single-precision
// kernels — the role PyTorch-vs-PyTorch comparison plays in the paper is
// played here by kernel-vs-oracle.

#include <gtest/gtest.h>

#include "baselines/reference_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

constexpr Index kL = 256;   // "context lengths of 256"
constexpr Index kD = 32;    // "embedded dimensions of 32"
constexpr double kRtol = 1e-5;
constexpr double kAtol = 2e-6;

class VerificationProtocol : public ::testing::TestWithParam<double> {
 protected:
  void SetUp() override {
    q_ = Matrix<float>(kL, kD);
    k_ = Matrix<float>(kL, kD);
    v_ = Matrix<float>(kL, kD);
    Rng rng(2025);
    fill_uniform(q_, rng);
    fill_uniform(k_, rng);
    fill_uniform(v_, rng);
  }

  Matrix<float> oracle(const Csr<float>& mask) const {
    Matrix<float> out(kL, kD);
    baselines::sdp_masked_attention(q_, k_, v_, mask, out);
    return out;
  }

  Matrix<float> q_, k_, v_;
};

TEST_P(VerificationProtocol, CsrAtVariedSparsity) {
  const auto mask = build_csr_random(kL, RandomParams{GetParam(), 77});
  Matrix<float> got(kL, kD);
  csr_attention(q_, k_, v_, mask, got);
  const auto rep = allclose(got, oracle(mask), kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << "Sf=" << GetParam() << " max diff " << rep.max_abs_diff;
}

TEST_P(VerificationProtocol, CooAtVariedSparsity) {
  const auto csr = build_csr_random(kL, RandomParams{GetParam(), 78});
  Matrix<float> got(kL, kD);
  coo_attention(q_, k_, v_, csr_to_coo(csr), got);
  const auto rep = allclose(got, oracle(csr), kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << "Sf=" << GetParam() << " max diff " << rep.max_abs_diff;
}

INSTANTIATE_TEST_SUITE_P(SparsityLevels, VerificationProtocol,
                         ::testing::Values(0.001, 0.01, 0.1, 0.4, 0.9));

TEST_F(VerificationProtocol, LocalMatchesImplicitMaskOracle) {
  // "making sure that the mask matched the implicit one that would be
  // utilized by the ordered sparsity algorithms".
  for (const Index w : {1, 3, 17, 64}) {
    const LocalParams p{w};
    Matrix<float> got(kL, kD);
    local_attention(q_, k_, v_, p, got);
    const auto rep = allclose(got, oracle(build_csr_local(kL, p)), kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "w=" << w << " diff " << rep.max_abs_diff;
  }
}

TEST_F(VerificationProtocol, Dilated1DMatchesImplicitMaskOracle) {
  for (const Index r : {1, 2, 3}) {
    const Dilated1DParams p{13, r};
    Matrix<float> got(kL, kD);
    dilated1d_attention(q_, k_, v_, p, got);
    const auto rep = allclose(got, oracle(build_csr_dilated1d(kL, p)), kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "r=" << r << " diff " << rep.max_abs_diff;
  }
}

TEST_F(VerificationProtocol, Dilated2DMatchesImplicitMaskOracle) {
  for (const Index b : {4, 16, 32}) {
    const auto p = make_dilated2d(kL, b, 1);
    Matrix<float> got(kL, kD);
    dilated2d_attention(q_, k_, v_, p, got);
    const auto rep = allclose(got, oracle(build_csr_dilated2d(p)), kRtol, kAtol);
    EXPECT_TRUE(rep.all_close) << "b=" << b << " diff " << rep.max_abs_diff;
  }
}

TEST_F(VerificationProtocol, GlobalMatchesImplicitMaskOracle) {
  GlobalMinusLocalParams p;
  p.global = make_global({0, 100, 255}, kL);
  p.local = make_local(11);
  const auto mask =
      build_csr_from_predicate(kL, [&](Index i, Index j) { return p.contains(i, j); });
  Matrix<float> got(kL, kD);
  global_attention(q_, k_, v_, p, got);
  const auto rep = allclose(got, oracle(mask), kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST_F(VerificationProtocol, FullyMaskedRowsAgreeUnderNanEqualsNan) {
  // A mask with empty rows: the paper handles PyTorch's NaN rows with
  // equal_nan=True; both sides here emit zero rows by convention, and
  // allclose still reports identical.
  Csr<float> mask = build_csr_random(kL, RandomParams{0.05, 80});
  // Empty out a few rows.
  for (const Index r : {0, 13, 255}) {
    const Index b = mask.row_begin(r), e = mask.row_end(r);
    mask.col_idx.erase(mask.col_idx.begin() + b, mask.col_idx.begin() + e);
    mask.values.erase(mask.values.begin() + b, mask.values.begin() + e);
    const Index removed = e - b;
    for (std::size_t i = static_cast<std::size_t>(r) + 1; i < mask.row_offsets.size(); ++i) {
      mask.row_offsets[i] -= removed;
    }
  }
  ASSERT_TRUE(mask.is_canonical());
  Matrix<float> got(kL, kD);
  csr_attention(q_, k_, v_, mask, got);
  const auto rep = allclose(got, oracle(mask), kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  for (Index j = 0; j < kD; ++j) EXPECT_EQ(got(13, j), 0.0f);
}

}  // namespace
}  // namespace gpa
