// Execution-matrix determinism, per arm class (src/simd/simd.hpp):
//
//  * Within ONE dispatch arm, every kernel must produce bitwise
//    identical results across thread counts, schedules, and grain sizes
//    — relaxed (FMA/AVX-512) arms included. Parallelism never changes
//    what is computed, only who/how it is computed (the PRAM claim of
//    §IV-B on the CPU substrate).
//  * Across arms, the BITWISE arms (scalar, avx2) must match each other
//    exactly by the lane contract; the RELAXED arms (avx2-fma, avx512)
//    reassociate/fuse and are held to a loose ULP sanity bound here —
//    the tight per-reduction-length bounds live in test_simd_parity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "baselines/flash_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

std::int64_t ulp_index(float x) {
  std::int32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits >= 0 ? bits : std::int64_t{std::numeric_limits<std::int32_t>::min()} - bits;
}

std::int64_t ulp_diff(float a, float b) {
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) != std::isnan(b)) return std::numeric_limits<std::int64_t>::max();
  return std::abs(ulp_index(a) - ulp_index(b));
}

/// Sanity bound for relaxed arms vs the scalar reference at this
/// fixture's shapes (d=16, ~14 neighbors/row). Deliberately loose: this
/// test pins determinism, test_simd_parity pins accuracy.
constexpr std::int64_t kRelaxedUlp = 256;

struct Fixture {
  static constexpr Index kL = 96;
  static constexpr Index kD = 16;
  Matrix<float> q{kL, kD}, k{kL, kD}, v{kL, kD};
  Csr<float> mask = build_csr_random(kL, RandomParams{0.15, 77});

  Fixture() {
    Rng rng(4242);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);
  }
};

/// The thread/schedule/grain axis, crossed below with every available
/// dispatch arm.
const std::vector<ExecPolicy>& schedule_policies() {
  static const std::vector<ExecPolicy> p = {
      ExecPolicy::serial(),
      {2, 8, Schedule::Static},
      {2, 8, Schedule::Dynamic},
      {4, 1, Schedule::Dynamic},
      {8, 33, Schedule::Static},
      {8, 33, Schedule::Dynamic},
  };
  return p;
}

/// Runs `call(policy, out)` across the full schedule × arm matrix.
/// Every policy is checked bitwise against a serial baseline computed
/// on the SAME arm; bitwise arms additionally pin their baseline equal
/// to serial-scalar, relaxed arms to the ULP sanity bound.
template <typename CallFn>
void expect_policy_invariant(const CallFn& call) {
  Matrix<float> scalar_base(Fixture::kL, Fixture::kD);
  ExecPolicy serial_scalar = ExecPolicy::serial();
  serial_scalar.simd = SimdLevel::Scalar;
  call(serial_scalar, scalar_base);

  for (const SimdLevel level : simd::available_levels()) {
    Matrix<float> arm_base(Fixture::kL, Fixture::kD);
    ExecPolicy serial_arm = ExecPolicy::serial();
    serial_arm.simd = level;
    call(serial_arm, arm_base);

    if (simd::is_bitwise_level(level)) {
      EXPECT_EQ(max_abs_diff(arm_base, scalar_base), 0.0)
          << "bitwise arm " << simd::level_name(level) << " diverged from scalar";
    } else {
      for (Index i = 0; i < Fixture::kL; ++i) {
        for (Index j = 0; j < Fixture::kD; ++j) {
          ASSERT_LE(ulp_diff(arm_base(i, j), scalar_base(i, j)), kRelaxedUlp)
              << "relaxed arm " << simd::level_name(level) << " row " << i << " col " << j
              << ": arm=" << arm_base(i, j) << " scalar=" << scalar_base(i, j);
        }
      }
    }

    for (ExecPolicy policy : schedule_policies()) {
      policy.simd = level;
      Matrix<float> out(Fixture::kL, Fixture::kD);
      call(policy, out);
      EXPECT_EQ(max_abs_diff(out, arm_base), 0.0)
          << "threads=" << policy.num_threads << " grain=" << policy.grain
          << " sched=" << static_cast<int>(policy.schedule)
          << " simd=" << simd::level_name(policy.simd);
    }
  }
}

TEST(ExecMatrix, CsrKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    csr_attention(f.q, f.k, f.v, f.mask, out, opts);
  });
}

TEST(ExecMatrix, CooKernel) {
  Fixture f;
  const auto coo = csr_to_coo(f.mask);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.coo_search = CooSearch::Binary;
    coo_attention(f.q, f.k, f.v, coo, out, opts);
  });
}

TEST(ExecMatrix, LocalKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    local_attention(f.q, f.k, f.v, LocalParams{7}, out, opts);
  });
}

TEST(ExecMatrix, Dilated1DKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    dilated1d_attention(f.q, f.k, f.v, Dilated1DParams{9, 2}, out, opts);
  });
}

TEST(ExecMatrix, Dilated2DKernel) {
  Fixture f;
  const auto params = make_dilated2d(Fixture::kL, 8, 1);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    dilated2d_attention(f.q, f.k, f.v, params, out, opts);
  });
}

TEST(ExecMatrix, GlobalKernel) {
  Fixture f;
  GlobalMinusLocalParams gp;
  gp.global = make_global({0, 31, 64}, Fixture::kL);
  gp.local = make_local(4);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    global_attention(f.q, f.k, f.v, gp, out, opts);
  });
}

TEST(ExecMatrix, CausalCsrKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = true;
    csr_attention(f.q, f.k, f.v, f.mask, out, opts);
  });
}

TEST(ExecMatrix, SpmmPipeline) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    spmm_attention(f.q, f.k, f.v, f.mask, out, opts);
  });
}

TEST(ExecMatrix, FlashBaseline) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    baselines::flash_attention(f.q, f.k, f.v, out, opts);
  });
}

TEST(ExecMatrix, SdpBaseline) {
  Fixture f;
  const auto dense = csr_to_dense(f.mask);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    baselines::sdp_masked_attention(f.q, f.k, f.v, dense, out, opts);
  });
}

}  // namespace
}  // namespace gpa
