// Execution-matrix determinism: every kernel must produce bitwise
// identical results across thread counts, schedules, grain sizes, AND
// SIMD dispatch arms (per-row arithmetic never changes: the scalar and
// AVX2 arms follow the same lane contract — see src/simd/simd.hpp).
// The baselines must be deterministic as well. This pins down the PRAM
// claim of §IV-B on the CPU substrate: neither parallelism nor the
// vector width changes what is computed, only who/how it is computed.

#include <gtest/gtest.h>

#include "baselines/flash_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Fixture {
  static constexpr Index kL = 96;
  static constexpr Index kD = 16;
  Matrix<float> q{kL, kD}, k{kL, kD}, v{kL, kD};
  Csr<float> mask = build_csr_random(kL, RandomParams{0.15, 77});

  Fixture() {
    Rng rng(4242);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);
  }
};

/// backend × schedule × SIMD: every thread/schedule/grain combination is
/// crossed with the scalar arm and (when this build + CPU has it) the
/// AVX2 arm.
const std::vector<ExecPolicy>& policies() {
  static const std::vector<ExecPolicy> p = [] {
    const std::vector<ExecPolicy> base = {
        ExecPolicy::serial(),
        {2, 8, Schedule::Static},
        {2, 8, Schedule::Dynamic},
        {4, 1, Schedule::Dynamic},
        {8, 33, Schedule::Static},
        {8, 33, Schedule::Dynamic},
    };
    std::vector<ExecPolicy> crossed;
    for (const SimdLevel level : simd::available_levels()) {
      for (ExecPolicy policy : base) {
        policy.simd = level;
        crossed.push_back(policy);
      }
    }
    return crossed;
  }();
  return p;
}

/// Runs `call(policy, out)` for every policy and checks bitwise equality
/// against the serial scalar-arm result.
template <typename CallFn>
void expect_policy_invariant(const CallFn& call) {
  Matrix<float> baseline(Fixture::kL, Fixture::kD);
  ExecPolicy serial_scalar = ExecPolicy::serial();
  serial_scalar.simd = SimdLevel::Scalar;
  call(serial_scalar, baseline);
  for (const auto& policy : policies()) {
    Matrix<float> out(Fixture::kL, Fixture::kD);
    call(policy, out);
    EXPECT_EQ(max_abs_diff(out, baseline), 0.0)
        << "threads=" << policy.num_threads << " grain=" << policy.grain
        << " sched=" << static_cast<int>(policy.schedule)
        << " simd=" << simd::level_name(policy.simd);
  }
}

TEST(ExecMatrix, CsrKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    csr_attention(f.q, f.k, f.v, f.mask, out, opts);
  });
}

TEST(ExecMatrix, CooKernel) {
  Fixture f;
  const auto coo = csr_to_coo(f.mask);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.coo_search = CooSearch::Binary;
    coo_attention(f.q, f.k, f.v, coo, out, opts);
  });
}

TEST(ExecMatrix, LocalKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    local_attention(f.q, f.k, f.v, LocalParams{7}, out, opts);
  });
}

TEST(ExecMatrix, Dilated1DKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    dilated1d_attention(f.q, f.k, f.v, Dilated1DParams{9, 2}, out, opts);
  });
}

TEST(ExecMatrix, Dilated2DKernel) {
  Fixture f;
  const auto params = make_dilated2d(Fixture::kL, 8, 1);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    dilated2d_attention(f.q, f.k, f.v, params, out, opts);
  });
}

TEST(ExecMatrix, GlobalKernel) {
  Fixture f;
  GlobalMinusLocalParams gp;
  gp.global = make_global({0, 31, 64}, Fixture::kL);
  gp.local = make_local(4);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    global_attention(f.q, f.k, f.v, gp, out, opts);
  });
}

TEST(ExecMatrix, CausalCsrKernel) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = true;
    csr_attention(f.q, f.k, f.v, f.mask, out, opts);
  });
}

TEST(ExecMatrix, SpmmPipeline) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    spmm_attention(f.q, f.k, f.v, f.mask, out, opts);
  });
}

TEST(ExecMatrix, FlashBaseline) {
  Fixture f;
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    baselines::flash_attention(f.q, f.k, f.v, out, opts);
  });
}

TEST(ExecMatrix, SdpBaseline) {
  Fixture f;
  const auto dense = csr_to_dense(f.mask);
  expect_policy_invariant([&](const ExecPolicy& p, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    baselines::sdp_masked_attention(f.q, f.k, f.v, dense, out, opts);
  });
}

}  // namespace
}  // namespace gpa
