// Tests for the analytic NNZ counts and the window-from-sparsity solvers
// (the benchmarks rely on these to hit the paper's Sf grid exactly).

#include <gtest/gtest.h>

#include <tuple>

#include "sparse/build.hpp"
#include "sparse/nnz.hpp"

namespace gpa {
namespace {

class LocalNnzSweep : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(LocalNnzSweep, AnalyticMatchesMaterialised) {
  const auto [L, w] = GetParam();
  const LocalParams p{w};
  EXPECT_EQ(local_nnz(L, p), build_csr_local(L, p).nnz());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LocalNnzSweep,
                         ::testing::Combine(::testing::Values<Index>(1, 2, 17, 64, 129),
                                            ::testing::Values<Index>(1, 2, 5, 64, 200)));

class Dilated1DNnzSweep : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(Dilated1DNnzSweep, AnalyticMatchesMaterialised) {
  const auto [L, w, r] = GetParam();
  const Dilated1DParams p{w, r};
  EXPECT_EQ(dilated1d_nnz(L, p), build_csr_dilated1d(L, p).nnz());
}

INSTANTIATE_TEST_SUITE_P(Sizes, Dilated1DNnzSweep,
                         ::testing::Combine(::testing::Values<Index>(1, 16, 65),
                                            ::testing::Values<Index>(1, 3, 9, 80),
                                            ::testing::Values<Index>(0, 1, 2, 4)));

class Dilated2DNnzSweep : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(Dilated2DNnzSweep, AnalyticMatchesMaterialised) {
  const auto [L, b, r] = GetParam();
  const Dilated2DParams p = make_dilated2d(L, b, r);
  EXPECT_EQ(dilated2d_nnz(p), build_csr_dilated2d(p).nnz());
}

INSTANTIATE_TEST_SUITE_P(Sizes, Dilated2DNnzSweep,
                         ::testing::Values(std::make_tuple<Index, Index, Index>(16, 4, 0),
                                           std::make_tuple<Index, Index, Index>(16, 4, 1),
                                           std::make_tuple<Index, Index, Index>(36, 6, 2),
                                           std::make_tuple<Index, Index, Index>(64, 8, 1)));

TEST(GlobalNnzTest, AnalyticMatchesMaterialised) {
  for (const Index g : {0, 1, 3, 7}) {
    std::vector<Index> tokens;
    for (Index t = 0; t < g; ++t) tokens.push_back(t * 5);
    const GlobalParams p = make_global(tokens, 64);
    EXPECT_EQ(global_nnz(64, p),
              build_csr_from_predicate(64, [&](Index i, Index j) { return p.contains(i, j); })
                  .nnz())
        << "g=" << g;
  }
}

TEST(GlobalMinusLocalNnzTest, AnalyticMatchesMaterialised) {
  GlobalMinusLocalParams p;
  p.global = make_global({0, 10, 33}, 64);
  p.local = make_local(5);
  EXPECT_EQ(
      global_minus_local_nnz(64, p),
      build_csr_from_predicate(64, [&](Index i, Index j) { return p.contains(i, j); }).nnz());
}

TEST(SparsityFactorTest, DefinitionFromEquation2) {
  // Sf = NNZ / TE (Eq. 2): dense mask -> 1, empty mask -> 0.
  EXPECT_DOUBLE_EQ(sparsity_factor(64 * 64, 64), 1.0);
  EXPECT_DOUBLE_EQ(sparsity_factor(0, 64), 0.0);
  EXPECT_DOUBLE_EQ(sparsity_factor(2048, 64), 0.5);
}

TEST(WindowSolverTest, HitsTargetSparsityTightly) {
  const Index L = 4096;
  for (const double target : {0.5, 0.1, 0.01, 0.001}) {
    const Index w = local_window_for_sparsity(L, target);
    const double sf = sparsity_factor(local_nnz(L, LocalParams{w}), L);
    EXPECT_GE(sf, target);
    if (w > 1) {
      const double sf_prev = sparsity_factor(local_nnz(L, LocalParams{w - 1}), L);
      EXPECT_LT(sf_prev, target);  // smallest such window
    }
  }
}

TEST(WindowSolverTest, FullDensityNeedsFullWindow) {
  EXPECT_EQ(local_window_for_sparsity(128, 1.0), 128);
}

TEST(WindowSolverTest, Dilated1DHitsTarget) {
  const Index L = 2048;
  for (const Index r : {1, 2}) {
    const Index w = dilated1d_window_for_sparsity(L, r, 0.01);
    const double sf = sparsity_factor(dilated1d_nnz(L, Dilated1DParams{w, r}), L);
    EXPECT_GE(sf, 0.01);
  }
}

TEST(BlockSolverTest, PicksClosestDivisor) {
  const Index L = 64;
  const Index b = dilated2d_block_for_sparsity(L, 1, 0.05);
  EXPECT_EQ(L % b, 0);
  const double sf = sparsity_factor(dilated2d_nnz(make_dilated2d(L, b, 1)), L);
  // Within a factor of ~4 of the target (divisor granularity).
  EXPECT_GT(sf, 0.0125);
  EXPECT_LT(sf, 0.2);
}

TEST(LongNetRuleTest, MatchesSection2DValues) {
  // §II-D: "{0.17, 0.085, 0.0027, ..., 0.000017, 2.7e-6}" for
  // {16k, 32k, 1M, ..., 160M, 1B}.
  EXPECT_NEAR(longnet_sparsity_rule(16'384), 0.17, 0.005);
  EXPECT_NEAR(longnet_sparsity_rule(32'768), 0.085, 0.002);
  EXPECT_NEAR(longnet_sparsity_rule(1'000'000), 0.0027, 0.0001);
  EXPECT_NEAR(longnet_sparsity_rule(160'000'000), 0.000017, 0.000001);
  EXPECT_NEAR(longnet_sparsity_rule(1'000'000'000), 2.7e-6, 1e-7);
}

TEST(LongNetRuleTest, ClampsToDense) {
  EXPECT_DOUBLE_EQ(longnet_sparsity_rule(1000), 1.0);
}

}  // namespace
}  // namespace gpa
