// Tests for the tensor substrate: Matrix, fills, allclose (the paper's
// verification comparator), blocked GEMM, and softmax primitives.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/softmax.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

TEST(MatrixTest, ShapeAndZeroInit) {
  Matrix<float> m(3, 5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_EQ(m.size_bytes(), 3u * 5u * sizeof(float));
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 5; ++j) EXPECT_EQ(m(i, j), 0.0f);
  }
}

TEST(MatrixTest, RowPointersAreContiguous) {
  Matrix<float> m(4, 7);
  EXPECT_EQ(m.row(1), m.data() + 7);
  EXPECT_EQ(m.row(3), m.data() + 21);
}

TEST(MatrixTest, AtChecksBounds) {
  Matrix<float> m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, -1), InvalidArgument);
}

TEST(MatrixTest, NegativeExtentsRejected) {
  EXPECT_THROW(Matrix<float>(-1, 3), InvalidArgument);
}

TEST(TensorOpsTest, FillUniformIsDeterministicPerSeed) {
  Matrix<float> a(8, 8), b(8, 8);
  Rng r1(33), r2(33);
  fill_uniform(a, r1);
  fill_uniform(b, r2);
  EXPECT_TRUE(allclose(a, b, 0, 0).all_close);
}

TEST(TensorOpsTest, F16RoundTripStaysClose) {
  Matrix<float> a(16, 16);
  Rng rng(5);
  fill_uniform(a, rng);
  const Matrix<float> back = to_f32(to_f16(a));
  const auto rep = allclose(back, a, 1e-2, 1e-3);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(TensorOpsTest, AllcloseFlagsDeviation) {
  Matrix<float> a(2, 2), b(2, 2);
  b(1, 1) = 1e-3f;
  const auto rep = allclose(a, b);
  EXPECT_FALSE(rep.all_close);
  EXPECT_EQ(rep.worst_row, 1);
  EXPECT_EQ(rep.worst_col, 1);
  EXPECT_FLOAT_EQ(static_cast<float>(rep.max_abs_diff), 1e-3f);
}

TEST(TensorOpsTest, AllcloseTreatsNanAsEqual) {
  // The paper's verification sets equal_nan=True.
  Matrix<float> a(1, 2), b(1, 2);
  a(0, 0) = std::nanf("");
  b(0, 0) = std::nanf("");
  a(0, 1) = 1.0f;
  b(0, 1) = 1.0f;
  EXPECT_TRUE(allclose(a, b).all_close);
}

TEST(TensorOpsTest, AllcloseUsesRelativeTolerance) {
  Matrix<float> a(1, 1), b(1, 1);
  a(0, 0) = 1000.0f;
  b(0, 0) = 1000.0f * (1.0f + 5e-6f);  // inside rtol=1e-5
  EXPECT_TRUE(allclose(a, b).all_close);
  b(0, 0) = 1000.0f * (1.0f + 5e-5f);  // outside
  EXPECT_FALSE(allclose(a, b).all_close);
}

// --- GEMM --------------------------------------------------------------

Matrix<float> naive_nt(const Matrix<float>& a, const Matrix<float>& b) {
  Matrix<float> c(a.rows(), b.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.rows(); ++j) {
      double acc = 0;
      for (Index p = 0; p < a.cols(); ++p) acc += double(a(i, p)) * double(b(j, p));
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(GemmShapes, NtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Matrix<float> a(m, k), b(n, k);
  Rng rng(17);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  Matrix<float> c(m, n);
  gemm_nt(a, b, c, ExecPolicy{2, 8, Schedule::Static});
  const auto rep = allclose(c, naive_nt(a, b), 1e-4, 1e-5);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST_P(GemmShapes, NnMatchesTransposedNt) {
  const auto [m, k, n] = GetParam();
  Matrix<float> a(m, k), b(k, n);
  Rng rng(19);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  // Build bT and compare a·b against naive_nt(a, bT).
  Matrix<float> bt(n, k);
  for (Index i = 0; i < k; ++i) {
    for (Index j = 0; j < n; ++j) bt(j, i) = b(i, j);
  }
  Matrix<float> c(m, n);
  gemm_nn(a, b, c, ExecPolicy{2, 8, Schedule::Dynamic});
  const auto rep = allclose(c, naive_nt(a, bt), 1e-4, 1e-5);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(7, 3, 5),
                                           std::make_tuple(64, 64, 64),
                                           std::make_tuple(65, 33, 129),
                                           std::make_tuple(128, 16, 96)));

TEST(GemmTest, ShapeMismatchThrows) {
  Matrix<float> a(4, 3), b(5, 4), c(4, 5);
  EXPECT_THROW(gemm_nt(a, b, c), InvalidArgument);
}

// --- Softmax -----------------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix<float> s(4, 6);
  Rng rng(23);
  fill_uniform(s, rng);
  softmax_rows(s);
  for (Index i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (Index j = 0; j < 6; ++j) {
      EXPECT_GE(s(i, j), 0.0f);
      sum += s(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeScores) {
  Matrix<float> s(1, 3);
  s(0, 0) = 10000.0f;
  s(0, 1) = 10001.0f;
  s(0, 2) = 9999.0f;
  softmax_rows(s);
  EXPECT_FALSE(std::isnan(s(0, 0)));
  EXPECT_GT(s(0, 1), s(0, 0));
  EXPECT_GT(s(0, 0), s(0, 2));
}

TEST(SoftmaxTest, FullyMaskedRowBecomesZeros) {
  Matrix<float> s(1, 4);
  for (Index j = 0; j < 4; ++j) s(0, j) = -std::numeric_limits<float>::infinity();
  softmax_rows(s);
  for (Index j = 0; j < 4; ++j) EXPECT_EQ(s(0, j), 0.0f);
}

TEST(OnlineSoftmaxTest, MatchesTwoPassSoftmax) {
  const float scores[] = {0.3f, -1.2f, 2.5f, 0.0f, 1.1f};
  OnlineSoftmaxRow osr;
  float acc = 0.0f;  // accumulate a scalar "value" of 1 per entry -> acc == l
  for (const float w : scores) {
    const auto [alpha, beta] = osr.push(w);
    acc = acc * alpha + beta * 1.0f;
  }
  // Two-pass.
  float m = -std::numeric_limits<float>::infinity();
  for (const float w : scores) m = std::max(m, w);
  float l = 0.0f;
  for (const float w : scores) l += std::exp(w - m);
  EXPECT_NEAR(osr.l, l, 1e-5f);
  EXPECT_NEAR(acc, l, 1e-5f);
  EXPECT_FLOAT_EQ(osr.m, 2.5f);
}

TEST(OnlineSoftmaxTest, EmptyRowYieldsZeroNormaliser) {
  OnlineSoftmaxRow osr;
  EXPECT_EQ(osr.inv_l(), 0.0f);
}

TEST(OnlineSoftmaxTest, NegInfScoreOnEmptyRowIsIgnored) {
  OnlineSoftmaxRow osr;
  const auto [alpha, beta] = osr.push(-std::numeric_limits<float>::infinity());
  EXPECT_EQ(alpha, 1.0f);
  EXPECT_EQ(beta, 0.0f);
  EXPECT_EQ(osr.l, 0.0f);
}

TEST(OnlineSoftmaxTest, MergeAgreesWithSequentialFold) {
  const float part1[] = {0.5f, 1.5f};
  const float part2[] = {2.5f, -0.5f, 0.1f};
  OnlineSoftmaxRow a, b, whole;
  for (const float w : part1) {
    a.push(w);
    whole.push(w);
  }
  for (const float w : part2) {
    b.push(w);
    whole.push(w);
  }
  const MergedState ms = merge_online_states(a.m, a.l, b.m, b.l);
  EXPECT_NEAR(ms.m, whole.m, 1e-6f);
  EXPECT_NEAR(ms.l, whole.l, 1e-5f);
}

TEST(OnlineSoftmaxTest, MergeOfTwoEmptyStatesIsEmpty) {
  const float ninf = -std::numeric_limits<float>::infinity();
  const MergedState ms = merge_online_states(ninf, 0.0f, ninf, 0.0f);
  EXPECT_EQ(ms.l, 0.0f);
  EXPECT_EQ(ms.coeff_a, 0.0f);
  EXPECT_EQ(ms.coeff_b, 0.0f);
}

}  // namespace
}  // namespace gpa
