// Prompt-cache (prefix dedup) tests: the pool-wide content-hash index
// must make N identical prompts cost ONE session's full pages (+ each
// session's private tail), must never change a single output bit
// relative to a dedup-disabled manager, must keep cached pages alive
// after their sessions die (that is the prompt cache), and must hand
// those orphans back under memory pressure before any live session is
// evicted. Plus the raw PrefixIndex ownership contract and a
// TSan-visible prefill-vs-reclaim race.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvcache/kvcache.hpp"
#include "obs/metrics.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::kvcache {
namespace {

SessionManager::Config dedup_config(Index d, Index page_size, Index num_pages,
                                    bool dedup = true) {
  SessionManager::Config mc;
  mc.pool.page_size = page_size;
  mc.pool.head_dim = d;
  mc.pool.num_pages = num_pages;
  mc.prefix_dedup = dedup;
  return mc;
}

struct Prompt {
  Matrix<float> q, k, v;
};

Prompt make_prompt(Index n, Index d, std::uint64_t seed) {
  Prompt p{Matrix<float>(n, d), Matrix<float>(n, d), Matrix<float>(n, d)};
  Rng rng(seed);
  fill_uniform(p.q, rng);
  fill_uniform(p.k, rng);
  fill_uniform(p.v, rng);
  return p;
}

// --- PrefixIndex: raw ownership contract -----------------------------

TEST(PrefixIndexTest, PublishAcquireReclaimLifecycle) {
  BlockPool pool({/*page_size=*/4, /*head_dim=*/8, /*num_pages=*/4});
  PrefixIndex idx;

  EXPECT_EQ(idx.acquire(42, pool), BlockPool::kNoPage);  // cold miss

  const Index p = pool.allocate();
  ASSERT_TRUE(idx.publish(42, p, pool));  // index takes its own ref
  EXPECT_EQ(pool.ref_count(p), 2);

  // A losing publish under the same chain takes no reference.
  const Index q = pool.allocate();
  EXPECT_FALSE(idx.publish(42, q, pool));
  EXPECT_EQ(pool.ref_count(q), 1);
  pool.release(q);

  // acquire retains FOR THE CALLER on top of the index's ref.
  EXPECT_EQ(idx.acquire(42, pool), p);
  EXPECT_EQ(pool.ref_count(p), 3);
  pool.release(p);  // caller changed its mind (content mismatch path)

  // Not an orphan while the allocator's caller still holds it.
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 0u);
  pool.release(p);  // now only the index holds it
  EXPECT_EQ(pool.ref_count(p), 1);
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 1u);
  EXPECT_EQ(pool.pages_in_use(), 0);
  EXPECT_EQ(idx.acquire(42, pool), BlockPool::kNoPage);  // entry is gone

  const auto st = idx.stats();
  EXPECT_EQ(st.lookups, 3u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.published, 1u);
  EXPECT_EQ(st.reclaimed, 1u);
  EXPECT_EQ(st.entries, 0);
}

TEST(PrefixIndexTest, TargetedSweepFreesOnlyOrphansAmongTheGivenPages) {
  BlockPool pool({4, 8, 4});
  PrefixIndex idx;
  const Index a = pool.allocate();  // will become an orphan
  const Index b = pool.allocate();  // stays shared (a live session's page)
  const Index c = pool.allocate();  // orphan, but not in the sweep set
  ASSERT_TRUE(idx.publish(1, a, pool));
  ASSERT_TRUE(idx.publish(2, b, pool));
  ASSERT_TRUE(idx.publish(3, c, pool));
  pool.release(a);
  pool.release(c);

  EXPECT_EQ(idx.reclaim_orphans_among({a, b}, pool), 1u);  // a only
  EXPECT_EQ(pool.ref_count(b), 2);
  EXPECT_EQ(idx.acquire(3, pool), c);  // c survived the targeted sweep
  pool.release(c);

  EXPECT_EQ(idx.reclaim_all_orphans(pool), 1u);  // c
  idx.clear(pool);                               // drops b's entry unconditionally
  pool.release(b);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

TEST(PrefixIndexTest, NotedCandidatesDriveReclaimAndStaleNotesAreHarmless) {
  BlockPool pool({4, 8, 8});
  PrefixIndex idx;
  const Index a = pool.allocate();
  const Index b = pool.allocate();
  const Index stray = pool.allocate();  // never published
  ASSERT_TRUE(idx.publish(1, a, pool));
  ASSERT_TRUE(idx.publish(2, b, pool));

  // Noting a non-entry is ignored; noting a still-held entry is
  // harmless — reclaim re-checks the refcount and frees nothing.
  idx.note_released({stray, a});
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 0u);

  pool.release(a);         // a's last outside ref goes…
  idx.note_released({a});  // …and the releasing holder notes it
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 1u);
  EXPECT_EQ(idx.acquire(1, pool), BlockPool::kNoPage);  // a's entry gone
  EXPECT_EQ(idx.acquire(2, pool), b);                   // b untouched
  pool.release(b);

  // An orphan nobody noted still falls to the fallback sweep.
  pool.release(b);
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 1u);
  pool.release(stray);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

TEST(PrefixIndexTest, ReclaimFreesNeverHitOrphansBeforeHotOnes) {
  // Admission-weighted reclaim: each acquire() bumps the entry's hit
  // counter, and reclaim_one_orphan frees the LEAST-HIT orphan — both
  // on the noted-candidate fast path and on the fallback sweep. A page
  // that has served prefix hits outlives one nobody ever matched.
  BlockPool pool({4, 8, 8});
  PrefixIndex idx;
  const Index cold = pool.allocate();  // published, never acquired
  const Index warm = pool.allocate();  // acquired once
  const Index hot = pool.allocate();   // acquired twice
  ASSERT_TRUE(idx.publish(10, cold, pool));
  ASSERT_TRUE(idx.publish(20, warm, pool));
  ASSERT_TRUE(idx.publish(30, hot, pool));
  EXPECT_EQ(idx.acquire(20, pool), warm);
  EXPECT_EQ(idx.acquire(30, pool), hot);
  EXPECT_EQ(idx.acquire(30, pool), hot);
  pool.release(warm);
  pool.release(hot);
  pool.release(hot);

  // All three are orphans now; every one is a noted candidate.
  for (const Index p : {cold, warm, hot}) pool.release(p);
  idx.note_released({cold, warm, hot});

  // Candidate path: cold (0 hits) goes before warm (1) and hot (2).
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 1u);
  EXPECT_EQ(idx.acquire(10, pool), BlockPool::kNoPage);  // cold went first
  EXPECT_EQ(idx.acquire(20, pool), warm);
  EXPECT_EQ(idx.acquire(30, pool), hot);

  // Both survivors are held again, so this reclaim frees nothing and
  // drops the now-shared candidates — the next round must come out of
  // the fallback sweep.
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 0u);
  pool.release(warm);
  pool.release(hot);

  // Fallback path (nothing noted): same min-hit ordering.
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 1u);
  EXPECT_EQ(idx.acquire(20, pool), BlockPool::kNoPage);  // warm next
  EXPECT_EQ(idx.acquire(30, pool), hot);  // the hot page survives longest
  pool.release(hot);
  EXPECT_EQ(idx.reclaim_one_orphan(pool), 1u);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

// --- the differential page-budget gate -------------------------------

TEST(PrefixDedup, IdenticalPromptsUseOneSessionsFullPages) {
  const Index d = 8, ps = 4, L = 10;  // 2 full pages + a 2-token tail
  constexpr int kSessions = 4;
  SessionManager mgr(dedup_config(d, ps, 32));
  SessionManager undeduped(dedup_config(d, ps, 32, /*dedup=*/false));

  const Prompt prompt = make_prompt(L, d, 77);
  std::vector<Matrix<float>> outs;
  for (int s = 1; s <= kSessions; ++s) {
    mgr.create(static_cast<std::uint64_t>(s), MaskSpec::make_local(LocalParams{3}));
    undeduped.create(static_cast<std::uint64_t>(s), MaskSpec::make_local(LocalParams{3}));
    outs.emplace_back();
    mgr.prefill(static_cast<std::uint64_t>(s), prompt.q, prompt.k, prompt.v, outs.back());
  }

  // Page budget: one session's 3 pages + one private tail per extra
  // session — not kSessions × 3.
  EXPECT_EQ(mgr.pool().pages_in_use(), 3 + (kSessions - 1));
  const auto st = mgr.stats();
  EXPECT_EQ(st.pages_deduped, static_cast<Size>(kSessions - 1) * 2);
  EXPECT_EQ(st.prefix_lookups, static_cast<Size>(kSessions) * 2);
  EXPECT_EQ(st.prefix_hits, static_cast<Size>(kSessions - 1) * 2);
  EXPECT_EQ(st.prefix_published, 2u);
  EXPECT_EQ(st.prefix_entries, 2);

  // Numerics are untouched by sharing: every session's prefill output
  // is bit-identical to the dedup-disabled manager's.
  for (int s = 1; s <= kSessions; ++s) {
    Matrix<float> want;
    undeduped.prefill(static_cast<std::uint64_t>(s), prompt.q, prompt.k, prompt.v, want);
    EXPECT_EQ(max_abs_diff(outs[static_cast<std::size_t>(s - 1)], want), 0.0) << "session " << s;
  }
  EXPECT_EQ(undeduped.pool().pages_in_use(), kSessions * 3);
  EXPECT_EQ(undeduped.stats().pages_deduped, 0u);
}

TEST(PrefixDedup, DecodeOverAdoptedPagesIsBitIdenticalToUndeduped) {
  const Index d = 16, ps = 4, L = 8, kSteps = 6;
  SessionManager mgr(dedup_config(d, ps, 64));
  SessionManager undeduped(dedup_config(d, ps, 64, /*dedup=*/false));

  const Prompt prompt = make_prompt(L, d, 901);
  for (std::uint64_t s = 1; s <= 2; ++s) {
    Matrix<float> out_a, out_b;
    mgr.create(s, MaskSpec::make_local(LocalParams{4}));
    undeduped.create(s, MaskSpec::make_local(LocalParams{4}));
    mgr.prefill(s, prompt.q, prompt.k, prompt.v, out_a);
    undeduped.prefill(s, prompt.q, prompt.k, prompt.v, out_b);
    ASSERT_EQ(max_abs_diff(out_a, out_b), 0.0);
  }
  ASSERT_EQ(mgr.stats().pages_deduped, 2u);  // session 2 adopted both pages

  // Sessions diverge after the shared prompt: per-session continuations
  // must fold over the shared pages bit-identically to private copies.
  for (std::uint64_t s = 1; s <= 2; ++s) {
    Rng rng(s * 31 + 7);
    Matrix<float> row(1, d), got(1, d), want(1, d);
    for (Index t = 0; t < kSteps; ++t) {
      fill_uniform(row, rng);
      mgr.decode_step(s, row, row, row, got);
      undeduped.decode_step(s, row, row, row, want);
      ASSERT_EQ(max_abs_diff(got, want), 0.0) << "session " << s << " token " << t;
    }
  }
}

TEST(PrefixDedup, DifferentMaskFamiliesNeverShareAChain) {
  // The chain key is seeded with the mask fingerprint: identical bytes
  // under different mask families stay separate entries (a session must
  // only ever adopt pages published under its own family).
  const Index d = 8, ps = 4, L = 8;
  SessionManager mgr(dedup_config(d, ps, 32));
  const Prompt prompt = make_prompt(L, d, 5);
  Matrix<float> out;
  mgr.create(1, MaskSpec::make_local(LocalParams{2}));
  mgr.prefill(1, prompt.q, prompt.k, prompt.v, out);
  mgr.create(2, MaskSpec::make_local(LocalParams{3}));
  mgr.prefill(2, prompt.q, prompt.k, prompt.v, out);

  const auto st = mgr.stats();
  EXPECT_EQ(st.prefix_hits, 0u);
  EXPECT_EQ(st.pages_deduped, 0u);
  EXPECT_EQ(mgr.pool().pages_in_use(), 4);  // two private copies
  EXPECT_EQ(st.prefix_entries, 4);
}

// --- the cache outliving its sessions --------------------------------

TEST(PrefixDedup, PromptCacheSurvivesSessionReleaseAndServesNewSessions) {
  const Index d = 8, ps = 4, L = 8;  // exactly 2 full pages, no tail
  SessionManager mgr(dedup_config(d, ps, 32));
  const Prompt prompt = make_prompt(L, d, 404);
  Matrix<float> first_out;
  mgr.create(1, MaskSpec::make_local(LocalParams{3}));
  mgr.prefill(1, prompt.q, prompt.k, prompt.v, first_out);
  mgr.release(1);

  // The session is gone; its published pages are not.
  EXPECT_EQ(mgr.pool().pages_in_use(), 2);
  EXPECT_EQ(mgr.stats().prefix_entries, 2);

  // An unrelated later session with the same prompt adopts them all:
  // zero new pages, same bits out.
  Matrix<float> out;
  mgr.create(2, MaskSpec::make_local(LocalParams{3}));
  mgr.prefill(2, prompt.q, prompt.k, prompt.v, out);
  EXPECT_EQ(mgr.pool().pages_in_use(), 2);
  EXPECT_EQ(mgr.length(2), L);
  EXPECT_EQ(mgr.stats().pages_deduped, 2u);
  EXPECT_EQ(max_abs_diff(out, first_out), 0.0);
}

TEST(PrefixDedup, OrphansAreReclaimedBeforeAnySessionIsEvicted) {
  const Index d = 8, ps = 4;
  SessionManager mgr(dedup_config(d, ps, 4));  // 16-token pool
  const Prompt a = make_prompt(8, d, 1);
  Matrix<float> out;
  mgr.create(1, MaskSpec::make_local(LocalParams{3}));
  mgr.prefill(1, a.q, a.k, a.v, out);
  mgr.release(1);  // 2 cached orphans remain

  // A 16-token prompt needs the whole pool: the two orphans must be
  // handed back (cheapest pages in the pool) — no eviction, no error.
  const Prompt b = make_prompt(16, d, 2);
  mgr.create(2, MaskSpec::make_local(LocalParams{3}));
  mgr.prefill(2, b.q, b.k, b.v, out);

  const auto st = mgr.stats();
  EXPECT_EQ(mgr.length(2), 16);
  EXPECT_EQ(st.prefix_reclaimed, 2u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(mgr.pool().pages_in_use(), 4);
  EXPECT_EQ(st.prefix_entries, 4);  // prompt b's pages are now the cache
}

TEST(PrefixDedup, FailedPrefillLeavesNoNewCacheEntries) {
  const Index d = 8, ps = 4;
  SessionManager mgr(dedup_config(d, ps, 2));
  const Prompt p = make_prompt(12, d, 9);  // needs 3 pages, pool has 2
  Matrix<float> out;
  mgr.create(1, MaskSpec::make_local(LocalParams{3}));
  EXPECT_THROW(mgr.prefill(1, p.q, p.k, p.v, out), CacheFull);

  // The failed prefill unwound everything it created — pages AND the
  // entries it published for them (a cache entry for a prompt nobody
  // completed would be correct but dead weight).
  EXPECT_TRUE(mgr.contains(1));
  EXPECT_EQ(mgr.length(1), 0);
  EXPECT_EQ(mgr.pool().pages_in_use(), 0);
  EXPECT_EQ(mgr.stats().prefix_entries, 0);
}

// --- concurrency: dedup vs eviction/reclaim (TSan leg) ----------------

TEST(PrefixDedupConcurrency, ConcurrentIdenticalPrefillsRaceReclaimCleanly) {
  // Hot threads prefill the SAME prompt into fresh sessions and release
  // them; churn threads push distinct prompts through a pool sized so
  // orphan reclaim and session eviction constantly rip pages out from
  // under the dedup lookups. Every successful prefill must still match
  // the reference bitwise — an acquire racing a reclaim may only ever
  // degrade to a miss.
  const Index d = 8, ps = 4, L = 12;
  SessionManager mgr(dedup_config(d, ps, 12));
  const Prompt shared_prompt = make_prompt(L, d, 1234);

  Matrix<float> want;
  {
    SessionManager ref(dedup_config(d, ps, 12, /*dedup=*/false));
    ref.create(1, MaskSpec::make_local(LocalParams{3}));
    ref.prefill(1, shared_prompt.q, shared_prompt.k, shared_prompt.v, want);
  }

  constexpr int kHot = 3, kChurn = 2, kIters = 24;
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<int> hot_ok{0};
  std::vector<std::thread> threads;
  for (int h = 0; h < kHot; ++h) {
    threads.emplace_back([&] {
      Matrix<float> out;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t id = next_id.fetch_add(1);
        mgr.create(id, MaskSpec::make_local(LocalParams{3}));
        try {
          mgr.prefill(id, shared_prompt.q, shared_prompt.k, shared_prompt.v, out);
          EXPECT_EQ(max_abs_diff(out, want), 0.0);
          hot_ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const SessionError&) {
          // CacheFull under churn pressure is acceptable; wrong bits are not.
        }
        mgr.release(id);
      }
    });
  }
  for (int c = 0; c < kChurn; ++c) {
    threads.emplace_back([&, c] {
      Matrix<float> out;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t id = next_id.fetch_add(1);
        const Prompt p = make_prompt(8, d, 9000 + static_cast<std::uint64_t>(c * kIters + i));
        mgr.create(id, MaskSpec::make_local(LocalParams{3}));
        try {
          mgr.prefill(id, p.q, p.k, p.v, out);
        } catch (const SessionError&) {
        }
        mgr.release(id);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(hot_ok.load(), 0);
  EXPECT_EQ(mgr.stats().sessions, 0u);
  // Sessions are gone; whatever pages remain are all index-held cache
  // entries, every one reclaimable.
  const auto st = mgr.stats();
  EXPECT_EQ(st.pages_in_use, st.prefix_entries);
}

// --- stats invariants under churn ------------------------------------

// Randomized publish/acquire/release/reclaim churn on the raw index.
// After every operation the books must close: hits never exceed
// lookups, live entries equal published minus reclaimed, all counters
// are monotone, and the registry mirror (kvcache.prefix.*) tracks the
// index's own stats exactly — including the derived misses counter,
// which only the registry carries (hits + misses == lookups).
TEST(PrefixIndexStats, ChurnKeepsBooksClosedAndRegistryInLockstep) {
  const obs::MetricsSnapshot reg0 = obs::Registry::global().snapshot();
  BlockPool pool({/*page_size=*/4, /*head_dim=*/8, /*num_pages=*/16});
  PrefixIndex idx;
  const PrefixIndex::Stats base = idx.stats();

  Rng rng(7);
  std::uint64_t next_chain = 1;
  std::vector<std::uint64_t> chains;       // ever-published chains (may be gone)
  std::vector<Index> caller_held;          // pages we hold a caller ref on
  PrefixIndex::Stats prev = base;

  for (int round = 0; round < 300; ++round) {
    switch (rng.next_u64() % 4) {
      case 0: {  // publish a fresh page under a fresh chain
        const Index p = pool.allocate();
        if (p == BlockPool::kNoPage) break;
        const std::uint64_t chain = next_chain++;
        ASSERT_TRUE(idx.publish(chain, p, pool));
        chains.push_back(chain);
        caller_held.push_back(p);  // we still hold the allocator's ref
        break;
      }
      case 1: {  // probe a known chain (hit unless reclaimed) or a cold one
        const bool cold = chains.empty() || rng.next_u64() % 3 == 0;
        const std::uint64_t chain =
            cold ? 0xdead0000u + rng.next_u64() % 64
                 : chains[rng.next_u64() % chains.size()];
        const Index p = idx.acquire(chain, pool);
        if (p != BlockPool::kNoPage) caller_held.push_back(p);
        break;
      }
      case 2: {  // drop one caller ref, telling the index about it
        if (caller_held.empty()) break;
        const Index p = caller_held.back();
        caller_held.pop_back();
        pool.release(p);
        idx.note_released({p});
        break;
      }
      default: {  // reclaim under pressure
        if (rng.next_u64() % 2 == 0) {
          idx.reclaim_one_orphan(pool);
        } else {
          idx.reclaim_all_orphans(pool);
        }
        break;
      }
    }

    const PrefixIndex::Stats s = idx.stats();
    ASSERT_LE(s.hits, s.lookups);
    ASSERT_EQ(static_cast<Size>(s.entries), s.published - s.reclaimed);
    ASSERT_GE(s.lookups, prev.lookups);
    ASSERT_GE(s.hits, prev.hits);
    ASSERT_GE(s.published, prev.published);
    ASSERT_GE(s.reclaimed, prev.reclaimed);
    prev = s;
  }

  const obs::MetricsSnapshot reg1 = obs::Registry::global().snapshot();
  const PrefixIndex::Stats s = idx.stats();
  auto delta = [&](const char* name) { return reg1.counter(name) - reg0.counter(name); };
  EXPECT_EQ(delta("kvcache.prefix.lookups"), s.lookups - base.lookups);
  EXPECT_EQ(delta("kvcache.prefix.hits"), s.hits - base.hits);
  EXPECT_EQ(delta("kvcache.prefix.published"), s.published - base.published);
  EXPECT_EQ(delta("kvcache.prefix.reclaimed"), s.reclaimed - base.reclaimed);
  EXPECT_EQ(delta("kvcache.prefix.hits") + delta("kvcache.prefix.misses"),
            delta("kvcache.prefix.lookups"));

  // Wind down: drop our refs, then reclaim everything the index holds.
  for (const Index p : caller_held) pool.release(p);
  idx.reclaim_all_orphans(pool);
  EXPECT_EQ(idx.stats().entries, 0);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

}  // namespace
}  // namespace gpa::kvcache
