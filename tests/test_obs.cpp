// Observability-layer tests: metrics registry semantics (sharded
// counters under contention, histogram bucket boundaries, snapshot
// lookups and exposition), trace-ring behavior (wraparound accounting,
// Chrome JSON well-formedness, disabled-mode no-op), the span/counter
// reconciliation over a real served workload, and the ServerStats
// torn-pair hammer the consistency contract in server_stats.hpp names
// (run under the CI TSan leg).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/serve.hpp"
#include "serve/server_stats.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

namespace trace = obs::trace;
using namespace std::chrono_literals;

// --- registry semantics ---------------------------------------------

TEST(Registry, GetOrRegisterReturnsStableReferences) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.a");
  obs::Counter& b = reg.counter("x.a");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);

  obs::Gauge& g = reg.gauge("x.g");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(reg.gauge("x.g").value(), 5);

  obs::Histogram& h = reg.histogram("x.h", {1.0, 2.0});
  EXPECT_EQ(&h, &reg.histogram("x.h", {1.0, 2.0}));
  // The edge layout is part of the name's contract.
  EXPECT_THROW(reg.histogram("x.h", {1.0, 3.0}), InvalidArgument);
}

TEST(Registry, ConcurrentIncrementsAreNotLost) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    // Get-or-register races with other threads on purpose.
    workers.emplace_back([&reg] {
      obs::Counter& c = reg.counter("contended");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("contended").value(), kThreads * kPerThread);
}

TEST(Registry, SnapshotLookupsAndReset) {
  obs::Registry reg;
  reg.counter("b.count").inc(3);
  reg.counter("a.count").inc(1);
  reg.gauge("a.gauge").set(-4);
  reg.histogram("a.hist", {10.0}).observe(5.0);

  const obs::MetricsSnapshot s = reg.snapshot();
  // Name-ascending order (scrapers diff snapshots positionally).
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "a.count");
  EXPECT_EQ(s.counters[1].name, "b.count");
  EXPECT_EQ(s.counter("b.count"), 3u);
  EXPECT_EQ(s.gauge("a.gauge"), -4);
  ASSERT_NE(s.histogram("a.hist"), nullptr);
  EXPECT_EQ(s.histogram("a.hist")->count, 1u);
  // Absent names read as untouched, not as errors.
  EXPECT_EQ(s.counter("nope"), 0u);
  EXPECT_EQ(s.gauge("nope"), 0);
  EXPECT_EQ(s.histogram("nope"), nullptr);

  reg.reset();
  EXPECT_EQ(reg.counter("b.count").value(), 0u);
  EXPECT_EQ(reg.histogram("a.hist", {10.0}).count(), 0u);
  // Registrations (and cached references) survive a reset.
  EXPECT_EQ(reg.snapshot().counters.size(), 2u);
}

TEST(Registry, TextAndJsonExposition) {
  obs::Registry reg;
  reg.counter("c.one").inc(2);
  reg.gauge("g.one").set(9);
  reg.histogram("h.one", {1.0, 5.0}).observe(3.0);

  const obs::MetricsSnapshot s = reg.snapshot();
  const std::string text = s.to_text();
  EXPECT_NE(text.find("c.one 2"), std::string::npos);
  EXPECT_NE(text.find("g.one 9"), std::string::npos);
  EXPECT_NE(text.find("le=\"5\""), std::string::npos) << text;

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"counters\":{\"c.one\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g.one\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.one\":{\"edges\":[1,5]"), std::string::npos) << json;
}

// --- histogram bucket boundaries ------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // counts[b] counts v <= edges[b] (first matching bucket); the last
  // slot is the +inf overflow.
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive upper bound)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(4.1);  // overflow
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);

  EXPECT_THROW(obs::Histogram({2.0, 1.0}), InvalidArgument);  // not ascending
  EXPECT_THROW(obs::Histogram({}), InvalidArgument);          // empty
}

// --- trace ring ------------------------------------------------------

/// The trace ring is process-global state; every suite that touches it
/// restores "disabled, default capacity, empty" so suites compose in
/// one binary regardless of order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
    trace::configure_capacity(1u << 16);
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
    trace::configure_capacity(1u << 16);
  }
};

TEST_F(TraceTest, DisabledModeEmitsNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    trace::Span s("noop", "test");
    trace::emit_complete("noop", "test", 0, 1);
    trace::emit_async("noop", "test", 'b', 1);
    trace::emit_instant("noop", "test");
  }
  EXPECT_EQ(trace::emitted(), 0u);
  EXPECT_EQ(trace::dropped(), 0u);
  EXPECT_TRUE(trace::drain_snapshot().empty());
}

TEST_F(TraceTest, WraparoundKeepsMostRecentAndCountsDrops) {
  trace::configure_capacity(8);
  EXPECT_EQ(trace::capacity(), 8u);
  trace::set_enabled(true);
  // Encode the emission index in ts_us so the survivors identify
  // themselves.
  for (std::int64_t i = 0; i < 20; ++i) trace::emit_complete("e", "test", i, 0);
  trace::set_enabled(false);

  EXPECT_EQ(trace::emitted(), 20u);
  EXPECT_EQ(trace::dropped(), 12u);
  const std::vector<trace::Event> events = trace::drain_snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first claim order of the surviving (most recent) window.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_us, static_cast<std::int64_t>(12 + i));
  }

  // Resizing is only legal while disabled.
  trace::set_enabled(true);
  EXPECT_THROW(trace::configure_capacity(16), InvalidArgument);
  trace::set_enabled(false);
  EXPECT_THROW(trace::configure_capacity(0), InvalidArgument);
}

TEST_F(TraceTest, SpanCapturesDurationAndThread) {
  trace::set_enabled(true);
  {
    trace::Span s("outer", "test");
    std::this_thread::sleep_for(2ms);
  }
  trace::set_enabled(false);
  const auto events = trace::drain_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_GE(events[0].dur_us, 1'000);
  EXPECT_EQ(events[0].tid, trace::this_thread_id());
}

/// Minimal structural JSON check: balanced {} / [] outside string
/// literals, legal escapes, and no trailing garbage. Not a full parser,
/// but it catches the classic emitter bugs (unescaped quote, missing
/// comma-vs-brace confusion, truncated tail).
void expect_balanced_json(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ASSERT_LT(i + 1, s.size()) << "dangling escape";
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        ASSERT_FALSE(stack.empty()) << "unmatched close at " << i;
        ASSERT_EQ(stack.back(), c) << "mismatched close at " << i;
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unclosed scopes";
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  trace::set_enabled(true);
  { trace::Span s("scoped", "test"); }
  trace::emit_async("req", "test", 'b', 0xbeef);
  trace::emit_async("req", "test", 'e', 0xbeef);
  trace::emit_instant("mark", "test");
  trace::set_enabled(false);

  const std::string json = trace::chrome_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Async pairs share a hex id; instants carry thread scope.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0xbeef\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

// --- span/counter reconciliation over a served workload --------------

std::shared_ptr<const serve::RequestData> make_payload(Index L, Index d, std::uint64_t seed) {
  auto data = std::make_shared<serve::RequestData>();
  data->q = Matrix<float>(L, d);
  data->k = Matrix<float>(L, d);
  data->v = Matrix<float>(L, d);
  Rng rng(seed);
  fill_uniform(data->q, rng);
  fill_uniform(data->k, rng);
  fill_uniform(data->v, rng);
  return data;
}

TEST_F(TraceTest, ServedWorkloadSpansReconcileWithRegistryCounters) {
  const Index L = 32, d = 8;
  auto mask = std::make_shared<const Csr<float>>(build_csr_random(L, RandomParams{0.2, 3}));
  auto payload = make_payload(L, d, 17);

  obs::MetricsSnapshot before = obs::Registry::global().snapshot();
  trace::set_enabled(true);
  constexpr Size kRequests = 48;
  {
    serve::ServerConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 256;
    cfg.policy.max_batch = 4;
    cfg.policy.max_wait = 200us;
    serve::Server server(cfg);
    std::vector<std::future<serve::Response>> futures;
    for (Size i = 0; i < kRequests; ++i) {
      serve::Request r;
      r.data = payload;
      r.mask = mask;
      futures.push_back(server.submit(std::move(r)));
    }
    for (auto& f : futures) ASSERT_EQ(f.get().status, serve::ResponseStatus::Ok);
    server.shutdown();
  }
  trace::set_enabled(false);
  obs::MetricsSnapshot after = obs::Registry::global().snapshot();
  ASSERT_EQ(trace::dropped(), 0u) << "ring too small for the workload";

  const std::vector<trace::Event> events = trace::drain_snapshot();
  Size begins = 0, ends = 0, dispatches = 0, items = 0;
  struct Interval {
    std::int64_t lo, hi;
  };
  std::vector<Interval> dispatch_windows;
  for (const trace::Event& e : events) {
    const std::string name = e.name;
    if (name == "serve.request") {
      (e.ph == 'b' ? begins : ends) += 1;
    } else if (name == "serve.dispatch") {
      ++dispatches;
      dispatch_windows.push_back({e.ts_us, e.ts_us + e.dur_us});
    } else if (name == "serve.item") {
      ++items;
    }
  }
  // Every request's async 'b' pairs exactly one 'e'; every request ran
  // as exactly one batch item.
  EXPECT_EQ(begins, kRequests);
  EXPECT_EQ(ends, kRequests);
  EXPECT_EQ(items, kRequests);

  // Spans and the registry's counters describe the same run.
  EXPECT_EQ(after.counter("serve.requests.submitted") - before.counter("serve.requests.submitted"),
            kRequests);
  EXPECT_EQ(after.counter("serve.requests.completed") - before.counter("serve.requests.completed"),
            kRequests);
  EXPECT_EQ(after.counter("serve.batches") - before.counter("serve.batches"), dispatches);
  EXPECT_EQ(after.counter("serve.batch.items") - before.counter("serve.batch.items"), items);

  // Nesting: every item interval sits inside some dispatch interval
  // (items run on pool threads, so containment is by timestamp, not
  // tid — the dispatch span closes only after its items finish).
  for (const trace::Event& e : events) {
    if (std::string(e.name) != "serve.item") continue;
    bool contained = false;
    for (const Interval& w : dispatch_windows) {
      if (e.ts_us >= w.lo && e.ts_us + e.dur_us <= w.hi) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "serve.item span outside every serve.dispatch window";
  }
}

// --- ServerStats torn-pair hammer (TSan coverage) --------------------

// The consistency contract under test (server_stats.hpp): a snapshot
// can never observe completed_ok without its latency samples, or
// batches without the matching occupancy slot. Run under TSan this also
// pins the implementation to its single-mutex design — any lock-free
// "optimization" that can tear shows up as a data race or a failed
// invariant here.
TEST(ServerStatsHammer, SnapshotNeverObservesTornPairs) {
  serve::ServerStats stats;
  constexpr int kWriters = 4;
  constexpr int kIters = 4'000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stats, w] {
      for (int i = 0; i < kIters; ++i) {
        stats.record_submitted();
        stats.record_queue_depth(static_cast<std::size_t>(i % 7));
        if (i % 13 == 0) {
          stats.record_rejected(serve::ResponseStatus::RejectedQueueFull);
          continue;
        }
        const Index occupancy = 1 + (i + w) % 4;
        stats.record_batch(occupancy);
        stats.record_completion(/*total_us=*/100.0 + i, /*service_us=*/50.0 + i);
      }
    });
  }

  std::thread reader([&stats, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const serve::StatsSnapshot s = stats.snapshot();
      // Coupled pairs, guarded by the same mutex as the writers.
      ASSERT_EQ(s.completed_ok, s.latency_ms.samples);
      ASSERT_EQ(s.completed_ok, s.service_ms.samples);
      Size occupancy_total = 0;
      for (const Size n : s.occupancy) occupancy_total += n;
      ASSERT_EQ(occupancy_total, s.batches);
      // Funnel ordering: submissions are recorded before their outcome.
      ASSERT_GE(s.submitted, s.completed_ok + s.rejected_queue_full + s.rejected_deadline +
                                 s.rejected_shutdown + s.rejected_session);
    }
  });

  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const serve::StatsSnapshot s = stats.snapshot();
  const Size expected_rejects = kWriters * ((kIters + 12) / 13);
  EXPECT_EQ(s.submitted, static_cast<Size>(kWriters) * kIters);
  EXPECT_EQ(s.rejected_queue_full, expected_rejects);
  EXPECT_EQ(s.completed_ok, static_cast<Size>(kWriters) * kIters - expected_rejects);
  EXPECT_EQ(s.batches, s.completed_ok);
}

}  // namespace
}  // namespace gpa
