// Property-based sweeps over randomly generated masks and inputs:
// invariants that must hold for any mask, any shape, any kernel.
// Seeded generators (no flaky randomness); each property is checked over
// a family of cases via TEST_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Case {
  std::uint64_t seed;
  Index seq_len;
  Index head_dim;
  double sparsity;
};

class RandomMaskProperties : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const auto& c = GetParam();
    q_ = Matrix<float>(c.seq_len, c.head_dim);
    k_ = Matrix<float>(c.seq_len, c.head_dim);
    v_ = Matrix<float>(c.seq_len, c.head_dim);
    Rng rng(c.seed);
    fill_uniform(q_, rng);
    fill_uniform(k_, rng);
    fill_uniform(v_, rng);
    mask_ = build_csr_random(c.seq_len, RandomParams{c.sparsity, c.seed ^ 0xabcdef});
  }

  Matrix<float> q_, k_, v_;
  Csr<float> mask_;
};

TEST_P(RandomMaskProperties, OutputRowsAreConvexCombinationsOfV) {
  // Each output row is a convex combination of V rows restricted to the
  // row's neighbors, so every output coordinate lies within the global
  // min/max of V (inputs are in [0,1)).
  const auto& c = GetParam();
  Matrix<float> out(c.seq_len, c.head_dim);
  csr_attention(q_, k_, v_, mask_, out);
  for (Index i = 0; i < c.seq_len; ++i) {
    for (Index j = 0; j < c.head_dim; ++j) {
      EXPECT_GE(out(i, j), 0.0f);
      EXPECT_LE(out(i, j), 1.0f);
    }
  }
}

TEST_P(RandomMaskProperties, EmptyRowsAreExactlyZero) {
  const auto& c = GetParam();
  Matrix<float> out(c.seq_len, c.head_dim);
  csr_attention(q_, k_, v_, mask_, out);
  for (Index i = 0; i < c.seq_len; ++i) {
    if (mask_.row_degree(i) == 0) {
      for (Index j = 0; j < c.head_dim; ++j) EXPECT_EQ(out(i, j), 0.0f);
    }
  }
}

TEST_P(RandomMaskProperties, SingleNeighborRowsCopyV) {
  const auto& c = GetParam();
  Matrix<float> out(c.seq_len, c.head_dim);
  csr_attention(q_, k_, v_, mask_, out);
  for (Index i = 0; i < c.seq_len; ++i) {
    if (mask_.row_degree(i) == 1) {
      const Index j = mask_.col_idx[static_cast<std::size_t>(mask_.row_begin(i))];
      for (Index p = 0; p < c.head_dim; ++p) EXPECT_NEAR(out(i, p), v_(j, p), 1e-6f);
    }
  }
}

TEST_P(RandomMaskProperties, ScaleInvarianceOfUniformQueryShift) {
  // softmax(w + const) == softmax(w): adding a constant vector to all
  // keys' scores for one row cannot change the output. Shift Q by a
  // scalar multiple along a direction orthogonal to nothing — instead
  // verify via the equivalent: attention with scale 0 is a plain average
  // over neighbors.
  const auto& c = GetParam();
  AttentionOptions opts;
  opts.scale = 0.0f;
  Matrix<float> out(c.seq_len, c.head_dim);
  csr_attention(q_, k_, v_, mask_, out, opts);
  for (Index i = 0; i < c.seq_len; ++i) {
    const Index deg = mask_.row_degree(i);
    if (deg == 0) continue;
    for (Index p = 0; p < c.head_dim; ++p) {
      float mean = 0.0f;
      for (Index kk = mask_.row_begin(i); kk < mask_.row_end(i); ++kk) {
        mean += v_(mask_.col_idx[static_cast<std::size_t>(kk)], p);
      }
      mean /= static_cast<float>(deg);
      EXPECT_NEAR(out(i, p), mean, 1e-5f) << "row " << i;
    }
  }
}

TEST_P(RandomMaskProperties, CooAndCsrProduceIdenticalResults) {
  const auto& c = GetParam();
  Matrix<float> a(c.seq_len, c.head_dim), b(c.seq_len, c.head_dim);
  csr_attention(q_, k_, v_, mask_, a);
  coo_attention(q_, k_, v_, csr_to_coo(mask_), b);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);  // same edge order -> bitwise equal
}

TEST_P(RandomMaskProperties, FusedAndTwoPhaseAgree) {
  const auto& c = GetParam();
  Matrix<float> fused(c.seq_len, c.head_dim), two(c.seq_len, c.head_dim);
  csr_attention(q_, k_, v_, mask_, fused);
  spmm_attention(q_, k_, v_, mask_, two);
  const auto rep = allclose(two, fused, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST_P(RandomMaskProperties, SplittingMaskInTwoAndChainingIsExact) {
  const auto& c = GetParam();
  // Split columns: even-indexed entries vs odd-indexed entries per row.
  Csr<float> even, odd;
  even.rows = odd.rows = mask_.rows;
  even.cols = odd.cols = mask_.cols;
  even.row_offsets.assign(static_cast<std::size_t>(mask_.rows) + 1, 0);
  odd.row_offsets.assign(static_cast<std::size_t>(mask_.rows) + 1, 0);
  for (Index i = 0; i < mask_.rows; ++i) {
    Index n = 0;
    for (Index kk = mask_.row_begin(i); kk < mask_.row_end(i); ++kk, ++n) {
      auto& target = (n % 2 == 0) ? even : odd;
      target.col_idx.push_back(mask_.col_idx[static_cast<std::size_t>(kk)]);
      target.values.push_back(1.0f);
    }
    even.row_offsets[static_cast<std::size_t>(i) + 1] = static_cast<Index>(even.col_idx.size());
    odd.row_offsets[static_cast<std::size_t>(i) + 1] = static_cast<Index>(odd.col_idx.size());
  }
  SoftmaxState state(c.seq_len, c.head_dim);
  csr_attention_accumulate(q_, k_, v_, even, state);
  csr_attention_accumulate(q_, k_, v_, odd, state);
  Matrix<float> chained(c.seq_len, c.head_dim), whole(c.seq_len, c.head_dim);
  state.finalize_into(chained);
  csr_attention(q_, k_, v_, mask_, whole);
  const auto rep = allclose(chained, whole, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST_P(RandomMaskProperties, WorkScalesWithNnzNotLength) {
  // "True sparsity": the kernel touches exactly nnz edges. Count edges
  // via an instrumented mask (values double as counters is invasive;
  // instead verify the documented invariant structurally: masks with
  // fewer nnz produce strictly less work in the SDDMM value array).
  const auto& c = GetParam();
  const auto denser = build_csr_random(c.seq_len, RandomParams{c.sparsity * 2.0, 999});
  EXPECT_LE(mask_.nnz(), denser.nnz() + mask_.nnz() / 4 + 16);
  const auto s1 = sddmm(q_, k_, mask_, 1.0f);
  EXPECT_EQ(s1.nnz(), mask_.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RandomMaskProperties,
    ::testing::Values(Case{1, 32, 8, 0.05}, Case{2, 64, 16, 0.1}, Case{3, 128, 8, 0.02},
                      Case{4, 96, 24, 0.15}, Case{5, 48, 4, 0.3}, Case{6, 200, 12, 0.01}));

// --- Permutation invariance of the online fold ------------------------

TEST(OnlineFoldProperty, NeighborOrderDoesNotChangeResultBeyondRounding) {
  const Index L = 64, d = 16;
  Matrix<float> q(L, d), k(L, d), v(L, d);
  Rng rng(800);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  const auto mask = build_csr_random(L, RandomParams{0.2, 81});

  // Reversed-column mask: same edge set, opposite fold order. Build by
  // reversing each row (still "a" mask but non-canonical ordering is
  // fine for the kernel, which only reads ranges).
  Csr<float> reversed = mask;
  for (Index i = 0; i < L; ++i) {
    std::reverse(reversed.col_idx.begin() + reversed.row_begin(i),
                 reversed.col_idx.begin() + reversed.row_end(i));
  }
  Matrix<float> a(L, d), b(L, d);
  csr_attention(q, k, v, mask, a);
  csr_attention(q, k, v, reversed, b);
  const auto rep = allclose(a, b, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST(SparsityWorkProperty, SparsityFactorBoundsMaskSize) {
  // For every generated pattern: Sf · L² == nnz exactly (Eq. 2).
  for (const Index L : {31, 64, 100}) {
    const auto masks = {build_csr_local(L, LocalParams{5}),
                        build_csr_dilated1d(L, Dilated1DParams{7, 1}),
                        build_csr_random(L, RandomParams{0.1, 9})};
    for (const auto& m : masks) {
      const double sf = sparsity_factor(m.nnz(), L);
      EXPECT_NEAR(sf * static_cast<double>(L) * static_cast<double>(L),
                  static_cast<double>(m.nnz()), 1e-6);
    }
  }
}

}  // namespace
}  // namespace gpa
