// Tests for the training backward pass: analytic dense oracle (double
// precision), finite-difference spot checks, sparse-vs-dense agreement,
// causal support, and the local-kernel symmetry shortcut.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/backward.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v, dout;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  fill_uniform(in.dout, rng);
  return in;
}

/// Dense masked attention forward + backward, all in double precision —
/// the oracle. Mask given densely; empty rows produce zero output and
/// zero gradients.
struct DenseGrads {
  Matrix<float> dq, dk, dv;
};
DenseGrads dense_backward(const Inputs& in, const Matrix<std::uint8_t>& mask, float scale) {
  const Index L = in.q.rows();
  const Index d = in.q.cols();
  std::vector<std::vector<double>> P(static_cast<std::size_t>(L),
                                     std::vector<double>(static_cast<std::size_t>(L), 0.0));
  // Forward probabilities.
  for (Index i = 0; i < L; ++i) {
    double mx = -1e300;
    std::vector<double> s(static_cast<std::size_t>(L), -1e300);
    for (Index j = 0; j < L; ++j) {
      if (!mask(i, j)) continue;
      double acc = 0;
      for (Index p = 0; p < d; ++p) acc += double(in.q(i, p)) * double(in.k(j, p));
      s[static_cast<std::size_t>(j)] = acc * scale;
      mx = std::max(mx, s[static_cast<std::size_t>(j)]);
    }
    if (mx == -1e300) continue;
    double l = 0;
    for (Index j = 0; j < L; ++j) {
      if (s[static_cast<std::size_t>(j)] == -1e300) continue;
      P[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::exp(s[static_cast<std::size_t>(j)] - mx);
      l += P[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    for (Index j = 0; j < L; ++j) P[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] /= l;
  }
  // O and D.
  std::vector<std::vector<double>> O(static_cast<std::size_t>(L),
                                     std::vector<double>(static_cast<std::size_t>(d), 0.0));
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) {
      const double pij = P[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (pij == 0.0) continue;
      for (Index p = 0; p < d; ++p) O[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)] += pij * in.v(j, p);
    }
  }
  DenseGrads g{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  g.dq.zero();
  g.dk.zero();
  g.dv.zero();
  for (Index i = 0; i < L; ++i) {
    double Di = 0;
    for (Index p = 0; p < d; ++p) Di += double(in.dout(i, p)) * O[static_cast<std::size_t>(i)][static_cast<std::size_t>(p)];
    for (Index j = 0; j < L; ++j) {
      const double pij = P[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (pij == 0.0) continue;
      double dov = 0;
      for (Index p = 0; p < d; ++p) dov += double(in.dout(i, p)) * double(in.v(j, p));
      const double ds = pij * (dov - Di);
      for (Index p = 0; p < d; ++p) {
        g.dq(i, p) += static_cast<float>(scale * ds * in.k(j, p));
        g.dk(j, p) += static_cast<float>(scale * ds * in.q(i, p));
        g.dv(j, p) += static_cast<float>(pij * in.dout(i, p));
      }
    }
  }
  return g;
}

constexpr double kRtol = 1e-4;
constexpr double kAtol = 1e-5;

TEST(BackwardCsr, MatchesDenseOracleOnRandomMask) {
  const Index L = 48, d = 12;
  const auto in = make_inputs(L, d, 1000);
  const auto mask = build_csr_random(L, RandomParams{0.2, 51});
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  AttentionCache cache;
  csr_attention_forward(in.q, in.k, in.v, mask, cache);
  AttentionGrads grads;
  csr_attention_backward(in.q, in.k, in.v, mask, cache, in.dout, grads);

  const auto oracle = dense_backward(in, csr_to_dense(mask), scale);
  EXPECT_TRUE(allclose(grads.dq, oracle.dq, kRtol, kAtol).all_close)
      << allclose(grads.dq, oracle.dq, 0, 0).max_abs_diff;
  EXPECT_TRUE(allclose(grads.dk, oracle.dk, kRtol, kAtol).all_close)
      << allclose(grads.dk, oracle.dk, 0, 0).max_abs_diff;
  EXPECT_TRUE(allclose(grads.dv, oracle.dv, kRtol, kAtol).all_close)
      << allclose(grads.dv, oracle.dv, 0, 0).max_abs_diff;
}

TEST(BackwardCsr, ForwardCacheMatchesInferenceKernel) {
  const Index L = 40, d = 8;
  const auto in = make_inputs(L, d, 1001);
  const auto mask = build_csr_random(L, RandomParams{0.15, 52});
  AttentionCache cache;
  csr_attention_forward(in.q, in.k, in.v, mask, cache);
  Matrix<float> inference(L, d);
  csr_attention(in.q, in.k, in.v, mask, inference);
  EXPECT_EQ(max_abs_diff(cache.out, inference), 0.0);
}

TEST(BackwardCsr, FiniteDifferenceSpotCheck) {
  // Central differences on a scalar loss: loss = sum(O ⊙ dout).
  const Index L = 12, d = 4;
  const auto in = make_inputs(L, d, 1002);
  const auto mask = build_csr_random(L, RandomParams{0.4, 53});

  AttentionCache cache;
  csr_attention_forward(in.q, in.k, in.v, mask, cache);
  AttentionGrads grads;
  csr_attention_backward(in.q, in.k, in.v, mask, cache, in.dout, grads);

  auto loss_of = [&](const Matrix<float>& q, const Matrix<float>& k, const Matrix<float>& v) {
    Matrix<float> o(L, d);
    csr_attention(q, k, v, mask, o);
    double loss = 0;
    for (Index i = 0; i < L; ++i) {
      for (Index p = 0; p < d; ++p) loss += double(o(i, p)) * double(in.dout(i, p));
    }
    return loss;
  };

  const float eps = 3e-3f;
  // Check a handful of coordinates in each gradient.
  for (auto [i, p] : {std::pair<Index, Index>{0, 0}, {5, 2}, {11, 3}}) {
    for (int which = 0; which < 3; ++which) {
      Inputs plus = in, minus = in;
      Matrix<float>* target_p = which == 0 ? &plus.q : which == 1 ? &plus.k : &plus.v;
      Matrix<float>* target_m = which == 0 ? &minus.q : which == 1 ? &minus.k : &minus.v;
      (*target_p)(i, p) += eps;
      (*target_m)(i, p) -= eps;
      const double fd =
          (loss_of(plus.q, plus.k, plus.v) - loss_of(minus.q, minus.k, minus.v)) / (2.0 * eps);
      const Matrix<float>& g = which == 0 ? grads.dq : which == 1 ? grads.dk : grads.dv;
      EXPECT_NEAR(g(i, p), fd, std::abs(fd) * 0.02 + 2e-3)
          << "grad " << which << " at (" << i << "," << p << ")";
    }
  }
}

TEST(BackwardCsr, EmptyRowsGetZeroGradients) {
  const Index L = 16, d = 4;
  const auto in = make_inputs(L, d, 1003);
  // Mask where row 3 is empty and column 5 is never attended.
  auto mask = build_csr_from_predicate(
      L, [](Index i, Index j) { return i != 3 && j != 5 && (i + j) % 3 == 0; });
  AttentionCache cache;
  csr_attention_forward(in.q, in.k, in.v, mask, cache);
  AttentionGrads grads;
  csr_attention_backward(in.q, in.k, in.v, mask, cache, in.dout, grads);
  for (Index p = 0; p < d; ++p) {
    EXPECT_EQ(grads.dq(3, p), 0.0f);  // empty query row
    EXPECT_EQ(grads.dk(5, p), 0.0f);  // never-attended key
    EXPECT_EQ(grads.dv(5, p), 0.0f);
  }
}

TEST(BackwardCsr, CausalMatchesIntersectedMask) {
  const Index L = 32, d = 8;
  const auto in = make_inputs(L, d, 1004);
  const auto mask = build_csr_random(L, RandomParams{0.3, 54});
  const auto tri = build_csr_from_predicate(L, [](Index i, Index j) { return j <= i; });
  const auto intersected = mask_intersect(mask, tri);

  AttentionOptions causal;
  causal.causal = true;
  AttentionCache cache_c;
  csr_attention_forward(in.q, in.k, in.v, mask, cache_c, causal);
  AttentionGrads grads_c;
  csr_attention_backward(in.q, in.k, in.v, mask, cache_c, in.dout, grads_c, causal);

  AttentionCache cache_i;
  csr_attention_forward(in.q, in.k, in.v, intersected, cache_i);
  AttentionGrads grads_i;
  csr_attention_backward(in.q, in.k, in.v, intersected, cache_i, in.dout, grads_i);

  EXPECT_TRUE(allclose(grads_c.dq, grads_i.dq, kRtol, kAtol).all_close);
  EXPECT_TRUE(allclose(grads_c.dk, grads_i.dk, kRtol, kAtol).all_close);
  EXPECT_TRUE(allclose(grads_c.dv, grads_i.dv, kRtol, kAtol).all_close);
}

TEST(BackwardLocal, MatchesCsrOnMaterialisedWindow) {
  const Index L = 64, d = 16;
  const auto in = make_inputs(L, d, 1005);
  const LocalParams p{5};
  const auto mask = build_csr_local(L, p);

  AttentionCache cache_l, cache_c;
  local_attention_forward(in.q, in.k, in.v, p, cache_l);
  csr_attention_forward(in.q, in.k, in.v, mask, cache_c);
  EXPECT_EQ(max_abs_diff(cache_l.out, cache_c.out), 0.0);

  AttentionGrads gl, gc;
  local_attention_backward(in.q, in.k, in.v, p, cache_l, in.dout, gl);
  csr_attention_backward(in.q, in.k, in.v, mask, cache_c, in.dout, gc);
  EXPECT_TRUE(allclose(gl.dq, gc.dq, 1e-5, 1e-6).all_close);
  EXPECT_TRUE(allclose(gl.dk, gc.dk, 1e-5, 1e-6).all_close);
  EXPECT_TRUE(allclose(gl.dv, gc.dv, 1e-5, 1e-6).all_close);
}

TEST(BackwardLocal, CausalWindowGradients) {
  const Index L = 48, d = 8;
  const auto in = make_inputs(L, d, 1006);
  const LocalParams p{4};
  AttentionOptions causal;
  causal.causal = true;

  AttentionCache cache;
  local_attention_forward(in.q, in.k, in.v, p, cache, causal);
  AttentionGrads grads;
  local_attention_backward(in.q, in.k, in.v, p, cache, in.dout, grads, causal);

  const auto tri = build_csr_from_predicate(L, [](Index i, Index j) { return j <= i; });
  const auto mask = mask_intersect(build_csr_local(L, p), tri);
  AttentionCache cache_c;
  csr_attention_forward(in.q, in.k, in.v, mask, cache_c);
  AttentionGrads gc;
  csr_attention_backward(in.q, in.k, in.v, mask, cache_c, in.dout, gc);
  EXPECT_TRUE(allclose(grads.dq, gc.dq, kRtol, kAtol).all_close);
  EXPECT_TRUE(allclose(grads.dk, gc.dk, kRtol, kAtol).all_close);
  EXPECT_TRUE(allclose(grads.dv, gc.dv, kRtol, kAtol).all_close);
}

TEST(BackwardValidation, WeightedMasksRejected) {
  const Index L = 8, d = 4;
  const auto in = make_inputs(L, d, 1007);
  const auto mask = build_csr_local(L, LocalParams{2});
  AttentionOptions opts;
  opts.use_mask_values = true;
  AttentionCache cache;
  EXPECT_THROW(csr_attention_forward(in.q, in.k, in.v, mask, cache, opts), InvalidArgument);
}

TEST(BackwardValidation, MismatchedCacheRejected) {
  const Index L = 8, d = 4;
  const auto in = make_inputs(L, d, 1008);
  const auto mask = build_csr_local(L, LocalParams{2});
  AttentionCache cache;  // never filled
  AttentionGrads grads;
  EXPECT_THROW(csr_attention_backward(in.q, in.k, in.v, mask, cache, in.dout, grads),
               InvalidArgument);
}

TEST(BackwardParallelism, ThreadCountDoesNotChangeGradients) {
  const Index L = 64, d = 8;
  const auto in = make_inputs(L, d, 1009);
  const auto mask = build_csr_random(L, RandomParams{0.2, 55});
  AttentionCache cache;
  csr_attention_forward(in.q, in.k, in.v, mask, cache);

  AttentionOptions serial;
  serial.policy = ExecPolicy::serial();
  AttentionGrads g1;
  csr_attention_backward(in.q, in.k, in.v, mask, cache, in.dout, g1, serial);

  AttentionOptions par;
  par.policy = ExecPolicy{4, 8, Schedule::Dynamic};
  AttentionGrads g2;
  csr_attention_backward(in.q, in.k, in.v, mask, cache, in.dout, g2, par);
  EXPECT_EQ(max_abs_diff(g1.dq, g2.dq), 0.0);
  EXPECT_EQ(max_abs_diff(g1.dk, g2.dk), 0.0);
  EXPECT_EQ(max_abs_diff(g1.dv, g2.dv), 0.0);
}

}  // namespace
}  // namespace gpa
