// Sequential kernel chaining (§V-F): folding disjoint edge sets into one
// SoftmaxState must equal a single kernel call over the union mask —
// the equivalence Fig. 6 relies on ("the outputs of each approach were
// deemed identical").

#include <gtest/gtest.h>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/composed.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

TEST(ChainingTest, LocalPlusGlobalEqualsUnionCsr) {
  const Index L = 96, d = 16;
  const auto in = make_inputs(L, d, 300);
  const LocalParams local{6};
  GlobalMinusLocalParams gml;
  gml.global = make_global({0, 40}, L);
  gml.local = local;

  SoftmaxState state(L, d);
  local_attention_accumulate(in.q, in.k, in.v, local, state);
  global_attention_accumulate(in.q, in.k, in.v, gml, state);
  Matrix<float> chained(L, d);
  state.finalize_into(chained);

  const auto union_mask = mask_union(
      build_csr_local(L, local),
      build_csr_from_predicate(L, [&](Index i, Index j) { return gml.contains(i, j); }));
  Matrix<float> fused(L, d);
  csr_attention(in.q, in.k, in.v, union_mask, fused);

  const auto rep = allclose(chained, fused, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(ChainingTest, OrderOfDisjointComponentsIsIrrelevant) {
  const Index L = 64, d = 8;
  const auto in = make_inputs(L, d, 301);
  const auto a = build_csr_local(L, LocalParams{4});
  const auto b = mask_subtract(build_csr_random(L, RandomParams{0.1, 17}), a);

  SoftmaxState ab(L, d), ba(L, d);
  csr_attention_accumulate(in.q, in.k, in.v, a, ab);
  csr_attention_accumulate(in.q, in.k, in.v, b, ab);
  csr_attention_accumulate(in.q, in.k, in.v, b, ba);
  csr_attention_accumulate(in.q, in.k, in.v, a, ba);
  Matrix<float> out_ab(L, d), out_ba(L, d);
  ab.finalize_into(out_ab);
  ba.finalize_into(out_ba);
  // Online softmax is order-dependent only in rounding; results agree
  // to float tolerance.
  const auto rep = allclose(out_ab, out_ba, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(ChainingTest, ThreeWayBigBirdChainMatchesReference) {
  const Index L = 128, d = 16;
  const auto in = make_inputs(L, d, 302);
  const auto preset = make_bigbird(L, 3, 2, 0.02);

  Matrix<float> chained(L, d);
  composed_attention(in.q, in.k, in.v, preset, chained);

  Matrix<float> expected(L, d);
  baselines::reference_attention(in.q, in.k, in.v, preset.fused, expected);
  const auto rep = allclose(chained, expected, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(ChainingTest, ComposedEqualsFusedForAllPresets) {
  const Index L = 100, d = 12;
  const auto in = make_inputs(L, d, 303);
  const auto presets = {make_longformer(L, 4, 2), make_longformer_dilated(L, 4, 2, 2),
                        make_bigbird(L, 4, 2, 0.03)};
  for (const auto& preset : presets) {
    Matrix<float> chained(L, d), fused(L, d);
    composed_attention(in.q, in.k, in.v, preset, chained);
    fused_csr_attention(in.q, in.k, in.v, preset, fused);
    const auto rep = allclose(chained, fused, 1e-5, 1e-6);
    EXPECT_TRUE(rep.all_close) << preset.name << " max diff " << rep.max_abs_diff;
  }
}

TEST(ChainingTest, StateReuseAfterFinalizeIsStable) {
  // finalize_into is const: accumulating more edges afterwards must
  // still produce the union result.
  const Index L = 48, d = 8;
  const auto in = make_inputs(L, d, 304);
  const auto a = build_csr_local(L, LocalParams{3});
  const auto b = mask_subtract(build_csr_random(L, RandomParams{0.08, 4}), a);

  SoftmaxState state(L, d);
  csr_attention_accumulate(in.q, in.k, in.v, a, state);
  Matrix<float> partial(L, d);
  state.finalize_into(partial);  // snapshot after first component
  csr_attention_accumulate(in.q, in.k, in.v, b, state);
  Matrix<float> full(L, d);
  state.finalize_into(full);

  Matrix<float> expected_partial(L, d), expected_full(L, d);
  baselines::reference_attention(in.q, in.k, in.v, a, expected_partial);
  baselines::reference_attention(in.q, in.k, in.v, mask_union(a, b), expected_full);
  EXPECT_TRUE(allclose(partial, expected_partial, 1e-5, 1e-6).all_close);
  EXPECT_TRUE(allclose(full, expected_full, 1e-5, 1e-6).all_close);
}

TEST(ChainingTest, HalfPrecisionChainingMatchesFused) {
  const Index L = 64, d = 16;
  const auto in = make_inputs(L, d, 305);
  const auto preset = make_longformer(L, 5, 2);
  const auto qh = to_f16(in.q), kh = to_f16(in.k), vh = to_f16(in.v);
  Matrix<half_t> chained(L, d), fused(L, d);
  composed_attention(qh, kh, vh, preset, chained);
  fused_csr_attention(qh, kh, vh, preset, fused);
  const auto rep = allclose(to_f32(chained), to_f32(fused), 5e-3, 5e-3);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

}  // namespace
}  // namespace gpa
