// Unit tests for the common substrate: half_t storage, deterministic
// RNG, dtype metadata, error macros.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/dtype_of.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace gpa {
namespace {

TEST(DTypeTest, SizesMatchIeee) {
  EXPECT_EQ(dtype_size(DType::F32), 4u);
  EXPECT_EQ(dtype_size(DType::F16), 2u);
  EXPECT_EQ(dtype_name(DType::F32), "fp32");
  EXPECT_EQ(dtype_name(DType::F16), "fp16");
}

TEST(DTypeTest, TraitMapsStorageTypes) {
  EXPECT_EQ(dtype_of_v<float>, DType::F32);
  EXPECT_EQ(dtype_of_v<half_t>, DType::F16);
}

TEST(HalfTest, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {  // all integers |x| <= 2^11 are exact in fp16
    const half_t h(static_cast<float>(i));
    EXPECT_EQ(static_cast<float>(h), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(half_t(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half_t(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(half_t(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half_t(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half_t(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(half_t(65504.0f).bits(), 0x7bffu);  // max finite fp16
}

TEST(HalfTest, OverflowBecomesInfinity) {
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t(1e6f))));
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t(-1e6f))));
  EXPECT_GT(static_cast<float>(half_t(1e6f)), 0.0f);
  EXPECT_LT(static_cast<float>(half_t(-1e6f)), 0.0f);
}

TEST(HalfTest, InfinityAndNanPropagate) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t(inf))));
  EXPECT_TRUE(std::isnan(static_cast<float>(half_t(std::nanf("")))));
}

TEST(HalfTest, SubnormalsRoundTrip) {
  // Smallest positive subnormal fp16 = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(static_cast<float>(half_t(tiny)), tiny);
  // Below half the smallest subnormal flushes to zero.
  EXPECT_EQ(static_cast<float>(half_t(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16 value;
  // round-to-even keeps 1.0.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(half_t(halfway).bits(), 0x3c00u);
  // 1 + 3·2^-11 is halfway between the 1st and 2nd steps; rounds up to
  // even mantissa 2.
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(half_t(halfway2).bits(), 0x3c02u);
}

TEST(HalfTest, ConversionErrorBounded) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.next_float() * 100.0f - 50.0f;
    const float back = static_cast<float>(half_t(x));
    // fp16 relative precision is 2^-11.
    EXPECT_NEAR(back, x, std::abs(x) * std::ldexp(1.0f, -10) + 1e-4f);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, FloatInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextIndexCoversRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const Index v = rng.next_index(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    GPA_CHECK(1 == 2, "one is not two");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMacroPassesSilently) {
  EXPECT_NO_THROW(GPA_CHECK(true, "never"));
}

}  // namespace
}  // namespace gpa
