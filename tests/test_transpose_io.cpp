// Tests for CSR transpose (backward-pass substrate) and mask
// serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "sparse/build.hpp"
#include "sparse/io.hpp"
#include "sparse/transpose.hpp"

namespace gpa {
namespace {

TEST(TransposeTest, MatchesDenseTranspose) {
  const Index L = 48;
  const auto mask = build_csr_random(L, RandomParams{0.15, 11});
  const auto t = transpose_csr(mask);
  EXPECT_TRUE(t.t.is_canonical());
  const auto dense = csr_to_dense(mask);
  const auto dense_t = csr_to_dense(t.t);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) EXPECT_EQ(dense_t(i, j), dense(j, i));
  }
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  const auto mask = build_csr_random(64, RandomParams{0.1, 12});
  const auto back = transpose_csr(transpose_csr(mask).t).t;
  EXPECT_EQ(back.row_offsets, mask.row_offsets);
  EXPECT_EQ(back.col_idx, mask.col_idx);
  EXPECT_EQ(back.values, mask.values);
}

TEST(TransposeTest, EntryMapPointsBackToSource) {
  const auto mask = build_csr_random(32, RandomParams{0.2, 13});
  const auto t = transpose_csr(mask);
  ASSERT_EQ(t.entry_map.size(), mask.nnz());
  // For each transpose entry (j -> i) at slot s, entry_map[s] must be a
  // forward entry with row i, column j.
  std::vector<Index> fwd_row(mask.nnz());
  for (Index i = 0; i < mask.rows; ++i) {
    for (Index k = mask.row_begin(i); k < mask.row_end(i); ++k) {
      fwd_row[static_cast<std::size_t>(k)] = i;
    }
  }
  for (Index j = 0; j < t.t.rows; ++j) {
    for (Index s = t.t.row_begin(j); s < t.t.row_end(j); ++s) {
      const Index i = t.t.col_idx[static_cast<std::size_t>(s)];
      const Index src = t.entry_map[static_cast<std::size_t>(s)];
      EXPECT_EQ(fwd_row[static_cast<std::size_t>(src)], i);
      EXPECT_EQ(mask.col_idx[static_cast<std::size_t>(src)], j);
    }
  }
}

TEST(TransposeTest, ValuesFollowEntries) {
  auto mask = build_csr_local(16, LocalParams{3});
  Rng rng(14);
  for (auto& v : mask.values) v = rng.next_float();
  const auto t = transpose_csr(mask);
  for (std::size_t s = 0; s < t.t.values.size(); ++s) {
    EXPECT_EQ(t.t.values[s], mask.values[t.entry_map[s]]);
  }
}

TEST(TransposeTest, ImplicitPatternsAreSymmetric) {
  // The backward pass exploits this: local / dilated / global masks need
  // no transpose.
  const Index L = 64;
  EXPECT_TRUE(is_structurally_symmetric(build_csr_local(L, LocalParams{5})));
  EXPECT_TRUE(is_structurally_symmetric(build_csr_dilated1d(L, Dilated1DParams{9, 2})));
  EXPECT_TRUE(is_structurally_symmetric(build_csr_dilated2d(make_dilated2d(L, 8, 1))));
  EXPECT_TRUE(
      is_structurally_symmetric(build_csr_global(L, make_global({0, 10}, L))));
}

TEST(TransposeTest, RandomAndCausalMasksAreNot) {
  const Index L = 64;
  EXPECT_FALSE(is_structurally_symmetric(build_csr_random(L, RandomParams{0.05, 15})));
  const auto causal = build_csr_from_predicate(L, [](Index i, Index j) { return j <= i; });
  EXPECT_FALSE(is_structurally_symmetric(causal));
}

TEST(TransposeTest, EmptyAndRectangular) {
  Csr<float> empty;
  empty.rows = 4;
  empty.cols = 6;
  empty.row_offsets.assign(5, 0);
  const auto t = transpose_csr(empty);
  EXPECT_EQ(t.t.rows, 6);
  EXPECT_EQ(t.t.cols, 4);
  EXPECT_EQ(t.t.nnz(), 0u);
}

class IoFixture : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() / "gpa_mask_test.bin").string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(IoFixture, RoundTripPreservesEverything) {
  auto mask = build_csr_random(128, RandomParams{0.07, 16});
  Rng rng(17);
  for (auto& v : mask.values) v = rng.next_float();
  save_csr(mask, path_);
  const auto loaded = load_csr(path_);
  EXPECT_EQ(loaded.rows, mask.rows);
  EXPECT_EQ(loaded.cols, mask.cols);
  EXPECT_EQ(loaded.row_offsets, mask.row_offsets);
  EXPECT_EQ(loaded.col_idx, mask.col_idx);
  EXPECT_EQ(loaded.values, mask.values);
}

TEST_F(IoFixture, RejectsGarbageFile) {
  std::ofstream out(path_, std::ios::binary);
  out << "this is not a mask";
  out.close();
  EXPECT_THROW(load_csr(path_), InvalidArgument);
}

TEST_F(IoFixture, RejectsTruncatedFile) {
  const auto mask = build_csr_local(64, LocalParams{4});
  save_csr(mask, path_);
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW(load_csr(path_), InvalidArgument);
}

TEST_F(IoFixture, MissingFileThrows) {
  EXPECT_THROW(load_csr("/nonexistent/dir/mask.bin"), InvalidArgument);
}

TEST_F(IoFixture, EmptyMaskRoundTrips) {
  Csr<float> empty;
  empty.rows = empty.cols = 10;
  empty.row_offsets.assign(11, 0);
  save_csr(empty, path_);
  const auto loaded = load_csr(path_);
  EXPECT_EQ(loaded.nnz(), 0u);
  EXPECT_EQ(loaded.rows, 10);
}

}  // namespace
}  // namespace gpa
