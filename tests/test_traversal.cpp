// MaskTraversal property suite — pins the "single source of truth"
// claim forever: for every mask family × causal flag × a grid of
// (rows, window, dilation, globals), the columns the full kernel visits
// (MaskTraversal::for_each_edge, which IS the kernels' row enumerator
// after the unification) are element-identical to (a) the pattern's
// mathematical definition (the patterns.hpp predicate, ascending) and
// (b) the decode row slices MaskSpec serves to incremental sessions
// (causal_row_slice). If a future kernel or MaskSpec change drifts the
// iteration order, this suite fails before the bit-identity suites do —
// and names the row.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/traversal.hpp"
#include "kvcache/mask_spec.hpp"
#include "sparse/build.hpp"
#include "sparse/presets.hpp"

namespace gpa {
namespace {

std::vector<Index> collect_edges(const MaskTraversal& t, Index i, Index seq_len, bool causal) {
  std::vector<Index> cols;
  t.for_each_edge(i, seq_len, causal, [&](Index j, float) { cols.push_back(j); });
  return cols;
}

std::vector<Index> collect_slice(const MaskTraversal& t, Index i) {
  std::vector<Index> cols;
  t.causal_row_slice(i, [&](Index j, float) { cols.push_back(j); });
  return cols;
}

/// Ascending columns of row i under the pattern's mathematical
/// definition — the oracle the enumeration order is checked against.
std::vector<Index> predicate_row(Index i, Index seq_len, bool causal,
                                 const std::function<bool(Index, Index)>& contains) {
  std::vector<Index> cols;
  for (Index j = 0; j < seq_len; ++j) {
    if (causal && j > i) break;
    if (contains(i, j)) cols.push_back(j);
  }
  return cols;
}

/// The full family × causal × slice agreement check for one traversal.
void check_traversal(const std::string& name, const MaskTraversal& t, Index seq_len,
                     const std::function<bool(Index, Index)>& contains) {
  for (Index i = 0; i < seq_len; ++i) {
    for (const bool causal : {false, true}) {
      SCOPED_TRACE(name + " row " + std::to_string(i) + (causal ? " causal" : " full"));
      // (a) kernel enumeration == mathematical definition, in order.
      EXPECT_EQ(collect_edges(t, i, seq_len, causal),
                predicate_row(i, seq_len, causal, contains));
    }
    // (b) the decode row slice a session folds == the causal kernel row.
    EXPECT_EQ(collect_slice(t, i), collect_edges(t, i, seq_len, /*causal=*/true))
        << name << " decode slice diverges from the kernel at row " << i;
  }
}

TEST(TraversalProperty, LocalMatchesPredicateAndDecodeSlices) {
  for (const Index L : {1, 7, 16, 33}) {
    for (const Index w : {1, 2, 5, 8}) {
      const LocalParams p{w};
      check_traversal("local(L=" + std::to_string(L) + ",w=" + std::to_string(w) + ")",
                      MaskTraversal::local(p), L,
                      [p](Index i, Index j) { return p.contains(i, j); });
    }
  }
}

TEST(TraversalProperty, Dilated1dMatchesPredicateAndDecodeSlices) {
  for (const Index L : {1, 9, 24, 40}) {
    for (const auto& [w, r] : std::vector<std::pair<Index, Index>>{
             {1, 0}, {4, 0}, {5, 1}, {9, 2}, {16, 3}}) {
      const Dilated1DParams p{w, r};
      check_traversal("dilated1d(L=" + std::to_string(L) + ",w=" + std::to_string(w) +
                          ",r=" + std::to_string(r) + ")",
                      MaskTraversal::dilated1d(p), L,
                      [p](Index i, Index j) { return p.contains(i, j); });
    }
  }
}

TEST(TraversalProperty, Dilated2dMatchesPredicateAndDecodeSlices) {
  for (const auto& [L, b] : std::vector<std::pair<Index, Index>>{
           {16, 1}, {16, 4}, {16, 16}, {12, 4}, {24, 6}}) {
    for (const Index r : {0, 1, 3}) {
      const Dilated2DParams p{L, b, r};
      check_traversal("dilated2d(L=" + std::to_string(L) + ",b=" + std::to_string(b) +
                          ",r=" + std::to_string(r) + ")",
                      MaskTraversal::dilated2d(p), L,
                      [p](Index i, Index j) { return p.contains(i, j); });
    }
  }
}

TEST(TraversalProperty, GlobalMinusLocalMatchesPredicateAndDecodeSlices) {
  const std::vector<std::vector<Index>> token_sets = {{}, {0}, {0, 3, 9}, {5}, {0, 15}};
  for (const Index L : {1, 16, 29}) {
    for (const Index w : {1, 2, 4}) {
      for (const auto& tokens : token_sets) {
        GlobalMinusLocalParams p;
        for (const Index t : tokens) {
          if (t < L) p.global.tokens.push_back(t);  // keep tokens in range
        }
        p.local.window = w;
        check_traversal("global(L=" + std::to_string(L) + ",w=" + std::to_string(w) +
                            ",g=" + std::to_string(p.global.tokens.size()) + ")",
                        MaskTraversal::global(p), L,
                        [&p](Index i, Index j) { return p.contains(i, j); });
      }
    }
  }
}

TEST(TraversalProperty, ExplicitCsrAndCooMatchStorageAndDecodeSlices) {
  for (const Index L : {1, 8, 21, 48}) {
    const Csr<float> csr = build_csr_random(L, RandomParams{0.3, 17 + static_cast<std::uint64_t>(L)});
    const Coo<float> coo = csr_to_coo(csr);
    const auto contains = [&csr](Index i, Index j) {
      for (Index k = csr.row_begin(i); k < csr.row_end(i); ++k) {
        if (csr.col_idx[static_cast<std::size_t>(k)] == j) return true;
      }
      return false;
    };
    check_traversal("csr(L=" + std::to_string(L) + ")", MaskTraversal::over(csr), L, contains);
    for (const CooSearch search : {CooSearch::Linear, CooSearch::Binary}) {
      check_traversal("coo(L=" + std::to_string(L) + ")", MaskTraversal::over(coo, search), L,
                      contains);
    }
    // Explicit formats must also hand the stored value through as gate.
    const MaskTraversal t = MaskTraversal::over(csr);
    for (Index i = 0; i < L; ++i) {
      Index k = csr.row_begin(i);
      t.for_each_edge(i, L, /*causal=*/false, [&](Index j, float gate) {
        ASSERT_EQ(j, csr.col_idx[static_cast<std::size_t>(k)]);
        ASSERT_EQ(gate, csr.values[static_cast<std::size_t>(k)]);
        ++k;
      });
      ASSERT_EQ(k, csr.row_end(i));
    }
  }
}

TEST(TraversalProperty, MaskSpecCompositionIsTheConcatenationOfComponentSlices) {
  const Index L = 20;
  const LocalParams lp{3};
  GlobalMinusLocalParams gp;
  gp.global.tokens = {0, 4, 11};
  gp.local.window = 3;
  const auto spec =
      kvcache::MaskSpec::compose({MaskTraversal::local(lp), MaskTraversal::global(gp)});
  EXPECT_EQ(spec.max_len(), -1);  // two implicit components: unbounded
  for (Index i = 0; i < L; ++i) {
    std::vector<Index> got;
    spec.for_each_causal(i, [&](Index j, float) { got.push_back(j); });
    std::vector<Index> want = collect_slice(MaskTraversal::local(lp), i);
    const std::vector<Index> g = collect_slice(MaskTraversal::global(gp), i);
    want.insert(want.end(), g.begin(), g.end());
    EXPECT_EQ(got, want) << "row " << i;
  }
}

TEST(TraversalProperty, ComposedPresetRoutingMatchesTheComposedKernel) {
  // traversals_of must reproduce composed_attention's component→kernel
  // routing: longformer's global component (window > 1) is implicit,
  // bigbird's random component is explicit CSR.
  const ComposedMask lf = make_longformer(16, /*reach=*/2, /*num_global=*/2);
  const auto lt = traversals_of(lf);
  ASSERT_EQ(lt.size(), 2u);
  EXPECT_EQ(lt[0].kind(), MaskTraversal::Kind::Local);
  EXPECT_EQ(lt[1].kind(), MaskTraversal::Kind::Global);

  const ComposedMask bb = make_bigbird(16, 2, 2, 0.2);
  const auto bt = traversals_of(bb, /*owning=*/true);
  ASSERT_EQ(bt.size(), 3u);
  EXPECT_EQ(bt[2].kind(), MaskTraversal::Kind::Csr);
  EXPECT_EQ(bt[2].max_len(), 16);

  // Component traversals visit exactly the component CSRs' edges.
  for (std::size_t c = 0; c < bt.size(); ++c) {
    const Csr<float>& want = bb.components[c].csr;
    for (Index i = 0; i < 16; ++i) {
      std::vector<Index> cols;
      bt[c].for_each_edge(i, 16, /*causal=*/false, [&](Index j, float) { cols.push_back(j); });
      std::vector<Index> expect;
      for (Index k = want.row_begin(i); k < want.row_end(i); ++k) {
        expect.push_back(want.col_idx[static_cast<std::size_t>(k)]);
      }
      ASSERT_EQ(cols, expect) << bb.components[c].name << " row " << i;
    }
  }
}

TEST(TraversalProperty, MalformedComposedComponentsThrowTyped) {
  // ComposedMask components are public fields: a caller-assembled
  // composition with an out-of-range global token or a mis-shaped
  // component CSR must raise the same typed errors the per-component
  // kernels used to, not enumerate out-of-bounds columns.
  ComposedMask bad = make_longformer(16, 2, 2);
  bad.components[1].global.global.tokens.push_back(99);  // >= seq_len
  EXPECT_THROW(traversals_of(bad), InvalidArgument);

  ComposedMask rect = make_bigbird(16, 2, 2, 0.2);
  rect.components[2].csr.rows = 8;  // random-CSR component no longer 16×16
  EXPECT_THROW(traversals_of(rect, /*owning=*/true), InvalidArgument);
}

TEST(TraversalProperty, DegreesCountTheEnumeration) {
  const Index L = 24;
  const MaskTraversal t = MaskTraversal::dilated1d(Dilated1DParams{7, 1});
  const auto full = t.degrees(L, /*causal=*/false);
  const auto causal = t.degrees(L, /*causal=*/true);
  ASSERT_EQ(full.size(), static_cast<std::size_t>(L));
  Size full_sum = 0, causal_sum = 0;
  for (Index i = 0; i < L; ++i) {
    EXPECT_EQ(full[static_cast<std::size_t>(i)],
              static_cast<Index>(collect_edges(t, i, L, false).size()));
    EXPECT_LE(causal[static_cast<std::size_t>(i)], full[static_cast<std::size_t>(i)]);
    full_sum += static_cast<Size>(full[static_cast<std::size_t>(i)]);
    causal_sum += static_cast<Size>(causal[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(full_sum, build_csr_dilated1d(L, Dilated1DParams{7, 1}).nnz());
  // Cross-implementation pin: the enumeration-derived degrees must
  // match graph/degree.hpp's closed-form per-family degrees, so the two
  // skew profiles (the seqpar partitioner uses the closed forms) can
  // never silently diverge.
  EXPECT_EQ(full, dilated1d_degrees(L, Dilated1DParams{7, 1}));
  EXPECT_EQ(MaskTraversal::local(LocalParams{5}).degrees(L), local_degrees(L, LocalParams{5}));
  const auto st = t.stats(L);
  EXPECT_EQ(st.total, full_sum);
  EXPECT_GT(causal_sum, 0u);
}

TEST(TraversalProperty, SessionSpecsRejectViewsAndNonSquareMasks) {
  // A session outlives caller-held mask objects: non-owning views are
  // rejected at spec construction, not discovered as a dangling read.
  const Csr<float> mask = build_csr_local(8, LocalParams{2});
  EXPECT_THROW(kvcache::MaskSpec::make_traversal(MaskTraversal::over(mask)), InvalidArgument);
  // Non-square explicit storage cannot bound a session length.
  auto rect = std::make_shared<Csr<float>>(mask);
  rect->cols = 12;
  EXPECT_THROW(kvcache::MaskSpec::make_csr(rect), InvalidArgument);
  // The owning square form is accepted.
  const auto spec = kvcache::MaskSpec::make_csr(std::make_shared<const Csr<float>>(mask));
  EXPECT_EQ(spec.max_len(), 8);
}

TEST(TraversalProperty, FingerprintsSeparateFamiliesAndParameters) {
  const Index L = 16;
  // Same parameters → same fingerprint; any structural change → different.
  EXPECT_EQ(MaskTraversal::local(LocalParams{4}).fingerprint(),
            MaskTraversal::local(LocalParams{4}).fingerprint());
  EXPECT_NE(MaskTraversal::local(LocalParams{4}).fingerprint(),
            MaskTraversal::local(LocalParams{5}).fingerprint());
  EXPECT_NE(MaskTraversal::local(LocalParams{4}).fingerprint(),
            MaskTraversal::dilated1d(Dilated1DParams{4, 0}).fingerprint());
  // The materialised CSR of a local window is a different TRAVERSAL
  // (explicit storage, not the implicit enumerator), so the kind tag
  // must keep them apart even though they visit the same edges.
  const Csr<float> local_csr = build_csr_local(L, LocalParams{4});
  EXPECT_NE(MaskTraversal::over(local_csr).fingerprint(),
            MaskTraversal::local(LocalParams{4}).fingerprint());
  // Two views of structurally-equal CSRs agree (values are excluded).
  Csr<float> reweighted = local_csr;
  for (auto& v : reweighted.values) v *= 2.0f;
  EXPECT_EQ(MaskTraversal::over(local_csr).fingerprint(),
            MaskTraversal::over(reweighted).fingerprint());
  // Composition fingerprint is order-sensitive (folds are ordered).
  const auto ab = kvcache::MaskSpec::compose(
      {MaskTraversal::local(LocalParams{4}), MaskTraversal::local(LocalParams{5})});
  const auto ba = kvcache::MaskSpec::compose(
      {MaskTraversal::local(LocalParams{5}), MaskTraversal::local(LocalParams{4})});
  EXPECT_NE(ab.fingerprint(), ba.fingerprint());
}

}  // namespace
}  // namespace gpa
