// Tests for causal (lower-triangular) attention across every kernel and
// baseline: each causal kernel must equal the reference run on the
// causally-intersected mask.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/flash_attention.hpp"
#include "baselines/reference_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

Csr<float> causal_intersect(const Csr<float>& mask) {
  const CausalParams c;
  return mask_intersect(mask, build_csr_from_predicate(mask.rows, [&](Index i, Index j) {
                          return c.contains(i, j);
                        }));
}

constexpr double kRtol = 1e-5;
constexpr double kAtol = 1e-6;

class CausalKernels : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(CausalKernels, CsrCausalEqualsIntersectedMask) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 900);
  const auto mask = build_csr_random(L, RandomParams{0.2, 91});
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  csr_attention(in.q, in.k, in.v, mask, got, opts);
  baselines::reference_attention(in.q, in.k, in.v, causal_intersect(mask), expected);
  const auto rep = allclose(got, expected, kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST_P(CausalKernels, CooCausalEqualsIntersectedMask) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 901);
  const auto mask = build_csr_random(L, RandomParams{0.2, 92});
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  coo_attention(in.q, in.k, in.v, csr_to_coo(mask), got, opts);
  baselines::reference_attention(in.q, in.k, in.v, causal_intersect(mask), expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST_P(CausalKernels, LocalCausalIsSlidingWindowAttention) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 902);
  const LocalParams p{6};
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  local_attention(in.q, in.k, in.v, p, got, opts);
  baselines::reference_attention(in.q, in.k, in.v, causal_intersect(build_csr_local(L, p)),
                                 expected);
  const auto rep = allclose(got, expected, kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST_P(CausalKernels, Dilated1DCausal) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 903);
  const Dilated1DParams p{9, 2};
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  dilated1d_attention(in.q, in.k, in.v, p, got, opts);
  baselines::reference_attention(in.q, in.k, in.v,
                                 causal_intersect(build_csr_dilated1d(L, p)), expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST_P(CausalKernels, Dilated2DCausal) {
  const auto [L, d] = GetParam();
  if (L % 8 != 0) GTEST_SKIP();
  const auto in = make_inputs(L, d, 904);
  const auto p = make_dilated2d(L, 8, 1);
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  dilated2d_attention(in.q, in.k, in.v, p, got, opts);
  baselines::reference_attention(in.q, in.k, in.v, causal_intersect(build_csr_dilated2d(p)),
                                 expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST_P(CausalKernels, GlobalCausal) {
  const auto [L, d] = GetParam();
  const auto in = make_inputs(L, d, 905);
  GlobalMinusLocalParams p;
  p.global = make_global({0, L / 3}, L);
  p.local = make_local(3);
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  global_attention(in.q, in.k, in.v, p, got, opts);
  const auto full =
      build_csr_from_predicate(L, [&](Index i, Index j) { return p.contains(i, j); });
  baselines::reference_attention(in.q, in.k, in.v, causal_intersect(full), expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CausalKernels,
                         ::testing::Values(std::make_tuple<Index, Index>(32, 8),
                                           std::make_tuple<Index, Index>(64, 16),
                                           std::make_tuple<Index, Index>(96, 32)));

TEST(CausalBaselines, FlashCausalMatchesReference) {
  const Index L = 96, d = 16;
  const auto in = make_inputs(L, d, 906);
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  baselines::flash_attention(in.q, in.k, in.v, got, opts);
  Matrix<std::uint8_t> tri(L, L);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) tri(i, j) = j <= i ? 1 : 0;
  }
  baselines::reference_attention(in.q, in.k, in.v, tri, expected);
  const auto rep = allclose(got, expected, kRtol, kAtol);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

TEST(CausalBaselines, SdpCausalMatchesReference) {
  const Index L = 64, d = 8;
  const auto in = make_inputs(L, d, 907);
  const auto mask = build_csr_random(L, RandomParams{0.3, 93});
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d), expected(L, d);
  baselines::sdp_masked_attention(in.q, in.k, in.v, mask, got, opts);
  baselines::reference_attention(in.q, in.k, in.v, causal_intersect(mask), expected);
  EXPECT_TRUE(allclose(got, expected, kRtol, kAtol).all_close);
}

TEST(CausalSemantics, FirstRowAttendsOnlyToItself) {
  const Index L = 16, d = 4;
  const auto in = make_inputs(L, d, 908);
  AttentionOptions opts;
  opts.causal = true;
  Matrix<float> got(L, d);
  local_attention(in.q, in.k, in.v, LocalParams{8}, got, opts);
  for (Index p = 0; p < d; ++p) EXPECT_NEAR(got(0, p), in.v(0, p), 1e-6f);
}

TEST(CausalSemantics, CausalDiffersFromBidirectional) {
  const Index L = 32, d = 8;
  const auto in = make_inputs(L, d, 909);
  Matrix<float> causal(L, d), full(L, d);
  AttentionOptions copts;
  copts.causal = true;
  local_attention(in.q, in.k, in.v, LocalParams{4}, causal, copts);
  local_attention(in.q, in.k, in.v, LocalParams{4}, full);
  EXPECT_GT(max_abs_diff(causal, full), 1e-3);
}

}  // namespace
}  // namespace gpa
