// Tests for the mask pattern predicates, including checks that the 1D /
// 2D dilation predicates match the paper's pseudocode transcribed
// literally.

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>
#include <vector>

#include "sparse/patterns.hpp"

namespace gpa {
namespace {

// The paper's 1D pseudocode, written out exactly as printed (§II-C).
int paper_dilated1d(Index i, Index j, Index w, Index r) {
  if ((std::abs(i - j) < w) && (std::abs(i - j) % (r + 1) == 0)) {
    return 1;
  }
  return 0;
}

// The paper's 2D pseudocode, written out exactly as printed (§II-C).
int paper_dilated2d(Index L, Index i, Index j, Index b, Index r) {
  if (i / (L / b) == j / (L / b)) {  // floor division on non-negative ints
    const Index i_b = i % b;
    const Index j_b = j % b;
    if ((i_b % (r + 1) == 0) && (j_b % (r + 1) == 0)) {
      return 1;
    }
    return 0;
  }
  return 0;
}

TEST(LocalPatternTest, WindowOneIsDiagonal) {
  const LocalParams p = make_local(1);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 8; ++j) {
      EXPECT_EQ(p.contains(i, j), i == j);
    }
  }
}

TEST(LocalPatternTest, WindowIsSymmetric) {
  const LocalParams p = make_local(4);
  for (Index i = 0; i < 16; ++i) {
    for (Index j = 0; j < 16; ++j) {
      EXPECT_EQ(p.contains(i, j), p.contains(j, i));
    }
  }
}

TEST(LocalPatternTest, ReachMatchesDefinition) {
  // "gives a token the ability to look n tokens forwards and backwards":
  // with window w the reach is w-1.
  const LocalParams p = make_local(3);
  EXPECT_TRUE(p.contains(10, 8));
  EXPECT_TRUE(p.contains(10, 12));
  EXPECT_FALSE(p.contains(10, 7));
  EXPECT_FALSE(p.contains(10, 13));
}

TEST(LocalPatternTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(make_local(0), InvalidArgument);
  EXPECT_THROW(make_local(-3), InvalidArgument);
}

class Dilated1DSweep : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(Dilated1DSweep, MatchesPaperPseudocode) {
  const auto [w, r] = GetParam();
  const Dilated1DParams p = make_dilated1d(w, r);
  for (Index i = 0; i < 40; ++i) {
    for (Index j = 0; j < 40; ++j) {
      EXPECT_EQ(p.contains(i, j) ? 1 : 0, paper_dilated1d(i, j, w, r))
          << "i=" << i << " j=" << j << " w=" << w << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WindowsAndDilations, Dilated1DSweep,
                         ::testing::Combine(::testing::Values<Index>(1, 2, 5, 9, 40),
                                            ::testing::Values<Index>(0, 1, 2, 3)));

TEST(Dilated1DTest, ZeroDilationEqualsLocal) {
  const Dilated1DParams d = make_dilated1d(6, 0);
  const LocalParams l = make_local(6);
  for (Index i = 0; i < 20; ++i) {
    for (Index j = 0; j < 20; ++j) EXPECT_EQ(d.contains(i, j), l.contains(i, j));
  }
}

class Dilated2DSweep : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(Dilated2DSweep, MatchesPaperPseudocode) {
  const auto [L, b, r] = GetParam();
  const Dilated2DParams p = make_dilated2d(L, b, r);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) {
      EXPECT_EQ(p.contains(i, j) ? 1 : 0, paper_dilated2d(L, i, j, b, r))
          << "L=" << L << " b=" << b << " r=" << r << " i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlocksAndDilations, Dilated2DSweep,
                         ::testing::Values(std::make_tuple<Index, Index, Index>(16, 4, 0),
                                           std::make_tuple<Index, Index, Index>(16, 4, 1),
                                           std::make_tuple<Index, Index, Index>(24, 6, 2),
                                           std::make_tuple<Index, Index, Index>(32, 8, 1),
                                           std::make_tuple<Index, Index, Index>(32, 8, 3)));

TEST(Dilated2DTest, RequiresDivisibleBlock) {
  EXPECT_THROW(make_dilated2d(10, 3, 0), InvalidArgument);
  EXPECT_NO_THROW(make_dilated2d(12, 3, 0));
}

TEST(GlobalPatternTest, GlobalTokenSeesAndIsSeen) {
  const GlobalParams p = make_global({2}, 10);
  for (Index j = 0; j < 10; ++j) {
    EXPECT_TRUE(p.contains(2, j));  // global row
    EXPECT_TRUE(p.contains(j, 2));  // global column
  }
  EXPECT_FALSE(p.contains(5, 6));
}

TEST(GlobalPatternTest, TokensDedupedAndSorted) {
  const GlobalParams p = make_global({7, 3, 3, 7}, 10);
  EXPECT_EQ(p.tokens, (std::vector<Index>{3, 7}));
}

TEST(GlobalPatternTest, OutOfRangeTokenRejected) {
  EXPECT_THROW(make_global({10}, 10), InvalidArgument);
  EXPECT_THROW(make_global({-1}, 10), InvalidArgument);
}

TEST(GlobalMinusLocalTest, SubtractionRemovesWindow) {
  GlobalMinusLocalParams p;
  p.global = make_global({0}, 12);
  p.local = make_local(3);
  // (0, 1) is global AND inside the window -> excluded.
  EXPECT_FALSE(p.contains(0, 1));
  // (0, 5) is global and outside the window -> included.
  EXPECT_TRUE(p.contains(0, 5));
  // (5, 0) is a global column edge outside window -> included.
  EXPECT_TRUE(p.contains(5, 0));
  // (5, 6) is neither.
  EXPECT_FALSE(p.contains(5, 6));
}

TEST(CausalPatternTest, LowerTriangle) {
  CausalParams c;
  EXPECT_TRUE(c.contains(5, 5));
  EXPECT_TRUE(c.contains(5, 0));
  EXPECT_FALSE(c.contains(5, 6));
}

TEST(BlockPatternTest, GridLookup) {
  BlockParams p;
  p.block = 2;
  p.grid_rows = 2;
  p.grid = {1, 0, 0, 1};  // diagonal blocks live
  EXPECT_TRUE(p.contains(0, 1));
  EXPECT_FALSE(p.contains(0, 2));
  EXPECT_TRUE(p.contains(3, 2));
}

}  // namespace
}  // namespace gpa
