// Tests for the batched attention wrapper.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batched.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

Batch<float> make_batch(Index b, Index L, Index d, Rng& rng) {
  Batch<float> batch;
  for (Index x = 0; x < b; ++x) {
    Matrix<float> m(L, d);
    fill_uniform(m, rng);
    batch.push_back(std::move(m));
  }
  return batch;
}

TEST(BatchedTest, EachItemMatchesUnbatchedKernel) {
  const Index B = 3, L = 32, d = 8;
  Rng rng(1100);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_random(L, RandomParams{0.2, 61});

  Batch<float> out;
  batched_csr_attention(q, k, v, mask, out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(B));
  for (Index b = 0; b < B; ++b) {
    Matrix<float> single(L, d);
    csr_attention(q[static_cast<std::size_t>(b)], k[static_cast<std::size_t>(b)],
                  v[static_cast<std::size_t>(b)], mask, single);
    EXPECT_EQ(max_abs_diff(out[static_cast<std::size_t>(b)], single), 0.0) << "batch " << b;
  }
}

TEST(BatchedTest, MultiHeadComposition) {
  const Index B = 2, L = 24, heads = 2, hd = 8;
  Rng rng(1101);
  const auto q = make_batch(B, L, heads * hd, rng);
  const auto k = make_batch(B, L, heads * hd, rng);
  const auto v = make_batch(B, L, heads * hd, rng);
  const auto mask = build_csr_local(L, LocalParams{3});

  Batch<float> out;
  batched_multihead_csr_attention(q, k, v, MultiHeadDims{heads, hd}, mask, out);
  ASSERT_EQ(out.size(), 2u);
  Matrix<float> single(L, heads * hd);
  multihead_csr_attention(q[1], k[1], v[1], MultiHeadDims{heads, hd}, mask, single);
  EXPECT_EQ(max_abs_diff(out[1], single), 0.0);
}

TEST(BatchedTest, EmptyBatchIsNoOp) {
  Batch<float> q, k, v, out;
  const auto mask = build_csr_local(8, LocalParams{2});
  batched_csr_attention(q, k, v, mask, out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchedTest, MismatchedBatchSizesThrow) {
  Rng rng(1102);
  auto q = make_batch(2, 8, 4, rng);
  auto k = make_batch(3, 8, 4, rng);
  auto v = make_batch(2, 8, 4, rng);
  const auto mask = build_csr_local(8, LocalParams{2});
  Batch<float> out;
  EXPECT_THROW(batched_csr_attention(q, k, v, mask, out), InvalidArgument);
}

TEST(BatchedTest, MismatchedShapesWithinBatchThrow) {
  Rng rng(1103);
  auto q = make_batch(2, 8, 4, rng);
  auto k = make_batch(2, 8, 4, rng);
  auto v = make_batch(2, 8, 4, rng);
  q[1] = Matrix<float>(16, 4);  // different L
  const auto mask = build_csr_local(8, LocalParams{2});
  Batch<float> out;
  EXPECT_THROW(batched_csr_attention(q, k, v, mask, out), InvalidArgument);
}

TEST(BatchedTest, OutputBuffersAreReused) {
  const Index B = 2, L = 16, d = 4;
  Rng rng(1104);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_local(L, LocalParams{2});
  Batch<float> out;
  batched_csr_attention(q, k, v, mask, out);
  const float* ptr = out[0].data();
  batched_csr_attention(q, k, v, mask, out);  // second call: no realloc
  EXPECT_EQ(out[0].data(), ptr);
}

TEST(BatchedIntoTest, MatchesResizingVariant) {
  const Index B = 3, L = 24, d = 8;
  Rng rng(1106);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_random(L, RandomParams{0.3, 19});

  Batch<float> expected;
  batched_csr_attention(q, k, v, mask, expected);

  Batch<float> out;
  for (Index b = 0; b < B; ++b) out.emplace_back(L, d);
  batched_csr_attention_into(q, k, v, mask, out);
  for (std::size_t b = 0; b < out.size(); ++b) {
    EXPECT_EQ(max_abs_diff(out[b], expected[b]), 0.0) << "batch " << b;
  }
}

TEST(BatchedIntoTest, NeverReallocatesAcrossRepeatedCalls) {
  // Serving hot-path contract: repeated dispatches into the same output
  // batch must leave every output buffer exactly where it was.
  const Index B = 4, L = 16, d = 4;
  Rng rng(1107);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_local(L, LocalParams{2});

  Batch<float> out;
  for (Index b = 0; b < B; ++b) out.emplace_back(L, d);
  std::vector<const float*> ptrs;
  for (const auto& m : out) ptrs.push_back(m.data());

  for (int iter = 0; iter < 3; ++iter) {
    batched_csr_attention_into(q, k, v, mask, out);
    for (std::size_t b = 0; b < out.size(); ++b) {
      EXPECT_EQ(out[b].data(), ptrs[b]) << "iter " << iter << " batch " << b;
      EXPECT_TRUE(out[b].same_shape(q[b]));
    }
  }
}

TEST(BatchedIntoTest, RejectsMissingOrMisshapenPreallocation) {
  const Index B = 2, L = 8, d = 4;
  Rng rng(1108);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_local(L, LocalParams{2});

  Batch<float> too_few;
  too_few.emplace_back(L, d);
  EXPECT_THROW(batched_csr_attention_into(q, k, v, mask, too_few), InvalidArgument);

  Batch<float> wrong_shape;
  wrong_shape.emplace_back(L, d);
  wrong_shape.emplace_back(L, d + 1);
  EXPECT_THROW(batched_csr_attention_into(q, k, v, mask, wrong_shape), InvalidArgument);
}

TEST(BatchedIntoTest, MultiHeadVariantMatches) {
  const Index B = 2, L = 16, heads = 2, hd = 4;
  Rng rng(1109);
  const auto q = make_batch(B, L, heads * hd, rng);
  const auto k = make_batch(B, L, heads * hd, rng);
  const auto v = make_batch(B, L, heads * hd, rng);
  const auto mask = build_csr_local(L, LocalParams{3});

  Batch<float> expected;
  batched_multihead_csr_attention(q, k, v, MultiHeadDims{heads, hd}, mask, expected);
  Batch<float> out;
  for (Index b = 0; b < B; ++b) out.emplace_back(L, heads * hd);
  batched_multihead_csr_attention_into(q, k, v, MultiHeadDims{heads, hd}, mask, out);
  EXPECT_EQ(max_abs_diff(out[0], expected[0]), 0.0);
  EXPECT_EQ(max_abs_diff(out[1], expected[1]), 0.0);
}

TEST(BatchKeyTest, FingerprintSeparatesStructurallyDifferentMasks) {
  const auto local = build_csr_local(32, LocalParams{2});
  const auto local_wider = build_csr_local(32, LocalParams{3});
  const auto random = build_csr_random(32, RandomParams{0.2, 7});
  const auto local_again = build_csr_local(32, LocalParams{2});

  EXPECT_EQ(mask_fingerprint(local), mask_fingerprint(local_again));
  EXPECT_NE(mask_fingerprint(local), mask_fingerprint(local_wider));
  EXPECT_NE(mask_fingerprint(local), mask_fingerprint(random));
}

TEST(BatchKeyTest, FingerprintIgnoresValuesKeepsStructure) {
  auto a = build_csr_local(16, LocalParams{2});
  auto b = a;
  for (auto& x : b.values) x *= 2.0f;  // same edges, different weights
  EXPECT_EQ(mask_fingerprint(a), mask_fingerprint(b));
}

TEST(BatchKeyTest, EqualityCoversEveryField) {
  const BatchKey base{123u, 64, 32, 2, DType::F32};
  EXPECT_EQ(base, (BatchKey{123u, 64, 32, 2, DType::F32}));
  EXPECT_NE(base, (BatchKey{124u, 64, 32, 2, DType::F32}));
  EXPECT_NE(base, (BatchKey{123u, 65, 32, 2, DType::F32}));
  EXPECT_NE(base, (BatchKey{123u, 64, 33, 2, DType::F32}));
  EXPECT_NE(base, (BatchKey{123u, 64, 32, 1, DType::F32}));
  EXPECT_NE(base, (BatchKey{123u, 64, 32, 2, DType::F16}));
  EXPECT_NE(base.hash(), (BatchKey{124u, 64, 32, 2, DType::F32}).hash());
}

TEST(BatchedTest, CustomKernelReceivesEveryItem) {
  const Index B = 4, L = 8, d = 4;
  Rng rng(1105);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  int calls = 0;
  HeadKernel<float> kernel = [&calls](const Matrix<float>& qb, const Matrix<float>& kb,
                                      const Matrix<float>& vb, Matrix<float>& ob,
                                      const AttentionOptions& o) {
    ++calls;
    local_attention(qb, kb, vb, LocalParams{2}, ob, o);
  };
  Batch<float> out;
  batched_attention(q, k, v, kernel, out);
  EXPECT_EQ(calls, B);
}

}  // namespace
}  // namespace gpa
