// Tests for the batched attention wrapper.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batched.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

Batch<float> make_batch(Index b, Index L, Index d, Rng& rng) {
  Batch<float> batch;
  for (Index x = 0; x < b; ++x) {
    Matrix<float> m(L, d);
    fill_uniform(m, rng);
    batch.push_back(std::move(m));
  }
  return batch;
}

TEST(BatchedTest, EachItemMatchesUnbatchedKernel) {
  const Index B = 3, L = 32, d = 8;
  Rng rng(1100);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_random(L, RandomParams{0.2, 61});

  Batch<float> out;
  batched_csr_attention(q, k, v, mask, out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(B));
  for (Index b = 0; b < B; ++b) {
    Matrix<float> single(L, d);
    csr_attention(q[static_cast<std::size_t>(b)], k[static_cast<std::size_t>(b)],
                  v[static_cast<std::size_t>(b)], mask, single);
    EXPECT_EQ(max_abs_diff(out[static_cast<std::size_t>(b)], single), 0.0) << "batch " << b;
  }
}

TEST(BatchedTest, MultiHeadComposition) {
  const Index B = 2, L = 24, heads = 2, hd = 8;
  Rng rng(1101);
  const auto q = make_batch(B, L, heads * hd, rng);
  const auto k = make_batch(B, L, heads * hd, rng);
  const auto v = make_batch(B, L, heads * hd, rng);
  const auto mask = build_csr_local(L, LocalParams{3});

  Batch<float> out;
  batched_multihead_csr_attention(q, k, v, MultiHeadDims{heads, hd}, mask, out);
  ASSERT_EQ(out.size(), 2u);
  Matrix<float> single(L, heads * hd);
  multihead_csr_attention(q[1], k[1], v[1], MultiHeadDims{heads, hd}, mask, single);
  EXPECT_EQ(max_abs_diff(out[1], single), 0.0);
}

TEST(BatchedTest, EmptyBatchIsNoOp) {
  Batch<float> q, k, v, out;
  const auto mask = build_csr_local(8, LocalParams{2});
  batched_csr_attention(q, k, v, mask, out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchedTest, MismatchedBatchSizesThrow) {
  Rng rng(1102);
  auto q = make_batch(2, 8, 4, rng);
  auto k = make_batch(3, 8, 4, rng);
  auto v = make_batch(2, 8, 4, rng);
  const auto mask = build_csr_local(8, LocalParams{2});
  Batch<float> out;
  EXPECT_THROW(batched_csr_attention(q, k, v, mask, out), InvalidArgument);
}

TEST(BatchedTest, MismatchedShapesWithinBatchThrow) {
  Rng rng(1103);
  auto q = make_batch(2, 8, 4, rng);
  auto k = make_batch(2, 8, 4, rng);
  auto v = make_batch(2, 8, 4, rng);
  q[1] = Matrix<float>(16, 4);  // different L
  const auto mask = build_csr_local(8, LocalParams{2});
  Batch<float> out;
  EXPECT_THROW(batched_csr_attention(q, k, v, mask, out), InvalidArgument);
}

TEST(BatchedTest, OutputBuffersAreReused) {
  const Index B = 2, L = 16, d = 4;
  Rng rng(1104);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  const auto mask = build_csr_local(L, LocalParams{2});
  Batch<float> out;
  batched_csr_attention(q, k, v, mask, out);
  const float* ptr = out[0].data();
  batched_csr_attention(q, k, v, mask, out);  // second call: no realloc
  EXPECT_EQ(out[0].data(), ptr);
}

TEST(BatchedTest, CustomKernelReceivesEveryItem) {
  const Index B = 4, L = 8, d = 4;
  Rng rng(1105);
  const auto q = make_batch(B, L, d, rng);
  const auto k = make_batch(B, L, d, rng);
  const auto v = make_batch(B, L, d, rng);
  int calls = 0;
  HeadKernel<float> kernel = [&calls](const Matrix<float>& qb, const Matrix<float>& kb,
                                      const Matrix<float>& vb, Matrix<float>& ob,
                                      const AttentionOptions& o) {
    ++calls;
    local_attention(qb, kb, vb, LocalParams{2}, ob, o);
  };
  Batch<float> out;
  batched_attention(q, k, v, kernel, out);
  EXPECT_EQ(calls, B);
}

}  // namespace
}  // namespace gpa
