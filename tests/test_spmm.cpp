// Tests for the two-phase SpMM attention path (SDDMM -> CSR softmax ->
// SpMM) — the GraphBLAS-style alternative of §VI-A.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

TEST(SddmmTest, ValuesAreMaskedDotProducts) {
  const Index L = 24, d = 8;
  const auto in = make_inputs(L, d, 500);
  const auto mask = build_csr_local(L, LocalParams{3});
  const auto s = sddmm(in.q, in.k, mask, 1.0f);
  ASSERT_EQ(s.nnz(), mask.nnz());
  for (Index i = 0; i < L; ++i) {
    for (Index kk = s.row_begin(i); kk < s.row_end(i); ++kk) {
      const Index j = s.col_idx[static_cast<std::size_t>(kk)];
      float expect = 0.0f;
      for (Index p = 0; p < d; ++p) expect += in.q(i, p) * in.k(j, p);
      EXPECT_NEAR(s.values[static_cast<std::size_t>(kk)], expect, 1e-5f);
    }
  }
}

TEST(CsrSoftmaxTest, RowsAreStochastic) {
  const Index L = 32;
  auto s = build_csr_random(L, RandomParams{0.2, 41});
  Rng rng(42);
  for (auto& v : s.values) v = rng.next_float() * 10.0f - 5.0f;
  csr_row_softmax(s);
  for (Index i = 0; i < L; ++i) {
    if (s.row_begin(i) == s.row_end(i)) continue;
    float sum = 0.0f;
    for (Index k = s.row_begin(i); k < s.row_end(i); ++k) {
      EXPECT_GE(s.values[static_cast<std::size_t>(k)], 0.0f);
      sum += s.values[static_cast<std::size_t>(k)];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(CsrSoftmaxTest, StableUnderLargeScores) {
  auto s = build_csr_local(4, LocalParams{2});
  for (auto& v : s.values) v = 40000.0f;
  csr_row_softmax(s);
  for (const float v : s.values) EXPECT_FALSE(std::isnan(v));
}

TEST(SpmmTest, MatchesDenseProduct) {
  const Index L = 20, d = 6;
  auto s = build_csr_random(L, RandomParams{0.3, 43});
  Rng rng(44);
  for (auto& v : s.values) v = rng.next_float();
  Matrix<float> vmat(L, d);
  fill_uniform(vmat, rng);
  Matrix<float> got(L, d);
  spmm(s, vmat, got);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      float expect = 0.0f;
      for (Index k = s.row_begin(i); k < s.row_end(i); ++k) {
        expect += s.values[static_cast<std::size_t>(k)] *
                  vmat(s.col_idx[static_cast<std::size_t>(k)], p);
      }
      EXPECT_NEAR(got(i, p), expect, 1e-5f);
    }
  }
}

TEST(SpmmAttentionTest, MatchesReferenceAcrossPatterns) {
  const Index L = 96, d = 16;
  const auto in = make_inputs(L, d, 501);
  const Csr<float> masks[] = {build_csr_local(L, LocalParams{4}),
                              build_csr_dilated1d(L, Dilated1DParams{9, 2}),
                              build_csr_random(L, RandomParams{0.1, 45})};
  for (const auto& mask : masks) {
    Matrix<float> expected(L, d), got(L, d);
    baselines::reference_attention(in.q, in.k, in.v, mask, expected);
    spmm_attention(in.q, in.k, in.v, mask, got);
    const auto rep = allclose(got, expected, 1e-5, 1e-6);
    EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
  }
}

TEST(SpmmAttentionTest, AgreesWithFusedCsrKernel) {
  // The two implementation strategies (fused online softmax vs
  // materialise-then-SpMM) must agree — same math, different schedule.
  const Index L = 128, d = 32;
  const auto in = make_inputs(L, d, 502);
  const auto mask = build_csr_random(L, RandomParams{0.15, 46});
  Matrix<float> fused(L, d), two_phase(L, d);
  csr_attention(in.q, in.k, in.v, mask, fused);
  spmm_attention(in.q, in.k, in.v, mask, two_phase);
  const auto rep = allclose(two_phase, fused, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "max diff " << rep.max_abs_diff;
}

TEST(SpmmAttentionTest, HalfPrecisionStorage) {
  const Index L = 48, d = 8;
  const auto in = make_inputs(L, d, 503);
  const auto mask = build_csr_local(L, LocalParams{5});
  Matrix<float> expected(L, d);
  baselines::reference_attention(in.q, in.k, in.v, mask, expected);
  Matrix<half_t> got_h(L, d);
  spmm_attention(to_f16(in.q), to_f16(in.k), to_f16(in.v), mask, got_h);
  const auto rep = allclose(to_f32(got_h), expected, 5e-3, 5e-3);
  EXPECT_TRUE(rep.all_close) << rep.max_abs_diff;
}

}  // namespace
}  // namespace gpa
