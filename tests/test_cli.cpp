// Smoke tests for tools/gpa_cli.cpp: run the binary with tiny mask
// presets and assert exit code 0 plus non-empty, well-formed output.
//
// The binary path is injected by CMake as GPA_CLI_PATH; the test is only
// registered when GPA_BUILD_TOOLS is ON.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = "\"" + std::string(GPA_CLI_PATH) + "\" " + args + " 2>&1";
  CliResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  result.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CliSmoke, MaskLocalTiny) {
  const auto r = run_cli("mask --pattern local --length 64 --window 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_FALSE(r.output.empty());
  EXPECT_NE(r.output.find("nnz:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sparsity"), std::string::npos) << r.output;
}

TEST(CliSmoke, RunBigbirdTinyVerifiesAgainstReference) {
  const auto r = run_cli("run --pattern bigbird --length 96 --dim 16 --reach 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verified:    OK"), std::string::npos) << r.output;
}

TEST(CliSmoke, MemmodelListsAlgorithms) {
  const auto r = run_cli("memmodel --dtype fp16 --dim 64 --sf 0.0001");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("csr"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("max L"), std::string::npos) << r.output;
}

TEST(CliSmoke, VersionReportsBuildIdentity) {
  const auto r = run_cli("version");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("gpa "), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("parallel backend:"), std::string::npos) << r.output;
}

TEST(CliSmoke, UnknownCommandFailsWithUsage) {
  const auto r = run_cli("definitely-not-a-command");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(CliSmoke, MalformedIntegerNamesTheFlag) {
  const auto r = run_cli("mask --pattern local --length banana");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--length expects an integer"), std::string::npos) << r.output;
}

TEST(CliSmoke, TrailingJunkAfterIntegerIsRejected) {
  const auto r = run_cli("mask --pattern local --length 1e4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--length expects an integer"), std::string::npos) << r.output;
}

TEST(CliSmoke, DanglingValueFlagNamesTheFlag) {
  const auto r = run_cli("mask --pattern local --length 64 --window");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--window expects an integer"), std::string::npos) << r.output;
}

TEST(CliSmoke, MemmodelKnowsExtendedDeviceTable) {
  const auto h100 = run_cli("memmodel --device h100 --algo csr --dim 64 --sf 0.0001");
  EXPECT_EQ(h100.exit_code, 0) << h100.output;
  EXPECT_NE(h100.output.find("H100"), std::string::npos) << h100.output;
  const auto rtx = run_cli("memmodel --device rtx4090 --algo csr --dim 64 --sf 0.0001");
  EXPECT_EQ(rtx.exit_code, 0) << rtx.output;
  EXPECT_NE(rtx.output.find("RTX 4090"), std::string::npos) << rtx.output;
}

TEST(CliSmoke, MemmodelRejectsUnknownDevice) {
  // A typoed device must fail loudly, not silently price an A100.
  const auto r = run_cli("memmodel --device 4090 --algo csr --dim 64 --sf 0.0001");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown --device"), std::string::npos) << r.output;
}

TEST(CliSmoke, ServeBenchClosedLoopReportsThroughput) {
  const auto r = run_cli(
      "serve-bench --length 64 --dim 16 --sf 0.1 --requests 48 --clients 4 --max-batch 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("completed:   48 ok"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("throughput:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("latency ms:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("batching:"), std::string::npos) << r.output;
}

TEST(CliSmoke, ServeBenchOpenLoopRuns) {
  const auto r = run_cli(
      "serve-bench --length 64 --dim 16 --sf 0.1 --requests 16 --rate 1000 --max-batch 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("open-loop"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("throughput:"), std::string::npos) << r.output;
}

TEST(CliSmoke, UnknownPatternFailsCleanly) {
  const auto r = run_cli("mask --pattern nope --length 64");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
}

}  // namespace
