// Serving-layer tests: admission control, dynamic batching compatibility
// rules, deadline handling, clean shutdown with in-flight requests, and
// single-request parity with a direct kernel call (the serving layer
// must be a scheduling layer, never a numerics layer).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/multihead.hpp"
#include "kvcache/kvcache.hpp"
#include "serve/serve.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const RequestData> make_payload(Index L, Index d, std::uint64_t seed) {
  auto data = std::make_shared<RequestData>();
  data->q = Matrix<float>(L, d);
  data->k = Matrix<float>(L, d);
  data->v = Matrix<float>(L, d);
  Rng rng(seed);
  fill_uniform(data->q, rng);
  fill_uniform(data->k, rng);
  fill_uniform(data->v, rng);
  return data;
}

/// ServerConfig from the three knobs the suites vary (the rest stay
/// at their defaults, including the absent session backend).
ServerConfig make_config(int workers, std::size_t queue_capacity, BatchPolicy policy = {}) {
  ServerConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue_capacity;
  cfg.policy = policy;
  return cfg;
}

Request make_test_request(std::shared_ptr<const RequestData> data,
                          std::shared_ptr<const Csr<float>> mask,
                          MultiHeadDims dims = {1, 0}) {
  Request r;
  r.data = std::move(data);
  r.mask = std::move(mask);
  r.dims = dims;
  return r;
}

// --- end-to-end numerics --------------------------------------------

TEST(ServeParity, SingleRequestMatchesDirectKernelCall) {
  const Index L = 48, d = 16;
  auto mask = std::make_shared<const Csr<float>>(build_csr_random(L, RandomParams{0.2, 5}));
  auto payload = make_payload(L, d, 901);

  Server server(make_config(1, 8, BatchPolicy{1, 0us}));
  auto fut = server.submit(make_test_request(payload, mask));
  const Response resp = fut.get();
  ASSERT_EQ(resp.status, ResponseStatus::Ok);
  EXPECT_EQ(resp.batch_size, 1);

  Matrix<float> direct(L, d);
  csr_attention(payload->q, payload->k, payload->v, *mask, direct);
  EXPECT_EQ(max_abs_diff(resp.output, direct), 0.0);
}

TEST(ServeParity, MultiHeadAndCausalRequestsMatchDirectCalls) {
  const Index L = 32, heads = 2, hd = 8;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{4}));
  auto payload = make_payload(L, heads * hd, 902);

  Server server(make_config(1, 8, BatchPolicy{4, 0us}));

  Request mh = make_test_request(payload, mask, MultiHeadDims{heads, hd});
  const Response mh_resp = server.submit(std::move(mh)).get();
  ASSERT_EQ(mh_resp.status, ResponseStatus::Ok);
  Matrix<float> direct(L, heads * hd);
  multihead_csr_attention(payload->q, payload->k, payload->v, MultiHeadDims{heads, hd}, *mask,
                          direct);
  EXPECT_EQ(max_abs_diff(mh_resp.output, direct), 0.0);

  Request causal = make_test_request(payload, mask);
  causal.opts.causal = true;
  const Response c_resp = server.submit(std::move(causal)).get();
  ASSERT_EQ(c_resp.status, ResponseStatus::Ok);
  Matrix<float> direct_causal(L, heads * hd);
  AttentionOptions o;
  o.causal = true;
  csr_attention(payload->q, payload->k, payload->v, *mask, direct_causal, o);
  EXPECT_EQ(max_abs_diff(c_resp.output, direct_causal), 0.0);
}

TEST(ServeParity, NestedBatchAndItemPoliciesStayBitIdentical) {
  // Both dispatch levels parallel at once: the substrate's nesting
  // guard must degrade the per-item kernel to serial inside the
  // cross-item loop (no thread multiplication) without changing a
  // single bit of the output.
  const Index L = 48, d = 16;
  auto mask = std::make_shared<const Csr<float>>(build_csr_random(L, RandomParams{0.25, 11}));

  ServerConfig cfg = make_config(1, 64, BatchPolicy{8, 2000us});
  cfg.batch_policy = ExecPolicy{4, 1, Schedule::Dynamic};
  cfg.item_policy = ExecPolicy{4, 16, Schedule::Static};
  Server server(std::move(cfg));

  std::vector<std::shared_ptr<const RequestData>> payloads;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(make_payload(L, d, 7000 + static_cast<std::uint64_t>(i)));
    futures.push_back(server.submit(make_test_request(payloads.back(), mask)));
  }
  for (int i = 0; i < 8; ++i) {
    const Response resp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok) << "request " << i;
    const auto& p = *payloads[static_cast<std::size_t>(i)];
    Matrix<float> direct(L, d);
    csr_attention(p.q, p.k, p.v, *mask, direct);
    EXPECT_EQ(max_abs_diff(resp.output, direct), 0.0) << "request " << i;
  }
}

TEST(ServeParity, MixedMaskTrafficStaysIsolated) {
  // Two same-shape masks interleaved: if the batcher ever mixed keys,
  // the minority mask's requests would be computed under the wrong mask
  // and fail parity.
  const Index L = 40, d = 8;
  auto mask_a = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{3}));
  auto mask_b = std::make_shared<const Csr<float>>(build_csr_random(L, RandomParams{0.3, 9}));
  ASSERT_NE(mask_fingerprint(*mask_a), mask_fingerprint(*mask_b));

  Server server(make_config(2, 64, BatchPolicy{8, 500us}));
  std::vector<std::shared_ptr<const RequestData>> payloads;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 24; ++i) {
    payloads.push_back(make_payload(L, d, 1000 + static_cast<std::uint64_t>(i)));
    futures.push_back(
        server.submit(make_test_request(payloads.back(), i % 2 == 0 ? mask_a : mask_b)));
  }
  for (int i = 0; i < 24; ++i) {
    const Response resp = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok) << "request " << i;
    const auto& mask = i % 2 == 0 ? *mask_a : *mask_b;
    const auto& p = *payloads[static_cast<std::size_t>(i)];
    Matrix<float> direct(L, d);
    csr_attention(p.q, p.k, p.v, mask, direct);
    EXPECT_EQ(max_abs_diff(resp.output, direct), 0.0) << "request " << i;
  }
}

// --- batcher grouping (deterministic, no worker threads) -------------

Request keyed_request(std::shared_ptr<const RequestData> data,
                      std::shared_ptr<const Csr<float>> mask, std::uint64_t fp) {
  Request r = make_test_request(std::move(data), std::move(mask));
  r.key = BatchKey{fp, r.data->q.rows(), r.data->q.cols(), 1, DType::F32};
  r.enqueue_time = Clock::now();
  return r;
}

TEST(DynamicBatcherTest, NeverMixesKeysAndLeavesOthersQueued) {
  const Index L = 8, d = 4;
  auto mask_a = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  auto mask_b = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{2}));
  auto payload = make_payload(L, d, 7);

  RequestQueue queue(16);
  DynamicBatcher batcher(queue, BatchPolicy{8, 0us});
  const std::uint64_t fp_a = mask_fingerprint(*mask_a);
  const std::uint64_t fp_b = mask_fingerprint(*mask_b);
  for (int i = 0; i < 5; ++i) {
    Request r = keyed_request(payload, i % 2 == 0 ? mask_a : mask_b, i % 2 == 0 ? fp_a : fp_b);
    ASSERT_EQ(queue.try_push(r), RequestQueue::Push::Ok);
  }

  PoppedBatch pb;
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 3u);  // the three mask_a requests
  for (const auto& r : pb.batch) EXPECT_EQ(r.key.mask_fp, fp_a);
  EXPECT_TRUE(pb.expired.empty());
  EXPECT_EQ(queue.size(), 2u);  // mask_b requests untouched

  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 2u);
  for (const auto& r : pb.batch) EXPECT_EQ(r.key.mask_fp, fp_b);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(DynamicBatcherTest, RespectsMaxBatchCeiling) {
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  auto payload = make_payload(L, d, 8);
  const std::uint64_t fp = mask_fingerprint(*mask);

  RequestQueue queue(16);
  DynamicBatcher batcher(queue, BatchPolicy{4, 0us});
  for (int i = 0; i < 10; ++i) {
    Request r = keyed_request(payload, mask, fp);
    ASSERT_EQ(queue.try_push(r), RequestQueue::Push::Ok);
  }
  PoppedBatch pb;
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 4u);
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 4u);
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 2u);
}

TEST(DynamicBatcherTest, ExpiredRequestsAreReturnedSeparately) {
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  auto payload = make_payload(L, d, 9);
  const std::uint64_t fp = mask_fingerprint(*mask);

  RequestQueue queue(16);
  DynamicBatcher batcher(queue, BatchPolicy{8, 0us});
  Request stale = keyed_request(payload, mask, fp);
  stale.deadline = Clock::now() - 1ms;
  ASSERT_EQ(queue.try_push(stale), RequestQueue::Push::Ok);
  Request fresh = keyed_request(payload, mask, fp);
  ASSERT_EQ(queue.try_push(fresh), RequestQueue::Push::Ok);

  PoppedBatch pb;
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 1u);
  EXPECT_EQ(pb.expired.size(), 1u);
}

TEST(DynamicBatcherTest, AllExpiredQueueDeliversPromptly) {
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  auto payload = make_payload(L, d, 10);
  const std::uint64_t fp = mask_fingerprint(*mask);

  RequestQueue queue(16);
  DynamicBatcher batcher(queue, BatchPolicy{8, 60s});  // long window must not matter
  for (int i = 0; i < 3; ++i) {
    Request r = keyed_request(payload, mask, fp);
    r.deadline = Clock::now() - 1ms;
    ASSERT_EQ(queue.try_push(r), RequestQueue::Push::Ok);
  }
  PoppedBatch pb;
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_TRUE(pb.batch.empty());
  EXPECT_EQ(pb.expired.size(), 3u);
}

TEST(DynamicBatcherTest, DeadlineTighterThanWindowDispatchesImmediately) {
  // A short batch may hold its slot for max_wait hoping for compatible
  // arrivals — but never at the cost of a member's deadline. A lone
  // request whose deadline falls inside the window must be dispatched
  // right away (with service headroom), not held and then shed.
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  auto payload = make_payload(L, d, 21);
  const std::uint64_t fp = mask_fingerprint(*mask);

  RequestQueue queue(16);
  DynamicBatcher batcher(queue, BatchPolicy{4, 200'000us});  // 200ms window
  Request r = keyed_request(payload, mask, fp);
  r.deadline = Clock::now() + 50ms;
  ASSERT_EQ(queue.try_push(r), RequestQueue::Push::Ok);

  PoppedBatch pb;
  const auto t0 = Clock::now();
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_LT(Clock::now() - t0, 50ms);  // neither the window nor the deadline was waited out
  ASSERT_EQ(pb.batch.size(), 1u);      // served, not shed
  EXPECT_TRUE(pb.expired.empty());
}

// --- admission control and shutdown ----------------------------------

TEST(ServeAdmission, ExpiredDeadlineRejectedAtSubmit) {
  const Index L = 16, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{2}));
  Server server(make_config(1, 8));
  Request r = make_test_request(make_payload(L, d, 11), mask);
  r.deadline = Clock::now() - 1ms;
  const Response resp = server.submit(std::move(r)).get();
  EXPECT_EQ(resp.status, ResponseStatus::RejectedDeadline);
  EXPECT_EQ(server.stats().rejected_deadline, 1u);
}

TEST(ServeAdmission, QueueFullBackpressure) {
  const Index L = 16, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{2}));
  auto payload = make_payload(L, d, 12);
  ServerConfig cfg;
  cfg.workers = 0;  // nothing drains: admission is exactly the capacity
  cfg.queue_capacity = 2;
  Server server(cfg);

  auto f1 = server.submit(make_test_request(payload, mask));
  auto f2 = server.submit(make_test_request(payload, mask));
  auto f3 = server.submit(make_test_request(payload, mask));
  const Response r3 = f3.get();  // rejected immediately, no worker needed
  EXPECT_EQ(r3.status, ResponseStatus::RejectedQueueFull);
  EXPECT_EQ(server.queue_depth(), 2u);

  server.shutdown();  // queued-but-never-run requests still resolve
  EXPECT_EQ(f1.get().status, ResponseStatus::RejectedShutdown);
  EXPECT_EQ(f2.get().status, ResponseStatus::RejectedShutdown);
  const auto s = server.stats();
  EXPECT_EQ(s.rejected_queue_full, 1u);
  EXPECT_EQ(s.rejected_shutdown, 2u);
}

TEST(ServeAdmission, ZeroCapacityQueueShedsEverythingAndShutsDownCleanly) {
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 0;
  Server server(cfg);
  const Response resp = server.submit(make_test_request(make_payload(L, d, 13), mask)).get();
  EXPECT_EQ(resp.status, ResponseStatus::RejectedQueueFull);
  // Destructor exercises shutdown with a worker parked on an empty queue.
}

TEST(ServeAdmission, SubmitAfterShutdownIsRejected) {
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  Server server(make_config(1, 8));
  server.shutdown();
  const Response resp = server.submit(make_test_request(make_payload(L, d, 14), mask)).get();
  EXPECT_EQ(resp.status, ResponseStatus::RejectedShutdown);
}

TEST(ServeAdmission, MalformedRequestsThrow) {
  const Index L = 8, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{1}));
  Server server(make_config(0, 8));

  Request no_mask = make_test_request(make_payload(L, d, 15), nullptr);
  EXPECT_THROW(server.submit(std::move(no_mask)), InvalidArgument);

  Request wrong_len = make_test_request(make_payload(L + 1, d, 16), mask);
  EXPECT_THROW(server.submit(std::move(wrong_len)), InvalidArgument);

  Request bad_heads = make_test_request(make_payload(L, d, 17), mask, MultiHeadDims{3, 2});
  EXPECT_THROW(server.submit(std::move(bad_heads)), InvalidArgument);

  // Rejected-at-validation requests never enter the stats funnel, so
  // submitted always balances against terminal outcomes.
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(ServeShutdown, ZeroRequestLifecycleIsClean) {
  {
    Server server(make_config(2, 16));
  }  // destructor only
  Server server(make_config(2, 16));
  server.shutdown();
  server.shutdown();  // idempotent
}

TEST(ServeShutdown, InFlightRequestsAllResolve) {
  const Index L = 64, d = 16;
  auto mask = std::make_shared<const Csr<float>>(build_csr_random(L, RandomParams{0.3, 21}));
  auto payload = make_payload(L, d, 18);
  Server server(make_config(2, 128, BatchPolicy{4, 100us}));

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(server.submit(make_test_request(payload, mask)));
  server.shutdown();  // races the workers mid-drain by design

  Size ok = 0, shed = 0;
  for (auto& f : futures) {
    const Response resp = f.get();  // every future MUST be satisfied
    if (resp.status == ResponseStatus::Ok) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, ResponseStatus::RejectedShutdown);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 64u);
  // close() drains: everything admitted before shutdown() completes Ok.
  EXPECT_EQ(shed, 0u);
  const auto s = server.stats();
  EXPECT_EQ(s.completed_ok, ok);
  EXPECT_EQ(s.submitted, 64u);
}

// --- statistics -------------------------------------------------------

TEST(ServeStats, FunnelAndOccupancyInvariants) {
  const Index L = 32, d = 8;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{2}));
  auto payload = make_payload(L, d, 19);
  Server server(make_config(1, 64, BatchPolicy{8, 2000us}));

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(server.submit(make_test_request(payload, mask)));
  for (auto& f : futures) ASSERT_EQ(f.get().status, ResponseStatus::Ok);

  const auto s = server.stats();
  EXPECT_EQ(s.submitted, 32u);
  EXPECT_EQ(s.completed_ok, 32u);
  EXPECT_EQ(s.latency_ms.samples, 32u);
  EXPECT_GE(s.batches, 1u);
  Size occupancy_total = 0, weighted = 0;
  for (std::size_t b = 0; b < s.occupancy.size(); ++b) {
    EXPECT_LE(static_cast<Index>(b), 8) << "occupancy above max_batch";
    occupancy_total += s.occupancy[b];
    weighted += s.occupancy[b] * static_cast<Size>(b);
  }
  EXPECT_EQ(occupancy_total, s.batches);
  EXPECT_EQ(weighted, 32u);  // every request rode exactly one batch
  EXPECT_LE(s.latency_ms.p50, s.latency_ms.p95);
  EXPECT_LE(s.latency_ms.p95, s.latency_ms.p99);
  EXPECT_LE(s.latency_ms.p99, s.latency_ms.max);
  EXPECT_GE(s.mean_batch_occupancy, 1.0);
}

TEST(ServeStats, PreallocatedOutputRoundTripsWithoutRealloc) {
  const Index L = 16, d = 4;
  auto mask = std::make_shared<const Csr<float>>(build_csr_local(L, LocalParams{2}));
  auto payload = make_payload(L, d, 20);
  Server server(make_config(1, 8, BatchPolicy{1, 0us}));

  Request r = make_test_request(payload, mask);
  r.output = Matrix<float>(L, d);
  const float* buf = r.output.data();
  const Response resp = server.submit(std::move(r)).get();
  ASSERT_EQ(resp.status, ResponseStatus::Ok);
  EXPECT_EQ(resp.output.data(), buf);  // same buffer, no server-side realloc
}

// --- load generators --------------------------------------------------

TEST(LoadGen, ClosedLoopCompletesEveryRequest) {
  auto wl = make_csr_workload(32, 8, 0.1, 33, /*pool=*/2);
  Server server(make_config(1, 64, BatchPolicy{4, 100us}));
  LoadGenConfig cfg;
  cfg.requests = 40;
  cfg.clients = 4;
  const auto res = run_closed_loop(server, wl, cfg);
  EXPECT_EQ(res.completed, 40u);
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_GT(res.rps, 0.0);
}

TEST(LoadGen, OpenLoopHonorsScheduleAndCollectsAll) {
  auto wl = make_csr_workload(32, 8, 0.1, 34, /*pool=*/2);
  Server server(make_config(1, 64, BatchPolicy{4, 100us}));
  LoadGenConfig cfg;
  cfg.requests = 20;
  cfg.arrival_hz = 2000.0;
  const auto res = run_open_loop(server, wl, cfg);
  EXPECT_EQ(res.completed + res.rejected, 20u);
  EXPECT_EQ(res.rejected, 0u);  // capacity 64 queue cannot shed 20 requests
  EXPECT_GE(res.wall_s, 19.0 / 2000.0);  // schedule actually paced arrivals
}

// --- priority scheduling ----------------------------------------------

/// A queue-only request: pop_batch reads key/priority/deadline, nothing
/// else, so the payload can stay empty. Distinct keys keep every pop a
/// single request (no coalescing), isolating the pop ORDER under test.
Request bare_request(std::uint64_t id, int priority) {
  Request r;
  r.id = id;
  r.priority = priority;
  r.key = BatchKey{/*mask_fp=*/id, 1, 1, 1, DType::F32};
  return r;
}

TEST(RequestQueuePriority, HigherPriorityPopsFirstFifoWithinLevel) {
  RequestQueue q(16);
  // Arrival order: low, low, HIGH, low, HIGH — service order must be
  // HIGH(3), HIGH(5), then the lows in arrival order 1, 2, 4.
  for (const auto& [id, prio] : std::vector<std::pair<std::uint64_t, int>>{
           {1, 0}, {2, 0}, {3, 5}, {4, 0}, {5, 5}}) {
    Request r = bare_request(id, prio);
    ASSERT_EQ(q.try_push(r), RequestQueue::Push::Ok);
  }
  std::vector<std::uint64_t> order;
  std::vector<Request> batch, expired;
  while (q.size() > 0) {
    ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch.front().id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 5, 1, 2, 4}));
}

TEST(RequestQueuePriority, EqualPriorityIsStarvationFreeFifo) {
  // With one priority level the queue must be plain FIFO: no request is
  // ever overtaken, so every request is served after at most (queue
  // length at its arrival) pops — starvation-freedom for equal priority.
  RequestQueue q(64);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    Request r = bare_request(id, 3);
    ASSERT_EQ(q.try_push(r), RequestQueue::Push::Ok);
  }
  std::vector<Request> batch, expired;
  for (std::uint64_t expect = 1; expect <= 20; ++expect) {
    ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.front().id, expect);
  }
}

TEST(RequestQueuePriority, DeadlineAgingBumpsOneClassAndKeepsFifoWithinIt) {
  // Aging enabled: a low-priority request whose deadline is closing in
  // competes one class up, so a steady high-priority stream can no
  // longer starve it past its deadline — cross-class starvation-freedom.
  RequestQueue q(64, /*age_threshold=*/std::chrono::microseconds{60'000'000});
  const TimePoint now = Clock::now();

  // Arrival order: HIGH(1), low-with-near-deadline(2), HIGH(3), HIGH(4).
  // The near-deadline low ages into the high class at selection time;
  // FIFO within the (effective) class then orders 1, 2, 3, 4 — the aged
  // request overtakes nobody that arrived before it, and every HIGH that
  // arrived after it is served after it.
  Request h1 = bare_request(1, 1);
  Request low = bare_request(2, 0);
  low.deadline = now + std::chrono::seconds{30};  // inside the threshold
  Request h3 = bare_request(3, 1);
  Request h4 = bare_request(4, 1);
  for (Request* r : {&h1, &low, &h3, &h4}) ASSERT_EQ(q.try_push(*r), RequestQueue::Push::Ok);

  std::vector<std::uint64_t> order;
  std::vector<Request> batch, expired;
  while (q.size() > 0) {
    ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_TRUE(expired.empty());
    order.push_back(batch.front().id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4}));

  // The bump is ONE class: an aged priority-0 request does not leapfrog
  // a priority-2 one.
  Request top = bare_request(10, 2);
  Request aged = bare_request(11, 0);
  aged.deadline = now + std::chrono::seconds{30};
  ASSERT_EQ(q.try_push(aged), RequestQueue::Push::Ok);
  ASSERT_EQ(q.try_push(top), RequestQueue::Push::Ok);
  ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 10u);

  // A far deadline (outside the threshold) does not age: plain priority.
  Request far = bare_request(20, 0);
  far.deadline = now + std::chrono::seconds{120};
  Request high = bare_request(21, 1);
  // (drain the leftover aged request first)
  ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
  ASSERT_EQ(q.try_push(far), RequestQueue::Push::Ok);
  ASSERT_EQ(q.try_push(high), RequestQueue::Push::Ok);
  ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 21u);
}

TEST(RequestQueuePriority, AgingDisabledByDefaultPreservesStrictClasses) {
  RequestQueue q(16);  // no age_threshold: submitted classes are final
  const TimePoint now = Clock::now();
  Request low = bare_request(1, 0);
  low.deadline = now + std::chrono::seconds{30};
  Request high = bare_request(2, 1);
  ASSERT_EQ(q.try_push(low), RequestQueue::Push::Ok);
  ASSERT_EQ(q.try_push(high), RequestQueue::Push::Ok);
  std::vector<Request> batch, expired;
  ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 2u);
}

// --- decode requests (KV-cache sessions) ------------------------------

kvcache::SessionManager::Config decode_manager_config(Index d) {
  kvcache::SessionManager::Config mc;
  mc.pool.page_size = 4;
  mc.pool.head_dim = d;
  mc.pool.num_pages = 64;
  return mc;
}

TEST(ServeDecode, DecodeThroughServerMatchesDirectManagerCall) {
  const Index L = 12, d = 16, steps = 8;
  auto mask =
      std::make_shared<const Csr<float>>(build_csr_random(L + steps, RandomParams{0.3, 21}));
  Rng rng(501);
  Matrix<float> q(L + steps, d), k(L + steps, d), v(L + steps, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  Matrix<float> qp(L, d), kp(L, d), vp(L, d), out(L, d);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      qp(i, p) = q(i, p);
      kp(i, p) = k(i, p);
      vp(i, p) = v(i, p);
    }
  }

  // Reference: a manager driven directly.
  kvcache::SessionManager direct(decode_manager_config(d));
  direct.create(1, kvcache::MaskSpec::make_csr(mask));
  direct.prefill(1, qp, kp, vp, out);

  // Same session state behind a server.
  ServerConfig cfg = make_config(2, 32, BatchPolicy{4, 50us});
  cfg.sessions = std::make_shared<kvcache::SessionManager>(decode_manager_config(d));
  cfg.sessions->create(1, kvcache::MaskSpec::make_csr(mask));
  cfg.sessions->prefill(1, qp, kp, vp, out);
  Server server(std::move(cfg));

  for (Index t = L; t < L + steps; ++t) {
    Matrix<float> qr(1, d), kr(1, d), vr(1, d), want(1, d);
    for (Index p = 0; p < d; ++p) {
      qr(0, p) = q(t, p);
      kr(0, p) = k(t, p);
      vr(0, p) = v(t, p);
    }
    direct.decode_step(1, qr, kr, vr, want);
    const Response resp =
        server.submit(make_decode_request(1, std::move(qr), std::move(kr), std::move(vr)))
            .get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok);
    ASSERT_EQ(resp.output.rows(), 1);
    for (Index p = 0; p < d; ++p) ASSERT_EQ(resp.output(0, p), want(0, p)) << "col " << p;
  }
  EXPECT_EQ(server.sessions()->length(1), L + steps);
}

TEST(ServeDecode, ComposedMaskSessionDecodesThroughTheServer) {
  // Composed-mask decode admission: a session whose mask is a chained
  // local ∘ global (longformer) composition serves tokens through the
  // server exactly as a direct manager drive — the serving layer needs
  // no knowledge of the composition, it lives behind the session id.
  const Index L = 10, d = 16, steps = 6;
  const LocalParams lp{3};
  GlobalMinusLocalParams gp;
  gp.global.tokens = {0, 4};
  gp.local.window = 3;
  const auto spec = kvcache::MaskSpec::compose(
      {MaskTraversal::local(lp), MaskTraversal::global(gp)});

  Rng rng(733);
  Matrix<float> q(L + steps, d), k(L + steps, d), v(L + steps, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  Matrix<float> qp(L, d), kp(L, d), vp(L, d), out(L, d);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      qp(i, p) = q(i, p);
      kp(i, p) = k(i, p);
      vp(i, p) = v(i, p);
    }
  }

  kvcache::SessionManager direct(decode_manager_config(d));
  direct.create(1, spec);
  direct.prefill(1, qp, kp, vp, out);

  ServerConfig cfg = make_config(2, 32, BatchPolicy{4, 50us});
  cfg.sessions = std::make_shared<kvcache::SessionManager>(decode_manager_config(d));
  cfg.sessions->create(1, spec);
  cfg.sessions->prefill(1, qp, kp, vp, out);
  Server server(std::move(cfg));

  for (Index t = L; t < L + steps; ++t) {
    Matrix<float> qr(1, d), kr(1, d), vr(1, d), want(1, d);
    for (Index p = 0; p < d; ++p) {
      qr(0, p) = q(t, p);
      kr(0, p) = k(t, p);
      vr(0, p) = v(t, p);
    }
    direct.decode_step(1, qr, kr, vr, want);
    const Response resp =
        server.submit(make_decode_request(1, std::move(qr), std::move(kr), std::move(vr)))
            .get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok);
    for (Index p = 0; p < d; ++p) ASSERT_EQ(resp.output(0, p), want(0, p)) << "col " << p;
  }
  EXPECT_EQ(server.sessions()->length(1), L + steps);
}

TEST(ServeDecode, UnknownSessionAndMissingManagerRejectCleanly) {
  const Index d = 8;
  Matrix<float> row(1, d);
  row.fill(0.5f);

  // No session backend configured: typed rejection at admission.
  {
    Server server(make_config(1, 8, BatchPolicy{1, 0us}));
    const Response resp =
        server.submit(make_decode_request(9, row, row, row)).get();
    EXPECT_EQ(resp.status, ResponseStatus::RejectedSession);
    EXPECT_EQ(server.stats().rejected_session, 1u);
  }
  // Backend present but the session id was never created (or was
  // evicted): typed rejection at dispatch; other requests unaffected.
  {
    ServerConfig cfg = make_config(1, 8, BatchPolicy{1, 0us});
    cfg.sessions = std::make_shared<kvcache::SessionManager>(decode_manager_config(d));
    Server server(std::move(cfg));
    const Response resp =
        server.submit(make_decode_request(9, row, row, row)).get();
    EXPECT_EQ(resp.status, ResponseStatus::RejectedSession);
    const auto s = server.stats();
    EXPECT_EQ(s.rejected_session, 1u);
    EXPECT_EQ(s.internal_errors, 0u);  // a missing session is not a crash
  }
  // Width mismatch against the pool is a contract violation caught at
  // admission — dispatch_decode uses the unchecked raw-pointer
  // decode_step, so letting it through would corrupt memory.
  {
    ServerConfig cfg = make_config(1, 8, BatchPolicy{1, 0us});
    cfg.sessions = std::make_shared<kvcache::SessionManager>(decode_manager_config(d));
    Server server(std::move(cfg));
    Matrix<float> wide(1, d * 2);
    wide.fill(0.5f);
    EXPECT_THROW(server.submit(make_decode_request(1, wide, wide, wide)), InvalidArgument);
  }
}

TEST(ServeDecode, DecodeAndAttentionKeysNeverCompareEqual) {
  // Same width/heads/dtype, but different dispatch families: the batch
  // key MUST keep them apart (a decode row under an attention kernel
  // would read a mask it does not have).
  const BatchKey attention{/*mask_fp=*/0, /*seq_len=*/0, /*width=*/64, 1, DType::F32,
                           static_cast<std::uint8_t>(RequestKind::Attention)};
  const BatchKey decode{0, 0, 64, 1, DType::F32,
                        static_cast<std::uint8_t>(RequestKind::Decode)};
  EXPECT_FALSE(attention == decode);
  EXPECT_NE(attention.hash(), decode.hash());
}

// --- pattern requests + seq_len-bucketed admission -------------------

TEST(ServePattern, BucketCeilingPicksSmallestFittingBucket) {
  const std::vector<Index> buckets{16, 32, 64};
  EXPECT_EQ(bucket_ceiling(buckets, 1), 16);
  EXPECT_EQ(bucket_ceiling(buckets, 16), 16);
  EXPECT_EQ(bucket_ceiling(buckets, 17), 32);
  EXPECT_EQ(bucket_ceiling(buckets, 64), 64);
  EXPECT_EQ(bucket_ceiling(buckets, 65), 65);  // above the ladder: exact
  EXPECT_EQ(bucket_ceiling({}, 40), 40);       // no buckets: exact
}

TEST(ServePattern, SingleRequestMatchesDirectCausalKernel) {
  const Index L = 24, d = 16, w = 5;
  auto pattern = std::make_shared<const kvcache::MaskSpec>(
      kvcache::MaskSpec::make_local(LocalParams{w}));
  auto p = make_payload(L, d, 3100);

  Server server(make_config(1, 8, BatchPolicy{1, 0us}));
  Matrix<float> q = p->q, k = p->k, v = p->v;
  const Response resp =
      server.submit(make_pattern_request(std::move(q), std::move(k), std::move(v), pattern))
          .get();
  ASSERT_EQ(resp.status, ResponseStatus::Ok);

  Matrix<float> direct(L, d);
  AttentionOptions o;
  o.causal = true;
  local_attention(p->q, p->k, p->v, LocalParams{w}, direct, o);
  EXPECT_EQ(max_abs_diff(resp.output, direct), 0.0);
}

TEST(ServePattern, BucketedMixedLengthsCoalesceAndStayBitExact) {
  // Lengths 9..14 all ceil to bucket 16 and share one BatchKey; every
  // item still runs at its OWN true length, so the batched outputs must
  // be bit-identical to per-length direct kernel calls — bucketing may
  // only ever change who rides together.
  const Index d = 8, w = 4;
  const std::vector<Index> lengths{9, 11, 12, 14, 10, 13};
  auto pattern = std::make_shared<const kvcache::MaskSpec>(
      kvcache::MaskSpec::make_local(LocalParams{w}));

  BatchPolicy policy{/*max_batch=*/8, /*max_wait=*/200'000us};
  policy.seq_buckets = {16, 32};
  Server server(make_config(1, 64, policy));

  std::vector<std::shared_ptr<const RequestData>> payloads;
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    payloads.push_back(make_payload(lengths[i], d, 5200 + static_cast<std::uint64_t>(i)));
    Matrix<float> q = payloads.back()->q, k = payloads.back()->k, v = payloads.back()->v;
    futures.push_back(
        server.submit(make_pattern_request(std::move(q), std::move(k), std::move(v), pattern)));
  }

  Index max_occupancy = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const Response resp = futures[i].get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok) << "request " << i;
    max_occupancy = std::max(max_occupancy, resp.batch_size);
    Matrix<float> direct(lengths[i], d);
    AttentionOptions o;
    o.causal = true;
    local_attention(payloads[i]->q, payloads[i]->k, payloads[i]->v, LocalParams{w}, direct, o);
    EXPECT_EQ(max_abs_diff(resp.output, direct), 0.0) << "request " << i;
  }
  // All six shared a key and arrived within one coalescing window:
  // batching must have actually happened.
  EXPECT_GT(max_occupancy, 1);
}

TEST(ServePattern, ExactAdmissionKeepsDifferentLengthsApart) {
  // Without seq_buckets the key carries the true length: near-length
  // requests never share a batch even inside a generous window.
  const Index d = 8;
  auto pattern = std::make_shared<const kvcache::MaskSpec>(
      kvcache::MaskSpec::make_local(LocalParams{3}));
  Server server(make_config(1, 16, BatchPolicy{8, 100'000us}));

  std::vector<std::future<Response>> futures;
  for (const Index L : {10, 11, 12}) {
    auto p = make_payload(L, d, 6000 + static_cast<std::uint64_t>(L));
    Matrix<float> q = p->q, k = p->k, v = p->v;
    futures.push_back(
        server.submit(make_pattern_request(std::move(q), std::move(k), std::move(v), pattern)));
  }
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok);
    EXPECT_EQ(resp.batch_size, 1);
  }
}

TEST(ServePattern, MalformedPatternRequestsThrowAtSubmit) {
  const Index d = 8;
  Server server(make_config(1, 8, BatchPolicy{1, 0us}));

  // Null pattern.
  {
    auto p = make_payload(8, d, 1);
    Matrix<float> q = p->q, k = p->k, v = p->v;
    EXPECT_THROW(
        server.submit(make_pattern_request(std::move(q), std::move(k), std::move(v), nullptr)),
        InvalidArgument);
  }
  // Longer than a CSR-backed pattern can admit.
  {
    auto mask = std::make_shared<const Csr<float>>(build_csr_local(8, LocalParams{2}));
    auto pattern =
        std::make_shared<const kvcache::MaskSpec>(kvcache::MaskSpec::make_csr(mask));
    auto p = make_payload(16, d, 2);
    Matrix<float> q = p->q, k = p->k, v = p->v;
    EXPECT_THROW(
        server.submit(make_pattern_request(std::move(q), std::move(k), std::move(v), pattern)),
        InvalidArgument);
  }
}

// --- weighted fairness (smooth WRR lead selection) --------------------

TEST(RequestQueueFairness, WeightedRoundRobinServesClassesProportionally) {
  // weights {0:1, 1:3}, both classes backlogged: smooth WRR's service
  // pattern is exactly periodic — [1, 1, 0, 1] — so class 1 gets 3 of
  // every 4 leads and class 0 is never starved.
  RequestQueue q(64, std::chrono::microseconds{0}, {{0, 1}, {1, 3}});
  for (std::uint64_t i = 0; i < 8; ++i) {
    Request lo = bare_request(100 + i, 0);
    Request hi = bare_request(200 + i, 1);
    ASSERT_EQ(q.try_push(lo), RequestQueue::Push::Ok);
    ASSERT_EQ(q.try_push(hi), RequestQueue::Push::Ok);
  }
  std::vector<int> classes;
  std::vector<Request> batch, expired;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
    ASSERT_EQ(batch.size(), 1u);
    classes.push_back(batch.front().priority);
  }
  EXPECT_EQ(classes, (std::vector<int>{1, 1, 0, 1, 1, 1, 0, 1}));

  // FIFO within each class held throughout.
  std::uint64_t next_lo = 100, next_hi = 200;
  RequestQueue q2(64, std::chrono::microseconds{0}, {{0, 1}, {1, 3}});
  for (std::uint64_t i = 0; i < 8; ++i) {
    Request lo = bare_request(100 + i, 0);
    Request hi = bare_request(200 + i, 1);
    ASSERT_EQ(q2.try_push(lo), RequestQueue::Push::Ok);
    ASSERT_EQ(q2.try_push(hi), RequestQueue::Push::Ok);
  }
  while (q2.size() > 0) {
    ASSERT_TRUE(q2.pop_batch(1, 0us, batch, expired));
    if (batch.front().priority == 0) {
      EXPECT_EQ(batch.front().id, next_lo++);
    } else {
      EXPECT_EQ(batch.front().id, next_hi++);
    }
  }
}

TEST(RequestQueueFairness, AbsentClassesAccrueNothingAndEmptyWeightsStayStrict) {
  // A class with no queued requests must not bank credit while absent
  // (it would burst on return); with only one class present, every
  // lead is trivially that class.
  RequestQueue q(64, std::chrono::microseconds{0}, {{0, 1}, {1, 100}});
  std::vector<Request> batch, expired;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Request lo = bare_request(i, 0);
    ASSERT_EQ(q.try_push(lo), RequestQueue::Push::Ok);
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
    EXPECT_EQ(batch.front().priority, 0);
  }
  // Class 1 arrives only now; it wins leads by weight going forward but
  // owes nothing from its absence (one class-0 service per round of 101
  // would be the steady state — the first 100 leads are class 1's).
  for (std::uint64_t i = 0; i < 4; ++i) {
    Request lo = bare_request(500 + i, 0);
    Request hi = bare_request(600 + i, 1);
    ASSERT_EQ(q.try_push(lo), RequestQueue::Push::Ok);
    ASSERT_EQ(q.try_push(hi), RequestQueue::Push::Ok);
  }
  ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
  EXPECT_EQ(batch.front().priority, 1);

  // Empty weight map: strict priority, as before.
  RequestQueue strict(16);
  Request lo = bare_request(1, 0);
  Request hi = bare_request(2, 5);
  ASSERT_EQ(strict.try_push(lo), RequestQueue::Push::Ok);
  ASSERT_EQ(strict.try_push(hi), RequestQueue::Push::Ok);
  ASSERT_TRUE(strict.pop_batch(8, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 2u);
}

TEST(RequestQueueFairness, WeightedQueueSurvivesAnAllExpiredSweep) {
  // The expired sweep can empty the queue before lead selection runs;
  // with a weight map the WRR branch must hand the expired set back
  // instead of selecting from an empty class map.
  RequestQueue q(16, std::chrono::microseconds{0}, {{0, 1}, {1, 3}});
  std::vector<Request> batch, expired;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Request r = bare_request(id, static_cast<int>(id % 2));
    r.deadline = Clock::now() - 1ms;
    ASSERT_EQ(q.try_push(r), RequestQueue::Push::Ok);
  }
  ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(expired.size(), 3u);
  EXPECT_EQ(q.size(), 0u);

  // The queue keeps serving normally afterwards.
  Request live = bare_request(9, 1);
  ASSERT_EQ(q.try_push(live), RequestQueue::Push::Ok);
  ASSERT_TRUE(q.pop_batch(8, 0us, batch, expired));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().id, 9u);
  EXPECT_TRUE(expired.empty());
}

TEST(RequestQueueFairness, DrainedClassForfeitsItsBankedCredit) {
  // weights {0:3, 1:1}. Round 1 (both present): lo accrues 3, hi 1 —
  // lo leads and pays back the round's 4 (balance -1). Round 2 runs
  // with lo absent: its stale -1 is forfeited there, not banked. So
  // after the full drain, a fresh lo+hi round leads with class 0 again
  // (3 vs hi's at-most 2); had lo's -1 survived the drain, the classes
  // would tie at 2 and the tiebreak would hand the lead to class 1.
  RequestQueue q(16, std::chrono::microseconds{0}, {{0, 3}, {1, 1}});
  std::vector<Request> batch, expired;
  Request lo1 = bare_request(1, 0), hi1 = bare_request(2, 1);
  ASSERT_EQ(q.try_push(lo1), RequestQueue::Push::Ok);
  ASSERT_EQ(q.try_push(hi1), RequestQueue::Push::Ok);
  ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 1u);  // class 0: weight 3 beats 1
  ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 2u);  // lone class left
  ASSERT_EQ(q.size(), 0u);

  Request lo2 = bare_request(3, 0), hi2 = bare_request(4, 1);
  ASSERT_EQ(q.try_push(lo2), RequestQueue::Push::Ok);
  ASSERT_EQ(q.try_push(hi2), RequestQueue::Push::Ok);
  ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 3u);  // fresh round, same weights, same lead
  ASSERT_TRUE(q.pop_batch(1, 0us, batch, expired));
  EXPECT_EQ(batch.front().id, 4u);
}

// --- pop_batch coalescing clock (worst-case batch latency) ------------

TEST(RequestQueueLatency, MaxWaitIsAnchoredAtLeadAcquisitionNotReArmed) {
  // A steady trickle of compatible requests must not keep the window
  // open: the coalescing clock is anchored when the lead is popped, so
  // pop_batch returns within max_wait of that instant no matter how
  // many newcomers arrive near the deadline.
  RequestQueue q(256);
  const auto max_wait = 80'000us;  // 80 ms window
  // Same key for everyone: every newcomer is batch-compatible with the
  // lead, the strongest temptation to keep collecting.
  auto compatible = [](std::uint64_t id) {
    Request r = bare_request(id, 0);
    r.key = BatchKey{/*mask_fp=*/7, 1, 1, 1, DType::F32};
    return r;
  };
  Request lead = compatible(1);
  ASSERT_EQ(q.try_push(lead), RequestQueue::Push::Ok);

  std::atomic<bool> stop{false};
  std::thread feeder([&q, &stop, &compatible] {
    for (std::uint64_t id = 2; !stop.load(); ++id) {
      Request r = compatible(id);
      if (q.try_push(r) != RequestQueue::Push::Ok) break;
      std::this_thread::sleep_for(10ms);  // well inside every 80 ms window
    }
  });

  std::vector<Request> batch, expired;
  const auto t0 = Clock::now();
  ASSERT_TRUE(q.pop_batch(/*max_batch=*/128, max_wait, batch, expired));
  const auto elapsed = Clock::now() - t0;
  stop.store(true);
  feeder.join();

  // The batch closed on the lead's clock: well under 2× the window
  // even though arrivals continued, and it did not fill to max_batch.
  EXPECT_LT(elapsed, 2 * std::chrono::microseconds(max_wait));
  EXPECT_GE(batch.size(), 1u);
  EXPECT_LT(batch.size(), 128u);
}

// --- per-bucket batching windows --------------------------------------

TEST(BatchPolicyBuckets, MaxWaitForResolvesBucketOverridesAndFallsBack) {
  BatchPolicy policy{/*max_batch=*/8, /*max_wait=*/200us};
  policy.seq_buckets = {16, 32, 64};
  const auto pattern_key = [](Index seq_len) {
    return BatchKey{7, seq_len, 8, 1, DType::F32,
                    static_cast<std::uint8_t>(RequestKind::Pattern)};
  };

  // No overrides configured: every key gets the global window.
  EXPECT_EQ(max_wait_for(policy, pattern_key(16)), 200us);

  policy.bucket_max_wait = {0us, 1000us, 5000us};
  EXPECT_EQ(max_wait_for(policy, pattern_key(16)), 0us);
  EXPECT_EQ(max_wait_for(policy, pattern_key(32)), 1000us);
  EXPECT_EQ(max_wait_for(policy, pattern_key(64)), 5000us);
  // Above the ladder, Pattern keys carry the exact length: global.
  EXPECT_EQ(max_wait_for(policy, pattern_key(65)), 200us);
  // A non-Pattern key at a ceiling-coincident length is NOT bucketed.
  EXPECT_EQ(max_wait_for(policy, BatchKey{7, 32, 8, 1, DType::F32,
                                          static_cast<std::uint8_t>(RequestKind::Attention)}),
            200us);

  // Misaligned overrides are a configuration error, caught at build.
  RequestQueue q(4);
  BatchPolicy bad = policy;
  bad.bucket_max_wait = {0us};
  EXPECT_THROW(DynamicBatcher(q, bad), InvalidArgument);
}

TEST(BatchPolicyBuckets, BucketWindowExtendsPastAGreedyGlobalPolicy) {
  // Global max_wait 0 = greedy dispatch, but the bucket-32 override
  // keeps the window open: a compatible request arriving mid-window
  // must still join the lead's batch, while a non-Pattern lead under
  // the same conditions dispatches alone immediately.
  RequestQueue q(16);
  BatchPolicy policy{/*max_batch=*/2, /*max_wait=*/0us};
  policy.seq_buckets = {8, 32};
  policy.bucket_max_wait = {0us, 2'000'000us};
  DynamicBatcher batcher(q, policy);

  const auto bucketed = [](std::uint64_t id) {
    Request r = bare_request(id, 0);
    r.key = BatchKey{7, 32, 8, 1, DType::F32,
                     static_cast<std::uint8_t>(RequestKind::Pattern)};
    return r;
  };
  Request lead = bucketed(1);
  ASSERT_EQ(q.try_push(lead), RequestQueue::Push::Ok);
  std::thread feeder([&q, &bucketed] {
    std::this_thread::sleep_for(30ms);  // well inside the 2 s override
    Request late = bucketed(2);
    ASSERT_EQ(q.try_push(late), RequestQueue::Push::Ok);
  });
  PoppedBatch pb;
  ASSERT_TRUE(batcher.next_batch(pb));
  feeder.join();
  EXPECT_EQ(pb.batch.size(), 2u);  // the late arrival rode the held window

  // Same arrival pattern, Attention-kind key: the global greedy window
  // applies, so the lead goes out alone and the late request waits.
  Request alead = bare_request(3, 0);
  alead.key = BatchKey{9, 32, 8, 1, DType::F32,
                       static_cast<std::uint8_t>(RequestKind::Attention)};
  ASSERT_EQ(q.try_push(alead), RequestQueue::Push::Ok);
  ASSERT_TRUE(batcher.next_batch(pb));
  EXPECT_EQ(pb.batch.size(), 1u);
  EXPECT_EQ(pb.batch.front().id, 3u);
}

}  // namespace
}  // namespace gpa::serve
