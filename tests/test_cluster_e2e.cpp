// End-to-end cluster differential gate (tier2): forks REAL gpa_serve
// processes on localhost and checks that the 2-process cluster's
// prefill and decode outputs are bit-identical to the in-process
// oracles — seqpar/sim_cluster for ring prefill, a local
// SessionManager for routed decode. This is the non-negotiable gate:
// if it holds, the wire path (frame codec, RPC, rotation protocol,
// deferred in-order folding) introduced zero numerical drift.
//
// The binary path is injected by CMake as GPA_SERVE_PATH; every
// network wait has a short timeout, and the ctest registration adds a
// hard TIMEOUT so a hung accept() can never wedge CI.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "kvcache/session_manager.hpp"
#include "net/cluster.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/sim_cluster.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;

struct NodeProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

NodeProc spawn_serve(Index pages, Index page_size, Index head_dim) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string pages_s = std::to_string(pages);
    const std::string ps_s = std::to_string(page_size);
    const std::string d_s = std::to_string(head_dim);
    ::execl(GPA_SERVE_PATH, GPA_SERVE_PATH, "--port", "0", "--pages", pages_s.c_str(),
            "--page-size", ps_s.c_str(), "--dim", d_s.c_str(), "--accept-timeout-ms",
            "60000", static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(fds[1]);
  std::string line;
  char c;
  while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  ::close(fds[0]);
  NodeProc np;
  np.pid = pid;
  if (line.rfind("LISTENING ", 0) == 0) {
    np.port = static_cast<std::uint16_t>(std::stoi(line.substr(10)));
  }
  EXPECT_NE(np.port, 0) << "gpa_serve did not report a port: \"" << line << "\"";
  return np;
}

/// Spawns N real node processes and connects a ClusterClient; shuts
/// everything down (and reaps the children) on destruction.
struct ProcessCluster {
  std::vector<NodeProc> procs;
  net::ClusterClient client;

  ProcessCluster(Index n, Index pages, Index page_size, Index head_dim) {
    for (Index p = 0; p < n; ++p) {
      const NodeProc np = spawn_serve(pages, page_size, head_dim);
      if (np.port == 0) continue;  // EXPECT already fired
      auto t = net::TcpTransport::connect("127.0.0.1", np.port, net::Millis{10000},
                                          net::Millis{30000});
      EXPECT_NE(t, nullptr);
      procs.push_back(np);
      if (t) client.add_peer(static_cast<std::uint64_t>(p), std::move(t));
    }
  }

  ~ProcessCluster() {
    client.shutdown_all();
    for (const NodeProc& np : procs) {
      int status = 0;
      ::waitpid(np.pid, &status, 0);
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "node " << np.pid << " did not exit cleanly";
    }
  }
};

TEST(ClusterE2E, TwoProcessRingPrefillBitIdenticalToSimCluster) {
  const Index L = 128, d = 24;
  const auto mask = build_csr_random(L, RandomParams{0.12, 4242});
  const auto part = seqpar::partition_balanced_nnz(L, 2, seqpar::degrees_of(mask));
  Rng rng(17);
  Matrix<float> q(L, d), k(L, d), v(L, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  ProcessCluster cluster(2, /*pages=*/64, /*page_size=*/16, d);
  ASSERT_EQ(cluster.client.peers(), 2u);

  for (const bool causal : {false, true}) {
    Matrix<float> wire_out;
    const auto rep =
        cluster.client.ring_prefill(q, k, v, mask, part, causal, -1.0f, wire_out);
    Matrix<float> oracle(L, d);
    AttentionOptions opts;
    opts.causal = causal;
    const auto sim = seqpar::distributed_csr_attention(q, k, v, mask, part, oracle, opts);
    ASSERT_EQ(std::memcmp(wire_out.data(), oracle.data(), oracle.size_bytes()), 0)
        << "causal=" << causal;
    ASSERT_EQ(rep.nodes.size(), sim.nodes.size());
    for (std::size_t p = 0; p < sim.nodes.size(); ++p) {
      EXPECT_EQ(rep.nodes[p].edges, sim.nodes[p].edges) << "node " << p;
    }
  }
}

TEST(ClusterE2E, TwoProcessRoutedDecodeBitIdenticalToLocalSessionManager) {
  const Index d = 16, prompt = 20, steps = 10;
  kvcache::SessionManager::Config cfg;
  cfg.pool.num_pages = 64;
  cfg.pool.page_size = 16;
  cfg.pool.head_dim = d;

  ProcessCluster cluster(2, cfg.pool.num_pages, cfg.pool.page_size, d);
  ASSERT_EQ(cluster.client.peers(), 2u);
  kvcache::SessionManager local(cfg);

  net::WireMask wm;
  wm.kind = net::WireMaskKind::Local;
  wm.a = 5;

  Rng rng(71);
  for (const std::uint64_t sid : {11u, 22u, 33u, 44u}) {
    cluster.client.create_session(sid, wm);
    local.create(sid, wm.to_spec());

    Matrix<float> q(prompt, d), k(prompt, d), v(prompt, d), remote_o, local_o;
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);
    cluster.client.prefill(sid, q, k, v, remote_o);
    local.prefill(sid, q, k, v, local_o);
    ASSERT_EQ(std::memcmp(remote_o.data(), local_o.data(), local_o.size_bytes()), 0);

    std::vector<float> qr(static_cast<std::size_t>(d)), kr(qr.size()), vr(qr.size());
    std::vector<float> remote_row(qr.size()), local_row(qr.size());
    for (Index t = 0; t < steps; ++t) {
      for (auto* vec : {&qr, &kr, &vr}) {
        for (float& x : *vec) x = rng.next_float();
      }
      cluster.client.decode_step(sid, qr.data(), kr.data(), vr.data(), d,
                                 remote_row.data());
      local.decode_step(sid, qr.data(), kr.data(), vr.data(), local_row.data());
      ASSERT_EQ(std::memcmp(remote_row.data(), local_row.data(),
                            remote_row.size() * sizeof(float)),
                0)
          << "session " << sid << " step " << t;
    }
  }

  // Ownership really is spread: both nodes hold at least one session.
  const auto i0 = cluster.client.ping(0);
  const auto i1 = cluster.client.ping(1);
  EXPECT_EQ(i0.sessions + i1.sessions, 4u);
}

TEST(ClusterE2E, TypedErrorsSurviveRealSockets) {
  const Index d = 8;
  ProcessCluster cluster(2, /*pages=*/8, /*page_size=*/16, d);
  ASSERT_EQ(cluster.client.peers(), 2u);
  std::vector<float> row(static_cast<std::size_t>(d), 0.25f), out(row.size());
  EXPECT_THROW(
      cluster.client.decode_step(12345, row.data(), row.data(), row.data(), d, out.data()),
      kvcache::SessionNotFound);
}

/// Runs `gpa_cli <args>`, capturing stdout+stderr and the exit code.
std::pair<int, std::string> run_cli(const std::string& args) {
  const std::string cmd = "\"" + std::string(GPA_CLI_PATH) + "\" " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  std::string output;
  char buf[512];
  while (::fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
  const int status = ::pclose(pipe);
  return {(status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1, output};
}

// The live scrape path, end to end against real forked processes: each
// node's Op::Stats snapshot is that PROCESS's registry, so per-node
// counters must reconcile exactly with the work this test routed to it,
// and `gpa_cli stats` — a third process speaking the same RPC — must
// report the same numbers. gpa_serve serves one connection at a time,
// so the test runs in phases: the workload client disconnects (sessions
// and the registry survive across connections) before the CLI scrapes,
// and a final client connects just to shut the nodes down.
TEST(ClusterE2E, StatsScrapeMatchesNodeActivityAndCli) {
  const Index d = 16, prompt = 20;
  std::vector<NodeProc> procs;
  for (int p = 0; p < 2; ++p) procs.push_back(spawn_serve(/*pages=*/64, /*page_size=*/16, d));
  ASSERT_EQ(procs.size(), 2u);

  net::WireMask wm;
  wm.kind = net::WireMaskKind::Local;
  wm.a = 5;

  auto connect_all = [&](net::ClusterClient& client) {
    for (std::size_t p = 0; p < procs.size(); ++p) {
      auto t = net::TcpTransport::connect("127.0.0.1", procs[p].port, net::Millis{10000},
                                          net::Millis{30000});
      ASSERT_NE(t, nullptr);
      client.add_peer(static_cast<std::uint64_t>(p), std::move(t));
    }
  };

  // Phase 1: known per-node workload — sessions land where the ring
  // says, and we tally the decode steps we send to each owner — then
  // scrape over the same connection and reconcile.
  std::map<std::uint64_t, obs::MetricsSnapshot> scraped;
  {
    net::ClusterClient client;
    connect_all(client);
    Rng rng(5);
    std::map<std::uint64_t, Size> steps_by_node, sessions_by_node;
    for (const std::uint64_t sid : {101u, 202u, 303u}) {
      const std::uint64_t owner = client.owner_of(sid);
      client.create_session(sid, wm);
      sessions_by_node[owner] += 1;
      Matrix<float> q(prompt, d), k(prompt, d), v(prompt, d), o;
      fill_uniform(q, rng);
      fill_uniform(k, rng);
      fill_uniform(v, rng);
      client.prefill(sid, q, k, v, o);
      std::vector<float> row(static_cast<std::size_t>(d), 0.5f), out_row(row.size());
      const Size steps = 1 + sid % 4;
      for (Size t = 0; t < steps; ++t) {
        client.decode_step(sid, row.data(), row.data(), row.data(), d, out_row.data());
      }
      steps_by_node[owner] += steps;
    }

    Size scraped_sessions = 0, scraped_steps = 0;
    for (const std::uint64_t node : {0u, 1u}) {
      const obs::MetricsSnapshot snap = client.node_stats(node);
      // Counters reconcile with the work we routed to this node.
      EXPECT_EQ(snap.counter("kvcache.decode.steps"), steps_by_node[node]) << "node " << node;
      EXPECT_EQ(snap.gauge("kvcache.sessions.live"),
                static_cast<std::int64_t>(sessions_by_node[node]))
          << "node " << node;
      // The scrape-time gauges agree with the Ping view of the same node.
      const auto info = client.ping(node);
      EXPECT_EQ(snap.gauge("kvcache.pages.in_use"),
                static_cast<std::int64_t>(info.pages_in_use));
      EXPECT_EQ(snap.gauge("kvcache.pages.free"), static_cast<std::int64_t>(info.pages_free));
      // The node's wire layer saw our traffic.
      EXPECT_GT(snap.counter("net.frames.received"), 0u);
      EXPECT_GT(snap.counter("net.bytes.received"), 0u);
      EXPECT_EQ(snap.counter("net.checksum_failures"), 0u);
      scraped_sessions += static_cast<Size>(snap.gauge("kvcache.sessions.live"));
      scraped_steps += snap.counter("kvcache.decode.steps");

      // Counters are monotone across scrapes, and the scrape itself is
      // visible in the second snapshot's frame counters.
      const obs::MetricsSnapshot again = client.node_stats(node);
      for (const auto& c : snap.counters) {
        EXPECT_GE(again.counter(c.name), c.value) << c.name;
      }
      EXPECT_GT(again.counter("net.frames.received"), snap.counter("net.frames.received"));
      scraped[node] = again;
    }
    EXPECT_EQ(scraped_sessions, 3u);
    EXPECT_EQ(scraped_steps, static_cast<Size>(1 + 101 % 4 + 1 + 202 % 4 + 1 + 303 % 4));
    // client destructs here: the nodes see EOF and loop back to accept.
  }

  // Phase 2: gpa_cli stats — a separate process speaking Op::Stats over
  // TCP. kvcache counters are quiescent across connections, so the
  // CLI's text line must match the phase-1 scrape exactly.
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const auto [exit_code, output] =
        run_cli("stats 127.0.0.1:" + std::to_string(procs[p].port));
    ASSERT_EQ(exit_code, 0) << output;
    const std::string want =
        "kvcache.decode.steps " +
        std::to_string(scraped[static_cast<std::uint64_t>(p)].counter("kvcache.decode.steps"));
    EXPECT_NE(output.find(want), std::string::npos)
        << "node " << p << " cli output:\n" << output;
    EXPECT_NE(output.find("net.frames.received"), std::string::npos);
  }

  // Phase 3: reconnect just to shut the nodes down, then reap them.
  {
    net::ClusterClient client;
    connect_all(client);
    client.shutdown_all();
  }
  for (const NodeProc& np : procs) {
    int status = 0;
    ::waitpid(np.pid, &status, 0);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "node " << np.pid << " did not exit cleanly";
  }
}

}  // namespace
