// Tests for the multi-head wrapper (§VI-A's "trivial extension").

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/multihead.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

Matrix<float> slice(const Matrix<float>& m, Index head, Index hd) {
  Matrix<float> out(m.rows(), hd);
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < hd; ++j) out(i, j) = m(i, head * hd + j);
  }
  return out;
}

TEST(MultiHeadTest, EachHeadMatchesIndependentReference) {
  const Index L = 48, heads = 4, hd = 8;
  const auto in = make_inputs(L, heads * hd, 600);
  const auto mask = build_csr_random(L, RandomParams{0.2, 61});

  Matrix<float> out(L, heads * hd);
  multihead_csr_attention(in.q, in.k, in.v, MultiHeadDims{heads, hd}, mask, out);

  for (Index h = 0; h < heads; ++h) {
    Matrix<float> expected(L, hd);
    baselines::reference_attention(slice(in.q, h, hd), slice(in.k, h, hd), slice(in.v, h, hd),
                                   mask, expected);
    const auto got = slice(out, h, hd);
    const auto rep = allclose(got, expected, 1e-5, 1e-6);
    EXPECT_TRUE(rep.all_close) << "head " << h << " diff " << rep.max_abs_diff;
  }
}

TEST(MultiHeadTest, SingleHeadDegeneratesToPlainKernel) {
  const Index L = 32, d = 16;
  const auto in = make_inputs(L, d, 601);
  const auto mask = build_csr_local(L, LocalParams{3});
  Matrix<float> mh(L, d), plain(L, d);
  multihead_csr_attention(in.q, in.k, in.v, MultiHeadDims{1, d}, mask, mh);
  csr_attention(in.q, in.k, in.v, mask, plain);
  EXPECT_EQ(max_abs_diff(mh, plain), 0.0);
}

TEST(MultiHeadTest, LocalWrapperMatchesPerHeadLocal) {
  const Index L = 40, heads = 2, hd = 8;
  const auto in = make_inputs(L, heads * hd, 602);
  const LocalParams p{4};
  Matrix<float> out(L, heads * hd);
  multihead_local_attention(in.q, in.k, in.v, MultiHeadDims{heads, hd}, p, out);
  for (Index h = 0; h < heads; ++h) {
    Matrix<float> expected(L, hd);
    local_attention(slice(in.q, h, hd), slice(in.k, h, hd), slice(in.v, h, hd), p, expected);
    EXPECT_EQ(max_abs_diff(slice(out, h, hd), expected), 0.0) << "head " << h;
  }
}

TEST(MultiHeadTest, ScaleUsesHeadDimensionNotPackedWidth) {
  // 1/sqrt(dk) must resolve against the per-head dimension.
  const Index L = 24, heads = 3, hd = 4;
  const auto in = make_inputs(L, heads * hd, 603);
  const auto mask = build_csr_local(L, LocalParams{2});
  Matrix<float> out(L, heads * hd);
  multihead_csr_attention(in.q, in.k, in.v, MultiHeadDims{heads, hd}, mask, out);
  // Head 0 computed independently with explicit 1/sqrt(hd):
  AttentionOptions opts;
  opts.scale = 1.0f / std::sqrt(static_cast<float>(hd));
  Matrix<float> expected(L, hd);
  csr_attention(slice(in.q, 0, hd), slice(in.k, 0, hd), slice(in.v, 0, hd), mask, expected,
                opts);
  EXPECT_EQ(max_abs_diff(slice(out, 0, hd), expected), 0.0);
}

TEST(MultiHeadTest, BadDimensionsThrow) {
  const auto in = make_inputs(16, 12, 604);
  const auto mask = build_csr_local(16, LocalParams{2});
  Matrix<float> out(16, 12);
  // 12 != 5 * 3
  EXPECT_THROW(multihead_csr_attention(in.q, in.k, in.v, MultiHeadDims{5, 3}, mask, out),
               InvalidArgument);
}

TEST(MultiHeadTest, CustomKernelInjection) {
  // The generic wrapper accepts any per-head kernel.
  const Index L = 20, heads = 2, hd = 4;
  const auto in = make_inputs(L, heads * hd, 605);
  Matrix<float> out(L, heads * hd);
  int calls = 0;
  HeadKernel<float> kernel = [&calls](const Matrix<float>& qh, const Matrix<float>& kh,
                                      const Matrix<float>& vh, Matrix<float>& oh,
                                      const AttentionOptions& o) {
    ++calls;
    local_attention(qh, kh, vh, LocalParams{2}, oh, o);
  };
  multihead_attention(in.q, in.k, in.v, MultiHeadDims{heads, hd}, kernel, out);
  EXPECT_EQ(calls, heads);
}

}  // namespace
}  // namespace gpa
