// src/net unit tests, transport-polymorphic via the loopback arm:
// frame codec fuzz (every malformed input is a typed WireStatus, never
// UB or a hang), loopback + TCP transports, the RPC error taxonomy
// across a served connection, consistent-hash ring movement, and the
// cluster differential gates — loopback ring prefill bit-identical to
// seqpar/sim_cluster, loopback routed decode bit-identical to a local
// SessionManager. The real multi-process version of the gates lives in
// test_cluster_e2e (tier2).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvcache/errors.hpp"
#include "kvcache/session_manager.hpp"
#include "net/cluster.hpp"
#include "net/frame.hpp"
#include "net/node.hpp"
#include "net/rpc.hpp"
#include "net/transport.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/sim_cluster.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;

std::vector<std::uint8_t> valid_frame_bytes(std::uint16_t type = 7) {
  net::Frame f;
  f.type = type;
  f.flags = 3;
  f.payload = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> wire;
  net::encode_frame(f, wire);
  return wire;
}

// ---------------------------------------------------------------------
// Frame codec

TEST(Frame, RoundTripPreservesTypeFlagsPayload) {
  net::Frame in;
  in.type = 42;
  in.flags = 0xbeef;
  in.payload = {9, 8, 7, 6};
  std::vector<std::uint8_t> wire;
  net::encode_frame(in, wire);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + 4 + net::kFrameTrailerBytes);

  net::Frame out;
  ASSERT_EQ(net::decode_frame(wire.data(), wire.size(), out), net::WireStatus::Ok);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Frame, TruncatedHeaderIsTyped) {
  const auto wire = valid_frame_bytes();
  net::Frame out;
  for (std::size_t n = 0; n < net::kFrameHeaderBytes; ++n) {
    EXPECT_EQ(net::decode_frame(wire.data(), n, out), net::WireStatus::Truncated) << n;
  }
}

TEST(Frame, TruncatedPayloadOrTrailerIsTyped) {
  const auto wire = valid_frame_bytes();
  net::Frame out;
  for (std::size_t n = net::kFrameHeaderBytes; n < wire.size(); ++n) {
    EXPECT_EQ(net::decode_frame(wire.data(), n, out), net::WireStatus::Truncated) << n;
  }
}

TEST(Frame, BadMagicIsTyped) {
  auto wire = valid_frame_bytes();
  wire[0] ^= 0xff;
  net::Frame out;
  EXPECT_EQ(net::decode_frame(wire.data(), wire.size(), out), net::WireStatus::BadMagic);
}

TEST(Frame, OversizedLengthPrefixIsTypedAndDoesNotAllocate) {
  auto wire = valid_frame_bytes();
  // Length prefix lives at header bytes [8, 16): write len = cap + 1.
  const std::uint64_t huge = net::kMaxFramePayload + 1;
  for (int b = 0; b < 8; ++b) {
    wire[8 + static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(huge >> (8 * b));
  }
  net::Frame out;
  EXPECT_EQ(net::decode_frame(wire.data(), wire.size(), out), net::WireStatus::Oversized);
}

TEST(Frame, ZeroLengthPayloadIsTyped) {
  auto wire = valid_frame_bytes();
  for (int b = 0; b < 8; ++b) wire[8 + static_cast<std::size_t>(b)] = 0;
  net::Frame out;
  EXPECT_EQ(net::decode_frame(wire.data(), wire.size(), out), net::WireStatus::EmptyPayload);
}

TEST(Frame, ChecksumMismatchIsTyped) {
  auto wire = valid_frame_bytes();
  wire[net::kFrameHeaderBytes + 2] ^= 0x01;  // flip one payload bit
  net::Frame out;
  EXPECT_EQ(net::decode_frame(wire.data(), wire.size(), out),
            net::WireStatus::ChecksumMismatch);
}

TEST(Frame, TrailingJunkIsTyped) {
  auto wire = valid_frame_bytes();
  wire.push_back(0xaa);
  net::Frame out;
  EXPECT_EQ(net::decode_frame(wire.data(), wire.size(), out), net::WireStatus::Malformed);
}

TEST(Frame, ReaderUnderrunIsStickyNotUB) {
  const std::uint8_t bytes[3] = {1, 2, 3};
  net::Reader r(bytes, sizeof(bytes));
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_EQ(r.u64(), 0u);  // underrun: zero, flag trips
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.u8(), 0u);  // sticky: still failing, still no UB
  Matrix<float> m;
  EXPECT_FALSE(net::get_matrix(r, m));
}

TEST(Frame, MatrixCodecRoundTripsBitExactly) {
  Rng rng(11);
  Matrix<float> in(7, 5);
  fill_uniform(in, rng);
  net::Writer w;
  net::put_matrix(w, in);
  net::Reader r(w.buf);
  Matrix<float> out;
  ASSERT_TRUE(net::get_matrix(r, out));
  EXPECT_TRUE(r.done());
  ASSERT_TRUE(out.same_shape(in));
  EXPECT_EQ(std::memcmp(out.data(), in.data(), in.size_bytes()), 0);
}

TEST(Frame, MatrixCodecRejectsHostileDimensions) {
  net::Writer w;
  w.i64(1 << 20);
  w.i64(1 << 20);  // rows*cols overflows the frame cap
  net::Reader r(w.buf);
  Matrix<float> out;
  EXPECT_FALSE(net::get_matrix(r, out));
}

TEST(Frame, CsrCodecRoundTripsAndValidates) {
  const auto mask = build_csr_local(32, make_local(4));
  net::Writer w;
  net::put_csr(w, mask);
  net::Reader r(w.buf);
  Csr<float> out;
  ASSERT_TRUE(net::get_csr(r, out));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(out.rows, mask.rows);
  EXPECT_EQ(out.col_idx, mask.col_idx);

  // A non-canonical CSR (descending columns) must be rejected.
  Csr<float> bad = mask;
  std::swap(bad.col_idx[1], bad.col_idx[2]);
  net::Writer wb;
  net::put_csr(wb, bad);
  net::Reader rb(wb.buf);
  EXPECT_FALSE(net::get_csr(rb, out));
}

TEST(Frame, PartitionCodecRoundTripsAndValidates) {
  const auto mask = build_csr_local(64, make_local(5));
  const auto part = seqpar::partition_balanced_nnz(64, 3, seqpar::degrees_of(mask));
  net::Writer w;
  net::put_partition(w, part);
  net::Reader r(w.buf);
  seqpar::Partition out;
  ASSERT_TRUE(net::get_partition(r, out));
  EXPECT_EQ(out.boundaries, part.boundaries);
  EXPECT_EQ(out.work, part.work);

  seqpar::Partition bad = part;
  bad.boundaries[1] = -3;  // non-monotone
  net::Writer wb;
  net::put_partition(wb, bad);
  net::Reader rb(wb.buf);
  EXPECT_FALSE(net::get_partition(rb, out));
}

// ---------------------------------------------------------------------
// Transports

TEST(Transport, LoopbackCarriesFramesBothWays) {
  auto [a, b] = net::make_loopback_pair();
  net::Frame f;
  f.type = 1;
  f.payload = {1, 2, 3};
  ASSERT_EQ(net::write_frame(*a, f), net::WireStatus::Ok);
  net::Frame got;
  ASSERT_EQ(net::read_frame(*b, got), net::WireStatus::Ok);
  EXPECT_EQ(got.payload, f.payload);

  f.payload = {9};
  ASSERT_EQ(net::write_frame(*b, f), net::WireStatus::Ok);
  ASSERT_EQ(net::read_frame(*a, got), net::WireStatus::Ok);
  EXPECT_EQ(got.payload, f.payload);
}

TEST(Transport, LoopbackCloseYieldsTypedClosedNotHang) {
  auto [a, b] = net::make_loopback_pair();
  a->close();
  net::Frame got;
  EXPECT_EQ(net::read_frame(*b, got), net::WireStatus::Closed);
}

TEST(Transport, LoopbackCorruptBytesYieldTypedDecodeError) {
  auto [a, b] = net::make_loopback_pair();
  auto wire = valid_frame_bytes();
  wire[0] ^= 0xff;  // bad magic straight onto the stream
  ASSERT_TRUE(a->send_all(wire.data(), wire.size()));
  net::Frame got;
  EXPECT_EQ(net::read_frame(*b, got), net::WireStatus::BadMagic);
}

TEST(Transport, TcpRoundTripOnEphemeralPort) {
  net::TcpListener listener(0);
  ASSERT_NE(listener.port(), 0);

  std::unique_ptr<net::TcpTransport> server;
  std::thread acceptor(
      [&] { server = listener.accept(net::Millis{5000}, net::Millis{5000}); });
  auto client =
      net::TcpTransport::connect("127.0.0.1", listener.port(), net::Millis{5000},
                                 net::Millis{5000});
  acceptor.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  net::Frame f;
  f.type = 2;
  f.payload = {5, 4, 3, 2, 1};
  ASSERT_EQ(net::write_frame(*client, f), net::WireStatus::Ok);
  net::Frame got;
  ASSERT_EQ(net::read_frame(*server, got), net::WireStatus::Ok);
  EXPECT_EQ(got.payload, f.payload);

  client->close();
  EXPECT_EQ(net::read_frame(*server, got), net::WireStatus::Closed);
}

TEST(Transport, TcpAcceptTimesOutCleanly) {
  net::TcpListener listener(0);
  EXPECT_EQ(listener.accept(net::Millis{50}, net::Millis{50}), nullptr);
}

// ---------------------------------------------------------------------
// Loopback cluster harness

struct LoopbackCluster {
  std::vector<std::unique_ptr<net::NodeService>> services;
  std::vector<std::thread> threads;
  net::ClusterClient client;

  explicit LoopbackCluster(Index n, net::NodeConfig cfg = {}) {
    for (Index i = 0; i < n; ++i) {
      auto [client_end, server_end] = net::make_loopback_pair();
      services.push_back(std::make_unique<net::NodeService>(cfg));
      net::NodeService* svc = services.back().get();
      threads.emplace_back(
          [svc, t = std::move(server_end)]() mutable { svc->serve(*t); });
      client.add_peer(static_cast<std::uint64_t>(i), std::move(client_end));
    }
  }
  ~LoopbackCluster() {
    client.shutdown_all();
    for (auto& t : threads) t.join();
  }
};

// ---------------------------------------------------------------------
// RPC error taxonomy over a served connection

TEST(Rpc, TypedErrorsCrossTheWire) {
  net::NodeConfig cfg;
  cfg.sessions.pool.num_pages = 2;
  cfg.sessions.pool.page_size = 16;
  cfg.sessions.pool.head_dim = 8;
  LoopbackCluster cluster(1, cfg);
  auto& cc = cluster.client;

  const Index d = 8;
  std::vector<float> row(static_cast<std::size_t>(d), 0.5f);
  std::vector<float> out(row.size());

  // Unknown session → SessionNotFound (not an assert on the node).
  EXPECT_THROW(cc.decode_step(99, row.data(), row.data(), row.data(), d, out.data()),
               kvcache::SessionNotFound);

  net::WireMask wm;
  wm.kind = net::WireMaskKind::Local;
  wm.a = 4;
  cc.create_session(7, wm);
  // Duplicate create → InvalidArgument.
  EXPECT_THROW(cc.create_session(7, wm), InvalidArgument);

  // Overfill the 2-page pool in one prefill: the only session is
  // mid-operation (unevictable) → CacheFull.
  Rng rng(5);
  Matrix<float> q(48, d), k(48, d), v(48, d), o;
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  EXPECT_THROW(cc.prefill(7, q, k, v, o), kvcache::CacheFull);

  // Evict-then-touch. Session 7's failed prefill left it empty; fill
  // it small, then let session 8's prefill evict it. Eviction erases
  // the record (only in-flight holders ever observe SessionEvicted),
  // so a later touch is SessionNotFound — the remote path must mirror
  // the local SessionManager's semantics exactly.
  Matrix<float> q1(16, d), k1(16, d), v1(16, d);
  fill_uniform(q1, rng);
  fill_uniform(k1, rng);
  fill_uniform(v1, rng);
  cc.prefill(7, q1, k1, v1, o);
  cc.create_session(8, wm);
  Matrix<float> q2(32, d), k2(32, d), v2(32, d);
  fill_uniform(q2, rng);
  fill_uniform(k2, rng);
  fill_uniform(v2, rng);
  cc.prefill(8, q2, k2, v2, o);
  EXPECT_THROW(cc.decode_step(7, row.data(), row.data(), row.data(), d, out.data()),
               kvcache::SessionNotFound);
}

TEST(Rpc, EveryStatusRethrowsAsItsTypedException) {
  auto [client_end, server_end] = net::make_loopback_pair();
  // Hand-rolled responder: echoes each request id back with a chosen
  // error status, covering the statuses NodeService only emits under
  // rare races (e.g. SessionEvicted needs an in-flight holder).
  const std::vector<net::RpcStatus> statuses = {
      net::RpcStatus::SessionNotFound, net::RpcStatus::SessionEvicted,
      net::RpcStatus::CacheFull, net::RpcStatus::InvalidArgument, net::RpcStatus::Internal};
  std::thread responder([t = std::move(server_end), &statuses]() mutable {
    for (const net::RpcStatus s : statuses) {
      net::RpcRequest req;
      ASSERT_EQ(net::recv_request(*t, req), net::WireStatus::Ok);
      net::RpcResponse rsp;
      rsp.id = req.id;
      net::make_error_response(rsp, s, "remote detail", 55);
      ASSERT_EQ(net::send_response(*t, rsp), net::WireStatus::Ok);
    }
  });

  net::RpcClient rpc(*client_end);
  auto call = [&] { rpc.call(net::Op::Ping, {1}); };
  EXPECT_THROW(call(), kvcache::SessionNotFound);
  EXPECT_THROW(call(), kvcache::SessionEvicted);
  EXPECT_THROW(call(), kvcache::CacheFull);
  EXPECT_THROW(call(), InvalidArgument);
  try {
    call();
    FAIL() << "Internal must throw RpcError";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::RpcStatus::Internal);
    EXPECT_STREQ(e.what(), "remote detail");
  }
  responder.join();
  client_end->close();
}

// ---------------------------------------------------------------------
// Hash ring

TEST(HashRing, AddingANodeMovesAboutOneNth) {
  constexpr Size kKeys = 20000;
  net::HashRing ring(128);
  for (std::uint64_t n = 0; n < 4; ++n) ring.add_node(n);

  std::vector<std::uint64_t> before(kKeys);
  for (Size k = 0; k < kKeys; ++k) before[k] = ring.owner(k * 7919 + 13);

  ring.add_node(4);
  Size moved = 0;
  for (Size k = 0; k < kKeys; ++k) {
    const std::uint64_t now = ring.owner(k * 7919 + 13);
    if (now != before[k]) {
      // Consistency: a key either keeps its owner or moves to the NEW
      // node — never between old nodes.
      EXPECT_EQ(now, 4u);
      ++moved;
    }
  }
  // Expect ~1/5 of keys to move; allow generous slack for hash noise.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys * 2 / 5);
}

TEST(HashRing, SpreadsKeysAcrossNodes) {
  net::HashRing ring(128);
  for (std::uint64_t n = 0; n < 3; ++n) ring.add_node(n);
  std::vector<Size> owned(3, 0);
  for (std::uint64_t k = 0; k < 9000; ++k) ++owned[ring.owner(k)];
  for (const Size c : owned) {
    EXPECT_GT(c, Size{1500}) << "a node owns implausibly few keys";
  }
  EXPECT_THROW(net::HashRing(64).owner(1), InvalidArgument);
}

// ---------------------------------------------------------------------
// Differential gates over loopback

TEST(Cluster, RingPrefillBitIdenticalToSimCluster) {
  const Index L = 96, d = 16;
  const auto mask = build_csr_random(L, RandomParams{0.15, 99});
  Rng rng(21);
  Matrix<float> q(L, d), k(L, d), v(L, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  for (const Index P : {2, 3}) {
    for (const bool causal : {false, true}) {
      const auto part = seqpar::partition_balanced_nnz(L, P, seqpar::degrees_of(mask));
      LoopbackCluster cluster(P);
      Matrix<float> wire_out;
      const auto rep =
          cluster.client.ring_prefill(q, k, v, mask, part, causal, -1.0f, wire_out);
      EXPECT_EQ(rep.shard_deliveries, static_cast<Size>(P) * static_cast<Size>(P - 1));

      Matrix<float> oracle(L, d);
      AttentionOptions opts;
      opts.causal = causal;
      const auto sim = seqpar::distributed_csr_attention(q, k, v, mask, part, oracle, opts);
      ASSERT_EQ(std::memcmp(wire_out.data(), oracle.data(), oracle.size_bytes()), 0)
          << "P=" << P << " causal=" << causal;

      // Edge accounting matches the simulated cluster node for node.
      ASSERT_EQ(rep.nodes.size(), sim.nodes.size());
      for (std::size_t p = 0; p < sim.nodes.size(); ++p) {
        EXPECT_EQ(rep.nodes[p].edges, sim.nodes[p].edges);
      }
    }
  }
}

TEST(Cluster, RoutedDecodeBitIdenticalToLocalSessionManager) {
  const Index d = 16, prompt = 24, steps = 12;
  net::NodeConfig cfg;
  cfg.sessions.pool.num_pages = 64;
  cfg.sessions.pool.page_size = 16;
  cfg.sessions.pool.head_dim = d;
  LoopbackCluster cluster(2, cfg);
  kvcache::SessionManager local(cfg.sessions);

  net::WireMask wm;
  wm.kind = net::WireMaskKind::Dilated1d;
  wm.a = 6;
  wm.b = 1;

  Rng rng(33);
  for (const std::uint64_t sid : {101u, 202u, 303u}) {
    cluster.client.create_session(sid, wm);
    local.create(sid, wm.to_spec());

    Matrix<float> q(prompt, d), k(prompt, d), v(prompt, d), remote_o, local_o;
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);
    cluster.client.prefill(sid, q, k, v, remote_o);
    local.prefill(sid, q, k, v, local_o);
    ASSERT_TRUE(remote_o.same_shape(local_o));
    ASSERT_EQ(std::memcmp(remote_o.data(), local_o.data(), local_o.size_bytes()), 0);

    std::vector<float> qr(static_cast<std::size_t>(d)), kr(qr.size()), vr(qr.size());
    std::vector<float> remote_row(qr.size()), local_row(qr.size());
    for (Index t = 0; t < steps; ++t) {
      for (auto* vec : {&qr, &kr, &vr}) {
        for (float& x : *vec) x = rng.next_float();
      }
      const Index re = cluster.client.decode_step(sid, qr.data(), kr.data(), vr.data(), d,
                                                  remote_row.data());
      const Index le = local.decode_step(sid, qr.data(), kr.data(), vr.data(),
                                         local_row.data());
      EXPECT_EQ(re, le);
      ASSERT_EQ(std::memcmp(remote_row.data(), local_row.data(),
                            remote_row.size() * sizeof(float)),
                0)
          << "session " << sid << " step " << t;
    }
    cluster.client.release_session(sid);
    EXPECT_THROW(cluster.client.decode_step(sid, qr.data(), kr.data(), vr.data(), d,
                                            remote_row.data()),
                 kvcache::SessionNotFound);
  }

  // The sessions really were spread by the ring: ping both nodes and
  // count what they served.
  const auto i0 = cluster.client.ping(0);
  const auto i1 = cluster.client.ping(1);
  EXPECT_EQ(i0.sessions + i1.sessions, 0u);  // all released
}

// ---------------------------------------------------------------------
// Metrics snapshot wire codec + the Op::Stats scrape path

TEST(MetricsCodec, SnapshotRoundTripsExactly) {
  obs::MetricsSnapshot s;
  s.counters = {{"a.count", 7}, {"z.count", 0xffffffffffffull}};
  s.gauges = {{"g.depth", -12}, {"g.live", 3}};
  obs::HistogramSample h;
  h.name = "h.lat";
  h.edges = {0.5, 2.0, 100.25};
  h.counts = {1, 0, 5, 2};  // edges + overflow
  h.sum = 312.75;
  h.count = 8;
  s.histograms = {h};

  net::Writer w;
  net::put_metrics_snapshot(w, s);
  net::Reader r(w.buf);
  obs::MetricsSnapshot got;
  ASSERT_TRUE(net::get_metrics_snapshot(r, got));
  EXPECT_TRUE(r.done());

  ASSERT_EQ(got.counters.size(), 2u);
  EXPECT_EQ(got.counter("a.count"), 7u);
  EXPECT_EQ(got.counter("z.count"), 0xffffffffffffull);
  EXPECT_EQ(got.gauge("g.depth"), -12);
  const obs::HistogramSample* gh = got.histogram("h.lat");
  ASSERT_NE(gh, nullptr);
  EXPECT_EQ(gh->edges, h.edges);  // f64 codec is bit-exact
  EXPECT_EQ(gh->counts, h.counts);
  EXPECT_EQ(gh->sum, h.sum);
  EXPECT_EQ(gh->count, 8u);
}

TEST(MetricsCodec, HostileInputsAreRejectedNotTrusted) {
  // Truncated mid-stream: flip success off, never read past the end.
  {
    obs::MetricsSnapshot s;
    s.counters = {{"a", 1}, {"b", 2}};
    net::Writer w;
    net::put_metrics_snapshot(w, s);
    for (std::size_t cut = 1; cut < w.buf.size(); cut += 3) {
      std::vector<std::uint8_t> trunc(w.buf.begin(), w.buf.begin() + cut);
      net::Reader r(trunc);
      obs::MetricsSnapshot got;
      EXPECT_FALSE(net::get_metrics_snapshot(r, got)) << "cut=" << cut;
    }
  }
  // A hostile metric count must be bounds-rejected before allocation.
  {
    net::Writer w;
    w.u32(0x40000000u);  // 2^30 "counters"
    net::Reader r(w.buf);
    obs::MetricsSnapshot got;
    EXPECT_FALSE(net::get_metrics_snapshot(r, got));
  }
}

TEST(Stats, LoopbackScrapeServesTheNodeRegistry) {
  net::NodeConfig cfg;
  cfg.sessions.pool.num_pages = 16;
  cfg.sessions.pool.page_size = 4;
  cfg.sessions.pool.head_dim = 8;
  LoopbackCluster cluster(1, cfg);
  auto& cc = cluster.client;

  net::WireMask wm;
  wm.kind = net::WireMaskKind::Local;
  wm.a = 3;
  cc.create_session(1, wm);
  Rng rng(3);
  Matrix<float> q(8, 8), k(8, 8), v(8, 8), o;
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  cc.prefill(1, q, k, v, o);
  std::vector<float> row(8, 0.5f), out_row(8);
  cc.decode_step(1, row.data(), row.data(), row.data(), 8, out_row.data());

  // Loopback shares this process's registry, so compare the scraped
  // gauges against the node's own SessionManager (refreshed at scrape
  // time) and check counter deltas between two scrapes, not absolutes.
  const obs::MetricsSnapshot snap = cc.node_stats(0);
  const auto local = cluster.services[0]->sessions().stats();
  EXPECT_EQ(snap.gauge("kvcache.sessions.live"), static_cast<std::int64_t>(local.sessions));
  EXPECT_EQ(snap.gauge("kvcache.pages.in_use"), static_cast<std::int64_t>(local.pages_in_use));
  EXPECT_EQ(snap.gauge("kvcache.pages.free"), static_cast<std::int64_t>(local.pages_free));
  EXPECT_EQ(snap.gauge("kvcache.prefix.entries"),
            static_cast<std::int64_t>(local.prefix_entries));
  EXPECT_GT(snap.counter("net.frames.received"), 0u);
  EXPECT_GT(snap.counter("net.rpc.calls"), 0u);

  // A second scrape is itself traffic: every counter is monotone and
  // the rpc/frame counters strictly advance.
  const obs::MetricsSnapshot again = cc.node_stats(0);
  for (const auto& c : snap.counters) EXPECT_GE(again.counter(c.name), c.value) << c.name;
  EXPECT_GT(again.counter("net.rpc.calls"), snap.counter("net.rpc.calls"));
  EXPECT_GT(again.counter("net.frames.sent"), snap.counter("net.frames.sent"));
}

}  // namespace
