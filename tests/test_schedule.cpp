// Traversal-driven auto-scheduling (parallel/auto_tune.hpp) and the
// schedule-invariance property it relies on: the schedule decides who
// computes a row, never what the row computes, so every kernel must be
// bitwise identical across {Static, Dynamic, Auto} × grain × threads —
// including the grain/schedule combinations Auto resolves to at call
// time. The auto-pick tests pin the decision rule of §V-C: the global
// mask's skewed rows ("the algorithm can only be as fast as its slowest
// block") pick Dynamic, uniform rows pick Static.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/composed.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "core/traversal.hpp"
#include "parallel/auto_tune.hpp"
#include "sparse/build.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

// ---------------------------------------------------------------- //
// Auto-pick decision rule, pinned.                                  //
// ---------------------------------------------------------------- //

TEST(AutoTuneTest, SkewedDegreesPickDynamic) {
  const ExecPolicy p = auto_tune(ExecPolicy::auto_tuned(), 8.0, 64.0);
  EXPECT_EQ(p.schedule, Schedule::Dynamic);
  EXPECT_EQ(p.grain, kAutoMaxGrain);  // 4096/8 = 512 → clamped to the cap
}

TEST(AutoTuneTest, UniformDegreesPickStatic) {
  const ExecPolicy p = auto_tune(ExecPolicy::auto_tuned(), 64.0, 1.1);
  EXPECT_EQ(p.schedule, Schedule::Static);
  EXPECT_EQ(p.grain, kAutoGrainWork / 64);  // 4096/64 = 64
}

TEST(AutoTuneTest, GrainClampsToBothEnds) {
  // Tiny rows → huge derived grain, clamped to the cap.
  EXPECT_EQ(auto_tune(ExecPolicy::auto_tuned(), 1.0, 1.0).grain, kAutoMaxGrain);
  // Enormous rows → sub-1 derived grain, clamped up to one row.
  EXPECT_EQ(auto_tune(ExecPolicy::auto_tuned(), 1.0e6, 1.0).grain, Index{1});
}

TEST(AutoTuneTest, ThresholdIsTheBoundary) {
  EXPECT_EQ(auto_tune(ExecPolicy::auto_tuned(), 8.0, kAutoImbalanceThreshold).schedule,
            Schedule::Dynamic);
  EXPECT_EQ(auto_tune(ExecPolicy::auto_tuned(), 8.0, kAutoImbalanceThreshold - 0.01).schedule,
            Schedule::Static);
}

TEST(AutoTuneTest, NonAutoPoliciesPassThroughUntouched) {
  const ExecPolicy fixed{3, 7, Schedule::Dynamic};
  const ExecPolicy p = auto_tune(fixed, 8.0, 64.0);
  EXPECT_EQ(p.num_threads, 3);
  EXPECT_EQ(p.grain, 7);
  EXPECT_EQ(p.schedule, Schedule::Dynamic);
}

TEST(AutoPickTest, GlobalMaskResolvesToDynamic) {
  // Eight hub rows attend to ~everything, the other 1016 rows to at
  // most eight columns: imbalance ≈ L/mean ≫ threshold.
  constexpr Index kL = 1024;
  GlobalMinusLocalParams gp;
  gp.global = make_global({0, 130, 260, 390, 520, 650, 780, 910}, kL);
  gp.local = make_local(2);
  const MaskTraversal tr = MaskTraversal::global(gp);
  ASSERT_GE(tr.stats(kL, false).imbalance, kAutoImbalanceThreshold);

  const ExecPolicy p = tr.resolved_policy(ExecPolicy::auto_tuned(), kL, /*causal=*/false);
  EXPECT_EQ(p.schedule, Schedule::Dynamic);
  EXPECT_GE(p.grain, Index{1});
  EXPECT_LE(p.grain, kAutoMaxGrain);
}

TEST(AutoPickTest, UniformCsrResolvesToStatic) {
  // A materialised sliding window: every interior row has the same
  // degree, so imbalance ≈ 1.
  constexpr Index kL = 1024;
  const Csr<float> mask = build_csr_local(kL, LocalParams{8});
  const MaskTraversal tr = MaskTraversal::over(mask);
  ASSERT_LT(tr.stats(kL, false).imbalance, kAutoImbalanceThreshold);

  const ExecPolicy p = tr.resolved_policy(ExecPolicy::auto_tuned(), kL, /*causal=*/false);
  EXPECT_EQ(p.schedule, Schedule::Static);
  EXPECT_GE(p.grain, Index{1});
}

TEST(AutoPickTest, ComposedResolutionSumsComponentDegrees) {
  // Longformer = local window + global hubs: the window dominates the
  // mean but the hubs dominate the max, so the summed profile stays
  // skewed and the composition as a whole picks Dynamic.
  constexpr Index kL = 512;
  const ComposedMask mask = make_longformer(kL, 8, 4);
  const std::vector<MaskTraversal> components = traversals_of(mask);
  const ExecPolicy p =
      resolved_policy(ExecPolicy::auto_tuned(), components, kL, /*causal=*/false);
  EXPECT_EQ(p.schedule, Schedule::Dynamic);
  // And a non-Auto policy passes through the composed resolver too.
  const ExecPolicy fixed{3, 7, Schedule::Static};
  const ExecPolicy same = resolved_policy(fixed, components, kL, /*causal=*/false);
  EXPECT_EQ(same.schedule, Schedule::Static);
  EXPECT_EQ(same.grain, 7);
}

// ---------------------------------------------------------------- //
// Schedule invariance: bitwise-identical output across schedules,   //
// grains, and the auto-tuned policy, for every kernel family.       //
// ---------------------------------------------------------------- //

struct Fixture {
  static constexpr Index kL = 96;
  static constexpr Index kD = 16;
  Matrix<float> q{kL, kD}, k{kL, kD}, v{kL, kD};

  Fixture() {
    Rng rng(20250808);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);
  }
};

/// The schedule grid: serial is the baseline; every Static/Dynamic ×
/// grain {1, 7, 64} combination at 3 threads, plus the auto-tuned
/// policy (whatever it resolves to), must match it bitwise.
std::vector<ExecPolicy> schedule_grid() {
  std::vector<ExecPolicy> grid;
  for (const Schedule sched : {Schedule::Static, Schedule::Dynamic}) {
    for (const Index grain : {Index{1}, Index{7}, Index{64}}) {
      grid.push_back(ExecPolicy{3, grain, sched});
    }
  }
  grid.push_back(ExecPolicy::auto_tuned());
  return grid;
}

template <typename CallFn>
void expect_schedule_invariant(const CallFn& call) {
  for (const bool causal : {false, true}) {
    Matrix<float> baseline(Fixture::kL, Fixture::kD);
    call(ExecPolicy::serial(), causal, baseline);
    for (const ExecPolicy& policy : schedule_grid()) {
      Matrix<float> out(Fixture::kL, Fixture::kD);
      call(policy, causal, out);
      EXPECT_EQ(max_abs_diff(out, baseline), 0.0)
          << "causal=" << causal << " grain=" << policy.grain
          << " sched=" << static_cast<int>(policy.schedule);
    }
  }
}

TEST(ScheduleInvariance, CsrKernel) {
  Fixture f;
  const Csr<float> mask = build_csr_random(Fixture::kL, RandomParams{0.15, 77});
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    csr_attention(f.q, f.k, f.v, mask, out, opts);
  });
}

TEST(ScheduleInvariance, CooKernel) {
  Fixture f;
  const Coo<float> mask = csr_to_coo(build_csr_random(Fixture::kL, RandomParams{0.15, 77}));
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    coo_attention(f.q, f.k, f.v, mask, out, opts);
  });
}

TEST(ScheduleInvariance, LocalKernel) {
  Fixture f;
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    local_attention(f.q, f.k, f.v, LocalParams{7}, out, opts);
  });
}

TEST(ScheduleInvariance, Dilated1DKernel) {
  Fixture f;
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    dilated1d_attention(f.q, f.k, f.v, Dilated1DParams{9, 2}, out, opts);
  });
}

TEST(ScheduleInvariance, Dilated2DKernel) {
  Fixture f;
  const auto params = make_dilated2d(Fixture::kL, 8, 1);
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    dilated2d_attention(f.q, f.k, f.v, params, out, opts);
  });
}

TEST(ScheduleInvariance, GlobalKernel) {
  Fixture f;
  GlobalMinusLocalParams gp;
  gp.global = make_global({0, 31, 64}, Fixture::kL);
  gp.local = make_local(4);
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    global_attention(f.q, f.k, f.v, gp, out, opts);
  });
}

TEST(ScheduleInvariance, ComposedKernel) {
  Fixture f;
  const ComposedMask mask = make_longformer(Fixture::kL, 6, 3);
  expect_schedule_invariant([&](const ExecPolicy& p, bool causal, Matrix<float>& out) {
    AttentionOptions opts;
    opts.policy = p;
    opts.causal = causal;
    composed_attention(f.q, f.k, f.v, mask, out, opts);
  });
}

TEST(ScheduleInvariance, SpmmPipeline) {
  Fixture f;
  const Csr<float> mask = build_csr_random(Fixture::kL, RandomParams{0.15, 77});
  // spmm_attention has no causal switch — its mask carries the
  // structure; exercise the non-causal arm only.
  Matrix<float> baseline(Fixture::kL, Fixture::kD);
  AttentionOptions base_opts;
  base_opts.policy = ExecPolicy::serial();
  spmm_attention(f.q, f.k, f.v, mask, baseline, base_opts);
  for (const ExecPolicy& policy : schedule_grid()) {
    Matrix<float> out(Fixture::kL, Fixture::kD);
    AttentionOptions opts;
    opts.policy = policy;
    spmm_attention(f.q, f.k, f.v, mask, out, opts);
    EXPECT_EQ(max_abs_diff(out, baseline), 0.0)
        << "grain=" << policy.grain << " sched=" << static_cast<int>(policy.schedule);
  }
}

}  // namespace
}  // namespace gpa
