// Tests for the explicit sparse formats: canonical invariants,
// conversions, builders, and the random-mask sampler.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"

namespace gpa {
namespace {

Matrix<std::uint8_t> random_dense_mask(Index L, double density, std::uint64_t seed) {
  Matrix<std::uint8_t> m(L, L);
  Rng rng(seed);
  for (Index i = 0; i < L; ++i) {
    for (Index j = 0; j < L; ++j) m(i, j) = rng.next_double() < density ? 1 : 0;
  }
  return m;
}

TEST(CsrTest, BuiltMasksAreCanonical) {
  const auto csr = build_csr_local(32, LocalParams{4});
  EXPECT_TRUE(csr.is_canonical());
  EXPECT_NO_THROW(validate(csr));
}

TEST(CsrTest, CanonicalRejectsBadOffsets) {
  Csr<float> csr = build_csr_local(8, LocalParams{2});
  csr.row_offsets[3] = csr.row_offsets[4] + 1;  // non-monotone
  EXPECT_FALSE(csr.is_canonical());
  EXPECT_THROW(validate(csr), InvalidArgument);
}

TEST(CsrTest, CanonicalRejectsUnsortedColumns) {
  Csr<float> csr = build_csr_local(8, LocalParams{3});
  std::swap(csr.col_idx[1], csr.col_idx[2]);
  EXPECT_FALSE(csr.is_canonical());
}

TEST(CsrTest, CanonicalRejectsOutOfRangeColumn) {
  Csr<float> csr = build_csr_local(8, LocalParams{2});
  csr.col_idx.back() = 8;
  EXPECT_FALSE(csr.is_canonical());
}

TEST(CsrTest, StorageBytesFollowPaperAccounting) {
  const auto csr = build_csr_local(100, LocalParams{3});
  const Size expected = 101 * 4 + csr.nnz() * (4 + 4);
  EXPECT_EQ(csr.storage_bytes(), expected);
}

TEST(CooTest, ConversionRoundTripsExactly) {
  const auto csr = build_csr_dilated1d(64, Dilated1DParams{7, 1});
  const auto coo = csr_to_coo(csr);
  EXPECT_TRUE(coo.is_canonical());
  const auto back = coo_to_csr(coo);
  EXPECT_EQ(back.row_offsets, csr.row_offsets);
  EXPECT_EQ(back.col_idx, csr.col_idx);
}

TEST(CooTest, CanonicalRejectsUnsortedEntries) {
  Coo<float> coo = csr_to_coo(build_csr_local(8, LocalParams{2}));
  std::swap(coo.row_idx[0], coo.row_idx[5]);
  EXPECT_FALSE(coo.is_canonical());
}

TEST(CooTest, StorageBytesFollowPaperAccounting) {
  const auto coo = csr_to_coo(build_csr_local(50, LocalParams{2}));
  EXPECT_EQ(coo.storage_bytes(), coo.nnz() * (4 + 4 + 4));
}

TEST(DenseRoundTripTest, DenseToCsrToDenseIsIdentity) {
  const auto dense = random_dense_mask(48, 0.2, 99);
  const auto csr = dense_to_csr(dense);
  const auto back = csr_to_dense(csr);
  for (Index i = 0; i < 48; ++i) {
    for (Index j = 0; j < 48; ++j) EXPECT_EQ(back(i, j), dense(i, j));
  }
}

TEST(PredicateBuilderTest, MatchesPatternBuilders) {
  const Index L = 40;
  const LocalParams lp{5};
  const auto by_pred =
      build_csr_from_predicate(L, [&](Index i, Index j) { return lp.contains(i, j); });
  const auto by_pattern = build_csr_local(L, lp);
  EXPECT_EQ(by_pred.row_offsets, by_pattern.row_offsets);
  EXPECT_EQ(by_pred.col_idx, by_pattern.col_idx);

  const Dilated1DParams dp{9, 2};
  const auto dpred =
      build_csr_from_predicate(L, [&](Index i, Index j) { return dp.contains(i, j); });
  const auto dpat = build_csr_dilated1d(L, dp);
  EXPECT_EQ(dpred.col_idx, dpat.col_idx);

  const auto d2 = make_dilated2d(L, 8, 1);
  const auto d2pred =
      build_csr_from_predicate(L, [&](Index i, Index j) { return d2.contains(i, j); });
  const auto d2pat = build_csr_dilated2d(d2);
  EXPECT_EQ(d2pred.col_idx, d2pat.col_idx);

  const GlobalParams gp = make_global({0, 7}, L);
  const auto gpred =
      build_csr_from_predicate(L, [&](Index i, Index j) { return gp.contains(i, j); });
  const auto gpat = build_csr_global(L, gp);
  EXPECT_EQ(gpred.col_idx, gpat.col_idx);
}

TEST(RandomMaskTest, DeterministicPerSeed) {
  const auto a = build_csr_random(128, RandomParams{0.05, 7});
  const auto b = build_csr_random(128, RandomParams{0.05, 7});
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.row_offsets, b.row_offsets);
}

TEST(RandomMaskTest, DifferentSeedsDiffer) {
  const auto a = build_csr_random(128, RandomParams{0.05, 7});
  const auto b = build_csr_random(128, RandomParams{0.05, 8});
  EXPECT_NE(a.col_idx, b.col_idx);
}

TEST(RandomMaskTest, HitsExpectedSparsity) {
  const Index L = 512;
  for (const double sf : {0.001, 0.01, 0.1}) {
    const auto csr = build_csr_random(L, RandomParams{sf, 13});
    EXPECT_TRUE(csr.is_canonical());
    const double got = sparsity_factor(csr.nnz(), L);
    EXPECT_NEAR(got, sf, sf * 0.25 + 2e-5) << "target " << sf;  // ~4 sigma for Binomial(L², sf)
  }
}

TEST(RandomMaskTest, EdgeDensities) {
  const auto empty = build_csr_random(64, RandomParams{0.0, 1});
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_TRUE(empty.is_canonical());
  const auto full = build_csr_random(16, RandomParams{1.0, 1});
  EXPECT_EQ(full.nnz(), 256u);
}

}  // namespace
}  // namespace gpa
