// KV-cache subsystem tests: paged allocator invariants (refcounts, CoW,
// no double free), LRU eviction policy (idle-only, pinned exempt), and
// the load-bearing numerics claim — a stream of decode_step folds is
// BIT-IDENTICAL (float path) to one full-sequence causal kernel call,
// across explicit (CSR) and implicit (local/global) masks and head dims
// that exercise every SIMD remainder-lane count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "core/composed.hpp"
#include "core/graph_attention.hpp"
#include "kvcache/kvcache.hpp"
#include "obs/metrics.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::kvcache {
namespace {

// --- BlockPool -------------------------------------------------------

TEST(BlockPoolTest, AllocateExhaustRelease) {
  BlockPool pool({/*page_size=*/4, /*head_dim=*/8, /*num_pages=*/3});
  EXPECT_EQ(pool.pages_free(), 3);
  const Index a = pool.allocate();
  const Index b = pool.allocate();
  const Index c = pool.allocate();
  EXPECT_NE(a, BlockPool::kNoPage);
  EXPECT_NE(b, BlockPool::kNoPage);
  EXPECT_NE(c, BlockPool::kNoPage);
  EXPECT_EQ(pool.allocate(), BlockPool::kNoPage);  // exhausted, not an error
  EXPECT_EQ(pool.pages_in_use(), 3);
  pool.release(b);
  EXPECT_EQ(pool.pages_free(), 1);
  EXPECT_EQ(pool.allocate(), b);  // the freed page comes back
}

TEST(BlockPoolTest, RefcountSharingAndDoubleFree) {
  BlockPool pool({4, 8, 2});
  const Index p = pool.allocate();
  EXPECT_EQ(pool.ref_count(p), 1);
  pool.retain(p);
  EXPECT_EQ(pool.ref_count(p), 2);
  pool.release(p);
  EXPECT_EQ(pool.ref_count(p), 1);
  EXPECT_EQ(pool.pages_in_use(), 1);  // still held
  pool.release(p);
  EXPECT_EQ(pool.pages_in_use(), 0);
  EXPECT_THROW(pool.release(p), InvalidArgument);  // double free
  EXPECT_THROW(pool.retain(p), InvalidArgument);   // retain of a dead page
  EXPECT_THROW(pool.release(99), InvalidArgument); // out of range
}

TEST(BlockPoolTest, DeviceSizedConfigUsesTheMemoryModel) {
  // 1 MiB budget, d=64 fp32: 512 bytes/token -> 2048 tokens -> 128
  // pages of 16.
  const DeviceSpec dev = DeviceSpec::host(1ull << 20);
  const BlockPoolConfig cfg = pool_config_for_device(dev, /*head_dim=*/64,
                                                     /*page_size=*/16,
                                                     /*budget_fraction=*/1.0);
  EXPECT_EQ(cfg.num_pages, 128);
  EXPECT_EQ(cfg.head_dim, 64);
  // Half the budget -> half the pages.
  EXPECT_EQ(pool_config_for_device(dev, 64, 16, 0.5).num_pages, 64);
}

// --- PageTable -------------------------------------------------------

std::vector<float> token_row(Index t, Index d, float salt) {
  std::vector<float> r(static_cast<std::size_t>(d));
  for (Index p = 0; p < d; ++p) {
    r[static_cast<std::size_t>(p)] = salt + static_cast<float>(t) * 100.0f +
                                     static_cast<float>(p);
  }
  return r;
}

TEST(PageTableTest, AppendAndReadAcrossPageBoundaries) {
  BlockPool pool({/*page_size=*/4, /*head_dim=*/8, /*num_pages=*/8});
  PageTable table;
  const Index n = 10;  // 2.5 pages
  for (Index t = 0; t < n; ++t) {
    const auto k = token_row(t, 8, 1.0f);
    const auto v = token_row(t, 8, 2.0f);
    ASSERT_TRUE(table.append(pool, k.data(), v.data()));
  }
  EXPECT_EQ(table.length(), n);
  EXPECT_EQ(table.num_pages(), 3);
  for (Index t = 0; t < n; ++t) {
    const auto k = token_row(t, 8, 1.0f);
    const auto v = token_row(t, 8, 2.0f);
    for (Index p = 0; p < 8; ++p) {
      EXPECT_EQ(table.k_row(pool, t)[p], k[static_cast<std::size_t>(p)]);
      EXPECT_EQ(table.v_row(pool, t)[p], v[static_cast<std::size_t>(p)]);
    }
  }
  table.release_all(pool);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

TEST(PageTableTest, ForkSharesFullPagesAndCopiesOnlyTheTailOnWrite) {
  BlockPool pool({4, 8, 8});
  PageTable parent;
  for (Index t = 0; t < 6; ++t) {  // one full page + half a page
    const auto k = token_row(t, 8, 1.0f);
    const auto v = token_row(t, 8, 2.0f);
    ASSERT_TRUE(parent.append(pool, k.data(), v.data()));
  }
  PageTable child = parent.fork(pool);
  EXPECT_EQ(child.length(), 6);
  EXPECT_EQ(pool.pages_in_use(), 2);  // fully shared, no copies yet
  EXPECT_EQ(pool.ref_count(parent.pages()[0]), 2);
  EXPECT_EQ(pool.ref_count(parent.pages()[1]), 2);

  // Child appends: the shared, partially-filled tail page is CoW'd;
  // the full page stays shared.
  const auto k6 = token_row(6, 8, 5.0f);
  const auto v6 = token_row(6, 8, 6.0f);
  ASSERT_TRUE(child.append(pool, k6.data(), v6.data()));
  EXPECT_EQ(pool.pages_in_use(), 3);
  EXPECT_EQ(pool.ref_count(parent.pages()[0]), 2);  // shared prefix intact
  EXPECT_EQ(pool.ref_count(parent.pages()[1]), 1);  // parent's tail, exclusive again
  EXPECT_NE(child.pages()[1], parent.pages()[1]);

  // Parent's view is untouched; child sees prefix + its new token.
  for (Index t = 0; t < 6; ++t) {
    const auto k = token_row(t, 8, 1.0f);
    EXPECT_EQ(parent.k_row(pool, t)[3], k[3]);
    EXPECT_EQ(child.k_row(pool, t)[3], k[3]);
  }
  EXPECT_EQ(child.k_row(pool, 6)[0], k6[0]);

  child.release_all(pool);
  parent.release_all(pool);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

// --- decode vs full recompute: bit identity --------------------------

struct IdentityCase {
  std::string name;
  MaskSpec spec;
  std::function<void(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                     Matrix<float>&)>
      full_causal;  ///< one-shot causal kernel over the whole sequence
};

std::vector<IdentityCase> identity_cases(Index n) {
  std::vector<IdentityCase> cases;
  {
    auto mask = std::make_shared<const Csr<float>>(build_csr_random(n, RandomParams{0.25, 9}));
    cases.push_back({"csr", MaskSpec::make_csr(mask),
                     [mask](const auto& q, const auto& k, const auto& v, auto& o) {
                       AttentionOptions opts;
                       opts.causal = true;
                       csr_attention(q, k, v, *mask, o, opts);
                     }});
  }
  {
    const LocalParams p{5};
    cases.push_back({"local", MaskSpec::make_local(p),
                     [p](const auto& q, const auto& k, const auto& v, auto& o) {
                       AttentionOptions opts;
                       opts.causal = true;
                       local_attention(q, k, v, p, o, opts);
                     }});
  }
  {
    GlobalMinusLocalParams p;
    p.global.tokens = {0, 3, 9};
    p.local.window = 2;
    cases.push_back({"global", MaskSpec::make_global(p),
                     [p](const auto& q, const auto& k, const auto& v, auto& o) {
                       AttentionOptions opts;
                       opts.causal = true;
                       global_attention(q, k, v, p, o, opts);
                     }});
  }
  {
    // Chained mask (longformer serving scenario): local ∘ global folds
    // both components' causal slices into one row state per decode
    // step; the full arm is the equivalent two-kernel accumulate chain.
    const LocalParams lp{3};
    GlobalMinusLocalParams gp;
    gp.global.tokens = {0, 2, 7};
    gp.local.window = 3;
    cases.push_back(
        {"local∘global",
         MaskSpec::compose({MaskTraversal::local(lp), MaskTraversal::global(gp)}),
         [lp, gp](const auto& q, const auto& k, const auto& v, auto& o) {
           AttentionOptions opts;
           opts.causal = true;
           SoftmaxState st(q.rows(), o.cols());
           local_attention_accumulate(q, k, v, lp, st, opts);
           global_attention_accumulate(q, k, v, gp, st, opts);
           st.finalize_into(o);
         }});
  }
  return cases;
}

/// N single-row decode folds must equal one full-sequence causal kernel
/// call bit for bit, for any prefill/decode split of the sequence.
void check_decode_identity(Index n, Index d, Index prefill_len) {
  for (auto& c : identity_cases(n)) {
    SCOPED_TRACE(c.name + " d=" + std::to_string(d) +
                 " prefill=" + std::to_string(prefill_len));
    Rng rng(static_cast<std::uint64_t>(n * 1000 + d));
    Matrix<float> q(n, d), k(n, d), v(n, d);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);

    Matrix<float> expected(n, d);
    c.full_causal(q, k, v, expected);

    SessionManager::Config mc;
    mc.pool.page_size = 4;  // deliberately small: decode crosses pages
    mc.pool.head_dim = d;
    mc.pool.num_pages = n / 4 + 2;
    SessionManager mgr(mc);
    mgr.create(1, c.spec);

    Matrix<float> got(n, d);
    if (prefill_len > 0) {
      Matrix<float> qp(prefill_len, d), kp(prefill_len, d), vp(prefill_len, d);
      for (Index i = 0; i < prefill_len; ++i) {
        for (Index p = 0; p < d; ++p) {
          qp(i, p) = q(i, p);
          kp(i, p) = k(i, p);
          vp(i, p) = v(i, p);
        }
      }
      Matrix<float> out(prefill_len, d);
      mgr.prefill(1, qp, kp, vp, out);
      for (Index i = 0; i < prefill_len; ++i) {
        for (Index p = 0; p < d; ++p) got(i, p) = out(i, p);
      }
    }
    for (Index t = prefill_len; t < n; ++t) {
      mgr.decode_step(1, q.row(t), k.row(t), v.row(t), got.row(t));
    }

    for (Index i = 0; i < n; ++i) {
      for (Index p = 0; p < d; ++p) {
        ASSERT_EQ(got(i, p), expected(i, p))
            << "row " << i << " col " << p << " (rows 0.." << prefill_len - 1
            << " prefilled, rest decoded)";
      }
    }
  }
}

TEST(DecodeBitIdentity, PrefillPlusDecodeMatchesFullKernel) {
  for (const Index d : {32, 64, 67}) check_decode_identity(24, d, 12);
}

TEST(DecodeBitIdentity, PureDecodeStreamMatchesFullKernel) {
  // No prefill at all: the whole sequence arrives token by token.
  for (const Index d : {32, 64, 67}) check_decode_identity(16, d, 0);
}

/// A composed (local ∘ global) decode session's token stream must be
/// bit-identical to the full composed kernel call — the acceptance pin
/// for chained-mask sessions riding the shared traversal.
TEST(DecodeBitIdentity, ComposedPresetSessionMatchesComposedKernelCall) {
  const Index n = 24, d = 48, split = 10;
  for (const bool bigbird : {false, true}) {
    SCOPED_TRACE(bigbird ? "bigbird" : "longformer");
    // Longformer exercises two implicit components (unbounded session);
    // BigBird adds the explicit random-CSR component (owning copy,
    // bounded session).
    const ComposedMask preset = bigbird ? make_bigbird(n, /*reach=*/2, /*num_global=*/2, 0.15)
                                        : make_longformer(n, /*reach=*/3, /*num_global=*/2);
    Rng rng(bigbird ? 311u : 313u);
    Matrix<float> q(n, d), k(n, d), v(n, d);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);

    AttentionOptions copts;
    copts.causal = true;
    Matrix<float> expected(n, d);
    composed_attention(q, k, v, preset, expected, copts);

    SessionManager::Config mc;
    mc.pool.page_size = 4;
    mc.pool.head_dim = d;
    mc.pool.num_pages = n / 4 + 2;
    SessionManager mgr(mc);
    mgr.create(1, MaskSpec::compose(preset));
    EXPECT_EQ(mgr.contains(1), true);

    Matrix<float> got(n, d);
    {
      Matrix<float> qp(split, d), kp(split, d), vp(split, d), out(split, d);
      for (Index i = 0; i < split; ++i) {
        for (Index p = 0; p < d; ++p) {
          qp(i, p) = q(i, p);
          kp(i, p) = k(i, p);
          vp(i, p) = v(i, p);
        }
      }
      mgr.prefill(1, qp, kp, vp, out);
      for (Index i = 0; i < split; ++i) {
        for (Index p = 0; p < d; ++p) got(i, p) = out(i, p);
      }
    }
    for (Index t = split; t < n; ++t) {
      mgr.decode_step(1, q.row(t), k.row(t), v.row(t), got.row(t));
    }
    for (Index i = 0; i < n; ++i) {
      for (Index p = 0; p < d; ++p) {
        ASSERT_EQ(got(i, p), expected(i, p)) << "row " << i << " col " << p;
      }
    }
  }
}

TEST(DecodeBitIdentity, ForkedSessionContinuesBitIdentically) {
  const Index n = 20, d = 32, split = 10;
  auto mask = std::make_shared<const Csr<float>>(build_csr_random(n, RandomParams{0.3, 17}));
  Rng rng(71);
  Matrix<float> q(n, d), k(n, d), v(n, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  Matrix<float> qp(split, d), kp(split, d), vp(split, d), out(split, d);
  for (Index i = 0; i < split; ++i) {
    for (Index p = 0; p < d; ++p) {
      qp(i, p) = q(i, p);
      kp(i, p) = k(i, p);
      vp(i, p) = v(i, p);
    }
  }

  SessionManager::Config mc;
  mc.pool.page_size = 4;
  mc.pool.head_dim = d;
  mc.pool.num_pages = 32;
  SessionManager mgr(mc);
  mgr.create(1, MaskSpec::make_csr(mask));
  mgr.prefill(1, qp, kp, vp, out);
  mgr.fork(1, 2);

  // Parent decodes a decoy continuation first (its CoW tail must not
  // leak into the child), then the child decodes the real one.
  std::vector<float> decoy(static_cast<std::size_t>(d), 0.25f);
  std::vector<float> scratch(static_cast<std::size_t>(d));
  mgr.decode_step(1, decoy.data(), decoy.data(), decoy.data(), scratch.data());

  SessionManager ref_mgr(mc);
  ref_mgr.create(7, MaskSpec::make_csr(mask));
  Matrix<float> ref_out(split, d);
  ref_mgr.prefill(7, qp, kp, vp, ref_out);

  for (Index t = split; t < n; ++t) {
    std::vector<float> got(static_cast<std::size_t>(d)), want(static_cast<std::size_t>(d));
    mgr.decode_step(2, q.row(t), k.row(t), v.row(t), got.data());
    ref_mgr.decode_step(7, q.row(t), k.row(t), v.row(t), want.data());
    for (Index p = 0; p < d; ++p) ASSERT_EQ(got[static_cast<std::size_t>(p)],
                                            want[static_cast<std::size_t>(p)]);
  }
}

// --- sessions: lifecycle, eviction, errors ---------------------------

SessionManager::Config small_config(Index d, Index num_pages) {
  SessionManager::Config mc;
  mc.pool.page_size = 2;
  mc.pool.head_dim = d;
  mc.pool.num_pages = num_pages;
  return mc;
}

void prefill_n(SessionManager& mgr, std::uint64_t id, Index n, Index d) {
  Rng rng(id * 13 + 5);
  Matrix<float> q(n, d), k(n, d), v(n, d), out(n, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  mgr.prefill(id, q, k, v, out);
}

TEST(SessionEviction, LruEvictsOnlyIdleAndOldest) {
  const Index d = 8;
  // 8 pages of 2 tokens: two 4-token sessions twice over.
  SessionManager mgr(small_config(d, 8));
  mgr.create(1, MaskSpec::make_local(LocalParams{2}));
  mgr.create(2, MaskSpec::make_local(LocalParams{2}));
  prefill_n(mgr, 1, 4, d);
  prefill_n(mgr, 2, 4, d);
  EXPECT_EQ(mgr.pool().pages_free(), 4);

  // Touch 1 (decode one token) so 2 becomes LRU, then demand more
  // pages than remain free.
  std::vector<float> row(static_cast<std::size_t>(d), 0.5f);
  std::vector<float> out(static_cast<std::size_t>(d));
  mgr.decode_step(1, row.data(), row.data(), row.data(), out.data());
  mgr.create(3, MaskSpec::make_local(LocalParams{2}));
  prefill_n(mgr, 3, 10, d);  // needs 5 pages -> must evict session 2

  EXPECT_EQ(mgr.stats().evictions, 1u);
  EXPECT_TRUE(mgr.contains(1));
  EXPECT_FALSE(mgr.contains(2));  // evicted -> gone (client re-prefills)
  EXPECT_THROW(mgr.length(2), SessionNotFound);
  EXPECT_EQ(mgr.length(3), 10);
}

TEST(SessionEviction, PinnedSessionsSurviveAndCacheFullIsTyped) {
  const Index d = 8;
  SessionManager mgr(small_config(d, 4));
  mgr.create(1, MaskSpec::make_local(LocalParams{2}));
  prefill_n(mgr, 1, 8, d);  // entire pool
  mgr.set_pinned(1, true);

  mgr.create(2, MaskSpec::make_local(LocalParams{2}));
  EXPECT_THROW(prefill_n(mgr, 2, 4, d), CacheFull);
  EXPECT_TRUE(mgr.contains(1));          // pinned: never evicted
  EXPECT_EQ(mgr.length(2), 0);           // failed prefill left it empty
  EXPECT_EQ(mgr.stats().evictions, 0u);

  mgr.set_pinned(1, false);
  prefill_n(mgr, 2, 4, d);  // now eviction can reclaim session 1
  EXPECT_FALSE(mgr.contains(1));
  EXPECT_EQ(mgr.stats().evictions, 1u);
}

TEST(SessionEviction, ForkSharedEvictionFreesNothingAndIsNotCounted) {
  // Regression: evicting a session whose pages are all held by a fork
  // frees nothing. The evict-and-retry loop must still terminate in
  // CacheFull (each round removes a candidate), and the unproductive
  // eviction must not inflate the evictions counter.
  const Index d = 8;
  auto mc = small_config(d, 4);  // page_size 2 -> 4 pages = 8 tokens
  mc.prefix_dedup = false;       // pure fork sharing, no index refs
  SessionManager mgr(mc);
  mgr.create(1, MaskSpec::make_local(LocalParams{2}));
  prefill_n(mgr, 1, 4, d);  // two FULL pages (no CoW-able tail)
  mgr.fork(1, 2);
  mgr.set_pinned(2, true);
  EXPECT_EQ(mgr.pool().pages_in_use(), 2);  // fully shared

  // Session 3 wants 3 pages with 2 free: eviction fires, takes session
  // 1 (the only unpinned candidate), frees zero pages, and the retry
  // must conclude CacheFull instead of spinning.
  mgr.create(3, MaskSpec::make_local(LocalParams{2}));
  EXPECT_THROW(prefill_n(mgr, 3, 6, d), CacheFull);
  EXPECT_FALSE(mgr.contains(1));            // evicted all the same...
  EXPECT_EQ(mgr.stats().evictions, 0u);     // ...but freed nothing: not counted
  EXPECT_TRUE(mgr.contains(2));
  EXPECT_EQ(mgr.length(2), 4);              // fork's view intact
  EXPECT_EQ(mgr.length(3), 0);              // failed prefill unwound
  EXPECT_EQ(mgr.pool().pages_in_use(), 2);

  // Unpinned, the fork's eviction DOES free its pages and is counted.
  mgr.set_pinned(2, false);
  prefill_n(mgr, 3, 6, d);
  EXPECT_FALSE(mgr.contains(2));
  EXPECT_EQ(mgr.stats().evictions, 1u);
  EXPECT_EQ(mgr.length(3), 6);
}

TEST(SessionApi, LifecycleAndErrorTaxonomy) {
  const Index d = 8;
  SessionManager mgr(small_config(d, 8));
  EXPECT_THROW(prefill_n(mgr, 42, 2, d), SessionNotFound);

  auto mask = std::make_shared<const Csr<float>>(build_csr_random(4, RandomParams{0.5, 3}));
  mgr.create(1, MaskSpec::make_csr(mask));
  EXPECT_THROW(mgr.create(1, MaskSpec::make_local(LocalParams{1})), InvalidArgument);
  prefill_n(mgr, 1, 4, d);
  EXPECT_THROW(prefill_n(mgr, 1, 2, d), InvalidArgument);  // non-empty session

  // The 4×4 CSR mask is exhausted: decoding token 4 has no mask row.
  std::vector<float> row(static_cast<std::size_t>(d), 0.5f);
  std::vector<float> out(static_cast<std::size_t>(d));
  EXPECT_THROW(mgr.decode_step(1, row.data(), row.data(), row.data(), out.data()),
               InvalidArgument);

  EXPECT_THROW(mgr.fork(9, 10), SessionNotFound);
  mgr.fork(1, 2);
  EXPECT_THROW(mgr.fork(1, 2), InvalidArgument);  // id taken
  mgr.release(1);
  EXPECT_FALSE(mgr.contains(1));
  EXPECT_TRUE(mgr.contains(2));       // fork owns its own page refs
  EXPECT_EQ(mgr.length(2), 4);
  mgr.release(1);  // idempotent
}

TEST(SessionConcurrency, ParallelDecodeAcrossSessionsWithEvictionChurn) {
  const Index d = 16;
  // 4 decoders × 48 tokens = 96 pages of 2; the headroom above that is
  // what the churn thread and the evictor fight over.
  SessionManager mgr(small_config(d, 112));
  constexpr int kSessions = 4;
  constexpr Index kSteps = 48;
  for (int s = 1; s <= kSessions; ++s) {
    mgr.create(static_cast<std::uint64_t>(s), MaskSpec::make_local(LocalParams{4}));
    mgr.set_pinned(static_cast<std::uint64_t>(s), true);  // decoders never vanish
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int s = 1; s <= kSessions; ++s) {
    threads.emplace_back([&mgr, s, d] {
      Rng rng(static_cast<std::uint64_t>(s) * 99);
      Matrix<float> row(1, d), out(1, d);
      for (Index t = 0; t < kSteps; ++t) {
        fill_uniform(row, rng);
        mgr.decode_step(static_cast<std::uint64_t>(s), row, row, row, out);
      }
    });
  }
  // Churn thread: transient sessions claim pages and die, forcing the
  // allocator + eviction machinery under the decoders' feet.
  threads.emplace_back([&mgr, d, &stop] {
    for (std::uint64_t id = 100; !stop.load(); ++id) {
      mgr.create(id, MaskSpec::make_local(LocalParams{2}));
      try {
        prefill_n(mgr, id, 6, d);
      } catch (const SessionError&) {
        // CacheFull under pressure is an acceptable outcome here.
      }
      mgr.release(id);
    }
  });
  for (int s = 0; s < kSessions; ++s) threads[static_cast<std::size_t>(s)].join();
  stop.store(true);
  threads.back().join();

  for (int s = 1; s <= kSessions; ++s) {
    EXPECT_EQ(mgr.length(static_cast<std::uint64_t>(s)), kSteps);
  }
  EXPECT_EQ(mgr.stats().decode_steps, static_cast<Size>(kSessions) * kSteps);
}

TEST(DecodeBatch, BatchedStepsMatchPerSessionStepsBitwise) {
  // Cross-session batched decode must be bit-identical to issuing each
  // session's steps one at a time: grouping only changes who folds a
  // row, never the fold order within a session.
  const Index d = 16;
  constexpr int kSessions = 3;
  constexpr Index kSteps = 12;
  SessionManager batched(small_config(d, 64));
  SessionManager reference(small_config(d, 64));
  for (int s = 1; s <= kSessions; ++s) {
    batched.create(static_cast<std::uint64_t>(s), MaskSpec::make_local(LocalParams{4}));
    reference.create(static_cast<std::uint64_t>(s), MaskSpec::make_local(LocalParams{4}));
  }

  std::vector<Matrix<float>> rows, got, want;
  for (int s = 0; s < kSessions; ++s) {
    Rng rng(static_cast<std::uint64_t>(s) * 77 + 5);
    Matrix<float> r(kSteps, d);
    fill_uniform(r, rng);
    rows.push_back(std::move(r));
    got.emplace_back(kSteps, d);
    want.emplace_back(kSteps, d);
  }

  Index batched_edges = 0;
  for (Index t = 0; t < kSteps; ++t) {
    // One batch per token step: one item per live session, plus one for
    // a session that does not exist — its typed failure must not poison
    // the others.
    std::vector<SessionManager::DecodeBatchItem> items;
    Matrix<float> junk(1, d);
    for (int s = 0; s < kSessions; ++s) {
      const float* row = rows[static_cast<std::size_t>(s)].row(t);
      items.push_back({static_cast<std::uint64_t>(s + 1), row, row, row,
                       got[static_cast<std::size_t>(s)].row(t)});
    }
    items.push_back({999, junk.row(0), junk.row(0), junk.row(0), junk.row(0)});
    batched_edges += batched.decode_batch(items, ExecPolicy{2, 1, Schedule::Dynamic});
    for (int s = 0; s < kSessions; ++s) {
      EXPECT_EQ(items[static_cast<std::size_t>(s)].outcome,
                SessionManager::DecodeBatchItem::Outcome::Ok);
    }
    EXPECT_EQ(items.back().outcome, SessionManager::DecodeBatchItem::Outcome::SessionError);
  }

  Index reference_edges = 0;
  for (int s = 0; s < kSessions; ++s) {
    for (Index t = 0; t < kSteps; ++t) {
      const float* row = rows[static_cast<std::size_t>(s)].row(t);
      reference_edges += reference.decode_step(static_cast<std::uint64_t>(s + 1), row, row, row,
                                               want[static_cast<std::size_t>(s)].row(t));
    }
  }

  EXPECT_EQ(batched_edges, reference_edges);
  for (int s = 0; s < kSessions; ++s) {
    for (Index t = 0; t < kSteps; ++t) {
      for (Index p = 0; p < d; ++p) {
        ASSERT_EQ(got[static_cast<std::size_t>(s)](t, p),
                  want[static_cast<std::size_t>(s)](t, p))
            << "session " << s + 1 << " token " << t << " col " << p;
      }
    }
  }
}

TEST(DecodeBatch, InSessionOrderIsPreservedWithinOneBatch) {
  // Several tokens of ONE session inside one batch must fold in item
  // order (the autoregressive contract) even while other sessions run
  // concurrently.
  const Index d = 16;
  constexpr Index kTokens = 8;
  SessionManager batched(small_config(d, 64));
  SessionManager reference(small_config(d, 64));
  batched.create(1, MaskSpec::make_local(LocalParams{3}));
  batched.create(2, MaskSpec::make_local(LocalParams{3}));
  reference.create(1, MaskSpec::make_local(LocalParams{3}));

  Rng rng(4321);
  Matrix<float> tokens(kTokens, d), other(kTokens, d);
  fill_uniform(tokens, rng);
  fill_uniform(other, rng);
  Matrix<float> got(kTokens, d), want(kTokens, d), sink(kTokens, d);

  std::vector<SessionManager::DecodeBatchItem> items;
  for (Index t = 0; t < kTokens; ++t) {
    items.push_back({1, tokens.row(t), tokens.row(t), tokens.row(t), got.row(t)});
    items.push_back({2, other.row(t), other.row(t), other.row(t), sink.row(t)});
  }
  batched.decode_batch(items, ExecPolicy{2, 1, Schedule::Dynamic});

  for (Index t = 0; t < kTokens; ++t) {
    reference.decode_step(1, tokens.row(t), tokens.row(t), tokens.row(t), want.row(t));
  }
  for (Index t = 0; t < kTokens; ++t) {
    for (Index p = 0; p < d; ++p) {
      ASSERT_EQ(got(t, p), want(t, p)) << "token " << t << " col " << p;
    }
  }
}

// --- stats invariants under churn ------------------------------------

// The stats contract the scrape path depends on: counters are monotone
// across snapshots, the pool balance always closes, evictions count
// only when pages were actually freed, and the registry mirror
// (kvcache.* in obs::Registry::global()) moves in lockstep with the
// manager's own stats() — an instrument site that forgets one side
// shows up as a drifting delta here.
TEST(SessionStats, ChurnKeepsCountersMonotoneAndMirroredInRegistry) {
  const Index d = 8;
  const Index num_pages = 8;
  const obs::MetricsSnapshot reg0 = obs::Registry::global().snapshot();
  SessionManager mgr(small_config(d, num_pages));
  const SessionManager::Stats base = mgr.stats();

  SessionManager::Stats prev = base;
  std::vector<float> row(static_cast<std::size_t>(d), 0.25f);
  std::vector<float> out(static_cast<std::size_t>(d));
  Rng rng(99);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;

  for (int round = 0; round < 60; ++round) {
    const int action = static_cast<int>(rng.next_u64() % 4);
    try {
      if (action == 0 || live.empty()) {
        const std::uint64_t id = next_id++;
        mgr.create(id, MaskSpec::make_local(LocalParams{2}));
        live.push_back(id);  // a failed prefill still leaves the session
        prefill_n(mgr, id, 2 + static_cast<Index>(rng.next_u64() % 8), d);
      } else if (action == 1) {
        mgr.decode_step(live.back(), row.data(), row.data(), row.data(), out.data());
      } else if (action == 2) {
        const std::uint64_t id = next_id++;
        mgr.fork(live.back(), id);
        live.push_back(id);
      } else {
        mgr.release(live.front());
        live.erase(live.begin());
      }
    } catch (const CacheFull&) {
      // Overload is part of the churn; the books must still balance.
    } catch (const SessionNotFound&) {
      // The victim was evicted under our feet — drop it from `live`.
    }
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](std::uint64_t id) { return !mgr.contains(id); }),
               live.end());

    const SessionManager::Stats s = mgr.stats();
    // Monotone counters (gauges — sessions, pages, entries — are not).
    ASSERT_GE(s.evictions, prev.evictions);
    ASSERT_GE(s.decode_steps, prev.decode_steps);
    ASSERT_GE(s.decode_edges, prev.decode_edges);
    ASSERT_GE(s.prefix_lookups, prev.prefix_lookups);
    ASSERT_GE(s.prefix_hits, prev.prefix_hits);
    ASSERT_GE(s.prefix_published, prev.prefix_published);
    ASSERT_GE(s.prefix_reclaimed, prev.prefix_reclaimed);
    prev = s;

    // The pool balance closes on every snapshot.
    ASSERT_EQ(s.pages_in_use + s.pages_free, num_pages);
    ASSERT_EQ(s.sessions, live.size());
    ASSERT_LE(s.prefix_hits, s.prefix_lookups);
    // Index entries: every publish adds one, every reclaim drops one.
    ASSERT_EQ(static_cast<Size>(s.prefix_entries), s.prefix_published - s.prefix_reclaimed);
  }

  // Registry mirror moved in lockstep with the manager's own books.
  const obs::MetricsSnapshot reg1 = obs::Registry::global().snapshot();
  const SessionManager::Stats s = mgr.stats();
  auto delta = [&](const char* name) { return reg1.counter(name) - reg0.counter(name); };
  EXPECT_EQ(delta("kvcache.evictions"), s.evictions - base.evictions);
  EXPECT_EQ(delta("kvcache.decode.steps"), s.decode_steps - base.decode_steps);
  EXPECT_EQ(delta("kvcache.decode.edges"), s.decode_edges - base.decode_edges);
  EXPECT_EQ(delta("kvcache.prefix.lookups"), s.prefix_lookups - base.prefix_lookups);
  EXPECT_EQ(delta("kvcache.prefix.hits"), s.prefix_hits - base.prefix_hits);
  EXPECT_EQ(delta("kvcache.prefix.hits") + delta("kvcache.prefix.misses"),
            delta("kvcache.prefix.lookups"));
}

// Unproductive evictions (victim's pages all shared) must stay out of
// BOTH books — the local counter and the registry mirror.
TEST(SessionStats, UnproductiveEvictionCountsNowhere) {
  const Index d = 8;
  auto mc = small_config(d, 4);
  mc.prefix_dedup = false;
  const obs::MetricsSnapshot reg0 = obs::Registry::global().snapshot();
  SessionManager mgr(mc);
  mgr.create(1, MaskSpec::make_local(LocalParams{2}));
  prefill_n(mgr, 1, 4, d);
  mgr.fork(1, 2);
  mgr.set_pinned(2, true);

  mgr.create(3, MaskSpec::make_local(LocalParams{2}));
  EXPECT_THROW(prefill_n(mgr, 3, 6, d), CacheFull);  // evicts 1, frees nothing
  EXPECT_EQ(mgr.stats().evictions, 0u);
  const obs::MetricsSnapshot reg1 = obs::Registry::global().snapshot();
  EXPECT_EQ(reg1.counter("kvcache.evictions"), reg0.counter("kvcache.evictions"));

  mgr.set_pinned(2, false);
  prefill_n(mgr, 3, 6, d);  // now the fork's eviction frees pages
  EXPECT_EQ(mgr.stats().evictions, 1u);
  const obs::MetricsSnapshot reg2 = obs::Registry::global().snapshot();
  EXPECT_EQ(reg2.counter("kvcache.evictions"), reg0.counter("kvcache.evictions") + 1);
}

// --- fp16 (half-width) pages -----------------------------------------

/// Round-trips a matrix through fp16 via the scalar converters: the
/// exact values an fp16 page serves back at decode time.
Matrix<float> round_trip_fp16(const Matrix<float>& m) {
  Matrix<float> out(m.rows(), m.cols());
  const auto& vo = simd::ops(SimdLevel::Scalar);
  std::vector<half_t> h(static_cast<std::size_t>(m.cols()));
  for (Index i = 0; i < m.rows(); ++i) {
    vo.f2h(h.data(), m.row(i), m.cols());
    vo.h2f(out.row(i), h.data(), m.cols());
  }
  return out;
}

TEST(Fp16Pages, StoreNarrowsAndCopySlotsMovesHalfPayloads) {
  BlockPoolConfig cfg{/*page_size=*/4, /*head_dim=*/8, /*num_pages=*/4};
  cfg.dtype = DType::F16;
  BlockPool pool(cfg);
  EXPECT_EQ(pool.dtype(), DType::F16);
  EXPECT_EQ(pool.row_bytes(), 8 * sizeof(half_t));

  PageTable table;
  for (Index t = 0; t < 6; ++t) {
    const auto k = token_row(t, 8, 1.0f);
    const auto v = token_row(t, 8, 2.0f);
    ASSERT_TRUE(table.append(pool, k.data(), v.data()));
  }
  // Reads come back as the RNE-narrowed bits of what went in.
  for (Index t = 0; t < 6; ++t) {
    const auto k = token_row(t, 8, 1.0f);
    const auto v = token_row(t, 8, 2.0f);
    for (Index p = 0; p < 8; ++p) {
      EXPECT_EQ(table.k_row_h(pool, t)[p].bits(), half_t(k[static_cast<std::size_t>(p)]).bits());
      EXPECT_EQ(table.v_row_h(pool, t)[p].bits(), half_t(v[static_cast<std::size_t>(p)]).bits());
    }
  }

  // CoW through copy_slots preserves the half payloads byte-for-byte.
  PageTable child = table.fork(pool);
  const auto k6 = token_row(6, 8, 5.0f);
  const auto v6 = token_row(6, 8, 6.0f);
  ASSERT_TRUE(child.append(pool, k6.data(), v6.data()));
  EXPECT_NE(child.pages()[1], table.pages()[1]);
  for (Index t = 4; t < 6; ++t) {  // the CoW'd slots of the tail page
    for (Index p = 0; p < 8; ++p) {
      EXPECT_EQ(child.k_row_h(pool, t)[p].bits(), table.k_row_h(pool, t)[p].bits());
      EXPECT_EQ(child.v_row_h(pool, t)[p].bits(), table.v_row_h(pool, t)[p].bits());
    }
  }
  EXPECT_EQ(child.k_row_h(pool, 6)[0].bits(), half_t(k6[0]).bits());
  child.release_all(pool);
  table.release_all(pool);
}

TEST(Fp16Pages, DeviceSizedConfigDoublesPageCount) {
  // The Table II capacity claim in miniature: the same byte budget
  // yields 2× the pages (hence ~2× the cached sessions) at fp16.
  const DeviceSpec dev = DeviceSpec::host(1ull << 20);
  const BlockPoolConfig f32 = pool_config_for_device(dev, 64, 16, 1.0, DType::F32);
  const BlockPoolConfig f16 = pool_config_for_device(dev, 64, 16, 1.0, DType::F16);
  EXPECT_EQ(f16.dtype, DType::F16);
  EXPECT_EQ(f16.num_pages, 2 * f32.num_pages);
}

TEST(Fp16Pages, DecodeMatchesFp32DecodeOverRoundTrippedInputsBitwise) {
  // The sharp form of fp16-decode correctness: an fp16-page session is
  // bit-identical to an fp32-page session fed the round-tripped K/V —
  // widening is exact and the fp16 fold accumulates the same values in
  // the same order, so the ONLY difference fp16 pages introduce is the
  // storage quantisation itself.
  const Index n = 20, d = 33;
  Rng rng(77);
  Matrix<float> q(n, d), k(n, d), v(n, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  const Matrix<float> k_rt = round_trip_fp16(k);
  const Matrix<float> v_rt = round_trip_fp16(v);

  SessionManager::Config mc16;
  mc16.pool = {/*page_size=*/4, /*head_dim=*/d, /*num_pages=*/n / 4 + 2};
  mc16.pool.dtype = DType::F16;
  SessionManager::Config mc32 = mc16;
  mc32.pool.dtype = DType::F32;
  SessionManager mgr16(mc16), mgr32(mc32);
  mgr16.create(1, MaskSpec::make_local(LocalParams{5}));
  mgr32.create(1, MaskSpec::make_local(LocalParams{5}));

  std::vector<float> out16(static_cast<std::size_t>(d)), out32(static_cast<std::size_t>(d));
  for (Index t = 0; t < n; ++t) {
    mgr16.decode_step(1, q.row(t), k.row(t), v.row(t), out16.data());
    mgr32.decode_step(1, q.row(t), k_rt.row(t), v_rt.row(t), out32.data());
    for (Index p = 0; p < d; ++p) {
      ASSERT_EQ(out16[static_cast<std::size_t>(p)], out32[static_cast<std::size_t>(p)])
          << "t=" << t << " col " << p;
    }
  }
}

TEST(Fp16Pages, DecodeWithinFp16RepresentationErrorOfFp32Decode) {
  // Same stream into an fp32-page and an fp16-page manager: outputs
  // drift only by the fp16 quantisation of the cached K/V. For O(1)
  // inputs the softmax-weighted combination keeps that within ~2e-3;
  // 1e-2 is comfortable headroom, and a storage-path bug (wrong row,
  // garbled narrowing) lands orders of magnitude outside it.
  const Index n = 24, d = 64;
  Rng rng(91);
  Matrix<float> q(n, d), k(n, d), v(n, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  SessionManager::Config mc16;
  mc16.pool = {/*page_size=*/4, /*head_dim=*/d, /*num_pages=*/n / 4 + 2};
  mc16.pool.dtype = DType::F16;
  SessionManager::Config mc32 = mc16;
  mc32.pool.dtype = DType::F32;
  SessionManager mgr16(mc16), mgr32(mc32);
  mgr16.create(1, MaskSpec::make_local(LocalParams{6}));
  mgr32.create(1, MaskSpec::make_local(LocalParams{6}));

  std::vector<float> out16(static_cast<std::size_t>(d)), out32(static_cast<std::size_t>(d));
  float worst = 0.0f;
  for (Index t = 0; t < n; ++t) {
    mgr16.decode_step(1, q.row(t), k.row(t), v.row(t), out16.data());
    mgr32.decode_step(1, q.row(t), k.row(t), v.row(t), out32.data());
    for (Index p = 0; p < d; ++p) {
      worst = std::max(worst, std::abs(out16[static_cast<std::size_t>(p)] -
                                       out32[static_cast<std::size_t>(p)]));
    }
  }
  EXPECT_LT(worst, 1e-2f);
  EXPECT_GT(worst, 0.0f);  // the quantisation is real, not a no-op path
}

TEST(Fp16Pages, PrefillAndPrefixDedupShareHalfPages) {
  // The prompt cache works unchanged over fp16 pools: byte verification
  // compares RNE-narrowed rows (deterministic bits), and the chain tag
  // keeps fp16 chains disjoint from fp32 chains of the same prompt.
  const Index d = 16, ps = 4, prompt_len = 8;
  SessionManager::Config mc;
  mc.pool = {ps, d, 32};
  mc.pool.dtype = DType::F16;
  mc.prefix_dedup = true;
  SessionManager mgr(mc);

  Rng rng(123);
  Matrix<float> q(prompt_len, d), k(prompt_len, d), v(prompt_len, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  Matrix<float> out(prompt_len, d);
  mgr.create(1, MaskSpec::make_local(LocalParams{3}));
  mgr.prefill(1, q, k, v, out);
  const Index pages_first = mgr.pool().pages_in_use();

  mgr.create(2, MaskSpec::make_local(LocalParams{3}));
  Matrix<float> out2(prompt_len, d);
  mgr.prefill(2, q, k, v, out2);
  // The second session adopted the full prompt pages by reference.
  EXPECT_EQ(mgr.stats().pages_deduped, static_cast<Size>(prompt_len / ps));
  EXPECT_EQ(mgr.pool().pages_in_use(), pages_first);
  // And its prefill output is identical (attention reads the contiguous
  // inputs either way).
  EXPECT_EQ(max_abs_diff(out, out2), 0.0);
}

}  // namespace
}  // namespace gpa::kvcache
