// Tests for the Longformer/BigBird composed-mask presets (Fig. 2 /
// Fig. 6 configurations): component disjointness, union coverage, and
// the documented parameter semantics.

#include <gtest/gtest.h>

#include "sparse/compose.hpp"
#include "sparse/nnz.hpp"
#include "sparse/presets.hpp"

namespace gpa {
namespace {

bool contains_entry(const Csr<float>& m, Index i, Index j) {
  for (Index k = m.row_begin(i); k < m.row_end(i); ++k) {
    if (m.col_idx[static_cast<std::size_t>(k)] == j) return true;
  }
  return false;
}

TEST(LongformerPresetTest, ComponentsAreDisjoint) {
  const auto m = make_longformer(64, 4, 2);
  ASSERT_EQ(m.components.size(), 2u);
  EXPECT_TRUE(masks_disjoint(m.components[0].csr, m.components[1].csr));
}

TEST(LongformerPresetTest, FusedEqualsComponentUnion) {
  const auto m = make_longformer(64, 4, 2);
  const auto u = mask_union(m.components[0].csr, m.components[1].csr);
  EXPECT_EQ(m.fused.col_idx, u.col_idx);
  EXPECT_EQ(m.fused.row_offsets, u.row_offsets);
}

TEST(LongformerPresetTest, CoversExpectedEdges) {
  const auto m = make_longformer(32, 2, 1);
  // Window reach 2 around the diagonal.
  EXPECT_TRUE(contains_entry(m.fused, 10, 8));
  EXPECT_TRUE(contains_entry(m.fused, 10, 12));
  EXPECT_FALSE(contains_entry(m.fused, 10, 13));
  // Token 0 is global: full row and column.
  EXPECT_TRUE(contains_entry(m.fused, 0, 31));
  EXPECT_TRUE(contains_entry(m.fused, 31, 0));
}

TEST(LongformerPresetTest, SparsityDecreasesWithLength) {
  const auto small = make_longformer(64, 4, 2);
  const auto large = make_longformer(256, 4, 2);
  EXPECT_GT(small.sparsity(), large.sparsity());
}

TEST(LongformerDilatedPresetTest, ComponentsAreDisjointAndCover) {
  const auto m = make_longformer_dilated(64, 4, 2, 2);
  ASSERT_EQ(m.components.size(), 2u);
  EXPECT_TRUE(masks_disjoint(m.components[0].csr, m.components[1].csr));
  const auto u = mask_union(m.components[0].csr, m.components[1].csr);
  EXPECT_EQ(m.fused.col_idx, u.col_idx);
}

TEST(LongformerDilatedPresetTest, DilationWidensReach) {
  // Fig. 6 middle: "dilation factor of two giving an effective local
  // size of 100" for reach 50 — reach*(r+1) here.
  const auto m = make_longformer_dilated(64, 4, 2, 0);
  EXPECT_TRUE(contains_entry(m.fused, 30, 30 + 12));   // 4 steps of 3
  EXPECT_FALSE(contains_entry(m.fused, 30, 30 + 13));  // beyond window
  EXPECT_FALSE(contains_entry(m.fused, 30, 30 + 11));  // off-stride gap
}

TEST(BigBirdPresetTest, ThreeDisjointComponents) {
  const auto m = make_bigbird(96, 3, 2, 0.02);
  ASSERT_EQ(m.components.size(), 3u);
  EXPECT_TRUE(masks_disjoint(m.components[0].csr, m.components[1].csr));
  EXPECT_TRUE(masks_disjoint(m.components[0].csr, m.components[2].csr));
  EXPECT_TRUE(masks_disjoint(m.components[1].csr, m.components[2].csr));
}

TEST(BigBirdPresetTest, FusedEqualsUnionOfAll) {
  const auto m = make_bigbird(96, 3, 2, 0.02);
  const auto u = mask_union_all({m.components[0].csr, m.components[1].csr, m.components[2].csr});
  EXPECT_EQ(m.fused.col_idx, u.col_idx);
}

TEST(BigBirdPresetTest, RandomComponentDeterministicPerSeed) {
  const auto a = make_bigbird(96, 3, 2, 0.02, 11);
  const auto b = make_bigbird(96, 3, 2, 0.02, 11);
  const auto c = make_bigbird(96, 3, 2, 0.02, 12);
  EXPECT_EQ(a.components[2].csr.col_idx, b.components[2].csr.col_idx);
  EXPECT_NE(a.components[2].csr.col_idx, c.components[2].csr.col_idx);
}

TEST(BigBirdPresetTest, NnzAccountingIsConsistent) {
  const auto m = make_bigbird(128, 4, 3, 0.01);
  Size component_sum = 0;
  for (const auto& c : m.components) component_sum += c.csr.nnz();
  EXPECT_EQ(m.fused.nnz(), component_sum);  // disjoint -> sizes add
}

TEST(PresetValidationTest, BadParametersThrow) {
  EXPECT_THROW(make_longformer(0, 4, 2), InvalidArgument);
  EXPECT_THROW(make_longformer(64, -1, 2), InvalidArgument);
  EXPECT_THROW(make_bigbird(64, 2, 1, -0.5), InvalidArgument);
}

}  // namespace
}  // namespace gpa
