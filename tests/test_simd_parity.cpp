// Differential harness pinning the AVX2 dispatch arm to the scalar
// reference. Every vectorized kernel runs twice — ExecPolicy::simd =
// Scalar and Avx2 — over randomized shapes chosen to stress the lane
// machinery: head dims 1..67 (every remainder-lane count), fully-masked
// rows, ±inf score overflow, and denormal magnitudes. Agreement is
// asserted row-wise at ≤2 ULP; by the lane contract of src/simd/simd.hpp
// the arms are in fact bit-identical, so the 2-ULP budget is headroom
// for future arms (FMA, AVX-512), not slack being consumed today.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "baselines/flash_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "tensor/gemm.hpp"
#include "tensor/softmax.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

bool avx2_arm_available() { return simd::resolve(SimdLevel::Avx2) == SimdLevel::Avx2; }

/// Maps a float onto the integer line so that adjacent representable
/// values differ by 1 (the standard monotone ULP embedding).
std::int64_t ulp_index(float x) {
  std::int32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits >= 0 ? bits : std::int64_t{std::numeric_limits<std::int32_t>::min()} - bits;
}

/// ULP distance with NaN == NaN (both arms must agree on where the
/// convention produces NaN, not on a particular payload).
std::int64_t ulp_diff(float a, float b) {
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) != std::isnan(b)) return std::numeric_limits<std::int64_t>::max();
  return std::abs(ulp_index(a) - ulp_index(b));
}

constexpr std::int64_t kMaxUlp = 2;

void expect_matrices_close(const Matrix<float>& scalar, const Matrix<float>& avx2) {
  ASSERT_TRUE(scalar.same_shape(avx2));
  for (Index i = 0; i < scalar.rows(); ++i) {
    for (Index j = 0; j < scalar.cols(); ++j) {
      const std::int64_t d = ulp_diff(scalar(i, j), avx2(i, j));
      ASSERT_LE(d, kMaxUlp) << "row " << i << " col " << j << ": scalar=" << scalar(i, j)
                            << " avx2=" << avx2(i, j);
    }
  }
}

/// Every remainder-lane count at least twice, plus the paper's d=64.
const std::vector<Index>& head_dims() {
  static const std::vector<Index> dims = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                                          12, 13, 14, 15, 16, 17, 31, 32, 33, 48, 63,
                                          64, 65, 66, 67};
  return dims;
}

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed, float scale_factor = 1.0f) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  if (scale_factor != 1.0f) {
    for (auto* m : {&in.q, &in.k}) {
      for (Index i = 0; i < L; ++i) {
        float* row = m->row(i);
        for (Index j = 0; j < d; ++j) row[j] *= scale_factor;
      }
    }
  }
  return in;
}

/// Runs `call(opts, out)` under both dispatch arms and compares.
template <typename CallFn>
void expect_arm_parity(Index L, Index d, const CallFn& call) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  Matrix<float> scalar_out(L, d), avx2_out(L, d);
  AttentionOptions opts;
  opts.policy = ExecPolicy::serial();
  opts.policy.simd = SimdLevel::Scalar;
  call(opts, scalar_out);
  opts.policy.simd = SimdLevel::Avx2;
  call(opts, avx2_out);
  expect_matrices_close(scalar_out, avx2_out);
}

// --- Primitive parity (bitwise: the lane contract itself) --------------

std::vector<float> random_buffer(Index n, std::uint64_t seed, float mul) {
  Matrix<float> m(1, n > 0 ? n : 1);
  Rng rng(seed);
  fill_uniform(m, rng);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = (m(0, i) - 0.5f) * mul;
  return out;
}

TEST(SimdPrimitives, AllOpsBitwiseEqualAcrossLengthsAndMagnitudes) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  const auto& scalar = simd::ops(SimdLevel::Scalar);
  const auto& avx2 = simd::ops(SimdLevel::Avx2);
  // 1e-40 drives products into the denormal range, 1e20 drives dot
  // accumulations through ±inf overflow.
  for (const float mul : {1.0f, 1e-40f, 1e20f}) {
    for (Index n = 0; n <= 67; ++n) {
      const auto a = random_buffer(n, 900 + static_cast<std::uint64_t>(n), mul);
      const auto b = random_buffer(n, 1900 + static_cast<std::uint64_t>(n), mul);
      SCOPED_TRACE(testing::Message() << "n=" << n << " mul=" << mul);

      EXPECT_EQ(ulp_diff(scalar.dot(a.data(), b.data(), n), avx2.dot(a.data(), b.data(), n)), 0);
      EXPECT_EQ(ulp_diff(scalar.reduce_sum(a.data(), n), avx2.reduce_sum(a.data(), n)), 0);
      EXPECT_EQ(ulp_diff(scalar.reduce_max(a.data(), n), avx2.reduce_max(a.data(), n)), 0);

      auto acc_s = b, acc_v = b;
      scalar.axpby(acc_s.data(), 0.25f, 1.75f, a.data(), n);
      avx2.axpby(acc_v.data(), 0.25f, 1.75f, a.data(), n);
      for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(ulp_diff(acc_s[static_cast<std::size_t>(i)], acc_v[static_cast<std::size_t>(i)]), 0);
      }
      acc_s = b;
      acc_v = b;
      scalar.axpy(acc_s.data(), -0.5f, a.data(), n);
      avx2.axpy(acc_v.data(), -0.5f, a.data(), n);
      scalar.scale(acc_s.data(), 3.0f, n);
      avx2.scale(acc_v.data(), 3.0f, n);
      for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(ulp_diff(acc_s[static_cast<std::size_t>(i)], acc_v[static_cast<std::size_t>(i)]), 0);
      }
    }
  }
}

TEST(SimdPrimitives, ReductionIdentitiesOnEmptyInput) {
  for (const SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
    const auto& vo = simd::ops(level);
    EXPECT_EQ(vo.dot(nullptr, nullptr, 0), 0.0f);
    EXPECT_EQ(vo.reduce_sum(nullptr, 0), 0.0f);
    EXPECT_EQ(vo.reduce_max(nullptr, 0), -kInf);
  }
}

TEST(SimdPrimitives, ReduceMaxSeesTailBeyondFullBlocks) {
  // The maximum hidden in every tail position: a masked-load bug that
  // zeroes dead lanes would miss it (or fabricate a 0 max — the failure
  // mode behind the fully-masked-row regression below).
  for (const SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
    const auto& vo = simd::ops(level);
    for (Index n = 1; n <= 24; ++n) {
      std::vector<float> x(static_cast<std::size_t>(n), -5.0f);
      x[static_cast<std::size_t>(n - 1)] = -1.0f;
      EXPECT_EQ(vo.reduce_max(x.data(), n), -1.0f) << "n=" << n;
      std::vector<float> all_masked(static_cast<std::size_t>(n), -kInf);
      EXPECT_EQ(vo.reduce_max(all_masked.data(), n), -kInf) << "n=" << n;
    }
  }
}

// --- Kernel differentials over the head-dim sweep ----------------------

TEST(SimdKernelParity, CsrRandomMaskAllHeadDims) {
  const Index L = 48;
  for (const Index d : head_dims()) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 200 + static_cast<std::uint64_t>(d));
    const auto mask = build_csr_random(L, RandomParams{0.3, 11});
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      csr_attention(in.q, in.k, in.v, mask, out, opts);
    });
  }
}

TEST(SimdKernelParity, SpmmAttentionWholePipeline) {
  // The two-phase spmm_attention path: all three stages now ride the
  // dispatched ops — SDDMM's Q·K dots, csr_row_softmax's max/sum/rescale
  // reductions, and the SpMM axpy accumulate — so whole-pipeline outputs
  // must agree across arms like the fused kernels do.
  const Index L = 48;
  for (const Index d : head_dims()) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 250 + static_cast<std::uint64_t>(d));
    const auto mask = build_csr_random(L, RandomParams{0.3, 19});
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      spmm_attention(in.q, in.k, in.v, mask, out, opts);
    });
  }
}

TEST(SimdKernelParity, CsrRowSoftmaxAndSpmmStagesBitwise) {
  // The two freshly-vectorized spmm_attention stages in isolation, so a
  // divergence is attributed to the stage, not the pipeline. Row
  // lengths sweep the remainder-lane counts (row i of the widening
  // local mask holds min(i+1, window) entries); both stages must be
  // BITWISE equal across arms by the lane contract.
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  const Index L = 40;
  for (const Index w : {Index{1}, Index{5}, Index{8}, Index{17}, Index{33}}) {
    SCOPED_TRACE(testing::Message() << "window=" << w);
    Csr<float> scores = build_csr_local(L, LocalParams{w});
    {
      Rng rng(600 + static_cast<std::uint64_t>(w));
      Matrix<float> vals(1, static_cast<Index>(scores.nnz()));
      fill_uniform(vals, rng);
      for (std::size_t k = 0; k < scores.values.size(); ++k) {
        scores.values[k] = (vals(0, static_cast<Index>(k)) - 0.5f) * 8.0f;
      }
    }
    Csr<float> scalar_scores = scores, avx2_scores = scores;
    ExecPolicy scalar_policy = ExecPolicy::serial();
    scalar_policy.simd = SimdLevel::Scalar;
    ExecPolicy avx2_policy = ExecPolicy::serial();
    avx2_policy.simd = SimdLevel::Avx2;
    csr_row_softmax(scalar_scores, scalar_policy);
    csr_row_softmax(avx2_scores, avx2_policy);
    for (std::size_t k = 0; k < scores.values.size(); ++k) {
      ASSERT_EQ(scalar_scores.values[k], avx2_scores.values[k]) << "softmax value " << k;
    }

    for (const Index d : {Index{1}, Index{7}, Index{16}, Index{67}}) {
      SCOPED_TRACE(testing::Message() << "d=" << d);
      const auto in = make_inputs(L, d, 650 + static_cast<std::uint64_t>(d));
      Matrix<float> scalar_out(L, d), avx2_out(L, d);
      spmm(scalar_scores, in.v, scalar_out, scalar_policy);
      spmm(scalar_scores, in.v, avx2_out, avx2_policy);
      for (Index i = 0; i < L; ++i) {
        for (Index j = 0; j < d; ++j) {
          ASSERT_EQ(scalar_out(i, j), avx2_out(i, j)) << "row " << i << " col " << j;
        }
      }
    }
  }
}

TEST(SimdKernelParity, CooBothSearches) {
  const Index L = 48;
  for (const Index d : {Index{7}, Index{32}, Index{65}}) {
    const auto in = make_inputs(L, d, 300 + static_cast<std::uint64_t>(d));
    const auto coo = csr_to_coo(build_csr_random(L, RandomParams{0.25, 13}));
    for (const CooSearch search : {CooSearch::Linear, CooSearch::Binary}) {
      SCOPED_TRACE(testing::Message() << "d=" << d << " search=" << static_cast<int>(search));
      expect_arm_parity(L, d, [&](AttentionOptions opts, Matrix<float>& out) {
        opts.coo_search = search;
        coo_attention(in.q, in.k, in.v, coo, out, opts);
      });
    }
  }
}

TEST(SimdKernelParity, LocalAndDilatedAndGlobal) {
  const Index L = 64;
  for (const Index d : {Index{3}, Index{16}, Index{33}, Index{67}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 400 + static_cast<std::uint64_t>(d));
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      local_attention(in.q, in.k, in.v, LocalParams{5}, out, opts);
    });
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      dilated1d_attention(in.q, in.k, in.v, Dilated1DParams{9, 2}, out, opts);
    });
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      dilated2d_attention(in.q, in.k, in.v, make_dilated2d(L, 8, 1), out, opts);
    });
    GlobalMinusLocalParams gp;
    gp.global = make_global({0, L / 2}, L);
    gp.local = make_local(3);
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      global_attention(in.q, in.k, in.v, gp, out, opts);
    });
  }
}

TEST(SimdKernelParity, FlashAndSdpBaselines) {
  const Index L = 48;
  for (const Index d : {Index{5}, Index{31}, Index{64}, Index{66}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 500 + static_cast<std::uint64_t>(d));
    for (const Index tile : {Index{7}, Index{16}, Index{48}, Index{100}}) {
      expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
        baselines::FlashConfig cfg;
        cfg.tile_cols = tile;
        baselines::flash_attention(in.q, in.k, in.v, out, opts, cfg);
      });
    }
    const auto dense = csr_to_dense(build_csr_random(L, RandomParams{0.4, 17}));
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      baselines::sdp_masked_attention(in.q, in.k, in.v, dense, out, opts);
    });
  }
}

TEST(SimdKernelParity, GemmBothOrientations) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  for (const auto& [m, k, n] : {std::tuple<Index, Index, Index>{9, 7, 11},
                               std::tuple<Index, Index, Index>{64, 64, 64},
                               std::tuple<Index, Index, Index>{65, 33, 67}}) {
    SCOPED_TRACE(testing::Message() << m << "x" << k << "x" << n);
    Matrix<float> a(m, k), bt(n, k), b(k, n);
    Rng rng(600);
    fill_uniform(a, rng);
    fill_uniform(bt, rng);
    fill_uniform(b, rng);
    for (const bool transposed : {true, false}) {
      Matrix<float> c_scalar(m, n), c_avx2(m, n);
      ExecPolicy p = ExecPolicy::serial();
      p.simd = SimdLevel::Scalar;
      transposed ? gemm_nt(a, bt, c_scalar, p) : gemm_nn(a, b, c_scalar, p);
      p.simd = SimdLevel::Avx2;
      transposed ? gemm_nt(a, bt, c_avx2, p) : gemm_nn(a, b, c_avx2, p);
      expect_matrices_close(c_scalar, c_avx2);
    }
  }
}

// --- Extreme numerics --------------------------------------------------

TEST(SimdKernelParity, InfiniteScoresFromOverflowingDots) {
  // Inputs around ±1e20: d=64 dots overflow to ±inf after scaling, so
  // the online softmax walks its ±inf branches identically on both arms.
  const Index L = 32;
  for (const Index d : {Index{9}, Index{64}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 700 + static_cast<std::uint64_t>(d), 1e20f);
    const auto mask = build_csr_random(L, RandomParams{0.4, 19});
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      csr_attention(in.q, in.k, in.v, mask, out, opts);
    });
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      baselines::flash_attention(in.q, in.k, in.v, out, opts);
    });
  }
}

TEST(SimdKernelParity, DenormalScores) {
  const Index L = 32;
  const Index d = 13;  // exercises the 5-lane tail
  const auto in = make_inputs(L, d, 800, 1e-30f);
  const auto mask = build_csr_random(L, RandomParams{0.4, 23});
  expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
    csr_attention(in.q, in.k, in.v, mask, out, opts);
  });
}

// --- Masked-row conventions on the vector path -------------------------

TEST(SimdKernelParity, FullyMaskedRowsStayZeroOnBothArms) {
  const Index L = 24;
  const Index d = 13;
  const auto in = make_inputs(L, d, 900);
  // Rows ≡ 0 (mod 3) have no neighbors at all.
  const auto mask = build_csr_from_predicate(
      L, [](Index i, Index j) { return i % 3 != 0 && (i + j) % 4 == 0; });
  for (const SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
    AttentionOptions opts;
    opts.policy.simd = level;
    Matrix<float> out(L, d);
    out.fill(7.0f);  // poison
    csr_attention(in.q, in.k, in.v, mask, out, opts);
    for (Index i = 0; i < L; i += 3) {
      for (Index j = 0; j < d; ++j) {
        EXPECT_EQ(out(i, j), 0.0f) << "level=" << simd::level_name(level) << " row " << i;
      }
    }
  }
}

// Regression (satellite #3): softmax_rows on a fully-masked row whose
// width is not a multiple of the lane count. A tail handled by a plain
// masked load feeds 0.0f into the max reduction, the row max becomes 0
// instead of -inf, and the row silently turns into a uniform non-zero
// distribution — the scalar path only ever got this right because it
// never had dead lanes. The vector arm must seed dead lanes with -inf.
TEST(SimdSoftmaxRegression, FullyMaskedRowAllZeroOnVectorPath) {
  for (const SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
    for (const Index cols : {Index{3}, Index{8}, Index{13}, Index{16}, Index{21}}) {
      Matrix<float> s(3, cols);
      Rng rng(1000);
      fill_uniform(s, rng);
      for (Index j = 0; j < cols; ++j) s(1, j) = -kInf;  // fully-masked middle row
      softmax_rows(s, level);
      float live_sum = 0.0f;
      for (Index j = 0; j < cols; ++j) {
        EXPECT_EQ(s(1, j), 0.0f) << "level=" << simd::level_name(level) << " cols=" << cols;
        EXPECT_FALSE(std::isnan(s(0, j)));
        live_sum += s(0, j);
      }
      EXPECT_NEAR(live_sum, 1.0f, 1e-5f);
    }
  }
}

TEST(SimdSoftmaxRegression, FoldTileOfFullyMaskedScoresLeavesStateEmpty) {
  for (const SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
    const auto& vo = simd::ops(level);
    OnlineSoftmaxRow osr;
    std::vector<float> tile(11, -kInf);
    const float alpha = online_softmax_fold_tile(osr, tile.data(), 11, vo);
    EXPECT_EQ(alpha, 1.0f);
    EXPECT_EQ(osr.m, -kInf);
    EXPECT_EQ(osr.l, 0.0f);
    for (const float p : tile) EXPECT_EQ(p, 0.0f);
    EXPECT_EQ(osr.inv_l(), 0.0f);  // finalisation zeroes the output row
  }
}

// --- Dispatch plumbing -------------------------------------------------

TEST(SimdDispatch, ResolveClampsToAvailability) {
  EXPECT_EQ(simd::resolve(SimdLevel::Scalar), SimdLevel::Scalar);
  const SimdLevel avx2 = simd::resolve(SimdLevel::Avx2);
  EXPECT_TRUE(avx2 == SimdLevel::Avx2 || avx2 == SimdLevel::Scalar);
  if (simd::compiled_with_avx2() && simd::cpu_supports_avx2()) {
    EXPECT_EQ(avx2, SimdLevel::Avx2);
  } else {
    EXPECT_EQ(avx2, SimdLevel::Scalar);
  }
  EXPECT_NE(simd::resolve(SimdLevel::Auto), SimdLevel::Auto);
}

TEST(SimdDispatch, ForceLevelOverridesAutoButNotExplicit) {
  const SimdLevel before = simd::active_level();
  simd::force_level(SimdLevel::Scalar);
  EXPECT_EQ(simd::active_level(), SimdLevel::Scalar);
  EXPECT_EQ(simd::resolve(SimdLevel::Auto), SimdLevel::Scalar);
  if (avx2_arm_available()) {
    // An explicit per-call request is not affected by the global force.
    EXPECT_EQ(simd::resolve(SimdLevel::Avx2), SimdLevel::Avx2);
  }
  simd::force_level(SimdLevel::Auto);
  EXPECT_EQ(simd::active_level(), before);
}

}  // namespace
}  // namespace gpa
