// Differential harness pinning every dispatch arm to the scalar
// reference, by parity class (src/simd/simd.hpp):
//
//  * BITWISE arms (scalar, avx2): bit-identical on every input by the
//    lane contract. Asserted with ULP distance 0 over randomized shapes
//    chosen to stress the lane machinery — head dims 1..67 (every
//    remainder-lane count), fully-masked rows, ±inf score overflow, and
//    denormal magnitudes. The fp16 ops are in this class too: h->f
//    widening is exact, f->h is round-to-nearest-even on every arm.
//
//  * RELAXED arms (avx2-fma, avx512): FMA rounds a·b+c once where the
//    contract rounds twice, and 16 lanes reassociate reductions, so
//    these arms are held to DERIVED error bounds instead of bitwise
//    equality. The bounds come from the standard summation forward-
//    error model: any order of accumulating n rounded products p_i
//    lands within gamma_n·Σ|p_i| of the exact value, gamma_n = n·u
//    (u = 2^-24, first order), so two different orders differ by at
//    most 2·gamma_n·Σ|p_i|. The harness computes that bound per CALL —
//    per reduction length n and per input magnitude profile — plus a
//    tiny absolute slack for the denormal floor where relative bounds
//    vanish. Element-wise FMA updates (axpby) use the two-term analog
//    2u·(|alpha·acc| + |beta·v|). reduce_max, scale, h2f, and f2h do
//    no reassociated additions and stay BITWISE across all four arms.
//
// Kernel-level differentials run the same sweep per class: bitwise arms
// at ULP 0..2, relaxed arms under an empirical-but-stable kernel bound
// (each arm is deterministic by construction, so the observed distance
// is a property of the code, not the host — see kRelaxedKernelUlp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "baselines/flash_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/spmm_attention.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "tensor/gemm.hpp"
#include "tensor/softmax.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

bool avx2_arm_available() { return simd::resolve(SimdLevel::Avx2) == SimdLevel::Avx2; }

/// The relaxed arms this build + CPU can actually run (possibly empty —
/// every relaxed test degrades to vacuous-pass on an ISA-lacking host,
/// which is what lets the forced-level CI legs stay green anywhere).
const std::vector<SimdLevel>& relaxed_levels() {
  static const std::vector<SimdLevel> levels = [] {
    std::vector<SimdLevel> out;
    for (const SimdLevel l : simd::available_levels()) {
      if (!simd::is_bitwise_level(l)) out.push_back(l);
    }
    return out;
  }();
  return levels;
}

/// Maps a float onto the integer line so that adjacent representable
/// values differ by 1 (the standard monotone ULP embedding).
std::int64_t ulp_index(float x) {
  std::int32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits >= 0 ? bits : std::int64_t{std::numeric_limits<std::int32_t>::min()} - bits;
}

/// ULP distance with NaN == NaN (both arms must agree on where the
/// convention produces NaN, not on a particular payload).
std::int64_t ulp_diff(float a, float b) {
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) != std::isnan(b)) return std::numeric_limits<std::int64_t>::max();
  return std::abs(ulp_index(a) - ulp_index(b));
}

constexpr std::int64_t kMaxUlp = 2;

/// Kernel-level budget for the relaxed arms vs scalar. Score drift is a
/// few ULP (bounded by the summation model over 2·d-term dots), exp()
/// turns that into a matching relative error of each softmax weight,
/// and the normalized output is a convex combination of O(1) V rows —
/// so the observed distance stays in the tens of ULP across the whole
/// sweep. 64 gives ~4× headroom over what the current arms measure;
/// both arms are deterministic by construction, so the measurement is a
/// property of the code, not the host.
constexpr std::int64_t kRelaxedKernelUlp = 64;

/// Unit roundoff of binary32 (2^-24).
constexpr double kU = 5.9604644775390625e-8;
/// Absolute slack absorbing the denormal floor, where relative bounds
/// vanish (~70 denormal ULPs; smallest denormal is 1.4e-45).
constexpr double kDenormSlack = 1e-43;

void expect_matrices_ulp(const Matrix<float>& ref, const Matrix<float>& got,
                         std::int64_t max_ulp, const char* tag) {
  ASSERT_TRUE(ref.same_shape(got));
  for (Index i = 0; i < ref.rows(); ++i) {
    for (Index j = 0; j < ref.cols(); ++j) {
      const std::int64_t d = ulp_diff(ref(i, j), got(i, j));
      ASSERT_LE(d, max_ulp) << tag << " row " << i << " col " << j << ": ref=" << ref(i, j)
                            << " got=" << got(i, j);
    }
  }
}

void expect_matrices_close(const Matrix<float>& scalar, const Matrix<float>& avx2) {
  expect_matrices_ulp(scalar, avx2, kMaxUlp, "bitwise");
}

/// Every remainder-lane count at least twice, plus the paper's d=64.
const std::vector<Index>& head_dims() {
  static const std::vector<Index> dims = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                                          12, 13, 14, 15, 16, 17, 31, 32, 33, 48, 63,
                                          64, 65, 66, 67};
  return dims;
}

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed, float scale_factor = 1.0f) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  if (scale_factor != 1.0f) {
    for (auto* m : {&in.q, &in.k}) {
      for (Index i = 0; i < L; ++i) {
        float* row = m->row(i);
        for (Index j = 0; j < d; ++j) row[j] *= scale_factor;
      }
    }
  }
  return in;
}

/// Runs `call(opts, out)` under every dispatch arm and compares against
/// scalar: bitwise arms at ≤kMaxUlp, relaxed arms at ≤kRelaxedKernelUlp.
/// `include_relaxed = false` restricts to the bitwise class, for inputs
/// (mixed-sign ±inf overflow) where reassociation changes which infinity
/// a dot lands on and no cross-class bound exists.
template <typename CallFn>
void expect_arm_parity(Index L, Index d, const CallFn& call, bool include_relaxed = true) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  Matrix<float> scalar_out(L, d);
  AttentionOptions opts;
  opts.policy = ExecPolicy::serial();
  opts.policy.simd = SimdLevel::Scalar;
  call(opts, scalar_out);
  for (const SimdLevel level : simd::available_levels()) {
    if (level == SimdLevel::Scalar) continue;
    if (!include_relaxed && !simd::is_bitwise_level(level)) continue;
    Matrix<float> arm_out(L, d);
    opts.policy.simd = level;
    call(opts, arm_out);
    const std::int64_t budget = simd::is_bitwise_level(level) ? kMaxUlp : kRelaxedKernelUlp;
    expect_matrices_ulp(scalar_out, arm_out, budget, simd::level_name(level).data());
  }
}

// --- Primitive parity (bitwise: the lane contract itself) --------------

std::vector<float> random_buffer(Index n, std::uint64_t seed, float mul) {
  Matrix<float> m(1, n > 0 ? n : 1);
  Rng rng(seed);
  fill_uniform(m, rng);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = (m(0, i) - 0.5f) * mul;
  return out;
}

TEST(SimdPrimitives, AllOpsBitwiseEqualAcrossLengthsAndMagnitudes) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  const auto& scalar = simd::ops(SimdLevel::Scalar);
  const auto& avx2 = simd::ops(SimdLevel::Avx2);
  // 1e-40 drives products into the denormal range, 1e20 drives dot
  // accumulations through ±inf overflow.
  for (const float mul : {1.0f, 1e-40f, 1e20f}) {
    for (Index n = 0; n <= 67; ++n) {
      const auto a = random_buffer(n, 900 + static_cast<std::uint64_t>(n), mul);
      const auto b = random_buffer(n, 1900 + static_cast<std::uint64_t>(n), mul);
      SCOPED_TRACE(testing::Message() << "n=" << n << " mul=" << mul);

      EXPECT_EQ(ulp_diff(scalar.dot(a.data(), b.data(), n), avx2.dot(a.data(), b.data(), n)), 0);
      EXPECT_EQ(ulp_diff(scalar.reduce_sum(a.data(), n), avx2.reduce_sum(a.data(), n)), 0);
      EXPECT_EQ(ulp_diff(scalar.reduce_max(a.data(), n), avx2.reduce_max(a.data(), n)), 0);

      auto acc_s = b, acc_v = b;
      scalar.axpby(acc_s.data(), 0.25f, 1.75f, a.data(), n);
      avx2.axpby(acc_v.data(), 0.25f, 1.75f, a.data(), n);
      for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(ulp_diff(acc_s[static_cast<std::size_t>(i)], acc_v[static_cast<std::size_t>(i)]), 0);
      }
      acc_s = b;
      acc_v = b;
      scalar.axpy(acc_s.data(), -0.5f, a.data(), n);
      avx2.axpy(acc_v.data(), -0.5f, a.data(), n);
      scalar.scale(acc_s.data(), 3.0f, n);
      avx2.scale(acc_v.data(), 3.0f, n);
      for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(ulp_diff(acc_s[static_cast<std::size_t>(i)], acc_v[static_cast<std::size_t>(i)]), 0);
      }
    }
  }
}

TEST(SimdPrimitives, ReductionIdentitiesOnEmptyInput) {
  for (const SimdLevel level : simd::available_levels()) {
    const auto& vo = simd::ops(level);
    EXPECT_EQ(vo.dot(nullptr, nullptr, 0), 0.0f);
    EXPECT_EQ(vo.reduce_sum(nullptr, 0), 0.0f);
    EXPECT_EQ(vo.reduce_max(nullptr, 0), -kInf);
    EXPECT_EQ(vo.dot_h(nullptr, nullptr, 0), 0.0f);
    EXPECT_EQ(vo.dot_fh(nullptr, nullptr, 0), 0.0f);
  }
}

TEST(SimdPrimitives, ReduceMaxSeesTailBeyondFullBlocks) {
  // The maximum hidden in every tail position: a masked-load bug that
  // zeroes dead lanes would miss it (or fabricate a 0 max — the failure
  // mode behind the fully-masked-row regression below). reduce_max is
  // bitwise on every arm, relaxed included, so all arms run here.
  for (const SimdLevel level : simd::available_levels()) {
    const auto& vo = simd::ops(level);
    for (Index n = 1; n <= 24; ++n) {
      std::vector<float> x(static_cast<std::size_t>(n), -5.0f);
      x[static_cast<std::size_t>(n - 1)] = -1.0f;
      EXPECT_EQ(vo.reduce_max(x.data(), n), -1.0f) << "n=" << n;
      std::vector<float> all_masked(static_cast<std::size_t>(n), -kInf);
      EXPECT_EQ(vo.reduce_max(all_masked.data(), n), -kInf) << "n=" << n;
    }
  }
}

// --- fp16 primitives: the bitwise class extends to half storage --------

std::vector<half_t> narrow(const std::vector<float>& src) {
  std::vector<half_t> out(src.size());
  if (!src.empty()) {
    simd::ops(SimdLevel::Scalar).f2h(out.data(), src.data(), static_cast<Index>(src.size()));
  }
  return out;
}

std::vector<float> widen(const std::vector<half_t>& src) {
  std::vector<float> out(src.size());
  if (!src.empty()) {
    simd::ops(SimdLevel::Scalar).h2f(out.data(), src.data(), static_cast<Index>(src.size()));
  }
  return out;
}

TEST(SimdPrimitives, Fp16OpsBitwiseEqualAcrossBitwiseArms) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  const auto& scalar = simd::ops(SimdLevel::Scalar);
  const auto& avx2 = simd::ops(SimdLevel::Avx2);
  // 1e-6 lands products in the half-denormal band, 8.0 keeps everything
  // normal; widening is exact either way, so the lane contract carries
  // the bitwise guarantee over to half storage unchanged.
  for (const float mul : {1.0f, 1e-6f, 8.0f}) {
    for (Index n = 0; n <= 67; ++n) {
      const auto af = random_buffer(n, 2900 + static_cast<std::uint64_t>(n), mul);
      const auto bf = random_buffer(n, 3900 + static_cast<std::uint64_t>(n), mul);
      const auto ah = narrow(af);
      const auto bh = narrow(bf);
      SCOPED_TRACE(testing::Message() << "n=" << n << " mul=" << mul);

      EXPECT_EQ(ulp_diff(scalar.dot_h(ah.data(), bh.data(), n), avx2.dot_h(ah.data(), bh.data(), n)),
                0);
      EXPECT_EQ(
          ulp_diff(scalar.dot_fh(af.data(), bh.data(), n), avx2.dot_fh(af.data(), bh.data(), n)),
          0);

      auto acc_s = af, acc_v = af;
      scalar.axpby_h(acc_s.data(), 0.25f, 1.75f, bh.data(), n);
      avx2.axpby_h(acc_v.data(), 0.25f, 1.75f, bh.data(), n);
      scalar.axpy_h(acc_s.data(), -0.5f, bh.data(), n);
      avx2.axpy_h(acc_v.data(), -0.5f, bh.data(), n);
      for (Index i = 0; i < n; ++i) {
        EXPECT_EQ(
            ulp_diff(acc_s[static_cast<std::size_t>(i)], acc_v[static_cast<std::size_t>(i)]), 0);
      }
    }
  }
}

TEST(SimdPrimitives, ConvertOpsBitwiseAcrossAllArms) {
  // h2f is an exact widening and f2h rounds to nearest-even on every
  // arm — including the relaxed ones — so fp16 page payloads never
  // depend on the dispatch decision. Pin all arms against scalar.
  const auto& scalar = simd::ops(SimdLevel::Scalar);
  for (const SimdLevel level : simd::available_levels()) {
    const auto& vo = simd::ops(level);
    for (const float mul : {1.0f, 1e-6f, 1e6f}) {  // 1e6f overflows half -> ±inf
      for (Index n = 0; n <= 67; ++n) {
        SCOPED_TRACE(testing::Message()
                     << "level=" << simd::level_name(level) << " n=" << n << " mul=" << mul);
        const auto f = random_buffer(n, 4900 + static_cast<std::uint64_t>(n), mul);
        std::vector<half_t> h_ref(f.size()), h_got(f.size());
        if (n > 0) {
          scalar.f2h(h_ref.data(), f.data(), n);
          vo.f2h(h_got.data(), f.data(), n);
        }
        for (Index i = 0; i < n; ++i) {
          EXPECT_EQ(h_ref[static_cast<std::size_t>(i)].bits(),
                    h_got[static_cast<std::size_t>(i)].bits());
        }
        std::vector<float> w_ref(f.size()), w_got(f.size());
        if (n > 0) {
          scalar.h2f(w_ref.data(), h_ref.data(), n);
          vo.h2f(w_got.data(), h_ref.data(), n);
        }
        for (Index i = 0; i < n; ++i) {
          EXPECT_EQ(ulp_diff(w_ref[static_cast<std::size_t>(i)], w_got[static_cast<std::size_t>(i)]),
                    0);
        }
      }
    }
  }
}

// --- Relaxed arms: derived per-length error bounds ---------------------

/// Two different accumulation orders of n rounded products each land
/// within gamma_n·Σ|p_i| of the exact dot (gamma_n = n·u to first
/// order), so they differ by at most twice that, plus the denormal
/// floor. The bound is computed per call from the actual inputs —
/// this is the "per reduction length" derivation the header documents.
double dot_bound(const float* a, const float* b, Index n) {
  double mag = 0.0;
  for (Index i = 0; i < n; ++i) {
    mag += std::abs(static_cast<double>(a[i]) * static_cast<double>(b[i]));
  }
  return 2.0 * static_cast<double>(n) * kU * mag + kDenormSlack;
}

double sum_bound(const float* x, Index n) {
  double mag = 0.0;
  for (Index i = 0; i < n; ++i) mag += std::abs(static_cast<double>(x[i]));
  return 2.0 * static_cast<double>(n) * kU * mag + kDenormSlack;
}

/// Element-wise two-term analog for acc·alpha + beta·v: one fused vs
/// two separate roundings differ by at most u·(|alpha·acc| + |beta·v|)
/// each way.
double fma_elem_bound(float acc, float alpha, float beta, float v) {
  return 2.0 * kU *
             (std::abs(static_cast<double>(acc) * alpha) +
              std::abs(static_cast<double>(beta) * v)) +
         kDenormSlack;
}

TEST(SimdPrimitives, RelaxedArmsWithinDerivedBounds) {
  if (relaxed_levels().empty()) GTEST_SKIP() << "no relaxed arm on this build/CPU";
  const auto& scalar = simd::ops(SimdLevel::Scalar);
  for (const SimdLevel level : relaxed_levels()) {
    const auto& vo = simd::ops(level);
    // 1e-40 drives products into the denormal floor, 1e10 keeps partial
    // sums huge but finite (decisive overflow is its own test below).
    for (const float mul : {1.0f, 1e-40f, 1e10f}) {
      for (Index n = 0; n <= 67; ++n) {
        SCOPED_TRACE(testing::Message()
                     << "level=" << simd::level_name(level) << " n=" << n << " mul=" << mul);
        const auto a = random_buffer(n, 5900 + static_cast<std::uint64_t>(n), mul);
        const auto b = random_buffer(n, 6900 + static_cast<std::uint64_t>(n), mul);

        EXPECT_LE(std::abs(static_cast<double>(vo.dot(a.data(), b.data(), n)) -
                           static_cast<double>(scalar.dot(a.data(), b.data(), n))),
                  dot_bound(a.data(), b.data(), n));
        EXPECT_LE(std::abs(static_cast<double>(vo.reduce_sum(a.data(), n)) -
                           static_cast<double>(scalar.reduce_sum(a.data(), n))),
                  sum_bound(a.data(), n));
        // max and scale involve no reassociated additions: bitwise even
        // on the relaxed arms.
        EXPECT_EQ(ulp_diff(vo.reduce_max(a.data(), n), scalar.reduce_max(a.data(), n)), 0);
        auto x_s = a, x_v = a;
        scalar.scale(x_s.data(), 3.0f, n);
        vo.scale(x_v.data(), 3.0f, n);
        for (Index i = 0; i < n; ++i) {
          EXPECT_EQ(ulp_diff(x_s[static_cast<std::size_t>(i)], x_v[static_cast<std::size_t>(i)]),
                    0);
        }

        auto acc_s = b, acc_v = b;
        scalar.axpby(acc_s.data(), 0.25f, 1.75f, a.data(), n);
        vo.axpby(acc_v.data(), 0.25f, 1.75f, a.data(), n);
        for (Index i = 0; i < n; ++i) {
          const auto k = static_cast<std::size_t>(i);
          EXPECT_LE(std::abs(static_cast<double>(acc_v[k]) - static_cast<double>(acc_s[k])),
                    fma_elem_bound(b[k], 0.25f, 1.75f, a[k]));
        }
        acc_s = b;
        acc_v = b;
        scalar.axpy(acc_s.data(), -0.5f, a.data(), n);
        vo.axpy(acc_v.data(), -0.5f, a.data(), n);
        for (Index i = 0; i < n; ++i) {
          const auto k = static_cast<std::size_t>(i);
          EXPECT_LE(std::abs(static_cast<double>(acc_v[k]) - static_cast<double>(acc_s[k])),
                    fma_elem_bound(b[k], 1.0f, -0.5f, a[k]));
        }
      }
    }
    // fp16 ops: widening is exact, so the same dot bound applies over
    // the widened values.
    for (Index n = 0; n <= 67; ++n) {
      SCOPED_TRACE(testing::Message() << "level=" << simd::level_name(level) << " fp16 n=" << n);
      const auto af = random_buffer(n, 7900 + static_cast<std::uint64_t>(n), 4.0f);
      const auto bf = random_buffer(n, 8900 + static_cast<std::uint64_t>(n), 4.0f);
      const auto ah = narrow(af);
      const auto bh = narrow(bf);
      const auto aw = widen(ah);
      const auto bw = widen(bh);
      EXPECT_LE(std::abs(static_cast<double>(vo.dot_h(ah.data(), bh.data(), n)) -
                         static_cast<double>(scalar.dot_h(ah.data(), bh.data(), n))),
                dot_bound(aw.data(), bw.data(), n));
      EXPECT_LE(std::abs(static_cast<double>(vo.dot_fh(af.data(), bh.data(), n)) -
                         static_cast<double>(scalar.dot_fh(af.data(), bh.data(), n))),
                dot_bound(af.data(), bw.data(), n));
      auto acc_s = af, acc_v = af;
      scalar.axpby_h(acc_s.data(), 0.25f, 1.75f, bh.data(), n);
      vo.axpby_h(acc_v.data(), 0.25f, 1.75f, bh.data(), n);
      for (Index i = 0; i < n; ++i) {
        const auto k = static_cast<std::size_t>(i);
        EXPECT_LE(std::abs(static_cast<double>(acc_v[k]) - static_cast<double>(acc_s[k])),
                  fma_elem_bound(af[k], 0.25f, 1.75f, bw[k]));
      }
    }
  }
}

TEST(SimdPrimitives, RelaxedArmsAgreeOnDecisiveOverflow) {
  // All-positive inputs at 1e20: every accumulation order is monotone
  // increasing, so every arm lands on exactly +inf — no inf-inf NaNs,
  // no near-threshold rounding races. (MIXED-sign overflow is NOT an
  // across-class invariant: a reassociated sum can hit +inf and -inf in
  // different partials, so that case is pinned on the bitwise arms
  // only.)
  const auto& scalar = simd::ops(SimdLevel::Scalar);
  for (const SimdLevel level : relaxed_levels()) {
    const auto& vo = simd::ops(level);
    for (Index n = 1; n <= 35; ++n) {
      std::vector<float> a(static_cast<std::size_t>(n), 1e20f);
      std::vector<float> b(static_cast<std::size_t>(n), 2e19f);
      SCOPED_TRACE(testing::Message() << "level=" << simd::level_name(level) << " n=" << n);
      EXPECT_EQ(scalar.dot(a.data(), b.data(), n), kInf);
      EXPECT_EQ(vo.dot(a.data(), b.data(), n), kInf);
      std::vector<float> big(static_cast<std::size_t>(n), 3e38f);
      EXPECT_EQ(scalar.reduce_sum(big.data(), n), n == 1 ? 3e38f : kInf);
      EXPECT_EQ(vo.reduce_sum(big.data(), n), n == 1 ? 3e38f : kInf);
    }
  }
}

// --- fp16 fold parity: half pages vs the scalar-convert reference ------

TEST(SimdFp16Fold, MatchesScalarConvertReferenceAcrossArms) {
  // The decode path folds fp16 K/V pages via fold_edge_rows_fh. The
  // reference widens the SAME half payloads back to fp32 (exact) and
  // runs the plain float fold on the scalar arm: bitwise arms must
  // reproduce it bit-for-bit (the lane contract runs over identical
  // widened values); relaxed arms stay inside the kernel ULP budget.
  const Index kEdges = 20;
  for (const Index d : {Index{1}, Index{7}, Index{16}, Index{33}, Index{64}, Index{67}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(kEdges, d, 9900 + static_cast<std::uint64_t>(d));
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // Narrow every K/V row to the half payloads a page would hold.
    std::vector<half_t> kh(static_cast<std::size_t>(kEdges * d));
    std::vector<half_t> vh(static_cast<std::size_t>(kEdges * d));
    const auto& scalar_ops = simd::ops(SimdLevel::Scalar);
    for (Index j = 0; j < kEdges; ++j) {
      scalar_ops.f2h(kh.data() + static_cast<std::size_t>(j * d), in.k.row(j), d);
      scalar_ops.f2h(vh.data() + static_cast<std::size_t>(j * d), in.v.row(j), d);
    }
    // Reference: exact widening, then the float fold on the scalar arm.
    Matrix<float> kw(kEdges, d), vw(kEdges, d);
    for (Index j = 0; j < kEdges; ++j) {
      scalar_ops.h2f(kw.row(j), kh.data() + static_cast<std::size_t>(j * d), d);
      scalar_ops.h2f(vw.row(j), vh.data() + static_cast<std::size_t>(j * d), d);
    }
    std::vector<float> acc_ref(static_cast<std::size_t>(d), 0.0f);
    OnlineSoftmaxRow osr_ref;
    for (Index j = 0; j < kEdges; ++j) {
      detail::fold_edge_rows(in.q.row(0), kw.row(j), vw.row(j), d, scale, 1.0f, false, osr_ref,
                             acc_ref.data(), scalar_ops);
    }

    for (const SimdLevel level : simd::available_levels()) {
      SCOPED_TRACE(testing::Message() << "level=" << simd::level_name(level));
      const auto& vo = simd::ops(level);
      std::vector<float> acc(static_cast<std::size_t>(d), 0.0f);
      OnlineSoftmaxRow osr;
      for (Index j = 0; j < kEdges; ++j) {
        detail::fold_edge_rows_fh(in.q.row(0), kh.data() + static_cast<std::size_t>(j * d),
                                  vh.data() + static_cast<std::size_t>(j * d), d, scale, 1.0f,
                                  false, osr, acc.data(), vo);
      }
      const std::int64_t budget = simd::is_bitwise_level(level) ? 0 : kRelaxedKernelUlp;
      EXPECT_LE(ulp_diff(osr.m, osr_ref.m), budget);
      EXPECT_LE(ulp_diff(osr.l, osr_ref.l), budget);
      for (Index i = 0; i < d; ++i) {
        ASSERT_LE(ulp_diff(acc[static_cast<std::size_t>(i)], acc_ref[static_cast<std::size_t>(i)]),
                  budget)
            << "col " << i;
      }
    }
  }
}

// --- Kernel differentials over the head-dim sweep ----------------------

TEST(SimdKernelParity, CsrRandomMaskAllHeadDims) {
  const Index L = 48;
  for (const Index d : head_dims()) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 200 + static_cast<std::uint64_t>(d));
    const auto mask = build_csr_random(L, RandomParams{0.3, 11});
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      csr_attention(in.q, in.k, in.v, mask, out, opts);
    });
  }
}

TEST(SimdKernelParity, SpmmAttentionWholePipeline) {
  // The two-phase spmm_attention path: all three stages now ride the
  // dispatched ops — SDDMM's Q·K dots, csr_row_softmax's max/sum/rescale
  // reductions, and the SpMM axpy accumulate — so whole-pipeline outputs
  // must agree across arms like the fused kernels do.
  const Index L = 48;
  for (const Index d : head_dims()) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 250 + static_cast<std::uint64_t>(d));
    const auto mask = build_csr_random(L, RandomParams{0.3, 19});
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      spmm_attention(in.q, in.k, in.v, mask, out, opts);
    });
  }
}

TEST(SimdKernelParity, CsrRowSoftmaxAndSpmmStagesBitwise) {
  // The two freshly-vectorized spmm_attention stages in isolation, so a
  // divergence is attributed to the stage, not the pipeline. Row
  // lengths sweep the remainder-lane counts (row i of the widening
  // local mask holds min(i+1, window) entries); both stages must be
  // BITWISE equal across arms by the lane contract.
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  const Index L = 40;
  for (const Index w : {Index{1}, Index{5}, Index{8}, Index{17}, Index{33}}) {
    SCOPED_TRACE(testing::Message() << "window=" << w);
    Csr<float> scores = build_csr_local(L, LocalParams{w});
    {
      Rng rng(600 + static_cast<std::uint64_t>(w));
      Matrix<float> vals(1, static_cast<Index>(scores.nnz()));
      fill_uniform(vals, rng);
      for (std::size_t k = 0; k < scores.values.size(); ++k) {
        scores.values[k] = (vals(0, static_cast<Index>(k)) - 0.5f) * 8.0f;
      }
    }
    Csr<float> scalar_scores = scores, avx2_scores = scores;
    ExecPolicy scalar_policy = ExecPolicy::serial();
    scalar_policy.simd = SimdLevel::Scalar;
    ExecPolicy avx2_policy = ExecPolicy::serial();
    avx2_policy.simd = SimdLevel::Avx2;
    csr_row_softmax(scalar_scores, scalar_policy);
    csr_row_softmax(avx2_scores, avx2_policy);
    for (std::size_t k = 0; k < scores.values.size(); ++k) {
      ASSERT_EQ(scalar_scores.values[k], avx2_scores.values[k]) << "softmax value " << k;
    }

    for (const Index d : {Index{1}, Index{7}, Index{16}, Index{67}}) {
      SCOPED_TRACE(testing::Message() << "d=" << d);
      const auto in = make_inputs(L, d, 650 + static_cast<std::uint64_t>(d));
      Matrix<float> scalar_out(L, d), avx2_out(L, d);
      spmm(scalar_scores, in.v, scalar_out, scalar_policy);
      spmm(scalar_scores, in.v, avx2_out, avx2_policy);
      for (Index i = 0; i < L; ++i) {
        for (Index j = 0; j < d; ++j) {
          ASSERT_EQ(scalar_out(i, j), avx2_out(i, j)) << "row " << i << " col " << j;
        }
      }
    }
  }
}

TEST(SimdKernelParity, CooBothSearches) {
  const Index L = 48;
  for (const Index d : {Index{7}, Index{32}, Index{65}}) {
    const auto in = make_inputs(L, d, 300 + static_cast<std::uint64_t>(d));
    const auto coo = csr_to_coo(build_csr_random(L, RandomParams{0.25, 13}));
    for (const CooSearch search : {CooSearch::Linear, CooSearch::Binary}) {
      SCOPED_TRACE(testing::Message() << "d=" << d << " search=" << static_cast<int>(search));
      expect_arm_parity(L, d, [&](AttentionOptions opts, Matrix<float>& out) {
        opts.coo_search = search;
        coo_attention(in.q, in.k, in.v, coo, out, opts);
      });
    }
  }
}

TEST(SimdKernelParity, LocalAndDilatedAndGlobal) {
  const Index L = 64;
  for (const Index d : {Index{3}, Index{16}, Index{33}, Index{67}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 400 + static_cast<std::uint64_t>(d));
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      local_attention(in.q, in.k, in.v, LocalParams{5}, out, opts);
    });
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      dilated1d_attention(in.q, in.k, in.v, Dilated1DParams{9, 2}, out, opts);
    });
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      dilated2d_attention(in.q, in.k, in.v, make_dilated2d(L, 8, 1), out, opts);
    });
    GlobalMinusLocalParams gp;
    gp.global = make_global({0, L / 2}, L);
    gp.local = make_local(3);
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      global_attention(in.q, in.k, in.v, gp, out, opts);
    });
  }
}

TEST(SimdKernelParity, FlashAndSdpBaselines) {
  const Index L = 48;
  for (const Index d : {Index{5}, Index{31}, Index{64}, Index{66}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 500 + static_cast<std::uint64_t>(d));
    for (const Index tile : {Index{7}, Index{16}, Index{48}, Index{100}}) {
      expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
        baselines::FlashConfig cfg;
        cfg.tile_cols = tile;
        baselines::flash_attention(in.q, in.k, in.v, out, opts, cfg);
      });
    }
    const auto dense = csr_to_dense(build_csr_random(L, RandomParams{0.4, 17}));
    expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
      baselines::sdp_masked_attention(in.q, in.k, in.v, dense, out, opts);
    });
  }
}

TEST(SimdKernelParity, GemmBothOrientations) {
  if (!avx2_arm_available()) GTEST_SKIP() << "AVX2 arm unavailable on this build/CPU";
  for (const auto& [m, k, n] : {std::tuple<Index, Index, Index>{9, 7, 11},
                               std::tuple<Index, Index, Index>{64, 64, 64},
                               std::tuple<Index, Index, Index>{65, 33, 67}}) {
    SCOPED_TRACE(testing::Message() << m << "x" << k << "x" << n);
    Matrix<float> a(m, k), bt(n, k), b(k, n);
    Rng rng(600);
    fill_uniform(a, rng);
    fill_uniform(bt, rng);
    fill_uniform(b, rng);
    for (const bool transposed : {true, false}) {
      Matrix<float> c_scalar(m, n), c_avx2(m, n);
      ExecPolicy p = ExecPolicy::serial();
      p.simd = SimdLevel::Scalar;
      transposed ? gemm_nt(a, bt, c_scalar, p) : gemm_nn(a, b, c_scalar, p);
      p.simd = SimdLevel::Avx2;
      transposed ? gemm_nt(a, bt, c_avx2, p) : gemm_nn(a, b, c_avx2, p);
      expect_matrices_close(c_scalar, c_avx2);
    }
  }
}

// --- Extreme numerics --------------------------------------------------

TEST(SimdKernelParity, InfiniteScoresFromOverflowingDots) {
  // Inputs around ±1e20: d=64 dots overflow to ±inf after scaling, so
  // the online softmax walks its ±inf branches identically on both
  // bitwise arms. Relaxed arms are excluded: a reassociated mixed-sign
  // sum can land on a different infinity (or inf-inf NaN) than the
  // scalar order, so cross-class agreement is not an invariant here —
  // decisive monotone overflow is pinned for them in
  // RelaxedArmsAgreeOnDecisiveOverflow.
  const Index L = 32;
  for (const Index d : {Index{9}, Index{64}}) {
    SCOPED_TRACE(testing::Message() << "d=" << d);
    const auto in = make_inputs(L, d, 700 + static_cast<std::uint64_t>(d), 1e20f);
    const auto mask = build_csr_random(L, RandomParams{0.4, 19});
    expect_arm_parity(
        L, d,
        [&](const AttentionOptions& opts, Matrix<float>& out) {
          csr_attention(in.q, in.k, in.v, mask, out, opts);
        },
        /*include_relaxed=*/false);
    expect_arm_parity(
        L, d,
        [&](const AttentionOptions& opts, Matrix<float>& out) {
          baselines::flash_attention(in.q, in.k, in.v, out, opts);
        },
        /*include_relaxed=*/false);
  }
}

TEST(SimdKernelParity, DenormalScores) {
  const Index L = 32;
  const Index d = 13;  // exercises the 5-lane tail
  const auto in = make_inputs(L, d, 800, 1e-30f);
  const auto mask = build_csr_random(L, RandomParams{0.4, 23});
  expect_arm_parity(L, d, [&](const AttentionOptions& opts, Matrix<float>& out) {
    csr_attention(in.q, in.k, in.v, mask, out, opts);
  });
}

// --- Masked-row conventions on the vector path -------------------------

TEST(SimdKernelParity, FullyMaskedRowsStayZeroOnBothArms) {
  const Index L = 24;
  const Index d = 13;
  const auto in = make_inputs(L, d, 900);
  // Rows ≡ 0 (mod 3) have no neighbors at all.
  const auto mask = build_csr_from_predicate(
      L, [](Index i, Index j) { return i % 3 != 0 && (i + j) % 4 == 0; });
  // The zero-row convention is exact on every arm, relaxed included:
  // no neighbors means no arithmetic at all.
  for (const SimdLevel level : simd::available_levels()) {
    AttentionOptions opts;
    opts.policy.simd = level;
    Matrix<float> out(L, d);
    out.fill(7.0f);  // poison
    csr_attention(in.q, in.k, in.v, mask, out, opts);
    for (Index i = 0; i < L; i += 3) {
      for (Index j = 0; j < d; ++j) {
        EXPECT_EQ(out(i, j), 0.0f) << "level=" << simd::level_name(level) << " row " << i;
      }
    }
  }
}

// Regression (satellite #3): softmax_rows on a fully-masked row whose
// width is not a multiple of the lane count. A tail handled by a plain
// masked load feeds 0.0f into the max reduction, the row max becomes 0
// instead of -inf, and the row silently turns into a uniform non-zero
// distribution — the scalar path only ever got this right because it
// never had dead lanes. The vector arm must seed dead lanes with -inf.
TEST(SimdSoftmaxRegression, FullyMaskedRowAllZeroOnVectorPath) {
  for (const SimdLevel level : simd::available_levels()) {
    for (const Index cols : {Index{3}, Index{8}, Index{13}, Index{16}, Index{21}}) {
      Matrix<float> s(3, cols);
      Rng rng(1000);
      fill_uniform(s, rng);
      for (Index j = 0; j < cols; ++j) s(1, j) = -kInf;  // fully-masked middle row
      softmax_rows(s, level);
      float live_sum = 0.0f;
      for (Index j = 0; j < cols; ++j) {
        EXPECT_EQ(s(1, j), 0.0f) << "level=" << simd::level_name(level) << " cols=" << cols;
        EXPECT_FALSE(std::isnan(s(0, j)));
        live_sum += s(0, j);
      }
      EXPECT_NEAR(live_sum, 1.0f, 1e-5f);
    }
  }
}

TEST(SimdSoftmaxRegression, FoldTileOfFullyMaskedScoresLeavesStateEmpty) {
  for (const SimdLevel level : simd::available_levels()) {
    const auto& vo = simd::ops(level);
    OnlineSoftmaxRow osr;
    std::vector<float> tile(11, -kInf);
    const float alpha = online_softmax_fold_tile(osr, tile.data(), 11, vo);
    EXPECT_EQ(alpha, 1.0f);
    EXPECT_EQ(osr.m, -kInf);
    EXPECT_EQ(osr.l, 0.0f);
    for (const float p : tile) EXPECT_EQ(p, 0.0f);
    EXPECT_EQ(osr.inv_l(), 0.0f);  // finalisation zeroes the output row
  }
}

// --- Dispatch plumbing -------------------------------------------------

TEST(SimdDispatch, ResolveClampsToAvailability) {
  EXPECT_EQ(simd::resolve(SimdLevel::Scalar), SimdLevel::Scalar);
  const SimdLevel avx2 = simd::resolve(SimdLevel::Avx2);
  EXPECT_TRUE(avx2 == SimdLevel::Avx2 || avx2 == SimdLevel::Scalar);
  if (simd::compiled_with_avx2() && simd::cpu_supports_avx2()) {
    EXPECT_EQ(avx2, SimdLevel::Avx2);
  } else {
    EXPECT_EQ(avx2, SimdLevel::Scalar);
  }
  EXPECT_NE(simd::resolve(SimdLevel::Auto), SimdLevel::Auto);

  // The new tiers clamp DOWN, never up, and never to Auto: a forced
  // avx512 request on an AVX2-only host runs the best arm at or below
  // the request instead of crashing or silently upgrading.
  const SimdLevel fma = simd::resolve(SimdLevel::Avx2Fma);
  EXPECT_TRUE(fma == SimdLevel::Avx2Fma || fma == SimdLevel::Avx2 || fma == SimdLevel::Scalar);
  if (simd::compiled_with_avx2_fma() && simd::cpu_supports_avx2_fma()) {
    EXPECT_EQ(fma, SimdLevel::Avx2Fma);
  }
  const SimdLevel a512 = simd::resolve(SimdLevel::Avx512);
  EXPECT_NE(a512, SimdLevel::Auto);
  if (simd::compiled_with_avx512() && simd::cpu_supports_avx512()) {
    EXPECT_EQ(a512, SimdLevel::Avx512);
  } else {
    // Clamp lands at or below the request.
    EXPECT_TRUE(a512 == SimdLevel::Avx2Fma || a512 == SimdLevel::Avx2 ||
                a512 == SimdLevel::Scalar);
  }
}

TEST(SimdDispatch, ParityClassesAndLevelEnumeration) {
  EXPECT_TRUE(simd::is_bitwise_level(SimdLevel::Scalar));
  EXPECT_TRUE(simd::is_bitwise_level(SimdLevel::Avx2));
  EXPECT_FALSE(simd::is_bitwise_level(SimdLevel::Avx2Fma));
  EXPECT_FALSE(simd::is_bitwise_level(SimdLevel::Avx512));

  const auto avail = simd::available_levels();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), SimdLevel::Scalar);
  for (std::size_t i = 0; i < avail.size(); ++i) {
    // Available means runnable: every enumerated level resolves to
    // itself, and the list ascends strictly.
    EXPECT_EQ(simd::resolve(avail[i]), avail[i]);
    if (i > 0) {
      EXPECT_LT(static_cast<int>(avail[i - 1]), static_cast<int>(avail[i]));
    }
  }

  const auto compiled = simd::compiled_levels();
  ASSERT_FALSE(compiled.empty());
  EXPECT_EQ(compiled.front(), SimdLevel::Scalar);
  // Everything runnable was necessarily compiled.
  for (const SimdLevel l : avail) {
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), l), compiled.end())
        << simd::level_name(l);
  }
}

TEST(SimdDispatch, ParseLevelRoundTripsAndRejectsUnknown) {
  // Round trip: every enum value's canonical name parses back to it.
  for (const SimdLevel l : {SimdLevel::Auto, SimdLevel::Scalar, SimdLevel::Avx2,
                            SimdLevel::Avx2Fma, SimdLevel::Avx512}) {
    SimdLevel out = SimdLevel::Scalar;
    EXPECT_TRUE(simd::parse_level(simd::level_name(l), out)) << simd::level_name(l);
    EXPECT_EQ(out, l);
  }
  // Accepted aliases and case-insensitivity (the GPA_SIMD env spellings).
  SimdLevel out = SimdLevel::Scalar;
  EXPECT_TRUE(simd::parse_level("AVX2-FMA", out));
  EXPECT_EQ(out, SimdLevel::Avx2Fma);
  EXPECT_TRUE(simd::parse_level("avx2fma", out));
  EXPECT_EQ(out, SimdLevel::Avx2Fma);
  EXPECT_TRUE(simd::parse_level("fma", out));
  EXPECT_EQ(out, SimdLevel::Avx2Fma);
  EXPECT_TRUE(simd::parse_level("", out));
  EXPECT_EQ(out, SimdLevel::Auto);
  // Unknown names are rejected and leave `out` untouched — the env path
  // turns this signal into a one-time warning + Auto fallback instead
  // of UB or a silent scalar downgrade.
  out = SimdLevel::Avx2;
  EXPECT_FALSE(simd::parse_level("bogus", out));
  EXPECT_FALSE(simd::parse_level("avx-512", out));
  EXPECT_FALSE(simd::parse_level("sse", out));
  EXPECT_EQ(out, SimdLevel::Avx2);
}

TEST(SimdDispatch, ForceLevelOverridesAutoButNotExplicit) {
  const SimdLevel before = simd::active_level();
  simd::force_level(SimdLevel::Scalar);
  EXPECT_EQ(simd::active_level(), SimdLevel::Scalar);
  EXPECT_EQ(simd::resolve(SimdLevel::Auto), SimdLevel::Scalar);
  if (avx2_arm_available()) {
    // An explicit per-call request is not affected by the global force.
    EXPECT_EQ(simd::resolve(SimdLevel::Avx2), SimdLevel::Avx2);
  }
  simd::force_level(SimdLevel::Auto);
  EXPECT_EQ(simd::active_level(), before);
}

}  // namespace
}  // namespace gpa
