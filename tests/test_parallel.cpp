// Tests for the parallel runtime substrate: parallel_for semantics under
// both schedules, exception propagation, the thread pool, and the
// device-capacity memory tracker.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/device_spec.hpp"
#include "parallel/memory_tracker.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace gpa {
namespace {

TEST(ParallelBackendTest, ReportsTheCompiledSubstrate) {
#if defined(GPA_HAVE_OPENMP)
  EXPECT_EQ(parallel_backend(), "openmp");
#else
  EXPECT_EQ(parallel_backend(), "threads");
#endif
}

class ParallelForSchedules : public ::testing::TestWithParam<Schedule> {};

TEST_P(ParallelForSchedules, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ExecPolicy policy{threads, 16, GetParam()};
    std::vector<std::atomic<int>> visits(257);
    parallel_for(0, 257, policy, [&](Index i) { visits[static_cast<std::size_t>(i)]++; });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST_P(ParallelForSchedules, ChunksPartitionTheRange) {
  ExecPolicy policy{3, 10, GetParam()};
  std::mutex mu;
  std::vector<std::pair<Index, Index>> chunks;
  parallel_for_chunks(5, 105, policy, [&](Index lo, Index hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  Index covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    EXPECT_GE(lo, 5);
    EXPECT_LE(hi, 105);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100);
}

TEST_P(ParallelForSchedules, EmptyRangeIsNoOp) {
  ExecPolicy policy{4, 8, GetParam()};
  bool called = false;
  parallel_for(10, 10, policy, [&](Index) { called = true; });
  parallel_for(10, 5, policy, [&](Index) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(ParallelForSchedules, ExceptionsPropagateToCaller) {
  ExecPolicy policy{4, 4, GetParam()};
  EXPECT_THROW(
      parallel_for(0, 100, policy,
                   [&](Index i) {
                     if (i == 37) throw std::runtime_error("kernel row failure");
                   }),
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ParallelForSchedules,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic));

TEST(ParallelForTest, SerialPolicyRunsInline) {
  std::vector<int> order;
  parallel_for(0, 10, ExecPolicy::serial(), [&](Index i) {
    order.push_back(static_cast<int>(i));  // no mutex needed: single thread
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelForTest, ResolvedThreadsHonorsExplicitCount) {
  EXPECT_EQ(resolved_threads(ExecPolicy{3, 1, Schedule::Static}), 3);
  EXPECT_GE(resolved_threads(ExecPolicy{0, 1, Schedule::Static}), 1);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  EXPECT_EQ(pool.size(), 2);
}

TEST(ThreadPoolTest, TasksCanBeSubmittedAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count++; });
  pool.wait_idle();
  pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(DeviceSpecTest, PresetsMatchTable1Capacities) {
  EXPECT_EQ(DeviceSpec::a100_80gb().memory_bytes, 80ull << 30);
  EXPECT_EQ(DeviceSpec::l40_48gb().memory_bytes, 48ull << 30);
  EXPECT_EQ(DeviceSpec::v100_32gb().memory_bytes, 32ull << 30);
}

TEST(MemoryTrackerTest, AllocatesWithinBudget) {
  MemoryTracker tracker(DeviceSpec::host(1000));
  tracker.allocate(600);
  EXPECT_EQ(tracker.in_use(), 600u);
  tracker.allocate(400);
  EXPECT_EQ(tracker.in_use(), 1000u);
  EXPECT_EQ(tracker.peak(), 1000u);
}

TEST(MemoryTrackerTest, ThrowsOnExhaustion) {
  MemoryTracker tracker(DeviceSpec::host(1000));
  tracker.allocate(999);
  EXPECT_THROW(tracker.allocate(2), OutOfDeviceMemory);
  EXPECT_EQ(tracker.in_use(), 999u);  // failed allocation leaves state unchanged
}

TEST(MemoryTrackerTest, ReleaseAllowsReuse) {
  MemoryTracker tracker(DeviceSpec::host(100));
  tracker.allocate(100);
  tracker.release(100);
  EXPECT_NO_THROW(tracker.allocate(100));
  EXPECT_EQ(tracker.peak(), 100u);
}

TEST(MemoryTrackerTest, LeaseReleasesOnScopeExit) {
  MemoryTracker tracker(DeviceSpec::host(100));
  {
    MemoryLease lease(tracker, 80);
    EXPECT_EQ(tracker.in_use(), 80u);
  }
  EXPECT_EQ(tracker.in_use(), 0u);
}

TEST(MemoryTrackerTest, ConcurrentAllocationsNeverExceedBudget) {
  MemoryTracker tracker(DeviceSpec::host(1000));
  std::atomic<int> failures{0};
  parallel_for(0, 64, ExecPolicy{8, 1, Schedule::Dynamic}, [&](Index) {
    try {
      tracker.allocate(100);
    } catch (const OutOfDeviceMemory&) {
      failures++;
    }
  });
  EXPECT_EQ(tracker.in_use(), 1000u);  // exactly 10 succeeded
  EXPECT_EQ(failures.load(), 54);
}

}  // namespace
}  // namespace gpa
