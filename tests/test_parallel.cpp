// Tests for the parallel runtime substrate: parallel_for semantics under
// both schedules, exception propagation, nesting degradation,
// parallel_reduce determinism, the thread pool, and the
// device-capacity memory tracker.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/device_spec.hpp"
#include "parallel/memory_tracker.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_region.hpp"
#include "parallel/thread_pool.hpp"

namespace gpa {
namespace {

TEST(ParallelBackendTest, ReportsTheCompiledSubstrate) {
#if defined(GPA_HAVE_OPENMP)
  EXPECT_EQ(parallel_backend(), "openmp");
#else
  EXPECT_EQ(parallel_backend(), "threads");
#endif
}

class ParallelForSchedules : public ::testing::TestWithParam<Schedule> {};

TEST_P(ParallelForSchedules, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ExecPolicy policy{threads, 16, GetParam()};
    std::vector<std::atomic<int>> visits(257);
    parallel_for(0, 257, policy, [&](Index i) { visits[static_cast<std::size_t>(i)]++; });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST_P(ParallelForSchedules, ChunksPartitionTheRange) {
  ExecPolicy policy{3, 10, GetParam()};
  std::mutex mu;
  std::vector<std::pair<Index, Index>> chunks;
  parallel_for_chunks(5, 105, policy, [&](Index lo, Index hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  Index covered = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    EXPECT_GE(lo, 5);
    EXPECT_LE(hi, 105);
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100);
}

TEST_P(ParallelForSchedules, EmptyRangeIsNoOp) {
  ExecPolicy policy{4, 8, GetParam()};
  bool called = false;
  parallel_for(10, 10, policy, [&](Index) { called = true; });
  parallel_for(10, 5, policy, [&](Index) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(ParallelForSchedules, ExceptionsPropagateToCaller) {
  ExecPolicy policy{4, 4, GetParam()};
  EXPECT_THROW(
      parallel_for(0, 100, policy,
                   [&](Index i) {
                     if (i == 37) throw std::runtime_error("kernel row failure");
                   }),
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ParallelForSchedules,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic));

TEST(ParallelForTest, SerialPolicyRunsInline) {
  std::vector<int> order;
  parallel_for(0, 10, ExecPolicy::serial(), [&](Index i) {
    order.push_back(static_cast<int>(i));  // no mutex needed: single thread
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelForTest, ResolvedThreadsHonorsExplicitCount) {
  EXPECT_EQ(resolved_threads(ExecPolicy{3, 1, Schedule::Static}), 3);
  EXPECT_GE(resolved_threads(ExecPolicy{0, 1, Schedule::Static}), 1);
}

TEST(ParallelRegionTest, FlagIsSetInsideAndClearedOutside) {
  EXPECT_FALSE(in_parallel_region());
  std::atomic<int> inside{0};
  parallel_for(0, 8, ExecPolicy{2, 1, Schedule::Static}, [&](Index) {
    if (in_parallel_region()) inside++;
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(in_parallel_region());  // guard restored on exit
}

TEST(ParallelRegionTest, NestedCallsDegradeToSerial) {
  // The oversubscription regression: an outer parallel_for over batch
  // items with an inner parallel_for per item must use the OUTER level's
  // threads only, never the product. Census every thread id the inner
  // loops run on.
  std::mutex mu;
  std::set<std::thread::id> ids;
  parallel_for(0, 4, ExecPolicy{4, 1, Schedule::Static}, [&](Index) {
    EXPECT_TRUE(in_parallel_region());
    EXPECT_EQ(resolved_threads(ExecPolicy{4, 1, Schedule::Static}), 1);
    parallel_for(0, 16, ExecPolicy{4, 1, Schedule::Dynamic}, [&](Index) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  });
  EXPECT_LE(ids.size(), 4u);  // outer width; 16 would mean threads multiplied
}

TEST(ParallelRegionTest, SingleItemRangeRunsInlineKeepingInnerParallelism) {
  // A batch of one must not open a region: the item runs on the caller's
  // thread and an inner kernel keeps its own parallelism.
  const std::thread::id caller = std::this_thread::get_id();
  bool checked = false;
  parallel_for(0, 1, ExecPolicy{4, 1, Schedule::Dynamic}, [&](Index) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_FALSE(in_parallel_region());
    EXPECT_GE(resolved_threads(ExecPolicy{4, 1, Schedule::Static}), 4);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

class ParallelReduceSchedules : public ::testing::TestWithParam<Schedule> {};

TEST_P(ParallelReduceSchedules, SumsTheRange) {
  for (const int threads : {1, 2, 4}) {
    for (const Index grain : {Index{1}, Index{7}, Index{64}}) {
      ExecPolicy policy{threads, grain, GetParam()};
      const std::int64_t got = parallel_reduce(
          Index{0}, Index{257}, std::int64_t{0},
          [](Index lo, Index hi, std::int64_t acc) {
            for (Index i = lo; i < hi; ++i) acc += i;
            return acc;
          },
          [](std::int64_t a, std::int64_t b) { return a + b; }, policy);
      EXPECT_EQ(got, 257 * 256 / 2);
    }
  }
}

TEST_P(ParallelReduceSchedules, EmptyRangeReturnsIdentity) {
  ExecPolicy policy{4, 8, GetParam()};
  const auto body = [](Index, Index, int acc) { return acc + 1; };
  const auto comb = [](int a, int b) { return a + b; };
  EXPECT_EQ(parallel_reduce(Index{5}, Index{5}, 42, body, comb, policy), 42);
  EXPECT_EQ(parallel_reduce(Index{9}, Index{5}, 42, body, comb, policy), 42);
}

TEST_P(ParallelReduceSchedules, ExceptionsPropagateToCaller) {
  ExecPolicy policy{4, 4, GetParam()};
  EXPECT_THROW(parallel_reduce(
                   Index{0}, Index{100}, 0.0f,
                   [](Index lo, Index hi, float acc) {
                     for (Index i = lo; i < hi; ++i) {
                       if (i == 61) throw std::runtime_error("partial failure");
                       acc += static_cast<float>(i);
                     }
                     return acc;
                   },
                   [](float a, float b) { return a + b; }, policy),
               std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, ParallelReduceSchedules,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic));

TEST(ParallelReduceTest, FloatSumIsBitIdenticalAcrossPoliciesAtFixedGrain) {
  // The determinism contract: the reduction tree is fixed by (n, grain),
  // so serial and any parallel policy produce bit-identical floats.
  std::vector<float> xs(1000);
  std::uint32_t s = 1u;
  for (float& x : xs) {
    s = s * 1664525u + 1013904223u;  // LCG: reproducible awkward floats
    x = static_cast<float>(s >> 8) / 16777216.0f - 0.5f;
  }
  const auto body = [&](Index lo, Index hi, float acc) {
    for (Index i = lo; i < hi; ++i) acc += xs[static_cast<std::size_t>(i)];
    return acc;
  };
  const auto comb = [](float a, float b) { return a + b; };
  const Index n = static_cast<Index>(xs.size());
  for (const Index grain : {Index{1}, Index{7}, Index{64}}) {
    const float serial =
        parallel_reduce(Index{0}, n, 0.0f, body, comb, ExecPolicy{1, grain, Schedule::Static});
    const float par_static =
        parallel_reduce(Index{0}, n, 0.0f, body, comb, ExecPolicy{3, grain, Schedule::Static});
    const float par_dynamic =
        parallel_reduce(Index{0}, n, 0.0f, body, comb, ExecPolicy{3, grain, Schedule::Dynamic});
    EXPECT_EQ(serial, par_static) << "grain " << grain;
    EXPECT_EQ(serial, par_dynamic) << "grain " << grain;
  }
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  EXPECT_EQ(pool.size(), 2);
}

TEST(ThreadPoolTest, TasksCanBeSubmittedAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count++; });
  pool.wait_idle();
  pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ThrowingTaskPropagatesFromWaitIdle) {
  // The regression this pins: a throwing task used to escape
  // worker_loop (std::terminate) and leave in_flight_ forever nonzero
  // (wait_idle deadlock). Now the error is stashed and rethrown here,
  // after everything in flight has drained.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { ran++; });
  pool.submit([] { throw std::runtime_error("task failure"); });
  for (int i = 0; i < 8; ++i) pool.submit([&] { ran++; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // the failure never cancels other tasks
}

TEST(ThreadPoolTest, PoolStaysUsableAfterTaskFailure) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failure"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was consumed by the rethrow: the pool accepts new work
  // and the next wait_idle is clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 4; ++i) pool.submit([&] { count++; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 4);
}

TEST(DeviceSpecTest, PresetsMatchTable1Capacities) {
  EXPECT_EQ(DeviceSpec::a100_80gb().memory_bytes, 80ull << 30);
  EXPECT_EQ(DeviceSpec::l40_48gb().memory_bytes, 48ull << 30);
  EXPECT_EQ(DeviceSpec::v100_32gb().memory_bytes, 32ull << 30);
}

TEST(MemoryTrackerTest, AllocatesWithinBudget) {
  MemoryTracker tracker(DeviceSpec::host(1000));
  tracker.allocate(600);
  EXPECT_EQ(tracker.in_use(), 600u);
  tracker.allocate(400);
  EXPECT_EQ(tracker.in_use(), 1000u);
  EXPECT_EQ(tracker.peak(), 1000u);
}

TEST(MemoryTrackerTest, ThrowsOnExhaustion) {
  MemoryTracker tracker(DeviceSpec::host(1000));
  tracker.allocate(999);
  EXPECT_THROW(tracker.allocate(2), OutOfDeviceMemory);
  EXPECT_EQ(tracker.in_use(), 999u);  // failed allocation leaves state unchanged
}

TEST(MemoryTrackerTest, ReleaseAllowsReuse) {
  MemoryTracker tracker(DeviceSpec::host(100));
  tracker.allocate(100);
  tracker.release(100);
  EXPECT_NO_THROW(tracker.allocate(100));
  EXPECT_EQ(tracker.peak(), 100u);
}

TEST(MemoryTrackerTest, LeaseReleasesOnScopeExit) {
  MemoryTracker tracker(DeviceSpec::host(100));
  {
    MemoryLease lease(tracker, 80);
    EXPECT_EQ(tracker.in_use(), 80u);
  }
  EXPECT_EQ(tracker.in_use(), 0u);
}

TEST(MemoryTrackerTest, ConcurrentAllocationsNeverExceedBudget) {
  MemoryTracker tracker(DeviceSpec::host(1000));
  std::atomic<int> failures{0};
  parallel_for(0, 64, ExecPolicy{8, 1, Schedule::Dynamic}, [&](Index) {
    try {
      tracker.allocate(100);
    } catch (const OutOfDeviceMemory&) {
      failures++;
    }
  });
  EXPECT_EQ(tracker.in_use(), 1000u);  // exactly 10 succeeded
  EXPECT_EQ(failures.load(), 54);
}

}  // namespace
}  // namespace gpa
