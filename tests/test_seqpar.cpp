// Tests for the sequence-parallel extension: partitioners and the
// simulated distributed attention (§VI-A future work).

#include <gtest/gtest.h>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/sim_cluster.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::seqpar {
namespace {

TEST(PartitionTest, UniformRowsSplitsEvenly) {
  std::vector<Index> deg(100, 5);
  const auto p = partition_uniform_rows(100, 4, deg);
  ASSERT_EQ(p.parts(), 4);
  EXPECT_EQ(p.boundaries.front(), 0);
  EXPECT_EQ(p.boundaries.back(), 100);
  for (const Size w : p.work) EXPECT_EQ(w, 125u);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
}

TEST(PartitionTest, BalancedEqualsUniformOnUniformDegrees) {
  std::vector<Index> deg(64, 3);
  const auto a = partition_uniform_rows(64, 8, deg);
  const auto b = partition_balanced_nnz(64, 8, deg);
  EXPECT_EQ(a.boundaries, b.boundaries);
}

TEST(PartitionTest, BalancedBeatsUniformOnSkewedMask) {
  // Longformer-style skew: global tokens at the front make the first
  // rows vastly heavier; the paper's load-balancing motivation.
  const Index L = 512;
  const auto mask = mask_union(build_csr_local(L, LocalParams{2}),
                               build_csr_global(L, make_global({0, 1, 2, 3}, L)));
  const auto deg = degrees_of(mask);
  const auto uniform = partition_uniform_rows(L, 8, deg);
  const auto balanced = partition_balanced_nnz(L, 8, deg);
  EXPECT_LT(balanced.imbalance(), uniform.imbalance());
  EXPECT_LT(balanced.imbalance(), 1.6);
  EXPECT_GT(uniform.imbalance(), 2.0);
}

TEST(PartitionTest, BoundariesAreMonotoneAndCover) {
  const Index L = 300;
  const auto mask = build_csr_random(L, RandomParams{0.03, 5});
  const auto p = partition_balanced_nnz(L, 7, degrees_of(mask));
  EXPECT_EQ(p.boundaries.front(), 0);
  EXPECT_EQ(p.boundaries.back(), L);
  for (std::size_t i = 1; i < p.boundaries.size(); ++i) {
    EXPECT_LE(p.boundaries[i - 1], p.boundaries[i]);
  }
  Size total = 0;
  for (const Size w : p.work) total += w;
  EXPECT_EQ(total, mask.nnz());
}

TEST(PartitionTest, MorePartsThanRowsStillValid) {
  std::vector<Index> deg(3, 1);
  const auto p = partition_balanced_nnz(3, 8, deg);
  EXPECT_EQ(p.boundaries.front(), 0);
  EXPECT_EQ(p.boundaries.back(), 3);
}

TEST(PartitionTest, SinglePartOwnsEverything) {
  std::vector<Index> deg(10, 2);
  const auto p = partition_balanced_nnz(10, 1, deg);
  EXPECT_EQ(p.work[0], 20u);
}

class DistributedAttention : public ::testing::TestWithParam<Index> {};

TEST_P(DistributedAttention, MatchesSingleNodeExactly) {
  const Index nodes = GetParam();
  const Index L = 128, d = 16;
  Matrix<float> q(L, d), k(L, d), v(L, d);
  Rng rng(700);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  const auto mask = build_csr_random(L, RandomParams{0.1, 71});

  const auto part = partition_balanced_nnz(L, nodes, degrees_of(mask));
  Matrix<float> dist(L, d);
  const auto report = distributed_csr_attention(q, k, v, mask, part, dist);

  Matrix<float> expected(L, d);
  gpa::baselines::reference_attention(q, k, v, mask, expected);
  const auto rep = gpa::allclose(dist, expected, 1e-5, 1e-6);
  EXPECT_TRUE(rep.all_close) << "nodes=" << nodes << " diff " << rep.max_abs_diff;

  ASSERT_EQ(report.nodes.size(), static_cast<std::size_t>(nodes));
  Size edges = 0;
  for (const auto& nr : report.nodes) edges += nr.edges;
  EXPECT_EQ(edges, mask.nnz());
  EXPECT_GT(report.makespan_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DistributedAttention, ::testing::Values<Index>(1, 2, 4, 7));

TEST(DistributedAttention2, GatheredBytesModelFullKV) {
  const Index L = 64, d = 8;
  Matrix<float> q(L, d), k(L, d), v(L, d);
  Rng rng(701);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  const auto mask = build_csr_local(L, LocalParams{2});
  const auto part = partition_uniform_rows(L, 2, degrees_of(mask));
  Matrix<float> out(L, d);
  const auto report = distributed_csr_attention(q, k, v, mask, part, out);
  for (const auto& nr : report.nodes) {
    EXPECT_EQ(nr.gathered_bytes, 2u * L * d * sizeof(float));
  }
}

TEST(DistributedAttention2, RejectsPartialCover) {
  const Index L = 32, d = 4;
  Matrix<float> q(L, d), k(L, d), v(L, d);
  const auto mask = build_csr_local(L, LocalParams{2});
  Partition bad;
  bad.boundaries = {0, 16};  // does not reach L
  bad.work = {0};
  Matrix<float> out(L, d);
  EXPECT_THROW(distributed_csr_attention(q, k, v, mask, bad, out), InvalidArgument);
}

}  // namespace
}  // namespace gpa::seqpar
