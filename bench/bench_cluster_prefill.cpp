// Cluster ring-prefill bench: the wire path (frame codec + RPC +
// router-relayed ring rotation + deferred in-order folding) against the
// in-process sim_cluster oracle on the same NNZ-balanced partition.
// Every timed run re-checks bit-identity — a cluster bench that drifted
// numerically would be measuring a different computation.
//
// Loopback transports keep the measurement about the protocol (framing,
// copies, per-step relay) rather than kernel arithmetic or the host's
// TCP stack; tools/gpa_cli cluster-bench is the real-socket,
// real-process variant of the same comparison.

#include <cstring>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "net/cluster.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/sim_cluster.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

/// N in-process NodeServices served on threads over loopback pipes.
struct LoopbackCluster {
  std::vector<std::unique_ptr<gpa::net::NodeService>> services;
  std::vector<std::thread> threads;
  gpa::net::ClusterClient client;

  explicit LoopbackCluster(gpa::Index n) {
    for (gpa::Index i = 0; i < n; ++i) {
      auto [client_end, server_end] = gpa::net::make_loopback_pair();
      services.push_back(std::make_unique<gpa::net::NodeService>(gpa::net::NodeConfig{}));
      gpa::net::NodeService* svc = services.back().get();
      threads.emplace_back([svc, t = std::move(server_end)]() mutable { svc->serve(*t); });
      client.add_peer(static_cast<std::uint64_t>(i), std::move(client_end));
    }
  }
  ~LoopbackCluster() {
    client.shutdown_all();
    for (auto& t : threads) t.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gpa;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const Index L = args.smoke ? 256 : (args.paper_scale ? 16'384 : 4'096);
  const Index d = args.smoke ? 32 : 64;
  const std::vector<Index> node_counts = args.smoke ? std::vector<Index>{2}
                                                    : std::vector<Index>{2, 3, 4};

  // Longformer-style skew (narrow window + global front tokens): the
  // shape where NNZ-balanced partitioning and the ring actually earn
  // their keep.
  const auto mask = mask_union(build_csr_local(L, LocalParams{8}),
                               build_csr_global(L, make_global({0, 1, 2, 3}, L)));
  const auto deg = seqpar::degrees_of(mask);

  Rng rng(97);
  Matrix<float> q(L, d), k(L, d), v(L, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  std::cout << "=== Cluster ring prefill over loopback vs sim_cluster (L=" << L
            << ", d=" << d << ") ===\n";
  Table table({"nodes", "wire_s", "edges_per_s", "shard_deliveries", "sim_makespan_s",
               "bit_identical"});

  int rc = 0;
  for (const Index nodes : node_counts) {
    const auto part = seqpar::partition_balanced_nnz(L, nodes, deg);

    Matrix<float> oracle(L, d);
    const auto sim = seqpar::distributed_csr_attention(q, k, v, mask, part, oracle);

    LoopbackCluster cluster(nodes);
    Matrix<float> out;
    net::ClusterRingReport rep;
    const auto st = benchutil::run_benchmark(
        [&] { rep = cluster.client.ring_prefill(q, k, v, mask, part, false, -1.0f, out); },
        args.run);

    const bool identical =
        out.rows() == oracle.rows() && out.cols() == oracle.cols() &&
        std::memcmp(out.data(), oracle.data(), oracle.size_bytes()) == 0;
    if (!identical) rc = 1;

    Size edges = 0;
    for (const auto& nr : rep.nodes) edges += nr.edges;
    table.add_row({std::to_string(nodes), Table::fmt_seconds(st.mean),
                   Table::fmt_double(static_cast<double>(edges) / st.mean, 0),
                   std::to_string(rep.shard_deliveries),
                   Table::fmt_seconds(sim.makespan_seconds), identical ? "yes" : "NO"});
    std::cout << "  nodes=" << nodes << ": " << Table::fmt_seconds(st.mean) << "/prefill, "
              << rep.shard_deliveries << " shard deliveries, oracle "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return rc;
}
