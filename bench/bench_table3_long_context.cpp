// Regenerates Table III: long-context runtimes of FlashAttention (dense)
// vs the local and CSR graph kernels, with sparsity set by the LongNet
// rule Sf = C/L (§II-D).
//
// Paper protocol: L ∈ {1.6M, 8M, 16M, 160M}, FP16, A100; FlashAttention
// at 160M ran once with no warmup because a single iteration took over
// ten hours. CPU defaults scale L down (keeping the same Sf-vs-L rule
// shape, with the rule constant shrunk proportionally) and give the
// dense baseline the same single-run exemption at the largest sizes.
// The shape to check: flash grows quadratically; local/CSR grow
// linearly once Sf follows C/L, so the sparse kernels overtake flash as
// L grows — the paper's 0.28x -> 1.49x -> 2.99x -> 51x progression.

#include <algorithm>
#include <iostream>
#include <vector>

#include "baselines/flash_attention.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  // CPU scale: same geometry as the paper with L shrunk ~500x; the
  // LongNet constant shrinks with it so Sf(L) stays on the same curve
  // relative to the crossover.
  const std::vector<Index> lengths = args.paper_scale
                                         ? std::vector<Index>{1'600'000, 8'000'000, 16'000'000,
                                                              160'000'000}
                                         : std::vector<Index>{2'048, 4'096, 8'192};
  const double rule_c = args.paper_scale ? 2730.0 : 2730.0 / 500.0;
  const Index dk = 64;

  std::cout << "=== Table III: FlashAttention vs local vs CSR at long context (fp16) ===\n";
  Table table({"L", "algorithm", "sf", "mean_s", "speedup_vs_flash"});

  Rng rng(2024);
  for (const Index L : lengths) {
    Matrix<half_t> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);

    const double sf = std::min(1.0, rule_c / static_cast<double>(L));

    // Dense baseline: single unwarmed run at the largest sizes, like the
    // paper's 160M exception.
    benchutil::RunConfig flash_cfg = args.run;
    if (L >= (args.paper_scale ? lengths.back() : Index{8'192})) {
      flash_cfg.warmup = 0;
      flash_cfg.iterations = 1;
    }
    const auto flash_st = benchutil::run_benchmark(
        [&] { baselines::flash_attention(q, k, v, out); }, flash_cfg);
    table.add_row({std::to_string(L), "flash_dense", "-", Table::fmt_seconds(flash_st.mean),
                   "1.00"});
    std::cout << "  L=" << L << " flash: " << Table::fmt_seconds(flash_st.mean) << " s\n";

    // Local kernel at the rule's sparsity.
    const LocalParams local{local_window_for_sparsity(L, sf)};
    const double local_sf = sparsity_factor(local_nnz(L, local), L);
    const auto local_st = benchutil::run_benchmark(
        [&] { local_attention(q, k, v, local, out); }, args.run);
    table.add_row({std::to_string(L), "local", Table::fmt_double(local_sf, 3),
                   Table::fmt_seconds(local_st.mean),
                   Table::fmt_double(flash_st.mean / local_st.mean, 3)});
    std::cout << "  L=" << L << " local: " << Table::fmt_seconds(local_st.mean) << " s ("
              << Table::fmt_double(flash_st.mean / local_st.mean, 3) << "x)\n";

    // CSR on the equivalent explicit local mask ("CSR did not use the
    // same sparsity ... due to memory restrictions" at paper scale; at
    // CPU scale the same mask fits).
    const auto mask = build_csr_local(L, local);
    const auto csr_st = benchutil::run_benchmark(
        [&] { csr_attention(q, k, v, mask, out); }, args.run);
    table.add_row({std::to_string(L), "csr", Table::fmt_double(local_sf, 3),
                   Table::fmt_seconds(csr_st.mean),
                   Table::fmt_double(flash_st.mean / csr_st.mean, 3)});
    std::cout << "  L=" << L << " csr: " << Table::fmt_seconds(csr_st.mean) << " s ("
              << Table::fmt_double(flash_st.mean / csr_st.mean, 3) << "x)\n";
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
