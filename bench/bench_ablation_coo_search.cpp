// Ablation: the COO kernel's row-bound search. §V-C attributes COO's
// poor Fig. 3 performance to each row scanning the coordinate array from
// index zero ("the search cost grows as the algorithm strays farther
// from row zero"). This bench isolates that choice: the paper's linear
// scan vs a binary search vs CSR's O(1) row offsets, on identical masks.

#include <iostream>
#include <vector>

#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const std::vector<Index> lengths = args.paper_scale
                                         ? std::vector<Index>{8'192, 16'384, 24'576}
                                         : std::vector<Index>{512, 1'024, 2'048, 4'096};
  const Index dk = 64;
  const double sf = 0.02;

  std::cout << "=== Ablation: COO row search (linear = paper, binary = repaired) ===\n";
  Table table({"L", "variant", "mean_s", "vs_csr"});
  Rng rng(321);

  for (const Index L : lengths) {
    Matrix<float> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);
    const auto csr = build_csr_random(L, RandomParams{sf, 77});
    const auto coo = csr_to_coo(csr);

    const auto csr_st = benchutil::run_benchmark(
        [&] { csr_attention(q, k, v, csr, out); }, args.run);

    AttentionOptions lin;
    lin.coo_search = CooSearch::Linear;
    const auto lin_st = benchutil::run_benchmark(
        [&] { coo_attention(q, k, v, coo, out, lin); }, args.run);

    AttentionOptions bin;
    bin.coo_search = CooSearch::Binary;
    const auto bin_st = benchutil::run_benchmark(
        [&] { coo_attention(q, k, v, coo, out, bin); }, args.run);

    table.add_row({std::to_string(L), "csr", Table::fmt_seconds(csr_st.mean), "1.00"});
    table.add_row({std::to_string(L), "coo_linear_search", Table::fmt_seconds(lin_st.mean),
                   Table::fmt_double(lin_st.mean / csr_st.mean, 3)});
    table.add_row({std::to_string(L), "coo_binary_search", Table::fmt_seconds(bin_st.mean),
                   Table::fmt_double(bin_st.mean / csr_st.mean, 3)});
    std::cout << "  L=" << L << ": csr " << Table::fmt_seconds(csr_st.mean) << "  coo-linear "
              << Table::fmt_seconds(lin_st.mean) << "  coo-binary "
              << Table::fmt_seconds(bin_st.mean) << "\n";
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
