// google-benchmark microbenchmarks of the kernel inner loops: per-edge
// fold throughput across head dimensions, flash tile-width sweep
// (§VI-A's "naive and untuned" GPU parameters, explored on the CPU
// substrate), and mask-construction cost.

#include <benchmark/benchmark.h>

#include "baselines/flash_attention.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

/// Edge-fold throughput: local attention, fixed edge count, varying dk.
/// items_per_second reports edges/s; the paper's work-optimality claim
/// says runtime tracks edge count × d.
void BM_LocalEdgeThroughput(benchmark::State& state) {
  const Index L = 2048;
  const Index d = state.range(0);
  const auto in = make_inputs(L, d, 1);
  const LocalParams p{16};
  Matrix<float> out(L, d);
  for (auto _ : state) {
    local_attention(in.q, in.k, in.v, p, out, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(local_nnz(L, p)));
}
BENCHMARK(BM_LocalEdgeThroughput)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// CSR edge throughput at fixed Sf across L: work-optimality predicts
/// near-constant edges/s.
void BM_CsrEdgeThroughput(benchmark::State& state) {
  const Index L = state.range(0);
  const Index d = 64;
  const auto in = make_inputs(L, d, 2);
  const auto mask = build_csr_random(L, RandomParams{0.01, 3});
  Matrix<float> out(L, d);
  for (auto _ : state) {
    csr_attention(in.q, in.k, in.v, mask, out, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(mask.nnz()));
}
BENCHMARK(BM_CsrEdgeThroughput)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

/// Flash tile-width sweep (the Bc parameter).
void BM_FlashTileWidth(benchmark::State& state) {
  const Index L = 2048, d = 64;
  const auto in = make_inputs(L, d, 4);
  Matrix<float> out(L, d);
  baselines::FlashConfig cfg;
  cfg.tile_cols = state.range(0);
  for (auto _ : state) {
    baselines::flash_attention(in.q, in.k, in.v, out, {}, cfg);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FlashTileWidth)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/// Mask construction cost (the setup the explicit kernels amortise).
void BM_BuildCsrLocal(benchmark::State& state) {
  const Index L = state.range(0);
  for (auto _ : state) {
    auto csr = build_csr_local(L, LocalParams{32});
    benchmark::DoNotOptimize(csr.col_idx.data());
  }
}
BENCHMARK(BM_BuildCsrLocal)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BuildCsrRandom(benchmark::State& state) {
  const Index L = state.range(0);
  for (auto _ : state) {
    auto csr = build_csr_random(L, RandomParams{0.01, 5});
    benchmark::DoNotOptimize(csr.col_idx.data());
  }
}
BENCHMARK(BM_BuildCsrRandom)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
