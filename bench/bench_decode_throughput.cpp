// Incremental-decode benchmark: per-token cost of a cached
// SessionManager::decode_step against the only alternative an
// uncached server has — recomputing the full causal attention over the
// whole sequence to produce one new token.
//
// Cells: seq_len ∈ {128, 512, 2048} × the fig3 mask-pattern family
// (random CSR, local window, dilated-1D, global-minus-local) plus the
// composed local ∘ global longformer chain (a chained-mask session
// folding both components per decode step). For each cell the session
// is prefilled to L tokens, then decode steps are timed appending
// tokens L..L+iters (cost O(row-nnz·d) against paged K/V); the
// recompute arm times one full causal kernel call at length L+1 (cost
// O(causal-nnz·d)). Both arms run single-threaded on the
// same dispatch arm, so the ratio isolates the cache, not the
// parallelism — the acceptance gate wants cached ≥10× cheaper at
// L ≥ 512 on at least one pattern.
//
// Every (pattern, L) cell runs twice — fp32 pages and fp16 (half-width)
// pages — against the same uncached recompute arm: the fp16 cells
// measure the widen-on-load decode fold, and the capacity section of
// the JSON records what the halved bytes-per-token buys in cached
// sessions per device (H100 / RTX 4090, from the memory model).
//
//   bench_decode_throughput [--smoke] [--csv f] [--json f]
//
// --json writes the gpa-bench-decode/v3 records (BENCH_decode.json),
// with the process's end-of-run metrics snapshot embedded — the
// kvcache.decode.* counters cross-check how many steps/edges the run
// actually folded against the per-cell row_nnz claims.

#include <functional>
#include <sstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/composed.hpp"
#include "core/graph_attention.hpp"
#include "kvcache/kvcache.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;

struct PatternCase {
  std::string name;
  kvcache::MaskSpec spec;
  /// Full causal recompute of one output at length L (the uncached arm).
  std::function<void(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                     Matrix<float>&, const AttentionOptions&)>
      full_kernel;
};

std::vector<PatternCase> make_patterns(Index L) {
  std::vector<PatternCase> cases;
  {
    auto mask = std::make_shared<const Csr<float>>(
        build_csr_random(L + 256, RandomParams{0.01, 7}));
    auto sliced = std::make_shared<const Csr<float>>(csr_leading_slice(*mask, L + 1));
    cases.push_back({"csr", kvcache::MaskSpec::make_csr(mask),
                     [sliced](const auto& q, const auto& k, const auto& v, auto& o,
                              const AttentionOptions& opts) {
                       csr_attention(q, k, v, *sliced, o, opts);
                     }});
  }
  {
    const LocalParams p{128};
    cases.push_back({"local", kvcache::MaskSpec::make_local(p),
                     [p](const auto& q, const auto& k, const auto& v, auto& o,
                         const AttentionOptions& opts) { local_attention(q, k, v, p, o, opts); }});
  }
  {
    const Dilated1DParams p{256, 3};
    cases.push_back({"dilated1d", kvcache::MaskSpec::make_dilated1d(p),
                     [p](const auto& q, const auto& k, const auto& v, auto& o,
                         const AttentionOptions& opts) {
                       dilated1d_attention(q, k, v, p, o, opts);
                     }});
  }
  {
    GlobalMinusLocalParams p;
    p.global.tokens = {0, 1, 2, 3};
    p.local.window = 1;
    cases.push_back({"global", kvcache::MaskSpec::make_global(p),
                     [p](const auto& q, const auto& k, const auto& v, auto& o,
                         const AttentionOptions& opts) {
                       global_attention(q, k, v, p, o, opts);
                     }});
  }
  {
    // Chained-mask session: longformer local ∘ global, both components
    // implicit (reach 32 each side, 4 global prefix tokens). The
    // recompute arm is one full composed kernel call at L+1.
    const Index reach = 32, num_global = 4;
    auto lf1 = std::make_shared<const ComposedMask>(make_longformer(L + 1, reach, num_global));
    cases.push_back({"composed", kvcache::MaskSpec::compose(*lf1),
                     [lf1](const auto& q, const auto& k, const auto& v, auto& o,
                           const AttentionOptions& opts) {
                       composed_attention(q, k, v, *lf1, o, opts);
                     }});
  }
  return cases;
}

/// Sessions-per-device at fp32 vs fp16 page storage, from the memory
/// model: the capacity half of the half-width-pages claim (the latency
/// half is the f16 records). One "session" is `ctx` cached tokens.
std::string capacity_json(Index d, Index page_size, Index ctx) {
  std::ostringstream os;
  os << "{\"head_dim\": " << d << ", \"page_size\": " << page_size
     << ", \"context_len\": " << ctx << ", \"budget_fraction\": 1, \"devices\": [";
  const Index pages_per_session = (ctx + page_size - 1) / page_size;
  bool first = true;
  for (const DeviceSpec& dev : {DeviceSpec::h100_80gb(), DeviceSpec::rtx4090_24gb()}) {
    const auto f32 = kvcache::pool_config_for_device(dev, d, page_size, 1.0, DType::F32);
    const auto f16 = kvcache::pool_config_for_device(dev, d, page_size, 1.0, DType::F16);
    if (!first) os << ", ";
    first = false;
    os << "{\"device\": \"" << dev.name << "\", \"f32_sessions\": "
       << f32.num_pages / pages_per_session
       << ", \"f16_sessions\": " << f16.num_pages / pages_per_session << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*default_warmup=*/3,
                                                /*default_iters=*/10);
  const Index d = 64;
  const std::vector<Index> lengths = args.smoke ? std::vector<Index>{64}
                                                : std::vector<Index>{128, 512, 2048};
  // Single-threaded, fixed dispatch arm on both sides: the ratio should
  // measure the cache, not scheduling.
  AttentionOptions opts;
  opts.policy = ExecPolicy::serial();

  benchutil::Table table(
      {"pattern", "L", "dtype", "row_nnz", "cached us/tok", "recompute us/tok", "speedup"});
  std::vector<benchutil::DecodeBenchRecord> records;

  for (const Index L : lengths) {
    for (auto& pc : make_patterns(L)) {
      Rng rng(42);
      Matrix<float> q(L + 64, d), k(L + 64, d), v(L + 64, d);
      fill_uniform(q, rng);
      fill_uniform(k, rng);
      fill_uniform(v, rng);
      auto slice = [&](const Matrix<float>& m, Index rows) {
        Matrix<float> s(rows, d);
        for (Index i = 0; i < rows; ++i) {
          for (Index p = 0; p < d; ++p) s(i, p) = m(i, p);
        }
        return s;
      };

      // --- uncached arm: full causal recompute at length L+1 ---------
      const auto qf = slice(q, L + 1), kf = slice(k, L + 1), vf = slice(v, L + 1);
      Matrix<float> full_out(L + 1, d);
      AttentionOptions copts = opts;
      copts.causal = true;
      const auto recompute = benchutil::run_benchmark(
          [&] { pc.full_kernel(qf, kf, vf, full_out, copts); }, args.run);

      // --- cached arm, per page dtype: prefill L, time decode steps --
      for (const DType dtype : {DType::F32, DType::F16}) {
        kvcache::SessionManager::Config mc;
        mc.pool.page_size = 16;
        mc.pool.head_dim = d;
        mc.pool.num_pages = (L + 256) / 16 + 4;
        mc.pool.dtype = dtype;
        mc.opts = opts;
        kvcache::SessionManager mgr(mc);
        mgr.create(1, pc.spec);
        Matrix<float> prompt_out(L, d);
        {
          const auto qp = slice(q, L), kp = slice(k, L), vp = slice(v, L);
          mgr.prefill(1, qp, kp, vp, prompt_out);
        }
        Index pos = L;
        Index row_nnz = 0;
        std::vector<float> out_row(static_cast<std::size_t>(d));
        const auto cached = benchutil::run_benchmark(
            [&] {
              // Each iteration appends one real token (the cache grows,
              // as it would in production); 64 spare rows bound the growth.
              const Index t = std::min<Index>(pos, L + 63);
              row_nnz = mgr.decode_step(1, q.row(t), k.row(t), v.row(t), out_row.data());
              ++pos;
            },
            args.run);

        const double cached_us = cached.mean * 1e6;
        const double recompute_us = recompute.mean * 1e6;
        const double speedup = cached_us > 0.0 ? recompute_us / cached_us : 0.0;
        const std::string dtype_name = dtype == DType::F16 ? "f16" : "f32";

        table.add_row({pc.name, std::to_string(L), dtype_name, std::to_string(row_nnz),
                       std::to_string(cached_us), std::to_string(recompute_us),
                       std::to_string(speedup)});

        benchutil::DecodeBenchRecord rec;
        rec.pattern = pc.name;
        rec.seq_len = L;
        rec.head_dim = d;
        rec.row_nnz = row_nnz;
        // Causal edge count of the recompute arm (what it must visit).
        Size causal = 0;
        for (Index i = 0; i <= L; ++i) {
          pc.spec.for_each_causal(i, [&](Index, float) { ++causal; });
        }
        rec.causal_nnz = causal;
        rec.page_dtype = dtype_name;
        rec.cached_us_per_token = cached_us;
        rec.recompute_us_per_token = recompute_us;
        rec.speedup = speedup;
        records.push_back(std::move(rec));
      }
    }
  }

  std::cout << "decode_step (cached, paged K/V) vs full causal recompute, d=" << d
            << ", serial dispatch, simd=" << simd::simd_backend()
            << ", hw_concurrency=" << std::thread::hardware_concurrency() << "\n";
  table.print();

  if (!args.csv_path.empty()) table.write_csv(args.csv_path);
  if (!args.json_path.empty()) {
    const std::string host =
        "hw_concurrency=" + std::to_string(std::thread::hardware_concurrency()) +
        " single-core-regime";
    benchutil::write_decode_bench_json(args.json_path, records, host,
                                       std::string(parallel_backend()),
                                       std::string(simd::simd_backend()),
                                       obs::Registry::global().snapshot().to_json(),
                                       capacity_json(d, 16, 2048));
    std::cout << "wrote " << args.json_path << "\n";
  }
  return 0;
}
