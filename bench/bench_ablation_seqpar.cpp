// Ablation: sequence partitioning for the distributed extension
// (§VI-A): uniform-rows vs NNZ-balanced contiguous partitions on a
// skewed (Longformer-style) mask, measured as simulated-cluster makespan
// and work imbalance.

#include <iostream>
#include <vector>

#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/ring_attention.hpp"
#include "seqpar/sim_cluster.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using namespace gpa::seqpar;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/0, /*iters=*/3);

  const Index L = args.paper_scale ? 32'768 : 4'096;
  const Index dk = 64;

  // Longformer-style skew: narrow local window + a handful of global
  // tokens concentrated at the front.
  const auto mask = mask_union(build_csr_local(L, LocalParams{8}),
                               build_csr_global(L, make_global({0, 1, 2, 3}, L)));
  const auto deg = degrees_of(mask);

  Rng rng(246);
  Matrix<float> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  std::cout << "=== Ablation: uniform vs NNZ-balanced sequence partitioning (L=" << L
            << ") ===\n";
  Table table({"nodes", "partitioner", "work_imbalance", "makespan_s", "time_imbalance"});

  for (const Index nodes : {2, 4, 8}) {
    struct Entry {
      const char* name;
      Partition part;
    };
    Entry entries[] = {{"uniform_rows", partition_uniform_rows(L, nodes, deg)},
                       {"balanced_nnz", partition_balanced_nnz(L, nodes, deg)}};
    for (auto& e : entries) {
      double makespan = 0.0, imb = 0.0;
      const auto st = benchutil::run_benchmark(
          [&] {
            const auto report = distributed_csr_attention(q, k, v, mask, e.part, out);
            makespan = report.makespan_seconds;
            imb = report.imbalance;
          },
          args.run);
      (void)st;
      table.add_row({std::to_string(nodes), e.name, Table::fmt_double(e.part.imbalance(), 4),
                     Table::fmt_seconds(makespan), Table::fmt_double(imb, 4)});
      std::cout << "  nodes=" << nodes << " " << e.name << ": work imb "
                << Table::fmt_double(e.part.imbalance(), 3) << ", makespan "
                << Table::fmt_seconds(makespan) << "\n";
    }
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);

  // Ring execution: all-gather (full K/V per node) vs ring rotation
  // (one shard per node) — same arithmetic, very different memory and
  // communication profiles.
  std::cout << "\n--- ring rotation vs all-gather (memory / communication model) ---\n";
  Table ring_table({"nodes", "allgather_kv_bytes_per_node", "ring_peak_kv_bytes",
                    "ring_total_comm_bytes", "ring_s"});
  for (const Index nodes : {2, 4, 8}) {
    const auto part = partition_uniform_rows(L, nodes, deg);
    RingReport rr;
    const auto st = benchutil::run_benchmark(
        [&] { rr = ring_csr_attention(q, k, v, mask, part, out); }, args.run);
    const Size allgather = 2 * static_cast<Size>(L) * static_cast<Size>(dk) * sizeof(float);
    ring_table.add_row({std::to_string(nodes), std::to_string(allgather),
                        std::to_string(rr.peak_node_kv_bytes),
                        std::to_string(rr.total_comm_bytes), Table::fmt_seconds(st.mean)});
  }
  ring_table.print();
  ring_table.write_csv(args.csv_path);
  return 0;
}
