// Regenerates Figure 5: FlashAttention vs local graph attention as the
// context length doubles, under two protocols —
//   left plot:  constant window size {5, 50, 500} (sparsity rises with L)
//   right plot: constant sparsity factor {1e-2, 1e-3, 1e-4} (window
//               solved per L)
// FP16 storage, like the paper. CPU defaults run L from 1k to 16k
// (paper: 65k to 2M); the dense baseline gets fewer iterations at the
// top sizes so the sweep finishes. Shapes to check: constant window ->
// local linear vs flash quadratic (gap grows); constant Sf -> local
// still wins beyond the crossover, by a growing factor (paper: 1.41x at
// 65k -> 4.46x at 2M for Sf = 1e-4).

#include <iostream>
#include <vector>

#include "baselines/flash_attention.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  std::vector<Index> lengths;
  for (Index L = args.paper_scale ? 65'536 : 1'024;
       L <= (args.paper_scale ? 2'097'152 : 8'192); L *= 2) {
    lengths.push_back(L);
  }
  const Index dk = 64;
  const std::vector<Index> windows = {5, 50, 500};
  const std::vector<double> sparsities = {1e-2, 1e-3, 1e-4};

  std::cout << "=== Figure 5: FlashAttention vs local attention (fp16) ===\n";
  Table table({"protocol", "setting", "L", "algorithm", "mean_s"});
  Rng rng(777);

  for (const Index L : lengths) {
    Matrix<half_t> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);

    // Dense baseline measured once per L (it has no window/Sf knob).
    benchutil::RunConfig flash_cfg = args.run;
    if (!args.paper_scale && L >= 4'096) {
      flash_cfg.warmup = 0;
      flash_cfg.iterations = 1;  // the paper's long-run exemption
    }
    const auto flash_st = benchutil::run_benchmark(
        [&] { baselines::flash_attention(q, k, v, out); }, flash_cfg);
    table.add_row({"both", "-", std::to_string(L), "flash_dense",
                   Table::fmt_seconds(flash_st.mean)});
    std::cout << "  L=" << L << " flash: " << Table::fmt_seconds(flash_st.mean) << " s\n";

    // Left plot: constant window.
    for (const Index w : windows) {
      const LocalParams p{w + 1};  // window = reach+1 ("length a token can see behind or ahead")
      const auto st = benchutil::run_benchmark(
          [&] { local_attention(q, k, v, p, out); }, args.run);
      table.add_row({"const_window", std::to_string(w), std::to_string(L), "local",
                     Table::fmt_seconds(st.mean)});
    }

    // Right plot: constant sparsity, window solved per L.
    for (const double sf : sparsities) {
      const LocalParams p{local_window_for_sparsity(L, sf)};
      const auto st = benchutil::run_benchmark(
          [&] { local_attention(q, k, v, p, out); }, args.run);
      table.add_row({"const_sparsity", Table::fmt_double(sf), std::to_string(L), "local",
                     Table::fmt_seconds(st.mean)});
      std::cout << "  L=" << L << " local(sf=" << sf << "): " << Table::fmt_seconds(st.mean)
                << " s (" << Table::fmt_double(flash_st.mean / st.mean, 3) << "x)\n";
    }
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
