// Regenerates Figure 6: runtime on the popular composed masks of
// Figure 2 as context length grows —
//   Longformer (local + global):        SDP vs (local ; global) vs CSR
//   Longformer (dilated + global):      SDP vs CSR
//   BigBird (local + global + random):  SDP vs (local ; global ; CSR) vs CSR
//
// Paper parameters (§V-F): local reach 50 each direction, 3 global
// tokens, dilation factor 2 (effective reach 100), random Sf = 0.001,
// L ∈ {30k, 35k, 40k, 45k}. CPU defaults shrink L (the dense SDP
// baseline is O(L²·d) on one core); --paper-scale restores. Shapes to
// check: SDP identical across masks at a given L; graph kernels improve
// relative to SDP as L grows; single fused CSR >= sequential chains.

#include <iostream>
#include <vector>

#include "baselines/sdp_masked.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/composed.hpp"
#include "sparse/build.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/2);

  const std::vector<Index> lengths = args.paper_scale
                                         ? std::vector<Index>{30'000, 35'000, 40'000, 45'000}
                                         : std::vector<Index>{3'000, 4'000, 5'000, 6'000};
  const Index dk = 64;
  const Index reach = 50;       // "local size was set to 50 in each direction"
  const Index num_global = 3;   // "three global tokens were used"
  const Index dilation = 2;     // "dilation factor of two"
  const double random_sf = 0.001;

  std::cout << "=== Figure 6: popular attention masks (Longformer / BigBird) ===\n";
  Table table({"mask", "L", "approach", "sf", "mean_s"});
  Rng rng(555);

  for (const Index L : lengths) {
    Matrix<float> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
    fill_uniform(q, rng);
    fill_uniform(k, rng);
    fill_uniform(v, rng);

    const auto longformer = make_longformer(L, reach, num_global);
    const auto longformer_dil = make_longformer_dilated(L, reach, dilation, num_global);
    const auto bigbird = make_bigbird(L, reach, num_global, random_sf);

    // SDP is measured once per L and reported for each mask — the paper
    // observes "for all attention mask implementations the SDP function
    // has identical average runtimes for set context lengths".
    const auto sdp_dense = csr_to_dense(longformer.fused);
    const auto sdp_st = benchutil::run_benchmark(
        [&] { baselines::sdp_masked_attention(q, k, v, sdp_dense, out); }, args.run);
    std::cout << "  L=" << L << " sdp: " << Table::fmt_seconds(sdp_st.mean) << " s\n";

    auto bench_mask = [&](const ComposedMask& m, bool with_chain) {
      table.add_row({m.name, std::to_string(L), "sdp_masked", Table::fmt_double(m.sparsity(), 4),
                     Table::fmt_seconds(sdp_st.mean)});
      if (with_chain) {
        const auto chain_st = benchutil::run_benchmark(
            [&] { composed_attention(q, k, v, m, out); }, args.run);
        table.add_row({m.name, std::to_string(L), "sequential_kernels",
                       Table::fmt_double(m.sparsity(), 4), Table::fmt_seconds(chain_st.mean)});
        std::cout << "  L=" << L << " " << m.name
                  << " chain: " << Table::fmt_seconds(chain_st.mean) << " s\n";
      }
      const auto csr_st = benchutil::run_benchmark(
          [&] { fused_csr_attention(q, k, v, m, out); }, args.run);
      table.add_row({m.name, std::to_string(L), "csr", Table::fmt_double(m.sparsity(), 4),
                     Table::fmt_seconds(csr_st.mean)});
      std::cout << "  L=" << L << " " << m.name << " csr: " << Table::fmt_seconds(csr_st.mean)
                << " s\n";
    };

    bench_mask(longformer, /*with_chain=*/true);        // left plot
    bench_mask(longformer_dil, /*with_chain=*/false);   // middle plot (SDP vs CSR)
    bench_mask(bigbird, /*with_chain=*/true);           // right plot
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
