// Ablation: row scheduling under work imbalance. §V-C explains the
// global kernel's slower scaling by per-row work skew: global rows are
// (nearly) dense while ordinary rows touch only the global columns, and
// "the algorithm can only be as fast as its slowest block". With static
// scheduling one worker inherits all the heavy rows; dynamic scheduling
// redistributes them. (On a single-core host the two coincide — the
// imbalance statistics are still printed to quantify the skew.)

#include <iostream>
#include <thread>
#include <vector>

#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "graph/degree.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const Index L = args.paper_scale ? 16'384 : 4'096;
  const Index dk = 64;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  // Global mask: a few fully-dense rows + sparse columns elsewhere.
  GlobalMinusLocalParams gp;
  std::vector<Index> tokens;
  for (Index t = 0; t < 8; ++t) tokens.push_back(t * (L / 8));
  gp.global = make_global(tokens, L);
  gp.local = make_local(1);

  const auto stats = degree_stats(global_minus_local_degrees(L, gp));
  std::cout << "=== Ablation: static vs dynamic row scheduling (global mask, L=" << L
            << ", threads=" << hw << ") ===\n"
            << "row-degree skew: max " << stats.max_degree << ", mean "
            << Table::fmt_double(stats.mean, 4) << ", imbalance "
            << Table::fmt_double(stats.imbalance, 4) << "\n";

  Rng rng(987);
  Matrix<float> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  Table table({"schedule", "grain", "mean_s", "stddev_s"});
  for (const Schedule sched : {Schedule::Static, Schedule::Dynamic}) {
    for (const Index grain : {16, 64, 256}) {
      AttentionOptions opts;
      opts.policy = ExecPolicy{0, grain, sched};
      const auto st = benchutil::run_benchmark(
          [&] { global_attention(q, k, v, gp, out, opts); }, args.run);
      table.add_row({sched == Schedule::Static ? "static" : "dynamic", std::to_string(grain),
                     Table::fmt_seconds(st.mean), Table::fmt_seconds(st.stddev)});
    }
  }

  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
