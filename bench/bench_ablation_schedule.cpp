// Ablation: row scheduling under work imbalance. §V-C explains the
// global kernel's slower scaling by per-row work skew: global rows are
// (nearly) dense while ordinary rows touch only the global columns, and
// "the algorithm can only be as fast as its slowest block". With static
// scheduling one worker inherits all the heavy rows; dynamic scheduling
// redistributes them. The csr cells are the control: a random mask has
// near-uniform row degrees, so dynamic scheduling buys nothing there
// and its chunk-handout overhead is visible instead. (On a single-core
// host the schedules coincide — the imbalance statistics still
// quantify the skew, and the JSON records carry the backend so runs
// from the OpenMP and std::thread builds merge into one trajectory
// file: BENCH_schedule.json.)

#include <iostream>
#include <thread>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "graph/degree.hpp"
#include "parallel/parallel_for.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const Index L = args.paper_scale ? 16'384 : (args.smoke ? 1'024 : 4'096);
  const Index dk = 64;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  // Global mask: a few fully-dense rows + sparse columns elsewhere (the
  // skewed workload). CSR random mask: near-uniform degrees (the control).
  GlobalMinusLocalParams gp;
  std::vector<Index> tokens;
  for (Index t = 0; t < 8; ++t) tokens.push_back(t * (L / 8));
  gp.global = make_global(tokens, L);
  gp.local = make_local(1);
  const auto csr_mask = build_csr_random(L, RandomParams{0.01, 11});

  const auto stats = degree_stats(global_minus_local_degrees(L, gp));
  std::cout << "=== Ablation: static vs dynamic row scheduling (L=" << L
            << ", threads=" << hw << ", backend=" << parallel_backend() << ") ===\n"
            << "global-mask row-degree skew: max " << stats.max_degree << ", mean "
            << Table::fmt_double(stats.mean, 4) << ", imbalance "
            << Table::fmt_double(stats.imbalance, 4) << "\n";

  Rng rng(987);
  Matrix<float> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  Table table({"kernel", "schedule", "grain", "mean_s", "stddev_s"});
  std::vector<benchutil::ScheduleBenchRecord> records;
  auto run_cell = [&](const char* kernel, const Schedule sched, const Index grain,
                      const std::function<void(const AttentionOptions&)>& call) {
    AttentionOptions opts;
    opts.policy = ExecPolicy{0, grain, sched};
    const auto st = benchutil::run_benchmark([&] { call(opts); }, args.run);
    const char* sched_name = sched == Schedule::Static   ? "static"
                             : sched == Schedule::Dynamic ? "dynamic"
                                                          : "auto";
    table.add_row({kernel, sched_name, std::to_string(grain), Table::fmt_seconds(st.mean),
                   Table::fmt_seconds(st.stddev)});
    benchutil::ScheduleBenchRecord rec;
    rec.backend = std::string(parallel_backend());
    rec.kernel = kernel;
    rec.schedule = sched_name;
    rec.grain = grain;
    rec.seq_len = L;
    rec.hw_threads = hw;
    rec.mean_s = st.mean;
    rec.stddev_s = st.stddev;
    records.push_back(std::move(rec));
  };

  for (const Schedule sched : {Schedule::Static, Schedule::Dynamic}) {
    for (const Index grain : {16, 64, 256}) {
      run_cell("global_attention", sched, grain,
               [&](const AttentionOptions& o) { global_attention(q, k, v, gp, out, o); });
      run_cell("csr_attention", sched, grain,
               [&](const AttentionOptions& o) { csr_attention(q, k, v, csr_mask, out, o); });
    }
  }
  // The auto-tuned cells (grain 0 = derived): the point of the ablation
  // grid is that auto should land near the best hand-picked cell of each
  // kernel — dynamic for the skewed global mask, static for the uniform
  // csr control.
  run_cell("global_attention", Schedule::Auto, 0,
           [&](const AttentionOptions& o) { global_attention(q, k, v, gp, out, o); });
  run_cell("csr_attention", Schedule::Auto, 0,
           [&](const AttentionOptions& o) { csr_attention(q, k, v, csr_mask, out, o); });

  table.print();
  table.write_csv(args.csv_path);
  if (!args.json_path.empty()) {
    benchutil::write_schedule_bench_json(args.json_path, records);
    std::cout << "json: " << args.json_path << "\n";
  }
  return 0;
}
