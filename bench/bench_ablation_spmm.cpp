// Ablation: fused online-softmax kernel vs the GraphBLAS-style two-phase
// pipeline (SDDMM -> CSR softmax -> SpMM) that §VI-A names as a future
// direction. Same O(Sf·L²·d) work; the two-phase path pays an extra
// O(Sf·L²) materialisation and a second pass over V.

#include <iostream>
#include <vector>

#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "core/spmm_attention.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const Index L = args.paper_scale ? 16'384 : 4'096;
  const Index dk = 64;
  const std::vector<double> sfs = {0.001, 0.01, 0.05, 0.1};

  std::cout << "=== Ablation: fused kernel vs two-phase SpMM pipeline (L=" << L << ") ===\n";
  Table table({"sf", "fused_s", "two_phase_s", "two_phase_overhead"});
  Rng rng(654);
  Matrix<float> q(L, dk), k(L, dk), v(L, dk), out(L, dk);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  for (const double sf : sfs) {
    const auto mask = build_csr_random(L, RandomParams{sf, 31});
    const auto fused_st = benchutil::run_benchmark(
        [&] { csr_attention(q, k, v, mask, out); }, args.run);
    const auto two_st = benchutil::run_benchmark(
        [&] { spmm_attention(q, k, v, mask, out); }, args.run);
    table.add_row({Table::fmt_double(sf), Table::fmt_seconds(fused_st.mean),
                   Table::fmt_seconds(two_st.mean),
                   Table::fmt_double(two_st.mean / fused_st.mean, 3)});
    std::cout << "  sf=" << sf << ": fused " << Table::fmt_seconds(fused_st.mean)
              << "  two-phase " << Table::fmt_seconds(two_st.mean) << "\n";
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
