// Regenerates Figure 4 (theoretical max context length vs sparsity
// factor, FP32/FP16, dk ∈ {64, 128}) and Table II (max L at Sf = 1e-4,
// including the Llama-3 32-head geometry), plus the §II-D LongNet
// sparsity table. Purely analytic — runs in milliseconds and matches the
// paper's A100-80GB numbers (see EXPERIMENTS.md for the per-cell
// comparison).
//
// Flags: --csv <path>, --table2 (only the table), --sparsity-table.

#include <cstring>
#include <iostream>
#include <string>

#include "benchutil/table.hpp"
#include "memmodel/memory_model.hpp"

namespace {

using namespace gpa;
using namespace gpa::memmodel;
using benchutil::Table;

std::string fmt_L(Index v) { return v < 0 ? "Unsupported" : std::to_string(v); }

void print_fig4(const DeviceSpec& dev, DType dt, Index dk, const std::string& csv) {
  std::cout << "\n=== Figure 4: max context length vs Sf — " << dtype_name(dt)
            << ", dk = " << dk << ", " << dev.name << " ===\n";
  Table table({"sf", "sdp_masked", "csr", "coo", "flash_dense", "local_1d_2d", "global"});
  for (const double sf : {1.0, 0.5, 0.1, 0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001}) {
    ModelConfig cfg{dt, dk, 1, sf};
    const Index flash = dt == DType::F16 ? max_context_length(Algo::FlashDense, dev, cfg) : -1;
    table.add_row({Table::fmt_double(sf),
                   fmt_L(max_context_length(Algo::SdpMasked, dev, cfg)),
                   fmt_L(max_context_length(Algo::Csr, dev, cfg)),
                   fmt_L(max_context_length(Algo::Coo, dev, cfg)), fmt_L(flash),
                   fmt_L(max_context_length(Algo::Local, dev, cfg)),
                   fmt_L(max_context_length(Algo::Global, dev, cfg))});
  }
  table.print();
  table.write_csv(csv);
}

void print_table2(const DeviceSpec& dev, const std::string& csv) {
  std::cout << "\n=== Table II: theoretical max context lengths, Sf = 1e-4, " << dev.name
            << " ===\n";
  Table table({"dtype", "sf", "dk", "heads", "max_sdp", "max_csr", "max_coo", "max_flash",
               "max_local", "max_global", "max_dilated1d", "max_dilated2d"});
  struct RowCfg {
    DType dt;
    Index dim;
    Index heads;
  };
  const RowCfg rows[] = {{DType::F32, 64, 1},   {DType::F32, 128, 1}, {DType::F32, 4096, 32},
                         {DType::F16, 64, 1},   {DType::F16, 128, 1}, {DType::F16, 4096, 32}};
  for (const auto& rc : rows) {
    const Table2Row r = table2_row(dev, ModelConfig{rc.dt, rc.dim, rc.heads, 1e-4});
    table.add_row({std::string(dtype_name(rc.dt)), "0.0001", std::to_string(rc.dim),
                   std::to_string(rc.heads), fmt_L(r.sdp), fmt_L(r.csr), fmt_L(r.coo),
                   fmt_L(r.flash), fmt_L(r.local), fmt_L(r.global), fmt_L(r.dilated1d),
                   fmt_L(r.dilated2d)});
  }
  table.print();
  table.write_csv(csv);
}

void print_sparsity_table(const std::string& csv) {
  std::cout << "\n=== Section II-D: LongNet rule Sf = 2730/L ===\n";
  Table table({"L", "sf"});
  for (const auto& e : longnet_sparsity_table()) {
    table.add_row({std::to_string(e.seq_len), Table::fmt_double(e.sf, 3)});
  }
  table.print();
  table.write_csv(csv);
}

}  // namespace

int main(int argc, char** argv) {
  bool only_table2 = false;
  bool only_sparsity = false;
  std::string csv;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--table2") only_table2 = true;
    if (a == "--sparsity-table") only_sparsity = true;
    if (a == "--csv" && i + 1 < argc) csv = argv[++i];
  }

  const auto dev = gpa::DeviceSpec::a100_80gb();
  if (only_sparsity) {
    print_sparsity_table(csv);
    return 0;
  }
  if (only_table2) {
    print_table2(dev, csv);
    return 0;
  }
  for (const auto dt : {gpa::DType::F32, gpa::DType::F16}) {
    for (const gpa::Index dk : {64, 128}) print_fig4(dev, dt, dk, csv);
  }
  print_table2(dev, csv);
  print_sparsity_table(csv);
  return 0;
}
