// Regenerates Figure 3: microbenchmark of all six graph-processing
// algorithms plus masked SDP across context length (L), embedded
// dimension (dk), and sparsity factor (Sf).
//
// Paper protocol (§V-C): L ∈ {8192, 16384, 24576}, dk ∈ {64, 128, 256},
// Sf ∈ (0, 1], dilation 1, window/block solved from Sf, COO restricted
// to the smallest L and Sf ≤ 0.4, 10 warmup + 15 timed runs.
//
// CPU defaults shrink L and the Sf grid so the run finishes in minutes
// on one core; --paper-scale restores the full protocol. The shape to
// look for (§V-C analysis): SDP flat in Sf; graph kernels decreasing;
// crossover near Sf ≈ 0.01; COO far slower (linear row search); global
// decreasing more slowly (row imbalance).

#include <iostream>
#include <vector>

#include "baselines/sdp_masked.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, Rng& rng) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const std::vector<Index> lengths =
      args.paper_scale ? std::vector<Index>{8'192, 16'384, 24'576}
                       : std::vector<Index>{512, 1'024, 2'048};
  const std::vector<Index> dims = args.paper_scale ? std::vector<Index>{64, 128, 256}
                                                   : std::vector<Index>{64, 128};
  const std::vector<double> sfs = args.paper_scale
                                      ? std::vector<double>{0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}
                                      : std::vector<double>{0.001, 0.01, 0.1, 0.5};
  const double coo_sf_cap = 0.4;  // §V-C: COO only ran with Sf in (0, 0.4]
  const Index dilation = 1;       // "a dilation factor of 1 was used"

  std::cout << "=== Figure 3: runtime vs sparsity factor (per-algorithm microbenchmark) ===\n"
            << "protocol: warmup " << args.run.warmup << ", timed " << args.run.iterations
            << (args.paper_scale ? " (paper scale)" : " (CPU scale; --paper-scale for full)")
            << "\n";

  Table table({"L", "dk", "sf_target", "algorithm", "sf_actual", "mean_s", "stddev_s"});
  Rng rng(42);

  for (const Index L : lengths) {
    for (const Index dk : dims) {
      const auto in = make_inputs(L, dk, rng);
      Matrix<float> out(L, dk);

      for (const double sf : sfs) {
        auto report = [&](const char* algo, double sf_actual, const benchutil::Stats& st) {
          table.add_row({std::to_string(L), std::to_string(dk), Table::fmt_double(sf),
                         algo, Table::fmt_double(sf_actual, 4), Table::fmt_seconds(st.mean),
                         Table::fmt_seconds(st.stddev)});
          std::cout << "  L=" << L << " dk=" << dk << " sf=" << sf << " " << algo << ": "
                    << Table::fmt_seconds(st.mean) << " s\n";
        };

        // Masked SDP baseline (dense compute; flat in Sf).
        const auto sdp_mask = build_csr_random(L, RandomParams{sf, 7});
        const auto sdp_dense = csr_to_dense(sdp_mask);
        report("sdp_masked", sf, benchutil::run_benchmark(
                                     [&] {
                                       baselines::sdp_masked_attention(in.q, in.k, in.v,
                                                                       sdp_dense, out);
                                     },
                                     args.run));

        // CSR on an arbitrary (random) mask of the target sparsity.
        report("csr", sparsity_factor(sdp_mask.nnz(), L),
               benchutil::run_benchmark([&] { csr_attention(in.q, in.k, in.v, sdp_mask, out); },
                                        args.run));

        // COO: smallest L only, Sf <= 0.4 (the paper's restriction).
        if (L == lengths.front() && sf <= coo_sf_cap) {
          const auto coo = csr_to_coo(sdp_mask);
          report("coo", sparsity_factor(coo.nnz(), L),
                 benchutil::run_benchmark(
                     [&] { coo_attention(in.q, in.k, in.v, coo, out); }, args.run));
        }

        // Local: window solved to fit Sf.
        const LocalParams local{local_window_for_sparsity(L, sf)};
        report("local", sparsity_factor(local_nnz(L, local), L),
               benchutil::run_benchmark(
                   [&] { local_attention(in.q, in.k, in.v, local, out); }, args.run));

        // 1D dilation (r = 1), window solved to fit Sf.
        const Dilated1DParams d1{dilated1d_window_for_sparsity(L, dilation, sf), dilation};
        report("dilated1d", sparsity_factor(dilated1d_nnz(L, d1), L),
               benchutil::run_benchmark(
                   [&] { dilated1d_attention(in.q, in.k, in.v, d1, out); }, args.run));

        // 2D dilation (r = 1), block solved to fit Sf.
        const auto d2 =
            make_dilated2d(L, dilated2d_block_for_sparsity(L, dilation, sf), dilation);
        report("dilated2d", sparsity_factor(dilated2d_nnz(d2), L),
               benchutil::run_benchmark(
                   [&] { dilated2d_attention(in.q, in.k, in.v, d2, out); }, args.run));

        // Global: token count solved so the global rows/cols match Sf
        // (g ≈ Sf·L/2), window 1 subtracted (the smallest local size,
        // as benchmarked in the paper).
        const Index g = std::max<Index>(1, static_cast<Index>(sf * static_cast<double>(L) / 2));
        GlobalMinusLocalParams gp;
        std::vector<Index> tokens;
        for (Index t = 0; t < g; ++t) tokens.push_back(t * (L / g));
        gp.global = make_global(tokens, L);
        gp.local = make_local(1);
        report("global",
               sparsity_factor(global_minus_local_nnz(L, gp), L),
               benchutil::run_benchmark(
                   [&] { global_attention(in.q, in.k, in.v, gp, out); }, args.run));
      }
    }
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
