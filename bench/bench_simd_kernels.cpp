// SIMD backend before/after evidence: single-thread throughput of every
// vectorized kernel under each dispatch tier (scalar, avx2, avx2-fma,
// avx512), with a machine-readable BENCH_kernels.json so future PRs can
// track the perf trajectory (median seconds, estimated GB/s and Gflop/s
// per cell).
//
//   ./bench_simd_kernels [--smoke] [--json BENCH_kernels.json] [--csv f]
//
// The sweep REQUESTS all four arms unconditionally and records both the
// requested and the RESOLVED level per cell: on a host lacking an ISA
// the request clamps down and the cell shows the clamped level instead
// of going missing, so a trajectory diff can tell "slower" from "didn't
// run" without knowing the recording machine.
//
// --smoke shrinks shapes and the protocol to a CTest-sized run (it is
// registered as the tier2 `bench_kernels_smoke` test, so every dispatch
// arm stays exercised under the sanitizer matrix).
//
// Throughput estimates are deliberately simple and stated here once:
// per-edge kernels count 4·d flops (2·d dot + 2·d accumulate) and 8·d
// bytes (one K row + one V row read) per edge — 4·d bytes on the fp16
// fold cell, which is the half-width point of reading pages; GEMM
// counts 2·m·n·k flops and the ideal A+B+C traffic; softmax counts 4
// flops and 16 bytes per element (max/exp/sum/scale passes).

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/flash_attention.hpp"
#include "benchutil/json.hpp"
#include "common/half.hpp"
#include "core/kernel_common.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "parallel/parallel_for.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/gemm.hpp"
#include "tensor/softmax.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

struct Inputs {
  Matrix<float> q, k, v;
};

Inputs make_inputs(Index L, Index d, std::uint64_t seed) {
  Inputs in{Matrix<float>(L, d), Matrix<float>(L, d), Matrix<float>(L, d)};
  Rng rng(seed);
  fill_uniform(in.q, rng);
  fill_uniform(in.k, rng);
  fill_uniform(in.v, rng);
  return in;
}

/// The REQUESTED axis: every tier, whether or not this build/CPU can
/// run it — unavailable requests clamp and record the resolved level.
std::vector<SimdLevel> levels_under_test() {
  const std::vector<SimdLevel> requested = {SimdLevel::Scalar, SimdLevel::Avx2,
                                            SimdLevel::Avx2Fma, SimdLevel::Avx512};
  if (simd::available_levels().size() == 1) {
    std::cout << "note: only the scalar arm is available on this build/CPU; "
                 "vector-tier cells will record their clamped level\n";
  }
  return requested;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/2, /*iters=*/7);
  if (args.json_path.empty()) args.json_path = "BENCH_kernels.json";

  // Single-thread on purpose: the SIMD speedup must not hide behind the
  // thread count (the acceptance number is per-core).
  ExecPolicy policy = ExecPolicy::serial();

  const Index L = args.smoke ? 256 : 2048;
  const Index L_dense = args.smoke ? 128 : 1024;  // flash / gemm / softmax scale
  const double sf = 0.05;

  std::cout << "=== SIMD kernel throughput (single thread, per dispatch arm) ===\n"
            << "protocol: warmup " << args.run.warmup << ", timed " << args.run.iterations
            << (args.smoke ? " (smoke scale)" : "") << "; parallel backend "
            << parallel_backend() << ", auto simd level " << simd::simd_backend() << "\n";

  Table table({"kernel", "requested", "simd", "L", "d", "median_s", "GB/s", "Gflop/s"});
  std::vector<benchutil::KernelBenchRecord> records;
  // csr d=64 medians keyed by the REQUESTED arm, for the speedup summary.
  std::map<std::string, double> csr64_median;

  auto report = [&](const std::string& kernel, SimdLevel requested, Index seq, Index d,
                    double flops, double bytes, const benchutil::Stats& st) {
    benchutil::KernelBenchRecord r;
    r.kernel = kernel;
    r.simd = std::string(simd::level_name(simd::resolve(requested)));
    r.simd_requested = std::string(simd::level_name(requested));
    r.seq_len = seq;
    r.head_dim = d;
    r.median_s = st.median;
    r.gbytes_per_s = bytes / st.median / 1e9;
    r.gflops_per_s = flops / st.median / 1e9;
    records.push_back(r);
    table.add_row({kernel, r.simd_requested, r.simd, std::to_string(seq), std::to_string(d),
                   Table::fmt_seconds(st.median), Table::fmt_double(r.gbytes_per_s, 3),
                   Table::fmt_double(r.gflops_per_s, 3)});
    std::cout << "  " << kernel << " [" << r.simd_requested
              << (r.simd != r.simd_requested ? " -> " + r.simd : "") << "] L=" << seq
              << " d=" << d << ": " << Table::fmt_seconds(st.median) << " s, "
              << Table::fmt_double(r.gflops_per_s, 3) << " Gflop/s\n";
  };

  for (const SimdLevel level : levels_under_test()) {
    policy.simd = level;
    AttentionOptions opts;
    opts.policy = policy;

    // CSR online-softmax kernel — the acceptance cell is d=64.
    for (const Index d : {Index{64}, Index{128}}) {
      const auto in = make_inputs(L, d, 21);
      const auto mask = build_csr_random(L, RandomParams{sf, 7});
      Matrix<float> out(L, d);
      const double edges = static_cast<double>(mask.nnz());
      const auto st = benchutil::run_benchmark(
          [&] { csr_attention(in.q, in.k, in.v, mask, out, opts); }, args.run);
      report("csr_online_softmax", level, L, d, 4.0 * static_cast<double>(d) * edges,
             8.0 * static_cast<double>(d) * edges, st);
      if (d == 64) csr64_median[std::string(simd::level_name(level))] = st.median;
    }

    // Local window (the contiguous-neighbor fold).
    {
      const Index d = 64;
      const auto in = make_inputs(L, d, 22);
      const LocalParams p{16};
      Matrix<float> out(L, d);
      const double edges = static_cast<double>(local_nnz(L, p));
      const auto st = benchutil::run_benchmark(
          [&] { local_attention(in.q, in.k, in.v, p, out, opts); }, args.run);
      report("local_window", level, L, d, 4.0 * static_cast<double>(d) * edges,
             8.0 * static_cast<double>(d) * edges, st);
    }

    // Dilated 1D (strided neighbor pulls).
    {
      const Index d = 64;
      const auto in = make_inputs(L, d, 23);
      const Dilated1DParams p{17, 1};
      Matrix<float> out(L, d);
      const double edges = static_cast<double>(dilated1d_nnz(L, p));
      const auto st = benchutil::run_benchmark(
          [&] { dilated1d_attention(in.q, in.k, in.v, p, out, opts); }, args.run);
      report("dilated1d", level, L, d, 4.0 * static_cast<double>(d) * edges,
             8.0 * static_cast<double>(d) * edges, st);
    }

    // Flash baseline (tiled dense online softmax).
    {
      const Index d = 64;
      const auto in = make_inputs(L_dense, d, 24);
      Matrix<float> out(L_dense, d);
      const double edges = static_cast<double>(L_dense) * static_cast<double>(L_dense);
      const auto st = benchutil::run_benchmark(
          [&] { baselines::flash_attention(in.q, in.k, in.v, out, opts); }, args.run);
      report("flash_attention", level, L_dense, d, 4.0 * static_cast<double>(d) * edges,
             8.0 * static_cast<double>(d) * edges, st);
    }

    // GEMMs (the masked-SDP building blocks): QKᵀ shape then PV shape.
    {
      const Index m = L_dense, k = 64, n = L_dense;
      Matrix<float> a(m, k), b(n, k), c(m, n);
      Rng rng(25);
      fill_uniform(a, rng);
      fill_uniform(b, rng);
      const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                           static_cast<double>(k);
      const double bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(n) * k +
                                  static_cast<double>(m) * n);
      const auto st =
          benchutil::run_benchmark([&] { gemm_nt(a, b, c, policy); }, args.run);
      report("gemm_nt", level, m, k, flops, bytes, st);
    }
    {
      const Index m = L_dense, k = L_dense, n = 64;
      Matrix<float> a(m, k), b(k, n), c(m, n);
      Rng rng(26);
      fill_uniform(a, rng);
      fill_uniform(b, rng);
      const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                           static_cast<double>(k);
      const double bytes = 4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                                  static_cast<double>(m) * n);
      const auto st =
          benchutil::run_benchmark([&] { gemm_nn(a, b, c, policy); }, args.run);
      report("gemm_nn", level, m, n, flops, bytes, st);
    }

    // Two-pass row softmax (max/exp/sum/scale). Timed in place on the
    // same matrix: re-softmaxing normalised rows performs the identical
    // pass structure and element count, so no per-iteration copy
    // contaminates the measurement.
    {
      Matrix<float> s(L_dense, L_dense);
      Rng rng(27);
      fill_uniform(s, rng);
      const double elems = static_cast<double>(L_dense) * static_cast<double>(L_dense);
      const auto st =
          benchutil::run_benchmark([&] { softmax_rows(s, level); }, args.run);
      report("softmax_rows", level, L_dense, L_dense, 4.0 * elems, 16.0 * elems, st);
    }

    // fp16 decode fold (the half-width KV page hot loop): one query row
    // folded over L cached half K/V rows through dot_fh/axpby_h —
    // widen-on-load arithmetic, half the page traffic of the fp32 fold.
    {
      const Index d = 64;
      const auto in = make_inputs(L, d, 28);
      std::vector<half_t> kh(static_cast<std::size_t>(L) * static_cast<std::size_t>(d));
      std::vector<half_t> vh(kh.size());
      const auto& cvt = simd::ops(SimdLevel::Scalar);
      for (Index j = 0; j < L; ++j) {
        cvt.f2h(kh.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(d),
                in.k.row(j), d);
        cvt.f2h(vh.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(d),
                in.v.row(j), d);
      }
      const auto& vo = simd::ops(level);
      std::vector<float> acc(static_cast<std::size_t>(d));
      const double edges = static_cast<double>(L);
      const auto st = benchutil::run_benchmark(
          [&] {
            OnlineSoftmaxRow osr;
            std::fill(acc.begin(), acc.end(), 0.0f);
            for (Index j = 0; j < L; ++j) {
              detail::fold_edge_rows_fh(
                  in.q.row(0), kh.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(d),
                  vh.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(d), d, 0.125f,
                  1.0f, false, osr, acc.data(), vo);
            }
          },
          args.run);
      report("fp16_decode_fold", level, L, d, 4.0 * static_cast<double>(d) * edges,
             4.0 * static_cast<double>(d) * edges, st);
    }
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  benchutil::write_kernel_bench_json(args.json_path, records, std::string(parallel_backend()));
  std::cout << "\njson written: " << args.json_path << "\n";

  const auto scalar_it = csr64_median.find("scalar");
  if (scalar_it != csr64_median.end()) {
    for (const auto& [arm, median] : csr64_median) {
      if (arm == "scalar" || median <= 0.0) continue;
      std::cout << "csr_online_softmax d=64 single-thread speedup (" << arm
                << " vs scalar): " << Table::fmt_double(scalar_it->second / median, 2) << "x\n";
    }
  }
  return 0;
}
