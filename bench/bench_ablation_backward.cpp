// Ablation: training step cost. The work-optimality argument extends to
// gradients — forward and backward each touch O(Sf·L²·d) edges. This
// bench measures forward vs forward+backward across sparsity levels and
// the symmetry shortcut (local backward without a transposed mask)
// against the generic CSR path.

#include <iostream>
#include <vector>

#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "common/rng.hpp"
#include "core/backward.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using benchutil::Table;
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/3);

  const Index L = args.paper_scale ? 16'384 : 4'096;
  const Index dk = 64;

  std::cout << "=== Ablation: sparse training step (forward vs forward+backward, L=" << L
            << ") ===\n";
  Table table({"mask", "sf", "forward_s", "fwd_bwd_s", "bwd_over_fwd"});
  Rng rng(135);
  Matrix<float> q(L, dk), k(L, dk), v(L, dk), dout(L, dk);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  fill_uniform(dout, rng);

  for (const double sf : {0.001, 0.01, 0.05}) {
    const auto mask = build_csr_random(L, RandomParams{sf, 57});
    AttentionCache cache;
    AttentionGrads grads;
    const auto fwd_st = benchutil::run_benchmark(
        [&] { csr_attention_forward(q, k, v, mask, cache); }, args.run);
    const auto full_st = benchutil::run_benchmark(
        [&] {
          csr_attention_forward(q, k, v, mask, cache);
          csr_attention_backward(q, k, v, mask, cache, dout, grads);
        },
        args.run);
    table.add_row({"random_csr", Table::fmt_double(sf), Table::fmt_seconds(fwd_st.mean),
                   Table::fmt_seconds(full_st.mean),
                   Table::fmt_double(full_st.mean / fwd_st.mean, 3)});
    std::cout << "  csr sf=" << sf << ": fwd " << Table::fmt_seconds(fwd_st.mean)
              << "  fwd+bwd " << Table::fmt_seconds(full_st.mean) << "\n";
  }

  // Symmetry shortcut: local backward (no transpose) vs CSR backward on
  // the materialised window.
  const LocalParams p{local_window_for_sparsity(L, 0.01)};
  const auto win_mask = build_csr_local(L, p);
  AttentionCache cache;
  AttentionGrads grads;
  local_attention_forward(q, k, v, p, cache);
  const auto local_bwd = benchutil::run_benchmark(
      [&] { local_attention_backward(q, k, v, p, cache, dout, grads); }, args.run);
  const auto csr_bwd = benchutil::run_benchmark(
      [&] { csr_attention_backward(q, k, v, win_mask, cache, dout, grads); }, args.run);
  table.add_row({"local_symmetric_bwd", "0.01", "-", Table::fmt_seconds(local_bwd.mean), "-"});
  table.add_row({"csr_transpose_bwd", "0.01", "-", Table::fmt_seconds(csr_bwd.mean), "-"});
  std::cout << "  symmetric local bwd " << Table::fmt_seconds(local_bwd.mean)
            << " vs transpose csr bwd " << Table::fmt_seconds(csr_bwd.mean) << "\n\n";

  table.print();
  table.write_csv(args.csv_path);
  return 0;
}
