// Serving throughput-vs-latency surface: the dynamic-batching policy is
// measured, not asserted. The workload is the fig3 CSR d=64 cell family
// (random CSR mask at sparsity Sf over L×L, head_dim 64); the load
// generator sweeps the batching policy (max_batch 1 vs 8 vs 16) under
// closed-loop saturation at equal worker count, then probes one
// open-loop cell for latency under a fixed arrival schedule.
//
// What to look for: batched dispatch amortizes the per-dispatch cost
// (queue wakeups, scheduler round-trips between clients and workers —
// the CPU's analogue of kernel-launch overhead) across max_batch
// requests, so requests/sec rises with max_batch, most at the sparse
// end of the grid where the kernel itself is cheapest. The headline
// mechanism, though, is cross-item dispatch parallelism (one "SM" per
// sequence via ServerConfig::batch_policy): a batch fills idle cores a
// single request cannot, which is where the ≥3× batched-vs-unbatched
// gap appears on multi-core hosts. On a single-core host total kernel
// work bounds both arms equally and only the overhead amortization
// remains (measured ~1.05–1.25×) — the printed hardware_concurrency
// tells you which regime a recorded JSON came from.
//
//   bench_serving_throughput [--smoke] [--paper-scale] [--csv f] [--json f]
//
// --json writes the gpa-bench-serving/v2 records (BENCH_serving.json);
// each record carries hw_threads so a committed file self-identifies
// the machine class it was recorded on.

#include <iostream>
#include <thread>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "parallel/parallel_for.hpp"
#include "serve/serve.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

struct Cell {
  serve::LoadGenResult result;
  serve::StatsSnapshot stats;
};

/// Single source of truth for the batching window: greedy for batch-1
/// (a window would only tax the baseline), 50µs otherwise — under
/// saturation the backlog fills batches without waiting anyway.
constexpr std::int64_t batch_wait_us(Index max_batch) { return max_batch > 1 ? 50 : 0; }

Cell run_cell(const serve::Workload& wl, Index max_batch, int workers, Size requests,
              int clients, double arrival_hz) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 4096;
  cfg.policy.max_batch = max_batch;
  cfg.policy.max_wait = std::chrono::microseconds{batch_wait_us(max_batch)};
  serve::Server server(cfg);

  serve::LoadGenConfig lg;
  lg.requests = requests;
  lg.clients = clients;
  lg.arrival_hz = arrival_hz;
  Cell cell;
  cell.result = arrival_hz > 0.0 ? serve::run_open_loop(server, wl, lg)
                                 : serve::run_closed_loop(server, wl, lg);
  server.shutdown();
  cell.stats = server.stats();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/1);

  const Index L = args.smoke ? 128 : (args.paper_scale ? 2'048 : 512);
  const Index d = 64;  // fig3's first dk column
  const std::vector<double> sfs =
      args.smoke ? std::vector<double>{0.01} : std::vector<double>{0.0001, 0.001, 0.01};
  const std::vector<Index> batches =
      args.smoke ? std::vector<Index>{1, 8} : std::vector<Index>{1, 8, 16};
  const int workers = 1;  // equal worker count across every policy cell
  const int clients = 32;
  const Size requests = args.smoke ? 256 : 20'000;

  std::cout << "=== Serving throughput vs batching policy (CSR d=" << d << ", L=" << L
            << ", workers=" << workers << ", clients=" << clients << ") ===\n"
            << "host: " << std::thread::hardware_concurrency()
            << " hardware thread(s); batched dispatch parallelises across items, so the\n"
            << "batched-vs-unbatched gap scales with cores (1 core => overhead "
               "amortization only)\n";

  Table table({"mode", "sf", "max_batch", "completed", "rejected", "wall_s", "rps", "p50_ms",
               "p95_ms", "p99_ms", "occupancy"});
  std::vector<benchutil::ServingBenchRecord> records;

  auto record_cell = [&](const char* mode, double sf, Index max_batch, int cell_clients,
                         double arrival_hz, const Cell& cell) {
    const auto& r = cell.result;
    const auto& s = cell.stats;
    table.add_row({mode, Table::fmt_double(sf), std::to_string(max_batch),
                   std::to_string(r.completed), std::to_string(r.rejected),
                   Table::fmt_double(r.wall_s, 3), Table::fmt_double(r.rps, 1),
                   Table::fmt_double(s.latency_ms.p50, 3), Table::fmt_double(s.latency_ms.p95, 3),
                   Table::fmt_double(s.latency_ms.p99, 3),
                   Table::fmt_double(s.mean_batch_occupancy, 2)});
    benchutil::ServingBenchRecord rec;
    rec.mode = mode;
    rec.seq_len = L;
    rec.head_dim = d;
    rec.sparsity = sf;
    rec.workers = workers;
    rec.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
    rec.clients = cell_clients;
    rec.arrival_hz = arrival_hz;
    rec.max_batch = max_batch;
    rec.max_wait_us = batch_wait_us(max_batch);
    rec.completed = r.completed;
    rec.rejected = r.rejected;
    rec.wall_s = r.wall_s;
    rec.rps = r.rps;
    rec.p50_ms = s.latency_ms.p50;
    rec.p95_ms = s.latency_ms.p95;
    rec.p99_ms = s.latency_ms.p99;
    rec.mean_batch_occupancy = s.mean_batch_occupancy;
    records.push_back(std::move(rec));
  };

  for (const double sf : sfs) {
    const auto wl = serve::make_csr_workload(L, d, sf, /*seed=*/7, /*pool=*/8);
    double rps_batch1 = 0.0;
    for (const Index max_batch : batches) {
      // Scale the request count so dense cells stay minutes-free while
      // sparse cells still accumulate stable tails.
      const Size n = sf >= 0.01 && !args.smoke ? requests / 4 : requests;
      const Cell cell = run_cell(wl, max_batch, workers, n, clients, 0.0);
      record_cell("closed-loop", sf, max_batch, clients, 0.0, cell);
      if (max_batch == 1) {
        rps_batch1 = cell.result.rps;
      } else if (rps_batch1 > 0.0) {
        std::cout << "  sf=" << sf << " max_batch=" << max_batch
                  << ": speedup over batch-1 = " << cell.result.rps / rps_batch1 << "x\n";
      }
    }
  }

  // Open-loop probe: offered load ~half of the batch-8 closed-loop
  // capacity at the middle sparsity, with a deadline to exercise
  // shedding under any transient backlog.
  {
    const double sf = args.smoke ? 0.01 : 0.001;
    const auto wl = serve::make_csr_workload(L, d, sf, /*seed=*/7, /*pool=*/8);
    const double rate = args.smoke ? 500.0 : 2'000.0;
    const Size n = args.smoke ? 128 : 4'000;
    const Cell cell = run_cell(wl, 8, workers, n, 0, rate);
    record_cell("open-loop", sf, 8, 0, rate, cell);
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  if (!args.json_path.empty()) {
    benchutil::write_serving_bench_json(args.json_path, records,
                                        std::string(parallel_backend()));
    std::cout << "json:   " << args.json_path << "\n";
  }
  return 0;
}
