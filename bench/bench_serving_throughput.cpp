// Serving throughput-vs-latency surface: the dynamic-batching policy is
// measured, not asserted. The workload is the fig3 CSR d=64 cell family
// (random CSR mask at sparsity Sf over L×L, head_dim 64); the load
// generator sweeps the batching policy (max_batch 1 vs 8 vs 16) under
// closed-loop saturation at equal worker count, then probes one
// open-loop cell for latency under a fixed arrival schedule.
//
// What to look for: batched dispatch amortizes the per-dispatch cost
// (queue wakeups, scheduler round-trips between clients and workers —
// the CPU's analogue of kernel-launch overhead) across max_batch
// requests, so requests/sec rises with max_batch, most at the sparse
// end of the grid where the kernel itself is cheapest. The headline
// mechanism, though, is cross-item dispatch parallelism (one "SM" per
// sequence via ServerConfig::batch_policy): a batch fills idle cores a
// single request cannot, which is where the ≥3× batched-vs-unbatched
// gap appears on multi-core hosts. On a single-core host total kernel
// work bounds both arms equally and only the overhead amortization
// remains (measured ~1.05–1.25×) — the printed hardware_concurrency
// tells you which regime a recorded JSON came from.
//
// The second surface is the admission comparison: a mixed-length causal
// pattern workload run open-loop up an arrival-rate ladder, once with
// exact-length batch keys and once with seq_len buckets, until the
// completed/offered ratio drops below the knee threshold. The highest
// rate that held the threshold is the cell family's measured
// max-sustainable-rps; bucketed admission coalesces near-length
// requests that exact keys keep apart, which is worth real occupancy
// (and a later knee) exactly when lengths are diverse.
//
// The third surface is the trace-overhead guard: alternating off/on
// rounds of one closed-loop cell (per-arm medians, since a single
// short cell is jitter-dominated) price the ring when it is RECORDING,
// and a direct span-site microbench prices the runtime-disabled state
// (one relaxed load + branch per site, scaled by the sites/request the
// traced arm actually emitted). The guard is on the disabled number —
// that is what production pays — and wants it under 2% of sustained
// throughput; the recording gap is reported as information.
//
//   bench_serving_throughput [--smoke] [--paper-scale] [--csv f] [--json f]
//
// --json writes the gpa-bench-serving/v4 records (BENCH_serving.json);
// each record carries hw_threads so a committed file self-identifies
// the machine class it was recorded on, and the file embeds the
// process's end-of-run metrics snapshot.

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "benchutil/json.hpp"
#include "benchutil/runner.hpp"
#include "benchutil/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "serve/serve.hpp"

namespace {

using namespace gpa;
using benchutil::Table;

struct Cell {
  serve::LoadGenResult result;
  serve::StatsSnapshot stats;
};

/// Single source of truth for the batching window: greedy for batch-1
/// (a window would only tax the baseline), 50µs otherwise — under
/// saturation the backlog fills batches without waiting anyway.
constexpr std::int64_t batch_wait_us(Index max_batch) { return max_batch > 1 ? 50 : 0; }

Cell run_cell(const serve::Workload& wl, Index max_batch, int workers, Size requests,
              int clients, double arrival_hz, const std::vector<Index>& seq_buckets = {},
              std::chrono::microseconds deadline = std::chrono::microseconds{0},
              std::size_t queue_capacity = 4096) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = queue_capacity;
  cfg.policy.max_batch = max_batch;
  cfg.policy.max_wait = std::chrono::microseconds{batch_wait_us(max_batch)};
  cfg.policy.seq_buckets = seq_buckets;
  serve::Server server(cfg);

  serve::LoadGenConfig lg;
  lg.requests = requests;
  lg.clients = clients;
  lg.arrival_hz = arrival_hz;
  lg.deadline = deadline;
  Cell cell;
  cell.result = arrival_hz > 0.0 ? serve::run_open_loop(server, wl, lg)
                                 : serve::run_closed_loop(server, wl, lg);
  server.shutdown();
  cell.stats = server.stats();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parse_bench_args(argc, argv, /*warmup=*/1, /*iters=*/1);

  const Index L = args.smoke ? 128 : (args.paper_scale ? 2'048 : 512);
  const Index d = 64;  // fig3's first dk column
  const std::vector<double> sfs =
      args.smoke ? std::vector<double>{0.01} : std::vector<double>{0.0001, 0.001, 0.01};
  const std::vector<Index> batches =
      args.smoke ? std::vector<Index>{1, 8} : std::vector<Index>{1, 8, 16};
  const int workers = 1;  // equal worker count across every policy cell
  const int clients = 32;
  const Size requests = args.smoke ? 256 : 20'000;

  std::cout << "=== Serving throughput vs batching policy (CSR d=" << d << ", L=" << L
            << ", workers=" << workers << ", clients=" << clients << ") ===\n"
            << "host: " << std::thread::hardware_concurrency()
            << " hardware thread(s); batched dispatch parallelises across items, so the\n"
            << "batched-vs-unbatched gap scales with cores (1 core => overhead "
               "amortization only)\n";

  Table table({"mode", "sf", "max_batch", "completed", "rejected", "wall_s", "rps", "p50_ms",
               "p95_ms", "p99_ms", "occupancy"});
  std::vector<benchutil::ServingBenchRecord> records;

  auto record_cell = [&](const char* mode, double sf, Index max_batch, int cell_clients,
                         double arrival_hz, const Cell& cell) {
    const auto& r = cell.result;
    const auto& s = cell.stats;
    table.add_row({mode, Table::fmt_double(sf), std::to_string(max_batch),
                   std::to_string(r.completed), std::to_string(r.rejected),
                   Table::fmt_double(r.wall_s, 3), Table::fmt_double(r.rps, 1),
                   Table::fmt_double(s.latency_ms.p50, 3), Table::fmt_double(s.latency_ms.p95, 3),
                   Table::fmt_double(s.latency_ms.p99, 3),
                   Table::fmt_double(s.mean_batch_occupancy, 2)});
    benchutil::ServingBenchRecord rec;
    rec.mode = mode;
    rec.seq_len = L;
    rec.head_dim = d;
    rec.sparsity = sf;
    rec.workers = workers;
    rec.hw_threads = static_cast<int>(std::thread::hardware_concurrency());
    rec.clients = cell_clients;
    rec.arrival_hz = arrival_hz;
    rec.max_batch = max_batch;
    rec.max_wait_us = batch_wait_us(max_batch);
    rec.completed = r.completed;
    rec.rejected = r.rejected;
    rec.wall_s = r.wall_s;
    rec.rps = r.rps;
    rec.p50_ms = s.latency_ms.p50;
    rec.p95_ms = s.latency_ms.p95;
    rec.p99_ms = s.latency_ms.p99;
    rec.mean_batch_occupancy = s.mean_batch_occupancy;
    records.push_back(std::move(rec));
  };

  for (const double sf : sfs) {
    const auto wl = serve::make_csr_workload(L, d, sf, /*seed=*/7, /*pool=*/8);
    double rps_batch1 = 0.0;
    for (const Index max_batch : batches) {
      // Scale the request count so dense cells stay minutes-free while
      // sparse cells still accumulate stable tails.
      const Size n = sf >= 0.01 && !args.smoke ? requests / 4 : requests;
      const Cell cell = run_cell(wl, max_batch, workers, n, clients, 0.0);
      record_cell("closed-loop", sf, max_batch, clients, 0.0, cell);
      if (max_batch == 1) {
        rps_batch1 = cell.result.rps;
      } else if (rps_batch1 > 0.0) {
        std::cout << "  sf=" << sf << " max_batch=" << max_batch
                  << ": speedup over batch-1 = " << cell.result.rps / rps_batch1 << "x\n";
      }
    }
  }

  // Open-loop probe: offered load ~half of the batch-8 closed-loop
  // capacity at the middle sparsity, with a deadline to exercise
  // shedding under any transient backlog.
  {
    const double sf = args.smoke ? 0.01 : 0.001;
    const auto wl = serve::make_csr_workload(L, d, sf, /*seed=*/7, /*pool=*/8);
    const double rate = args.smoke ? 500.0 : 2'000.0;
    const Size n = args.smoke ? 128 : 4'000;
    const Cell cell = run_cell(wl, 8, workers, n, 0, rate);
    record_cell("open-loop", sf, 8, 0, rate, cell);
  }

  // Bucketed vs exact admission: a mixed-length pattern workload driven
  // open-loop up an arrival ladder until the completed/offered ratio
  // falls below the knee threshold. Equal everything except the
  // seq_buckets knob; the knee each arm resolves is stamped on all of
  // that arm's ladder records. The ladder is JOINT: both arms are
  // probed at each rate back-to-back before the rate advances, so slow
  // drift in background machine load (minutes-scale on a shared host)
  // perturbs both arms the same way instead of biasing whichever arm
  // ran second.
  {
    // 0.95 rather than 0.9: past the knee the completed ratio drops
    // through the 0.90s quickly but noisily (deadline shedding under a
    // growing backlog), and sustainable rungs hold ≥0.97 — so 0.95
    // sits in the gap and 0.90 sits inside the noise band.
    constexpr double kKneeThreshold = 0.95;
    // Length diversity is the point: real mixed traffic has ~every
    // length distinct, so exact keys fragment the queue into as many
    // uncoalescable streams as there are lengths while the buckets
    // fold them into two. The queue is kept shallow relative to the
    // length count so a saturated backlog still holds only a few
    // requests of any one exact length — with a deep queue both arms
    // coalesce equally and the comparison measures nothing.
    std::vector<Index> lengths;
    const Index len_lo = args.smoke ? 20 : 100;
    const Index len_step = 2;
    const int n_lengths = args.smoke ? 16 : 48;
    for (int i = 0; i < n_lengths; ++i) lengths.push_back(len_lo + len_step * i);
    const std::vector<Index> buckets = args.smoke ? std::vector<Index>{35, 50}
                                                  : std::vector<Index>{146, 194};
    const Index pd = 32, window = 8;
    const auto wl = serve::make_mixed_local_workload(lengths, pd, window, /*seed=*/11);
    const double base_rate = args.smoke ? 250.0 : 500.0;
    const double fine_base = args.smoke ? 1'000.0 : 8'000.0;  // the knee band starts above here
    const double rung_seconds = args.smoke ? 0.4 : 2.5;  // short rungs are jitter-dominated near the knee
    const auto deadline = std::chrono::microseconds{100'000};  // sheds under overload
    const int kMaxRungs = args.smoke ? 6 : 10;  // fine 1.15x rungs through the knee band

    std::cout << "\n=== Admission: exact vs bucketed keys (mixed-length local pattern, d="
              << pd << ", open-loop ladder to the " << kKneeThreshold << " knee) ===\n";

    struct Arm {
      const char* name;
      const std::vector<Index>* buckets;
      double knee = 0.0;
      bool alive = true;
      std::vector<std::size_t> rung_records;
    };
    const std::vector<Index> no_buckets;
    std::vector<Arm> arms = {{"exact", &no_buckets}, {"bucketed", &buckets}};

    auto probe_once = [&](Arm& arm, double rate) {
      const Size n = static_cast<Size>(rate * rung_seconds);
      const Cell cell = run_cell(wl, /*max_batch=*/8, workers, n, /*clients=*/0, rate,
                                 *arm.buckets, deadline, /*queue_capacity=*/160);
      record_cell(arm.name, 0.0, 8, 0, rate, cell);
      records.back().seq_len = lengths.back();  // the family's longest length
      records.back().head_dim = pd;
      records.back().admission = arm.name;
      arm.rung_records.push_back(records.size() - 1);
      return static_cast<double>(cell.result.completed) / static_cast<double>(n) >=
             kKneeThreshold;
    };
    // One 2.5s open-loop rung is jitter-dominated near the knee (a
    // ~250ms scheduler stall sheds ~10% of the rung's offer), so a
    // rate's verdict is a 2-of-3 majority — symmetric, unlike a
    // retry-on-failure rule, which would inflate the knee with lucky
    // passes at oversaturated rates.
    auto probe = [&](Arm& arm, double rate) {
      int pass = 0, fail = 0;
      while (pass < 2 && fail < 2) (probe_once(arm, rate) ? pass : fail) += 1;
      return pass >= 2;
    };

    // Sub-saturation rates pass trivially at ratio ~1.0: sketch that
    // part of the curve with coarse doubling rungs and single probes,
    // then walk fine 1.15x rungs with majority verdicts through the
    // knee band, both arms at each rate before it advances.
    double rate = base_rate;
    for (; rate < fine_base; rate *= 2.0)
      for (Arm& arm : arms)
        if (probe_once(arm, rate)) arm.knee = rate;
    for (int rung = 0; rung < kMaxRungs && (arms[0].alive || arms[1].alive);
         ++rung, rate *= 1.15)
      for (Arm& arm : arms) {
        if (!arm.alive) continue;
        if (probe(arm, rate))
          arm.knee = rate;
        else
          arm.alive = false;
      }
    for (const Arm& arm : arms) {
      for (const std::size_t i : arm.rung_records) records[i].max_sustainable_rps = arm.knee;
      std::cout << "  " << arm.name << ": max sustainable rate = " << arm.knee << " rps\n";
    }
  }

  // Trace-overhead guard: the same closed-loop cell with the span ring
  // off and with it recording. Spans are compiled in either way — the
  // off arm is the runtime-disabled state every other cell (and
  // production) pays, priced at one relaxed load + branch per span
  // site; the on arm adds the clock reads and ring writes. One short
  // cell per arm is jitter-dominated (a scheduler stall moves a 0.5s
  // cell by ~10%), so the arms alternate across rounds and each arm
  // reports its median — drift perturbs both arms, not whichever ran
  // second. Every round is recorded; the printed medians are the guard.
  {
    const double sf = args.smoke ? 0.01 : 0.001;
    const auto wl = serve::make_csr_workload(L, d, sf, /*seed=*/7, /*pool=*/8);
    const Size n = args.smoke ? 256 : 5'000;
    const int rounds = args.smoke ? 2 : 5;
    std::vector<double> rps_off, rps_on;
    double sites_per_req = 0.0;
    for (int round = 0; round < rounds; ++round) {
      for (const bool traced : {false, true}) {
        obs::trace::reset();
        obs::trace::set_enabled(traced);
        const Cell cell = run_cell(wl, /*max_batch=*/8, workers, n, clients, 0.0);
        if (traced)
          sites_per_req =
              static_cast<double>(obs::trace::emitted()) / static_cast<double>(n);
        obs::trace::set_enabled(false);
        record_cell(traced ? "trace-on" : "trace-off", sf, 8, clients, 0.0, cell);
        records.back().trace = traced ? "on" : "off";
        (traced ? rps_on : rps_off).push_back(cell.result.rps);
      }
    }
    obs::trace::reset();
    const double off = benchutil::percentile(rps_off, 50.0);
    const double on = benchutil::percentile(rps_on, 50.0);
    const double enabled_pct = off > 0.0 ? (off - on) / off * 100.0 : 0.0;

    // The <2% claim is about the DISABLED arm, and the off/on gap above
    // cannot measure it (both arms have spans compiled in). Price a
    // disabled span site directly — construct/destroy in a loop with
    // the ring off — then scale by the site count the traced arm
    // actually emitted per request. The empty asm keeps the compiler
    // from hoisting the enabled-flag load out of the loop.
    const int site_iters = args.smoke ? 1'000'000 : 10'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < site_iters; ++i) {
      obs::trace::Span s("guard.disabled_site", "bench");
      asm volatile("" ::: "memory");
    }
    const double site_ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(site_iters);
    const double disabled_pct =
        off > 0.0 ? site_ns * sites_per_req * 1e-9 * off * 100.0 : 0.0;

    std::cout << "\ntrace overhead (median of " << rounds << " alternating rounds): off="
              << off << " rps, on=" << on << " rps (" << enabled_pct
              << "% with the ring RECORDING — informational)\n"
              << "disabled-span guard: " << site_ns << " ns/site x " << sites_per_req
              << " sites/request = " << disabled_pct
              << "% of sustained throughput (runtime-disabled tracing is the production "
                 "state; guard wants < 2%)\n";
    if (disabled_pct >= 2.0) {
      std::cout << "TRACE GUARD FAILED: disabled-span overhead >= 2%\n";
      return 1;
    }
  }

  std::cout << '\n';
  table.print();
  table.write_csv(args.csv_path);
  if (!args.json_path.empty()) {
    benchutil::write_serving_bench_json(args.json_path, records,
                                        std::string(parallel_backend()),
                                        obs::Registry::global().snapshot().to_json());
    std::cout << "json:   " << args.json_path << "\n";
  }
  return 0;
}
