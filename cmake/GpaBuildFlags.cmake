# Shared warning / sanitizer configuration, attached to every gpa target
# via the gpa_build_flags interface library.

add_library(gpa_build_flags INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(gpa_build_flags INTERFACE -Wall -Wextra)
  if(GPA_WERROR)
    target_compile_options(gpa_build_flags INTERFACE -Werror)
  endif()
  if(GPA_ENABLE_ASAN)
    target_compile_options(gpa_build_flags INTERFACE
      -fsanitize=address,undefined -fno-omit-frame-pointer)
    target_link_options(gpa_build_flags INTERFACE
      -fsanitize=address,undefined)
  endif()
  if(GPA_ENABLE_TSAN)
    target_compile_options(gpa_build_flags INTERFACE
      -fsanitize=thread -fno-omit-frame-pointer)
    target_link_options(gpa_build_flags INTERFACE
      -fsanitize=thread)
  endif()
elseif(MSVC)
  target_compile_options(gpa_build_flags INTERFACE /W4)
  if(GPA_WERROR)
    target_compile_options(gpa_build_flags INTERFACE /WX)
  endif()
endif()
