# Third-party test/bench dependency resolution.
#
# gpa_resolve_gtest()     — guarantees GTest::gtest_main exists.
# gpa_resolve_benchmark() — sets GPA_HAVE_GBENCH and guarantees
#                           benchmark::benchmark when it is TRUE.

function(gpa_resolve_gtest)
  # Prefer the platform package dirs over PATH-derived prefixes (a conda
  # env on PATH can shadow the system GTest with an ABI-incompatible
  # build), then fall back to an unrestricted search, then FetchContent.
  find_package(GTest QUIET NO_CMAKE_ENVIRONMENT_PATH NO_SYSTEM_ENVIRONMENT_PATH)
  if(NOT GTest_FOUND)
    find_package(GTest QUIET)
  endif()
  if(NOT GTest_FOUND)
    message(STATUS "gpa: system GTest not found, fetching googletest v1.14.0")
    include(FetchContent)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    if(NOT TARGET GTest::gtest)
      add_library(GTest::gtest ALIAS gtest)
      add_library(GTest::gtest_main ALIAS gtest_main)
    endif()
  endif()
endfunction()

function(gpa_resolve_benchmark)
  find_package(benchmark QUIET)
  if(benchmark_FOUND)
    set(GPA_HAVE_GBENCH TRUE PARENT_SCOPE)
    return()
  endif()
  # Debian ships the library without a CMake package in some configs.
  find_library(GPA_GBENCH_LIB benchmark)
  find_path(GPA_GBENCH_INC benchmark/benchmark.h)
  if(GPA_GBENCH_LIB AND GPA_GBENCH_INC)
    if(NOT TARGET benchmark::benchmark)
      add_library(benchmark::benchmark UNKNOWN IMPORTED GLOBAL)
      set_target_properties(benchmark::benchmark PROPERTIES
        IMPORTED_LOCATION "${GPA_GBENCH_LIB}"
        INTERFACE_INCLUDE_DIRECTORIES "${GPA_GBENCH_INC}")
    endif()
    set(GPA_HAVE_GBENCH TRUE PARENT_SCOPE)
  else()
    set(GPA_HAVE_GBENCH FALSE PARENT_SCOPE)
  endif()
endfunction()
