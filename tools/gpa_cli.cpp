// gpa — command-line driver for the library. Lets users build, inspect,
// and persist masks, run any kernel against the reference, and query
// the memory model without writing C++.
//
//   gpa mask --pattern local --length 1024 --window 8 [--out mask.bin]
//   gpa info --in mask.bin
//   gpa run --pattern bigbird --length 2048 --dim 64 [--causal] [--fp16]
//   gpa memmodel --algo csr --dtype fp16 --dim 64 --sf 1e-4
//                [--device a100|l40|v100|h100|rtx4090]
//   gpa serve-bench --length 512 --dim 64 --sf 0.001 --workers 1 --max-batch 8
//                   [--clients 8] [--requests 2000] [--rate HZ] [--deadline-us N]
//                   [--buckets 256,512]  (mixed-length causal pattern traffic,
//                                         seq_len-bucketed admission; empty = exact keys)
//                   [--decode --sessions 4 [--dedup 0|1]]  (stateful KV-cache
//                                         decode traffic; --dedup 0 disables the
//                                         pool-wide prompt cache)
//   gpa decode-bench --pattern local --length 1024 --dim 64 --steps 32
//   gpa decode-bench --mask composed --length 1024 --reach 8 --globals 2
//                    (chained local ∘ global longformer session)
//   gpa stats <host:port>  [--json]   (scrape a live node's metrics registry)
//   gpa serve-bench ... --trace out.json   (span tracing on; Chrome trace dump)
//
// Exit code 0 on success (and verification OK for `run`), 1 otherwise.

#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "common/version.hpp"
#include "core/composed.hpp"
#include "core/graph_attention.hpp"
#include "graph/degree.hpp"
#include "kvcache/kvcache.hpp"
#include "memmodel/memory_model.hpp"
#include "net/cluster.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/sim_cluster.hpp"
#include "serve/serve.hpp"
#include "simd/simd.hpp"
#include "sparse/build.hpp"
#include "sparse/io.hpp"
#include "sparse/nnz.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace gpa;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count("--" + name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = kv.find("--" + name);
    return it == kv.end() ? fallback : it->second;
  }
  Index get_index(const std::string& name, Index fallback) const {
    return get_numeric<Index>(name, fallback, "an integer",
                              [](const std::string& s, std::size_t* pos) {
                                return static_cast<Index>(std::stoll(s, pos));
                              });
  }
  double get_double(const std::string& name, double fallback) const {
    return get_numeric<double>(name, fallback, "a number",
                               [](const std::string& s, std::size_t* pos) {
                                 return std::stod(s, pos);
                               });
  }

 private:
  /// Strict numeric lookup: the whole value must parse, otherwise an
  /// InvalidArgument naming the flag is thrown.
  template <typename T, typename Parse>
  T get_numeric(const std::string& name, T fallback, const char* kind, Parse parse) const {
    const auto it = kv.find("--" + name);
    if (it == kv.end()) return fallback;
    try {
      std::size_t pos = 0;
      const T value = parse(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument("trailing characters");
      return value;
    } catch (const std::exception&) {
      throw InvalidArgument("--" + name + " expects " + kind + ", got \"" + it->second + "\"");
    }
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0 && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.kv[a] = argv[++i];
    } else {
      // Presence is the value: flag() tests membership and the get_*()
      // accessors fall back only when the key is absent. Assigning a
      // short literal here also trips GCC 12's bogus -Wrestrict at -O3
      // (PR105651), which would break the -Werror CI build.
      args.kv.try_emplace(a);
    }
  }
  return args;
}

/// "256,512,1024" → {256, 512, 1024} (strict: every element must parse).
std::vector<Index> parse_index_list(const std::string& flag, const std::string& s) {
  std::vector<Index> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string tok = s.substr(start, comma == std::string::npos ? comma : comma - start);
    try {
      std::size_t pos = 0;
      out.push_back(static_cast<Index>(std::stoll(tok, &pos)));
      if (pos != tok.size()) throw std::invalid_argument("trailing characters");
    } catch (const std::exception&) {
      throw InvalidArgument(flag + " expects a comma-separated integer list, got \"" + s + "\"");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Csr<float> build_mask(const Args& args) {
  const Index L = args.get_index("length", 1024);
  const std::string pattern = args.get("pattern", "local");
  if (pattern == "local") {
    return build_csr_local(L, make_local(args.get_index("window", 8)));
  }
  if (pattern == "dilated1d") {
    return build_csr_dilated1d(
        L, make_dilated1d(args.get_index("window", 8), args.get_index("dilation", 1)));
  }
  if (pattern == "dilated2d") {
    return build_csr_dilated2d(
        make_dilated2d(L, args.get_index("block", 8), args.get_index("dilation", 1)));
  }
  if (pattern == "global") {
    std::vector<Index> tokens;
    for (Index t = 0; t < args.get_index("globals", 2); ++t) tokens.push_back(t);
    return build_csr_global(L, make_global(tokens, L));
  }
  if (pattern == "random") {
    return build_csr_random(
        L, RandomParams{args.get_double("sf", 0.01),
                        static_cast<std::uint64_t>(args.get_index("seed", 42))});
  }
  if (pattern == "longformer") {
    return make_longformer(L, args.get_index("reach", 8), args.get_index("globals", 2)).fused;
  }
  if (pattern == "bigbird") {
    return make_bigbird(L, args.get_index("reach", 8), args.get_index("globals", 2),
                        args.get_double("sf", 0.01))
        .fused;
  }
  throw InvalidArgument("unknown --pattern: " + pattern +
                        " (local|dilated1d|dilated2d|global|random|longformer|bigbird)");
}

void print_mask_info(const Csr<float>& mask) {
  const auto stats = degree_stats(csr_degrees(mask));
  std::cout << "shape:       " << mask.rows << " x " << mask.cols << "\n"
            << "nnz:         " << mask.nnz() << "\n"
            << "sparsity Sf: " << sparsity_factor(mask.nnz(), mask.rows) << "\n"
            << "degrees:     min " << stats.min_degree << ", mean " << stats.mean << ", max "
            << stats.max_degree << " (imbalance " << stats.imbalance << ")\n"
            << "storage:     " << mask.storage_bytes() << " bytes (CSR, 32-bit indices)\n";
}

int cmd_mask(const Args& args) {
  const auto mask = build_mask(args);
  print_mask_info(mask);
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    save_csr(mask, out);
    std::cout << "written:     " << out << "\n";
  }
  return 0;
}

int cmd_info(const Args& args) {
  const std::string in = args.get("in", "");
  GPA_CHECK(!in.empty(), "info requires --in <path>");
  print_mask_info(load_csr(in));
  return 0;
}

template <typename T>
int run_typed(const Args& args, const Csr<float>& mask) {
  const Index L = mask.rows;
  const Index d = args.get_index("dim", 64);
  AttentionOptions opts;
  opts.causal = args.flag("causal");

  Matrix<float> qf(L, d), kf(L, d), vf(L, d);
  Rng rng(static_cast<std::uint64_t>(args.get_index("seed", 1)));
  fill_uniform(qf, rng);
  fill_uniform(kf, rng);
  fill_uniform(vf, rng);

  Matrix<T> q(L, d), k(L, d), v(L, d), out(L, d);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      q(i, p) = T(qf(i, p));
      k(i, p) = T(kf(i, p));
      v(i, p) = T(vf(i, p));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  csr_attention(q, k, v, mask, out, opts);
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "csr kernel:  " << std::chrono::duration<double>(t1 - t0).count() << " s ("
            << mask.nnz() << " edges)\n";

  // Verify against the exact reference (on the causally-intersected
  // mask if requested).
  Matrix<float> out_f(L, d);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) out_f(i, p) = static_cast<float>(out(i, p));
  }
  Csr<float> check_mask = mask;
  if (opts.causal) {
    check_mask = build_csr_from_predicate(L, [&](Index i, Index j) {
      if (j > i) return false;
      for (Index kk = mask.row_begin(i); kk < mask.row_end(i); ++kk) {
        if (mask.col_idx[static_cast<std::size_t>(kk)] == j) return true;
      }
      return false;
    });
  }
  Matrix<float> expected(L, d);
  baselines::reference_attention(qf, kf, vf, check_mask, expected);
  const bool fp16 = args.flag("fp16");
  const auto rep = allclose(out_f, expected, fp16 ? 5e-3 : 1e-5, fp16 ? 5e-3 : 1e-6);
  std::cout << "verified:    " << (rep.all_close ? "OK" : "FAIL") << " (max diff "
            << rep.max_abs_diff << ")\n";
  return rep.all_close ? 0 : 1;
}

int cmd_run(const Args& args) {
  const auto mask = build_mask(args);
  print_mask_info(mask);
  return args.flag("fp16") ? run_typed<half_t>(args, mask) : run_typed<float>(args, mask);
}

int cmd_memmodel(const Args& args) {
  using namespace gpa::memmodel;
  const std::string device = args.get("device", "a100");
  const std::map<std::string, DeviceSpec> devices = {
      {"a100", DeviceSpec::a100_80gb()},       {"l40", DeviceSpec::l40_48gb()},
      {"v100", DeviceSpec::v100_32gb()},       {"h100", DeviceSpec::h100_80gb()},
      {"rtx4090", DeviceSpec::rtx4090_24gb()}};
  const auto dev_it = devices.find(device);
  if (dev_it == devices.end()) {
    throw InvalidArgument("unknown --device: " + device + " (a100|l40|v100|h100|rtx4090)");
  }
  const DeviceSpec& dev = dev_it->second;
  const std::string dtype = args.get("dtype", "fp32");
  ModelConfig cfg;
  cfg.dtype = dtype == "fp16" ? DType::F16 : DType::F32;
  cfg.embed_dim = args.get_index("dim", 64);
  cfg.heads = args.get_index("heads", 1);
  cfg.sparsity = args.get_double("sf", 1e-4);

  const std::map<std::string, Algo> algos = {
      {"sdp", Algo::SdpMasked}, {"csr", Algo::Csr},     {"coo", Algo::Coo},
      {"flash", Algo::FlashDense}, {"local", Algo::Local}, {"dilated1d", Algo::Dilated1D},
      {"dilated2d", Algo::Dilated2D}, {"global", Algo::Global}, {"spmm", Algo::SpmmTwoPhase}};
  const std::string name = args.get("algo", "");
  std::cout << dev.name << ", " << dtype << ", dim " << cfg.embed_dim << ", heads "
            << cfg.heads << ", Sf " << cfg.sparsity << "\n";
  for (const auto& [n, a] : algos) {
    if (!name.empty() && n != name) continue;
    std::cout << "  " << n << ": max L = " << max_context_length(a, dev, cfg) << "\n";
  }
  return 0;
}

/// serve-bench --decode: stateful decode traffic through the server's
/// SessionManager. One client thread per session submits its tokens
/// strictly in order (the autoregressive discipline); tokens from
/// different sessions coalesce into shared decode dispatches. With
/// --sessions 0 no session is ever prefilled, so every request comes
/// back `rejected-session` — the defensive path for unknown sessions
/// (a typed rejection plus a hint, never an assert).
int cmd_serve_bench_decode(const Args& args, serve::ServerConfig cfg, Size requests) {
  const Index L = args.get_index("length", 512);
  const Index d = args.get_index("dim", 64);
  const double sf = args.get_double("sf", 0.001);
  const Index sessions = args.get_index("sessions", 4);
  const Index clients = std::max<Index>(sessions, 1);
  const Size per_client = std::max<Size>(requests / static_cast<Size>(clients), 1);

  const Index mask_len = L + static_cast<Index>(per_client) + 1;
  auto mask = std::make_shared<const Csr<float>>(
      build_csr_random(mask_len, RandomParams{sf, 7}));

  kvcache::SessionManager::Config mc;
  mc.pool.page_size = 16;
  mc.pool.head_dim = d;
  mc.pool.num_pages =
      (mask_len * std::max<Index>(sessions, 1)) / mc.pool.page_size + 2 * clients;
  mc.prefix_dedup = args.get_index("dedup", 1) != 0;
  auto mgr = std::make_shared<kvcache::SessionManager>(mc);
  cfg.sessions = mgr;

  Rng rng(11);
  Matrix<float> prompt_q(L, d), prompt_k(L, d), prompt_v(L, d), prompt_out(L, d);
  fill_uniform(prompt_q, rng);
  fill_uniform(prompt_k, rng);
  fill_uniform(prompt_v, rng);
  for (Index s = 1; s <= sessions; ++s) {
    mgr->create(static_cast<std::uint64_t>(s), kvcache::MaskSpec::make_csr(mask));
    mgr->prefill(static_cast<std::uint64_t>(s), prompt_q, prompt_k, prompt_v, prompt_out);
  }

  std::cout << "workload:    decode steps, L0=" << L << ", d=" << d << ", Sf=" << sf
            << ", sessions=" << sessions << " (" << per_client << " tokens each)\n"
            << "policy:      workers=" << cfg.workers << ", max_batch=" << cfg.policy.max_batch
            << ", max_wait=" << cfg.policy.max_wait.count() << "us\n";

  serve::Server server(cfg);
  std::atomic<Size> ok{0}, rejected{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (Index c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng trng(100 + static_cast<std::uint64_t>(c));
      // Session ids 1..sessions are live; with --sessions 0 the id is
      // never created, exercising the rejected-session path.
      const std::uint64_t sid = static_cast<std::uint64_t>(c % std::max<Index>(sessions, 1)) + 1;
      Matrix<float> qr(1, d), kr(1, d), vr(1, d);
      for (Size i = 0; i < per_client; ++i) {
        fill_uniform(qr, trng);
        fill_uniform(kr, trng);
        fill_uniform(vr, trng);
        auto fut = server.submit(serve::make_decode_request(sid, qr, kr, vr));
        const auto resp = fut.get();  // strict order: token t before t+1
        if (resp.status == serve::ResponseStatus::Ok) {
          ++ok;
        } else {
          ++rejected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.shutdown();
  const auto s = server.stats();

  std::cout << "completed:   " << ok.load() << " ok, " << rejected.load() << " rejected ("
            << s.rejected_session << " session, " << s.rejected_queue_full << " full, "
            << s.rejected_deadline << " deadline)\n"
            << "throughput:  " << (static_cast<double>(ok.load()) / wall) << " tokens/s over "
            << wall << " s\n"
            << "latency ms:  p50 " << s.latency_ms.p50 << ", p95 " << s.latency_ms.p95
            << ", p99 " << s.latency_ms.p99 << "\n"
            << "batching:    " << s.batches << " dispatches, mean occupancy "
            << s.mean_batch_occupancy << "\n"
            << "kvcache:     " << mgr->stats().pages_in_use << " pages in use, "
            << mgr->stats().evictions << " evictions\n"
            << "prompt cache: " << (mc.prefix_dedup ? "on" : "off") << ", "
            << mgr->stats().pages_deduped << " pages deduped, "
            << mgr->stats().prefix_hits << "/" << mgr->stats().prefix_lookups
            << " hits, " << mgr->stats().prefix_entries << " cached pages\n";
  if (s.rejected_session > 0) {
    std::cout << "note:        " << s.rejected_session
              << " decode requests named a session the server does not hold "
                 "(unknown or evicted) — prefill sessions first (--sessions N)\n";
  }
  return ok.load() > 0 || sessions == 0 ? 0 : 1;
}

int cmd_serve_bench(const Args& args) {
  const Index L = args.get_index("length", 512);
  const Index d = args.get_index("dim", 64);
  const double sf = args.get_double("sf", 0.001);
  const double rate = args.get_double("rate", 0.0);  // > 0 selects open-loop

  serve::ServerConfig cfg;
  cfg.workers = static_cast<int>(args.get_index("workers", 1));
  GPA_CHECK(cfg.workers >= 1, "serve-bench needs at least one worker (--workers)");
  cfg.queue_capacity = static_cast<std::size_t>(args.get_index("queue", 1024));
  cfg.policy.max_batch = args.get_index("max-batch", 8);
  cfg.policy.max_wait = std::chrono::microseconds{args.get_index("max-wait-us", 200)};
  const std::string buckets_arg = args.get("buckets", "");
  if (!buckets_arg.empty()) {
    cfg.policy.seq_buckets = parse_index_list("--buckets", buckets_arg);
  }

  // --trace <file>: span tracing for the whole run, dumped as Chrome
  // trace_event JSON at the end. The ring is sized to the run so the
  // dump is complete (dropped events are reported if it still wraps).
  const std::string trace_file = args.get("trace", "");
  if (!trace_file.empty()) {
    obs::trace::reset();
    obs::trace::set_enabled(true);
  }
  const auto finish_trace = [&trace_file](int rc) {
    if (trace_file.empty()) return rc;
    obs::trace::set_enabled(false);
    const std::uint64_t emitted = obs::trace::emitted();
    const std::uint64_t dropped = obs::trace::dropped();
    if (!obs::trace::write_chrome_json(trace_file)) {
      std::cerr << "serve-bench: failed to write trace to " << trace_file << "\n";
      return 1;
    }
    std::cout << "trace:       " << trace_file << " (" << emitted << " events, " << dropped
              << " dropped)" << (dropped > 0 ? " — raise the ring capacity" : "") << "\n";
    return rc;
  };

  if (args.flag("decode")) {
    return finish_trace(cmd_serve_bench_decode(
        args, cfg, static_cast<Size>(args.get_index("requests", 512))));
  }

  serve::LoadGenConfig lg;
  lg.requests = static_cast<Size>(args.get_index("requests", 2000));
  lg.clients = static_cast<int>(args.get_index("clients", 8));
  lg.arrival_hz = rate;
  lg.deadline = std::chrono::microseconds{args.get_index("deadline-us", 0)};

  // --buckets switches to the mixed-length causal pattern workload the
  // seq_len bucketing exists for (lengths spread below L, one shared
  // local pattern); without it the classic single-length CSR workload.
  const bool bucketed = args.flag("buckets");
  const auto wl = bucketed
                      ? serve::make_mixed_local_workload(
                            {std::max<Index>(L / 2, 1), std::max<Index>(L * 5 / 8, 1),
                             std::max<Index>(L * 3 / 4, 1), L},
                            d, args.get_index("window", 8), /*seed=*/7)
                      : serve::make_csr_workload(L, d, sf, /*seed=*/7, /*pool=*/4);
  if (bucketed) {
    std::cout << "workload:    mixed-length local pattern, L=" << L / 2 << ".." << L
              << ", d=" << d << ", window=" << args.get_index("window", 8) << ", buckets=";
    for (std::size_t i = 0; i < cfg.policy.seq_buckets.size(); ++i) {
      std::cout << (i ? "," : "") << cfg.policy.seq_buckets[i];
    }
    std::cout << (cfg.policy.seq_buckets.empty() ? "(exact keys)" : "") << "\n";
  } else {
    std::cout << "workload:    CSR random mask, L=" << L << ", d=" << d << ", Sf=" << sf
              << " (" << wl.mask->nnz() << " edges)\n";
  }
  std::cout << "policy:      workers=" << cfg.workers << ", max_batch=" << cfg.policy.max_batch
            << ", max_wait=" << cfg.policy.max_wait.count() << "us, queue="
            << cfg.queue_capacity << "\n"
            << "load:        " << (rate > 0.0 ? "open-loop" : "closed-loop") << ", requests="
            << lg.requests << (rate > 0.0 ? ", rate=" + std::to_string(rate) + "/s"
                                          : ", clients=" + std::to_string(lg.clients))
            << "\n";

  serve::Server server(cfg);
  const auto res = rate > 0.0 ? serve::run_open_loop(server, wl, lg)
                              : serve::run_closed_loop(server, wl, lg);
  server.shutdown();
  const auto s = server.stats();

  std::cout << "completed:   " << res.completed << " ok, " << res.rejected << " rejected ("
            << s.rejected_queue_full << " full, " << s.rejected_deadline << " deadline, "
            << s.rejected_shutdown << " shutdown, " << s.internal_errors << " error)\n"
            << "throughput:  " << res.rps << " rps over " << res.wall_s << " s\n"
            << "latency ms:  p50 " << s.latency_ms.p50 << ", p95 " << s.latency_ms.p95
            << ", p99 " << s.latency_ms.p99 << ", max " << s.latency_ms.max << "\n"
            << "batching:    " << s.batches << " dispatches, mean occupancy "
            << s.mean_batch_occupancy << ", max queue depth " << s.max_queue_depth << "\n"
            << "occupancy:  ";
  for (std::size_t b = 1; b < s.occupancy.size(); ++b) {
    if (s.occupancy[b] > 0) std::cout << " " << b << "x" << s.occupancy[b];
  }
  std::cout << "\n";
  return finish_trace(0);
}

/// Quick KV-cache probe: prefill L tokens of the chosen pattern, time
/// `--steps` cached decode steps, then time the uncached alternative
/// (full causal recompute at L+1) and print the per-token ratio. The
/// full sweep with JSON output lives in bench_decode_throughput.
///
/// `--mask composed` (alias of --pattern) runs a CHAINED-mask session —
/// the longformer local ∘ global composition folded per decode step —
/// against a full composed kernel call; the other patterns run through
/// a CSR session as before.
int cmd_decode_bench(const Args& args) {
  const Index L = args.get_index("length", 512);
  const Index d = args.get_index("dim", 64);
  const Index steps = args.get_index("steps", 32);
  GPA_CHECK(L >= 1 && steps >= 1, "decode-bench needs --length >= 1 and --steps >= 1");
  const std::string pattern = args.get("pattern", args.get("mask", "local"));
  const bool composed = pattern == "composed";
  const Index reach = args.get_index("reach", 8);
  const Index globals = args.get_index("globals", 2);

  kvcache::SessionManager::Config mc;
  mc.pool.page_size = 16;
  mc.pool.head_dim = d;
  mc.pool.num_pages = (L + steps) / mc.pool.page_size + 2;
  mc.opts.policy = ExecPolicy::serial();
  kvcache::SessionManager mgr(mc);

  // The session sees the (L+steps)-sized mask, the recompute arm its
  // (L+1)-sized counterpart (leading CSR slice / re-built composition).
  std::shared_ptr<const Csr<float>> mask;
  if (composed) {
    mgr.create(1, kvcache::MaskSpec::compose(make_longformer(L + steps, reach, globals)));
  } else {
    Args mask_args = args;
    mask_args.kv["--pattern"] = pattern;  // honour the --mask alias
    mask_args.kv["--length"] = std::to_string(L + steps);
    mask = std::make_shared<const Csr<float>>(build_mask(mask_args));
    mgr.create(1, kvcache::MaskSpec::make_csr(mask));
  }

  Rng rng(static_cast<std::uint64_t>(args.get_index("seed", 1)));
  Matrix<float> q(L + steps, d), k(L + steps, d), v(L + steps, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);
  Matrix<float> qp(L, d), kp(L, d), vp(L, d), out(L, d);
  for (Index i = 0; i < L; ++i) {
    for (Index p = 0; p < d; ++p) {
      qp(i, p) = q(i, p);
      kp(i, p) = k(i, p);
      vp(i, p) = v(i, p);
    }
  }
  mgr.prefill(1, qp, kp, vp, out);

  std::vector<float> out_row(static_cast<std::size_t>(d));
  Index edges = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (Index s = 0; s < steps; ++s) {
    edges = mgr.decode_step(1, q.row(L + s), k.row(L + s), v.row(L + s), out_row.data());
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double cached_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / static_cast<double>(steps);

  // Uncached arm: the same mask at length L+1 (leading CSR slice, or
  // the composition re-built at that length), full causal recompute to
  // produce one token.
  Matrix<float> qf(L + 1, d), kf(L + 1, d), vf(L + 1, d), of(L + 1, d);
  for (Index i = 0; i <= L; ++i) {
    for (Index p = 0; p < d; ++p) {
      qf(i, p) = q(i, p);
      kf(i, p) = k(i, p);
      vf(i, p) = v(i, p);
    }
  }
  AttentionOptions copts;
  copts.policy = ExecPolicy::serial();
  copts.causal = true;
  double recompute_us = 0.0;
  if (composed) {
    const ComposedMask lf = make_longformer(L + 1, reach, globals);
    const auto t2 = std::chrono::steady_clock::now();
    composed_attention(qf, kf, vf, lf, of, copts);
    const auto t3 = std::chrono::steady_clock::now();
    recompute_us = std::chrono::duration<double, std::micro>(t3 - t2).count();
  } else {
    const Csr<float> sliced = csr_leading_slice(*mask, L + 1);
    const auto t2 = std::chrono::steady_clock::now();
    csr_attention(qf, kf, vf, sliced, of, copts);
    const auto t3 = std::chrono::steady_clock::now();
    recompute_us = std::chrono::duration<double, std::micro>(t3 - t2).count();
  }

  std::cout << "decode:      " << pattern << ", L=" << L << " -> " << (L + steps) << ", d="
            << d << ", " << edges << " edges/row (last step)\n"
            << "cached:      " << cached_us << " us/token (paged K/V, O(row-nnz))\n"
            << "recompute:   " << recompute_us << " us/token (full causal call at L+1)\n"
            << "speedup:     " << (cached_us > 0.0 ? recompute_us / cached_us : 0.0) << "x\n";
  return 0;
}

#ifndef _WIN32

/// One spawned gpa_serve node.
struct NodeProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

std::string default_serve_bin() {
  // gpa_serve is built next to gpa_cli; resolve it relative to our own
  // binary so cluster-bench works from any cwd.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "gpa_serve";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return (slash == std::string::npos ? std::string() : path.substr(0, slash + 1)) + "gpa_serve";
}

NodeProc spawn_serve(const std::string& bin, Index pages, Index page_size, Index d) {
  int fds[2];
  GPA_CHECK(::pipe(fds) == 0, "cluster-bench: pipe failed");
  const pid_t pid = ::fork();
  GPA_CHECK(pid >= 0, "cluster-bench: fork failed");
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string pages_s = std::to_string(pages);
    const std::string ps_s = std::to_string(page_size);
    const std::string d_s = std::to_string(d);
    ::execl(bin.c_str(), bin.c_str(), "--port", "0", "--pages", pages_s.c_str(),
            "--page-size", ps_s.c_str(), "--dim", d_s.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed; the parent sees EOF before LISTENING
  }
  ::close(fds[1]);
  std::string line;
  char c;
  while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
  ::close(fds[0]);
  NodeProc np;
  np.pid = pid;
  if (line.rfind("LISTENING ", 0) == 0) {
    np.port = static_cast<std::uint16_t>(std::stoi(line.substr(10)));
  }
  GPA_CHECK(np.port != 0, "cluster-bench: node failed to start (is " + bin + " built?)");
  return np;
}

/// Spawns an N-process localhost cluster, runs the wire-rotated ring
/// prefill, checks it bit-for-bit against the in-process sim_cluster
/// oracle, then pushes a burst of routed decode steps. Exit 0 only if
/// the differential gate holds.
int cmd_cluster_bench(const Args& args) {
  const Index N = args.get_index("nodes", 2);
  GPA_CHECK(N >= 2 && N <= 8, "cluster-bench: --nodes must be in [2, 8]");
  const Index L = args.get_index("length", 512);
  const Index d = args.get_index("dim", 64);
  const Index decode_sessions = args.get_index("sessions", 8);
  const Index decode_steps = args.get_index("steps", 16);
  const bool causal = args.flag("causal");

  const Csr<float> mask = build_mask(args);
  GPA_CHECK(mask.rows == L, "cluster-bench: mask length mismatch");
  const auto part = seqpar::partition_balanced_nnz(L, N, seqpar::degrees_of(mask));

  Rng rng(static_cast<std::uint64_t>(args.get_index("seed", 3)));
  Matrix<float> q(L, d), k(L, d), v(L, d);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  // Spawn + connect.
  const std::string bin = args.get("serve-bin", default_serve_bin());
  const Index pages = args.get_index("pages", 4 * (L / 16 + 2));
  std::vector<NodeProc> procs;
  net::ClusterClient cc;
  for (Index p = 0; p < N; ++p) {
    procs.push_back(spawn_serve(bin, pages, 16, d));
    auto t = net::TcpTransport::connect("127.0.0.1", procs.back().port, net::Millis{5000},
                                        net::Millis{30000});
    GPA_CHECK(t != nullptr, "cluster-bench: connect to node failed");
    cc.add_peer(static_cast<std::uint64_t>(p), std::move(t));
  }
  std::cout << "cluster:     " << N << " nodes on 127.0.0.1 (ports";
  for (const auto& np : procs) std::cout << " " << np.port;
  std::cout << ")\n";

  int rc = 0;
  try {
    // Ring prefill + the differential gate.
    Matrix<float> wire_out;
    const auto rep = cc.ring_prefill(q, k, v, mask, part, causal, -1.0f, wire_out);
    Matrix<float> oracle(L, d);
    AttentionOptions opts;
    opts.causal = causal;
    seqpar::distributed_csr_attention(q, k, v, mask, part, oracle, opts);
    bool identical = true;
    for (Index i = 0; i < L && identical; ++i) {
      identical = std::memcmp(wire_out.row(i), oracle.row(i),
                              static_cast<std::size_t>(d) * sizeof(float)) == 0;
    }
    std::cout << "ring prefill: L=" << L << ", d=" << d << ", nnz=" << mask.nnz()
              << ", rotated " << rep.shard_deliveries << " shards in " << rep.seconds
              << " s\n"
              << "oracle:      " << (identical ? "bit-identical to sim_cluster"
                                               : "MISMATCH vs sim_cluster")
              << "\n";
    for (const auto& nr : rep.nodes) {
      std::cout << "  node " << nr.node_id << ": rows [" << nr.row_begin << ", " << nr.row_end
                << "), " << nr.edges << " edges, "
                << (rep.seconds > 0 ? static_cast<double>(nr.edges) / rep.seconds : 0.0)
                << " edges/s\n";
    }
    if (!identical) rc = 1;

    // Routed decode burst: sessions consistent-hash across the nodes.
    const Index window = args.get_index("window", 8);
    net::WireMask wm;
    wm.kind = net::WireMaskKind::Local;
    wm.a = window;
    std::vector<Size> owned(static_cast<std::size_t>(N), 0);
    const auto t0 = std::chrono::steady_clock::now();
    Size steps_done = 0;
    std::vector<float> qr(static_cast<std::size_t>(d)), kr(qr.size()), vr(qr.size()),
        orow(qr.size());
    for (Index s = 0; s < decode_sessions; ++s) {
      const auto sid = static_cast<std::uint64_t>(1000 + s);
      cc.create_session(sid, wm);
      ++owned[static_cast<std::size_t>(cc.owner_of(sid))];
      for (Index t = 0; t < decode_steps; ++t) {
        for (Index x = 0; x < d; ++x) {
          qr[static_cast<std::size_t>(x)] = rng.next_float();
          kr[static_cast<std::size_t>(x)] = rng.next_float();
          vr[static_cast<std::size_t>(x)] = rng.next_float();
        }
        cc.decode_step(sid, qr.data(), kr.data(), vr.data(), d, orow.data());
        ++steps_done;
      }
    }
    const double dsec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::cout << "decode:      " << steps_done << " routed steps over " << decode_sessions
              << " sessions in " << dsec << " s ("
              << (dsec > 0 ? static_cast<double>(steps_done) / dsec : 0.0)
              << " steps/s), ownership";
    for (Index p = 0; p < N; ++p) {
      std::cout << " n" << p << "=" << owned[static_cast<std::size_t>(p)];
    }
    std::cout << "\n";

    // End-of-run per-node stats, scraped over the wire (Op::Stats): each
    // node process's registry IS that node's stats, so this shows what
    // each node actually did — not what the router thinks it did.
    for (Index p = 0; p < N; ++p) {
      const auto snap = cc.node_stats(static_cast<std::uint64_t>(p));
      std::cout << "  node " << p << " stats: prefix "
                << snap.counter("kvcache.prefix.hits") << "/"
                << snap.counter("kvcache.prefix.lookups") << " hits, "
                << snap.counter("kvcache.evictions") << " evictions, "
                << snap.gauge("kvcache.sessions.live") << " sessions, "
                << snap.gauge("kvcache.pages.in_use") << " pages in use, wire in "
                << snap.counter("net.frames.received") << " frames/"
                << snap.counter("net.bytes.received") << " B, out "
                << snap.counter("net.frames.sent") << " frames/"
                << snap.counter("net.bytes.sent") << " B\n";
    }
  } catch (...) {
    cc.shutdown_all();
    for (const auto& np : procs) ::waitpid(np.pid, nullptr, 0);
    throw;
  }

  cc.shutdown_all();
  for (const auto& np : procs) {
    int status = 0;
    ::waitpid(np.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) rc = 1;
  }
  return rc;
}

#endif  // !_WIN32

/// `gpa stats <host:port>` — scrape a live node's registry snapshot over
/// Op::Stats and print the text exposition (or JSON with --json). With
/// --watch <sec> the node is scraped twice, <sec> apart, and counters
/// are printed as per-second rates (gauges as the second sample).
int cmd_stats(const Args& args) {
  std::string host = args.get("host", "127.0.0.1");
  long long port = args.get_index("port", 0);
  for (const auto& [key, val] : args.kv) {
    (void)val;
    const std::size_t colon = key.find(':');
    if (key.rfind("--", 0) != 0 && colon != std::string::npos) {
      host = key.substr(0, colon);
      port = std::stoll(key.substr(colon + 1));
      break;
    }
  }
  GPA_CHECK(port > 0 && port <= 65535, "stats requires <host:port> (or --host/--port)");
  auto scrape = [&] {
    auto t = net::TcpTransport::connect(host, static_cast<std::uint16_t>(port),
                                        net::Millis{5000}, net::Millis{10000});
    GPA_CHECK(t != nullptr, "stats: connect to " + host + ":" + std::to_string(port) + " failed");
    net::RpcClient rpc(*t);
    net::Writer w;
    w.u8(1);
    const auto body = rpc.call(net::Op::Stats, std::move(w.buf));
    net::Reader r(body);
    obs::MetricsSnapshot snap;
    GPA_CHECK(net::get_metrics_snapshot(r, snap) && r.done(), "stats: bad response body");
    return snap;
  };

  const Index watch_s = args.get_index("watch", 0);
  if (watch_s <= 0) {
    const auto snap = scrape();
    std::cout << (args.flag("json") ? snap.to_json() + "\n" : snap.to_text());
    return 0;
  }

  // --watch: two scrapes bracketing a wall-clock interval. Rates use
  // the measured elapsed time, not the requested one, so a slow connect
  // doesn't inflate them.
  const auto first = scrape();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(watch_s));
  const auto second = scrape();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << "# rates over " << elapsed << " s (counters: delta/s; gauges: current)\n";
  for (const auto& c : second.counters) {
    double v0 = 0.0;
    for (const auto& p : first.counters) {
      if (p.name == c.name) {
        v0 = static_cast<double>(p.value);
        break;
      }
    }
    std::cout << c.name << " " << (static_cast<double>(c.value) - v0) / elapsed << "/s\n";
  }
  for (const auto& g : second.gauges) std::cout << g.name << " " << g.value << "\n";
  return 0;
}

int cmd_version() {
  // Resolved = the arm Auto dispatches to right now (after GPA_SIMD and
  // the cpuid clamp); compiled = every arm this binary carries.
  std::string compiled;
  for (const SimdLevel l : simd::compiled_levels()) {
    if (!compiled.empty()) compiled += ",";
    compiled += std::string(simd::level_name(l));
  }
  std::cout << "gpa " << kVersion << " (" << kBuildType << ", parallel backend: "
            << parallel_backend() << ", simd: " << simd::simd_backend()
            << ", simd compiled: " << compiled << ")\n";
  return 0;
}

void usage() {
  std::cout << "usage: gpa <mask|info|run|memmodel|serve-bench|decode-bench|cluster-bench|stats|version> [--key value ...]\n"
            << "  gpa mask --pattern local --length 1024 --window 8 --out mask.bin\n"
            << "  gpa info --in mask.bin\n"
            << "  gpa run --pattern bigbird --length 2048 --dim 64 [--causal] [--fp16]\n"
            << "  gpa memmodel --dtype fp16 --dim 64 --sf 0.0001 --device a100\n"
            << "  gpa serve-bench --length 512 --dim 64 --sf 0.001 --max-batch 8 --workers 1\n"
            << "  gpa serve-bench --length 512 --buckets 384,512 --max-batch 8\n"
            << "  gpa serve-bench --decode --sessions 4 --dedup 1 --requests 512\n"
            << "  gpa serve-bench --decode --sessions 4 --requests 512 --length 256\n"
            << "  gpa decode-bench --pattern bigbird --length 1024 --dim 64 --steps 32\n"
            << "  gpa decode-bench --mask composed --length 1024 --reach 8 --globals 2\n"
            << "  gpa cluster-bench --nodes 2 --length 512 --dim 64 [--causal]\n"
            << "      (spawns N gpa_serve processes; ring prefill must be bit-identical\n"
            << "       to the in-process sim_cluster oracle, then a routed decode burst;\n"
            << "       ends with a per-node stats line scraped over Op::Stats)\n"
            << "  gpa stats 127.0.0.1:9000 [--json]   (scrape a live gpa_serve node)\n"
            << "  gpa stats 127.0.0.1:9000 --watch 5  (two scrapes, counters as per-second rates)\n"
            << "  gpa serve-bench ... --trace trace.json   (Chrome trace of the run)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.command == "mask") return cmd_mask(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "memmodel") return cmd_memmodel(args);
    if (args.command == "serve-bench") return cmd_serve_bench(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "decode-bench") return cmd_decode_bench(args);
#ifndef _WIN32
    if (args.command == "cluster-bench") return cmd_cluster_bench(args);
#endif
    if (args.command == "version" || args.command == "--version") return cmd_version();
    usage();
    return args.command.empty() ? 1 : (std::cerr << "unknown command: " << args.command << "\n", 1);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
