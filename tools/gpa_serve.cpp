// gpa_serve — one cluster node process.
//
//   gpa_serve --port 0 --pages 256 --page-size 16 --dim 64
//             [--accept-timeout-ms 30000] [--io-timeout-ms 30000]
//             [--trace-out <file>]
//
// Binds 127.0.0.1:<port> (0 = ephemeral), prints exactly one line
//
//   LISTENING <port>
//
// to stdout (the spawner parses it to learn the ephemeral port), then
// serves connections one at a time until a client sends Shutdown or no
// connection arrives within the accept timeout. Session state (the
// SessionManager) persists across connections; a front-end can
// reconnect without losing sessions.
//
// --trace-out enables span tracing for the process lifetime and dumps
// the ring as Chrome trace_event JSON on every orderly exit path
// (Shutdown op or idle accept-timeout) — load the file at
// chrome://tracing. A crash loses the ring by design: it lives in
// memory to stay off the serving hot path.
//
// Exit codes: 0 orderly shutdown (op or accept-timeout idle exit),
// 1 setup failure.

#include <iostream>
#include <string>

#include "net/node.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"

namespace {

long long arg_ll(int argc, char** argv, const std::string& name, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (name == argv[i]) return std::stoll(argv[i + 1]);
  }
  return fallback;
}

std::string arg_str(int argc, char** argv, const std::string& name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (name == argv[i]) return argv[i + 1];
  }
  return {};
}

int finish(const std::string& trace_out) {
  if (!trace_out.empty() && !gpa::obs::trace::write_chrome_json(trace_out)) {
    std::cerr << "gpa_serve: failed to write trace to " << trace_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpa;
  try {
    const auto port = static_cast<std::uint16_t>(arg_ll(argc, argv, "--port", 0));
    net::NodeConfig cfg;
    cfg.sessions.pool.num_pages = static_cast<Index>(arg_ll(argc, argv, "--pages", 256));
    cfg.sessions.pool.page_size = static_cast<Index>(arg_ll(argc, argv, "--page-size", 16));
    cfg.sessions.pool.head_dim = static_cast<Index>(arg_ll(argc, argv, "--dim", 64));
    const net::Millis accept_timeout{arg_ll(argc, argv, "--accept-timeout-ms", 30000)};
    const net::Millis io_timeout{arg_ll(argc, argv, "--io-timeout-ms", 30000)};
    const std::string trace_out = arg_str(argc, argv, "--trace-out");
    if (!trace_out.empty()) obs::trace::set_enabled(true);

    net::TcpListener listener(port);
    net::NodeService node(cfg);
    std::cout << "LISTENING " << listener.port() << std::endl;  // flushed: spawner blocks on it

    for (;;) {
      auto conn = listener.accept(accept_timeout, io_timeout);
      if (!conn) {
        // Idle exit: nobody connected within the window. Keeps an
        // orphaned node from outliving a crashed front-end forever.
        std::cerr << "gpa_serve: accept timeout, exiting\n";
        return finish(trace_out);
      }
      if (node.serve(*conn)) return finish(trace_out);  // Shutdown op
      // EOF / transport error: drop the connection, keep the sessions.
    }
  } catch (const std::exception& e) {
    std::cerr << "gpa_serve: " << e.what() << "\n";
    return 1;
  }
}
