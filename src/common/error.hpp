#pragma once
// Error handling: contract checks that throw typed exceptions. Kernels
// validate shapes at their public boundary and use unchecked accesses in
// inner loops (I.6 / ES.65: check preconditions at the interface).

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpa {

/// Raised on malformed arguments (shape mismatch, invalid parameters).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Raised when a tracked allocation exceeds the device memory budget.
/// Mirrors CUDA's out-of-memory failure mode for the capacity experiments.
class OutOfDeviceMemory : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "GPA_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace gpa

/// Precondition check, always on (cheap argument validation only).
#define GPA_CHECK(expr, msg)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::gpa::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)
