#pragma once
// Fundamental scalar and index types shared by every gpa subsystem.

#include <cstddef>
#include <cstdint>
#include <string_view>

#if defined(__GNUC__) || defined(__clang__)
#define GPA_RESTRICT __restrict__
#else
#define GPA_RESTRICT
#endif

namespace gpa {

/// Sequence positions and matrix extents. Context lengths in the paper
/// reach 160 million (beyond int32 once squared), so a 64-bit signed
/// index is used throughout. Signed per the Core Guidelines (ES.100-107)
/// so that subtraction in window arithmetic behaves.
using Index = std::int64_t;

/// Element counts / byte counts.
using Size = std::uint64_t;

/// Storage data types recognised by the kernels and the memory model.
/// The paper evaluates FP32 and FP16 (Fig. 4, Tables II/III).
enum class DType : std::uint8_t {
  F32,
  F16,
};

/// Bytes occupied by one element of `dt`.
constexpr Size dtype_size(DType dt) noexcept {
  switch (dt) {
    case DType::F32: return 4;
    case DType::F16: return 2;
  }
  return 0;  // unreachable for valid enum values
}

constexpr std::string_view dtype_name(DType dt) noexcept {
  switch (dt) {
    case DType::F32: return "fp32";
    case DType::F16: return "fp16";
  }
  return "?";
}

/// Index width used by the explicit sparse formats (CSR/COO). The
/// reference CUDA artifact uses 32-bit indices; the memory model follows
/// suit (see memmodel/memory_model.hpp).
inline constexpr Size kSparseIndexBytes = 4;

}  // namespace gpa
