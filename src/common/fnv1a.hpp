#pragma once
// FNV-1a folding 64-bit words byte-wise — the structural-fingerprint
// primitive shared by core/batched (CSR mask fingerprints) and
// core/traversal (per-family traversal fingerprints).

#include <cstdint>

namespace gpa {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t word) {
    for (int b = 0; b < 8; ++b) {
      h ^= (word >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
};

}  // namespace gpa
