#pragma once
// IEEE 754 binary16 storage type. The paper's FP16 experiments are about
// *storage* (context-length limits scale with bytes per element; see
// Fig. 4 / Table II); arithmetic is always performed in float after
// widening, exactly like CUDA kernels that load __half and compute in
// fp32 accumulators.

#include <bit>
#include <cstdint>
#include <cstring>

namespace gpa {

namespace detail {

/// Round-to-nearest-even float -> binary16 bit conversion.
constexpr std::uint16_t f32_to_f16_bits(float f) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {             // inf / NaN
    // NaN: truncate the payload to the top 10 bits and force the quiet
    // bit — exactly what VCVTPS2PH does (F16C hardware and this
    // software converter are pinned bit-identical by
    // test_half_exhaustive, NaN payloads included).
    const std::uint32_t mant =
        abs > 0x7f800000u ? (((abs & 0x007fffffu) >> 13) | 0x0200u) : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }
  if (abs >= 0x477ff000u) {             // overflows f16 range -> inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x33000001u) {              // underflows to zero (below half of min subnormal)
    return static_cast<std::uint16_t>(sign);
  }
  if (abs < 0x38800000u) {              // subnormal f16
    // value = mant_impl · 2^(e-150); f16 subnormal payload is
    // value · 2^24 = mant_impl >> (126 - e), with e in [102, 112] here
    // so the shift stays in [14, 24].
    const std::uint32_t shift = 126u - (abs >> 23);
    std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
    const std::uint32_t lost = mant & ((1u << shift) - 1u);
    mant >>= shift;
    const std::uint32_t half = 1u << (shift - 1u);
    if (lost > half || (lost == half && (mant & 1u))) ++mant;
    return static_cast<std::uint16_t>(sign | mant);
  }
  // Normal range: re-bias exponent, round mantissa to 10 bits.
  std::uint32_t mant = abs & 0x007fffffu;
  const std::uint32_t exp = (abs >> 23) - 112u;
  std::uint32_t out = (exp << 10) | (mant >> 13);
  const std::uint32_t lost = mant & 0x1fffu;
  if (lost > 0x1000u || (lost == 0x1000u && (out & 1u))) ++out;  // may carry into exponent: correct
  return static_cast<std::uint16_t>(sign | out);
}

/// binary16 bits -> float (exact).
constexpr float f16_bits_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  std::uint32_t out = 0;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- 0
    } else {       // subnormal: normalise
      std::uint32_t m = mant;
      std::uint32_t e = 113;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        --e;
      }
      out = sign | (e << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
    // NaN: set the quiet bit like VCVTPH2PS (an SNaN half widens to a
    // QNaN float with the payload preserved; a QNaN already has it).
    if (mant != 0) out |= 0x00400000u;
  } else {
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace detail

/// Half-precision storage element. Implicit widening to float, explicit
/// narrowing from float, trivially copyable, 2 bytes.
class half_t {
 public:
  constexpr half_t() noexcept = default;
  constexpr explicit half_t(float f) noexcept : bits_(detail::f32_to_f16_bits(f)) {}

  constexpr operator float() const noexcept { return detail::f16_bits_to_f32(bits_); }

  static constexpr half_t from_bits(std::uint16_t b) noexcept {
    half_t h;
    h.bits_ = b;
    return h;
  }
  constexpr std::uint16_t bits() const noexcept { return bits_; }

  half_t& operator+=(float f) noexcept {
    *this = half_t(static_cast<float>(*this) + f);
    return *this;
  }

  friend constexpr bool operator==(half_t a, half_t b) noexcept {
    return static_cast<float>(a) == static_cast<float>(b);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half_t) == 2);

}  // namespace gpa
