#pragma once
// Deterministic, seedable random number generation. Benchmarks and tests
// must be reproducible run-to-run, so everything that needs randomness
// takes an explicit Rng (no global state, no std::random_device).

#include <cstdint>

#include "common/types.hpp"

namespace gpa {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and (unlike
/// std::mt19937) identical across standard library implementations.
/// Seeded via splitmix64 so any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit draw.
  std::uint64_t next_u64() noexcept;

  /// Uniform float in [0, 1). Matches the paper's input distribution
  /// (torch.rand: uniform [0,1)).
  float next_float() noexcept {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform Index in [lo, hi).
  Index next_index(Index lo, Index hi) noexcept {
    return lo + static_cast<Index>(next_below(static_cast<std::uint64_t>(hi - lo)));
  }

  /// Split off an independent stream (for per-thread generators).
  Rng split() noexcept { return Rng(next_u64()); }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace gpa
