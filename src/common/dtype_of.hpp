#pragma once
// Compile-time mapping from a storage type to its runtime DType tag.

#include "common/half.hpp"
#include "common/types.hpp"

namespace gpa {

template <typename T>
struct dtype_of;

template <>
struct dtype_of<float> {
  static constexpr DType value = DType::F32;
};

template <>
struct dtype_of<half_t> {
  static constexpr DType value = DType::F16;
};

template <typename T>
inline constexpr DType dtype_of_v = dtype_of<T>::value;

}  // namespace gpa
