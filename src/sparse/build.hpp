#pragma once
// Mask construction: from pattern predicates, from dense 0/1 matrices,
// and from random sampling, into COO/CSR. The paper's verification flow
// is "create a mask as a tensor and convert it into the desired sparse
// matrix representation" (§V-A); these builders are that flow.

#include <functional>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// Arbitrary-predicate builders. `pred(i, j)` is evaluated over the full
/// L×L index space, so cost is O(L²) — intended for tests and mask
/// preparation, not kernels (the implicit kernels never materialise).
Csr<float> build_csr_from_predicate(Index seq_len,
                                    const std::function<bool(Index, Index)>& pred);
Coo<float> build_coo_from_predicate(Index seq_len,
                                    const std::function<bool(Index, Index)>& pred);

/// Pattern-specific builders that enumerate only the non-zeros, so cost
/// is O(NNZ) — usable at benchmark scale.
Csr<float> build_csr_local(Index seq_len, const LocalParams& p);
Csr<float> build_csr_dilated1d(Index seq_len, const Dilated1DParams& p);
Csr<float> build_csr_dilated2d(const Dilated2DParams& p);
Csr<float> build_csr_global(Index seq_len, const GlobalParams& p);

/// Uniform random mask with expected sparsity `p.sparsity`
/// (deterministic given p.seed). O(NNZ) via geometric gap sampling.
Csr<float> build_csr_random(Index seq_len, const RandomParams& p);

/// Leading n×n principal sub-mask of a canonical CSR (rows 0..n-1,
/// columns < n; relies on sorted columns per row). This is how the
/// KV-cache surfaces compare a session decoding under a big mask with
/// a full recompute at the current length — the causal row slices of
/// the two agree by construction.
Csr<float> csr_leading_slice(const Csr<float>& mask, Index n);

/// Dense 0/1 mask (row-major bytes) -> sparse, and back.
Csr<float> dense_to_csr(const Matrix<std::uint8_t>& mask);
Matrix<std::uint8_t> csr_to_dense(const Csr<float>& csr);
Coo<float> csr_to_coo(const Csr<float>& csr);
Csr<float> coo_to_csr(const Coo<float>& coo);

}  // namespace gpa
