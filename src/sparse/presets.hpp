#pragma once
// Named mask presets from Figure 2 / Figure 6 of the paper:
//  * Longformer       = local window + global tokens
//  * Longformer-dilated = dilated local window + global tokens
//  * BigBird          = local window + global tokens + uniform random
//
// Each preset exposes (a) its primitive components — already made
// pairwise disjoint so kernels can be chained sequentially exactly as
// the paper runs them — and (b) the fused union mask for the single-CSR
// evaluation path.

#include <optional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"

namespace gpa {

/// One primitive of a composed mask, tagged with which kernel runs it.
struct MaskComponent {
  enum class Kind { Local, Dilated1D, GlobalMinusLocal, RandomCsr } kind;
  std::string name;
  // Parameters (only those matching `kind` are meaningful).
  LocalParams local;
  Dilated1DParams dilated;
  GlobalMinusLocalParams global;
  Csr<float> csr;  ///< materialised component (always filled, for fusion/tests)
};

struct ComposedMask {
  std::string name;
  Index seq_len = 0;
  std::vector<MaskComponent> components;  ///< pairwise disjoint
  Csr<float> fused;                       ///< union of all components

  double sparsity() const;
};

/// Longformer: token reach of `reach` each direction (window = reach+1),
/// `global_tokens` prefix tokens global.
ComposedMask make_longformer(Index seq_len, Index reach, Index num_global);

/// Longformer with dilated local window (paper Fig. 6 middle: dilation
/// factor 2 doubling the effective reach).
ComposedMask make_longformer_dilated(Index seq_len, Index reach, Index dilation,
                                     Index num_global);

/// BigBird: local + global + uniform random (random component Sf).
ComposedMask make_bigbird(Index seq_len, Index reach, Index num_global, double random_sf,
                          std::uint64_t seed = 2025);

}  // namespace gpa
