#include "sparse/csr.hpp"

#include "common/error.hpp"
#include "common/half.hpp"

namespace gpa {

template <typename T>
bool Csr<T>::is_canonical() const {
  if (rows < 0 || cols < 0) return false;
  if (row_offsets.size() != static_cast<std::size_t>(rows) + 1) return false;
  if (row_offsets.front() != 0) return false;
  if (row_offsets.back() != static_cast<Index>(col_idx.size())) return false;
  if (col_idx.size() != values.size()) return false;
  for (Index i = 0; i < rows; ++i) {
    const Index b = row_begin(i);
    const Index e = row_end(i);
    if (b > e) return false;
    for (Index k = b; k < e; ++k) {
      const Index c = col_idx[static_cast<std::size_t>(k)];
      if (c < 0 || c >= cols) return false;
      if (k > b && col_idx[static_cast<std::size_t>(k) - 1] >= c) return false;
    }
  }
  return true;
}

template <typename T>
void validate(const Csr<T>& csr) {
  GPA_CHECK(csr.is_canonical(), "CSR mask is not canonical (monotone offsets, sorted unique cols)");
}

template struct Csr<float>;
template struct Csr<half_t>;
template void validate(const Csr<float>&);
template void validate(const Csr<half_t>&);

}  // namespace gpa
