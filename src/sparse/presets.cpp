#include "sparse/presets.hpp"

#include <numeric>

#include "common/error.hpp"
#include "sparse/build.hpp"
#include "sparse/compose.hpp"
#include "sparse/nnz.hpp"

namespace gpa {

double ComposedMask::sparsity() const {
  return sparsity_factor(fused.nnz(), seq_len);
}

namespace {

std::vector<Index> prefix_tokens(Index n) {
  std::vector<Index> t(static_cast<std::size_t>(n));
  std::iota(t.begin(), t.end(), Index{0});
  return t;
}

MaskComponent local_component(Index seq_len, Index reach) {
  MaskComponent c;
  c.kind = MaskComponent::Kind::Local;
  c.name = "local(w=" + std::to_string(reach + 1) + ")";
  c.local = make_local(reach + 1);  // reach tokens each direction + self
  c.csr = build_csr_local(seq_len, c.local);
  return c;
}

MaskComponent dilated_component(Index seq_len, Index reach, Index dilation) {
  MaskComponent c;
  c.kind = MaskComponent::Kind::Dilated1D;
  // Dilation factor r widens the effective reach by (r+1)x for the same
  // number of attended tokens: window = reach*(r+1)+1 keeps `reach`
  // attended neighbors per side, spread out (Fig. 2 centre).
  const Index window = reach * (dilation + 1) + 1;
  c.name = "dilated1d(w=" + std::to_string(window) + ",r=" + std::to_string(dilation) + ")";
  c.dilated = make_dilated1d(window, dilation);
  c.csr = build_csr_dilated1d(seq_len, c.dilated);
  return c;
}

MaskComponent global_component(Index seq_len, Index num_global, const LocalParams& minus_local) {
  MaskComponent c;
  c.kind = MaskComponent::Kind::GlobalMinusLocal;
  c.name = "global(g=" + std::to_string(num_global) + ")-local";
  c.global.global = make_global(prefix_tokens(num_global), seq_len);
  c.global.local = minus_local;
  c.csr = build_csr_from_predicate(
      seq_len, [&](Index i, Index j) { return c.global.contains(i, j); });
  return c;
}

}  // namespace

ComposedMask make_longformer(Index seq_len, Index reach, Index num_global) {
  GPA_CHECK(seq_len > 0 && reach >= 0 && num_global >= 0, "bad Longformer parameters");
  ComposedMask m;
  m.name = "longformer";
  m.seq_len = seq_len;
  m.components.push_back(local_component(seq_len, reach));
  m.components.push_back(global_component(seq_len, num_global, m.components[0].local));
  m.fused = mask_union(m.components[0].csr, m.components[1].csr);
  return m;
}

ComposedMask make_longformer_dilated(Index seq_len, Index reach, Index dilation,
                                     Index num_global) {
  GPA_CHECK(seq_len > 0 && reach >= 0 && dilation >= 0 && num_global >= 0,
            "bad dilated-Longformer parameters");
  ComposedMask m;
  m.name = "longformer-dilated";
  m.seq_len = seq_len;
  m.components.push_back(dilated_component(seq_len, reach, dilation));
  // Subtract the dilated component from the global one to keep the
  // components disjoint: build global-minus-nothing first, then subtract.
  MaskComponent g;
  g.kind = MaskComponent::Kind::GlobalMinusLocal;
  g.name = "global(g=" + std::to_string(num_global) + ")-dilated";
  g.global.global = make_global(prefix_tokens(num_global), seq_len);
  g.global.local = LocalParams{1};  // kernel-side subtraction handles only plain windows
  Csr<float> g_full = build_csr_global(seq_len, g.global.global);
  g.csr = mask_subtract(g_full, m.components[0].csr);
  m.components.push_back(std::move(g));
  m.fused = mask_union(m.components[0].csr, m.components[1].csr);
  return m;
}

ComposedMask make_bigbird(Index seq_len, Index reach, Index num_global, double random_sf,
                          std::uint64_t seed) {
  GPA_CHECK(seq_len > 0 && reach >= 0 && num_global >= 0, "bad BigBird parameters");
  ComposedMask m;
  m.name = "bigbird";
  m.seq_len = seq_len;
  m.components.push_back(local_component(seq_len, reach));
  m.components.push_back(global_component(seq_len, num_global, m.components[0].local));

  // Random component, made disjoint from local+global so the sequential
  // kernel chain (local ; global ; CSR) never double-counts an edge.
  MaskComponent r;
  r.kind = MaskComponent::Kind::RandomCsr;
  r.name = "random(sf=" + std::to_string(random_sf) + ")";
  Csr<float> raw = build_csr_random(seq_len, RandomParams{random_sf, seed});
  const Csr<float> covered = mask_union(m.components[0].csr, m.components[1].csr);
  r.csr = mask_subtract(raw, covered);
  m.components.push_back(std::move(r));

  m.fused = mask_union(mask_union(m.components[0].csr, m.components[1].csr),
                       m.components[2].csr);
  return m;
}

}  // namespace gpa
