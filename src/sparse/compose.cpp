#include "sparse/compose.hpp"

#include "common/error.hpp"

namespace gpa {

namespace {

enum class SetOp { Union, Subtract, Intersect };

Csr<float> merge(const Csr<float>& a, const Csr<float>& b, SetOp op) {
  GPA_CHECK(a.rows == b.rows && a.cols == b.cols, "mask shapes must match");
  Csr<float> out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.row_offsets.assign(static_cast<std::size_t>(a.rows) + 1, 0);

  for (Index i = 0; i < a.rows; ++i) {
    Index ka = a.row_begin(i);
    Index kb = b.row_begin(i);
    const Index ea = a.row_end(i);
    const Index eb = b.row_end(i);
    // Sorted two-pointer sweep over both rows.
    while (ka < ea || kb < eb) {
      const Index ca = ka < ea ? a.col_idx[static_cast<std::size_t>(ka)] : -1;
      const Index cb = kb < eb ? b.col_idx[static_cast<std::size_t>(kb)] : -1;
      if (kb >= eb || (ka < ea && ca < cb)) {
        if (op != SetOp::Intersect) {
          out.col_idx.push_back(ca);
          out.values.push_back(a.values[static_cast<std::size_t>(ka)]);
        }
        ++ka;
      } else if (ka >= ea || cb < ca) {
        if (op == SetOp::Union) {
          out.col_idx.push_back(cb);
          out.values.push_back(b.values[static_cast<std::size_t>(kb)]);
        }
        ++kb;
      } else {  // ca == cb, present in both
        if (op == SetOp::Union || op == SetOp::Intersect) {
          out.col_idx.push_back(ca);
          out.values.push_back(a.values[static_cast<std::size_t>(ka)]);
        }
        ++ka;
        ++kb;
      }
    }
    out.row_offsets[static_cast<std::size_t>(i) + 1] = static_cast<Index>(out.col_idx.size());
  }
  return out;
}

}  // namespace

Csr<float> mask_union(const Csr<float>& a, const Csr<float>& b) {
  return merge(a, b, SetOp::Union);
}

Csr<float> mask_subtract(const Csr<float>& a, const Csr<float>& b) {
  return merge(a, b, SetOp::Subtract);
}

Csr<float> mask_intersect(const Csr<float>& a, const Csr<float>& b) {
  return merge(a, b, SetOp::Intersect);
}

Csr<float> mask_union_all(const std::vector<Csr<float>>& parts) {
  GPA_CHECK(!parts.empty(), "mask_union_all needs at least one mask");
  Csr<float> acc = parts.front();
  for (std::size_t p = 1; p < parts.size(); ++p) acc = mask_union(acc, parts[p]);
  return acc;
}

bool masks_disjoint(const Csr<float>& a, const Csr<float>& b) {
  return mask_intersect(a, b).nnz() == 0;
}

}  // namespace gpa
