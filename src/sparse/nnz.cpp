#include "sparse/nnz.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace gpa {

Size local_nnz(Index seq_len, const LocalParams& p) {
  // Row i holds min(i, w-1) + min(L-1-i, w-1) + 1 entries. Summing the
  // clamped triangular parts gives a closed form.
  const Index L = seq_len;
  const Index w = std::min<Index>(p.window, L);  // windows beyond L saturate
  // Full interior rows: 2w-1 entries each; the first and last (w-1) rows
  // lose a triangle of (w-1-i) entries on one side.
  const Size full = static_cast<Size>(L) * static_cast<Size>(2 * w - 1);
  const Size lost = static_cast<Size>(w) * static_cast<Size>(w - 1);  // 2 * sum_{i<w-1}(w-1-i)
  return full - lost;
}

Size dilated1d_nnz(Index seq_len, const Dilated1DParams& p) {
  // Entries at distance d where d < w and d % (r+1) == 0. For each
  // admissible d > 0 there are 2*(L-d) positions; d = 0 contributes L.
  const Index L = seq_len;
  const Index step = p.dilation + 1;
  const Index max_d = std::min<Index>(p.window - 1, L - 1);
  const Index k = max_d / step;  // admissible distances: step, 2*step, ..., k*step
  // sum_{t=1..k} 2*(L - t*step) = 2kL - step*k(k+1)
  const Size sum = 2 * static_cast<Size>(k) * static_cast<Size>(L) -
                   static_cast<Size>(step) * static_cast<Size>(k) * static_cast<Size>(k + 1);
  return static_cast<Size>(L) + sum;
}

Size dilated2d_nnz(const Dilated2DParams& p) {
  // Per group of size g = L/b: rows i with (i % b) % (r+1) == 0 attend
  // to all such columns in the group -> count² per group, b groups. The
  // count of admissible offsets within a group depends only on the
  // residues the group spans; since groups tile [0, L) contiguously and
  // the admissibility test uses i % b, count admissible i per group
  // directly.
  const Index L = p.seq_len;
  const Index g = p.group_size();
  Size total = 0;
  for (Index group = 0; group < p.block; ++group) {
    const Index lo = group * g;
    Size count = 0;
    for (Index i = lo; i < lo + g; ++i) {
      if ((i % p.block) % (p.dilation + 1) == 0) ++count;
    }
    total += count * count;
  }
  (void)L;
  return total;
}

Size global_nnz(Index seq_len, const GlobalParams& p) {
  // |rows ∪ cols| for g global tokens: 2gL - g² (inclusion-exclusion).
  const Size g = p.tokens.size();
  const Size L = static_cast<Size>(seq_len);
  return 2 * g * L - g * g;
}

Size global_minus_local_nnz(Index seq_len, const GlobalMinusLocalParams& p) {
  // Count global edges, minus those already inside the local window.
  // Overlap: for each global token t, the local entries on row t and
  // column t, counting the intersection cell (t, t') for global pairs
  // carefully. Computed by direct summation over global tokens — the
  // token lists are tiny.
  Size overlap = 0;
  const Index L = seq_len;
  auto local_row_count = [&](Index t) {
    const Index w = p.local.window;
    const Index lo = t - (w - 1) > 0 ? t - (w - 1) : 0;
    const Index hi = t + (w - 1) < L - 1 ? t + (w - 1) : L - 1;
    return static_cast<Size>(hi - lo + 1);
  };
  // Edges in (global ∩ local) = |{(i,j) local : i global or j global}|.
  // = sum_t row_t + sum_t col_t − |{(i,j) local : i and j both global}|.
  Size both = 0;
  for (const Index a : p.global.tokens) {
    for (const Index b : p.global.tokens) {
      if (p.local.contains(a, b)) ++both;
    }
  }
  for (const Index t : p.global.tokens) overlap += 2 * local_row_count(t);
  overlap -= both;
  return global_nnz(seq_len, p.global) - overlap;
}

double sparsity_factor(Size nnz, Index seq_len) {
  GPA_CHECK(seq_len > 0, "sparsity factor needs L > 0");
  return static_cast<double>(nnz) /
         (static_cast<double>(seq_len) * static_cast<double>(seq_len));
}

Index local_window_for_sparsity(Index seq_len, double target_sf) {
  GPA_CHECK(target_sf > 0.0, "target sparsity factor must be positive");
  Index lo = 1, hi = seq_len;
  // Monotone in w: binary search for the smallest w reaching the target.
  while (lo < hi) {
    const Index mid = lo + (hi - lo) / 2;
    const double sf = sparsity_factor(local_nnz(seq_len, LocalParams{mid}), seq_len);
    if (sf >= target_sf) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Index dilated1d_window_for_sparsity(Index seq_len, Index dilation, double target_sf) {
  GPA_CHECK(target_sf > 0.0, "target sparsity factor must be positive");
  Index lo = 1, hi = seq_len;
  while (lo < hi) {
    const Index mid = lo + (hi - lo) / 2;
    const double sf =
        sparsity_factor(dilated1d_nnz(seq_len, Dilated1DParams{mid, dilation}), seq_len);
    if (sf >= target_sf) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Index dilated2d_block_for_sparsity(Index seq_len, Index dilation, double target_sf) {
  GPA_CHECK(target_sf > 0.0, "target sparsity factor must be positive");
  // Sf grows as the group size L/b grows, i.e. shrinks with more blocks.
  // Scan divisors of L from most blocks (sparsest) to fewest and pick
  // the densest one still under/at the target; prefer the closest match.
  Index best = seq_len;  // b = L -> groups of size 1 (diagonal-ish, sparsest)
  double best_gap = std::numeric_limits<double>::infinity();
  for (Index b = 1; b <= seq_len; ++b) {
    if (seq_len % b != 0) continue;
    const double sf =
        sparsity_factor(dilated2d_nnz(Dilated2DParams{seq_len, b, dilation}), seq_len);
    const double gap = std::abs(sf - target_sf);
    if (gap < best_gap) {
      best_gap = gap;
      best = b;
    }
  }
  return best;
}

double longnet_sparsity_rule(Index seq_len, double constant) {
  GPA_CHECK(seq_len > 0, "LongNet rule needs L > 0");
  const double sf = constant / static_cast<double>(seq_len);
  return sf < 1.0 ? sf : 1.0;
}

}  // namespace gpa
