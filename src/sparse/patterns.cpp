#include "sparse/patterns.hpp"

#include <algorithm>

namespace gpa {

LocalParams make_local(Index window) {
  GPA_CHECK(window >= 1, "local window must be >= 1");
  return LocalParams{window};
}

Dilated1DParams make_dilated1d(Index window, Index dilation) {
  GPA_CHECK(window >= 1, "dilated window must be >= 1");
  GPA_CHECK(dilation >= 0, "dilation factor must be >= 0");
  return Dilated1DParams{window, dilation};
}

Dilated2DParams make_dilated2d(Index seq_len, Index block, Index dilation) {
  GPA_CHECK(seq_len >= 1, "sequence length must be >= 1");
  GPA_CHECK(block >= 1 && block <= seq_len, "block size must be in [1, L]");
  GPA_CHECK(seq_len % block == 0, "paper's 2D predicate requires b to divide L");
  GPA_CHECK(dilation >= 0, "dilation factor must be >= 0");
  return Dilated2DParams{seq_len, block, dilation};
}

GlobalParams make_global(std::vector<Index> tokens, Index seq_len) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  for (const Index t : tokens) {
    GPA_CHECK(t >= 0 && t < seq_len, "global token index out of range");
  }
  return GlobalParams{std::move(tokens)};
}

}  // namespace gpa
