#pragma once
// Binary serialization for CSR masks. Long-context masks are expensive
// to rebuild (BigBird's random component must also be *identical* across
// training runs), so production pipelines persist them.
//
// Format (little-endian): magic "GPACSR1\0", rows, cols, nnz as u64,
// then row_offsets (i64), col_idx (i64), values (f32).

#include <string>

#include "sparse/csr.hpp"

namespace gpa {

void save_csr(const Csr<float>& mask, const std::string& path);
Csr<float> load_csr(const std::string& path);

}  // namespace gpa
