#pragma once
// Analytic non-zero counts, sparsity factors (Eq. 2 of the paper:
// Sf = NNZ / TE), and the inverse solvers the benchmarks need
// ("window/block size calculated to fit the associated sparsity factor",
// §V-C). Everything here is exact integer combinatorics — no masks are
// materialised, which is what lets Fig. 4 reason about L in the hundreds
// of millions.

#include "common/types.hpp"
#include "sparse/patterns.hpp"

namespace gpa {

/// Exact NNZ of each pattern on an L×L mask.
Size local_nnz(Index seq_len, const LocalParams& p);
Size dilated1d_nnz(Index seq_len, const Dilated1DParams& p);
Size dilated2d_nnz(const Dilated2DParams& p);
Size global_nnz(Index seq_len, const GlobalParams& p);
Size global_minus_local_nnz(Index seq_len, const GlobalMinusLocalParams& p);

/// Sf = NNZ / L².
double sparsity_factor(Size nnz, Index seq_len);

/// Smallest window w such that local attention's Sf >= target (clamped
/// to [1, L]). The benchmarks use this to hit requested sparsity levels.
Index local_window_for_sparsity(Index seq_len, double target_sf);

/// Smallest window w (with fixed dilation r) such that 1D-dilated Sf >=
/// target.
Index dilated1d_window_for_sparsity(Index seq_len, Index dilation, double target_sf);

/// Largest block b (b | L, fixed dilation r) whose 2D-dilated Sf does
/// not exceed target; falls back to the smallest divisor if every
/// divisor overshoots.
Index dilated2d_block_for_sparsity(Index seq_len, Index dilation, double target_sf);

/// LongNet-derived sparsity rule from §II-D: the paper shows the number
/// of dot products is (2α/(α−1))·w₀·L, i.e. Sf = C / L with
/// C = 2730 for α = 2, w₀ = 2048. `constant` defaults to the paper's C.
double longnet_sparsity_rule(Index seq_len, double constant = 2730.0);

}  // namespace gpa
