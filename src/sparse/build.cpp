#include "sparse/build.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gpa {

namespace {

Csr<float> csr_from_rows(Index seq_len,
                         const std::function<void(Index, std::vector<Index>&)>& row_cols) {
  Csr<float> csr;
  csr.rows = seq_len;
  csr.cols = seq_len;
  csr.row_offsets.resize(static_cast<std::size_t>(seq_len) + 1, 0);
  std::vector<Index> cols;
  for (Index i = 0; i < seq_len; ++i) {
    cols.clear();
    row_cols(i, cols);
    csr.row_offsets[static_cast<std::size_t>(i) + 1] =
        csr.row_offsets[static_cast<std::size_t>(i)] + static_cast<Index>(cols.size());
    csr.col_idx.insert(csr.col_idx.end(), cols.begin(), cols.end());
  }
  csr.values.assign(csr.col_idx.size(), 1.0f);
  return csr;
}

}  // namespace

Csr<float> build_csr_from_predicate(Index seq_len,
                                    const std::function<bool(Index, Index)>& pred) {
  GPA_CHECK(seq_len >= 0, "sequence length must be non-negative");
  return csr_from_rows(seq_len, [&](Index i, std::vector<Index>& cols) {
    for (Index j = 0; j < seq_len; ++j) {
      if (pred(i, j)) cols.push_back(j);
    }
  });
}

Coo<float> build_coo_from_predicate(Index seq_len,
                                    const std::function<bool(Index, Index)>& pred) {
  return csr_to_coo(build_csr_from_predicate(seq_len, pred));
}

Csr<float> build_csr_local(Index seq_len, const LocalParams& p) {
  GPA_CHECK(p.window >= 1, "local window must be >= 1");
  return csr_from_rows(seq_len, [&](Index i, std::vector<Index>& cols) {
    const Index lo = std::max<Index>(0, i - (p.window - 1));
    const Index hi = std::min<Index>(seq_len - 1, i + (p.window - 1));
    for (Index j = lo; j <= hi; ++j) cols.push_back(j);
  });
}

Csr<float> build_csr_dilated1d(Index seq_len, const Dilated1DParams& p) {
  GPA_CHECK(p.window >= 1 && p.dilation >= 0, "bad dilated-1D parameters");
  const Index step = p.dilation + 1;
  return csr_from_rows(seq_len, [&](Index i, std::vector<Index>& cols) {
    // Admissible distances are multiples of (r+1) below w; walk them in
    // column order.
    const Index max_d = p.window - 1;
    for (Index d = (max_d / step) * step; d >= step; d -= step) {
      if (i - d >= 0) cols.push_back(i - d);
    }
    cols.push_back(i);
    for (Index d = step; d <= max_d; d += step) {
      if (i + d < seq_len) cols.push_back(i + d);
    }
    // The backward walk appended in descending distance = ascending
    // column order already; nothing to sort.
  });
}

Csr<float> build_csr_dilated2d(const Dilated2DParams& p) {
  const Index L = p.seq_len;
  const Index g = p.group_size();
  GPA_CHECK(g >= 1 && L % p.block == 0, "bad dilated-2D parameters");
  return csr_from_rows(L, [&](Index i, std::vector<Index>& cols) {
    if ((i % p.block) % (p.dilation + 1) != 0) return;
    const Index group = i / g;
    const Index lo = group * g;
    for (Index j = lo; j < lo + g; ++j) {
      if ((j % p.block) % (p.dilation + 1) == 0) cols.push_back(j);
    }
  });
}

Csr<float> build_csr_global(Index seq_len, const GlobalParams& p) {
  return csr_from_rows(seq_len, [&](Index i, std::vector<Index>& cols) {
    if (p.is_global(i)) {
      for (Index j = 0; j < seq_len; ++j) cols.push_back(j);
    } else {
      for (const Index j : p.tokens) cols.push_back(j);
    }
  });
}

Csr<float> build_csr_random(Index seq_len, const RandomParams& p) {
  GPA_CHECK(p.sparsity >= 0.0 && p.sparsity <= 1.0, "random sparsity must be in [0,1]");
  Rng rng(p.seed);
  if (p.sparsity <= 0.0) {
    Csr<float> empty;
    empty.rows = empty.cols = seq_len;
    empty.row_offsets.assign(static_cast<std::size_t>(seq_len) + 1, 0);
    return empty;
  }
  // Geometric gap sampling over the flattened L² index space: expected
  // cost O(Sf·L²) instead of O(L²) Bernoulli trials.
  const double q = 1.0 - p.sparsity;
  const double log_q = std::log(q);
  Csr<float> csr;
  csr.rows = csr.cols = seq_len;
  csr.row_offsets.assign(static_cast<std::size_t>(seq_len) + 1, 0);
  const double total = static_cast<double>(seq_len) * static_cast<double>(seq_len);
  double pos = -1.0;
  std::vector<Index> rows_tmp;
  for (;;) {
    const double u = std::max(rng.next_double(), 1e-300);  // avoid log(0)
    const double gap = p.sparsity < 1.0 ? std::floor(std::log(u) / log_q) : 0.0;
    pos += 1.0 + gap;
    if (pos >= total) break;
    const auto flat = static_cast<Size>(pos);
    const Index i = static_cast<Index>(flat / static_cast<Size>(seq_len));
    const Index j = static_cast<Index>(flat % static_cast<Size>(seq_len));
    rows_tmp.push_back(i);
    csr.col_idx.push_back(j);
  }
  // Flattened order is already (row, col) sorted; build offsets by count.
  for (const Index r : rows_tmp) ++csr.row_offsets[static_cast<std::size_t>(r) + 1];
  for (Index i = 0; i < seq_len; ++i) {
    csr.row_offsets[static_cast<std::size_t>(i) + 1] +=
        csr.row_offsets[static_cast<std::size_t>(i)];
  }
  csr.values.assign(csr.col_idx.size(), 1.0f);
  return csr;
}

Csr<float> dense_to_csr(const Matrix<std::uint8_t>& mask) {
  GPA_CHECK(mask.rows() == mask.cols(), "attention masks are square");
  return csr_from_rows(mask.rows(), [&](Index i, std::vector<Index>& cols) {
    const std::uint8_t* row = mask.row(i);
    for (Index j = 0; j < mask.cols(); ++j) {
      if (row[j] != 0) cols.push_back(j);
    }
  });
}

Matrix<std::uint8_t> csr_to_dense(const Csr<float>& csr) {
  Matrix<std::uint8_t> mask(csr.rows, csr.cols);
  mask.zero();
  for (Index i = 0; i < csr.rows; ++i) {
    for (Index k = csr.row_begin(i); k < csr.row_end(i); ++k) {
      mask(i, csr.col_idx[static_cast<std::size_t>(k)]) = 1;
    }
  }
  return mask;
}

Coo<float> csr_to_coo(const Csr<float>& csr) {
  Coo<float> coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.row_idx.reserve(csr.nnz());
  for (Index i = 0; i < csr.rows; ++i) {
    for (Index k = csr.row_begin(i); k < csr.row_end(i); ++k) {
      coo.row_idx.push_back(i);
    }
  }
  coo.col_idx = csr.col_idx;
  coo.values = csr.values;
  return coo;
}

Csr<float> coo_to_csr(const Coo<float>& coo) {
  Csr<float> csr;
  csr.rows = coo.rows;
  csr.cols = coo.cols;
  csr.row_offsets.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
  for (const Index r : coo.row_idx) ++csr.row_offsets[static_cast<std::size_t>(r) + 1];
  for (Index i = 0; i < coo.rows; ++i) {
    csr.row_offsets[static_cast<std::size_t>(i) + 1] +=
        csr.row_offsets[static_cast<std::size_t>(i)];
  }
  csr.col_idx = coo.col_idx;
  csr.values = coo.values;
  return csr;
}

Csr<float> csr_leading_slice(const Csr<float>& mask, Index n) {
  GPA_CHECK(n >= 0 && n <= mask.rows && n <= mask.cols,
            "slice extent must fit inside the mask");
  Csr<float> s;
  s.rows = n;
  s.cols = n;
  s.row_offsets.assign(1, 0);
  for (Index i = 0; i < n; ++i) {
    for (Index kk = mask.row_begin(i); kk < mask.row_end(i); ++kk) {
      const Index j = mask.col_idx[static_cast<std::size_t>(kk)];
      if (j >= n) break;  // columns sorted: rest of the row is outside
      s.col_idx.push_back(j);
      s.values.push_back(mask.values[static_cast<std::size_t>(kk)]);
    }
    s.row_offsets.push_back(static_cast<Index>(s.col_idx.size()));
  }
  return s;
}

}  // namespace gpa
