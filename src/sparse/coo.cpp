#include "sparse/coo.hpp"

#include "common/error.hpp"
#include "common/half.hpp"

namespace gpa {

template <typename T>
bool Coo<T>::is_canonical() const {
  if (row_idx.size() != col_idx.size() || row_idx.size() != values.size()) return false;
  for (std::size_t k = 0; k < row_idx.size(); ++k) {
    if (row_idx[k] < 0 || row_idx[k] >= rows) return false;
    if (col_idx[k] < 0 || col_idx[k] >= cols) return false;
    if (k > 0) {
      const bool ordered = row_idx[k - 1] < row_idx[k] ||
                           (row_idx[k - 1] == row_idx[k] && col_idx[k - 1] < col_idx[k]);
      if (!ordered) return false;
    }
  }
  return true;
}

template <typename T>
void validate(const Coo<T>& coo) {
  GPA_CHECK(coo.is_canonical(), "COO mask is not canonical (sorted, unique, in-range)");
}

template struct Coo<float>;
template struct Coo<half_t>;
template void validate(const Coo<float>&);
template void validate(const Coo<half_t>&);

}  // namespace gpa
