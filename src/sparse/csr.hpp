#pragma once
// CSR (compressed sparse row) mask format — the paper's preferred
// explicit representation: one O(L) row-offset vector plus O(Sf·L²)
// column/value vectors (§V-D explains why this beats COO on achievable
// context length).

#include <vector>

#include "common/types.hpp"

namespace gpa {

template <typename T = float>
struct Csr {
  Index rows = 0;
  Index cols = 0;
  std::vector<Index> row_offsets;  ///< size rows+1
  std::vector<Index> col_idx;      ///< size nnz
  std::vector<T> values;           ///< size nnz

  Size nnz() const noexcept { return col_idx.size(); }

  Index row_begin(Index i) const noexcept { return row_offsets[static_cast<std::size_t>(i)]; }
  Index row_end(Index i) const noexcept { return row_offsets[static_cast<std::size_t>(i) + 1]; }
  Index row_degree(Index i) const noexcept { return row_end(i) - row_begin(i); }

  /// Storage bytes under the paper's accounting (32-bit indices).
  Size storage_bytes() const noexcept {
    return (static_cast<Size>(rows) + 1) * kSparseIndexBytes +
           nnz() * (kSparseIndexBytes + sizeof(T));
  }

  /// Offsets monotone, columns sorted & unique per row, all in range.
  bool is_canonical() const;
};

template <typename T>
void validate(const Csr<T>& csr);

}  // namespace gpa
