#pragma once
// Mask set-algebra. Figure 2's Longformer and BigBird masks are unions
// of primitive patterns; the paper evaluates them both as one fused CSR
// mask and as sequential kernel calls over disjoint components. Union /
// subtract / intersect here produce canonical CSR results and are what
// the presets and the disjointness tests build on.

#include <vector>

#include "sparse/csr.hpp"

namespace gpa {

/// Union of two masks (values of overlapping entries taken from `a`).
Csr<float> mask_union(const Csr<float>& a, const Csr<float>& b);

/// Entries of `a` not present in `b`.
Csr<float> mask_subtract(const Csr<float>& a, const Csr<float>& b);

/// Entries present in both.
Csr<float> mask_intersect(const Csr<float>& a, const Csr<float>& b);

/// Union of any number of masks.
Csr<float> mask_union_all(const std::vector<Csr<float>>& parts);

/// True iff the masks share no entry (safe to chain kernels over them).
bool masks_disjoint(const Csr<float>& a, const Csr<float>& b);

}  // namespace gpa
