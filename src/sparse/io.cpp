#include "sparse/io.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace gpa {

namespace {
constexpr char kMagic[8] = {'G', 'P', 'A', 'C', 'S', 'R', '1', '\0'};

template <typename T>
void write_vec(std::ofstream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void read_vec(std::ifstream& in, std::vector<T>& v, std::size_t n) {
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
}
}  // namespace

void save_csr(const Csr<float>& mask, const std::string& path) {
  GPA_CHECK(mask.is_canonical(), "refusing to serialise a non-canonical mask");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GPA_CHECK(out.good(), "cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t header[3] = {static_cast<std::uint64_t>(mask.rows),
                                   static_cast<std::uint64_t>(mask.cols), mask.nnz()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  write_vec(out, mask.row_offsets);
  write_vec(out, mask.col_idx);
  write_vec(out, mask.values);
  GPA_CHECK(out.good(), "short write while serialising: " + path);
}

Csr<float> load_csr(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GPA_CHECK(in.good(), "cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  GPA_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "not a GPA CSR file: " + path);
  std::uint64_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  GPA_CHECK(in.good(), "truncated header: " + path);

  Csr<float> mask;
  mask.rows = static_cast<Index>(header[0]);
  mask.cols = static_cast<Index>(header[1]);
  const auto nnz = static_cast<std::size_t>(header[2]);
  read_vec(in, mask.row_offsets, static_cast<std::size_t>(mask.rows) + 1);
  read_vec(in, mask.col_idx, nnz);
  read_vec(in, mask.values, nnz);
  GPA_CHECK(in.good(), "truncated payload: " + path);
  GPA_CHECK(mask.is_canonical(), "corrupt mask payload: " + path);
  return mask;
}

}  // namespace gpa
