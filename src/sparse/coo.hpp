#pragma once
// COO (coordinate) sparse mask format — the first of the paper's two
// explicit-mask representations. Entries are stored with "grouped rows
// and sorted columns" (§V-C), i.e. sorted lexicographically by (row,
// col), which is what forces the COO kernel to *search* for its row's
// extent.

#include <vector>

#include "common/types.hpp"

namespace gpa {

template <typename T = float>
struct Coo {
  Index rows = 0;
  Index cols = 0;
  std::vector<Index> row_idx;
  std::vector<Index> col_idx;
  std::vector<T> values;

  Size nnz() const noexcept { return row_idx.size(); }

  /// Storage bytes under the paper's accounting (32-bit indices).
  Size storage_bytes() const noexcept {
    return nnz() * (2 * kSparseIndexBytes + sizeof(T));
  }

  /// True if entries are sorted by (row, col) with no duplicates and all
  /// coordinates in range — the invariant every kernel assumes.
  bool is_canonical() const;
};

/// Throws InvalidArgument unless `is_canonical()`.
template <typename T>
void validate(const Coo<T>& coo);

}  // namespace gpa
