#pragma once
// Attention mask patterns (§II-C of the paper).
//
// Each pattern is a cheap (i, j) predicate plus a parameter struct. The
// predicates for 1D and 2D dilation transcribe the paper's pseudocode
// verbatim (including the 2D code's grouping quirk — see Dilated2D
// below) so that the implicit kernels, the mask builders, and the tests
// all agree on a single definition.

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gpa {

/// Local / windowed attention: token i attends to j iff |i-j| < window.
/// `window` is the parameter `w` in the paper's 1D pseudocode; a token
/// sees `window-1` tokens behind and ahead of itself plus itself.
struct LocalParams {
  Index window = 1;

  bool contains(Index i, Index j) const noexcept {
    const Index d = i > j ? i - j : j - i;
    return d < window;
  }
};

/// 1D dilated windowed attention (paper pseudocode):
///   (|i-j| < w) && (|i-j| % (r+1) == 0)
struct Dilated1DParams {
  Index window = 1;    ///< w
  Index dilation = 0;  ///< r; r = 0 degenerates to LocalParams

  bool contains(Index i, Index j) const noexcept {
    const Index d = i > j ? i - j : j - i;
    return d < window && d % (dilation + 1) == 0;
  }
};

/// 2D dilated (blockwise) attention, transcribed from the paper:
///   if (floor(i/(L/b)) == floor(j/(L/b))) {
///     i_b = i % b; j_b = j % b;
///     return (i_b % (r+1) == 0) && (j_b % (r+1) == 0);
///   } else return 0;
/// Note the quirk inherited from the paper: the *group* extent is L/b
/// (there are b groups), while the intra-block coordinates are taken
/// modulo b. The predicate is kept verbatim because the implicit kernel,
/// the builders and the verification all share it; L must be divisible
/// by b for the grouping to tile the sequence exactly.
struct Dilated2DParams {
  Index seq_len = 0;   ///< L (the predicate needs it for the group size)
  Index block = 1;     ///< b
  Index dilation = 0;  ///< r

  Index group_size() const noexcept { return seq_len / block; }

  bool contains(Index i, Index j) const noexcept {
    const Index g = group_size();
    if (g == 0 || i / g != j / g) return false;
    return (i % block) % (dilation + 1) == 0 && (j % block) % (dilation + 1) == 0;
  }
};

/// Global attention: every token in `tokens` attends to all tokens and
/// is attended to by all tokens (full row + full column per global
/// token). The paper's "global (non-local)" kernel additionally
/// *subtracts* a local window so it can be chained after a local pass
/// without double-counting; that subtraction belongs to the kernel
/// (GlobalMinusLocal below), not to the mask definition.
struct GlobalParams {
  std::vector<Index> tokens;  ///< sorted, unique global token indices

  bool is_global(Index t) const noexcept {
    // Token lists are tiny (BigBird/Longformer use a handful), linear scan.
    for (const Index g : tokens) {
      if (g == t) return true;
      if (g > t) return false;
    }
    return false;
  }
  bool contains(Index i, Index j) const noexcept { return is_global(i) || is_global(j); }
};

/// Global minus a local window: the edge set the paper's global kernel
/// actually visits ("the local mask is subtracted from the global").
struct GlobalMinusLocalParams {
  GlobalParams global;
  LocalParams local;

  bool contains(Index i, Index j) const noexcept {
    return global.contains(i, j) && !local.contains(i, j);
  }
};

/// Uniform random attention (BigBird's third component). Materialised by
/// the builders with a seeded Rng; the predicate form is not available
/// (membership is defined by the sample), so this carries parameters
/// only.
struct RandomParams {
  double sparsity = 0.0;       ///< target Sf for the random component
  std::uint64_t seed = 12345;  ///< deterministic sampling
};

/// Block-sparse pattern (related-work §III): dense blocks of size
/// `block` on a coarse grid where `grid(i/block, j/block)` is set. Used
/// by the block-sparse flash baseline's tests.
struct BlockParams {
  Index block = 1;
  Index grid_rows = 0;
  std::vector<std::uint8_t> grid;  ///< row-major grid occupancy

  bool contains(Index i, Index j) const noexcept {
    const Index bi = i / block;
    const Index bj = j / block;
    return grid[static_cast<std::size_t>(bi * grid_rows + bj)] != 0;
  }
};

/// Causal restriction (j <= i), composable with any of the above.
struct CausalParams {
  bool contains(Index i, Index j) const noexcept { return j <= i; }
};

/// Validated parameter constructors (throw InvalidArgument on nonsense).
LocalParams make_local(Index window);
Dilated1DParams make_dilated1d(Index window, Index dilation);
Dilated2DParams make_dilated2d(Index seq_len, Index block, Index dilation);
GlobalParams make_global(std::vector<Index> tokens, Index seq_len);

}  // namespace gpa
