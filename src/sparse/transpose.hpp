#pragma once
// CSR transpose. The backward pass accumulates into dK/dV along mask
// *columns*; transposing the mask once turns that into a row-parallel
// pass with no write conflicts. Every implicit pattern in the paper is
// symmetric (local, dilated, global), so only explicit and causal masks
// need this.

#include "sparse/csr.hpp"

namespace gpa {

/// Returns Aᵀ in canonical CSR form. `entry_map[t]` gives, for each
/// entry t of the transpose, the index of the corresponding entry in
/// the input — the backward pass uses it to read per-edge values
/// computed during the forward traversal.
struct TransposedCsr {
  Csr<float> t;
  std::vector<Index> entry_map;
};
TransposedCsr transpose_csr(const Csr<float>& a);

/// True iff the mask's edge set is symmetric (A == Aᵀ structurally).
bool is_structurally_symmetric(const Csr<float>& a);

}  // namespace gpa
