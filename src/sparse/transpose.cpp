#include "sparse/transpose.hpp"

#include "common/error.hpp"

namespace gpa {

TransposedCsr transpose_csr(const Csr<float>& a) {
  TransposedCsr out;
  out.t.rows = a.cols;
  out.t.cols = a.rows;
  out.t.row_offsets.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  out.t.col_idx.resize(a.nnz());
  out.t.values.resize(a.nnz());
  out.entry_map.resize(a.nnz());

  // Counting sort by column: count, prefix-sum, scatter.
  for (const Index c : a.col_idx) ++out.t.row_offsets[static_cast<std::size_t>(c) + 1];
  for (Index i = 0; i < a.cols; ++i) {
    out.t.row_offsets[static_cast<std::size_t>(i) + 1] +=
        out.t.row_offsets[static_cast<std::size_t>(i)];
  }
  std::vector<Index> cursor(out.t.row_offsets.begin(), out.t.row_offsets.end() - 1);
  for (Index i = 0; i < a.rows; ++i) {
    for (Index k = a.row_begin(i); k < a.row_end(i); ++k) {
      const Index c = a.col_idx[static_cast<std::size_t>(k)];
      const Index slot = cursor[static_cast<std::size_t>(c)]++;
      out.t.col_idx[static_cast<std::size_t>(slot)] = i;
      out.t.values[static_cast<std::size_t>(slot)] = a.values[static_cast<std::size_t>(k)];
      out.entry_map[static_cast<std::size_t>(slot)] = k;
    }
  }
  // Rows were visited in ascending order, so each transpose row is
  // already sorted — the result is canonical by construction.
  return out;
}

bool is_structurally_symmetric(const Csr<float>& a) {
  if (a.rows != a.cols) return false;
  const auto t = transpose_csr(a);
  return t.t.row_offsets == a.row_offsets && t.t.col_idx == a.col_idx;
}

}  // namespace gpa
