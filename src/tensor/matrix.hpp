#pragma once
// Row-major dense matrix. This is the only tensor type the library
// needs: Q, K, V, O are all L×d row-major matrices (one row per token),
// matching how the kernels walk memory (a neighbor pull reads one
// contiguous K/V row).

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gpa {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols) : rows_(rows), cols_(cols) {
    GPA_CHECK(rows >= 0 && cols >= 0, "matrix extents must be non-negative");
    data_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Size size_bytes() const noexcept { return data_.size() * sizeof(T); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Pointer to the start of row i (unchecked in release builds).
  T* row(Index i) noexcept { return data_.data() + static_cast<std::size_t>(i) * cols_; }
  const T* row(Index i) const noexcept {
    return data_.data() + static_cast<std::size_t>(i) * cols_;
  }

  T& operator()(Index i, Index j) noexcept { return row(i)[j]; }
  const T& operator()(Index i, Index j) const noexcept { return row(i)[j]; }

  T& at(Index i, Index j) {
    GPA_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "matrix index out of range");
    return row(i)[j];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }
  void zero() { fill(T{}); }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<T> data_;
};

}  // namespace gpa
