#include "tensor/tensor_ops.hpp"

#include <cmath>

namespace gpa {

void fill_uniform(Matrix<float>& m, Rng& rng) {
  float* p = m.data();
  const std::size_t n = static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
  for (std::size_t i = 0; i < n; ++i) p[i] = rng.next_float();
}

void fill_uniform(Matrix<half_t>& m, Rng& rng) {
  half_t* p = m.data();
  const std::size_t n = static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
  for (std::size_t i = 0; i < n; ++i) p[i] = half_t(rng.next_float());
}

Matrix<float> to_f32(const Matrix<half_t>& m) {
  Matrix<float> out(m.rows(), m.cols());
  const half_t* src = m.data();
  float* dst = out.data();
  const std::size_t n = static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
  return out;
}

Matrix<half_t> to_f16(const Matrix<float>& m) {
  Matrix<half_t> out(m.rows(), m.cols());
  const float* src = m.data();
  half_t* dst = out.data();
  const std::size_t n = static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_t(src[i]);
  return out;
}

CloseReport allclose(const Matrix<float>& a, const Matrix<float>& b, double rtol, double atol) {
  GPA_CHECK(a.same_shape(b), "allclose: shape mismatch");
  CloseReport report;
  for (Index i = 0; i < a.rows(); ++i) {
    const float* ra = a.row(i);
    const float* rb = b.row(i);
    for (Index j = 0; j < a.cols(); ++j) {
      const double x = ra[j];
      const double y = rb[j];
      if (std::isnan(x) && std::isnan(y)) continue;  // equal_nan=True
      const double diff = std::abs(x - y);
      if (diff > report.max_abs_diff) {
        report.max_abs_diff = diff;
        report.worst_row = i;
        report.worst_col = j;
      }
      if (!(diff <= atol + rtol * std::abs(y))) report.all_close = false;
    }
  }
  return report;
}

double max_abs_diff(const Matrix<float>& a, const Matrix<float>& b) {
  return allclose(a, b, 0.0, 0.0).max_abs_diff;
}

}  // namespace gpa
