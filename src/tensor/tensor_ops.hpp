#pragma once
// Element-wise helpers over Matrix<T>: random fills matching the paper's
// input protocol, dtype conversion, and the allclose comparison the
// paper uses for verification (§V-A).

#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// Fill with uniform [0, 1) draws — the distribution the paper's
/// verification harness uses for Q, K, V.
void fill_uniform(Matrix<float>& m, Rng& rng);
void fill_uniform(Matrix<half_t>& m, Rng& rng);

/// Widen / narrow between storage types.
Matrix<float> to_f32(const Matrix<half_t>& m);
Matrix<half_t> to_f16(const Matrix<float>& m);

/// Result of an allclose comparison, with the worst offender located for
/// debuggability.
struct CloseReport {
  bool all_close = true;
  double max_abs_diff = 0.0;
  Index worst_row = -1;
  Index worst_col = -1;
};

/// PyTorch-style allclose: |a-b| <= atol + rtol*|b|, NaN == NaN
/// (equal_nan=True, as the paper sets). Defaults are the paper's
/// verification tolerances.
CloseReport allclose(const Matrix<float>& a, const Matrix<float>& b, double rtol = 1e-5,
                     double atol = 1e-8);

/// Max |a - b| over all elements.
double max_abs_diff(const Matrix<float>& a, const Matrix<float>& b);

}  // namespace gpa
