#pragma once
// Dense matrix multiplication for the baselines. The masked-SDP baseline
// (PyTorch analogue) does two full dense GEMMs per attention call; this
// blocked implementation stands in for cuBLAS. It is deliberately a
// straightforward cache-blocked kernel — the baselines' defining cost is
// the O(L²·d) operation count, which no amount of tuning removes.

#include "parallel/exec_policy.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// C = A · Bᵀ  (A: m×k, B: n×k, C: m×n). B is passed row-major and
/// logically transposed, which is exactly the Q·Kᵀ layout.
void gemm_nt(const Matrix<float>& a, const Matrix<float>& b, Matrix<float>& c,
             const ExecPolicy& policy = {});

/// C = A · B  (A: m×k, B: k×n, C: m×n) — the P·V product.
void gemm_nn(const Matrix<float>& a, const Matrix<float>& b, Matrix<float>& c,
             const ExecPolicy& policy = {});

}  // namespace gpa
