#include "tensor/gemm.hpp"

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "simd/simd.hpp"

namespace gpa {

namespace {
// Tile extents chosen so one A-tile plus one B-tile stay L1-resident.
constexpr Index kTileI = 64;
constexpr Index kTileJ = 64;
}  // namespace

void gemm_nt(const Matrix<float>& a, const Matrix<float>& b, Matrix<float>& c,
             const ExecPolicy& policy) {
  const Index m = a.rows(), k = a.cols(), n = b.rows();
  GPA_CHECK(b.cols() == k, "gemm_nt: inner dimension mismatch");
  GPA_CHECK(c.rows() == m && c.cols() == n, "gemm_nt: output shape mismatch");
  const simd::VecOps& vo = simd::ops(policy.simd);

  parallel_for_chunks(0, m, policy, [&](Index i_lo, Index i_hi) {
    for (Index ii = i_lo; ii < i_hi; ii += kTileI) {
      const Index i_end = ii + kTileI < i_hi ? ii + kTileI : i_hi;
      for (Index jj = 0; jj < n; jj += kTileJ) {
        const Index j_end = jj + kTileJ < n ? jj + kTileJ : n;
        for (Index i = ii; i < i_end; ++i) {
          const float* arow = a.row(i);
          float* crow = c.row(i);
          for (Index j = jj; j < j_end; ++j) {
            crow[j] = vo.dot(arow, b.row(j), k);
          }
        }
      }
    }
  });
}

void gemm_nn(const Matrix<float>& a, const Matrix<float>& b, Matrix<float>& c,
             const ExecPolicy& policy) {
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  GPA_CHECK(b.rows() == k, "gemm_nn: inner dimension mismatch");
  GPA_CHECK(c.rows() == m && c.cols() == n, "gemm_nn: output shape mismatch");
  const simd::VecOps& vo = simd::ops(policy.simd);

  parallel_for_chunks(0, m, policy, [&](Index i_lo, Index i_hi) {
    for (Index i = i_lo; i < i_hi; ++i) {
      const float* arow = a.row(i);
      float* crow = c.row(i);
      for (Index j = 0; j < n; ++j) crow[j] = 0.0f;
      // ikj order: stream through B rows, accumulate into the C row.
      // Deliberately no zero-skipping: the dense baselines must do the
      // full O(L²·d) work regardless of mask sparsity (that flatness vs
      // Sf is the behaviour Fig. 3 / Fig. 6 measure).
      for (Index p = 0; p < k; ++p) {
        vo.axpy(crow, arow[p], b.row(p), n);
      }
    }
  });
}

}  // namespace gpa
