#include "tensor/softmax.hpp"

namespace gpa {

void softmax_rows(Matrix<float>& scores, SimdLevel level) {
  const Index rows = scores.rows();
  const Index cols = scores.cols();
  const simd::VecOps& vo = simd::ops(level);
  for (Index i = 0; i < rows; ++i) {
    float* row = scores.row(i);
    const float m = vo.reduce_max(row, cols);
    if (m == -std::numeric_limits<float>::infinity()) {
      // Fully masked row: define the distribution as all-zero.
      for (Index j = 0; j < cols; ++j) row[j] = 0.0f;
      continue;
    }
    for (Index j = 0; j < cols; ++j) row[j] = std::exp(row[j] - m);
    const float l = vo.reduce_sum(row, cols);
    vo.scale(row, 1.0f / l, cols);
  }
}

float online_softmax_fold_tile(OnlineSoftmaxRow& osr, float* scores, Index n,
                               const simd::VecOps& vo) noexcept {
  if (n <= 0) return 1.0f;
  const float tile_max = vo.reduce_max(scores, n);
  const float m_new = osr.m > tile_max ? osr.m : tile_max;
  if (m_new == -std::numeric_limits<float>::infinity()) {
    // Row still empty after this tile (every score -inf): keep the state
    // untouched instead of computing exp(-inf − -inf) = NaN.
    for (Index j = 0; j < n; ++j) scores[j] = 0.0f;
    return 1.0f;
  }
  const float alpha = std::exp(osr.m - m_new);
  for (Index j = 0; j < n; ++j) scores[j] = std::exp(scores[j] - m_new);
  osr.l = osr.l * alpha + vo.reduce_sum(scores, n);
  osr.m = m_new;
  return alpha;
}

MergedState merge_online_states(float m_a, float l_a, float m_b, float l_b) noexcept {
  const float m = m_a > m_b ? m_a : m_b;
  if (m == -std::numeric_limits<float>::infinity()) {
    // Both sides empty.
    return {m, 0.0f, 0.0f, 0.0f};
  }
  const float ca = std::exp(m_a - m);
  const float cb = std::exp(m_b - m);
  return {m, l_a * ca + l_b * cb, ca, cb};
}

}  // namespace gpa
