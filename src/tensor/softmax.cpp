#include "tensor/softmax.hpp"

namespace gpa {

void softmax_rows(Matrix<float>& scores) {
  const Index rows = scores.rows();
  const Index cols = scores.cols();
  for (Index i = 0; i < rows; ++i) {
    float* row = scores.row(i);
    float m = -std::numeric_limits<float>::infinity();
    for (Index j = 0; j < cols; ++j) m = row[j] > m ? row[j] : m;
    if (m == -std::numeric_limits<float>::infinity()) {
      // Fully masked row: define the distribution as all-zero.
      for (Index j = 0; j < cols; ++j) row[j] = 0.0f;
      continue;
    }
    float l = 0.0f;
    for (Index j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - m);
      l += row[j];
    }
    const float inv = 1.0f / l;
    for (Index j = 0; j < cols; ++j) row[j] *= inv;
  }
}

MergedState merge_online_states(float m_a, float l_a, float m_b, float l_b) noexcept {
  const float m = m_a > m_b ? m_a : m_b;
  if (m == -std::numeric_limits<float>::infinity()) {
    // Both sides empty.
    return {m, 0.0f, 0.0f, 0.0f};
  }
  const float ca = std::exp(m_a - m);
  const float cb = std::exp(m_b - m);
  return {m, l_a * ca + l_b * cb, ca, cb};
}

}  // namespace gpa
