#pragma once
// Softmax primitives.
//
// Two flavours live here:
//  * the classic two-pass numerically stable row softmax used by the
//    masked-SDP baseline, and
//  * the online (single-pass) normaliser of Milakov & Gimelshein that
//    Algorithm 1 and FlashAttention build on: a running maximum `m` and
//    running denominator `l` folded edge by edge.

#include <cmath>
#include <limits>

#include "simd/simd.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// In-place numerically stable softmax over each row. Rows whose maximum
/// is -inf (fully masked) become all-zero rows rather than NaN — see
/// DESIGN.md §4 for why this convention is used on both sides of every
/// comparison; the convention is enforced on both SIMD dispatch arms
/// (the vector max-reduction seeds dead tail lanes with -inf, so an
/// all-masked row cannot pick up a spurious 0 maximum).
/// The max / sum / rescale passes go through the dispatched vector ops;
/// exp stays element-wise scalar (identical libm call on both arms).
void softmax_rows(Matrix<float>& scores, SimdLevel level = SimdLevel::Auto);

/// Online softmax accumulator for a single output row: the (m, l, acc)
/// triple of Algorithm 1, with the accumulator kept unnormalised until
/// `finish` (algebraically identical to the paper's per-step division).
struct OnlineSoftmaxRow {
  float m = -std::numeric_limits<float>::infinity();
  float l = 0.0f;

  /// Folds one score in and returns the pair of rescaling coefficients
  /// (alpha for the existing accumulator, beta for the incoming value
  /// row): acc = alpha * acc + beta * V[j].
  struct Coeffs {
    float alpha;
    float beta;
  };
  Coeffs push(float score) noexcept {
    if (score == -std::numeric_limits<float>::infinity() &&
        m == -std::numeric_limits<float>::infinity()) {
      return {1.0f, 0.0f};  // avoid exp(-inf - -inf) = NaN on a still-empty row
    }
    const float m_new = score > m ? score : m;
    const float alpha = std::exp(m - m_new);  // exp(-inf - m_new) == 0 handles the first edge
    const float beta = std::exp(score - m_new);
    l = l * alpha + beta;
    m = m_new;
    return {alpha, beta};
  }

  /// Normaliser to apply to the accumulator at the end (0 for an empty
  /// row, which zeroes the output).
  float inv_l() const noexcept { return l > 0.0f ? 1.0f / l : 0.0f; }
};

/// Batched fold of one tile of `n` scores into an online-softmax row
/// state — the vectorized form of n successive `push` calls with one max
/// update. On return `scores[0..n)` holds the unnormalised tile
/// probabilities exp(s_j - m_new) and the returned alpha is the rescale
/// coefficient for the caller's accumulator (1 when the running max did
/// not move). A tile that leaves the row's maximum at -inf (fully
/// masked so far) zeroes the probabilities and leaves (m, l) untouched,
/// mirroring OnlineSoftmaxRow::push's empty-row guard.
float online_softmax_fold_tile(OnlineSoftmaxRow& osr, float* scores, Index n,
                               const simd::VecOps& vo) noexcept;

/// Merge of two online-softmax states over disjoint edge sets:
/// returns coefficients to combine the two unnormalised accumulators.
struct MergedState {
  float m;
  float l;
  float coeff_a;  // multiply accumulator A by this
  float coeff_b;  // multiply accumulator B by this
};
MergedState merge_online_states(float m_a, float l_a, float m_b, float l_b) noexcept;

}  // namespace gpa
