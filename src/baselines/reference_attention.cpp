#include "baselines/reference_attention.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "sparse/build.hpp"

namespace gpa::baselines {

namespace {

float resolve(float scale, Index d) {
  return scale >= 0.0f ? scale : 1.0f / std::sqrt(static_cast<float>(d));
}

}  // namespace

void reference_attention(const Matrix<float>& q, const Matrix<float>& k,
                         const Matrix<float>& v, const Matrix<std::uint8_t>& mask,
                         Matrix<float>& out, float scale) {
  const Index L = q.rows();
  const Index d = q.cols();
  GPA_CHECK(k.rows() == L && v.rows() == L, "reference: sequence length mismatch");
  GPA_CHECK(k.cols() == d && v.cols() == d, "reference: head dimension mismatch");
  GPA_CHECK(mask.rows() == L && mask.cols() == L, "reference: mask must be L×L");
  GPA_CHECK(out.rows() == L && out.cols() == d, "reference: output shape mismatch");
  const float s = resolve(scale, d);

  std::vector<double> probs(static_cast<std::size_t>(L));
  for (Index i = 0; i < L; ++i) {
    const float* qi = q.row(i);
    const std::uint8_t* mrow = mask.row(i);

    // Pass 1: scores and row max.
    double row_max = -std::numeric_limits<double>::infinity();
    for (Index j = 0; j < L; ++j) {
      if (mrow[j] == 0) {
        probs[static_cast<std::size_t>(j)] = -std::numeric_limits<double>::infinity();
        continue;
      }
      const float* kj = k.row(j);
      double w = 0.0;
      for (Index p = 0; p < d; ++p) {
        w += static_cast<double>(qi[p]) * static_cast<double>(kj[p]);
      }
      w *= s;
      probs[static_cast<std::size_t>(j)] = w;
      row_max = std::max(row_max, w);
    }

    float* oi = out.row(i);
    if (row_max == -std::numeric_limits<double>::infinity()) {
      for (Index p = 0; p < d; ++p) oi[p] = 0.0f;  // fully-masked row
      continue;
    }

    // Pass 2: exponentiate + normalise.
    double l = 0.0;
    for (Index j = 0; j < L; ++j) {
      auto& pj = probs[static_cast<std::size_t>(j)];
      pj = std::exp(pj - row_max);  // exp(-inf) == 0 for masked entries
      l += pj;
    }

    // Weighted sum of V rows in double precision.
    for (Index p = 0; p < d; ++p) oi[p] = 0.0f;
    std::vector<double> acc(static_cast<std::size_t>(d), 0.0);
    for (Index j = 0; j < L; ++j) {
      const double pj = probs[static_cast<std::size_t>(j)];
      if (pj == 0.0) continue;
      const float* vj = v.row(j);
      for (Index p = 0; p < d; ++p) acc[static_cast<std::size_t>(p)] += pj * vj[p];
    }
    for (Index p = 0; p < d; ++p) {
      oi[p] = static_cast<float>(acc[static_cast<std::size_t>(p)] / l);
    }
  }
}

void reference_attention(const Matrix<float>& q, const Matrix<float>& k,
                         const Matrix<float>& v, const Csr<float>& mask, Matrix<float>& out,
                         float scale) {
  reference_attention(q, k, v, csr_to_dense(mask), out, scale);
}

void reference_attention_dense(const Matrix<float>& q, const Matrix<float>& k,
                               const Matrix<float>& v, Matrix<float>& out, float scale) {
  Matrix<std::uint8_t> ones(q.rows(), q.rows());
  ones.fill(1);
  reference_attention(q, k, v, ones, out, scale);
}

}  // namespace gpa::baselines
