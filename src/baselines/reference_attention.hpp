#pragma once
// Exact masked attention reference — the oracle every kernel is verified
// against, mirroring the paper's §V-A protocol (they verified against
// PyTorch's scaled_dot_product_attention with an explicit binary mask).
// Deliberately simple and serial: O(L²·d) time, O(L²) memory, two-pass
// stable softmax, double-precision row accumulation.

#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::baselines {

/// O = softmax(scale·QKᵀ + mask ? 0 : -inf) · V, computed densely.
/// Fully-masked rows produce zero rows (DESIGN.md §4).
/// scale < 0 selects 1/sqrt(dk).
void reference_attention(const Matrix<float>& q, const Matrix<float>& k,
                         const Matrix<float>& v, const Matrix<std::uint8_t>& mask,
                         Matrix<float>& out, float scale = -1.0f);

/// Convenience overload taking the mask in CSR form.
void reference_attention(const Matrix<float>& q, const Matrix<float>& k,
                         const Matrix<float>& v, const Csr<float>& mask, Matrix<float>& out,
                         float scale = -1.0f);

/// Dense (unmasked) reference.
void reference_attention_dense(const Matrix<float>& q, const Matrix<float>& k,
                               const Matrix<float>& v, Matrix<float>& out, float scale = -1.0f);

}  // namespace gpa::baselines
