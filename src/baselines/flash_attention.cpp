#include "baselines/flash_attention.hpp"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "parallel/parallel_for.hpp"
#include "simd/simd.hpp"
#include "tensor/softmax.hpp"

namespace gpa::baselines {

template <typename T>
void flash_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                     Matrix<T>& out, const AttentionOptions& opts, const FlashConfig& cfg) {
  const Index L = q.rows();
  const Index d = q.cols();
  GPA_CHECK(k.rows() == L && v.rows() == L, "flash: sequence length mismatch");
  GPA_CHECK(k.cols() == d && v.cols() == d, "flash: head dimension mismatch");
  GPA_CHECK(out.rows() == L && out.cols() == d, "flash: output shape mismatch");
  GPA_CHECK(cfg.tile_cols >= 1, "flash: tile width must be >= 1");
  const float scale = gpa::detail::resolve_scale(opts.scale, d);
  const Index bc = cfg.tile_cols;
  const simd::VecOps& vo = simd::ops(opts.policy.simd);

  parallel_for_chunks(0, L, opts.policy, [&](Index row_lo, Index row_hi) {
    // Per-worker scratch: one tile of scores for one query row.
    std::vector<float> s_tile(static_cast<std::size_t>(bc));
    std::vector<float> acc(static_cast<std::size_t>(d));

    for (Index i = row_lo; i < row_hi; ++i) {
      const T* qi = q.row(i);
      OnlineSoftmaxRow osr;
      for (Index p = 0; p < d; ++p) acc[static_cast<std::size_t>(p)] = 0.0f;

      // Causal attention skips whole tiles beyond the diagonal and clips
      // the diagonal tile — the standard flash causal optimisation.
      const Index row_limit = opts.causal ? i + 1 : L;
      for (Index j0 = 0; j0 < row_limit; j0 += bc) {
        const Index j1 = std::min(j0 + bc < L ? j0 + bc : L, row_limit);
        const Index count = j1 - j0;

        // Scores for this tile (vector dot on the float path; half
        // storage keeps the scalar convert-and-accumulate loop).
        for (Index j = j0; j < j1; ++j) {
          float w;
          if constexpr (std::is_same_v<T, float>) {
            w = vo.dot(qi, k.row(j), d);
          } else {
            const T* kj = k.row(j);
            w = 0.0f;
            for (Index p = 0; p < d; ++p) {
              w += static_cast<float>(qi[p]) * static_cast<float>(kj[p]);
            }
          }
          s_tile[static_cast<std::size_t>(j - j0)] = w * scale;
        }

        // Online-softmax merge of the tile into the running state:
        // s_tile becomes the unnormalised probabilities, alpha rescales
        // the accumulator when the running max moved.
        const float alpha = online_softmax_fold_tile(osr, s_tile.data(), count, vo);
        if (alpha != 1.0f) vo.scale(acc.data(), alpha, d);
        for (Index j = j0; j < j1; ++j) {
          const float pj = s_tile[static_cast<std::size_t>(j - j0)];
          if constexpr (std::is_same_v<T, float>) {
            vo.axpy(acc.data(), pj, v.row(j), d);
          } else {
            const T* vj = v.row(j);
            for (Index p = 0; p < d; ++p) {
              acc[static_cast<std::size_t>(p)] += pj * static_cast<float>(vj[p]);
            }
          }
        }
      }

      const float inv = osr.inv_l();
      T* oi = out.row(i);
      for (Index p = 0; p < d; ++p) oi[p] = T(acc[static_cast<std::size_t>(p)] * inv);
    }
  });
}

template void flash_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                              Matrix<float>&, const AttentionOptions&, const FlashConfig&);
template void flash_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                              const Matrix<half_t>&, Matrix<half_t>&, const AttentionOptions&,
                              const FlashConfig&);

}  // namespace gpa::baselines
