#include "baselines/block_sparse_flash.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "parallel/parallel_for.hpp"

namespace gpa::baselines {

BlockOccupancy analyze_blocks(const Csr<float>& mask, Index block) {
  GPA_CHECK(block >= 1, "block size must be >= 1");
  GPA_CHECK(mask.rows == mask.cols, "attention masks are square");
  BlockOccupancy occ;
  occ.block = block;
  occ.grid = (mask.rows + block - 1) / block;
  occ.live.assign(static_cast<std::size_t>(occ.grid) * static_cast<std::size_t>(occ.grid), 0);
  for (Index i = 0; i < mask.rows; ++i) {
    const Index bi = i / block;
    for (Index k = mask.row_begin(i); k < mask.row_end(i); ++k) {
      const Index bj = mask.col_idx[static_cast<std::size_t>(k)] / block;
      occ.live[static_cast<std::size_t>(bi * occ.grid + bj)] = 1;
    }
  }
  for (const auto b : occ.live) occ.live_blocks += b;
  const double covered = static_cast<double>(occ.live_blocks) * static_cast<double>(block) *
                         static_cast<double>(block);
  occ.in_block_density = covered > 0.0 ? static_cast<double>(mask.nnz()) / covered : 0.0;
  return occ;
}

template <typename T>
void block_sparse_flash_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                  const Csr<float>& mask, Matrix<T>& out,
                                  const AttentionOptions& opts, const BlockSparseConfig& cfg) {
  const Index L = q.rows();
  const Index d = q.cols();
  GPA_CHECK(mask.rows == L && mask.cols == L, "block-sparse flash: mask shape mismatch");
  GPA_CHECK(out.rows() == L && out.cols() == d, "block-sparse flash: output shape mismatch");
  GPA_CHECK(!opts.causal, "block-sparse flash: intersect the causal pattern into the mask");
  const float scale = gpa::detail::resolve_scale(opts.scale, d);
  const Index bs = cfg.block;
  const BlockOccupancy occ = analyze_blocks(mask, bs);

  // Dense view of the mask for the in-block invalidation step (the
  // comparators carry a block-local mask as well).
  parallel_for_chunks(0, L, opts.policy, [&](Index row_lo, Index row_hi) {
    std::vector<float> s_tile(static_cast<std::size_t>(bs));
    std::vector<float> acc(static_cast<std::size_t>(d));
    std::vector<std::uint8_t> mask_row(static_cast<std::size_t>(L));

    for (Index i = row_lo; i < row_hi; ++i) {
      // Expand this row of the mask once.
      std::fill(mask_row.begin(), mask_row.end(), std::uint8_t{0});
      for (Index kk = mask.row_begin(i); kk < mask.row_end(i); ++kk) {
        mask_row[static_cast<std::size_t>(mask.col_idx[static_cast<std::size_t>(kk)])] = 1;
      }

      const T* qi = q.row(i);
      float m = -std::numeric_limits<float>::infinity();
      float l = 0.0f;
      for (Index p = 0; p < d; ++p) acc[static_cast<std::size_t>(p)] = 0.0f;
      const Index bi = i / bs;

      for (Index bj = 0; bj < occ.grid; ++bj) {
        if (occ.live[static_cast<std::size_t>(bi * occ.grid + bj)] == 0) continue;  // skip empty block
        const Index j0 = bj * bs;
        const Index j1 = j0 + bs < L ? j0 + bs : L;

        // Full dense tile compute, then invalidation — every entry of a
        // live block costs O(d) even if masked (the §III inefficiency).
        float tile_max = -std::numeric_limits<float>::infinity();
        for (Index j = j0; j < j1; ++j) {
          const T* kj = k.row(j);
          float w = 0.0f;
          for (Index p = 0; p < d; ++p) {
            w += static_cast<float>(qi[p]) * static_cast<float>(kj[p]);
          }
          w = mask_row[static_cast<std::size_t>(j)] != 0
                  ? w * scale
                  : -std::numeric_limits<float>::infinity();
          s_tile[static_cast<std::size_t>(j - j0)] = w;
          tile_max = w > tile_max ? w : tile_max;
        }
        if (tile_max == -std::numeric_limits<float>::infinity()) continue;  // row ∩ block empty

        const float m_new = tile_max > m ? tile_max : m;
        const float alpha = std::exp(m - m_new);
        if (alpha != 1.0f) {
          for (Index p = 0; p < d; ++p) acc[static_cast<std::size_t>(p)] *= alpha;
        }
        float tile_l = 0.0f;
        for (Index j = j0; j < j1; ++j) {
          const float sj = s_tile[static_cast<std::size_t>(j - j0)];
          if (sj == -std::numeric_limits<float>::infinity()) continue;
          const float pj = std::exp(sj - m_new);
          tile_l += pj;
          const T* vj = v.row(j);
          for (Index p = 0; p < d; ++p) {
            acc[static_cast<std::size_t>(p)] += pj * static_cast<float>(vj[p]);
          }
        }
        l = l * alpha + tile_l;
        m = m_new;
      }

      const float inv = l > 0.0f ? 1.0f / l : 0.0f;
      T* oi = out.row(i);
      for (Index p = 0; p < d; ++p) oi[p] = T(acc[static_cast<std::size_t>(p)] * inv);
    }
  });
}

template void block_sparse_flash_attention(const Matrix<float>&, const Matrix<float>&,
                                           const Matrix<float>&, const Csr<float>&,
                                           Matrix<float>&, const AttentionOptions&,
                                           const BlockSparseConfig&);
template void block_sparse_flash_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                           const Matrix<half_t>&, const Csr<float>&,
                                           Matrix<half_t>&, const AttentionOptions&,
                                           const BlockSparseConfig&);

}  // namespace gpa::baselines
