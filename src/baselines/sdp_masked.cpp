#include "baselines/sdp_masked.hpp"

#include <limits>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "sparse/build.hpp"
#include "tensor/gemm.hpp"
#include "tensor/softmax.hpp"

namespace gpa::baselines {

void sdp_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                          const Matrix<float>& v, const Matrix<std::uint8_t>& mask,
                          Matrix<float>& out, const AttentionOptions& opts) {
  const Index L = q.rows();
  GPA_CHECK(mask.rows() == L && mask.cols() == L, "SDP: mask must be L×L");
  GPA_CHECK(out.rows() == L && out.cols() == v.cols(), "SDP: output shape mismatch");
  const float scale = gpa::detail::resolve_scale(opts.scale, q.cols());

  // Phase 1: full dense score matrix (this is the O(L²·d) + O(L²) memory
  // cost the graph kernels avoid).
  Matrix<float> scores(L, L);
  gemm_nt(q, k, scores, opts.policy);

  // Phase 2: scale + invalidate masked entries (and the upper triangle
  // under causal attention — after the full dense multiply, like the
  // PyTorch flow).
  for (Index i = 0; i < L; ++i) {
    float* srow = scores.row(i);
    const std::uint8_t* mrow = mask.row(i);
    const Index live_end = opts.causal ? i + 1 : L;
    for (Index j = 0; j < live_end; ++j) {
      srow[j] = mrow[j] != 0 ? srow[j] * scale : -std::numeric_limits<float>::infinity();
    }
    for (Index j = live_end; j < L; ++j) {
      srow[j] = -std::numeric_limits<float>::infinity();
    }
  }

  // Phase 3: row softmax (fully-masked rows -> zero rows).
  softmax_rows(scores, opts.policy.simd);

  // Phase 4: dense PV product.
  gemm_nn(scores, v, out, opts.policy);
}

void sdp_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                          const Matrix<float>& v, const Csr<float>& mask, Matrix<float>& out,
                          const AttentionOptions& opts) {
  sdp_masked_attention(q, k, v, csr_to_dense(mask), out, opts);
}

}  // namespace gpa::baselines
