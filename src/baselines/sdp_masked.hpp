#pragma once
// Masked scaled-dot-product attention the way PyTorch's math backend
// runs it (§III of the paper): dense GEMM QKᵀ over *all* L² pairs,
// additive -inf masking, dense row softmax, dense GEMM PV. Work is
// O(L²·d) independent of mask sparsity — the flat line in Fig. 3/6 —
// and memory includes the materialised L×L score matrix, which is what
// caps its context length in Fig. 4 / Table II.

#include "core/attention_options.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::baselines {

/// Dense-compute masked attention. The mask is a dense 0/1 byte matrix
/// (what PyTorch receives as attn_mask).
void sdp_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                          const Matrix<float>& v, const Matrix<std::uint8_t>& mask,
                          Matrix<float>& out, const AttentionOptions& opts = {});

/// CSR-mask convenience (densifies the mask first, as the PyTorch flow
/// would materialise it).
void sdp_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                          const Matrix<float>& v, const Csr<float>& mask, Matrix<float>& out,
                          const AttentionOptions& opts = {});

}  // namespace gpa::baselines
