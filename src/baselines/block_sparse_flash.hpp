#pragma once
// Block-sparse FlashAttention — the related-work comparator ([21], [22]
// in the paper): partition the mask into B×B blocks and run the flash
// inner loop only over blocks containing at least one non-zero. Inside a
// visited block every entry is still computed and masked, so each zero
// entry in a non-empty block costs O(d) wasted work — the gap between
// "block sparsity" and the paper's "true sparsity".

#include "common/half.hpp"
#include "core/attention_options.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::baselines {

struct BlockSparseConfig {
  Index block = 64;  ///< square mask-block edge
};

/// Block occupancy summary for a mask (which blocks are non-empty, and
/// the fraction of in-block entries that are real non-zeros — the
/// efficiency the paper's §III critique is about).
struct BlockOccupancy {
  Index block = 0;
  Index grid = 0;                   ///< blocks per side
  std::vector<std::uint8_t> live;   ///< row-major grid occupancy
  Size live_blocks = 0;
  double in_block_density = 0.0;    ///< nnz / (live_blocks · block²)
};
BlockOccupancy analyze_blocks(const Csr<float>& mask, Index block);

template <typename T>
void block_sparse_flash_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                  const Csr<float>& mask, Matrix<T>& out,
                                  const AttentionOptions& opts = {},
                                  const BlockSparseConfig& cfg = {});

}  // namespace gpa::baselines
