#pragma once
// FlashAttention-style dense attention: tiled single pass with online
// softmax, never materialising the L×L score matrix. This is the
// baseline of Table III and Fig. 5 — asymptotically O(L²·d) work but
// only O(L) extra memory (two statistics vectors), so its context length
// matches the implicit graph kernels in Fig. 4 / Table II.

#include "common/half.hpp"
#include "core/attention_options.hpp"
#include "tensor/matrix.hpp"

namespace gpa::baselines {

struct FlashConfig {
  /// Key/value tile width (Bc). Row tiling comes from the exec policy's
  /// row parallelism; each row keeps O(1) statistics.
  Index tile_cols = 128;
};

template <typename T>
void flash_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                     Matrix<T>& out, const AttentionOptions& opts = {},
                     const FlashConfig& cfg = {});

}  // namespace gpa::baselines
