#pragma once
// Analytic device-memory model: reproduces Fig. 4 and Table II.
//
// The paper derives theoretical context-length limits "by solving
// inequalities that relate the total GPU memory to the amount of memory
// occupied by tensors during runtime" on an 80 GiB A100. The byte
// accounting below was fitted against every entry of Table II:
//
//   qkvo   = 4 · L · D · s              (Q, K, V, O; D = heads·head_dim)
//   stats  = 2 · L · heads · s          (online-softmax m and l vectors;
//                                        absent for masked SDP, which is
//                                        not an online algorithm)
//   SDP    += heads · L² · s            (materialised score matrix)
//   CSR    += heads · [(L+1)·4 + nnz·(4 + s)]
//   COO    += heads · [nnz·(8 + s)]
//   Global += 4 · round(Sf·L)           (global-token index list)
//   with nnz = Sf·L², 32-bit sparse indices, s = sizeof(dtype).
//
// This matches the paper's Local/Dilated/Global/Flash columns to the
// token (± rounding) and the CSR/COO columns within 0.2% — except the
// paper's CSR-FP16 cell, which is internally inconsistent with its own
// COO-FP16 accounting; EXPERIMENTS.md §Table II discusses the cell.

#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "parallel/device_spec.hpp"

namespace gpa::memmodel {

enum class Algo {
  SdpMasked,
  Csr,
  Coo,
  FlashDense,
  Local,
  Dilated1D,
  Dilated2D,
  Global,
  SpmmTwoPhase,  ///< this repo's two-phase extension (not in the paper)
};

std::string_view algo_name(Algo a);

struct ModelConfig {
  DType dtype = DType::F32;
  Index embed_dim = 64;  ///< D: total packed width (heads · head_dim)
  Index heads = 1;
  double sparsity = 1e-4;  ///< Sf, used by explicit formats and Global
};

/// Bytes required to run `algo` at context length L.
Size bytes_required(Algo algo, Index seq_len, const ModelConfig& cfg);

/// Largest L whose bytes_required fits the device (bisection; the byte
/// function is monotone in L).
Index max_context_length(Algo algo, const DeviceSpec& device, const ModelConfig& cfg);

/// One row of Table II: max L for every algorithm at this config.
struct Table2Row {
  ModelConfig cfg;
  Index sdp, csr, coo, flash, local, global, dilated1d, dilated2d;
};
Table2Row table2_row(const DeviceSpec& device, const ModelConfig& cfg);

/// Bytes of KV-cache storage one cached token occupies: one K row plus
/// one V row at the packed width (heads · head_dim), at the configured
/// dtype. This is the sizing unit for the paged cache in src/kvcache/.
Size kv_bytes_per_token(const ModelConfig& cfg);

/// Largest number of tokens a paged KV cache can hold on `device` when
/// granted `budget_fraction` of its capacity (the rest is reserved for
/// weights / activations / prefill working set).
Index max_cached_tokens(const DeviceSpec& device, const ModelConfig& cfg,
                        double budget_fraction = 1.0);

/// The paper's §II-D LongNet sparsity-factor table: Sf = 2730/L for
/// L ∈ {16k, 32k, 1M, ..., 160M, 1B}.
struct SparsityTableEntry {
  Index seq_len;
  double sf;
};
std::vector<SparsityTableEntry> longnet_sparsity_table();

}  // namespace gpa::memmodel
