#include "memmodel/memory_model.hpp"

#include <cmath>
#include <iterator>

#include "common/error.hpp"

namespace gpa::memmodel {

std::string_view algo_name(Algo a) {
  switch (a) {
    case Algo::SdpMasked: return "sdp-masked";
    case Algo::Csr: return "csr";
    case Algo::Coo: return "coo";
    case Algo::FlashDense: return "flash-dense";
    case Algo::Local: return "local";
    case Algo::Dilated1D: return "dilated-1d";
    case Algo::Dilated2D: return "dilated-2d";
    case Algo::Global: return "global";
    case Algo::SpmmTwoPhase: return "spmm-two-phase";
  }
  return "?";
}

namespace {

/// All arithmetic in long double: exact for every quantity below 2^64 at
/// the magnitudes involved (worst relative error ~1e-18 of the budget).
long double nnz_of(long double L, double sf) { return sf * L * L; }

long double bytes_ld(Algo algo, long double L, const ModelConfig& cfg) {
  const auto s = static_cast<long double>(dtype_size(cfg.dtype));
  const auto D = static_cast<long double>(cfg.embed_dim);
  const auto H = static_cast<long double>(cfg.heads);
  constexpr long double idx = kSparseIndexBytes;

  const long double qkvo = 4.0L * L * D * s;
  const long double stats = 2.0L * L * H * s;
  const long double nnz = nnz_of(L, cfg.sparsity);

  switch (algo) {
    case Algo::SdpMasked:
      return qkvo + H * L * L * s;
    case Algo::Csr:
      return qkvo + stats + H * ((L + 1) * idx + nnz * (idx + s));
    case Algo::Coo:
      return qkvo + stats + H * nnz * (2 * idx + s);
    case Algo::FlashDense:
    case Algo::Local:
    case Algo::Dilated1D:
    case Algo::Dilated2D:
      return qkvo + stats;
    case Algo::Global:
      return qkvo + stats + idx * std::llround(static_cast<double>(cfg.sparsity) *
                                               static_cast<double>(L));
    case Algo::SpmmTwoPhase:
      // Mask structure + fp32 score values alongside QKVO and stats.
      return qkvo + stats + H * ((L + 1) * idx + nnz * idx + nnz * s + nnz * 4.0L);
  }
  return 0.0L;
}

}  // namespace

Size bytes_required(Algo algo, Index seq_len, const ModelConfig& cfg) {
  GPA_CHECK(seq_len >= 0, "context length must be non-negative");
  GPA_CHECK(cfg.embed_dim >= 1 && cfg.heads >= 1, "bad model config");
  GPA_CHECK(cfg.sparsity >= 0.0 && cfg.sparsity <= 1.0, "Sf must be in [0,1]");
  const long double b = bytes_ld(algo, static_cast<long double>(seq_len), cfg);
  return static_cast<Size>(b);
}

Index max_context_length(Algo algo, const DeviceSpec& device, const ModelConfig& cfg) {
  const auto budget = static_cast<long double>(device.memory_bytes);
  if (bytes_ld(algo, 1.0L, cfg) > budget) return 0;
  // Exponential bracket, then bisection (bytes_ld is monotone in L).
  Index lo = 1;
  Index hi = 2;
  while (bytes_ld(algo, static_cast<long double>(hi), cfg) <= budget) {
    lo = hi;
    GPA_CHECK(hi < (Index{1} << 60), "context length bracket overflow");
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const Index mid = lo + (hi - lo) / 2;
    if (bytes_ld(algo, static_cast<long double>(mid), cfg) <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<SparsityTableEntry> longnet_sparsity_table() {
  const Index lengths[] = {16'384,      32'768,      1'000'000,  10'000'000,
                           100'000'000, 160'000'000, 1'000'000'000};
  std::vector<SparsityTableEntry> out;
  out.reserve(std::size(lengths));
  for (const Index L : lengths) {
    out.push_back({L, 2730.0 / static_cast<double>(L)});
  }
  return out;
}

Table2Row table2_row(const DeviceSpec& device, const ModelConfig& cfg) {
  Table2Row row;
  row.cfg = cfg;
  row.sdp = max_context_length(Algo::SdpMasked, device, cfg);
  row.csr = max_context_length(Algo::Csr, device, cfg);
  row.coo = max_context_length(Algo::Coo, device, cfg);
  row.flash = cfg.dtype == DType::F16 ? max_context_length(Algo::FlashDense, device, cfg)
                                      : Index{-1};  // "FlashAttention does not operate on FP32"
  row.local = max_context_length(Algo::Local, device, cfg);
  row.global = max_context_length(Algo::Global, device, cfg);
  row.dilated1d = max_context_length(Algo::Dilated1D, device, cfg);
  row.dilated2d = max_context_length(Algo::Dilated2D, device, cfg);
  return row;
}

Size kv_bytes_per_token(const ModelConfig& cfg) {
  GPA_CHECK(cfg.embed_dim > 0, "kv_bytes_per_token needs a positive packed width");
  return 2 * static_cast<Size>(cfg.embed_dim) * dtype_size(cfg.dtype);
}

Index max_cached_tokens(const DeviceSpec& device, const ModelConfig& cfg,
                        double budget_fraction) {
  GPA_CHECK(budget_fraction > 0.0 && budget_fraction <= 1.0,
            "KV budget fraction must be in (0, 1]");
  const Size budget =
      static_cast<Size>(static_cast<double>(device.memory_bytes) * budget_fraction);
  return static_cast<Index>(budget / kv_bytes_per_token(cfg));
}

}  // namespace gpa::memmodel
