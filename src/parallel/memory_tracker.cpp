#include "parallel/memory_tracker.hpp"

#include <sstream>

namespace gpa {

void MemoryTracker::allocate(Size bytes) {
  Size prev = used_.load(std::memory_order_relaxed);
  for (;;) {
    const Size next = prev + bytes;
    if (next > spec_.memory_bytes || next < prev) {  // exceeded or overflowed
      std::ostringstream os;
      os << spec_.name << ": out of device memory — requested " << bytes << " B with " << prev
         << " B in use of " << spec_.memory_bytes << " B";
      throw OutOfDeviceMemory(os.str());
    }
    if (used_.compare_exchange_weak(prev, next, std::memory_order_relaxed)) {
      Size seen = peak_.load(std::memory_order_relaxed);
      while (seen < next && !peak_.compare_exchange_weak(seen, next, std::memory_order_relaxed)) {
      }
      return;
    }
  }
}

void MemoryTracker::release(Size bytes) noexcept {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace gpa
