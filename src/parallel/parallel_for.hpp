#pragma once
// Row-parallel loop: the CPU analogue of launching one CUDA block per
// attention row. Dispatches to OpenMP when available, otherwise to a
// std::thread fork/join implementation with the same semantics.

#include <functional>
#include <string_view>

#include "common/types.hpp"
#include "parallel/exec_policy.hpp"

namespace gpa {

/// Which substrate parallel_for dispatches to in this build:
/// "openmp" when compiled with GPA_HAVE_OPENMP, "threads" otherwise.
std::string_view parallel_backend() noexcept;

/// Invokes `body(i)` for every i in [begin, end), in parallel according
/// to `policy`. `body` must be safe to run concurrently for distinct i.
/// Exceptions thrown by `body` propagate to the caller (first one wins).
void parallel_for(Index begin, Index end, const ExecPolicy& policy,
                  const std::function<void(Index)>& body);

/// Range-chunked variant: `body(lo, hi)` over disjoint sub-ranges.
/// Used by kernels that keep per-chunk scratch buffers.
void parallel_for_chunks(Index begin, Index end, const ExecPolicy& policy,
                         const std::function<void(Index, Index)>& body);

/// Number of workers the policy resolves to on this machine.
int resolved_threads(const ExecPolicy& policy) noexcept;

}  // namespace gpa
