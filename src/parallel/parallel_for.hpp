#pragma once
// Row-parallel loop: the CPU analogue of launching one CUDA block per
// attention row. Dispatches to OpenMP when available, otherwise to a
// std::thread fork/join implementation with the same semantics.
//
// Nesting contract (see parallel/parallel_region.hpp): a substrate call
// made from inside another substrate call runs serially on the calling
// worker instead of spawning threads² workers. A single-element range
// runs inline on the caller — outside any region — so a batch of one
// still lets the item's own loops parallelise.

#include <functional>
#include <string_view>

#include "common/types.hpp"
#include "parallel/exec_policy.hpp"

namespace gpa {

/// Ceiling division — the chunk-count arithmetic every scheduling
/// decision shares (ATen's divup).
inline constexpr Index divup(Index x, Index y) { return (x + y - 1) / y; }

/// Which substrate parallel_for dispatches to in this build:
/// "openmp" when compiled with GPA_HAVE_OPENMP, "threads" otherwise.
std::string_view parallel_backend() noexcept;

/// Invokes `body(i)` for every i in [begin, end), in parallel according
/// to `policy`. `body` must be safe to run concurrently for distinct i.
/// Exceptions thrown by `body` propagate to the caller (first one wins).
void parallel_for(Index begin, Index end, const ExecPolicy& policy,
                  const std::function<void(Index)>& body);

/// Range-chunked variant: `body(lo, hi)` over disjoint sub-ranges.
/// Used by kernels that keep per-chunk scratch buffers.
void parallel_for_chunks(Index begin, Index end, const ExecPolicy& policy,
                         const std::function<void(Index, Index)>& body);

/// Number of workers the policy resolves to on this machine. Returns 1
/// inside a parallel region (the nesting guard): nested loops degrade
/// to serial rather than oversubscribe.
int resolved_threads(const ExecPolicy& policy) noexcept;

}  // namespace gpa
