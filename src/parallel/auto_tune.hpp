#pragma once
// Traversal-driven schedule auto-tuning.
//
// §V-C: per-row work under a sparse mask is the row's degree, and with
// static scheduling "the algorithm can only be as fast as its slowest
// block" — the global mask's near-dense rows serialize behind one
// worker. The traversal layer already computes the degree profile of
// every mask family; this is the decision rule that turns that profile
// into a schedule:
//
//   imbalance (max/mean) >= kAutoImbalanceThreshold
//       → Dynamic, grain = clamp(kAutoGrainWork / mean_degree, 1, max)
//         (each scheduling decision hands out ~kAutoGrainWork edge
//          folds of work, à la ATen's GRAIN_SIZE — heavy rows give
//          small chunks that rebalance, light rows give big chunks
//          that amortize the handout)
//   otherwise
//       → Static with the same derived grain (uniform rows need no
//         stealing, and contiguous slices are cache-friendliest).
//
// Kernels call this through MaskTraversal::resolved_policy at call
// time, so ExecPolicy::auto_tuned() adapts per (mask, seq_len, causal)
// with zero per-kernel code.

#include "common/types.hpp"
#include "parallel/exec_policy.hpp"

namespace gpa {

/// Skew at which stealing beats contiguous slices. The global mask
/// drives max/mean toward L/g (≫ this); uniform masks sit near 1.
inline constexpr double kAutoImbalanceThreshold = 4.0;

/// Edge folds handed out per scheduling decision. One fold is O(d)
/// flops, so at d = 64 a chunk is ~256k flops — enough to amortize a
/// fetch_add / OpenMP dispatch, small enough to rebalance skew.
inline constexpr Index kAutoGrainWork = 4096;

/// Grain clamp: never hand out more rows than this at once (keeps some
/// stealing granularity even for near-empty rows).
inline constexpr Index kAutoMaxGrain = 256;

/// Resolve a Schedule::Auto policy from a mask's per-row work profile
/// (mean row degree and max/mean imbalance, from DegreeStats).
/// Non-Auto policies pass through untouched.
ExecPolicy auto_tune(const ExecPolicy& base, double mean_degree, double imbalance) noexcept;

}  // namespace gpa
