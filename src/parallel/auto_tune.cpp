#include "parallel/auto_tune.hpp"

#include <algorithm>
#include <cmath>

namespace gpa {

ExecPolicy auto_tune(const ExecPolicy& base, double mean_degree, double imbalance) noexcept {
  if (base.schedule != Schedule::Auto) return base;
  ExecPolicy p = base;
  const double rows = static_cast<double>(kAutoGrainWork) / std::max(1.0, mean_degree);
  p.grain = std::clamp(static_cast<Index>(rows), Index{1}, kAutoMaxGrain);
  p.schedule =
      imbalance >= kAutoImbalanceThreshold ? Schedule::Dynamic : Schedule::Static;
  return p;
}

}  // namespace gpa
