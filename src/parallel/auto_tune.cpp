#include "parallel/auto_tune.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace gpa {

ExecPolicy auto_tune(const ExecPolicy& base, double mean_degree, double imbalance) noexcept {
  if (base.schedule != Schedule::Auto) return base;
  ExecPolicy p = base;
  const double rows = static_cast<double>(kAutoGrainWork) / std::max(1.0, mean_degree);
  p.grain = std::clamp(static_cast<Index>(rows), Index{1}, kAutoMaxGrain);
  p.schedule =
      imbalance >= kAutoImbalanceThreshold ? Schedule::Dynamic : Schedule::Static;
  // These two counters answer the ROADMAP's auto-pick question directly:
  // a recording run reports how often skew actually tripped the dynamic
  // arm, next to the grain the workload saw.
  static obs::Counter& picks_static = obs::Registry::global().counter("sched.auto.picks.static");
  static obs::Counter& picks_dynamic =
      obs::Registry::global().counter("sched.auto.picks.dynamic");
  (p.schedule == Schedule::Dynamic ? picks_dynamic : picks_static).inc();
  return p;
}

}  // namespace gpa
