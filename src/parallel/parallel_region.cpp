#include "parallel/parallel_region.hpp"

#if defined(GPA_HAVE_OPENMP)
#include <omp.h>
#endif

namespace gpa {

namespace {
// One flag per thread: set while the thread executes a substrate worker
// body. The OpenMP arm additionally consults omp_in_parallel() so a
// kernel called from a caller's own `#pragma omp parallel` region (not
// just from our loops) degrades to serial too.
thread_local bool tls_in_region = false;
}  // namespace

bool in_parallel_region() noexcept {
#if defined(GPA_HAVE_OPENMP)
  if (omp_in_parallel()) return true;
#endif
  return tls_in_region;
}

namespace detail {

ParallelRegionGuard::ParallelRegionGuard() noexcept : prev_(tls_in_region) {
  tls_in_region = true;
}

ParallelRegionGuard::~ParallelRegionGuard() { tls_in_region = prev_; }

}  // namespace detail

}  // namespace gpa
