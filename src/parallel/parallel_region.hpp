#pragma once
// Nesting detection for the parallel substrate.
//
// The serving layer dispatches a batch with one parallel_for across
// items (batch_policy) while each item's kernel runs its own
// parallel_for across rows (item_policy). Without a nesting guard the
// inner call resolves its own thread count and the dispatch spawns
// threads × threads workers — oversubscription that thrashes instead
// of speeding up (ATen's Parallel.h solves this the same way: nested
// regions degrade to serial). `in_parallel_region()` is that guard:
// true on any thread currently executing inside a gpa parallel loop
// (or inside a caller's OpenMP region), and every substrate entry
// point checks it and runs serially when set.

namespace gpa {

/// True when the calling thread is already inside a parallel region —
/// a gpa parallel_for / parallel_for_chunks / parallel_reduce worker,
/// or an active OpenMP region in the OpenMP build. Nested substrate
/// calls check this and degrade to serial instead of oversubscribing.
bool in_parallel_region() noexcept;

namespace detail {

/// RAII marker the substrate places around worker bodies. Restores the
/// previous state on destruction, so region depth nests correctly on
/// reused threads (OpenMP pool members, ThreadPool workers).
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() noexcept;
  ~ParallelRegionGuard();

  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace detail

}  // namespace gpa
