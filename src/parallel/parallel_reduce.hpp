#pragma once
// parallel_reduce à la ATen's Parallel.h: split [begin, end) into
// grain-sized chunks, fold each chunk with `body`, then combine the
// per-chunk partials in ascending chunk order.
//
// Determinism contract: the reduction tree is a left fold over chunks
// fixed entirely by (n, grain) — identical for every schedule, thread
// count, and backend, including the serial path. `combine` must be a
// monoid with `identity` (combine(identity, x) == x); with that, a
// non-associative-in-floating-point combine (e.g. float +) still gives
// bit-identical results across policies at a fixed grain.

#include <algorithm>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_region.hpp"

namespace gpa {

/// Folds `body(lo, hi, identity)` over grain-sized chunks of
/// [begin, end) in parallel under `policy`, combining the per-chunk
/// partials with `combine` in chunk order. policy.grain <= 0 derives
/// one chunk per resolved worker. Exceptions from `body` propagate
/// (first one wins); nested calls run serially (nesting guard).
template <typename T, typename Body, typename Combine>
T parallel_reduce(Index begin, Index end, T identity, const Body& body,
                  const Combine& combine, const ExecPolicy& policy) {
  const Index n = end - begin;
  if (n <= 0) return identity;
  const int threads = static_cast<int>(
      std::min<Index>(static_cast<Index>(resolved_threads(policy)), n));
  const Index grain =
      policy.grain > 0 ? policy.grain : divup(n, static_cast<Index>(std::max(threads, 1)));
  const Index chunks = divup(n, grain);

  if (threads <= 1 || chunks <= 1) {
    // Same left-fold-over-chunks tree as the parallel path, run inline.
    T acc = identity;
    for (Index lo = begin; lo < end; lo += grain) {
      const Index hi = lo + grain < end ? lo + grain : end;
      acc = combine(acc, body(lo, hi, identity));
    }
    return acc;
  }

  std::vector<T> partial(static_cast<std::size_t>(chunks), identity);
  ExecPolicy chunk_policy = policy;
  chunk_policy.grain = 1;  // the loop units are whole chunks already
  parallel_for(0, chunks, chunk_policy, [&](Index c) {
    const Index lo = begin + c * grain;
    const Index hi = lo + grain < end ? lo + grain : end;
    partial[static_cast<std::size_t>(c)] = body(lo, hi, identity);
  });

  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace gpa
