#include "parallel/thread_pool.hpp"

namespace gpa {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err;
    std::swap(err, first_error_);  // pool stays usable after the rethrow
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A task that throws must neither terminate the worker nor leak
    // its in_flight_ slot (which would deadlock wait_idle): catch,
    // stash first-wins, and always decrement.
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gpa
