#include "parallel/thread_pool.hpp"

namespace gpa {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gpa
