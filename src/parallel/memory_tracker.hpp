#pragma once
// Byte-budget allocator that emulates a device memory capacity.
//
// The paper's Table II is derived "by solving inequalities that relate
// the total GPU memory to the amount of memory occupied by tensors
// during runtime". The analytic side lives in memmodel/; this tracker is
// the empirical side: allocations registered against it fail with
// OutOfDeviceMemory once the budget is exceeded, letting tests observe
// the same feasibility boundary the formulas predict.

#include <atomic>
#include <cstddef>

#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/device_spec.hpp"

namespace gpa {

class MemoryTracker {
 public:
  explicit MemoryTracker(DeviceSpec spec) : spec_(std::move(spec)) {}

  /// Reserve `bytes`; throws OutOfDeviceMemory if the budget would be
  /// exceeded. Thread-safe.
  void allocate(Size bytes);

  /// Release `bytes` previously allocated.
  void release(Size bytes) noexcept;

  Size in_use() const noexcept { return used_.load(std::memory_order_relaxed); }
  Size peak() const noexcept { return peak_.load(std::memory_order_relaxed); }
  Size capacity() const noexcept { return spec_.memory_bytes; }
  const DeviceSpec& spec() const noexcept { return spec_; }

 private:
  DeviceSpec spec_;
  std::atomic<Size> used_{0};
  std::atomic<Size> peak_{0};
};

/// RAII lease on tracked bytes.
class MemoryLease {
 public:
  MemoryLease(MemoryTracker& tracker, Size bytes) : tracker_(&tracker), bytes_(bytes) {
    tracker_->allocate(bytes_);
  }
  ~MemoryLease() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
  }
  MemoryLease(MemoryLease&& other) noexcept : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
  }
  MemoryLease& operator=(MemoryLease&&) = delete;
  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;

  Size bytes() const noexcept { return bytes_; }

 private:
  MemoryTracker* tracker_;
  Size bytes_;
};

}  // namespace gpa
