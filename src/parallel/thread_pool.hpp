#pragma once
// Minimal persistent thread pool used when OpenMP is disabled and by the
// sequence-parallel cluster simulator (which needs long-lived "nodes"
// rather than fork/join loops).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpa {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  int size() const noexcept { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::int64_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace gpa
