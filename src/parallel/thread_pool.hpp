#pragma once
// Minimal persistent thread pool used when OpenMP is disabled and by the
// sequence-parallel cluster simulator (which needs long-lived "nodes"
// rather than fork/join loops).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpa {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns immediately. A throwing task does NOT
  /// take down the worker (no std::terminate): the first exception is
  /// stashed and rethrown from the next wait_idle().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the
  /// first exception any task raised since the last wait (first wins;
  /// later ones are dropped). The pool stays usable after the rethrow.
  void wait_idle();

  int size() const noexcept { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::int64_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  ///< guarded by mu_; cleared by wait_idle
};

}  // namespace gpa
