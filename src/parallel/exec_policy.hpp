#pragma once
// Execution policy for the row-parallel kernels.
//
// The paper parallelises every algorithm "along the L dimension,
// simultaneously operating on rows of the attention matrix" with one
// CUDA block per row. This substrate reproduces that execution model on
// shared-memory CPUs: a parallel_for over row indices, with the
// scheduling discipline made explicit because it is load-bearing for the
// paper's analysis (§V-C: the global mask creates a skewed per-row work
// distribution, and "the algorithm can only be as fast as its slowest
// block" — visible under static scheduling, mitigated by dynamic).

#include <cstdint>

#include "simd/simd_level.hpp"

namespace gpa {

enum class Schedule : std::uint8_t {
  Static,   ///< contiguous row ranges per worker (CUDA grid-stride analogue)
  Dynamic,  ///< workers steal chunks of `grain` rows (load-balancing)
  /// Resolved at kernel call time from the mask traversal's degree/skew
  /// statistics (see parallel/auto_tune.hpp): skewed rows → Dynamic with
  /// a grain derived from the mean degree, uniform rows → Static. If an
  /// unresolved Auto reaches the substrate (no stats available — e.g. a
  /// raw parallel_for), it falls back to Static, the balanced-work
  /// assumption.
  Auto,
};

struct ExecPolicy {
  /// 0 = use all hardware threads.
  int num_threads = 0;
  /// Rows handed out per scheduling decision under Dynamic; <= 0 means
  /// "derive" (auto-tuning fills it from the mean row degree, the raw
  /// substrate from range/threads).
  std::int64_t grain = 64;
  Schedule schedule = Schedule::Static;
  /// Which SIMD arm the kernel's inner loops take (Auto = runtime
  /// dispatch: GPA_SIMD env override, else best of cpuid + build).
  SimdLevel simd = SimdLevel::Auto;

  static ExecPolicy serial() { return {1, 1, Schedule::Static}; }
  /// Traversal-driven scheduling: kernels resolve schedule + grain from
  /// the mask's skew profile at call time (§V-C: "the algorithm can
  /// only be as fast as its slowest block").
  static ExecPolicy auto_tuned() { return {0, 0, Schedule::Auto}; }
};

}  // namespace gpa
