#pragma once
// Device descriptions for the capacity experiments. Table I of the paper
// lists the three GPUs used; Table II / Fig. 4 solve for the maximum
// context length that fits each capacity. Only the byte budget matters
// for those results, so a DeviceSpec is a named capacity.

#include <string>

#include "common/types.hpp"

namespace gpa {

struct DeviceSpec {
  std::string name;
  Size memory_bytes = 0;

  /// NVIDIA A100 SXM4 80GB — the device Table II / Fig. 4 / Table III use.
  static DeviceSpec a100_80gb() { return {"NVIDIA A100 (SXM4 80GB)", 80ull << 30}; }
  /// NVIDIA L40 48GB (Table I).
  static DeviceSpec l40_48gb() { return {"NVIDIA L40 (48GB)", 48ull << 30}; }
  /// NVIDIA V100 SXM2 32GB (Table I).
  static DeviceSpec v100_32gb() { return {"NVIDIA V100 (SXM2 32GB)", 32ull << 30}; }
  /// NVIDIA H100 SXM5 80GB — same byte budget as the A100-80GB, so the
  /// capacity model (which only sees bytes) predicts identical limits.
  static DeviceSpec h100_80gb() { return {"NVIDIA H100 (SXM5 80GB)", 80ull << 30}; }
  /// NVIDIA GeForce RTX 4090 24GB — consumer-tier budget point below
  /// every Table I datacenter card.
  static DeviceSpec rtx4090_24gb() { return {"NVIDIA RTX 4090 (24GB)", 24ull << 30}; }
  /// This host's RAM-bounded pseudo-device (for tracker-backed tests).
  static DeviceSpec host(Size bytes) { return {"host", bytes}; }
};

}  // namespace gpa
