#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "parallel/parallel_region.hpp"

namespace gpa {

std::string_view parallel_backend() noexcept {
#if defined(GPA_HAVE_OPENMP)
  return "openmp";
#else
  return "threads";
#endif
}

int resolved_threads(const ExecPolicy& policy) noexcept {
  if (in_parallel_region()) return 1;  // nested call: degrade to serial
  if (policy.num_threads > 0) return policy.num_threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

namespace {

/// An unresolved Auto policy reaching the raw substrate has no degree
/// stats to consult; Static is the balanced-work assumption.
Schedule effective_schedule(const ExecPolicy& policy) noexcept {
  return policy.schedule == Schedule::Auto ? Schedule::Static : policy.schedule;
}

/// First-wins exception capture shared by both backends. The mutex
/// serializes the pointer store (multiple workers can fail at once);
/// the `failed` flag is the cheap cooperative-cancellation signal the
/// hot path polls. Reading the pointer afterwards is synchronized by
/// the join / OpenMP barrier that precedes rethrow_if_failed().
class ErrorCapture {
 public:
  bool failed() const noexcept { return failed_.load(std::memory_order_relaxed); }

  /// Stash the in-flight exception; later failures are dropped.
  void capture() noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_) first_ = std::current_exception();
    failed_.store(true, std::memory_order_relaxed);
  }

  /// Call only after every worker has finished (join / implicit barrier).
  void rethrow_if_failed() {
    if (first_) std::rethrow_exception(first_);
  }

 private:
  std::mutex mu_;
  std::atomic<bool> failed_{false};
  std::exception_ptr first_;
};

#if !defined(GPA_HAVE_OPENMP)
/// Shared fork/join driver. Under Static each worker owns one contiguous
/// slice; under Dynamic workers pull `grain`-sized chunks from a shared
/// counter (work stealing by atomic fetch-add).
void run_workers(Index begin, Index end, const ExecPolicy& policy, int threads, Schedule sched,
                 const std::function<void(Index, Index)>& chunk_body) {
  const Index n = end - begin;
  ErrorCapture err;

  auto guarded = [&](Index lo, Index hi) {
    if (err.failed()) return;
    try {
      chunk_body(lo, hi);
    } catch (...) {
      err.capture();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  if (sched == Schedule::Static) {
    const Index per = divup(n, threads);
    for (int t = 0; t < threads; ++t) {
      const Index lo = begin + static_cast<Index>(t) * per;
      const Index hi = lo + per < end ? lo + per : end;
      if (lo >= hi) break;
      pool.emplace_back([&guarded, lo, hi] {
        detail::ParallelRegionGuard region;
        guarded(lo, hi);
      });
    }
  } else {
    const Index grain = policy.grain > 0 ? policy.grain : 1;
    auto next = std::make_shared<std::atomic<Index>>(begin);
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, next] {
        detail::ParallelRegionGuard region;
        for (;;) {
          const Index lo = next->fetch_add(grain, std::memory_order_relaxed);
          if (lo >= end) return;
          const Index hi = lo + grain < end ? lo + grain : end;
          guarded(lo, hi);
          if (err.failed()) return;
        }
      });
    }
  }
  for (auto& th : pool) th.join();
  err.rethrow_if_failed();
}
#endif  // !GPA_HAVE_OPENMP

}  // namespace

void parallel_for_chunks(Index begin, Index end, const ExecPolicy& policy,
                         const std::function<void(Index, Index)>& body) {
  const Index n = end - begin;
  if (n <= 0) return;
  // resolved_threads returns 1 inside a region (nesting guard). The
  // n == 1 case always runs inline on the caller — a single item gains
  // nothing from a worker hop, and staying outside the region keeps the
  // item's own nested loops free to parallelise (a batch of one).
  const int threads = static_cast<int>(
      std::min<Index>(static_cast<Index>(resolved_threads(policy)), n));
  if (threads <= 1 || n == 1) {
    body(begin, end);
    return;
  }
  const Schedule sched = effective_schedule(policy);
#if defined(GPA_HAVE_OPENMP)
  const Index grain = policy.grain > 0 ? policy.grain : divup(n, static_cast<Index>(threads));
  const Index chunks = divup(n, grain);
  ErrorCapture err;
  if (sched == Schedule::Static) {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (Index c = 0; c < chunks; ++c) {
      detail::ParallelRegionGuard region;  // belt to omp_in_parallel's braces
      if (err.failed()) continue;
      try {
        const Index lo = begin + c * grain;
        const Index hi = lo + grain < end ? lo + grain : end;
        body(lo, hi);
      } catch (...) {
        err.capture();
      }
    }
  } else {
#pragma omp parallel for num_threads(threads) schedule(dynamic, 1)
    for (Index c = 0; c < chunks; ++c) {
      detail::ParallelRegionGuard region;
      if (err.failed()) continue;
      try {
        const Index lo = begin + c * grain;
        const Index hi = lo + grain < end ? lo + grain : end;
        body(lo, hi);
      } catch (...) {
        err.capture();
      }
    }
  }
  err.rethrow_if_failed();
#else
  run_workers(begin, end, policy, threads, sched, body);
#endif
}

void parallel_for(Index begin, Index end, const ExecPolicy& policy,
                  const std::function<void(Index)>& body) {
  parallel_for_chunks(begin, end, policy, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace gpa
