#include "parallel/parallel_for.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace gpa {

std::string_view parallel_backend() noexcept {
#if defined(GPA_HAVE_OPENMP)
  return "openmp";
#else
  return "threads";
#endif
}

int resolved_threads(const ExecPolicy& policy) noexcept {
  if (policy.num_threads > 0) return policy.num_threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

namespace {

#if !defined(GPA_HAVE_OPENMP)
/// Shared fork/join driver. Under Static each worker owns one contiguous
/// slice; under Dynamic workers pull `grain`-sized chunks from a shared
/// counter (work stealing by atomic fetch-add).
void run_workers(Index begin, Index end, const ExecPolicy& policy,
                 const std::function<void(Index, Index)>& chunk_body) {
  const Index n = end - begin;
  if (n <= 0) return;
  const int threads = resolved_threads(policy);

  if (threads == 1) {
    chunk_body(begin, end);
    return;
  }

  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  std::mutex error_mu;

  auto guarded = [&](Index lo, Index hi) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      chunk_body(lo, hi);
    } catch (...) {
      bool expected = false;
      if (failed.compare_exchange_strong(expected, true)) {
        std::lock_guard<std::mutex> lock(error_mu);
        first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  if (policy.schedule == Schedule::Static) {
    const Index per = (n + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      const Index lo = begin + static_cast<Index>(t) * per;
      const Index hi = lo + per < end ? lo + per : end;
      if (lo >= hi) break;
      pool.emplace_back(guarded, lo, hi);
    }
  } else {
    const Index grain = policy.grain > 0 ? policy.grain : 1;
    auto next = std::make_shared<std::atomic<Index>>(begin);
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, next] {
        for (;;) {
          const Index lo = next->fetch_add(grain, std::memory_order_relaxed);
          if (lo >= end) return;
          const Index hi = lo + grain < end ? lo + grain : end;
          guarded(lo, hi);
          if (failed.load(std::memory_order_relaxed)) return;
        }
      });
    }
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}
#endif  // !GPA_HAVE_OPENMP

}  // namespace

void parallel_for_chunks(Index begin, Index end, const ExecPolicy& policy,
                         const std::function<void(Index, Index)>& body) {
#if defined(GPA_HAVE_OPENMP)
  const Index n = end - begin;
  if (n <= 0) return;
  const int threads = resolved_threads(policy);
  if (threads == 1) {
    body(begin, end);
    return;
  }
  const Index grain = policy.grain > 0 ? policy.grain : 1;
  const Index chunks = (n + grain - 1) / grain;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  if (policy.schedule == Schedule::Static) {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (Index c = 0; c < chunks; ++c) {
      if (failed.load(std::memory_order_relaxed)) continue;
      try {
        const Index lo = begin + c * grain;
        const Index hi = lo + grain < end ? lo + grain : end;
        body(lo, hi);
      } catch (...) {
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) first_error = std::current_exception();
      }
    }
  } else {
#pragma omp parallel for num_threads(threads) schedule(dynamic, 1)
    for (Index c = 0; c < chunks; ++c) {
      if (failed.load(std::memory_order_relaxed)) continue;
      try {
        const Index lo = begin + c * grain;
        const Index hi = lo + grain < end ? lo + grain : end;
        body(lo, hi);
      } catch (...) {
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) first_error = std::current_exception();
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
#else
  run_workers(begin, end, policy, body);
#endif
}

void parallel_for(Index begin, Index end, const ExecPolicy& policy,
                  const std::function<void(Index)>& body) {
  parallel_for_chunks(begin, end, policy, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace gpa
