#pragma once
// Simulated distributed attention: each "node" owns a contiguous row
// range of Q (sequence parallelism à la DeepSpeed-Ulysses/LongNet,
// §III) and receives the full K/V via a simulated all-gather. Nodes run
// concurrently on the thread pool; per-node wall time and gathered bytes
// are recorded so the load-balancing claim of the partitioner is
// measurable without real MPI.

#include <vector>

#include "core/attention_options.hpp"
#include "seqpar/partition.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::seqpar {

struct NodeReport {
  Index node = 0;
  Index row_begin = 0;
  Index row_end = 0;
  Size edges = 0;
  double seconds = 0.0;       ///< kernel time on this node
  Size gathered_bytes = 0;    ///< K + V bytes shipped to this node
};

struct ClusterReport {
  std::vector<NodeReport> nodes;
  double makespan_seconds = 0.0;  ///< slowest node (the cluster's step time)
  double imbalance = 0.0;         ///< max node time / mean node time
};

/// Runs CSR graph attention with rows partitioned across `partition`,
/// one OS thread per node, writing into `out`. The result equals the
/// single-node kernel exactly (same arithmetic per row).
ClusterReport distributed_csr_attention(const Matrix<float>& q, const Matrix<float>& k,
                                        const Matrix<float>& v, const Csr<float>& mask,
                                        const Partition& partition, Matrix<float>& out,
                                        const AttentionOptions& opts = {});

}  // namespace gpa::seqpar
