#include "seqpar/sim_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "core/state.hpp"
#include "core/traversal.hpp"

namespace gpa::seqpar {

ClusterReport distributed_csr_attention(const Matrix<float>& q, const Matrix<float>& k,
                                        const Matrix<float>& v, const Csr<float>& mask,
                                        const Partition& partition, Matrix<float>& out,
                                        const AttentionOptions& opts) {
  const Index L = q.rows();
  const Index d = q.cols();
  GPA_CHECK(mask.rows == L && mask.cols == L, "distributed: mask shape mismatch");
  GPA_CHECK(out.rows() == L && out.cols() == d, "distributed: output shape mismatch");
  GPA_CHECK(!partition.boundaries.empty() && partition.boundaries.front() == 0 &&
                partition.boundaries.back() == L,
            "partition must cover [0, L)");
  const float scale = gpa::detail::resolve_scale(opts.scale, d);
  const simd::VecOps& vo = simd::ops(opts.policy.simd);
  // THE iteration order: each node's row loop drives the same traversal
  // the one-shot kernels do, so the simulated cluster is bit-identical
  // to the single-node kernel by construction (and the wire path can
  // batch-key on tr.fingerprint()). Causal masks now intersect the
  // triangle exactly as the kernels' causal branches do.
  const MaskTraversal tr = MaskTraversal::over(mask);

  ClusterReport report;
  report.nodes.resize(static_cast<std::size_t>(partition.parts()));

  // One thread per node; each node folds its own rows. K/V are shared
  // read-only here — the gathered_bytes field records what a real
  // all-gather would ship (full K and V per node, as LongNet does).
  std::vector<std::thread> nodes;
  nodes.reserve(report.nodes.size());
  for (Index p = 0; p < partition.parts(); ++p) {
    nodes.emplace_back([&, p] {
      const auto t0 = std::chrono::steady_clock::now();
      const Index lo = partition.boundaries[static_cast<std::size_t>(p)];
      const Index hi = partition.boundaries[static_cast<std::size_t>(p) + 1];
      Size edges = 0;
      std::vector<float> acc(static_cast<std::size_t>(d));
      for (Index i = lo; i < hi; ++i) {
        const float* qi = q.row(i);
        OnlineSoftmaxRow osr;
        for (Index x = 0; x < d; ++x) acc[static_cast<std::size_t>(x)] = 0.0f;
        tr.for_each_edge(i, L, opts.causal, [&](Index j, float gate) {
          gpa::detail::fold_edge(qi, k, v, j, d, scale, gate, opts.use_mask_values, osr,
                                 acc.data(), vo);
          ++edges;
        });
        const float inv = osr.inv_l();
        float* oi = out.row(i);
        for (Index x = 0; x < d; ++x) oi[x] = acc[static_cast<std::size_t>(x)] * inv;
      }
      const auto t1 = std::chrono::steady_clock::now();
      auto& nr = report.nodes[static_cast<std::size_t>(p)];
      nr.node = p;
      nr.row_begin = lo;
      nr.row_end = hi;
      nr.edges = edges;
      nr.seconds = std::chrono::duration<double>(t1 - t0).count();
      nr.gathered_bytes = 2 * static_cast<Size>(L) * static_cast<Size>(d) * sizeof(float);
    });
  }
  for (auto& t : nodes) t.join();

  double total = 0.0;
  for (const auto& nr : report.nodes) {
    report.makespan_seconds = std::max(report.makespan_seconds, nr.seconds);
    total += nr.seconds;
  }
  const double mean = total / static_cast<double>(report.nodes.size());
  report.imbalance = mean > 0.0 ? report.makespan_seconds / mean : 0.0;
  return report;
}

}  // namespace gpa::seqpar
