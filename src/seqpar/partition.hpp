#pragma once
// Sequence partitioning for distributed execution — §VI-A future work:
// "to support distributed training across multiple nodes, we will
// implement distributed memory versions of the algorithms ... along with
// graph partitioning techniques to load balance work across the nodes."
//
// Rows (tokens) are assigned to P nodes. Work per row is its degree
// (edges = dot products), so a contiguous equal-*rows* split is balanced
// only for uniform masks; a global mask concentrates work in a few rows.
// The NNZ-balanced partitioner splits by prefix sums of degree instead.

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace gpa::seqpar {

struct Partition {
  /// boundaries[p] .. boundaries[p+1] is node p's contiguous row range.
  std::vector<Index> boundaries;  ///< size parts+1, boundaries[0] == 0
  std::vector<Size> work;         ///< edges owned by each part

  Index parts() const noexcept { return static_cast<Index>(work.size()); }
  /// max(work) / mean(work); 1.0 is perfect balance.
  double imbalance() const;
};

/// Equal row count per node (the naive split).
Partition partition_uniform_rows(Index seq_len, Index parts,
                                 const std::vector<Index>& degrees);

/// Contiguous ranges with (greedily) equalised edge counts via prefix
/// sums of `degrees`.
Partition partition_balanced_nnz(Index seq_len, Index parts,
                                 const std::vector<Index>& degrees);

/// Degrees for a CSR mask (convenience shim over graph/degree).
std::vector<Index> degrees_of(const Csr<float>& mask);

}  // namespace gpa::seqpar
