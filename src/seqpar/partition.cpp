#include "seqpar/partition.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/degree.hpp"

namespace gpa::seqpar {

double Partition::imbalance() const {
  if (work.empty()) return 0.0;
  Size total = 0;
  Size max_w = 0;
  for (const Size w : work) {
    total += w;
    max_w = std::max(max_w, w);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(work.size());
  return static_cast<double>(max_w) / mean;
}

namespace {

Partition from_boundaries(std::vector<Index> boundaries, const std::vector<Index>& degrees) {
  Partition part;
  part.boundaries = std::move(boundaries);
  part.work.resize(part.boundaries.size() - 1, 0);
  for (std::size_t p = 0; p + 1 < part.boundaries.size(); ++p) {
    Size w = 0;
    for (Index i = part.boundaries[p]; i < part.boundaries[p + 1]; ++i) {
      w += static_cast<Size>(degrees[static_cast<std::size_t>(i)]);
    }
    part.work[p] = w;
  }
  return part;
}

}  // namespace

Partition partition_uniform_rows(Index seq_len, Index parts,
                                 const std::vector<Index>& degrees) {
  GPA_CHECK(parts >= 1, "need at least one part");
  GPA_CHECK(static_cast<Index>(degrees.size()) == seq_len, "degree vector length mismatch");
  std::vector<Index> b(static_cast<std::size_t>(parts) + 1);
  for (Index p = 0; p <= parts; ++p) {
    b[static_cast<std::size_t>(p)] = seq_len * p / parts;
  }
  return from_boundaries(std::move(b), degrees);
}

Partition partition_balanced_nnz(Index seq_len, Index parts,
                                 const std::vector<Index>& degrees) {
  GPA_CHECK(parts >= 1, "need at least one part");
  GPA_CHECK(static_cast<Index>(degrees.size()) == seq_len, "degree vector length mismatch");

  // Prefix sums, then place each boundary at the first row whose prefix
  // reaches p/parts of the total.
  std::vector<Size> prefix(static_cast<std::size_t>(seq_len) + 1, 0);
  for (Index i = 0; i < seq_len; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + static_cast<Size>(degrees[static_cast<std::size_t>(i)]);
  }
  const Size total = prefix.back();

  std::vector<Index> b(static_cast<std::size_t>(parts) + 1, 0);
  b[static_cast<std::size_t>(parts)] = seq_len;
  for (Index p = 1; p < parts; ++p) {
    const Size target = total * static_cast<Size>(p) / static_cast<Size>(parts);
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    Index row = static_cast<Index>(it - prefix.begin());
    row = std::clamp<Index>(row, b[static_cast<std::size_t>(p) - 1], seq_len);
    b[static_cast<std::size_t>(p)] = row;
  }
  return from_boundaries(std::move(b), degrees);
}

std::vector<Index> degrees_of(const Csr<float>& mask) { return csr_degrees(mask); }

}  // namespace gpa::seqpar
