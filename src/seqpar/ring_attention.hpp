#pragma once
// Ring-attention-style sequence parallelism (related work §III: "Ring
// attention achieves sequence parallelism for block sparse attention
// masks"). Unlike the all-gather cluster in sim_cluster.hpp — where
// every node receives the full K/V — each node here owns only its own
// K/V *shard*, and shards rotate around a ring for P steps. At step s,
// node p processes exactly the mask edges whose columns fall inside the
// shard it currently holds, folding them into its rows' persistent
// online-softmax state (the same SoftmaxState mechanism that powers
// sequential mask composition). After P steps every edge has been
// visited once and one finalisation yields the exact attention output.
//
// Peak per-node memory is O((L/P)·d) for K/V instead of O(L·d) — the
// property that lets ring attention reach "near-infinite" context — and
// the per-step communication volume is one shard.

#include "core/attention_options.hpp"
#include "seqpar/partition.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::seqpar {

struct RingReport {
  Index nodes = 0;
  Index steps = 0;               ///< == nodes
  Size comm_bytes_per_step = 0;  ///< one K/V shard
  Size total_comm_bytes = 0;     ///< (P-1) rotations × shard
  Size peak_node_kv_bytes = 0;   ///< largest shard held at once
  std::vector<Size> edges_per_step;  ///< work processed per rotation (summed over nodes)
};

/// Exact CSR attention computed ring-style over `partition` (which
/// defines both the row ownership and the K/V shards). The result in
/// `out` equals the single-node kernel up to online-softmax rounding.
RingReport ring_csr_attention(const Matrix<float>& q, const Matrix<float>& k,
                              const Matrix<float>& v, const Csr<float>& mask,
                              const Partition& partition, Matrix<float>& out,
                              const AttentionOptions& opts = {});

}  // namespace gpa::seqpar
