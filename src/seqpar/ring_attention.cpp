#include "seqpar/ring_attention.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "core/state.hpp"
#include "core/traversal.hpp"
#include "tensor/softmax.hpp"

namespace gpa::seqpar {

RingReport ring_csr_attention(const Matrix<float>& q, const Matrix<float>& k,
                              const Matrix<float>& v, const Csr<float>& mask,
                              const Partition& partition, Matrix<float>& out,
                              const AttentionOptions& opts) {
  const Index L = q.rows();
  const Index d = q.cols();
  GPA_CHECK(mask.rows == L && mask.cols == L, "ring: mask shape mismatch");
  GPA_CHECK(out.rows() == L && out.cols() == d, "ring: output shape mismatch");
  GPA_CHECK(!partition.boundaries.empty() && partition.boundaries.front() == 0 &&
                partition.boundaries.back() == L,
            "ring: partition must cover [0, L)");
  GPA_CHECK(!opts.use_mask_values, "ring: weighted masks not supported");
  const float scale = gpa::detail::resolve_scale(opts.scale, d);
  const simd::VecOps& vo = simd::ops(opts.policy.simd);
  const Index P = partition.parts();
  // The shard iteration is the traversal's column-ranged enumeration —
  // the same edge order the one-shot kernels (and the wire-path ring
  // prefill in src/net) drive, located by binary search per row.
  const MaskTraversal tr = MaskTraversal::over(mask);

  RingReport report;
  report.nodes = P;
  report.steps = P;
  report.edges_per_step.assign(static_cast<std::size_t>(P), 0);

  // One persistent softmax state for all rows (each node owns a row
  // slice of it, so there is no sharing in the simulated execution).
  SoftmaxState state(L, d);

  // Shard extents and the communication model.
  for (Index p = 0; p < P; ++p) {
    const Size shard_rows = static_cast<Size>(partition.boundaries[static_cast<std::size_t>(p) + 1] -
                                              partition.boundaries[static_cast<std::size_t>(p)]);
    const Size shard_bytes = 2 * shard_rows * static_cast<Size>(d) * sizeof(float);
    report.peak_node_kv_bytes = std::max(report.peak_node_kv_bytes, shard_bytes);
  }
  report.comm_bytes_per_step = report.peak_node_kv_bytes;
  report.total_comm_bytes = static_cast<Size>(P - 1) * report.comm_bytes_per_step;

  // Ring steps: at step s, node p holds shard (p + s) mod P and folds
  // the edges of its rows whose columns land in that shard. Simulated
  // faithfully: within a step nodes run independently (parallelisable);
  // steps are globally ordered (the rotation barrier).
  for (Index s = 0; s < P; ++s) {
    Size step_edges = 0;
    for (Index p = 0; p < P; ++p) {
      const Index shard = (p + s) % P;
      const Index col_lo = partition.boundaries[static_cast<std::size_t>(shard)];
      const Index col_hi = partition.boundaries[static_cast<std::size_t>(shard) + 1];
      const Index row_lo = partition.boundaries[static_cast<std::size_t>(p)];
      const Index row_hi = partition.boundaries[static_cast<std::size_t>(p) + 1];

      for (Index i = row_lo; i < row_hi; ++i) {
        const float* qi = q.row(i);
        float* acc = state.acc_row(i);
        OnlineSoftmaxRow osr{state.m(i), state.l(i)};
        tr.for_each_edge_in_cols(i, L, opts.causal, col_lo, col_hi, [&](Index j, float) {
          gpa::detail::fold_edge(qi, k, v, j, d, scale, 1.0f, false, osr, acc, vo);
          ++step_edges;
        });
        state.m(i) = osr.m;
        state.l(i) = osr.l;
      }
    }
    report.edges_per_step[static_cast<std::size_t>(s)] = step_edges;
  }

  state.finalize_into(out);
  return report;
}

}  // namespace gpa::seqpar
