#include "kvcache/prefix_index.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace gpa::kvcache {

namespace {

// Registry mirrors of PrefixIndex::Stats, bumped at the same sites as
// the locked st_ fields so a scrape and a stats() read tell one story
// (hits + misses == lookups holds in both views).
struct PrefixMetrics {
  obs::Counter& lookups;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& published;
  obs::Counter& reclaimed;

  static PrefixMetrics& get() {
    static PrefixMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      return PrefixMetrics{reg.counter("kvcache.prefix.lookups"),
                           reg.counter("kvcache.prefix.hits"),
                           reg.counter("kvcache.prefix.misses"),
                           reg.counter("kvcache.prefix.published"),
                           reg.counter("kvcache.prefix.reclaimed")};
    }();
    return m;
  }
};

}  // namespace

Index PrefixIndex::acquire(std::uint64_t chain, BlockPool& pool) {
  std::lock_guard<std::mutex> lk(mu_);
  ++st_.lookups;
  PrefixMetrics::get().lookups.inc();
  const auto it = by_chain_.find(chain);
  if (it == by_chain_.end()) {
    PrefixMetrics::get().misses.inc();
    return BlockPool::kNoPage;
  }
  // Retain while still under mu_: the index's own reference keeps the
  // page live, so this can never race a concurrent free/recycle.
  pool.retain(it->second);
  ++st_.hits;
  PrefixMetrics::get().hits.inc();
  ++by_page_.find(it->second)->second.hits;
  return it->second;
}

bool PrefixIndex::publish(std::uint64_t chain, Index page, BlockPool& pool) {
  std::lock_guard<std::mutex> lk(mu_);
  if (by_chain_.find(chain) != by_chain_.end()) return false;
  GPA_CHECK(by_page_.find(page) == by_page_.end(),
            "page already published under a different chain");
  pool.retain(page);
  by_chain_.emplace(chain, page);
  by_page_.emplace(page, Entry{chain, 0});
  ++st_.published;
  PrefixMetrics::get().published.inc();
  st_.entries = static_cast<Index>(by_chain_.size());
  return true;
}

void PrefixIndex::drop_entry_locked(Index page, BlockPool& pool) {
  const auto rit = by_page_.find(page);
  by_chain_.erase(rit->second.chain);
  by_page_.erase(rit);
  candidates_.erase(page);
  pool.release(page);
  ++st_.reclaimed;
  PrefixMetrics::get().reclaimed.inc();
  st_.entries = static_cast<Index>(by_chain_.size());
}

void PrefixIndex::note_released(const std::vector<Index>& pages) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Index page : pages) {
    if (by_page_.find(page) != by_page_.end()) candidates_.insert(page);
  }
}

Size PrefixIndex::reclaim_one_orphan(BlockPool& pool) {
  std::lock_guard<std::mutex> lk(mu_);
  // Probe noted candidates first: the release paths that can turn an
  // entry into an orphan note the pages they let go of, so sustained
  // pressure stays a candidate-set scan per freed page instead of a
  // full index scan (with a pool-mutex refcount read per entry) per
  // allocation retry. Among the candidates that really are orphans the
  // LEAST-HIT one is freed; the others stay noted for the next call.
  Index best = BlockPool::kNoPage;
  Size best_hits = 0;
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    const Index page = *it;
    const auto eit = by_page_.find(page);
    if (eit == by_page_.end()) {
      it = candidates_.erase(it);  // stale: entry already reclaimed
      continue;
    }
    if (pool.ref_count(page) != 1) {
      // Still shared — the remaining holder's own release re-notes it.
      it = candidates_.erase(it);
      continue;
    }
    if (best == BlockPool::kNoPage || eit->second.hits < best_hits) {
      best = page;
      best_hits = eit->second.hits;
    }
    ++it;
  }
  if (best != BlockPool::kNoPage) {
    drop_entry_locked(best, pool);
    return 1;
  }
  // Fallback sweep: a correctness net for orphans no release path
  // noted, not the fast path. Same min-hit rule over the whole index.
  for (const auto& [page, entry] : by_page_) {
    // refcount 1 == only the index holds it. Nothing can retain it
    // behind our back: acquire() needs mu_ (held), and a session fork
    // only retains pages the parent already references (count >= 2).
    if (pool.ref_count(page) != 1) continue;
    if (best == BlockPool::kNoPage || entry.hits < best_hits) {
      best = page;
      best_hits = entry.hits;
    }
  }
  if (best != BlockPool::kNoPage) {
    drop_entry_locked(best, pool);
    return 1;
  }
  return 0;
}

Size PrefixIndex::reclaim_orphans_among(const std::vector<Index>& pages, BlockPool& pool) {
  std::lock_guard<std::mutex> lk(mu_);
  Size freed = 0;
  for (const Index page : pages) {
    if (by_page_.find(page) == by_page_.end()) continue;
    if (pool.ref_count(page) != 1) continue;
    drop_entry_locked(page, pool);
    ++freed;
  }
  return freed;
}

Size PrefixIndex::reclaim_all_orphans(BlockPool& pool) {
  std::lock_guard<std::mutex> lk(mu_);
  Size freed = 0;
  for (auto it = by_page_.begin(); it != by_page_.end();) {
    const Index page = it->first;
    ++it;  // drop_entry_locked invalidates the entry's iterator
    if (pool.ref_count(page) == 1) {
      drop_entry_locked(page, pool);
      ++freed;
    }
  }
  return freed;
}

void PrefixIndex::clear(BlockPool& pool) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [page, entry] : by_page_) {
    (void)entry;
    pool.release(page);
  }
  by_chain_.clear();
  by_page_.clear();
  candidates_.clear();
  st_.entries = 0;
}

PrefixIndex::Stats PrefixIndex::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return st_;
}

}  // namespace gpa::kvcache
