#pragma once
// Sessions: cached K/V plus running online-softmax statistics, keyed by
// a caller-chosen 64-bit id.
//
//   prefill      — one causal pass over the prompt through the shared
//                  fold (same row order as the one-shot kernels), output
//                  normalised, K/V written into pages, per-row (m, l)
//                  retained as the session's running softmax state.
//   decode_step  — appends one token's K/V, folds ONLY the new row's
//                  sparse neighborhood (MaskSpec row slice) against the
//                  paged cache, and returns that row's normalised
//                  output: O(row-nnz · d) per token instead of a full
//                  recompute. A session's mask may be a COMPOSITION
//                  (longformer = local ∘ global): each component's
//                  causal slice folds into the same row state, in
//                  composition order, bit-identical to one full
//                  composed kernel call.
//   fork         — copy-on-write clone sharing the parent's pages
//                  (shared-prefix serving: N continuations of one
//                  prompt cost one prompt's worth of cache).
//
// Concurrency model (what the TSan CI leg checks):
//   * `mu_` guards the session map, the LRU clock, and nothing else.
//   * each session has an op mutex serializing its prefill/decode;
//     different sessions decode concurrently.
//   * the pool is internally synchronized; page payloads are only
//     touched by the session that owns them exclusively.
//   * eviction (triggered by pool exhaustion) picks the
//     least-recently-used session whose op mutex try_lock succeeds —
//     a session mid-operation is never evicted, pinned sessions never
//     evict. If nothing is evictable, CacheFull.
//
// Ordering contract: decode_step calls for ONE session must be issued
// in token order (the autoregressive data dependency makes this natural
// — token t+1's Q does not exist before token t's output). Concurrent
// steps on one session are serialized by the op mutex but their fold
// order would be racy; the serving layer keeps same-session steps of a
// batch in arrival order.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/attention_options.hpp"
#include "kvcache/block_pool.hpp"
#include "kvcache/errors.hpp"
#include "kvcache/mask_spec.hpp"
#include "kvcache/page_table.hpp"
#include "kvcache/prefix_index.hpp"
#include "tensor/matrix.hpp"

namespace gpa::kvcache {

class SessionManager {
 public:
  struct Config {
    BlockPoolConfig pool{};
    /// Default options for sessions created without an explicit set
    /// (scale / SIMD level / parallel policy of the prefill pass).
    AttentionOptions opts{};
    /// Pool-wide content-hash prompt caching: prefill adopts full prompt
    /// pages already published by any other session (same mask family +
    /// byte-identical content) by reference instead of writing copies.
    /// Numerics are unaffected either way — prefill attention reads the
    /// contiguous inputs, and adopted pages are byte-verified.
    bool prefix_dedup = true;
  };

  struct Stats {
    Size sessions = 0;
    Index pages_in_use = 0;
    Index pages_free = 0;
    Size evictions = 0;       ///< LRU evictions that actually freed pages
    Size decode_steps = 0;
    Size decode_edges = 0;    ///< edges folded by all decode steps
    // Prompt-cache (prefix dedup) counters.
    Size pages_deduped = 0;   ///< full prompt pages adopted, not written
    Size prefix_lookups = 0;  ///< index probes issued by prefill
    Size prefix_hits = 0;     ///< probes that found a candidate page
    Size prefix_published = 0;  ///< pages ever registered in the index
    Size prefix_reclaimed = 0;  ///< orphan cache pages freed under pressure
    Index prefix_entries = 0;   ///< live index entries (cached pages)
  };

  explicit SessionManager(Config cfg);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;
  ~SessionManager();

  /// Registers an empty session. Throws InvalidArgument if `id` exists.
  void create(std::uint64_t id, MaskSpec mask);
  void create(std::uint64_t id, MaskSpec mask, const AttentionOptions& opts);

  bool contains(std::uint64_t id) const;
  Index length(std::uint64_t id);

  /// Drops the session and releases its pages (no-op if unknown).
  void release(std::uint64_t id);

  /// Pinned sessions are exempt from LRU eviction.
  void set_pinned(std::uint64_t id, bool pinned);

  /// Copy-on-write clone of `parent` as `child`: pages shared, running
  /// softmax state copied. Throws if parent is unknown or child exists.
  void fork(std::uint64_t parent, std::uint64_t child);

  /// Causal attention over the prompt (rows fold exactly as the
  /// one-shot kernels' causal branches), K/V cached, `out` resized to
  /// q's shape and normalised. The session must be empty.
  void prefill(std::uint64_t id, const Matrix<float>& q, const Matrix<float>& k,
               const Matrix<float>& v, Matrix<float>& out);

  /// One incremental token: caches (k_new, v_new) at position t =
  /// length(), folds row t's causal neighborhood against the paged
  /// cache, writes the normalised 1×d output row. Returns the number of
  /// edges folded.
  Index decode_step(std::uint64_t id, const float* q_new, const float* k_new,
                    const float* v_new, float* out_row);
  /// Matrix convenience overload (1×d in, 1×d out, shape-checked).
  Index decode_step(std::uint64_t id, const Matrix<float>& q_new, const Matrix<float>& k_new,
                    const Matrix<float>& v_new, Matrix<float>& out_row);

  /// One item of a cross-session decode batch. Payload pointers must
  /// stay valid for the duration of decode_batch; `out` receives the
  /// normalised head_dim output row on Outcome::Ok and is untouched
  /// otherwise.
  struct DecodeBatchItem {
    std::uint64_t session_id = 0;
    const float* q = nullptr;
    const float* k = nullptr;
    const float* v = nullptr;
    float* out = nullptr;
    enum class Outcome : std::uint8_t {
      Ok = 0,
      SessionError,  ///< unknown / evicted / cache full (typed reject)
      Error,         ///< anything else — the item failed, batch continues
    };
    Outcome outcome = Outcome::Ok;
    Index edges = 0;  ///< edges folded (0 unless Ok)
  };

  /// Batched decode across sessions: items are grouped by session id
  /// (steps of ONE session run in item order — the autoregressive
  /// ordering contract above), and the per-session groups fold
  /// concurrently under `policy` through a parallel_reduce that sums
  /// folded edges. Per-item failures are recorded in the item's
  /// `outcome`, never thrown — one bad session must not poison the
  /// batch. Returns the total edges folded by the Ok items.
  Index decode_batch(std::vector<DecodeBatchItem>& items, const ExecPolicy& policy);

  Stats stats() const;
  const BlockPool& pool() const noexcept { return pool_; }

 private:
  struct Session {
    std::mutex op_mu;  ///< serializes prefill/decode/fork-source/evict
    MaskSpec mask;
    AttentionOptions opts;
    PageTable table;
    /// Running per-row online-softmax stats — the growable decode form
    /// of SoftmaxState. decode_step's output needs only its own row;
    /// retaining (m, l) per token (2 floats vs the 2·d floats of cached
    /// K/V) keeps the door open for retro-folding edge sets into
    /// already-emitted rows (prefix dedup, speculative repair).
    std::vector<float> m, l;
    std::vector<float> acc;   ///< head_dim decode scratch
    std::uint64_t last_touch = 0;
    bool pinned = false;
    bool evicted = false;
  };

  /// Looks up + LRU-touches under mu_; throws SessionNotFound.
  std::shared_ptr<Session> find_and_touch(std::uint64_t id);
  /// Appends with evict-and-retry: reclaims an orphaned prompt-cache
  /// page first (cheapest — no session dies), then evicts LRU sessions.
  /// Caller holds s->op_mu.
  void append_or_evict(Session& s, const float* k_row, const float* v_row);
  /// Evicts the LRU idle unpinned session other than `self`, sweeping
  /// the prompt-cache entries its departure orphaned so the eviction
  /// actually frees the session's un-shared pages. Returns false when
  /// nothing is evictable; `evictions_` counts only evictions that
  /// released at least one page (a fully fork-shared session frees
  /// nothing and is not counted).
  bool evict_one(const Session* self);
  /// True iff `page`'s slots byte-match rows [start, start+ps) of k/v.
  bool page_matches(Index page, const Matrix<float>& k, const Matrix<float>& v,
                    Index start) const;

  Config cfg_;
  BlockPool pool_;
  PrefixIndex index_;  ///< pool-wide prompt cache (lock order: mu_ → index → pool)
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t lru_clock_ = 0;
  Size evictions_ = 0;
  Size dedup_pages_ = 0;
  Size decode_steps_ = 0;
  Size decode_edges_ = 0;
};

}  // namespace gpa::kvcache
