#pragma once
// KV-cache error taxonomy. These are *operational* outcomes, not
// programming errors: a session can vanish between a client's submit
// and the worker's dispatch (LRU eviction under memory pressure), so
// the serving layer catches SessionError and turns it into a typed
// rejection instead of a crashed worker.

#include <stdexcept>
#include <string>

namespace gpa::kvcache {

/// Base of every recoverable KV-cache condition.
class SessionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The session id was never created (or was explicitly released).
class SessionNotFound : public SessionError {
 public:
  explicit SessionNotFound(std::uint64_t id)
      : SessionError("kvcache: unknown session id " + std::to_string(id)) {}
};

/// The session existed but was evicted by the LRU policy; its cached
/// K/V is gone and the client must re-prefill.
class SessionEvicted : public SessionError {
 public:
  explicit SessionEvicted(std::uint64_t id)
      : SessionError("kvcache: session " + std::to_string(id) +
                     " was evicted — re-prefill to continue") {}
};

/// No page could be freed: every other session is busy or pinned.
class CacheFull : public SessionError {
 public:
  CacheFull()
      : SessionError("kvcache: block pool exhausted and no idle session to evict") {}
};

}  // namespace gpa::kvcache
