#include "kvcache/page_table.hpp"

#include "common/error.hpp"

namespace gpa::kvcache {

bool PageTable::append(BlockPool& pool, const float* k_row, const float* v_row) {
  const Index ps = pool.page_size();
  GPA_CHECK(stride_ == 0 || stride_ == ps, "page table bound to a different page size");
  stride_ = ps;
  const Index slot = len_ % ps;

  if (slot == 0) {
    // Page boundary: the token opens a fresh page.
    const Index page = pool.allocate();
    if (page == BlockPool::kNoPage) return false;
    pages_.push_back(page);
  } else if (pool.ref_count(pages_.back()) > 1) {
    // Shared tail page (post-fork): copy-on-write the used slots into an
    // exclusive page before touching slot `slot`.
    const Index fresh = pool.allocate();
    if (fresh == BlockPool::kNoPage) return false;
    const Index old = pages_.back();
    pool.copy_slots(fresh, old, slot);
    pool.release(old);
    pages_.back() = fresh;
  }

  pool.store_token(pages_.back(), slot, k_row, v_row);
  ++len_;
  return true;
}

void PageTable::adopt_shared_page(const BlockPool& pool, Index page) {
  const Index ps = pool.page_size();
  GPA_CHECK(stride_ == 0 || stride_ == ps, "page table bound to a different page size");
  GPA_CHECK(len_ % ps == 0, "shared pages adopt only on a page boundary");
  stride_ = ps;
  pages_.push_back(page);
  len_ += ps;
}

PageTable PageTable::fork(BlockPool& pool) const {
  PageTable child;
  child.pages_ = pages_;
  child.len_ = len_;
  child.stride_ = stride_;
  for (const Index p : pages_) pool.retain(p);
  return child;
}

void PageTable::release_all(BlockPool& pool) {
  for (const Index p : pages_) pool.release(p);
  pages_.clear();
  len_ = 0;
}

}  // namespace gpa::kvcache
