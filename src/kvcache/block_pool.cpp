#include "kvcache/block_pool.hpp"

#include <cstring>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace gpa::kvcache {

BlockPoolConfig pool_config_for_device(const DeviceSpec& device, Index head_dim,
                                       Index page_size, double budget_fraction,
                                       DType dtype) {
  GPA_CHECK(page_size >= 1, "page size must be at least one token slot");
  memmodel::ModelConfig mc;
  mc.dtype = dtype;  // pool storage precision drives bytes-per-token
  mc.embed_dim = head_dim;
  const Index tokens = memmodel::max_cached_tokens(device, mc, budget_fraction);
  BlockPoolConfig cfg;
  cfg.page_size = page_size;
  cfg.head_dim = head_dim;
  cfg.num_pages = tokens / page_size;
  cfg.dtype = dtype;
  return cfg;
}

BlockPool::BlockPool(BlockPoolConfig cfg) : cfg_(cfg) {
  GPA_CHECK(cfg_.page_size >= 1, "page size must be at least one token slot");
  GPA_CHECK(cfg_.head_dim >= 1, "head dimension must be positive");
  GPA_CHECK(cfg_.num_pages >= 1, "pool needs at least one page");
  const std::size_t elems = static_cast<std::size_t>(cfg_.num_pages) *
                            static_cast<std::size_t>(cfg_.page_size) * 2 *
                            static_cast<std::size_t>(cfg_.head_dim);
  if (cfg_.dtype == DType::F16) {
    storage_h_.resize(elems);
  } else {
    storage_.resize(elems);
  }
  refs_.assign(static_cast<std::size_t>(cfg_.num_pages), 0);
  free_.reserve(static_cast<std::size_t>(cfg_.num_pages));
  // Stack order: page 0 pops first (cosmetic, but deterministic for tests).
  for (Index p = cfg_.num_pages - 1; p >= 0; --p) free_.push_back(p);
}

void BlockPool::store_token(Index page, Index slot, const float* k, const float* v) noexcept {
  const std::size_t d = static_cast<std::size_t>(cfg_.head_dim);
  if (cfg_.dtype == DType::F16) {
    // Narrow via the dispatched converter: f2h is round-to-nearest-even
    // on every arm (test_simd_parity pins it), so the stored bits do
    // not depend on the dispatch decision.
    const simd::VecOps& vo = simd::ops(SimdLevel::Auto);
    vo.f2h(k_row_h(page, slot), k, cfg_.head_dim);
    vo.f2h(v_row_h(page, slot), v, cfg_.head_dim);
  } else {
    std::memcpy(k_row(page, slot), k, d * sizeof(float));
    std::memcpy(v_row(page, slot), v, d * sizeof(float));
  }
}

void BlockPool::copy_slots(Index dst_page, Index src_page, Index slots) noexcept {
  const std::size_t bytes = static_cast<std::size_t>(slots) * 2 * row_bytes();
  if (cfg_.dtype == DType::F16) {
    std::memcpy(static_cast<void*>(k_row_h(dst_page, 0)), k_row_h(src_page, 0), bytes);
  } else {
    std::memcpy(k_row(dst_page, 0), k_row(src_page, 0), bytes);
  }
}

Index BlockPool::allocate() {
  std::lock_guard<std::mutex> lk(mu_);
  if (free_.empty()) return kNoPage;
  const Index page = free_.back();
  free_.pop_back();
  refs_[static_cast<std::size_t>(page)] = 1;
  return page;
}

void BlockPool::check_live(Index page) const {
  GPA_CHECK(page >= 0 && page < cfg_.num_pages, "page id out of range");
  GPA_CHECK(refs_[static_cast<std::size_t>(page)] > 0, "page is not live (double free?)");
}

void BlockPool::retain(Index page) {
  std::lock_guard<std::mutex> lk(mu_);
  check_live(page);
  ++refs_[static_cast<std::size_t>(page)];
}

void BlockPool::release(Index page) {
  std::lock_guard<std::mutex> lk(mu_);
  check_live(page);
  if (--refs_[static_cast<std::size_t>(page)] == 0) free_.push_back(page);
}

Index BlockPool::ref_count(Index page) const {
  std::lock_guard<std::mutex> lk(mu_);
  GPA_CHECK(page >= 0 && page < cfg_.num_pages, "page id out of range");
  return refs_[static_cast<std::size_t>(page)];
}

Index BlockPool::pages_free() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<Index>(free_.size());
}

Index BlockPool::pages_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cfg_.num_pages - static_cast<Index>(free_.size());
}

}  // namespace gpa::kvcache
