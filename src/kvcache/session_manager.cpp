#include "kvcache/session_manager.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/fnv1a.hpp"
#include "core/kernel_common.hpp"
#include "core/state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_reduce.hpp"

namespace gpa::kvcache {
namespace {

namespace trace = obs::trace;

/// Folds a float row's raw bits into a running chain hash.
void mix_row(Fnv1a& f, const float* p, Index n) {
  for (Index i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, p + i, sizeof bits);
    f.mix(bits);
  }
}

// Registry mirrors of SessionManager's locked stats fields. Gauges for
// pool occupancy are NOT set here — they are refreshed at scrape time
// (NodeService's Op::Stats handler) from pool state, since a gauge
// updated per-allocation would just duplicate the pool's own counters.
struct KvMetrics {
  obs::Counter& prefill_calls;
  obs::Counter& pages_adopted;
  obs::Counter& verify_failures;
  obs::Counter& decode_steps;
  obs::Counter& decode_edges;
  obs::Counter& evictions;

  static KvMetrics& get() {
    static KvMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      return KvMetrics{reg.counter("kvcache.prefill.calls"),
                       reg.counter("kvcache.prefill.pages_adopted"),
                       reg.counter("kvcache.prefix.verify_failures"),
                       reg.counter("kvcache.decode.steps"),
                       reg.counter("kvcache.decode.edges"),
                       reg.counter("kvcache.evictions")};
    }();
    return m;
  }
};

}  // namespace

SessionManager::SessionManager(Config cfg) : cfg_(cfg), pool_(cfg.pool) {}

SessionManager::~SessionManager() {
  // Drop the prompt cache's own page references so the pool's books
  // balance for anyone inspecting it during teardown; sessions release
  // through their normal lifecycle.
  index_.clear(pool_);
}

void SessionManager::create(std::uint64_t id, MaskSpec mask) { create(id, std::move(mask), cfg_.opts); }

void SessionManager::create(std::uint64_t id, MaskSpec mask, const AttentionOptions& opts) {
  GPA_CHECK(!mask.components.empty(), "session mask needs at least one traversal component");
  auto s = std::make_shared<Session>();
  s->mask = std::move(mask);
  s->opts = opts;
  std::lock_guard<std::mutex> lk(mu_);
  GPA_CHECK(sessions_.find(id) == sessions_.end(), "session id already exists");
  s->last_touch = ++lru_clock_;
  sessions_.emplace(id, std::move(s));
}

bool SessionManager::contains(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.find(id) != sessions_.end();
}

Index SessionManager::length(std::uint64_t id) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) throw SessionNotFound(id);
    s = it->second;
  }
  std::lock_guard<std::mutex> op(s->op_mu);
  if (s->evicted) throw SessionEvicted(id);
  return s->table.length();
}

void SessionManager::release(std::uint64_t id) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    s = std::move(it->second);
    sessions_.erase(it);
  }
  // A racing decode may still hold the shared_ptr: take the op mutex so
  // the pages go back to the pool only once the operation drained.
  std::lock_guard<std::mutex> op(s->op_mu);
  if (!s->evicted) {
    s->evicted = true;
    const std::vector<Index> pages = s->table.pages();
    s->table.release_all(pool_);
    // The pages this session shared with the prompt cache may now be
    // orphans (index-only refs): note them so pressure-time reclaim
    // finds them without scanning the index. They stay cached until
    // then — the cache outliving its sessions is the point.
    index_.note_released(pages);
  }
}

void SessionManager::set_pinned(std::uint64_t id, bool pinned) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) throw SessionNotFound(id);
  it->second->pinned = pinned;
}

std::shared_ptr<SessionManager::Session> SessionManager::find_and_touch(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) throw SessionNotFound(id);
  it->second->last_touch = ++lru_clock_;
  return it->second;
}

bool SessionManager::evict_one(const Session* self) {
  std::lock_guard<std::mutex> lk(mu_);
  // Oldest-first candidate order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (touch, id)
  order.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    if (s.get() != self && !s->pinned) order.emplace_back(s->last_touch, id);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [touch, id] : order) {
    (void)touch;
    const auto it = sessions_.find(id);
    auto& s = it->second;
    // A session mid-prefill/decode holds its op mutex: try_lock fails
    // and the session survives — eviction only ever takes idle sessions.
    std::unique_lock<std::mutex> op(s->op_mu, std::try_to_lock);
    if (!op.owns_lock()) continue;
    s->evicted = true;
    // Count how much this eviction will actually free BEFORE releasing:
    // a page at refcount 1 goes back to the pool on release; a page the
    // prompt-cache index co-holds becomes an orphan the sweep below
    // frees. Anything else (fork-shared) survives the eviction and must
    // not be counted — evicting a fully-shared session frees nothing.
    const std::vector<Index> pages = s->table.pages();
    Size freed = 0;
    for (const Index p : pages) {
      if (pool_.ref_count(p) == 1) ++freed;
    }
    s->table.release_all(pool_);
    freed += index_.reclaim_orphans_among(pages, pool_);
    op.unlock();
    sessions_.erase(it);
    if (freed > 0) {
      ++evictions_;
      KvMetrics::get().evictions.inc();  // productive evictions only
    }
    return true;
  }
  return false;
}

void SessionManager::append_or_evict(Session& s, const float* k_row, const float* v_row) {
  while (!s.table.append(pool_, k_row, v_row)) {
    // Cheapest first: an orphaned prompt-cache page (held only by the
    // index — every session that wrote or adopted it is gone) frees a
    // page without killing anyone. Only then evict live sessions. The
    // loop terminates: each iteration removes an index entry or a
    // session, both finite, else CacheFull.
    if (index_.reclaim_one_orphan(pool_) > 0) continue;
    if (!evict_one(&s)) throw CacheFull();
  }
}

void SessionManager::fork(std::uint64_t parent, std::uint64_t child) {
  std::shared_ptr<Session> p;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(parent);
    if (it == sessions_.end()) throw SessionNotFound(parent);
    GPA_CHECK(sessions_.find(child) == sessions_.end(), "fork target id already exists");
    p = it->second;
  }
  auto c = std::make_shared<Session>();
  {
    std::lock_guard<std::mutex> op(p->op_mu);
    if (p->evicted) throw SessionEvicted(parent);
    c->mask = p->mask;
    c->opts = p->opts;
    c->table = p->table.fork(pool_);  // pages shared, refcounts bumped
    c->m = p->m;
    c->l = p->l;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (sessions_.find(child) != sessions_.end()) {
    c->table.release_all(pool_);  // lost the id race
    throw InvalidArgument("fork target id already exists");
  }
  c->last_touch = ++lru_clock_;
  sessions_.emplace(child, std::move(c));
}

void SessionManager::prefill(std::uint64_t id, const Matrix<float>& q, const Matrix<float>& k,
                             const Matrix<float>& v, Matrix<float>& out) {
  trace::Span span("kvcache.prefill", "kvcache");
  KvMetrics::get().prefill_calls.inc();
  const auto s = find_and_touch(id);
  std::lock_guard<std::mutex> op(s->op_mu);
  if (s->evicted) throw SessionEvicted(id);
  GPA_CHECK(s->table.length() == 0, "prefill requires an empty session (decode extends it)");
  const Index L = q.rows();
  const Index d = q.cols();
  GPA_CHECK(d == pool_.head_dim(), "payload width must match the pool's head dimension");
  GPA_CHECK(s->mask.max_len() < 0 || L <= s->mask.max_len(),
            "prompt longer than the session's CSR mask");

  // Cache first: if the pool cannot hold the prompt even after evicting
  // every idle session, fail before any attention work.
  //
  // With prefix dedup on, full prompt chunks go through the pool-wide
  // index: the chain hash folds the session's mask fingerprint, storage
  // dtype/shape, and every page's content in order, so equal chains mean
  // "same mask family, byte-identical prefix up to here". A hit is
  // byte-verified before adoption (an fnv1a collision degrades to a
  // miss, never to wrong bytes); a miss writes the chunk normally and
  // publishes the just-filled page for future sessions. The partial
  // tail is always written privately — it is the page CoW/decode mutate.
  const Index ps = pool_.page_size();
  std::vector<Index> published;
  Size adopted = 0;
  try {
    Index i = 0;
    if (cfg_.prefix_dedup) {
      Fnv1a chain;
      chain.mix(s->mask.fingerprint());
      // Storage dtype tag: an fp16 pool quantises page payloads, so its
      // chains must never collide with fp32 chains of the same prompt.
      chain.mix(pool_.dtype() == DType::F16 ? 0xF16u : 0xF32u);
      chain.mix(static_cast<std::uint64_t>(d));
      chain.mix(static_cast<std::uint64_t>(ps));
      for (; i + ps <= L; i += ps) {
        for (Index t = i; t < i + ps; ++t) {
          mix_row(chain, k.row(t), d);
          mix_row(chain, v.row(t), d);
        }
        const Index page = index_.acquire(chain.h, pool_);
        if (page != BlockPool::kNoPage) {
          if (page_matches(page, k, v, i)) {
            s->table.adopt_shared_page(pool_, page);  // transfers the acquire ref
            ++adopted;
            continue;
          }
          // Collision: the chain hash matched but the bytes did not —
          // fall through to a private copy. This counter reading > 0 is
          // the byte-verify guard earning its keep.
          KvMetrics::get().verify_failures.inc();
          pool_.release(page);
          index_.note_released({page});
        }
        for (Index t = i; t < i + ps; ++t) append_or_evict(*s, k.row(t), v.row(t));
        if (index_.publish(chain.h, s->table.pages().back(), pool_)) {
          published.push_back(s->table.pages().back());
        }
      }
    }
    for (; i < L; ++i) append_or_evict(*s, k.row(i), v.row(i));
  } catch (...) {
    // Leave the session empty and reusable, and withdraw the entries
    // this prefill just published (they are orphans once the table
    // lets go) — a failed prefill leaves no trace in the prompt cache.
    // Pages ADOPTED from the cache are different: they stay cached, but
    // may now be orphans, so note them for pressure-time reclaim.
    const std::vector<Index> pages = s->table.pages();
    s->table.release_all(pool_);
    index_.reclaim_orphans_among(published, pool_);
    index_.note_released(pages);
    throw;
  }

  // The prompt pass reads the contiguous inputs (cheaper than paging)
  // through the same shared fold and causal row order as the one-shot
  // kernels, so prefill output is bit-identical to a full kernel call.
  SoftmaxState state(L, d);
  AttentionOptions opts = s->opts;
  opts.causal = true;  // sessions are autoregressive by construction
  detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
    s->mask.for_each_causal(i, [&](Index j, float gate) { edge(j, gate); });
  });
  if (!(out.rows() == L && out.cols() == d)) out = Matrix<float>(L, d);
  state.finalize_into(out);

  s->m.resize(static_cast<std::size_t>(L));
  s->l.resize(static_cast<std::size_t>(L));
  for (Index i = 0; i < L; ++i) {
    s->m[static_cast<std::size_t>(i)] = state.m(i);
    s->l[static_cast<std::size_t>(i)] = state.l(i);
  }

  if (adopted > 0) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      dedup_pages_ += adopted;
    }
    KvMetrics::get().pages_adopted.inc(adopted);
  }
}

bool SessionManager::page_matches(Index page, const Matrix<float>& k, const Matrix<float>& v,
                                  Index start) const {
  const Index ps = pool_.page_size();
  const Index d = pool_.head_dim();
  if (pool_.dtype() == DType::F16) {
    // The page holds narrowed rows: narrow the candidate input the same
    // way (f2h is round-to-nearest-even on every arm, so equal floats
    // give equal half bits) and compare in storage precision.
    const simd::VecOps& vo = simd::ops(SimdLevel::Auto);
    std::vector<half_t> row(static_cast<std::size_t>(d));
    const std::size_t bytes = static_cast<std::size_t>(d) * sizeof(half_t);
    for (Index t = 0; t < ps; ++t) {
      vo.f2h(row.data(), k.row(start + t), d);
      if (std::memcmp(pool_.k_row_h(page, t), row.data(), bytes) != 0) return false;
      vo.f2h(row.data(), v.row(start + t), d);
      if (std::memcmp(pool_.v_row_h(page, t), row.data(), bytes) != 0) return false;
    }
    return true;
  }
  const std::size_t bytes = static_cast<std::size_t>(d) * sizeof(float);
  for (Index t = 0; t < ps; ++t) {
    if (std::memcmp(pool_.k_row(page, t), k.row(start + t), bytes) != 0) return false;
    if (std::memcmp(pool_.v_row(page, t), v.row(start + t), bytes) != 0) return false;
  }
  return true;
}

Index SessionManager::decode_step(std::uint64_t id, const float* q_new, const float* k_new,
                                  const float* v_new, float* out_row) {
  trace::Span span("kvcache.decode_step", "kvcache");
  const auto s = find_and_touch(id);
  std::lock_guard<std::mutex> op(s->op_mu);
  if (s->evicted) throw SessionEvicted(id);
  const Index t = s->table.length();
  GPA_CHECK(s->mask.max_len() < 0 || t < s->mask.max_len(),
            "session reached its CSR mask length — cannot decode further");

  append_or_evict(*s, k_new, v_new);

  const Index d = pool_.head_dim();
  const float scale = detail::resolve_scale(s->opts.scale, d);
  const bool use_gate = s->opts.use_mask_values;
  const simd::VecOps& vo = simd::ops(s->opts.policy.simd);

  s->acc.assign(static_cast<std::size_t>(d), 0.0f);
  float* acc = s->acc.data();
  OnlineSoftmaxRow osr;
  Index edges = 0;
  if (pool_.dtype() == DType::F16) {
    // Half-width pages: K/V widen on load through the vectorized fp16
    // fold — output differs from an fp32-page session only by the
    // storage quantisation of the cached rows.
    s->mask.for_each_causal(t, [&](Index j, float gate) {
      detail::fold_edge_rows_fh(q_new, s->table.k_row_h(pool_, j), s->table.v_row_h(pool_, j),
                                d, scale, gate, use_gate, osr, acc, vo);
      ++edges;
    });
  } else {
    s->mask.for_each_causal(t, [&](Index j, float gate) {
      detail::fold_edge_rows(q_new, s->table.k_row(pool_, j), s->table.v_row(pool_, j), d, scale,
                             gate, use_gate, osr, acc, vo);
      ++edges;
    });
  }

  // Same normalisation expression as SoftmaxState::finalize_into, so a
  // decode stream is bit-identical to the full-sequence kernel call.
  const float inv = osr.inv_l();
  for (Index p = 0; p < d; ++p) out_row[p] = acc[p] * inv;

  s->m.push_back(osr.m);
  s->l.push_back(osr.l);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++decode_steps_;
    decode_edges_ += static_cast<Size>(edges);
  }
  KvMetrics& km = KvMetrics::get();
  km.decode_steps.inc();
  km.decode_edges.inc(static_cast<std::uint64_t>(edges));
  return edges;
}

Index SessionManager::decode_step(std::uint64_t id, const Matrix<float>& q_new,
                                  const Matrix<float>& k_new, const Matrix<float>& v_new,
                                  Matrix<float>& out_row) {
  GPA_CHECK(q_new.rows() == 1 && k_new.rows() == 1 && v_new.rows() == 1,
            "decode_step takes one token (1×d payloads)");
  GPA_CHECK(q_new.cols() == pool_.head_dim() && q_new.same_shape(k_new) &&
                q_new.same_shape(v_new),
            "decode payload width must match the pool's head dimension");
  if (!out_row.same_shape(q_new)) out_row = Matrix<float>(1, q_new.cols());
  return decode_step(id, q_new.row(0), k_new.row(0), v_new.row(0), out_row.row(0));
}

Index SessionManager::decode_batch(std::vector<DecodeBatchItem>& items,
                                   const ExecPolicy& policy) {
  // Group by session, preserving item order within each group: one
  // session's steps must fold in token order (the ordering contract in
  // the header), while different sessions are independent and form the
  // parallel grain. std::map keys ascend, so the group order — and with
  // it the reduction tree — is deterministic for a given item set.
  std::map<std::uint64_t, std::vector<std::size_t>> by_session;
  for (std::size_t i = 0; i < items.size(); ++i) {
    by_session[items[i].session_id].push_back(i);
  }
  std::vector<const std::vector<std::size_t>*> groups;
  groups.reserve(by_session.size());
  for (const auto& [sid, idx] : by_session) groups.push_back(&idx);

  // The per-group fold count reduces through the substrate: inside a
  // server worker this runs nested (the guard degrades it to serial);
  // standalone it spreads sessions across threads.
  return parallel_reduce(
      Index{0}, static_cast<Index>(groups.size()), Index{0},
      [&](Index lo, Index hi, Index partial) {
        for (Index g = lo; g < hi; ++g) {
          for (const std::size_t i : *groups[static_cast<std::size_t>(g)]) {
            DecodeBatchItem& it = items[i];
            try {
              it.edges = decode_step(it.session_id, it.q, it.k, it.v, it.out);
              it.outcome = DecodeBatchItem::Outcome::Ok;
              partial += it.edges;
            } catch (const SessionError&) {
              it.outcome = DecodeBatchItem::Outcome::SessionError;
            } catch (const std::exception&) {
              it.outcome = DecodeBatchItem::Outcome::Error;
            }
          }
        }
        return partial;
      },
      [](Index a, Index b) { return a + b; }, policy);
}

SessionManager::Stats SessionManager::stats() const {
  Stats st;
  {
    std::lock_guard<std::mutex> lk(mu_);
    st.sessions = sessions_.size();
    st.evictions = evictions_;
    st.pages_deduped = dedup_pages_;
    st.decode_steps = decode_steps_;
    st.decode_edges = decode_edges_;
  }
  const PrefixIndex::Stats ix = index_.stats();
  st.prefix_lookups = ix.lookups;
  st.prefix_hits = ix.hits;
  st.prefix_published = ix.published;
  st.prefix_reclaimed = ix.reclaimed;
  st.prefix_entries = ix.entries;
  st.pages_in_use = pool_.pages_in_use();
  st.pages_free = pool_.pages_free();
  return st;
}

}  // namespace gpa::kvcache
