#pragma once
// Umbrella header for the paged KV-cache subsystem:
//   block_pool.hpp      — refcounted fixed-size K/V pages (CoW sharing)
//   page_table.hpp      — per-session token → (page, slot) mapping
//   mask_spec.hpp       — session mask: composition of MaskTraversals
//   prefix_index.hpp    — pool-wide content-hash prompt cache
//   session_manager.hpp — sessions: prefill / decode_step / fork / LRU
//   errors.hpp          — SessionNotFound / SessionEvicted / CacheFull

#include "kvcache/block_pool.hpp"
#include "kvcache/errors.hpp"
#include "kvcache/mask_spec.hpp"
#include "kvcache/page_table.hpp"
#include "kvcache/prefix_index.hpp"
#include "kvcache/session_manager.hpp"
