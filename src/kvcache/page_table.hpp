#pragma once
// Per-session logical→physical token mapping: token position t lives in
// page pages_[t / page_size], slot t % page_size.
//
// Append is the only mutation. The copy-on-write rule lives here: an
// append into a partially-filled tail page that is *shared* (refcount
// > 1 after a fork) first copies the used slots into a fresh exclusive
// page. Full pages are never copied — two sessions forked after a long
// shared prompt keep sharing every full prompt page while their tails
// diverge.

#include <vector>

#include "kvcache/block_pool.hpp"

namespace gpa::kvcache {

class PageTable {
 public:
  /// Cached tokens.
  Index length() const noexcept { return len_; }
  Index num_pages() const noexcept { return static_cast<Index>(pages_.size()); }
  const std::vector<Index>& pages() const noexcept { return pages_; }

  /// Appends one token's K/V rows (each `pool.head_dim()` floats; an
  /// fp16 pool narrows them on write). Returns false when the pool is
  /// exhausted (nothing is appended; the caller may evict and retry).
  bool append(BlockPool& pool, const float* k_row, const float* v_row);

  /// K/V row of cached token `pos` (0 <= pos < length(), unchecked).
  /// The *_h forms address fp16 pools — callers branch on pool.dtype().
  const float* k_row(const BlockPool& pool, Index pos) const noexcept {
    return pool.k_row(page_of(pos), slot_of(pool, pos));
  }
  const float* v_row(const BlockPool& pool, Index pos) const noexcept {
    return pool.v_row(page_of(pos), slot_of(pool, pos));
  }
  const half_t* k_row_h(const BlockPool& pool, Index pos) const noexcept {
    return pool.k_row_h(page_of(pos), slot_of(pool, pos));
  }
  const half_t* v_row_h(const BlockPool& pool, Index pos) const noexcept {
    return pool.v_row_h(page_of(pos), slot_of(pool, pos));
  }

  /// Appends a FULL page of already-cached tokens by reference: the
  /// caller holds a reference on `page` (e.g. from PrefixIndex::acquire)
  /// and transfers it to the table — no copy, no refcount change here.
  /// Only legal on a page boundary (length() % page_size == 0), so the
  /// adopted page is never the partial tail CoW writes into: adopted
  /// pages are full and therefore immutable for as long as any table
  /// maps them.
  void adopt_shared_page(const BlockPool& pool, Index page);

  /// A table sharing every page of this one (refcounts bumped).
  PageTable fork(BlockPool& pool) const;

  /// Releases every page reference and empties the table.
  void release_all(BlockPool& pool);

 private:
  Index page_of(Index pos) const noexcept {
    return pages_[static_cast<std::size_t>(pos) / static_cast<std::size_t>(stride_)];
  }
  Index slot_of(const BlockPool&, Index pos) const noexcept { return pos % stride_; }

  std::vector<Index> pages_;
  Index len_ = 0;
  Index stride_ = 0;  ///< page_size memo (set on first append / fork)
};

}  // namespace gpa::kvcache
