#pragma once
// Paged K/V storage: the vLLM-style block allocator, sized for CPUs.
//
// The cache is one flat arena cut into fixed-size pages. A page holds
// `page_size` token slots; each slot is the token's K row followed
// (page-contiguously) by its V row, both `head_dim` elements, so a
// decode fold reads each neighbor's K and V as contiguous spans — the
// same access shape as Matrix::row(), which is what lets the shared
// fold_edge_rows (and with it every SIMD dispatch arm) run unchanged
// over paged storage.
//
// STORAGE DTYPE. The arena is fp32 or fp16, chosen at construction
// (BlockPoolConfig::dtype). fp16 pages halve bytes-per-token, which the
// memory model converts into ~2× pages — i.e. ~2× cached sessions per
// device at an equal byte budget. Writes into an fp16 pool narrow with
// round-to-nearest-even through the dispatched f2h op (bit-identical on
// every arm, so page payloads are dispatch-independent); decode widens
// on load through the vectorized fp16 fold path. Accessors are
// dtype-split: k_row/v_row address the fp32 arena, k_row_h/v_row_h the
// fp16 arena — callers branch on dtype(), never reinterpret.
//
// Pages are reference-counted. A session owns ref 1 on each of its
// pages; forking a session (shared prompt prefix) bumps every page's
// count instead of copying — copy-on-write happens only when a session
// appends into a *shared, partially-filled* tail page (PageTable does
// the copy; full shared pages stay shared forever, which is the whole
// prefix-sharing win).
//
// The pool is internally synchronized: allocate / release / retain are
// safe from concurrent sessions. Slot payloads are NOT synchronized by
// the pool — a page's elements are written only by the session that
// holds it exclusively (refcount 1, CoW guarantees this), and the pool
// mutex on the allocate/release pair provides the happens-before edge
// when a freed page is recycled to another session.

#include <mutex>
#include <vector>

#include "common/half.hpp"
#include "common/types.hpp"
#include "memmodel/memory_model.hpp"
#include "parallel/device_spec.hpp"

namespace gpa::kvcache {

struct BlockPoolConfig {
  Index page_size = 16;       ///< token slots per page
  Index head_dim = 64;        ///< packed width of one K (or V) row
  Index num_pages = 64;
  DType dtype = DType::F32;   ///< storage precision of the arena
};

/// Sizes a pool from a device capacity via the memory model: grants the
/// cache `budget_fraction` of the device and converts it to whole pages
/// of `page_size` tokens at the given storage dtype — fp16 yields ~2×
/// the pages of fp32 at the same byte budget.
BlockPoolConfig pool_config_for_device(const DeviceSpec& device, Index head_dim,
                                       Index page_size, double budget_fraction,
                                       DType dtype = DType::F32);

class BlockPool {
 public:
  static constexpr Index kNoPage = -1;

  explicit BlockPool(BlockPoolConfig cfg);

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  Index page_size() const noexcept { return cfg_.page_size; }
  Index head_dim() const noexcept { return cfg_.head_dim; }
  Index num_pages() const noexcept { return cfg_.num_pages; }
  DType dtype() const noexcept { return cfg_.dtype; }

  /// Pops a free page with refcount 1, or kNoPage when exhausted (the
  /// caller decides whether to evict and retry).
  Index allocate();

  /// +1 on the page's refcount (prefix sharing on fork).
  void retain(Index page);

  /// -1 on the page's refcount; at zero the page returns to the free
  /// list. Releasing a free page throws (double-free invariant).
  void release(Index page);

  Index ref_count(Index page) const;
  Index pages_in_use() const;
  Index pages_free() const;

  /// fp32 slot payload accessors (page must be live, pool must be F32;
  /// unchecked hot path).
  float* k_row(Index page, Index slot) noexcept {
    return storage_.data() + slot_offset(page, slot);
  }
  const float* k_row(Index page, Index slot) const noexcept {
    return storage_.data() + slot_offset(page, slot);
  }
  float* v_row(Index page, Index slot) noexcept {
    return storage_.data() + slot_offset(page, slot) + cfg_.head_dim;
  }
  const float* v_row(Index page, Index slot) const noexcept {
    return storage_.data() + slot_offset(page, slot) + cfg_.head_dim;
  }

  /// fp16 slot payload accessors (pool must be F16).
  half_t* k_row_h(Index page, Index slot) noexcept {
    return storage_h_.data() + slot_offset(page, slot);
  }
  const half_t* k_row_h(Index page, Index slot) const noexcept {
    return storage_h_.data() + slot_offset(page, slot);
  }
  half_t* v_row_h(Index page, Index slot) noexcept {
    return storage_h_.data() + slot_offset(page, slot) + cfg_.head_dim;
  }
  const half_t* v_row_h(Index page, Index slot) const noexcept {
    return storage_h_.data() + slot_offset(page, slot) + cfg_.head_dim;
  }

  /// Writes one token's K/V rows (each head_dim fp32 values) into a
  /// slot, narrowing to fp16 (round-to-nearest-even, dispatch-
  /// independent bits) when the pool is half-width.
  void store_token(Index page, Index slot, const float* k, const float* v) noexcept;

  /// Raw copy of the first `slots` slots from one page to another (the
  /// CoW path) — dtype-agnostic byte move.
  void copy_slots(Index dst_page, Index src_page, Index slots) noexcept;

  /// Bytes of one K (or V) row in this pool's storage dtype.
  std::size_t row_bytes() const noexcept {
    return static_cast<std::size_t>(cfg_.head_dim) * dtype_size(cfg_.dtype);
  }

 private:
  std::size_t slot_offset(Index page, Index slot) const noexcept {
    // Slot stride is 2·d (K row then V row), in elements of the dtype.
    return (static_cast<std::size_t>(page) * static_cast<std::size_t>(cfg_.page_size) +
            static_cast<std::size_t>(slot)) *
           (2 * static_cast<std::size_t>(cfg_.head_dim));
  }
  void check_live(Index page) const;  // caller holds mu_

  BlockPoolConfig cfg_;
  std::vector<float> storage_;     ///< fp32 arena (empty in F16 mode)
  std::vector<half_t> storage_h_;  ///< fp16 arena (empty in F32 mode)
  mutable std::mutex mu_;
  std::vector<Index> refs_;  ///< 0 = free
  std::vector<Index> free_;  ///< stack of free page ids
};

}  // namespace gpa::kvcache
