#pragma once
// Pool-wide prompt cache: a content-hash index over FULL, immutable
// prompt pages, so identical prefixes from *unrelated* sessions share
// pages without an explicit fork (vLLM-style paged prefix caching).
//
// Key structure. An entry's key is a CHAIN hash: fnv1a over
// (mask fingerprint, dtype, head_dim, page_size) seeded once per
// session, then extended page by page with the content hash of each
// full page's K/V rows. Extending by content gives radix/trie
// semantics without storing a trie — "same chain key" means "same mask
// family AND byte-identical token prefix up to and including this
// page" (prefill additionally byte-verifies the candidate page before
// adopting it, so an fnv1a collision degrades to a miss, never to
// wrong numerics).
//
// Ownership. The index holds ONE pool reference per entry — that is
// what keeps a cached page alive after every referencing session is
// gone (the prompt cache outliving its sessions is the whole point)
// and what makes acquire() race-free: while an entry exists its page
// cannot be freed or recycled, so retain-under-the-index-mutex can
// never resurrect a dead page. Published pages are full, and full
// pages are never rewritten by PageTable (CoW only ever copies partial
// tails), so entry payloads are immutable for the life of the entry.
//
// Reclaim policy. Entries are dropped lazily, under memory pressure
// only: an ORPHAN (refcount 1 — the index's own ref is the last) is
// the cheapest page in the pool to free, so SessionManager's
// evict-and-retry loop reclaims orphans before it evicts any live
// session, and a session eviction sweeps the pages it just orphaned.
// A page still referenced by any session is never reclaimable through
// the index — eviction is refcount-aware by construction.
//
// Among orphans, reclaim is ADMISSION-WEIGHTED: each entry carries a
// hit counter (bumped per acquire()), and reclaim_one_orphan frees the
// least-hit orphan it can see. A page that has served prefix hits is
// evidence its prompt recurs; a never-hit orphan was published once
// and never matched, so it is the first to go under pressure.

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "kvcache/block_pool.hpp"

namespace gpa::kvcache {

class PrefixIndex {
 public:
  struct Stats {
    Size lookups = 0;    ///< acquire() calls
    Size hits = 0;       ///< acquire() calls that returned a page
    Size published = 0;  ///< entries ever registered
    Size reclaimed = 0;  ///< orphan pages released back to the pool
    Index entries = 0;   ///< live entries (== pages the index holds)
  };

  /// Hit: retains `chain`'s page FOR THE CALLER (on top of the index's
  /// own reference) and returns it; the caller must byte-verify the
  /// content and release on mismatch. Miss: kNoPage.
  Index acquire(std::uint64_t chain, BlockPool& pool);

  /// Registers `page` (which must be full and owned by the caller)
  /// under `chain`, taking the index's own reference. Returns false —
  /// and takes no reference — when an entry already exists (a
  /// concurrent identical prefill won the publish race; both sessions
  /// keep their own pages, future lookups hit the first).
  bool publish(std::uint64_t chain, Index page, BlockPool& pool);

  /// Records pages some holder just released a reference to, so the
  /// next reclaim probes them first instead of scanning the whole
  /// index. Pages without an entry are ignored; noting a page that
  /// turns out not to be an orphan is harmless (reclaim re-checks the
  /// refcount and the holder's own later release re-notes it).
  void note_released(const std::vector<Index>& pages);

  /// Frees ONE orphan entry (page refcount 1: nothing but the index
  /// holds it) — the LEAST-HIT orphan among the noted candidates, or
  /// among the whole index when no candidate pans out. Returns pages
  /// freed (0 or 1). The memory-pressure valve: cheaper than evicting
  /// any live session, and hit-weighted so never-hit orphans go before
  /// pages that have actually served prefix hits.
  Size reclaim_one_orphan(BlockPool& pool);

  /// Frees every orphan among `pages` — the targeted sweep a session
  /// eviction runs over the pages it just released, so "evict session"
  /// reliably frees its un-shared prompt pages instead of leaving them
  /// stranded behind the index's reference. Returns pages freed.
  Size reclaim_orphans_among(const std::vector<Index>& pages, BlockPool& pool);

  /// Frees every orphan entry (teardown / tests). Returns pages freed.
  Size reclaim_all_orphans(BlockPool& pool);

  /// Drops every entry and releases the index's references regardless
  /// of refcount (manager teardown only — sessions are gone by then).
  void clear(BlockPool& pool);

  Stats stats() const;

 private:
  /// Erases the entry for `page` and releases the index's reference;
  /// caller holds mu_ and has checked the entry exists.
  void drop_entry_locked(Index page, BlockPool& pool);

  struct Entry {
    std::uint64_t chain = 0;
    Size hits = 0;  ///< acquire() count — reclaim frees min-hit orphans first
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, Index> by_chain_;  ///< chain key → page
  std::map<Index, Entry> by_page_;           ///< reverse (targeted reclaim + hits)
  std::set<Index> candidates_;               ///< note_released'd likely orphans
  Stats st_;
};

}  // namespace gpa::kvcache
