#pragma once
// The sparse pattern a session decodes under, in row-slice form.
//
// Incremental decode needs exactly one thing from a mask: "row t's
// causal neighborhood, in kernel order". Each variant here reproduces
// the corresponding one-shot kernel's causal enumeration verbatim
// (csr_kernel / local_kernel / dilated1d_kernel / global_kernel), so a
// stream of decode_step folds visits the same edges in the same order
// as one full-sequence kernel call — the precondition for the paths
// being bit-identical on the float path, which test_kvcache pins down.
//
// CSR masks bound the session length (the mask is L_max × L_max);
// implicit patterns are unbounded — their causal row slices only look
// backward, so they are independent of any notional total length.

#include <memory>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"

namespace gpa::kvcache {

struct MaskSpec {
  enum class Kind : std::uint8_t { Csr, Local, Dilated1d, Global };

  Kind kind = Kind::Local;
  std::shared_ptr<const Csr<float>> csr;  ///< Kind::Csr only
  LocalParams local{};
  Dilated1DParams dilated{};
  GlobalMinusLocalParams global{};

  static MaskSpec make_csr(std::shared_ptr<const Csr<float>> mask) {
    GPA_CHECK(mask != nullptr && mask->rows == mask->cols,
              "session CSR mask must be a square matrix");
    MaskSpec s;
    s.kind = Kind::Csr;
    s.csr = std::move(mask);
    return s;
  }
  static MaskSpec make_local(LocalParams p) {
    GPA_CHECK(p.window >= 1, "local window must be >= 1");
    MaskSpec s;
    s.kind = Kind::Local;
    s.local = p;
    return s;
  }
  static MaskSpec make_dilated1d(Dilated1DParams p) {
    GPA_CHECK(p.window >= 1 && p.dilation >= 0, "bad dilated-1D parameters");
    MaskSpec s;
    s.kind = Kind::Dilated1d;
    s.dilated = p;
    return s;
  }
  static MaskSpec make_global(GlobalMinusLocalParams p) {
    GPA_CHECK(p.local.window >= 1, "global kernel's subtracted window must be >= 1");
    MaskSpec s;
    s.kind = Kind::Global;
    s.global = p;
    return s;
  }

  /// Hard session-length ceiling (-1 = unbounded).
  Index max_len() const noexcept { return kind == Kind::Csr ? csr->rows : Index{-1}; }

  /// Calls `edge(j, gate)` for every causal neighbor j <= i of row i,
  /// ascending, in the order the one-shot kernels' causal branches use.
  /// `gate` is the stored mask value for CSR, 1.0f for implicit kinds.
  template <typename Fn>
  void for_each_causal(Index i, Fn&& edge) const {
    switch (kind) {
      case Kind::Csr: {
        const Csr<float>& m = *csr;
        const Index e = m.row_end(i);
        for (Index kk = m.row_begin(i); kk < e; ++kk) {
          const Index j = m.col_idx[static_cast<std::size_t>(kk)];
          if (j > i) break;  // columns are sorted: done with this row
          edge(j, m.values[static_cast<std::size_t>(kk)]);
        }
        return;
      }
      case Kind::Local: {
        const Index lo = std::max<Index>(0, i - (local.window - 1));
        for (Index j = lo; j <= i; ++j) edge(j, 1.0f);
        return;
      }
      case Kind::Dilated1d: {
        const Index step = dilated.dilation + 1;
        const Index max_d = dilated.window - 1;
        for (Index d = (max_d / step) * step; d >= step; d -= step) {
          if (i - d >= 0) edge(i - d, 1.0f);
        }
        edge(i, 1.0f);
        return;
      }
      case Kind::Global: {
        // global_minus_local_neighbors with seq_len = i + 1: the causal
        // cut makes forward columns invisible, so the current length is
        // the only extent the row slice needs.
        const Index w = global.local.window;
        const Index win_lo = i - (w - 1);
        if (global.global.is_global(i)) {
          for (Index j = 0; j < win_lo && j <= i; ++j) edge(j, 1.0f);
        } else {
          for (const Index j : global.global.tokens) {
            if (j > i) break;  // tokens are sorted
            if (j < win_lo) edge(j, 1.0f);
          }
        }
        return;
      }
    }
  }
};

}  // namespace gpa::kvcache
