#pragma once
// The sparse pattern a session decodes under — a thin adapter over the
// shared MaskTraversal layer (core/traversal.hpp).
//
// Incremental decode needs exactly one thing from a mask: "row t's
// causal neighborhood, in kernel order". MaskSpec no longer defines any
// iteration itself: it holds one traversal per mask component and
// delegates every row slice to MaskTraversal::causal_row_slice — the
// very enumerator the one-shot kernels drive their row loops through —
// so a stream of decode_step folds visits the same edges in the same
// order as one full-sequence kernel call by construction, not by
// parallel reimplementation (test_kvcache pins the resulting bit
// identity on the float path; test_traversal pins the slices).
//
// A spec may be a COMPOSITION (e.g. Longformer = local ∘ global): the
// components' causal slices fold into one SoftmaxState row per decode
// step, in composition order, exactly as composed_attention folds them
// for the full sequence.
//
// Explicit masks (CSR/COO) and dilated-2D bound the session length;
// implicit patterns are unbounded — their causal row slices only look
// backward, so they are independent of any notional total length.

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/fnv1a.hpp"
#include "core/traversal.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"

namespace gpa {
struct ComposedMask;  // sparse/presets.hpp
}

namespace gpa::kvcache {

struct MaskSpec {
  /// Folded per row in order; edge sets must be pairwise disjoint (as
  /// the presets guarantee) for the union semantics to hold.
  std::vector<MaskTraversal> components;

  static MaskSpec make_csr(std::shared_ptr<const Csr<float>> mask) {
    return make_traversal(MaskTraversal::csr(std::move(mask)));
  }
  static MaskSpec make_local(LocalParams p) {
    return make_traversal(MaskTraversal::local(p));
  }
  static MaskSpec make_dilated1d(Dilated1DParams p) {
    return make_traversal(MaskTraversal::dilated1d(p));
  }
  static MaskSpec make_global(GlobalMinusLocalParams p) {
    return make_traversal(MaskTraversal::global(p));
  }

  /// Any single traversal family (incl. COO / dilated-2D, which had no
  /// session spelling before the traversal unification).
  static MaskSpec make_traversal(MaskTraversal t) {
    check_component(t);
    MaskSpec s;
    s.components.push_back(std::move(t));
    return s;
  }

  /// A chained-mask session: the components fold in order, so the
  /// decode stream equals the full composed kernel call bit for bit.
  static MaskSpec compose(std::vector<MaskTraversal> ts) {
    GPA_CHECK(!ts.empty(), "composed session mask needs at least one component");
    for (const MaskTraversal& t : ts) check_component(t);
    MaskSpec s;
    s.components = std::move(ts);
    return s;
  }

  /// From a preset ComposedMask (longformer / bigbird / ...), with the
  /// same component→kernel routing composed_attention uses; explicit
  /// components are copied so the session outlives the preset object.
  static MaskSpec compose(const ComposedMask& mask) {
    return compose(traversals_of(mask, /*owning=*/true));
  }

  /// Hard session-length ceiling (-1 = unbounded): the tightest bound
  /// over all components.
  Index max_len() const noexcept {
    Index bound = -1;
    for (const MaskTraversal& t : components) {
      const Index m = t.max_len();
      if (m >= 0 && (bound < 0 || m < bound)) bound = m;
    }
    return bound;
  }

  /// Structural fingerprint of the whole (ordered) composition — the
  /// session mask's identity for diagnostics and for any future
  /// batching/dedup key over composed masks (order-sensitive, since
  /// the folds are ordered). Not consulted by today's decode BatchKey,
  /// which deliberately coalesces across sessions regardless of mask.
  std::uint64_t fingerprint() const {
    Fnv1a f;
    f.mix(static_cast<std::uint64_t>(components.size()));
    for (const MaskTraversal& t : components) f.mix(t.fingerprint());
    return f.h;
  }

  /// Calls `edge(j, gate)` for every causal neighbor j <= i of row i,
  /// component by component in composition order — each component in
  /// the order the one-shot kernels' causal branches use (it IS their
  /// enumerator). `gate` is the stored mask value for explicit formats,
  /// 1.0f for implicit kinds.
  template <typename Fn>
  void for_each_causal(Index i, Fn&& edge) const {
    for (const MaskTraversal& t : components) t.causal_row_slice(i, edge);
  }

 private:
  /// Sessions outlive any caller-held mask object and bound their
  /// length by the mask's row count, so components must own their
  /// explicit storage and be square.
  static void check_component(const MaskTraversal& t) {
    GPA_CHECK(t.self_contained(),
              "session traversals must own their explicit storage "
              "(use MaskTraversal::csr/coo, not ::over views)");
    GPA_CHECK(t.square_storage(), "session mask must be a square (L_max × L_max) matrix");
  }
};

}  // namespace gpa::kvcache
