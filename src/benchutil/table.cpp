#include "benchutil/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace gpa::benchutil {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  GPA_CHECK(cells.size() == headers_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    std::cout << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c] + 2, '-');
  std::cout << rule << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

void Table::write_csv(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  GPA_CHECK(out.good(), "cannot open CSV path: " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string Table::fmt_seconds(double s) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(3) << s;
  return os.str();
}

std::string Table::fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace gpa::benchutil
