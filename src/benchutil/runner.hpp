#pragma once
// Warmup/iteration benchmark runner. The paper's protocol is "ten warm
// up runs and then ... 15 timed runs" with the average reported (§V);
// defaults follow it, and every bench binary accepts flags to shrink the
// protocol for CPU-scale runs.

#include <functional>
#include <string>

#include "benchutil/stats.hpp"

namespace gpa::benchutil {

struct RunConfig {
  int warmup = 10;
  int iterations = 15;
};

/// Times `fn` under the protocol; returns wall-clock statistics in
/// seconds per iteration.
Stats run_benchmark(const std::function<void()>& fn, const RunConfig& cfg = {});

/// Shared command-line handling for the bench binaries:
///   --paper-scale     use the paper's full dimensions
///   --smoke           tiny shapes + 1 warmup / 2 iters (CTest tier2 gate)
///   --csv <path>      also write rows to a CSV file
///   --json <path>     also write machine-readable records (benchutil/json.hpp)
///   --warmup N --iters N   override the measurement protocol
struct BenchArgs {
  bool paper_scale = false;
  bool smoke = false;
  std::string csv_path;
  std::string json_path;
  RunConfig run;
};
BenchArgs parse_bench_args(int argc, char** argv, int default_warmup = 2,
                           int default_iters = 5);

}  // namespace gpa::benchutil
