#include "benchutil/json.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace gpa::benchutil {

namespace {

/// Minimal JSON string escape (the strings here are kernel/backend
/// identifiers, but be correct anyway).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0') << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << v;
  return os.str();
}

}  // namespace

void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchRecord>& records,
                             const std::string& parallel_backend_name) {
  std::ofstream out(path);
  GPA_CHECK(out.good(), "cannot open JSON output file: " + path);
  out << "{\n"
      << "  \"schema\": \"gpa-bench-kernels/v2\",\n"
      << "  \"parallel_backend\": \"" << escape(parallel_backend_name) << "\",\n"
      << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"kernel\": \"" << escape(r.kernel) << "\", \"simd\": \"" << escape(r.simd)
        << "\", \"simd_requested\": \"" << escape(r.simd_requested)
        << "\", \"L\": " << r.seq_len << ", \"d\": " << r.head_dim
        << ", \"median_s\": " << fmt(r.median_s) << ", \"gbytes_per_s\": "
        << fmt(r.gbytes_per_s) << ", \"gflops_per_s\": " << fmt(r.gflops_per_s) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  GPA_CHECK(out.good(), "failed writing JSON output file: " + path);
}

void write_serving_bench_json(const std::string& path,
                              const std::vector<ServingBenchRecord>& records,
                              const std::string& parallel_backend_name,
                              const std::string& metrics_json) {
  std::ofstream out(path);
  GPA_CHECK(out.good(), "cannot open JSON output file: " + path);
  out << "{\n"
      << "  \"schema\": \"gpa-bench-serving/v4\",\n"
      << "  \"parallel_backend\": \"" << escape(parallel_backend_name) << "\",\n"
      << "  \"metrics\": " << (metrics_json.empty() ? "{}" : metrics_json) << ",\n"
      << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"mode\": \"" << escape(r.mode) << "\", \"L\": " << r.seq_len
        << ", \"d\": " << r.head_dim << ", \"sf\": " << fmt(r.sparsity)
        << ", \"workers\": " << r.workers << ", \"hw_threads\": " << r.hw_threads
        << ", \"clients\": " << r.clients
        << ", \"arrival_hz\": " << fmt(r.arrival_hz) << ", \"max_batch\": " << r.max_batch
        << ", \"max_wait_us\": " << r.max_wait_us << ", \"completed\": " << r.completed
        << ", \"rejected\": " << r.rejected << ", \"wall_s\": " << fmt(r.wall_s)
        << ", \"rps\": " << fmt(r.rps) << ", \"p50_ms\": " << fmt(r.p50_ms)
        << ", \"p95_ms\": " << fmt(r.p95_ms) << ", \"p99_ms\": " << fmt(r.p99_ms)
        << ", \"mean_batch_occupancy\": " << fmt(r.mean_batch_occupancy)
        << ", \"admission\": \"" << escape(r.admission) << "\""
        << ", \"max_sustainable_rps\": " << fmt(r.max_sustainable_rps)
        << ", \"trace\": \"" << escape(r.trace) << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  GPA_CHECK(out.good(), "failed writing JSON output file: " + path);
}

void write_schedule_bench_json(const std::string& path,
                               const std::vector<ScheduleBenchRecord>& records) {
  std::ofstream out(path);
  GPA_CHECK(out.good(), "cannot open JSON output file: " + path);
  out << "{\n"
      << "  \"schema\": \"gpa-bench-schedule/v2\",\n"
      << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"backend\": \"" << escape(r.backend) << "\", \"kernel\": \""
        << escape(r.kernel) << "\", \"schedule\": \"" << escape(r.schedule)
        << "\", \"grain\": " << r.grain << ", \"L\": " << r.seq_len
        << ", \"hw_threads\": " << r.hw_threads << ", \"mean_s\": " << fmt(r.mean_s)
        << ", \"stddev_s\": " << fmt(r.stddev_s) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  GPA_CHECK(out.good(), "failed writing JSON output file: " + path);
}

void write_decode_bench_json(const std::string& path,
                             const std::vector<DecodeBenchRecord>& records,
                             const std::string& host, const std::string& parallel_backend_name,
                             const std::string& simd_name,
                             const std::string& metrics_json,
                             const std::string& capacity_json) {
  std::ofstream out(path);
  GPA_CHECK(out.good(), "cannot open JSON output file: " + path);
  out << "{\n"
      << "  \"schema\": \"gpa-bench-decode/v3\",\n"
      << "  \"host\": \"" << escape(host) << "\",\n"
      << "  \"parallel_backend\": \"" << escape(parallel_backend_name) << "\",\n"
      << "  \"simd\": \"" << escape(simd_name) << "\",\n"
      << "  \"metrics\": " << (metrics_json.empty() ? "{}" : metrics_json) << ",\n"
      << "  \"capacity\": " << (capacity_json.empty() ? "{}" : capacity_json) << ",\n"
      << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"pattern\": \"" << escape(r.pattern) << "\", \"L\": " << r.seq_len
        << ", \"d\": " << r.head_dim << ", \"row_nnz\": " << r.row_nnz
        << ", \"causal_nnz\": " << r.causal_nnz
        << ", \"page_dtype\": \"" << escape(r.page_dtype) << "\""
        << ", \"cached_us_per_token\": " << fmt(r.cached_us_per_token)
        << ", \"recompute_us_per_token\": " << fmt(r.recompute_us_per_token)
        << ", \"speedup\": " << fmt(r.speedup) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  GPA_CHECK(out.good(), "failed writing JSON output file: " + path);
}

}  // namespace gpa::benchutil
