#pragma once
// Machine-readable benchmark output. Every record is one (kernel, SIMD
// level, shape) cell with its median runtime and derived throughput, so
// future PRs can diff perf trajectories (BENCH_kernels.json) instead of
// eyeballing console tables.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace gpa::benchutil {

struct KernelBenchRecord {
  std::string kernel;  ///< e.g. "csr_online_softmax"
  std::string simd;    ///< dispatch arm the cell ran under ("scalar"/"avx2")
  Index seq_len = 0;
  Index head_dim = 0;
  double median_s = 0.0;
  double gbytes_per_s = 0.0;   ///< estimated traffic / median
  double gflops_per_s = 0.0;   ///< estimated flop count / median
};

/// Writes `{schema, parallel_backend, records: [...]}` to `path`.
/// Throws InvalidArgument when the file cannot be opened.
void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchRecord>& records,
                             const std::string& parallel_backend_name);

}  // namespace gpa::benchutil
