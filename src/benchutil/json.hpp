#pragma once
// Machine-readable benchmark output. Every record is one (kernel, SIMD
// level, shape) cell with its median runtime and derived throughput, so
// future PRs can diff perf trajectories (BENCH_kernels.json) instead of
// eyeballing console tables.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace gpa::benchutil {

struct KernelBenchRecord {
  std::string kernel;  ///< e.g. "csr_online_softmax"
  /// Dispatch arm the cell ACTUALLY ran under, after the silent clamp
  /// ("scalar"/"avx2"/"avx2-fma"/"avx512").
  std::string simd;
  /// Arm the sweep REQUESTED for this cell. On a host lacking the ISA,
  /// simd != simd_requested and the cell is a visible clamped record
  /// rather than an absent one — trajectory diffs can tell "slower"
  /// from "didn't run" without knowing the recording machine.
  std::string simd_requested;
  Index seq_len = 0;
  Index head_dim = 0;
  double median_s = 0.0;
  double gbytes_per_s = 0.0;   ///< estimated traffic / median
  double gflops_per_s = 0.0;   ///< estimated flop count / median
};

/// Writes `{schema: "gpa-bench-kernels/v2", parallel_backend, records}`
/// (v2 added per-record simd_requested next to the resolved simd).
/// Throws InvalidArgument when the file cannot be opened.
void write_kernel_bench_json(const std::string& path,
                             const std::vector<KernelBenchRecord>& records,
                             const std::string& parallel_backend_name);

/// One cell of the serving throughput-vs-latency surface: a load
/// pattern (mode, clients or arrival rate) against one batching policy
/// (max_batch, max_wait) at a fixed worker count and workload shape.
struct ServingBenchRecord {
  std::string mode;  ///< "closed-loop" / "open-loop"
  Index seq_len = 0;
  Index head_dim = 0;
  double sparsity = 0.0;   ///< mask Sf (fig3 axis)
  int workers = 0;
  int clients = 0;         ///< closed-loop concurrency (0 for open-loop)
  double arrival_hz = 0.0; ///< open-loop offered load (0 for closed-loop)
  Index max_batch = 1;
  std::int64_t max_wait_us = 0;
  /// Hardware threads of the recording host. Committed trajectory files
  /// must self-identify their machine class: a 1-core CI recording of a
  /// batching sweep is a latency trace, not a scaling claim, and the
  /// reader should be able to tell without archaeology.
  int hw_threads = 0;
  Size completed = 0;
  Size rejected = 0;
  double wall_s = 0.0;
  double rps = 0.0;            ///< completed / wall
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch_occupancy = 0.0;
  /// Admission policy of the cell: "" for plain CSR-attention cells,
  /// "exact" / "bucketed" for the pattern-request comparison (bucketed
  /// admission coalesces near-length requests; exact keys by length).
  std::string admission;
  /// The measured saturation knee of an open-loop arrival-rate sweep:
  /// the highest offered rate whose completed/offered ratio stayed
  /// above the sweep's threshold. 0 on non-sweep cells; sweep ladder
  /// cells all carry the knee their ladder resolved to.
  double max_sustainable_rps = 0.0;
  /// Tracing state of the cell: "" for ordinary cells, "off"/"on" for
  /// the trace-overhead guard pair (identical workloads differing only
  /// in whether the span ring was recording).
  std::string trace;
};

/// Writes `{schema: "gpa-bench-serving/v4", parallel_backend, metrics,
/// records}` (v2 added per-record hw_threads; v3 added admission and
/// max_sustainable_rps for the open-loop saturation sweep; v4 added the
/// per-record trace tag and the end-of-run `metrics` object).
/// `metrics_json` is a pre-rendered JSON object — pass
/// obs::MetricsSnapshot::to_json(), or "" to embed `{}` — so benchutil
/// stays decoupled from the obs layer.
void write_serving_bench_json(const std::string& path,
                              const std::vector<ServingBenchRecord>& records,
                              const std::string& parallel_backend_name,
                              const std::string& metrics_json = std::string());

/// One cell of the static-vs-dynamic schedule ablation. `backend` is
/// per record (not file-level) so runs from an OpenMP build and a
/// std::thread build can be merged into one committed trajectory file.
struct ScheduleBenchRecord {
  std::string backend;   ///< "openmp" / "threads"
  std::string kernel;    ///< e.g. "global_attention"
  std::string schedule;  ///< "static" / "dynamic"
  Index grain = 0;
  Index seq_len = 0;
  /// Hardware threads of the recording host (see ServingBenchRecord:
  /// schedule ablations on a 1-core box measure dispatch overhead, not
  /// load balancing, and the record must say so).
  int hw_threads = 0;
  double mean_s = 0.0;
  double stddev_s = 0.0;
};

/// Writes `{schema: "gpa-bench-schedule/v2", records}` (v2 renamed the
/// per-record "threads" key to "hw_threads").
void write_schedule_bench_json(const std::string& path,
                               const std::vector<ScheduleBenchRecord>& records);

/// One cell of the incremental-decode benchmark: per-token cost of a
/// cached SessionManager::decode_step vs a full causal recompute, at
/// one (mask pattern, seq_len, head_dim). The ratio is the KV-cache
/// claim the acceptance gate reads.
struct DecodeBenchRecord {
  std::string pattern;  ///< "csr" / "local" / "dilated1d" / "global" / "composed"
  Index seq_len = 0;
  Index head_dim = 0;
  Index row_nnz = 0;   ///< edges the measured decode row folds
  Size causal_nnz = 0; ///< edges one full causal recompute visits
  /// Storage precision of the session's KV pages ("f32" / "f16"): the
  /// fp16 cells measure the half-width decode fold against the same
  /// uncached recompute arm.
  std::string page_dtype = "f32";
  double cached_us_per_token = 0.0;
  double recompute_us_per_token = 0.0;
  double speedup = 0.0;  ///< recompute / cached
};

/// Writes `{schema: "gpa-bench-decode/v3", host, parallel_backend,
/// simd, metrics, capacity, records}` — the host string matters here
/// because the claim is a single-core per-token latency ratio. v2 added
/// the end-of-run `metrics` object (same pre-rendered-JSON convention
/// as write_serving_bench_json); v3 added per-record page_dtype and the
/// `capacity` object (sessions-per-device at fp32 vs fp16 page storage,
/// from the memory model — pass a pre-rendered JSON object or "" for
/// `{}`).
void write_decode_bench_json(const std::string& path,
                             const std::vector<DecodeBenchRecord>& records,
                             const std::string& host, const std::string& parallel_backend_name,
                             const std::string& simd_name,
                             const std::string& metrics_json = std::string(),
                             const std::string& capacity_json = std::string());

}  // namespace gpa::benchutil
