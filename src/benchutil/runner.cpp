#include "benchutil/runner.hpp"

#include <chrono>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace gpa::benchutil {

Stats run_benchmark(const std::function<void()>& fn, const RunConfig& cfg) {
  for (int i = 0; i < cfg.warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(cfg.iterations));
  for (int i = 0; i < cfg.iterations; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  return compute_stats(std::move(samples));
}

BenchArgs parse_bench_args(int argc, char** argv, int default_warmup, int default_iters) {
  BenchArgs args;
  args.run.warmup = default_warmup;
  args.run.iterations = default_iters;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      GPA_CHECK(i + 1 < argc, std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "--paper-scale") {
      args.paper_scale = true;
      // The paper's measurement protocol comes with its scale.
      args.run.warmup = 10;
      args.run.iterations = 15;
    } else if (a == "--smoke") {
      args.smoke = true;
      args.run.warmup = 1;
      args.run.iterations = 2;
    } else if (a == "--csv") {
      args.csv_path = next_value("--csv");
    } else if (a == "--json") {
      args.json_path = next_value("--json");
    } else if (a == "--warmup") {
      args.run.warmup = std::stoi(next_value("--warmup"));
    } else if (a == "--iters") {
      args.run.iterations = std::stoi(next_value("--iters"));
    }
    // Unknown flags are left for the binary's own parser.
  }
  return args;
}

}  // namespace gpa::benchutil
