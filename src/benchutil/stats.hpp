#pragma once
// Benchmark timing statistics.

#include <vector>

namespace gpa::benchutil {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t samples = 0;
};

Stats compute_stats(std::vector<double> samples);

/// The pct-th percentile (0..100) by linear interpolation between order
/// statistics (the "inclusive" definition: percentile(_, 0) = min,
/// percentile(_, 100) = max). Returns 0 for an empty sample set.
/// Serving latency reports (p50/p95/p99) are built on this.
double percentile(std::vector<double> samples, double pct);

/// Tail summary of a latency distribution, all from one sort.
struct TailStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  std::size_t samples = 0;
};
TailStats compute_tail_stats(std::vector<double> samples);

}  // namespace gpa::benchutil
