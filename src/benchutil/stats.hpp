#pragma once
// Benchmark timing statistics.

#include <vector>

namespace gpa::benchutil {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t samples = 0;
};

Stats compute_stats(std::vector<double> samples);

}  // namespace gpa::benchutil
