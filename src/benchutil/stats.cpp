#include "benchutil/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gpa::benchutil {

Stats compute_stats(std::vector<double> samples) {
  Stats s;
  s.samples = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  s.median = samples.size() % 2 == 1 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  double sum = 0.0;
  for (const double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1 ? std::sqrt(var / static_cast<double>(samples.size() - 1)) : 0.0;
  return s;
}

}  // namespace gpa::benchutil
