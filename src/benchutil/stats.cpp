#include "benchutil/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gpa::benchutil {

Stats compute_stats(std::vector<double> samples) {
  Stats s;
  s.samples = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  s.median = samples.size() % 2 == 1 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  double sum = 0.0;
  for (const double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1 ? std::sqrt(var / static_cast<double>(samples.size() - 1)) : 0.0;
  return s;
}

namespace {

/// pct-th percentile of an already-sorted sample vector.
double percentile_sorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double clamped = pct < 0.0 ? 0.0 : (pct > 100.0 ? 100.0 : pct);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> samples, double pct) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, pct);
}

TailStats compute_tail_stats(std::vector<double> samples) {
  TailStats t;
  t.samples = samples.size();
  if (samples.empty()) return t;
  std::sort(samples.begin(), samples.end());
  t.p50 = percentile_sorted(samples, 50.0);
  t.p95 = percentile_sorted(samples, 95.0);
  t.p99 = percentile_sorted(samples, 99.0);
  t.max = samples.back();
  return t;
}

}  // namespace gpa::benchutil
