#pragma once
// Aligned console tables + CSV output for the bench binaries.

#include <fstream>
#include <string>
#include <vector>

namespace gpa::benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render to stdout with aligned columns.
  void print() const;

  /// Append as CSV to `path` (with header); no-op when path is empty.
  void write_csv(const std::string& path) const;

  static std::string fmt_seconds(double s);
  static std::string fmt_double(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpa::benchutil
