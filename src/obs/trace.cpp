#include "obs/trace.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace gpa::obs::trace {

namespace {

// One ring slot. Every field is a relaxed atomic — concurrent writer vs
// drain never races in the C++ sense — and `seq` carries the publish
// protocol: a writer claims ticket t, stores the fields, then
// release-stores seq = t + 1. A reader expecting ticket t
// acquire-loads seq before AND after reading the fields and accepts the
// event only if both loads saw t + 1 (a wrapping writer re-claiming the
// slot bumps seq past it, so torn cross-generation reads are rejected,
// seqlock-style).
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<char> ph{'X'};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint64_t> id{0};
  std::atomic<std::int64_t> ts_us{0};
  std::atomic<std::int64_t> dur_us{0};
  std::atomic<std::uint64_t> seq{0};  ///< ticket + 1 once published
};

constexpr std::size_t kDefaultCapacity = 1u << 16;

struct Ring {
  std::vector<Slot> slots{kDefaultCapacity};
  std::atomic<std::uint64_t> head{0};  ///< tickets issued
  std::mutex structural_mu;            ///< configure/reset only
};

std::atomic<bool> g_enabled{false};

Ring& ring() {
  // Leaked for the same reason as Registry::global(): spans on detached
  // threads may fire during static teardown.
  static Ring* r = new Ring();
  return *r;
}

void store_event(Slot& s, std::uint64_t ticket, const char* name, const char* cat,
                 char ph, std::uint64_t id, std::int64_t ts, std::int64_t dur) noexcept {
  s.name.store(name, std::memory_order_relaxed);
  s.cat.store(cat, std::memory_order_relaxed);
  s.ph.store(ph, std::memory_order_relaxed);
  s.tid.store(this_thread_id(), std::memory_order_relaxed);
  s.id.store(id, std::memory_order_relaxed);
  s.ts_us.store(ts, std::memory_order_relaxed);
  s.dur_us.store(dur, std::memory_order_relaxed);
  s.seq.store(ticket + 1, std::memory_order_release);
}

void emit(const char* name, const char* cat, char ph, std::uint64_t id,
          std::int64_t ts, std::int64_t dur) noexcept {
  Ring& r = ring();
  const std::uint64_t ticket = r.head.fetch_add(1, std::memory_order_relaxed);
  store_event(r.slots[ticket % r.slots.size()], ticket, name, cat, ph, id, ts, dur);
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::int64_t now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch)
      .count();
}

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void configure_capacity(std::size_t events) {
  GPA_CHECK(events > 0, "trace ring capacity must be positive");
  GPA_CHECK(!enabled(), "trace ring can only be resized while tracing is disabled");
  Ring& r = ring();
  std::lock_guard<std::mutex> lk(r.structural_mu);
  r.slots = std::vector<Slot>(events);
  r.head.store(0, std::memory_order_relaxed);
}

std::size_t capacity() noexcept { return ring().slots.size(); }

void emit_complete(const char* name, const char* cat, std::int64_t ts_us,
                   std::int64_t dur_us) noexcept {
  if (!enabled()) return;
  emit(name, cat, 'X', 0, ts_us, dur_us);
}

void emit_async(const char* name, const char* cat, char ph, std::uint64_t id) noexcept {
  if (!enabled()) return;
  emit(name, cat, ph, id, now_us(), 0);
}

void emit_instant(const char* name, const char* cat) noexcept {
  if (!enabled()) return;
  emit(name, cat, 'i', 0, now_us(), 0);
}

std::vector<Event> drain_snapshot() {
  Ring& r = ring();
  const std::uint64_t h = r.head.load(std::memory_order_acquire);
  const std::uint64_t cap = r.slots.size();
  const std::uint64_t start = h > cap ? h - cap : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(h - start));
  for (std::uint64_t t = start; t < h; ++t) {
    Slot& s = r.slots[t % cap];
    if (s.seq.load(std::memory_order_acquire) != t + 1) continue;
    Event e;
    e.name = s.name.load(std::memory_order_relaxed);
    e.cat = s.cat.load(std::memory_order_relaxed);
    e.ph = s.ph.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    e.id = s.id.load(std::memory_order_relaxed);
    e.ts_us = s.ts_us.load(std::memory_order_relaxed);
    e.dur_us = s.dur_us.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != t + 1) continue;  // overwritten mid-read
    out.push_back(e);
  }
  return out;
}

std::uint64_t dropped() noexcept {
  Ring& r = ring();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  const std::uint64_t cap = r.slots.size();
  return h > cap ? h - cap : 0;
}

std::uint64_t emitted() noexcept { return ring().head.load(std::memory_order_relaxed); }

void reset() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lk(r.structural_mu);
  for (Slot& s : r.slots) s.seq.store(0, std::memory_order_relaxed);
  r.head.store(0, std::memory_order_release);
}

std::string chrome_json() {
  const std::vector<Event> events = drain_snapshot();
  const int pid = static_cast<int>(::getpid());
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (e.name == nullptr) continue;
    os << (first ? "" : ",") << "{\"name\":\"" << e.name << "\",\"cat\":\""
       << (e.cat ? e.cat : "gpa") << "\",\"ph\":\"" << e.ph << "\",\"pid\":" << pid
       << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts_us;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur_us;
    if (e.ph == 'b' || e.ph == 'e') os << ",\"id\":\"0x" << std::hex << e.id << std::dec << "\"";
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

bool write_chrome_json(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << chrome_json();
  return static_cast<bool>(f);
}

}  // namespace gpa::obs::trace
