#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace gpa::obs {

std::size_t shard_of_this_thread() noexcept {
  // Dense per-thread ids beat hashing std::thread::id: consecutive
  // worker threads land on consecutive shards instead of colliding.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % Counter::kShards;
}

void Counter::inc(std::uint64_t n) noexcept {
  shards_[shard_of_this_thread()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  GPA_CHECK(!edges_.empty(), "histogram needs at least one bucket edge");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    GPA_CHECK(edges_[i - 1] < edges_[i], "histogram edges must ascend strictly");
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto b = static_cast<std::size_t>(it - edges_.begin());  // == size() → overflow
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> edges) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    GPA_CHECK(it->second->edges() == edges,
              "histogram re-registered with different edges: " + std::string(name));
    return *it->second;
  }
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(edges)))
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.push_back({name, c->value()});
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->edges(), h->counts(), h->sum(), h->count()});
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  // Leaked on purpose: instrument sites cache references that may be
  // touched by detached threads during process teardown.
  static Registry* g = new Registry();
  return *g;
}

// ---------------------------------------------------------------------
// Snapshot lookups + exposition

namespace {

template <typename Vec>
auto find_sample(const Vec& v, std::string_view name) -> decltype(v.data()) {
  for (const auto& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  const auto* s = find_sample(counters, name);
  return s ? s->value : 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const noexcept {
  const auto* s = find_sample(gauges, name);
  return s ? s->value : 0;
}

const HistogramSample* MetricsSnapshot::histogram(std::string_view name) const noexcept {
  return find_sample(histograms, name);
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& c : counters) os << c.name << " " << c.value << "\n";
  for (const auto& g : gauges) os << g.name << " " << g.value << "\n";
  for (const auto& h : histograms) {
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << h.name << "_bucket{le=\""
         << (b < h.edges.size() ? fmt_double(h.edges[b]) : std::string("+Inf")) << "\"} "
         << h.counts[b] << "\n";
    }
    os << h.name << "_sum " << fmt_double(h.sum) << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  // Metric names are our own dotted identifiers (no quotes/backslashes
  // by construction), so plain quoting is faithful.
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << "\"" << counters[i].name << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\"" << gauges[i].name << "\":" << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? "," : "") << "\"" << h.name << "\":{\"edges\":[";
    for (std::size_t b = 0; b < h.edges.size(); ++b) {
      os << (b ? "," : "") << fmt_double(h.edges[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) os << (b ? "," : "") << h.counts[b];
    os << "],\"sum\":" << fmt_double(h.sum) << ",\"count\":" << h.count << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace gpa::obs
