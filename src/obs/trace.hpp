#pragma once
// Request-span tracing: RAII scoped spans written to a bounded
// lock-free ring buffer, exported as Chrome `trace_event` JSON (load
// the dump at chrome://tracing or https://ui.perfetto.dev).
//
// Cost model. Tracing is DISABLED by default: a Span constructor then
// performs one relaxed atomic load and a branch — no clock read, no
// ring write, no allocation (the traced-vs-untraced cell in
// bench_serving_throughput pins this at <2% sustained rps). Enabled,
// an event is one fetch_add to claim a slot plus relaxed stores of the
// fields. Defining GPA_TRACE_DISABLED at compile time removes even the
// branch (Span becomes an empty struct).
//
// Ring semantics. Fixed capacity, overwrite-oldest: the claim cursor is
// a monotone fetch_add and a slot's publish sequence is stored with
// release order after its fields, so a concurrent drain() never reads
// an unpublished slot and never tears (fields are relaxed atomics —
// TSan-clean by construction). Under wraparound the ring keeps the most
// recent `capacity` events and dropped() reports how many were
// overwritten — a trace dump states its own truncation.
//
// Event vocabulary (Chrome trace_event phases):
//   'X' complete  — a scoped Span (ts + dur), the workhorse
//   'b'/'e' async — cross-thread request lifetimes, paired by id
//   'i' instant   — a point event
// Names and categories must be string literals (or otherwise outlive
// the ring): the ring stores the pointers, not copies.

#include <cstdint>
#include <string>
#include <vector>

namespace gpa::obs::trace {

struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  char ph = 'X';            ///< 'X' complete, 'b'/'e' async, 'i' instant
  std::uint32_t tid = 0;    ///< dense per-thread id
  std::uint64_t id = 0;     ///< async pair key ('b'/'e' only)
  std::int64_t ts_us = 0;   ///< µs since the process trace epoch
  std::int64_t dur_us = 0;  ///< 'X' only
};

/// Runtime switch. Off by default; flipping it on/off is safe at any
/// time (in-flight spans on other threads see the old value for at most
/// one event).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// µs since the process trace epoch (the first call wins the epoch).
/// Exposed so instrument sites can timestamp externally-measured
/// intervals (e.g. a request's queue wait) on the same axis as spans.
std::int64_t now_us() noexcept;

/// Dense id of the calling thread, as stamped into events.
std::uint32_t this_thread_id() noexcept;

/// Resize the ring (default 65536 events). Only legal while tracing is
/// disabled; discards buffered events. Throws InvalidArgument on 0.
void configure_capacity(std::size_t events);
std::size_t capacity() noexcept;

/// Emit one event (no-ops when disabled). `name`/`cat` must outlive the
/// ring — pass literals.
void emit_complete(const char* name, const char* cat, std::int64_t ts_us,
                   std::int64_t dur_us) noexcept;
void emit_async(const char* name, const char* cat, char ph, std::uint64_t id) noexcept;
void emit_instant(const char* name, const char* cat) noexcept;

/// The buffered events, oldest first (by claim order). Safe to call
/// concurrently with writers: a slot mid-write is simply skipped.
std::vector<Event> drain_snapshot();
/// Events overwritten by wraparound since the last reset.
std::uint64_t dropped() noexcept;
/// Total events ever claimed since the last reset.
std::uint64_t emitted() noexcept;
/// Clears the ring and the counters (tests / between bench cells).
void reset();

/// Chrome trace_event JSON of the current ring contents.
std::string chrome_json();
/// Writes chrome_json() to `path`; false on I/O failure.
bool write_chrome_json(const std::string& path);

/// RAII complete-event span. Captures t0 at construction when tracing
/// is enabled; emits one 'X' event at destruction (enable/disable flips
/// mid-span drop that span, never corrupt the ring).
class Span {
 public:
#ifdef GPA_TRACE_DISABLED
  explicit Span(const char*, const char* = "gpa") noexcept {}
#else
  explicit Span(const char* name, const char* cat = "gpa") noexcept
      : name_(enabled() ? name : nullptr), cat_(cat) {
    if (name_ != nullptr) t0_ = now_us();
  }
  ~Span() {
    if (name_ != nullptr) emit_complete(name_, cat_, t0_, now_us() - t0_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t t0_ = 0;
#endif
};

}  // namespace gpa::obs::trace
