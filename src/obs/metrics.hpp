#pragma once
// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with lock-cheap recording, a typed snapshot, and text + JSON
// exposition. This is the process-wide substrate every subsystem
// (serve / kvcache / net / parallel) records into; the live scrape path
// (net's Op::Stats) and the bench JSON embeds read it back out.
//
// Naming convention: `subsystem.noun[.verb]`, lowercase, dot-separated
//   serve.requests.submitted      kvcache.prefix.hits
//   net.bytes.sent                sched.auto.picks.dynamic
// Names are registered once and live for the registry's lifetime, so
// instrument sites cache the returned reference (one magic-static) and
// the hot path is a single sharded atomic add — no lock, no lookup.
//
// Recording contract:
//   * Counter::inc is wait-free: one relaxed fetch_add on a
//     cache-line-padded shard picked by thread id (writers on different
//     threads do not bounce one cache line).
//   * Gauge is a single atomic (set/add are rare, not hot-path).
//   * Histogram::observe is two relaxed adds (bucket + count) plus a
//     CAS loop for the running sum.
//   * snapshot() walks the registry under its registration mutex.
//     Individual values are atomically read but the snapshot is NOT a
//     cross-metric atomic cut — counters are monotone, so a scraper
//     sees each counter at some point within the scrape window.
//     Invariant-coupled pairs that must never tear (e.g. ServerStats'
//     completed vs latency sums) stay behind their owner's single lock
//     and mirror into the registry for scraping (see server_stats.hpp).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace gpa::obs {

/// Monotone event count. Sharded so concurrent writers on different
/// threads land on different cache lines; value() folds the shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void inc(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;  ///< tests only — not linearizable vs writers

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins instantaneous value (pool occupancy, live sessions).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bucket b counts observations <= edges[b],
/// the last (implicit +inf) bucket counts the overflow. Edges are fixed
/// at registration — scrapers can difference two snapshots bucket by
/// bucket because the layout never changes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double v) noexcept;

  const std::vector<double>& edges() const noexcept { return edges_; }
  /// counts[i] for i < edges.size() counts v <= edges[i] (first match);
  /// counts.back() is the +inf overflow bucket.
  std::vector<std::uint64_t> counts() const;
  double sum() const noexcept;
  std::uint64_t count() const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> edges_;  ///< strictly ascending
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------
// Snapshot: the typed, point-in-time view the exposition formats and
// the wire codec serialize.

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;  ///< edges.size() + 1 (overflow last)
  double sum = 0.0;
  std::uint64_t count = 0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;  ///< name-ascending
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Convenience lookups (0 / nullptr when absent — a scraper probing a
  /// counter the peer never touched reads 0, same as an untouched one).
  std::uint64_t counter(std::string_view name) const noexcept;
  std::int64_t gauge(std::string_view name) const noexcept;
  const HistogramSample* histogram(std::string_view name) const noexcept;

  /// Plain-text exposition, one `name value` line per counter/gauge,
  /// `name_bucket{le="edge"} n` per histogram bucket (Prometheus-style).
  std::string to_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  std::string to_json() const;
};

// ---------------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-register. The returned reference is stable for the
  /// registry's lifetime (metrics are never erased), so callers cache
  /// it. Registering an existing histogram name with different edges
  /// throws InvalidArgument — the layout is part of the name's contract.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> edges);

  MetricsSnapshot snapshot() const;

  /// Zeroes every value, keeping registrations (and cached references)
  /// valid. Test isolation only: concurrent writers may re-bump a shard
  /// mid-reset, so quiesce first for exact zeros.
  void reset();

  /// The process-wide registry every instrument site records into.
  static Registry& global();

 private:
  mutable std::mutex mu_;  ///< guards the maps, never the hot path
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shard index of the calling thread (stable per thread, dense-ish).
std::size_t shard_of_this_thread() noexcept;

}  // namespace gpa::obs
