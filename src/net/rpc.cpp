#include "net/rpc.hpp"

#include <chrono>

#include "common/error.hpp"
#include "kvcache/errors.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpa::net {

namespace {

struct RpcMetrics {
  obs::Counter& calls;
  obs::Counter& errors;              ///< typed non-Ok statuses from the peer
  obs::Counter& transport_failures;  ///< connection died / desynchronised
  obs::Histogram& latency_us;

  static RpcMetrics& get() {
    static RpcMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      return RpcMetrics{
          reg.counter("net.rpc.calls"), reg.counter("net.rpc.errors"),
          reg.counter("net.rpc.transport_failures"),
          reg.histogram("net.rpc.latency_us",
                        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
                         100000, 250000, 1000000})};
    }();
    return m;
  }
};

}  // namespace

const char* to_string(RpcStatus s) {
  switch (s) {
    case RpcStatus::Ok: return "ok";
    case RpcStatus::SessionNotFound: return "session not found";
    case RpcStatus::SessionEvicted: return "session evicted";
    case RpcStatus::CacheFull: return "cache full";
    case RpcStatus::InvalidArgument: return "invalid argument";
    case RpcStatus::Malformed: return "malformed request body";
    case RpcStatus::Internal: return "internal error";
  }
  return "unknown";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::Ping: return "ping";
    case Op::CreateSession: return "create-session";
    case Op::Prefill: return "prefill";
    case Op::DecodeStep: return "decode-step";
    case Op::ReleaseSession: return "release-session";
    case Op::RingStart: return "ring-start";
    case Op::RingFetch: return "ring-fetch";
    case Op::RingShard: return "ring-shard";
    case Op::RingFinish: return "ring-finish";
    case Op::Shutdown: return "shutdown";
    case Op::Stats: return "stats";
  }
  return "unknown";
}

WireStatus send_request(Transport& t, const RpcRequest& req) {
  Frame f;
  f.type = kFrameRequest;
  Writer w;
  w.u64(req.id);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.bytes(req.body.data(), req.body.size());
  f.payload = std::move(w.buf);
  return write_frame(t, f);
}

WireStatus recv_request(Transport& t, RpcRequest& req) {
  Frame f;
  const WireStatus ws = read_frame(t, f);
  if (ws != WireStatus::Ok) return ws;
  if (f.type != kFrameRequest) return WireStatus::Malformed;
  Reader r(f.payload);
  req.id = r.u64();
  req.op = static_cast<Op>(r.u8());
  if (!r.ok) return WireStatus::Malformed;
  req.body.assign(r.p, r.end);
  return WireStatus::Ok;
}

WireStatus send_response(Transport& t, const RpcResponse& rsp) {
  Frame f;
  f.type = kFrameResponse;
  Writer w;
  w.u64(rsp.id);
  w.u8(static_cast<std::uint8_t>(rsp.status));
  w.bytes(rsp.body.data(), rsp.body.size());
  f.payload = std::move(w.buf);
  return write_frame(t, f);
}

WireStatus recv_response(Transport& t, RpcResponse& rsp) {
  Frame f;
  const WireStatus ws = read_frame(t, f);
  if (ws != WireStatus::Ok) return ws;
  if (f.type != kFrameResponse) return WireStatus::Malformed;
  Reader r(f.payload);
  rsp.id = r.u64();
  rsp.status = static_cast<RpcStatus>(r.u8());
  if (!r.ok) return WireStatus::Malformed;
  rsp.body.assign(r.p, r.end);
  return WireStatus::Ok;
}

void make_error_response(RpcResponse& rsp, RpcStatus status, const std::string& detail,
                         std::uint64_t session_id) {
  rsp.status = status;
  Writer w;
  put_string(w, detail);
  w.u64(session_id);
  rsp.body = std::move(w.buf);
}

std::vector<std::uint8_t> RpcClient::call(Op op, std::vector<std::uint8_t> body) {
  // Span name = the op's static string, so a trace shows which RPCs a
  // client spent its wall-clock in; the latency histogram is the
  // aggregate view of the same interval.
  obs::trace::Span span(to_string(op), "net.rpc");
  RpcMetrics& rm = RpcMetrics::get();
  rm.calls.inc();
  const auto t0 = std::chrono::steady_clock::now();

  RpcRequest req;
  req.id = next_id_++;
  req.op = op;
  req.body = std::move(body);
  if (send_request(t_, req) != WireStatus::Ok) {
    rm.transport_failures.inc();
    throw TransportError("rpc: send failed (" + std::string(to_string(op)) + ")");
  }
  RpcResponse rsp;
  const WireStatus ws = recv_response(t_, rsp);
  if (ws != WireStatus::Ok) {
    rm.transport_failures.inc();
    throw TransportError("rpc: receive failed (" + std::string(to_string(ws)) + ")");
  }
  if (rsp.id != req.id) {
    rm.transport_failures.inc();
    throw TransportError("rpc: response id mismatch — connection desynchronised");
  }
  rm.latency_us.observe(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
          .count());
  if (rsp.status == RpcStatus::Ok) return std::move(rsp.body);
  rm.errors.inc();

  // Rebuild the typed exception the local API would have thrown.
  Reader r(rsp.body);
  std::string detail;
  get_string(r, detail);
  const std::uint64_t sid = r.u64();
  switch (rsp.status) {
    case RpcStatus::SessionNotFound: throw kvcache::SessionNotFound(sid);
    case RpcStatus::SessionEvicted: throw kvcache::SessionEvicted(sid);
    case RpcStatus::CacheFull: throw kvcache::CacheFull();
    case RpcStatus::InvalidArgument:
      throw InvalidArgument(detail.empty() ? std::string(to_string(rsp.status)) : detail);
    default: throw RpcError(rsp.status, detail.empty() ? to_string(rsp.status) : detail);
  }
}

}  // namespace gpa::net
