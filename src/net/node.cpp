#include "net/node.hpp"

#include <cstring>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"
#include "obs/trace.hpp"
#include "tensor/softmax.hpp"

namespace gpa::net {

// ---------------------------------------------------------------------
// Metrics snapshot codec

namespace {
/// A registry holds tens of metrics; a peer claiming orders of
/// magnitude more is corrupt, not just big.
constexpr std::uint32_t kMaxMetrics = 4096;
constexpr std::uint32_t kMaxHistEdges = 512;
}  // namespace

void put_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& s) {
  w.u32(static_cast<std::uint32_t>(s.counters.size()));
  for (const auto& c : s.counters) {
    put_string(w, c.name);
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(s.gauges.size()));
  for (const auto& g : s.gauges) {
    put_string(w, g.name);
    w.i64(g.value);
  }
  w.u32(static_cast<std::uint32_t>(s.histograms.size()));
  for (const auto& h : s.histograms) {
    put_string(w, h.name);
    w.u32(static_cast<std::uint32_t>(h.edges.size()));
    for (const double e : h.edges) w.f64(e);
    for (const std::uint64_t c : h.counts) w.u64(c);  // edges + 1 of them
    w.f64(h.sum);
    w.u64(h.count);
  }
}

bool get_metrics_snapshot(Reader& r, obs::MetricsSnapshot& s) {
  s = obs::MetricsSnapshot{};
  const std::uint32_t nc = r.u32();
  if (!r.ok || nc > kMaxMetrics) return false;
  s.counters.resize(nc);
  for (auto& c : s.counters) {
    if (!get_string(r, c.name)) return false;
    c.value = r.u64();
  }
  const std::uint32_t ng = r.u32();
  if (!r.ok || ng > kMaxMetrics) return false;
  s.gauges.resize(ng);
  for (auto& g : s.gauges) {
    if (!get_string(r, g.name)) return false;
    g.value = r.i64();
  }
  const std::uint32_t nh = r.u32();
  if (!r.ok || nh > kMaxMetrics) return false;
  s.histograms.resize(nh);
  for (auto& h : s.histograms) {
    if (!get_string(r, h.name)) return false;
    const std::uint32_t ne = r.u32();
    if (!r.ok || ne == 0 || ne > kMaxHistEdges ||
        r.remaining() < (static_cast<std::uint64_t>(ne) * 2 + 1) * 8) {
      r.ok = false;
      return false;
    }
    h.edges.resize(ne);
    for (double& e : h.edges) e = r.f64();
    h.counts.resize(ne + 1);
    for (std::uint64_t& c : h.counts) c = r.u64();
    h.sum = r.f64();
    h.count = r.u64();
  }
  return r.ok;
}

// ---------------------------------------------------------------------
// Wire mask

kvcache::MaskSpec WireMask::to_spec() const {
  switch (kind) {
    case WireMaskKind::Local:
      return kvcache::MaskSpec::make_local(LocalParams{a});
    case WireMaskKind::Dilated1d:
      return kvcache::MaskSpec::make_dilated1d(Dilated1DParams{a, b});
    case WireMaskKind::Global:
      return kvcache::MaskSpec::make_global(
          GlobalMinusLocalParams{GlobalParams{tokens}, LocalParams{a}});
    case WireMaskKind::Csr:
      GPA_CHECK(csr != nullptr, "wire mask: missing CSR payload");
      return kvcache::MaskSpec::make_csr(csr);
  }
  GPA_CHECK(false, "wire mask: unknown kind");
  return {};  // unreachable
}

void put_mask(Writer& w, const WireMask& m) {
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.i64(m.a);
  w.i64(m.b);
  w.u32(static_cast<std::uint32_t>(m.tokens.size()));
  for (const Index t : m.tokens) w.i64(t);
  if (m.kind == WireMaskKind::Csr) {
    GPA_CHECK(m.csr != nullptr, "wire mask: missing CSR payload");
    put_csr(w, *m.csr);
  }
}

bool get_mask(Reader& r, WireMask& m) {
  const auto kind = static_cast<WireMaskKind>(r.u8());
  m.a = static_cast<Index>(r.i64());
  m.b = static_cast<Index>(r.i64());
  const std::uint32_t ntok = r.u32();
  if (!r.ok || r.remaining() < static_cast<std::uint64_t>(ntok) * 8) return false;
  m.tokens.resize(ntok);
  for (Index& t : m.tokens) t = static_cast<Index>(r.i64());
  switch (kind) {
    case WireMaskKind::Local:
    case WireMaskKind::Dilated1d:
    case WireMaskKind::Global:
      m.kind = kind;
      return true;
    case WireMaskKind::Csr: {
      auto csr = std::make_shared<Csr<float>>();
      if (!get_csr(r, *csr)) return false;
      m.kind = kind;
      m.csr = std::move(csr);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Request handling

bool NodeService::serve(Transport& t) {
  for (;;) {
    RpcRequest req;
    const WireStatus ws = recv_request(t, req);
    // Closed is the peer hanging up (normal); anything else is corrupt
    // bytes — the stream position is unrecoverable either way.
    if (ws != WireStatus::Ok) return false;
    RpcResponse rsp;
    handle(req, rsp);
    if (send_response(t, rsp) != WireStatus::Ok) return false;
    if (req.op == Op::Shutdown && rsp.status == RpcStatus::Ok) return true;
  }
}

void NodeService::handle(const RpcRequest& req, RpcResponse& rsp) {
  // Server-side twin of RpcClient::call's span: same static op name,
  // different category, so a merged client+server trace shows the wire
  // round-trip bracketing the handler.
  obs::trace::Span span(to_string(req.op), "net.node");
  rsp.id = req.id;
  rsp.status = RpcStatus::Ok;
  Reader r(req.body);
  Writer out;
  // Session id parsed before dispatch where the op carries one, so the
  // catch blocks below can echo it in typed errors.
  std::uint64_t sid = 0;
  try {
    switch (req.op) {
      case Op::Ping: {
        const auto st = sessions_.stats();
        out.u64(st.sessions);
        out.i64(st.pages_in_use);
        out.i64(st.pages_free);
        break;
      }
      case Op::CreateSession: {
        sid = r.u64();
        WireMask mask;
        if (!r.ok || !get_mask(r, mask)) {
          make_error_response(rsp, RpcStatus::Malformed, "create-session: bad body", sid);
          return;
        }
        sessions_.create(sid, mask.to_spec());
        out.u8(1);
        break;
      }
      case Op::Prefill: {
        sid = r.u64();
        Matrix<float> q, k, v;
        if (!r.ok || !get_matrix(r, q) || !get_matrix(r, k) || !get_matrix(r, v)) {
          make_error_response(rsp, RpcStatus::Malformed, "prefill: bad body", sid);
          return;
        }
        Matrix<float> o;
        sessions_.prefill(sid, q, k, v, o);
        put_matrix(out, o);
        break;
      }
      case Op::DecodeStep: {
        sid = r.u64();
        const Index d = static_cast<Index>(r.u32());
        if (!r.ok || d <= 0 ||
            r.remaining() < 3 * static_cast<std::size_t>(d) * sizeof(float)) {
          make_error_response(rsp, RpcStatus::Malformed, "decode-step: bad body", sid);
          return;
        }
        std::vector<float> qr(static_cast<std::size_t>(d)), kr(qr.size()), vr(qr.size()),
            orow(qr.size());
        r.bytes(qr.data(), qr.size() * sizeof(float));
        r.bytes(kr.data(), kr.size() * sizeof(float));
        r.bytes(vr.data(), vr.size() * sizeof(float));
        const Index edges = sessions_.decode_step(sid, qr.data(), kr.data(), vr.data(),
                                                  orow.data());
        out.u32(static_cast<std::uint32_t>(d));
        out.bytes(orow.data(), orow.size() * sizeof(float));
        out.i64(edges);
        break;
      }
      case Op::ReleaseSession: {
        sid = r.u64();
        sessions_.release(sid);
        out.u8(1);
        break;
      }
      case Op::Stats: {
        // Counters stream in continuously; the pool/session gauges are
        // refreshed here so every scrape carries current occupancy
        // without a per-allocation gauge write on the hot path.
        const auto st = sessions_.stats();
        obs::Registry& reg = obs::Registry::global();
        reg.gauge("kvcache.sessions.live").set(static_cast<std::int64_t>(st.sessions));
        reg.gauge("kvcache.pages.in_use").set(st.pages_in_use);
        reg.gauge("kvcache.pages.free").set(st.pages_free);
        reg.gauge("kvcache.prefix.entries").set(st.prefix_entries);
        put_metrics_snapshot(out, reg.snapshot());
        break;
      }
      case Op::RingStart: rsp.status = ring_start(r); break;
      case Op::RingFetch: rsp.status = ring_fetch(r, out); break;
      case Op::RingShard: rsp.status = ring_shard(r); break;
      case Op::RingFinish: rsp.status = ring_finish(r, out); break;
      case Op::Shutdown: out.u8(1); break;
      default:
        make_error_response(rsp, RpcStatus::Malformed, "unknown op", 0);
        return;
    }
  } catch (const kvcache::SessionNotFound& e) {
    make_error_response(rsp, RpcStatus::SessionNotFound, e.what(), sid);
    return;
  } catch (const kvcache::SessionEvicted& e) {
    make_error_response(rsp, RpcStatus::SessionEvicted, e.what(), sid);
    return;
  } catch (const kvcache::CacheFull& e) {
    make_error_response(rsp, RpcStatus::CacheFull, e.what(), sid);
    return;
  } catch (const InvalidArgument& e) {
    make_error_response(rsp, RpcStatus::InvalidArgument, e.what(), sid);
    return;
  } catch (const std::exception& e) {
    make_error_response(rsp, RpcStatus::Internal, e.what(), sid);
    return;
  }
  if (rsp.status == RpcStatus::Ok) {
    if (out.buf.empty()) out.u8(1);  // every payload is non-empty
    rsp.body = std::move(out.buf);
  } else {
    make_error_response(rsp, rsp.status, to_string(rsp.status), 0);
  }
}

// ---------------------------------------------------------------------
// Ring prefill

RpcStatus NodeService::ring_start(Reader& r) {
  Ring g;
  const std::uint64_t rid = r.u64();
  g.parts = static_cast<Index>(r.u32());
  g.part = static_cast<Index>(r.u32());
  if (!get_partition(r, g.partition) || !get_csr(r, g.mask)) return RpcStatus::Malformed;
  g.causal = r.u8() != 0;
  g.scale = r.f32();
  Matrix<float> ks, vs;
  if (!get_matrix(r, g.q) || !get_matrix(r, ks) || !get_matrix(r, vs) || !r.done()) {
    return RpcStatus::Malformed;
  }
  if (g.parts <= 0 || g.part < 0 || g.part >= g.parts ||
      g.partition.parts() != g.parts || g.mask.rows != g.mask.cols) {
    return RpcStatus::InvalidArgument;
  }
  g.seq_len = g.mask.rows;
  g.head_dim = g.q.cols();
  if (g.head_dim <= 0) return RpcStatus::InvalidArgument;
  // Wire contract matches AttentionOptions: scale < 0 selects the
  // 1/sqrt(dk) default — resolved here exactly as the oracle resolves
  // it, so both sides fold with the same float.
  g.scale = gpa::detail::resolve_scale(g.scale, g.head_dim);
  g.row_lo = g.partition.boundaries[static_cast<std::size_t>(g.part)];
  g.row_hi = g.partition.boundaries[static_cast<std::size_t>(g.part) + 1];
  if (g.partition.boundaries.back() != g.seq_len || g.q.rows() != g.row_hi - g.row_lo ||
      ks.rows() != g.row_hi - g.row_lo || !ks.same_shape(vs) || ks.cols() != g.head_dim) {
    return RpcStatus::InvalidArgument;
  }
  g.state.reset(g.row_hi - g.row_lo, g.head_dim);
  g.k_own = ks;  // kept verbatim for RingFetch
  g.v_own = vs;

  std::lock_guard<std::mutex> lk(ring_mu_);
  auto [it, inserted] = rings_.insert_or_assign(rid, std::move(g));
  (void)inserted;
  stash_and_fold(it->second, it->second.part, std::move(ks), std::move(vs));
  return RpcStatus::Ok;
}

RpcStatus NodeService::ring_fetch(Reader& r, Writer& out) {
  const std::uint64_t rid = r.u64();
  if (!r.ok || !r.done()) return RpcStatus::Malformed;
  std::lock_guard<std::mutex> lk(ring_mu_);
  const auto it = rings_.find(rid);
  if (it == rings_.end()) return RpcStatus::InvalidArgument;
  out.u32(static_cast<std::uint32_t>(it->second.part));
  put_matrix(out, it->second.k_own);
  put_matrix(out, it->second.v_own);
  return RpcStatus::Ok;
}

RpcStatus NodeService::ring_shard(Reader& r) {
  const std::uint64_t rid = r.u64();
  const Index idx = static_cast<Index>(r.u32());
  Matrix<float> ks, vs;
  if (!r.ok || !get_matrix(r, ks) || !get_matrix(r, vs) || !r.done()) {
    return RpcStatus::Malformed;
  }
  std::lock_guard<std::mutex> lk(ring_mu_);
  const auto it = rings_.find(rid);
  if (it == rings_.end()) return RpcStatus::InvalidArgument;
  Ring& g = it->second;
  if (idx < 0 || idx >= g.parts ||
      ks.rows() != g.partition.boundaries[static_cast<std::size_t>(idx) + 1] -
                       g.partition.boundaries[static_cast<std::size_t>(idx)] ||
      !ks.same_shape(vs) || ks.cols() != g.head_dim) {
    return RpcStatus::InvalidArgument;
  }
  stash_and_fold(g, idx, std::move(ks), std::move(vs));
  return RpcStatus::Ok;
}

RpcStatus NodeService::ring_finish(Reader& r, Writer& out) {
  const std::uint64_t rid = r.u64();
  if (!r.ok || !r.done()) return RpcStatus::Malformed;
  std::lock_guard<std::mutex> lk(ring_mu_);
  const auto it = rings_.find(rid);
  if (it == rings_.end()) return RpcStatus::InvalidArgument;
  Ring& g = it->second;
  // Finishing before every shard folded would return partial sums.
  if (g.next_fold != g.parts) return RpcStatus::InvalidArgument;
  Matrix<float> o(g.row_hi - g.row_lo, g.head_dim);
  g.state.finalize_into(o);
  put_matrix(out, o);
  out.u64(g.edges);
  rings_.erase(it);
  return RpcStatus::Ok;
}

void NodeService::stash_and_fold(Ring& g, Index idx,
                                 Matrix<float>&& ks, Matrix<float>&& vs) {
  if (idx >= g.next_fold) {
    g.stash[idx] = {std::move(ks), std::move(vs)};
  }
  for (auto it = g.stash.find(g.next_fold); it != g.stash.end();
       it = g.stash.find(g.next_fold)) {
    fold_shard(g, it->first, it->second.first, it->second.second);
    g.stash.erase(it);  // folded: free the buffered shard
    ++g.next_fold;
  }
}

void NodeService::fold_shard(Ring& g, Index idx, const Matrix<float>& ks,
                             const Matrix<float>& vs) {
  const Index col_lo = g.partition.boundaries[static_cast<std::size_t>(idx)];
  const Index col_hi = g.partition.boundaries[static_cast<std::size_t>(idx) + 1];
  const MaskTraversal tr = MaskTraversal::over(g.mask);
  // Default dispatch: every node runs the same binary on the same
  // host class as the sim_cluster oracle, so the resolved VecOps arm
  // (and with it the fold's operation order) matches.
  const simd::VecOps& vo = simd::ops(ExecPolicy{}.simd);
  for (Index i = g.row_lo; i < g.row_hi; ++i) {
    const Index li = i - g.row_lo;
    const float* qi = g.q.row(li);
    float* acc = g.state.acc_row(li);
    OnlineSoftmaxRow osr{g.state.m(li), g.state.l(li)};
    tr.for_each_edge_in_cols(i, g.seq_len, g.causal, col_lo, col_hi, [&](Index j, float) {
      gpa::detail::fold_edge_rows(qi, ks.row(j - col_lo), vs.row(j - col_lo), g.head_dim,
                                  g.scale, 1.0f, false, osr, acc, vo);
      ++g.edges;
    });
    g.state.m(li) = osr.m;
    g.state.l(li) = osr.l;
  }
}

}  // namespace gpa::net
