#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace gpa::net {

namespace {

void set_io_timeout(int fd, Millis io_timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool set_nonblocking(int fd, bool nb) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, nb ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK)) >= 0;
}

}  // namespace

// ---------------------------------------------------------------------
// TcpTransport

std::unique_ptr<TcpTransport> TcpTransport::connect(const std::string& host, std::uint16_t port,
                                                    Millis connect_timeout, Millis io_timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }

  // Non-blocking connect + poll gives a real deadline; a blocking
  // connect() can take the kernel's SYN-retry minutes to report a dead
  // peer.
  if (!set_nonblocking(fd, true)) {
    ::close(fd);
    return nullptr;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(connect_timeout.count()));
    if (rc <= 0) {  // timeout or poll error
      ::close(fd);
      return nullptr;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return nullptr;
  }
  set_io_timeout(fd, io_timeout);
  return std::unique_ptr<TcpTransport>(new TcpTransport(fd));
}

TcpTransport::~TcpTransport() { close(); }

bool TcpTransport::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a closed peer must surface as EPIPE, not SIGPIPE.
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_SNDTIMEO expiry
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool TcpTransport::recv_exact(void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got == 0) return false;  // orderly EOF mid-read
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_RCVTIMEO expiry
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------
// TcpListener

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GPA_CHECK(fd_ >= 0, "net: socket() failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    GPA_CHECK(false, "net: bind/listen on 127.0.0.1 failed");
  }
  socklen_t len = sizeof(addr);
  GPA_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
            "net: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpTransport> TcpListener::accept(Millis accept_timeout, Millis io_timeout) {
  if (fd_ < 0) return nullptr;
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(accept_timeout.count()));
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return nullptr;  // timeout, or listener closed under us
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return nullptr;
  set_io_timeout(cfd, io_timeout);
  return std::unique_ptr<TcpTransport>(new TcpTransport(cfd));
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------
// Loopback

namespace {

/// One direction of the pipe: a byte queue with blocking reads.
struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::uint8_t> bytes;
  bool closed = false;

  bool write(const std::uint8_t* p, std::size_t n) {
    std::lock_guard<std::mutex> lk(mu);
    if (closed) return false;
    bytes.insert(bytes.end(), p, p + n);
    cv.notify_all();
    return true;
  }

  bool read_exact(std::uint8_t* p, std::size_t n) {
    std::unique_lock<std::mutex> lk(mu);
    while (n > 0) {
      cv.wait(lk, [&] { return !bytes.empty() || closed; });
      if (bytes.empty()) return false;  // closed and drained: EOF
      const std::size_t take = std::min(n, bytes.size());
      for (std::size_t i = 0; i < take; ++i) p[i] = bytes[i];
      bytes.erase(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(take));
      p += take;
      n -= take;
    }
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lk(mu);
    closed = true;
    cv.notify_all();
  }
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~LoopbackTransport() override { close(); }

  bool send_all(const void* data, std::size_t n) override {
    return out_->write(static_cast<const std::uint8_t*>(data), n);
  }
  bool recv_exact(void* data, std::size_t n) override {
    return in_->read_exact(static_cast<std::uint8_t*>(data), n);
  }
  void close() override {
    // Close both directions: the peer's reads EOF once drained, and
    // the peer's writes fail immediately.
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_loopback_pair() {
  auto a_to_b = std::make_shared<Channel>();
  auto b_to_a = std::make_shared<Channel>();
  return {std::make_unique<LoopbackTransport>(a_to_b, b_to_a),
          std::make_unique<LoopbackTransport>(b_to_a, a_to_b)};
}

}  // namespace gpa::net
