#pragma once
// Wire layer: length-prefixed binary framing with explicit little-endian
// field encoding and an fnv1a payload checksum.
//
// Frame layout on the wire:
//
//   [magic   u32]  0x47504146 ("GPAF")
//   [type    u16]  frame type (rpc.hpp assigns request/response)
//   [flags   u16]  reserved, must round-trip
//   [len     u64]  payload byte count, 1 .. kMaxFramePayload
//   [payload len bytes]
//   [checksum u64] fnv1a over the payload bytes
//
// Every multi-byte field is little-endian *by construction* (bytes are
// shifted in/out explicitly), so the format is identical across hosts
// regardless of native endianness. A zero-length payload is a typed
// decode error, not a valid frame: every RPC body starts with at least
// one byte (the op / status octet), so an empty payload can only be a
// peer bug or corruption, and rejecting it up front means no handler
// ever sees an empty body.
//
// Decoding never throws and never reads past the given buffer: every
// malformed input maps to a WireStatus. The Reader primitive underruns
// to a sticky `ok = false` state instead of UB, so payload codecs can
// be written straight-line and checked once at the end.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "seqpar/partition.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::net {

class Transport;  // transport.hpp

/// Typed outcome of every decode path. Nothing in the wire layer
/// throws on malformed input — bad bytes from a peer are an expected
/// operational condition, not a programming error.
enum class WireStatus : std::uint8_t {
  Ok = 0,
  Truncated,         ///< fewer bytes than the header/trailer promise
  BadMagic,          ///< first 4 bytes are not the frame magic
  Oversized,         ///< length prefix exceeds kMaxFramePayload
  EmptyPayload,      ///< length prefix is zero (no valid frame is empty)
  ChecksumMismatch,  ///< payload bytes do not hash to the trailer
  Malformed,         ///< structurally wrong (trailing junk, bad body)
  Closed,            ///< transport EOF / error mid-frame
};

const char* to_string(WireStatus s);

inline constexpr std::uint32_t kFrameMagic = 0x47504146u;  // "GPAF" LE
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kFrameTrailerBytes = 8;
/// Cap on a single frame's payload. Large enough for any realistic
/// shard (a 64k x 256 f32 matrix is 64 MiB); small enough that a
/// corrupt length prefix cannot drive a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

struct Frame {
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  std::vector<std::uint8_t> payload;
};

/// fnv1a over a byte range (same constants as common/fnv1a.hpp, applied
/// bytewise so the hash is independent of word framing).
std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t n);

/// Serialize a frame (header + payload + checksum trailer) into `out`
/// (overwritten). The payload must be non-empty and within the cap;
/// violations are caller bugs and throw InvalidArgument.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Decode one complete frame from a buffer. The buffer must contain
/// exactly one frame: trailing bytes are Malformed (streamed reads know
/// the exact extent from the header, so extra bytes mean the caller
/// sliced wrong or the peer is corrupt).
WireStatus decode_frame(const std::uint8_t* data, std::size_t n, Frame& out);

/// Blocking frame I/O over a transport. read_frame returns Closed on
/// EOF/timeout and the header/payload statuses on corrupt bytes; it
/// never hangs beyond the transport's own receive timeout and never
/// allocates more than the length prefix admits.
WireStatus write_frame(Transport& t, const Frame& frame);
WireStatus read_frame(Transport& t, Frame& out);

// ---------------------------------------------------------------------
// Little-endian payload primitives.

struct Writer {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u16(std::uint16_t v) {
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) buf.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
  void u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) buf.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf.insert(buf.end(), p, p + n);
  }
};

/// Bounds-checked reader: any underrun flips the sticky `ok` flag and
/// yields zeros from then on. Codecs check `r.ok` (and usually
/// `r.done()`) once after reading all fields.
struct Reader {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool ok = true;

  Reader(const std::uint8_t* data, std::size_t n) : p(data), end(data + n) {}
  explicit Reader(const std::vector<std::uint8_t>& v) : Reader(v.data(), v.size()) {}

  std::size_t remaining() const { return ok ? static_cast<std::size_t>(end - p) : 0; }
  bool done() const { return ok && p == end; }

  bool take(std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return *p++;
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= static_cast<std::uint32_t>(p[b]) << (8 * b);
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
    p += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool bytes(void* dst, std::size_t n) {
    if (!take(n)) return false;
    std::memcpy(dst, p, n);
    p += n;
    return true;
  }
};

// ---------------------------------------------------------------------
// Typed payload codecs for the existing library types. Each get_*
// returns false (leaving the Reader's sticky flag tripped where
// applicable) on underrun or on dimensions that fail sanity bounds —
// a hostile length field must not drive the allocation.

void put_string(Writer& w, const std::string& s);
bool get_string(Reader& r, std::string& s);

void put_matrix(Writer& w, const Matrix<float>& m);
bool get_matrix(Reader& r, Matrix<float>& m);

void put_csr(Writer& w, const Csr<float>& m);
bool get_csr(Reader& r, Csr<float>& m);

void put_partition(Writer& w, const seqpar::Partition& p);
bool get_partition(Reader& r, seqpar::Partition& p);

}  // namespace gpa::net
