#pragma once
// Byte transports under the frame layer. Two arms, one contract:
//
//   * TcpTransport / TcpListener — blocking localhost/LAN sockets with
//     connect/accept/receive timeouts (a hung peer turns into a typed
//     Closed status upstream, never a wedged thread).
//   * LoopbackTransport (make_loopback_pair) — an in-process byte pipe
//     with the exact same blocking semantics, so every protocol test
//     runs transport-polymorphic without touching the network stack.
//
// The contract is deliberately minimal: send everything or fail,
// receive exactly n bytes or fail. Framing, checksums and typed errors
// live above (frame.hpp / rpc.hpp); retry policy lives with callers.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace gpa::net {

using Millis = std::chrono::milliseconds;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends all n bytes; false on peer close / error / send timeout.
  virtual bool send_all(const void* data, std::size_t n) = 0;
  /// Receives exactly n bytes; false on EOF / error / receive timeout.
  virtual bool recv_exact(void* data, std::size_t n) = 0;
  /// Idempotent; unblocks any peer blocked in recv_exact.
  virtual void close() = 0;
};

// ---------------------------------------------------------------------
// TCP arm.

class TcpTransport final : public Transport {
 public:
  /// Connect with a hard deadline (non-blocking connect + poll), then
  /// switch to blocking I/O with SO_RCVTIMEO/SO_SNDTIMEO set to
  /// `io_timeout` and TCP_NODELAY on (frames are latency-bound).
  /// Returns nullptr on refusal/timeout.
  static std::unique_ptr<TcpTransport> connect(const std::string& host, std::uint16_t port,
                                               Millis connect_timeout, Millis io_timeout);

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  bool send_all(const void* data, std::size_t n) override;
  bool recv_exact(void* data, std::size_t n) override;
  void close() override;

 private:
  friend class TcpListener;
  explicit TcpTransport(int fd) : fd_(fd) {}
  int fd_ = -1;
};

class TcpListener {
 public:
  /// Bind + listen on 127.0.0.1:`port`; port 0 picks an ephemeral port
  /// (read it back via port()). Throws InvalidArgument on bind failure.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Accept one connection within the deadline (poll + accept);
  /// nullptr on timeout. The accepted socket gets `io_timeout` as its
  /// receive/send timeout.
  std::unique_ptr<TcpTransport> accept(Millis accept_timeout, Millis io_timeout);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// ---------------------------------------------------------------------
// Loopback arm.

/// Two connected in-process endpoints. Each endpoint's sends appear at
/// the other's recv_exact in order; close() wakes the peer with EOF
/// semantics once the buffered bytes drain. Thread-safe per endpoint.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_loopback_pair();

}  // namespace gpa::net
