#pragma once
// Node service: the server half of a cluster process. Owns a
// SessionManager (each node holds only the sessions the hash ring
// assigns it) and the per-ring prefill state for wire-rotated
// ring attention.
//
// Ring prefill bit-identity (the differential gate vs
// seqpar/sim_cluster): sim_cluster folds each row's full neighborhood
// in ascending column order. Ring rotation delivers shards in rotated
// order — node p sees shards p, p+1, ..., P-1, 0, ..., p-1 — so a node
// folding on arrival would fold columns out of order and drift in the
// last float bits (the online-softmax fold is order-dependent). Nodes
// therefore do *deferred in-order folding*: an arriving shard is
// stashed, and shard s is folded only once shards 0..s-1 have been
// folded (then freed). The per-row fold order is ascending columns —
// exactly sim_cluster's, and exactly the one-shot kernel's — so the
// finalized outputs are bit-identical by construction. Peak extra
// memory is the stash: at most the shards between the fold cursor and
// the rotation position.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/state.hpp"
#include "kvcache/session_manager.hpp"
#include "net/rpc.hpp"
#include "obs/metrics.hpp"
#include "seqpar/partition.hpp"
#include "sparse/patterns.hpp"

namespace gpa::net {

// ---------------------------------------------------------------------
// Metrics snapshot over the wire (Op::Stats). Typed, not stringly: the
// scraper (gpa_cli stats / cluster-bench) reads individual fields, so
// the snapshot ships as [counters][gauges][histograms] with
// length-prefixed name strings and LE-encoded values. get_* applies the
// usual hostile-input bounds before any allocation.

void put_metrics_snapshot(Writer& w, const obs::MetricsSnapshot& s);
bool get_metrics_snapshot(Reader& r, obs::MetricsSnapshot& s);

// ---------------------------------------------------------------------
// Session mask over the wire: the restricted MaskSpec vocabulary the
// cluster serves (one component; the families with a closed-form or
// explicit spelling).

enum class WireMaskKind : std::uint8_t {
  Local = 1,     ///< a = window
  Dilated1d = 2, ///< a = window, b = dilation
  Global = 3,    ///< tokens = global tokens, a = local window to subtract
  Csr = 4,
};

struct WireMask {
  WireMaskKind kind = WireMaskKind::Local;
  Index a = 0;
  Index b = 0;
  std::vector<Index> tokens;        ///< Global kind only
  std::shared_ptr<Csr<float>> csr;  ///< Csr kind only

  kvcache::MaskSpec to_spec() const;
};

void put_mask(Writer& w, const WireMask& m);
bool get_mask(Reader& r, WireMask& m);

// ---------------------------------------------------------------------

struct NodeConfig {
  kvcache::SessionManager::Config sessions{};
};

class NodeService {
 public:
  explicit NodeService(NodeConfig cfg) : sessions_(cfg.sessions) {}

  /// Serve one connection: request/response until EOF, a corrupt
  /// frame, or a Shutdown op. Returns true iff shutdown was requested
  /// (the process-level accept loop exits on true).
  bool serve(Transport& t);

  /// One request → one response (exposed for loopback tests).
  void handle(const RpcRequest& req, RpcResponse& rsp);

  const kvcache::SessionManager& sessions() const noexcept { return sessions_; }

 private:
  /// In-flight ring-prefill state, keyed by the router's ring id.
  struct Ring {
    Index parts = 0;
    Index part = 0;  ///< this node's index p
    Index seq_len = 0;
    Index head_dim = 0;
    Index row_lo = 0;
    Index row_hi = 0;
    bool causal = false;
    float scale = 1.0f;
    seqpar::Partition partition;
    Csr<float> mask;
    Matrix<float> q;          ///< this node's row slice (local indexing)
    Matrix<float> k_own, v_own;  ///< the shard this node owns (RingFetch)
    SoftmaxState state;       ///< row_hi - row_lo local rows
    std::map<Index, std::pair<Matrix<float>, Matrix<float>>> stash;
    Index next_fold = 0;      ///< shards 0..next_fold-1 are folded
    Size edges = 0;
  };

  RpcStatus ring_start(Reader& r);
  RpcStatus ring_fetch(Reader& r, Writer& out);
  RpcStatus ring_shard(Reader& r);
  RpcStatus ring_finish(Reader& r, Writer& out);

  /// Stash shard `idx`, then fold every consecutive shard starting at
  /// the cursor (ascending order — see file comment).
  void stash_and_fold(Ring& g, Index idx, Matrix<float>&& ks, Matrix<float>&& vs);
  void fold_shard(Ring& g, Index idx, const Matrix<float>& ks, const Matrix<float>& vs);

  kvcache::SessionManager sessions_;
  std::mutex ring_mu_;
  std::map<std::uint64_t, Ring> rings_;
};

}  // namespace gpa::net
