#include "net/cluster.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/fnv1a.hpp"

namespace gpa::net {

// ---------------------------------------------------------------------
// HashRing

namespace {
std::uint64_t hash_key(std::uint64_t key) {
  Fnv1a f;
  f.mix(key);
  return f.h;
}
std::uint64_t hash_point(std::uint64_t node_id, Index replica) {
  Fnv1a f;
  f.mix(node_id);
  f.mix(static_cast<std::uint64_t>(replica));
  return f.h;
}
}  // namespace

HashRing::HashRing(Index virtual_nodes) : vnodes_(virtual_nodes) {
  GPA_CHECK(virtual_nodes > 0, "hash ring: need at least one virtual node");
}

void HashRing::add_node(std::uint64_t node_id) {
  GPA_CHECK(nodes_.insert(node_id).second, "hash ring: duplicate node id");
  for (Index rep = 0; rep < vnodes_; ++rep) {
    // Collisions between 64-bit points are vanishingly rare; if two
    // vnodes do collide, last-insert wins for that point, which only
    // perturbs the balance, never correctness.
    points_[hash_point(node_id, rep)] = node_id;
  }
}

void HashRing::remove_node(std::uint64_t node_id) {
  if (nodes_.erase(node_id) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == node_id) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t HashRing::owner(std::uint64_t key) const {
  GPA_CHECK(!points_.empty(), "hash ring: no nodes");
  auto it = points_.lower_bound(hash_key(key));
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

// ---------------------------------------------------------------------
// ClusterClient

void ClusterClient::add_peer(std::uint64_t node_id, std::unique_ptr<Transport> transport) {
  GPA_CHECK(transport != nullptr, "cluster: null transport");
  ring_.add_node(node_id);  // throws on duplicates before we mutate peers_
  Peer p;
  p.id = node_id;
  p.transport = std::move(transport);
  p.rpc = std::make_unique<RpcClient>(*p.transport);
  peers_.push_back(std::move(p));
}

ClusterClient::Peer& ClusterClient::by_id(std::uint64_t node_id) {
  for (Peer& p : peers_) {
    if (p.id == node_id) return p;
  }
  GPA_CHECK(false, "cluster: unknown node id");
  return peers_.front();  // unreachable
}

ClusterClient::Peer& ClusterClient::by_session(std::uint64_t session_id) {
  return by_id(ring_.owner(session_id));
}

void ClusterClient::create_session(std::uint64_t session_id, const WireMask& mask) {
  Writer w;
  w.u64(session_id);
  put_mask(w, mask);
  by_session(session_id).rpc->call(Op::CreateSession, std::move(w.buf));
}

void ClusterClient::prefill(std::uint64_t session_id, const Matrix<float>& q,
                            const Matrix<float>& k, const Matrix<float>& v,
                            Matrix<float>& out) {
  Writer w;
  w.u64(session_id);
  put_matrix(w, q);
  put_matrix(w, k);
  put_matrix(w, v);
  const auto body = by_session(session_id).rpc->call(Op::Prefill, std::move(w.buf));
  Reader r(body);
  GPA_CHECK(get_matrix(r, out) && r.done(), "cluster: bad prefill response");
}

Index ClusterClient::decode_step(std::uint64_t session_id, const float* q, const float* k,
                                 const float* v, Index head_dim, float* out_row) {
  GPA_CHECK(head_dim > 0, "cluster: head_dim must be positive");
  Writer w;
  w.u64(session_id);
  w.u32(static_cast<std::uint32_t>(head_dim));
  const std::size_t row_bytes = static_cast<std::size_t>(head_dim) * sizeof(float);
  w.bytes(q, row_bytes);
  w.bytes(k, row_bytes);
  w.bytes(v, row_bytes);
  const auto body = by_session(session_id).rpc->call(Op::DecodeStep, std::move(w.buf));
  Reader r(body);
  const Index d = static_cast<Index>(r.u32());
  GPA_CHECK(r.ok && d == head_dim, "cluster: decode response dimension mismatch");
  GPA_CHECK(r.bytes(out_row, row_bytes), "cluster: short decode response");
  const Index edges = static_cast<Index>(r.i64());
  GPA_CHECK(r.done(), "cluster: bad decode response");
  return edges;
}

void ClusterClient::release_session(std::uint64_t session_id) {
  Writer w;
  w.u64(session_id);
  by_session(session_id).rpc->call(Op::ReleaseSession, std::move(w.buf));
}

PingInfo ClusterClient::ping(std::uint64_t node_id) {
  Writer w;
  w.u8(1);
  const auto body = by_id(node_id).rpc->call(Op::Ping, std::move(w.buf));
  Reader r(body);
  PingInfo info;
  info.sessions = r.u64();
  info.pages_in_use = static_cast<Index>(r.i64());
  info.pages_free = static_cast<Index>(r.i64());
  GPA_CHECK(r.done(), "cluster: bad ping response");
  return info;
}

obs::MetricsSnapshot ClusterClient::node_stats(std::uint64_t node_id) {
  Writer w;
  w.u8(1);
  const auto body = by_id(node_id).rpc->call(Op::Stats, std::move(w.buf));
  Reader r(body);
  obs::MetricsSnapshot snap;
  GPA_CHECK(get_metrics_snapshot(r, snap) && r.done(), "cluster: bad stats response");
  return snap;
}

ClusterRingReport ClusterClient::ring_prefill(const Matrix<float>& q, const Matrix<float>& k,
                                              const Matrix<float>& v, const Csr<float>& mask,
                                              const seqpar::Partition& partition, bool causal,
                                              float scale, Matrix<float>& out) {
  const Index L = q.rows();
  const Index d = q.cols();
  const Index P = static_cast<Index>(peers_.size());
  GPA_CHECK(P > 0, "cluster: no peers");
  GPA_CHECK(partition.parts() == P, "cluster: partition parts must equal peer count");
  GPA_CHECK(!partition.boundaries.empty() && partition.boundaries.front() == 0 &&
                partition.boundaries.back() == L,
            "cluster: partition must cover [0, L)");
  GPA_CHECK(mask.rows == L && mask.cols == L, "cluster: mask shape mismatch");
  GPA_CHECK(k.rows() == L && v.rows() == L && k.cols() == d && v.cols() == d,
            "cluster: K/V shape mismatch");
  out = Matrix<float>(L, d);

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t rid = next_ring_id_++;
  ClusterRingReport report;

  auto slice = [&](const Matrix<float>& src, Index lo, Index hi) {
    Matrix<float> s(hi - lo, d);
    if (hi > lo) {
      std::memcpy(s.data(), src.row(lo), static_cast<std::size_t>(hi - lo) *
                                             static_cast<std::size_t>(d) * sizeof(float));
    }
    return s;
  };

  // Step 0: every node gets its Q rows and the K/V shard it owns.
  for (Index p = 0; p < P; ++p) {
    const Index lo = partition.boundaries[static_cast<std::size_t>(p)];
    const Index hi = partition.boundaries[static_cast<std::size_t>(p) + 1];
    Writer w;
    w.u64(rid);
    w.u32(static_cast<std::uint32_t>(P));
    w.u32(static_cast<std::uint32_t>(p));
    put_partition(w, partition);
    put_csr(w, mask);
    w.u8(causal ? 1 : 0);
    w.f32(scale);
    put_matrix(w, slice(q, lo, hi));
    put_matrix(w, slice(k, lo, hi));
    put_matrix(w, slice(v, lo, hi));
    peers_[static_cast<std::size_t>(p)].rpc->call(Op::RingStart, std::move(w.buf));
  }

  // Steps 1..P-1: rotate. Node p needs shard (p+s) mod P at step s; the
  // router fetches it from its owner and relays it (see cluster.hpp for
  // the star-vs-p2p trade). Delivery order within a step is irrelevant:
  // nodes fold deferred-in-order regardless of arrival order.
  for (Index s = 1; s < P; ++s) {
    for (Index p = 0; p < P; ++p) {
      const Index shard = (p + s) % P;
      Writer fw;
      fw.u64(rid);
      const auto fetched =
          peers_[static_cast<std::size_t>(shard)].rpc->call(Op::RingFetch, std::move(fw.buf));
      Reader fr(fetched);
      const Index idx = static_cast<Index>(fr.u32());
      GPA_CHECK(fr.ok && idx == shard, "cluster: ring fetch returned wrong shard");
      Writer w;
      w.u64(rid);
      w.u32(static_cast<std::uint32_t>(shard));
      w.bytes(fr.p, fr.remaining());  // shard K/V matrices, verbatim
      peers_[static_cast<std::size_t>(p)].rpc->call(Op::RingShard, std::move(w.buf));
      ++report.shard_deliveries;
    }
  }

  // Collect each node's finalized rows.
  for (Index p = 0; p < P; ++p) {
    const Index lo = partition.boundaries[static_cast<std::size_t>(p)];
    const Index hi = partition.boundaries[static_cast<std::size_t>(p) + 1];
    Writer w;
    w.u64(rid);
    const auto body = peers_[static_cast<std::size_t>(p)].rpc->call(Op::RingFinish,
                                                                    std::move(w.buf));
    Reader r(body);
    Matrix<float> rows;
    GPA_CHECK(get_matrix(r, rows), "cluster: bad ring finish response");
    const Size edges = r.u64();
    GPA_CHECK(r.done() && rows.rows() == hi - lo && rows.cols() == d,
              "cluster: ring finish shape mismatch");
    if (hi > lo) {
      std::memcpy(out.row(lo), rows.data(), static_cast<std::size_t>(hi - lo) *
                                                static_cast<std::size_t>(d) * sizeof(float));
    }
    ClusterNodeReport nr;
    nr.node_id = peers_[static_cast<std::size_t>(p)].id;
    nr.row_begin = lo;
    nr.row_end = hi;
    nr.edges = edges;
    report.nodes.push_back(nr);
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

void ClusterClient::shutdown_all() {
  for (Peer& p : peers_) {
    Writer w;
    w.u8(1);
    try {
      p.rpc->call(Op::Shutdown, std::move(w.buf));
    } catch (const TransportError&) {
      // Peer already gone — shutdown is best-effort by design.
    }
    p.transport->close();
  }
}

}  // namespace gpa::net
