#pragma once
// RPC layer: a minimal request/response protocol over frames, carrying
// the KV-cache error taxonomy (SessionNotFound / SessionEvicted /
// CacheFull) across the wire as typed statuses instead of letting a
// node assert on an operational condition.
//
// Request payload:   [id u64][op u8][body ...]
// Response payload:  [id u64][status u8][body ...]
//
// On any status other than Ok the response body is [detail string]
// [session id u64] so the client can rethrow the exact exception the
// local API would have thrown — the serving layer's catch sites work
// unchanged whether the session lives in-process or across a socket.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"

namespace gpa::net {

inline constexpr std::uint16_t kFrameRequest = 1;
inline constexpr std::uint16_t kFrameResponse = 2;

/// Operations a node serves. Values are wire format — append only.
enum class Op : std::uint8_t {
  Ping = 1,
  CreateSession = 2,
  Prefill = 3,
  DecodeStep = 4,
  ReleaseSession = 5,
  RingStart = 6,   ///< install ring-prefill state + this node's shard
  RingFetch = 7,   ///< read back the shard this node owns
  RingShard = 8,   ///< deliver a rotated shard to fold
  RingFinish = 9,  ///< finalize and return the node's output rows
  Shutdown = 10,
  Stats = 11,  ///< scrape the node's metrics registry snapshot
};

/// Wire form of the error taxonomy. Values are wire format — append
/// only.
enum class RpcStatus : std::uint8_t {
  Ok = 0,
  SessionNotFound = 1,
  SessionEvicted = 2,
  CacheFull = 3,
  InvalidArgument = 4,
  Malformed = 5,  ///< request body failed to decode
  Internal = 6,
};

const char* to_string(RpcStatus s);
const char* to_string(Op op);

struct RpcRequest {
  std::uint64_t id = 0;
  Op op = Op::Ping;
  std::vector<std::uint8_t> body;
};

struct RpcResponse {
  std::uint64_t id = 0;
  RpcStatus status = RpcStatus::Ok;
  std::vector<std::uint8_t> body;
};

WireStatus send_request(Transport& t, const RpcRequest& req);
WireStatus recv_request(Transport& t, RpcRequest& req);
WireStatus send_response(Transport& t, const RpcResponse& rsp);
WireStatus recv_response(Transport& t, RpcResponse& rsp);

/// Helper for error responses: body = [detail][session id].
void make_error_response(RpcResponse& rsp, RpcStatus status, const std::string& detail,
                         std::uint64_t session_id);

/// Client half of one connection: matches response ids to request ids.
/// call() throws TransportError if the peer vanished mid-call, and
/// rethrows error statuses as the library's own typed exceptions
/// (kvcache::SessionNotFound / SessionEvicted / CacheFull,
/// InvalidArgument, RpcError for the rest); on Ok it returns the
/// response body.
class RpcClient {
 public:
  explicit RpcClient(Transport& t) : t_(t) {}

  std::vector<std::uint8_t> call(Op op, std::vector<std::uint8_t> body);

 private:
  Transport& t_;
  std::uint64_t next_id_ = 1;
};

/// The connection died or the peer sent unframeable bytes.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A typed remote failure with no more specific local exception.
class RpcError : public std::runtime_error {
 public:
  RpcError(RpcStatus status, const std::string& detail)
      : std::runtime_error(detail), status_(status) {}
  RpcStatus status() const noexcept { return status_; }

 private:
  RpcStatus status_;
};

}  // namespace gpa::net
