#include "net/frame.hpp"

#include "common/error.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace gpa::net {

namespace {

// Per-process wire totals, counted at the transport boundary (the
// loopback arm goes through the same two functions, so loopback tests
// see the same accounting as TCP). Byte counts include the 24 bytes of
// header + trailer — they answer "what crossed the wire", not "payload
// goodput".
struct WireMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& checksum_failures;

  static WireMetrics& get() {
    static WireMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      return WireMetrics{reg.counter("net.frames.sent"),
                         reg.counter("net.frames.received"),
                         reg.counter("net.bytes.sent"),
                         reg.counter("net.bytes.received"),
                         reg.counter("net.checksum_failures")};
    }();
    return m;
  }
};

}  // namespace

const char* to_string(WireStatus s) {
  switch (s) {
    case WireStatus::Ok: return "ok";
    case WireStatus::Truncated: return "truncated";
    case WireStatus::BadMagic: return "bad magic";
    case WireStatus::Oversized: return "oversized length prefix";
    case WireStatus::EmptyPayload: return "empty payload";
    case WireStatus::ChecksumMismatch: return "checksum mismatch";
    case WireStatus::Malformed: return "malformed";
    case WireStatus::Closed: return "transport closed";
  }
  return "unknown";
}

std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t n) {
  // Same constants as Fnv1a (common/fnv1a.hpp), folded bytewise so the
  // hash does not depend on how the payload would pack into words.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

void put_header(std::vector<std::uint8_t>& out, const Frame& f) {
  Writer w;
  w.u32(kFrameMagic);
  w.u16(f.type);
  w.u16(f.flags);
  w.u64(f.payload.size());
  out.insert(out.end(), w.buf.begin(), w.buf.end());
}

struct Header {
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  std::uint64_t len = 0;
};

/// Validate the 16 header bytes. `n` is how many bytes the caller
/// actually has (streamed reads always pass a full header; buffer
/// decodes may be short).
WireStatus parse_header(const std::uint8_t* data, std::size_t n, Header& h) {
  if (n < kFrameHeaderBytes) return WireStatus::Truncated;
  Reader r(data, kFrameHeaderBytes);
  const std::uint32_t magic = r.u32();
  h.type = r.u16();
  h.flags = r.u16();
  h.len = r.u64();
  if (magic != kFrameMagic) return WireStatus::BadMagic;
  if (h.len == 0) return WireStatus::EmptyPayload;
  if (h.len > kMaxFramePayload) return WireStatus::Oversized;
  return WireStatus::Ok;
}

}  // namespace

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  GPA_CHECK(!frame.payload.empty(), "net: cannot encode an empty frame payload");
  GPA_CHECK(frame.payload.size() <= kMaxFramePayload, "net: frame payload exceeds cap");
  out.clear();
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  put_header(out, frame);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  Writer w;
  w.u64(payload_checksum(frame.payload.data(), frame.payload.size()));
  out.insert(out.end(), w.buf.begin(), w.buf.end());
}

WireStatus decode_frame(const std::uint8_t* data, std::size_t n, Frame& out) {
  Header h;
  const WireStatus hs = parse_header(data, n, h);
  if (hs != WireStatus::Ok) return hs;
  const std::uint64_t want = kFrameHeaderBytes + h.len + kFrameTrailerBytes;
  if (n < want) return WireStatus::Truncated;
  if (n > want) return WireStatus::Malformed;  // trailing junk
  const std::uint8_t* payload = data + kFrameHeaderBytes;
  Reader tr(payload + h.len, kFrameTrailerBytes);
  const std::uint64_t stated = tr.u64();
  if (payload_checksum(payload, static_cast<std::size_t>(h.len)) != stated) {
    return WireStatus::ChecksumMismatch;
  }
  out.type = h.type;
  out.flags = h.flags;
  out.payload.assign(payload, payload + h.len);
  return WireStatus::Ok;
}

WireStatus write_frame(Transport& t, const Frame& frame) {
  std::vector<std::uint8_t> wire;
  encode_frame(frame, wire);
  if (!t.send_all(wire.data(), wire.size())) return WireStatus::Closed;
  WireMetrics& wm = WireMetrics::get();
  wm.frames_sent.inc();
  wm.bytes_sent.inc(wire.size());
  return WireStatus::Ok;
}

WireStatus read_frame(Transport& t, Frame& out) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!t.recv_exact(header, kFrameHeaderBytes)) return WireStatus::Closed;
  Header h;
  const WireStatus hs = parse_header(header, kFrameHeaderBytes, h);
  // On a corrupt header the stream position is unrecoverable (the
  // length prefix cannot be trusted), so the caller must close; we do
  // not attempt to resynchronise.
  if (hs != WireStatus::Ok) return hs;
  out.type = h.type;
  out.flags = h.flags;
  out.payload.resize(static_cast<std::size_t>(h.len));
  if (!t.recv_exact(out.payload.data(), out.payload.size())) return WireStatus::Truncated;
  std::uint8_t trailer[kFrameTrailerBytes];
  if (!t.recv_exact(trailer, kFrameTrailerBytes)) return WireStatus::Truncated;
  Reader tr(trailer, kFrameTrailerBytes);
  if (payload_checksum(out.payload.data(), out.payload.size()) != tr.u64()) {
    WireMetrics::get().checksum_failures.inc();
    return WireStatus::ChecksumMismatch;
  }
  WireMetrics& wm = WireMetrics::get();
  wm.frames_received.inc();
  wm.bytes_received.inc(kFrameHeaderBytes + out.payload.size() + kFrameTrailerBytes);
  return WireStatus::Ok;
}

// ---------------------------------------------------------------------
// Typed payload codecs.

namespace {
/// Ceiling on decoded vector/matrix element counts: anything a peer
/// sends arrives inside one frame, so no field can legitimately promise
/// more elements than the frame cap could carry.
constexpr std::uint64_t kMaxElems = kMaxFramePayload / sizeof(float);
}  // namespace

void put_string(Writer& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.bytes(s.data(), s.size());
}

bool get_string(Reader& r, std::string& s) {
  const std::uint32_t n = r.u32();
  if (!r.take(n)) return false;
  s.assign(reinterpret_cast<const char*>(r.p), n);
  r.p += n;
  return true;
}

void put_matrix(Writer& w, const Matrix<float>& m) {
  w.i64(m.rows());
  w.i64(m.cols());
  // Rows are contiguous; ship the buffer, field order is the element
  // order. f32 bit patterns are endian-normalised like every other
  // field (memcpy'd to u32, emitted LE) — bulk copy is safe because
  // the build targets little-endian hosts only; a big-endian port
  // would swap here.
  w.bytes(m.data(), static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols()) *
                        sizeof(float));
}

bool get_matrix(Reader& r, Matrix<float>& m) {
  const std::int64_t rows = r.i64();
  const std::int64_t cols = r.i64();
  if (!r.ok || rows < 0 || cols < 0) return false;
  const std::uint64_t elems = static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  if (cols > 0 && static_cast<std::uint64_t>(rows) > kMaxElems / static_cast<std::uint64_t>(cols)) {
    r.ok = false;
    return false;
  }
  if (r.remaining() < elems * sizeof(float)) {
    r.ok = false;
    return false;
  }
  m = Matrix<float>(static_cast<Index>(rows), static_cast<Index>(cols));
  return r.bytes(m.data(), static_cast<std::size_t>(elems) * sizeof(float));
}

void put_csr(Writer& w, const Csr<float>& m) {
  w.i64(m.rows);
  w.i64(m.cols);
  w.u64(m.nnz());
  for (const Index o : m.row_offsets) w.i64(o);
  for (const Index c : m.col_idx) w.i64(c);
  w.bytes(m.values.data(), m.values.size() * sizeof(float));
}

bool get_csr(Reader& r, Csr<float>& m) {
  const std::int64_t rows = r.i64();
  const std::int64_t cols = r.i64();
  const std::uint64_t nnz = r.u64();
  if (!r.ok || rows < 0 || cols < 0 || nnz > kMaxElems) return false;
  // All three arrays must fit in what remains before any allocation.
  const std::uint64_t need = (static_cast<std::uint64_t>(rows) + 1) * 8 + nnz * (8 + 4);
  if (r.remaining() < need) {
    r.ok = false;
    return false;
  }
  m.rows = static_cast<Index>(rows);
  m.cols = static_cast<Index>(cols);
  m.row_offsets.resize(static_cast<std::size_t>(rows) + 1);
  m.col_idx.resize(static_cast<std::size_t>(nnz));
  m.values.resize(static_cast<std::size_t>(nnz));
  for (Index& o : m.row_offsets) o = static_cast<Index>(r.i64());
  for (Index& c : m.col_idx) c = static_cast<Index>(r.i64());
  if (!r.bytes(m.values.data(), m.values.size() * sizeof(float))) return false;
  // Structural sanity — a peer's CSR must be canonical before any
  // kernel walks it (kernels index unchecked in release builds).
  return m.is_canonical();
}

void put_partition(Writer& w, const seqpar::Partition& p) {
  w.u32(static_cast<std::uint32_t>(p.boundaries.size()));
  for (const Index b : p.boundaries) w.i64(b);
  w.u32(static_cast<std::uint32_t>(p.work.size()));
  for (const Size s : p.work) w.u64(s);
}

bool get_partition(Reader& r, seqpar::Partition& p) {
  const std::uint32_t nb = r.u32();
  if (!r.ok || nb > kMaxElems || r.remaining() < static_cast<std::uint64_t>(nb) * 8) {
    r.ok = false;
    return false;
  }
  p.boundaries.resize(nb);
  for (Index& b : p.boundaries) b = static_cast<Index>(r.i64());
  const std::uint32_t nw = r.u32();
  if (!r.ok || nw > kMaxElems || r.remaining() < static_cast<std::uint64_t>(nw) * 8) {
    r.ok = false;
    return false;
  }
  p.work.resize(nw);
  for (Size& s : p.work) s = r.u64();
  if (!r.ok) return false;
  // parts+1 boundaries, monotone, starting at 0.
  if (p.boundaries.size() != p.work.size() + 1 || p.boundaries.empty()) return false;
  if (p.boundaries.front() != 0) return false;
  for (std::size_t i = 1; i < p.boundaries.size(); ++i) {
    if (p.boundaries[i] < p.boundaries[i - 1]) return false;
  }
  return true;
}

}  // namespace gpa::net
