#pragma once
// Cluster layer: the front-end router.
//
//   * HashRing — consistent hashing of session ids to node ids with
//     virtual nodes, so adding a node to an N-node ring re-owns ~1/(N+1)
//     of the keys instead of rehashing everything.
//   * ClusterClient — one RPC connection per peer; session ops route to
//     the ring owner, and ring_prefill drives the wire-rotated
//     ring-attention protocol across all peers.
//
// Ring prefill topology: the router *relays* the rotation (star
// topology) rather than wiring peers to each other — at step s it
// fetches shard (p+s) mod P from its owner and delivers it to node p.
// Each delivered shard crosses the wire twice (owner→router→node), so
// the relay ships 2·(P-1)·shard_bytes per node versus (P-1)·shard_bytes
// for a true peer-to-peer ring; in exchange the protocol needs only the
// client→node connections that session serving already requires, works
// unchanged over the loopback arm, and cannot deadlock (every transfer
// has exactly one blocked party). The fold order on each node is
// independent of delivery order (deferred in-order folding, see
// node.hpp), which is what makes the result bit-identical to
// seqpar/sim_cluster.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/node.hpp"
#include "net/rpc.hpp"
#include "seqpar/partition.hpp"

namespace gpa::net {

class HashRing {
 public:
  explicit HashRing(Index virtual_nodes = 64);

  void add_node(std::uint64_t node_id);
  void remove_node(std::uint64_t node_id);

  bool contains(std::uint64_t node_id) const { return nodes_.count(node_id) != 0; }
  Size nodes() const noexcept { return nodes_.size(); }

  /// Owning node for a key: clockwise successor of the key's hash
  /// point. Throws InvalidArgument on an empty ring.
  std::uint64_t owner(std::uint64_t key) const;

 private:
  Index vnodes_;
  std::map<std::uint64_t, std::uint64_t> points_;  ///< hash point → node id
  std::set<std::uint64_t> nodes_;
};

/// Per-node throughput sample from a cluster ring prefill.
struct ClusterNodeReport {
  std::uint64_t node_id = 0;
  Index row_begin = 0;
  Index row_end = 0;
  Size edges = 0;
};

struct ClusterRingReport {
  std::vector<ClusterNodeReport> nodes;
  Size shard_deliveries = 0;  ///< rotated shards shipped (fetch+push each)
  double seconds = 0.0;       ///< wall time of the whole exchange
};

struct PingInfo {
  Size sessions = 0;
  Index pages_in_use = 0;
  Index pages_free = 0;
};

class ClusterClient {
 public:
  explicit ClusterClient(Index virtual_nodes = 64) : ring_(virtual_nodes) {}

  /// Register a connected peer. Node ids must be unique; insertion
  /// order defines the ring-prefill part index p.
  void add_peer(std::uint64_t node_id, std::unique_ptr<Transport> transport);

  Size peers() const noexcept { return peers_.size(); }
  std::uint64_t owner_of(std::uint64_t session_id) const { return ring_.owner(session_id); }

  // Session ops, routed to the ring owner. Remote typed errors
  // (SessionNotFound / SessionEvicted / CacheFull / InvalidArgument)
  // rethrow client-side as the local exceptions.
  void create_session(std::uint64_t session_id, const WireMask& mask);
  void prefill(std::uint64_t session_id, const Matrix<float>& q, const Matrix<float>& k,
               const Matrix<float>& v, Matrix<float>& out);
  Index decode_step(std::uint64_t session_id, const float* q, const float* k, const float* v,
                    Index head_dim, float* out_row);
  void release_session(std::uint64_t session_id);

  PingInfo ping(std::uint64_t node_id);

  /// Scrape a node's full metrics registry snapshot (Op::Stats).
  obs::MetricsSnapshot node_stats(std::uint64_t node_id);

  /// Wire-rotated ring-attention prefill across ALL peers (peer i is
  /// part i; partition.parts() must equal peers()). Bit-identical to
  /// seqpar::distributed_csr_attention on the same partition.
  ClusterRingReport ring_prefill(const Matrix<float>& q, const Matrix<float>& k,
                                 const Matrix<float>& v, const Csr<float>& mask,
                                 const seqpar::Partition& partition, bool causal, float scale,
                                 Matrix<float>& out);

  /// Orderly shutdown of every peer (each node's serve loop exits).
  void shutdown_all();

 private:
  struct Peer {
    std::uint64_t id = 0;
    std::unique_ptr<Transport> transport;
    std::unique_ptr<RpcClient> rpc;
  };

  Peer& by_session(std::uint64_t session_id);
  Peer& by_id(std::uint64_t node_id);

  HashRing ring_;
  std::vector<Peer> peers_;
  std::uint64_t next_ring_id_ = 1;
};

}  // namespace gpa::net
