#pragma once
// Internal linkage point between the dispatcher and the per-arm
// translation units. Not part of the public simd API.

#include "simd/simd.hpp"

namespace gpa::simd::detail {

/// Portable scalar reference arm (simd_scalar.cpp — compiled with
/// auto-vectorization off so the differential baseline is honest).
extern const VecOps kScalarOps;

#if defined(GPA_SIMD_AVX2)
/// Bitwise AVX2 arm (simd_avx2.cpp — built with -mavx2 -mf16c and
/// -ffp-contract=off; pinned bit-identical to the scalar arm).
extern const VecOps kAvx2Ops;
#endif

#if defined(GPA_SIMD_AVX2_FMA)
/// Relaxed AVX2+FMA arm (simd_avx2_fma.cpp — -mavx2 -mfma -mf16c,
/// explicit fused multiply-adds; ULP-bounded vs scalar).
extern const VecOps kAvx2FmaOps;
#endif

#if defined(GPA_SIMD_AVX512)
/// Relaxed AVX-512 arm (simd_avx512.cpp — -mavx512f, 16 lanes with FMA;
/// ULP-bounded vs scalar).
extern const VecOps kAvx512Ops;
#endif

}  // namespace gpa::simd::detail
