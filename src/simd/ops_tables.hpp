#pragma once
// Internal linkage point between the dispatcher and the per-arm
// translation units. Not part of the public simd API.

#include "simd/simd.hpp"

namespace gpa::simd::detail {

/// Portable scalar reference arm (simd_scalar.cpp — compiled with
/// auto-vectorization off so the differential baseline is honest).
extern const VecOps kScalarOps;

#if defined(GPA_SIMD_AVX2)
/// AVX2 arm (simd_avx2.cpp — the only TU built with -mavx2).
extern const VecOps kAvx2Ops;
#endif

}  // namespace gpa::simd::detail
