#pragma once
// SIMD dispatch level. Lives in its own dependency-free header so
// parallel/exec_policy.hpp can carry a per-call override without pulling
// the vector-ops layer into every translation unit.

#include <cstdint>

namespace gpa {

/// Which arm of the SIMD dispatch a call should take. Levels above
/// Scalar form a total order (each adds ISA requirements on top of the
/// previous); a request the build or CPU cannot honour is silently
/// clamped DOWN to the best available level at or below it (check
/// simd::resolve() to detect the clamp).
///  * Auto    — resolve at runtime: forced level, then the GPA_SIMD env
///              var if set, otherwise the best level this build + CPU
///              supports.
///  * Scalar  — portable scalar reference path (always compiled).
///              Bitwise-pinned arm.
///  * Avx2    — 8-lane AVX2 + F16C, no FMA contraction. Bitwise-pinned:
///              bit-identical to Scalar by the lane contract.
///  * Avx2Fma — 8-lane AVX2 using FMA in the dot/accumulate kernels.
///              RELAXED arm: parity vs Scalar is ULP-bounded, not
///              bitwise (fused multiply-adds round once, not twice).
///  * Avx512  — 16-lane AVX-512F with FMA. RELAXED arm (wider lanes
///              reassociate every reduction).
enum class SimdLevel : std::uint8_t {
  Auto,
  Scalar,
  Avx2,
  Avx2Fma,
  Avx512,
};

}  // namespace gpa
