#pragma once
// SIMD dispatch level. Lives in its own dependency-free header so
// parallel/exec_policy.hpp can carry a per-call override without pulling
// the vector-ops layer into every translation unit.

#include <cstdint>

namespace gpa {

/// Which arm of the SIMD dispatch a call should take.
///  * Auto   — resolve at runtime: GPA_SIMD env var if set, otherwise the
///             best level this build + CPU supports.
///  * Scalar — the portable scalar reference path (always compiled).
///  * Avx2   — the AVX2 path; silently clamped to Scalar when the build
///             or the CPU lacks it (check simd::resolve() to detect).
enum class SimdLevel : std::uint8_t {
  Auto,
  Scalar,
  Avx2,
};

}  // namespace gpa
