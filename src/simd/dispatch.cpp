// Runtime CPU-feature dispatch for the SIMD layer: cpuid probe, GPA_SIMD
// environment override, process-wide forced level for tests/benchmarks,
// and the table lookup every kernel resolves through.

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "simd/ops_tables.hpp"

namespace gpa::simd {

namespace {

/// Forced level (tests/benchmarks); Auto means "not forced".
std::atomic<SimdLevel> g_forced{SimdLevel::Auto};

/// GPA_SIMD environment variable, parsed once. Unrecognised values fall
/// back to Auto (the knob is advisory, never fatal).
SimdLevel env_level() noexcept {
  static const SimdLevel cached = [] {
    const char* raw = std::getenv("GPA_SIMD");
    if (raw == nullptr) return SimdLevel::Auto;
    std::string value(raw);
    for (auto& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (value == "scalar") return SimdLevel::Scalar;
    if (value == "avx2") return SimdLevel::Avx2;
    return SimdLevel::Auto;  // "", "auto", or anything unrecognised
  }();
  return cached;
}

bool avx2_available() noexcept { return compiled_with_avx2() && cpu_supports_avx2(); }

}  // namespace

bool cpu_supports_avx2() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool compiled_with_avx2() noexcept {
#if defined(GPA_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

void force_level(SimdLevel level) noexcept { g_forced.store(level, std::memory_order_relaxed); }

SimdLevel active_level() noexcept {
  SimdLevel requested = g_forced.load(std::memory_order_relaxed);
  if (requested == SimdLevel::Auto) requested = env_level();
  if (requested == SimdLevel::Auto) requested = SimdLevel::Avx2;  // best available
  if (requested == SimdLevel::Avx2 && !avx2_available()) return SimdLevel::Scalar;
  return requested;
}

SimdLevel resolve(SimdLevel requested) noexcept {
  if (requested == SimdLevel::Auto) return active_level();
  if (requested == SimdLevel::Avx2 && !avx2_available()) return SimdLevel::Scalar;
  return requested;
}

const VecOps& ops(SimdLevel level) noexcept {
#if defined(GPA_SIMD_AVX2)
  if (resolve(level) == SimdLevel::Avx2) return detail::kAvx2Ops;
#else
  (void)level;
#endif
  return detail::kScalarOps;
}

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (avx2_available()) levels.push_back(SimdLevel::Avx2);
  return levels;
}

std::string_view level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Auto: return "auto";
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
  }
  return "?";
}

std::string_view simd_backend() noexcept { return level_name(active_level()); }

}  // namespace gpa::simd
