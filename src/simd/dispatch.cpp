// Runtime CPU-feature dispatch for the SIMD layer: cpuid probe, GPA_SIMD
// environment override, process-wide forced level for tests/benchmarks,
// and the table lookup every kernel resolves through.
//
// Clamp semantics: levels are totally ordered (Scalar < Avx2 < Avx2Fma
// < Avx512) and a request the build or CPU cannot honour resolves to
// the BEST AVAILABLE level at or below it — e.g. Avx512 on an AVX2-only
// host runs the avx2-fma arm if compiled, else avx2, else scalar. The
// clamp is silent (the knob is advisory, never fatal); an unrecognised
// GPA_SIMD spelling is the one case that warns, once, because it means
// the operator asked for something that does not exist at all.

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "simd/ops_tables.hpp"

namespace gpa::simd {

namespace {

/// Forced level (tests/benchmarks); Auto means "not forced".
std::atomic<SimdLevel> g_forced{SimdLevel::Auto};

/// GPA_SIMD environment variable, parsed once. An unrecognised value
/// falls back to Auto WITH a one-time stderr warning — silently running
/// scalar because of a typo ("axv512") would be the worst failure mode
/// for a performance knob.
SimdLevel env_level() noexcept {
  static const SimdLevel cached = [] {
    const char* raw = std::getenv("GPA_SIMD");
    if (raw == nullptr) return SimdLevel::Auto;
    SimdLevel parsed = SimdLevel::Auto;
    if (!parse_level(raw, parsed)) {
      std::fprintf(stderr,
                   "gpa: unrecognised GPA_SIMD value \"%s\" "
                   "(expected scalar|avx2|avx2-fma|avx512|auto); using auto\n",
                   raw);
      return SimdLevel::Auto;
    }
    return parsed;
  }();
  return cached;
}

bool level_available(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return true;
    case SimdLevel::Avx2: return compiled_with_avx2() && cpu_supports_avx2();
    case SimdLevel::Avx2Fma: return compiled_with_avx2_fma() && cpu_supports_avx2_fma();
    case SimdLevel::Avx512: return compiled_with_avx512() && cpu_supports_avx512();
    case SimdLevel::Auto: break;
  }
  return false;
}

/// The ordered axis the clamp walks (descending).
constexpr SimdLevel kDescending[] = {SimdLevel::Avx512, SimdLevel::Avx2Fma, SimdLevel::Avx2,
                                     SimdLevel::Scalar};

/// Best available level at or below `cap` (Scalar is always available,
/// so this never fails).
SimdLevel clamp_down(SimdLevel cap) noexcept {
  for (const SimdLevel l : kDescending) {
    if (static_cast<std::uint8_t>(l) <= static_cast<std::uint8_t>(cap) && level_available(l)) {
      return l;
    }
  }
  return SimdLevel::Scalar;
}

}  // namespace

bool cpu_supports_avx2() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
  // The avx2 arm's half ops need F16C. Every AVX2 CPU ever shipped has
  // it, but probe honestly anyway.
  return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("f16c") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx2_fma() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
  return cpu_supports_avx2() && __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

bool compiled_with_avx2() noexcept {
#if defined(GPA_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool compiled_with_avx2_fma() noexcept {
#if defined(GPA_SIMD_AVX2_FMA)
  return true;
#else
  return false;
#endif
}

bool compiled_with_avx512() noexcept {
#if defined(GPA_SIMD_AVX512)
  return true;
#else
  return false;
#endif
}

void force_level(SimdLevel level) noexcept { g_forced.store(level, std::memory_order_relaxed); }

SimdLevel active_level() noexcept {
  SimdLevel requested = g_forced.load(std::memory_order_relaxed);
  if (requested == SimdLevel::Auto) requested = env_level();
  if (requested == SimdLevel::Auto) requested = SimdLevel::Avx512;  // best available
  return clamp_down(requested);
}

SimdLevel resolve(SimdLevel requested) noexcept {
  if (requested == SimdLevel::Auto) return active_level();
  return clamp_down(requested);
}

bool is_bitwise_level(SimdLevel level) noexcept {
  const SimdLevel r = resolve(level);
  return r == SimdLevel::Scalar || r == SimdLevel::Avx2;
}

const VecOps& ops(SimdLevel level) noexcept {
  switch (resolve(level)) {
#if defined(GPA_SIMD_AVX512)
    case SimdLevel::Avx512: return detail::kAvx512Ops;
#endif
#if defined(GPA_SIMD_AVX2_FMA)
    case SimdLevel::Avx2Fma: return detail::kAvx2FmaOps;
#endif
#if defined(GPA_SIMD_AVX2)
    case SimdLevel::Avx2: return detail::kAvx2Ops;
#endif
    default: return detail::kScalarOps;
  }
}

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel l :
       {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx2Fma, SimdLevel::Avx512}) {
    if (level_available(l)) levels.push_back(l);
  }
  return levels;
}

std::vector<SimdLevel> compiled_levels() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (compiled_with_avx2()) levels.push_back(SimdLevel::Avx2);
  if (compiled_with_avx2_fma()) levels.push_back(SimdLevel::Avx2Fma);
  if (compiled_with_avx512()) levels.push_back(SimdLevel::Avx512);
  return levels;
}

std::string_view level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Auto: return "auto";
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx2Fma: return "avx2-fma";
    case SimdLevel::Avx512: return "avx512";
  }
  return "?";
}

bool parse_level(std::string_view name, SimdLevel& out) noexcept {
  std::string value(name);
  for (auto& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (value.empty() || value == "auto") {
    out = SimdLevel::Auto;
  } else if (value == "scalar") {
    out = SimdLevel::Scalar;
  } else if (value == "avx2") {
    out = SimdLevel::Avx2;
  } else if (value == "avx2-fma" || value == "avx2fma" || value == "fma") {
    out = SimdLevel::Avx2Fma;
  } else if (value == "avx512") {
    out = SimdLevel::Avx512;
  } else {
    return false;
  }
  return true;
}

std::string_view simd_backend() noexcept { return level_name(active_level()); }

}  // namespace gpa::simd
