// AVX2 arm of the SIMD dispatch — the only translation unit compiled
// with -mavx2 (and -ffp-contract=off: the mul/add pairs below must not
// be fused into FMAs, or the arm would diverge from the scalar lane
// contract in simd.hpp). Tails are handled with masked loads/stores, so
// no lane ever touches memory past n and ASan stays quiet.

#if !defined(GPA_SIMD_AVX2)
#error "simd_avx2.cpp must only be compiled when GPA_SIMD_AVX2 is defined"
#endif

#include <immintrin.h>

#include <limits>

#include "simd/ops_tables.hpp"

namespace gpa::simd::detail {
namespace {

constexpr Index kLanes = 8;

/// Lane mask for an r-element tail (1 <= r <= 7): lanes < r are enabled
/// (sign bit set, as maskload/maskstore/blendv require).
inline __m256i tail_mask(Index r) noexcept {
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(r)), lane_ids);
}

/// The fixed pairwise tree of the lane contract: t = lo ⊕ hi, then the
/// {0,2}/{1,3} pair, then the final pair.
inline float reduce_tree_add(__m256 s) noexcept {
  const __m128 lo = _mm256_castps256_ps128(s);
  const __m128 hi = _mm256_extractf128_ps(s, 1);
  const __m128 t = _mm_add_ps(lo, hi);
  const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
  return _mm_cvtss_f32(_mm_add_ss(u, _mm_shuffle_ps(u, u, 0x1)));
}

inline float reduce_tree_max(__m256 s) noexcept {
  const __m128 lo = _mm256_castps256_ps128(s);
  const __m128 hi = _mm256_extractf128_ps(s, 1);
  const __m128 t = _mm_max_ps(lo, hi);
  const __m128 u = _mm_max_ps(t, _mm_movehl_ps(t, t));
  return _mm_cvtss_f32(_mm_max_ss(u, _mm_shuffle_ps(u, u, 0x1)));
}

float dot(const float* a, const float* b, Index n) noexcept {
  __m256 s = _mm256_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 av = _mm256_loadu_ps(a + base);
    const __m256 bv = _mm256_loadu_ps(b + base);
    s = _mm256_add_ps(s, _mm256_mul_ps(av, bv));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 av = _mm256_maskload_ps(a + base, mask);
    const __m256 bv = _mm256_maskload_ps(b + base, mask);
    s = _mm256_add_ps(s, _mm256_mul_ps(av, bv));  // dead lanes add +0.0f
  }
  return reduce_tree_add(s);
}

void axpby(float* acc, float alpha, float beta, const float* v, Index n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 accv = _mm256_loadu_ps(acc + base);
    const __m256 vv = _mm256_loadu_ps(v + base);
    _mm256_storeu_ps(acc + base,
                     _mm256_add_ps(_mm256_mul_ps(accv, va), _mm256_mul_ps(vb, vv)));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 accv = _mm256_maskload_ps(acc + base, mask);
    const __m256 vv = _mm256_maskload_ps(v + base, mask);
    _mm256_maskstore_ps(acc + base, mask,
                        _mm256_add_ps(_mm256_mul_ps(accv, va), _mm256_mul_ps(vb, vv)));
  }
}

void axpy(float* acc, float beta, const float* v, Index n) noexcept {
  const __m256 vb = _mm256_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 accv = _mm256_loadu_ps(acc + base);
    const __m256 vv = _mm256_loadu_ps(v + base);
    _mm256_storeu_ps(acc + base, _mm256_add_ps(accv, _mm256_mul_ps(vb, vv)));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 accv = _mm256_maskload_ps(acc + base, mask);
    const __m256 vv = _mm256_maskload_ps(v + base, mask);
    _mm256_maskstore_ps(acc + base, mask, _mm256_add_ps(accv, _mm256_mul_ps(vb, vv)));
  }
}

void scale(float* x, float s, Index n) noexcept {
  const __m256 vs = _mm256_set1_ps(s);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    _mm256_storeu_ps(x + base, _mm256_mul_ps(_mm256_loadu_ps(x + base), vs));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 xv = _mm256_maskload_ps(x + base, mask);
    _mm256_maskstore_ps(x + base, mask, _mm256_mul_ps(xv, vs));
  }
}

float reduce_max(const float* x, Index n) noexcept {
  __m256 s = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_max_ps(s, _mm256_loadu_ps(x + base));
  }
  if (base < n) {
    // Dead tail lanes must see the max identity (-inf), not the 0.0f a
    // masked load yields — the all-masked-row convention depends on it.
    const __m256i mask = tail_mask(n - base);
    const __m256 loaded = _mm256_maskload_ps(x + base, mask);
    const __m256 neg_inf = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    s = _mm256_max_ps(s, _mm256_blendv_ps(neg_inf, loaded, _mm256_castsi256_ps(mask)));
  }
  return reduce_tree_max(s);
}

float reduce_sum(const float* x, Index n) noexcept {
  __m256 s = _mm256_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_add_ps(s, _mm256_loadu_ps(x + base));
  }
  if (base < n) {
    s = _mm256_add_ps(s, _mm256_maskload_ps(x + base, tail_mask(n - base)));
  }
  return reduce_tree_add(s);
}

}  // namespace

const VecOps kAvx2Ops = {dot, axpby, axpy, scale, reduce_max, reduce_sum};

}  // namespace gpa::simd::detail
