// Relaxed AVX2+FMA arm of the SIMD dispatch — compiled with
// -mavx2 -mfma -mf16c. Same 8-lane shape, masked tails, and pairwise
// reduction tree as the bitwise avx2 arm, but every multiply-accumulate
// is an explicit _mm256_fmadd_ps: a·b+c rounds ONCE where the lane
// contract rounds twice, so this arm is deterministic but only
// ULP-bounded against the scalar reference (tests/test_simd_parity.cpp
// derives and pins the bounds). scale / reduce_max / reduce_sum contain
// no mul+add pairs and remain bit-identical to the bitwise arms.

#if !defined(GPA_SIMD_AVX2_FMA)
#error "simd_avx2_fma.cpp must only be compiled when GPA_SIMD_AVX2_FMA is defined"
#endif

#include <immintrin.h>

#include <cstring>
#include <limits>

#include "simd/ops_tables.hpp"

namespace gpa::simd::detail {
namespace {

constexpr Index kLanes = 8;

inline __m256i tail_mask(Index r) noexcept {
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(r)), lane_ids);
}

inline float reduce_tree_add(__m256 s) noexcept {
  const __m128 lo = _mm256_castps256_ps128(s);
  const __m128 hi = _mm256_extractf128_ps(s, 1);
  const __m128 t = _mm_add_ps(lo, hi);
  const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
  return _mm_cvtss_f32(_mm_add_ss(u, _mm_shuffle_ps(u, u, 0x1)));
}

inline float reduce_tree_max(__m256 s) noexcept {
  const __m128 lo = _mm256_castps256_ps128(s);
  const __m128 hi = _mm256_extractf128_ps(s, 1);
  const __m128 t = _mm_max_ps(lo, hi);
  const __m128 u = _mm_max_ps(t, _mm_movehl_ps(t, t));
  return _mm_cvtss_f32(_mm_max_ss(u, _mm_shuffle_ps(u, u, 0x1)));
}

inline __m256 load_h8(const half_t* p) noexcept {
  __m128i raw;
  std::memcpy(&raw, p, sizeof raw);
  return _mm256_cvtph_ps(raw);
}

inline __m256 load_h_tail(const half_t* p, Index r) noexcept {
  alignas(16) std::uint16_t buf[8] = {};
  std::memcpy(buf, p, static_cast<std::size_t>(r) * sizeof(std::uint16_t));
  return _mm256_cvtph_ps(_mm_load_si128(reinterpret_cast<const __m128i*>(buf)));
}

float dot(const float* a, const float* b, Index n) noexcept {
  __m256 s = _mm256_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_fmadd_ps(_mm256_loadu_ps(a + base), _mm256_loadu_ps(b + base), s);
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 av = _mm256_maskload_ps(a + base, mask);
    const __m256 bv = _mm256_maskload_ps(b + base, mask);
    s = _mm256_fmadd_ps(av, bv, s);  // dead lanes contribute fma(0,0,s) = s
  }
  return reduce_tree_add(s);
}

void axpby(float* acc, float alpha, float beta, const float* v, Index n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 accv = _mm256_loadu_ps(acc + base);
    const __m256 vv = _mm256_loadu_ps(v + base);
    _mm256_storeu_ps(acc + base, _mm256_fmadd_ps(accv, va, _mm256_mul_ps(vb, vv)));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 accv = _mm256_maskload_ps(acc + base, mask);
    const __m256 vv = _mm256_maskload_ps(v + base, mask);
    _mm256_maskstore_ps(acc + base, mask, _mm256_fmadd_ps(accv, va, _mm256_mul_ps(vb, vv)));
  }
}

void axpy(float* acc, float beta, const float* v, Index n) noexcept {
  const __m256 vb = _mm256_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 accv = _mm256_loadu_ps(acc + base);
    _mm256_storeu_ps(acc + base, _mm256_fmadd_ps(vb, _mm256_loadu_ps(v + base), accv));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 accv = _mm256_maskload_ps(acc + base, mask);
    const __m256 vv = _mm256_maskload_ps(v + base, mask);
    _mm256_maskstore_ps(acc + base, mask, _mm256_fmadd_ps(vb, vv, accv));
  }
}

void scale(float* x, float s, Index n) noexcept {
  const __m256 vs = _mm256_set1_ps(s);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    _mm256_storeu_ps(x + base, _mm256_mul_ps(_mm256_loadu_ps(x + base), vs));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 xv = _mm256_maskload_ps(x + base, mask);
    _mm256_maskstore_ps(x + base, mask, _mm256_mul_ps(xv, vs));
  }
}

float reduce_max(const float* x, Index n) noexcept {
  __m256 s = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_max_ps(s, _mm256_loadu_ps(x + base));
  }
  if (base < n) {
    const __m256i mask = tail_mask(n - base);
    const __m256 loaded = _mm256_maskload_ps(x + base, mask);
    const __m256 neg_inf = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    s = _mm256_max_ps(s, _mm256_blendv_ps(neg_inf, loaded, _mm256_castsi256_ps(mask)));
  }
  return reduce_tree_max(s);
}

float reduce_sum(const float* x, Index n) noexcept {
  __m256 s = _mm256_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_add_ps(s, _mm256_loadu_ps(x + base));
  }
  if (base < n) {
    s = _mm256_add_ps(s, _mm256_maskload_ps(x + base, tail_mask(n - base)));
  }
  return reduce_tree_add(s);
}

float dot_h(const half_t* a, const half_t* b, Index n) noexcept {
  __m256 s = _mm256_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_fmadd_ps(load_h8(a + base), load_h8(b + base), s);
  }
  if (base < n) {
    const Index r = n - base;
    s = _mm256_fmadd_ps(load_h_tail(a + base, r), load_h_tail(b + base, r), s);
  }
  return reduce_tree_add(s);
}

float dot_fh(const float* a, const half_t* b, Index n) noexcept {
  __m256 s = _mm256_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm256_fmadd_ps(_mm256_loadu_ps(a + base), load_h8(b + base), s);
  }
  if (base < n) {
    const Index r = n - base;
    const __m256 av = _mm256_maskload_ps(a + base, tail_mask(r));
    s = _mm256_fmadd_ps(av, load_h_tail(b + base, r), s);
  }
  return reduce_tree_add(s);
}

void axpby_h(float* acc, float alpha, float beta, const half_t* v, Index n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 accv = _mm256_loadu_ps(acc + base);
    _mm256_storeu_ps(acc + base,
                     _mm256_fmadd_ps(accv, va, _mm256_mul_ps(vb, load_h8(v + base))));
  }
  if (base < n) {
    const Index r = n - base;
    const __m256i mask = tail_mask(r);
    const __m256 accv = _mm256_maskload_ps(acc + base, mask);
    _mm256_maskstore_ps(acc + base, mask,
                        _mm256_fmadd_ps(accv, va, _mm256_mul_ps(vb, load_h_tail(v + base, r))));
  }
}

void axpy_h(float* acc, float beta, const half_t* v, Index n) noexcept {
  const __m256 vb = _mm256_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256 accv = _mm256_loadu_ps(acc + base);
    _mm256_storeu_ps(acc + base, _mm256_fmadd_ps(vb, load_h8(v + base), accv));
  }
  if (base < n) {
    const Index r = n - base;
    const __m256i mask = tail_mask(r);
    const __m256 accv = _mm256_maskload_ps(acc + base, mask);
    _mm256_maskstore_ps(acc + base, mask,
                        _mm256_fmadd_ps(vb, load_h_tail(v + base, r), accv));
  }
}

void h2f(float* dst, const half_t* src, Index n) noexcept {
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    _mm256_storeu_ps(dst + base, load_h8(src + base));
  }
  if (base < n) {
    const Index r = n - base;
    _mm256_maskstore_ps(dst + base, tail_mask(r), load_h_tail(src + base, r));
  }
}

void f2h(half_t* dst, const float* src, Index n) noexcept {
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + base), _MM_FROUND_TO_NEAREST_INT);
    std::memcpy(static_cast<void*>(dst + base), &h, sizeof h);
  }
  if (base < n) {
    const Index r = n - base;
    const __m256 v = _mm256_maskload_ps(src + base, tail_mask(r));
    alignas(16) std::uint16_t buf[8];
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_store_si128(reinterpret_cast<__m128i*>(buf), h);
    std::memcpy(static_cast<void*>(dst + base), buf,
                static_cast<std::size_t>(r) * sizeof(std::uint16_t));
  }
}

}  // namespace

const VecOps kAvx2FmaOps = {dot,   axpby,  axpy,    scale,  reduce_max, reduce_sum,
                            dot_h, dot_fh, axpby_h, axpy_h, h2f,        f2h};

}  // namespace gpa::simd::detail
