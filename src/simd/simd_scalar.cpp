// Scalar reference arm of the SIMD dispatch. This file doubles as the
// executable specification of the lane contract documented in simd.hpp:
// eight partial accumulators in lane order, a masked tail block, and a
// fixed pairwise reduction tree — exactly the data flow of the AVX2 arm,
// one lane at a time. The CMake rules compile this translation unit with
// auto-vectorization and FP contraction disabled, so "scalar" is a true
// scalar baseline for the differential harness and the bench trajectory.

#include <limits>

#include "simd/ops_tables.hpp"

namespace gpa::simd::detail {
namespace {

constexpr int kLanes = 8;

/// Mirror of x86 MAXPS: a > b ? a : b (returns b on unordered and for
/// equal/signed-zero operands, matching the instruction).
inline float maxps(float a, float b) noexcept { return a > b ? a : b; }

inline float reduce_tree_add(const float* s) noexcept {
  const float t0 = s[0] + s[4];
  const float t1 = s[1] + s[5];
  const float t2 = s[2] + s[6];
  const float t3 = s[3] + s[7];
  const float u0 = t0 + t2;
  const float u1 = t1 + t3;
  return u0 + u1;
}

inline float reduce_tree_max(const float* s) noexcept {
  const float t0 = maxps(s[0], s[4]);
  const float t1 = maxps(s[1], s[5]);
  const float t2 = maxps(s[2], s[6]);
  const float t3 = maxps(s[3], s[7]);
  const float u0 = maxps(t0, t2);
  const float u1 = maxps(t1, t3);
  return maxps(u0, u1);
}

float dot(const float* a, const float* b, Index n) noexcept {
  float s[kLanes] = {};
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    for (int l = 0; l < kLanes; ++l) s[l] += a[base + l] * b[base + l];
  }
  if (base < n) {
    // Masked tail: dead lanes contribute an explicit +0.0f, like the
    // AVX2 arm's masked load (which yields zero products there).
    for (int l = 0; l < kLanes; ++l) {
      s[l] += base + l < n ? a[base + l] * b[base + l] : 0.0f;
    }
  }
  return reduce_tree_add(s);
}

void axpby(float* acc, float alpha, float beta, const float* v, Index n) noexcept {
  for (Index i = 0; i < n; ++i) acc[i] = acc[i] * alpha + beta * v[i];
}

void axpy(float* acc, float beta, const float* v, Index n) noexcept {
  for (Index i = 0; i < n; ++i) acc[i] = acc[i] + beta * v[i];
}

void scale(float* x, float s, Index n) noexcept {
  for (Index i = 0; i < n; ++i) x[i] = x[i] * s;
}

float reduce_max(const float* x, Index n) noexcept {
  float s[kLanes];
  for (int l = 0; l < kLanes; ++l) s[l] = -std::numeric_limits<float>::infinity();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    for (int l = 0; l < kLanes; ++l) s[l] = maxps(s[l], x[base + l]);
  }
  if (base < n) {
    // Dead tail lanes see -inf (the max identity), like the AVX2 arm's
    // blend of the masked load.
    for (int l = 0; l < kLanes; ++l) {
      s[l] = maxps(s[l], base + l < n ? x[base + l]
                                      : -std::numeric_limits<float>::infinity());
    }
  }
  return reduce_tree_max(s);
}

float reduce_sum(const float* x, Index n) noexcept {
  float s[kLanes] = {};
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    for (int l = 0; l < kLanes; ++l) s[l] += x[base + l];
  }
  if (base < n) {
    for (int l = 0; l < kLanes; ++l) s[l] += base + l < n ? x[base + l] : 0.0f;
  }
  return reduce_tree_add(s);
}

// --- fp16 storage ops ------------------------------------------------
// Widening binary16 -> binary32 is exact (every half value is a float),
// so these follow the same 8-lane contract as the float ops over the
// widened values and stay bit-identical to the AVX2 arm's F16C path:
// VCVTPH2PS performs the identical exact conversion.

float dot_h(const half_t* a, const half_t* b, Index n) noexcept {
  float s[kLanes] = {};
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      s[l] += static_cast<float>(a[base + l]) * static_cast<float>(b[base + l]);
    }
  }
  if (base < n) {
    for (int l = 0; l < kLanes; ++l) {
      s[l] += base + l < n
                  ? static_cast<float>(a[base + l]) * static_cast<float>(b[base + l])
                  : 0.0f;
    }
  }
  return reduce_tree_add(s);
}

float dot_fh(const float* a, const half_t* b, Index n) noexcept {
  float s[kLanes] = {};
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    for (int l = 0; l < kLanes; ++l) s[l] += a[base + l] * static_cast<float>(b[base + l]);
  }
  if (base < n) {
    for (int l = 0; l < kLanes; ++l) {
      s[l] += base + l < n ? a[base + l] * static_cast<float>(b[base + l]) : 0.0f;
    }
  }
  return reduce_tree_add(s);
}

void axpby_h(float* acc, float alpha, float beta, const half_t* v, Index n) noexcept {
  for (Index i = 0; i < n; ++i) acc[i] = acc[i] * alpha + beta * static_cast<float>(v[i]);
}

void axpy_h(float* acc, float beta, const half_t* v, Index n) noexcept {
  for (Index i = 0; i < n; ++i) acc[i] = acc[i] + beta * static_cast<float>(v[i]);
}

void h2f(float* dst, const half_t* src, Index n) noexcept {
  for (Index i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

void f2h(half_t* dst, const float* src, Index n) noexcept {
  for (Index i = 0; i < n; ++i) dst[i] = half_t(src[i]);
}

}  // namespace

const VecOps kScalarOps = {dot,   axpby,  axpy,   scale,  reduce_max, reduce_sum,
                           dot_h, dot_fh, axpby_h, axpy_h, h2f,        f2h};

}  // namespace gpa::simd::detail
