#pragma once
// Runtime-dispatched vector primitives for the d-dimension inner loops.
//
// Every hot kernel reduces to four row operations: a Q·K dot product, the
// online-softmax accumulator update acc = alpha*acc + beta*v, a rescale,
// and the max/sum reductions of the softmax passes. This layer provides
// those primitives behind a function-pointer table with four arms:
//
//  * scalar   — the always-compiled portable reference (compiled with
//    auto-vectorization disabled so "scalar" means scalar),
//  * avx2     — 8-lane AVX2 + F16C intrinsics, no FMA contraction,
//    compiled into a dedicated translation unit with -mavx2 -mf16c,
//  * avx2-fma — the same 8-lane shape with fused multiply-adds in the
//    dot / accumulate kernels (-mavx2 -mfma -mf16c), and
//  * avx512   — 16-lane AVX-512F with FMA (-mavx512f), behind the
//    GPA_ENABLE_AVX512 CMake gate.
// The library itself stays runnable on any x86-64; arms are picked at
// runtime (cpuid + GPA_SIMD env + ExecPolicy::simd), and an unavailable
// request clamps down to the best level at or below it.
//
// PARITY CLASSES (load-bearing for the differential test harness):
//
// BITWISE arms — scalar and avx2. Both compute reductions under THE
// LANE CONTRACT: eight partial accumulators in lane order (lane l
// accumulates elements l, l+8, l+16, ...), a masked tail block, and the
// same pairwise reduction tree
//     t_l = op(s_l, s_{l+4});  u_0 = op(t_0, t_2); u_1 = op(t_1, t_3);
//     result = op(u_0, u_1)
// with no FMA contraction anywhere (both units are built with
// -ffp-contract=off). Element-wise ops use the same expression shape and
// operand order in both arms. Consequence: the scalar and AVX2 arms are
// bit-identical on every input, which tests/test_simd_parity.cpp pins
// down and which keeps the bit-exact gates (decode-vs-kernel, cluster
// oracle, exec-matrix determinism) independent of the dispatch decision
// between the bitwise arms.
//
// RELAXED arms — avx2-fma and avx512. An FMA rounds a·b+c once where
// the contract rounds twice, and 16 lanes reassociate every reduction,
// so these arms CANNOT be bitwise vs scalar; each is instead (a) still
// deterministic — the same inputs on the same arm give the same bits,
// run-to-run and schedule-to-schedule — and (b) ULP-bounded against the
// scalar reference, with bounds derived per reduction length in
// tests/test_simd_parity.cpp. Bit-exact gates must run on a bitwise arm
// (they force one); throughput paths take the relaxed arms by default.
//
// FP16 ops: arithmetic is always float — half values are widened on
// load (exactly: binary16 -> binary32 is lossless, in software and in
// VCVTPH2PS) and accumulated in fp32, so the half dot/accumulate ops on
// the bitwise arms are ALSO bit-identical to each other. f2h narrows
// with round-to-nearest-even, matching common/half.hpp's software
// converter bit-for-bit (test_half_exhaustive pins software == F16C).

#include <string_view>
#include <vector>

#include "common/half.hpp"
#include "common/types.hpp"
#include "simd/simd_level.hpp"

namespace gpa::simd {

/// The dispatch table. All pointers are non-null for every arm.
/// Reductions over n == 0 return the operation identity (0 for sum/dot,
/// -inf for max). NaN propagation in reduce_max follows x86 MAXPS
/// semantics ("a > b ? a : b" per lane) in every arm.
struct VecOps {
  /// Σ a[i]·b[i] under the lane contract.
  float (*dot)(const float* a, const float* b, Index n) noexcept;
  /// acc[i] = acc[i]·alpha + beta·v[i] (the online-softmax row update).
  void (*axpby)(float* acc, float alpha, float beta, const float* v, Index n) noexcept;
  /// acc[i] += beta·v[i] (rescale-free fast path when the max is unchanged).
  void (*axpy)(float* acc, float beta, const float* v, Index n) noexcept;
  /// x[i] *= s.
  void (*scale)(float* x, float s, Index n) noexcept;
  /// max over x under the lane contract; -inf for an empty range.
  float (*reduce_max)(const float* x, Index n) noexcept;
  /// Σ x[i] under the lane contract.
  float (*reduce_sum)(const float* x, Index n) noexcept;

  // --- fp16 storage ops (widen to float, compute in fp32) ------------
  /// Σ widen(a[i])·widen(b[i]) — the half-instantiation Q·K dot.
  float (*dot_h)(const half_t* a, const half_t* b, Index n) noexcept;
  /// Σ a[i]·widen(b[i]) — float query against half-width KV pages.
  float (*dot_fh)(const float* a, const half_t* b, Index n) noexcept;
  /// acc[i] = acc[i]·alpha + beta·widen(v[i]) (fp32 accumulator).
  void (*axpby_h)(float* acc, float alpha, float beta, const half_t* v, Index n) noexcept;
  /// acc[i] += beta·widen(v[i]).
  void (*axpy_h)(float* acc, float beta, const half_t* v, Index n) noexcept;
  /// dst[i] = widen(src[i]) (exact).
  void (*h2f)(float* dst, const half_t* src, Index n) noexcept;
  /// dst[i] = narrow(src[i]) (round-to-nearest-even; identical bits on
  /// every arm, so fp16 page payloads are dispatch-independent).
  void (*f2h)(half_t* dst, const float* src, Index n) noexcept;
};

/// CPUID says this machine can execute AVX2 + F16C (the avx2 arm's half
/// ops use VCVTPH2PS/VCVTPS2PH; every AVX2-era core ships F16C).
bool cpu_supports_avx2() noexcept;
/// CPUID: AVX2 + FMA + F16C (the avx2-fma arm's ISA set).
bool cpu_supports_avx2_fma() noexcept;
/// CPUID: AVX-512 Foundation.
bool cpu_supports_avx512() noexcept;

/// This build carries the corresponding translation unit.
bool compiled_with_avx2() noexcept;
bool compiled_with_avx2_fma() noexcept;
bool compiled_with_avx512() noexcept;

/// The level Auto resolves to right now: the forced level if one is set,
/// else the GPA_SIMD environment variable (scalar|avx2|avx2-fma|avx512|
/// auto, read once; an unrecognised value warns once on stderr and falls
/// back to Auto), else the best level available under build + CPU
/// support.
SimdLevel active_level() noexcept;

/// Clamp a requested level to what this build + CPU can run: the best
/// available level at or below the request (Scalar is always honoured;
/// Auto resolves via active_level()). The clamp is silent by design —
/// callers that must know pin `resolve(x) == x` explicitly.
SimdLevel resolve(SimdLevel requested) noexcept;

/// True for the arms pinned bit-identical to the scalar reference
/// (Scalar, Avx2); false for the ULP-bounded relaxed arms. Auto is
/// classified by what it currently resolves to.
bool is_bitwise_level(SimdLevel level) noexcept;

/// Dispatch table for a level (resolved first).
const VecOps& ops(SimdLevel level) noexcept;

/// Every level this build + CPU can actually run, Scalar first, in
/// ascending level order — THE canonical SIMD axis for tests and
/// benchmarks to iterate (new arms only need to be added here to enter
/// every matrix). Includes the relaxed arms: iterators that require
/// bitwise parity must filter with is_bitwise_level().
std::vector<SimdLevel> available_levels();

/// Every level this build compiled an arm for, whether or not this CPU
/// can run it (diagnostics: `gpa_cli version`).
std::vector<SimdLevel> compiled_levels();

/// Process-wide override for tests and benchmarks: beats the environment
/// variable until cleared with force_level(SimdLevel::Auto). Explicit
/// per-call levels (ExecPolicy::simd != Auto) are unaffected.
void force_level(SimdLevel level) noexcept;

/// "auto" / "scalar" / "avx2" / "avx2-fma" / "avx512".
std::string_view level_name(SimdLevel level) noexcept;

/// Parse a level name as level_name() and the GPA_SIMD env var spell it.
/// Returns false (and leaves `out` untouched) for unrecognised names —
/// the env path warns and falls back to Auto on that signal.
bool parse_level(std::string_view name, SimdLevel& out) noexcept;

/// Name of the level Auto currently resolves to — reported next to
/// parallel_backend() in diagnostics and stamped into bench records.
std::string_view simd_backend() noexcept;

}  // namespace gpa::simd
