#pragma once
// Runtime-dispatched vector primitives for the d-dimension inner loops.
//
// Every hot kernel reduces to four row operations: a Q·K dot product, the
// online-softmax accumulator update acc = alpha*acc + beta*v, a rescale,
// and the max/sum reductions of the softmax passes. This layer provides
// those primitives behind a function-pointer table with two arms:
//
//  * scalar — the always-compiled portable reference (compiled with
//    auto-vectorization disabled so "scalar" means scalar), and
//  * avx2   — 8-lane AVX2 intrinsics, compiled into a dedicated
//    translation unit with -mavx2 so the rest of the library still runs
//    on any x86-64.
//
// THE LANE CONTRACT (load-bearing for the differential test harness):
// both arms compute reductions with eight partial accumulators in lane
// order (lane l accumulates elements l, l+8, l+16, ...), a masked tail
// block, and the same pairwise reduction tree
//     t_l = op(s_l, s_{l+4});  u_0 = op(t_0, t_2); u_1 = op(t_1, t_3);
//     result = op(u_0, u_1)
// with no FMA contraction anywhere (the AVX2 unit is built with
// -ffp-contract=off). Element-wise ops use the same expression shape and
// operand order in both arms. Consequence: the scalar and AVX2 arms are
// bit-identical on every input, which tests/test_simd_parity.cpp pins
// down and which keeps the exec-matrix bitwise-determinism guarantees
// independent of the dispatch decision.

#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "simd/simd_level.hpp"

namespace gpa::simd {

/// The dispatch table. All pointers are non-null for both arms.
/// Reductions over n == 0 return the operation identity (0 for sum/dot,
/// -inf for max). NaN propagation in reduce_max follows x86 MAXPS
/// semantics ("a > b ? a : b" per lane) in both arms.
struct VecOps {
  /// Σ a[i]·b[i] under the lane contract.
  float (*dot)(const float* a, const float* b, Index n) noexcept;
  /// acc[i] = acc[i]·alpha + beta·v[i] (the online-softmax row update).
  void (*axpby)(float* acc, float alpha, float beta, const float* v, Index n) noexcept;
  /// acc[i] += beta·v[i] (rescale-free fast path when the max is unchanged).
  void (*axpy)(float* acc, float beta, const float* v, Index n) noexcept;
  /// x[i] *= s.
  void (*scale)(float* x, float s, Index n) noexcept;
  /// max over x under the lane contract; -inf for an empty range.
  float (*reduce_max)(const float* x, Index n) noexcept;
  /// Σ x[i] under the lane contract.
  float (*reduce_sum)(const float* x, Index n) noexcept;
};

/// CPUID says this machine can execute AVX2.
bool cpu_supports_avx2() noexcept;

/// This build carries the AVX2 translation unit (GPA_ENABLE_SIMD=ON on
/// an x86-64 GCC/Clang toolchain).
bool compiled_with_avx2() noexcept;

/// The level Auto resolves to right now: the forced level if one is set,
/// else the GPA_SIMD environment variable (scalar|avx2|auto, read once),
/// else the best level available, clamped to build + CPU support.
SimdLevel active_level() noexcept;

/// Clamp a requested level to what this build + CPU can run. Scalar is
/// always honoured; Avx2 falls back to Scalar when unavailable; Auto
/// resolves via active_level().
SimdLevel resolve(SimdLevel requested) noexcept;

/// Dispatch table for a level (resolved first).
const VecOps& ops(SimdLevel level) noexcept;

/// Every level this build + CPU can actually run, Scalar first — THE
/// canonical SIMD axis for tests and benchmarks to iterate (new arms
/// only need to be added here to enter every matrix).
std::vector<SimdLevel> available_levels();

/// Process-wide override for tests and benchmarks: beats the environment
/// variable until cleared with force_level(SimdLevel::Auto). Explicit
/// per-call levels (ExecPolicy::simd != Auto) are unaffected.
void force_level(SimdLevel level) noexcept;

/// "auto" / "scalar" / "avx2".
std::string_view level_name(SimdLevel level) noexcept;

/// Name of the level Auto currently resolves to — reported next to
/// parallel_backend() in diagnostics.
std::string_view simd_backend() noexcept;

}  // namespace gpa::simd
