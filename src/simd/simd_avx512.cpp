// Relaxed AVX-512 arm of the SIMD dispatch — the only translation unit
// compiled with -mavx512f, behind the GPA_ENABLE_AVX512 CMake gate.
// Sixteen lanes with explicit fused multiply-adds: both the lane count
// and the single-rounding FMAs reassociate every reduction relative to
// the 8-lane contract, so this arm is deterministic (same inputs, same
// bits, every run and schedule) but only ULP-bounded against the scalar
// reference (tests/test_simd_parity.cpp derives and pins the bounds).
//
// Tails use AVX-512's native per-lane masking (__mmask16 zero-masked
// loads / masked stores) for floats; half rows stage through a
// zero-padded stack block (VCVTPH2PS has no masked form on the __m256i
// source). Dead lanes hold the op identity: +0.0f for sums and dots,
// -inf for max.

#if !defined(GPA_SIMD_AVX512)
#error "simd_avx512.cpp must only be compiled when GPA_SIMD_AVX512 is defined"
#endif

#include <immintrin.h>

#include <cstring>
#include <limits>

#include "simd/ops_tables.hpp"

namespace gpa::simd::detail {
namespace {

constexpr Index kLanes = 16;

inline __mmask16 tail_mask(Index r) noexcept {
  return static_cast<__mmask16>((1u << static_cast<unsigned>(r)) - 1u);
}

/// Sixteen halfs -> sixteen floats (exact).
inline __m512 load_h16(const half_t* p) noexcept {
  __m256i raw;
  std::memcpy(&raw, p, sizeof raw);
  return _mm512_cvtph_ps(raw);
}

/// Tail load: r < 16 halfs through a zero-padded stack block (dead
/// lanes hold +0.0f).
inline __m512 load_h_tail(const half_t* p, Index r) noexcept {
  alignas(32) std::uint16_t buf[16] = {};
  std::memcpy(buf, p, static_cast<std::size_t>(r) * sizeof(std::uint16_t));
  return _mm512_cvtph_ps(_mm256_load_si256(reinterpret_cast<const __m256i*>(buf)));
}

float dot(const float* a, const float* b, Index n) noexcept {
  __m512 s = _mm512_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm512_fmadd_ps(_mm512_loadu_ps(a + base), _mm512_loadu_ps(b + base), s);
  }
  if (base < n) {
    const __mmask16 m = tail_mask(n - base);
    const __m512 av = _mm512_maskz_loadu_ps(m, a + base);
    const __m512 bv = _mm512_maskz_loadu_ps(m, b + base);
    s = _mm512_fmadd_ps(av, bv, s);  // dead lanes contribute fma(0,0,s) = s
  }
  return _mm512_reduce_add_ps(s);
}

void axpby(float* acc, float alpha, float beta, const float* v, Index n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 vb = _mm512_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m512 accv = _mm512_loadu_ps(acc + base);
    const __m512 vv = _mm512_loadu_ps(v + base);
    _mm512_storeu_ps(acc + base, _mm512_fmadd_ps(accv, va, _mm512_mul_ps(vb, vv)));
  }
  if (base < n) {
    const __mmask16 m = tail_mask(n - base);
    const __m512 accv = _mm512_maskz_loadu_ps(m, acc + base);
    const __m512 vv = _mm512_maskz_loadu_ps(m, v + base);
    _mm512_mask_storeu_ps(acc + base, m, _mm512_fmadd_ps(accv, va, _mm512_mul_ps(vb, vv)));
  }
}

void axpy(float* acc, float beta, const float* v, Index n) noexcept {
  const __m512 vb = _mm512_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m512 accv = _mm512_loadu_ps(acc + base);
    _mm512_storeu_ps(acc + base, _mm512_fmadd_ps(vb, _mm512_loadu_ps(v + base), accv));
  }
  if (base < n) {
    const __mmask16 m = tail_mask(n - base);
    const __m512 accv = _mm512_maskz_loadu_ps(m, acc + base);
    const __m512 vv = _mm512_maskz_loadu_ps(m, v + base);
    _mm512_mask_storeu_ps(acc + base, m, _mm512_fmadd_ps(vb, vv, accv));
  }
}

void scale(float* x, float s, Index n) noexcept {
  const __m512 vs = _mm512_set1_ps(s);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    _mm512_storeu_ps(x + base, _mm512_mul_ps(_mm512_loadu_ps(x + base), vs));
  }
  if (base < n) {
    const __mmask16 m = tail_mask(n - base);
    const __m512 xv = _mm512_maskz_loadu_ps(m, x + base);
    _mm512_mask_storeu_ps(x + base, m, _mm512_mul_ps(xv, vs));
  }
}

float reduce_max(const float* x, Index n) noexcept {
  const __m512 neg_inf = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  __m512 s = neg_inf;
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm512_max_ps(s, _mm512_loadu_ps(x + base));
  }
  if (base < n) {
    // Dead tail lanes must see the max identity (-inf), not 0.0f.
    const __mmask16 m = tail_mask(n - base);
    s = _mm512_max_ps(s, _mm512_mask_loadu_ps(neg_inf, m, x + base));
  }
  return _mm512_reduce_max_ps(s);
}

float reduce_sum(const float* x, Index n) noexcept {
  __m512 s = _mm512_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm512_add_ps(s, _mm512_loadu_ps(x + base));
  }
  if (base < n) {
    s = _mm512_add_ps(s, _mm512_maskz_loadu_ps(tail_mask(n - base), x + base));
  }
  return _mm512_reduce_add_ps(s);
}

float dot_h(const half_t* a, const half_t* b, Index n) noexcept {
  __m512 s = _mm512_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm512_fmadd_ps(load_h16(a + base), load_h16(b + base), s);
  }
  if (base < n) {
    const Index r = n - base;
    s = _mm512_fmadd_ps(load_h_tail(a + base, r), load_h_tail(b + base, r), s);
  }
  return _mm512_reduce_add_ps(s);
}

float dot_fh(const float* a, const half_t* b, Index n) noexcept {
  __m512 s = _mm512_setzero_ps();
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    s = _mm512_fmadd_ps(_mm512_loadu_ps(a + base), load_h16(b + base), s);
  }
  if (base < n) {
    const Index r = n - base;
    const __m512 av = _mm512_maskz_loadu_ps(tail_mask(r), a + base);
    s = _mm512_fmadd_ps(av, load_h_tail(b + base, r), s);
  }
  return _mm512_reduce_add_ps(s);
}

void axpby_h(float* acc, float alpha, float beta, const half_t* v, Index n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 vb = _mm512_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m512 accv = _mm512_loadu_ps(acc + base);
    _mm512_storeu_ps(acc + base,
                     _mm512_fmadd_ps(accv, va, _mm512_mul_ps(vb, load_h16(v + base))));
  }
  if (base < n) {
    const Index r = n - base;
    const __mmask16 m = tail_mask(r);
    const __m512 accv = _mm512_maskz_loadu_ps(m, acc + base);
    _mm512_mask_storeu_ps(
        acc + base, m, _mm512_fmadd_ps(accv, va, _mm512_mul_ps(vb, load_h_tail(v + base, r))));
  }
}

void axpy_h(float* acc, float beta, const half_t* v, Index n) noexcept {
  const __m512 vb = _mm512_set1_ps(beta);
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m512 accv = _mm512_loadu_ps(acc + base);
    _mm512_storeu_ps(acc + base, _mm512_fmadd_ps(vb, load_h16(v + base), accv));
  }
  if (base < n) {
    const Index r = n - base;
    const __mmask16 m = tail_mask(r);
    const __m512 accv = _mm512_maskz_loadu_ps(m, acc + base);
    _mm512_mask_storeu_ps(acc + base, m,
                          _mm512_fmadd_ps(vb, load_h_tail(v + base, r), accv));
  }
}

void h2f(float* dst, const half_t* src, Index n) noexcept {
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    _mm512_storeu_ps(dst + base, load_h16(src + base));
  }
  if (base < n) {
    const Index r = n - base;
    _mm512_mask_storeu_ps(dst + base, tail_mask(r), load_h_tail(src + base, r));
  }
}

void f2h(half_t* dst, const float* src, Index n) noexcept {
  Index base = 0;
  for (; base + kLanes <= n; base += kLanes) {
    const __m256i h = _mm512_cvtps_ph(_mm512_loadu_ps(src + base), _MM_FROUND_TO_NEAREST_INT);
    std::memcpy(static_cast<void*>(dst + base), &h, sizeof h);
  }
  if (base < n) {
    const Index r = n - base;
    const __m512 v = _mm512_maskz_loadu_ps(tail_mask(r), src + base);
    alignas(32) std::uint16_t buf[16];
    const __m256i h = _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), h);
    std::memcpy(static_cast<void*>(dst + base), buf,
                static_cast<std::size_t>(r) * sizeof(std::uint16_t));
  }
}

}  // namespace

const VecOps kAvx512Ops = {dot,   axpby,  axpy,    scale,  reduce_max, reduce_sum,
                           dot_h, dot_fh, axpby_h, axpy_h, h2f,        f2h};

}  // namespace gpa::simd::detail
