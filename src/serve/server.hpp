#pragma once
// The serving frontend: N worker threads pulling dynamically-formed
// batches off a bounded queue and dispatching them through the CSR /
// multi-head attention kernels.
//
//   clients ──submit()──▶ RequestQueue ──DynamicBatcher──▶ workers ──▶ kernels
//                 │                                           │
//                 └── admission control                       └── ServerStats
//                     (full / deadline / shutdown)                (latency tails,
//                                                                  occupancy)
//
// Parallelism is two-level, mirroring how a batch fills a device:
//   batch_policy — across batch items (one "SM" per sequence),
//   item_policy  — inside one kernel call (rows of one sequence).
// The two levels cannot multiply threads: the substrate's nesting guard
// (parallel/parallel_region.hpp) makes a kernel called from inside the
// cross-item loop run serial regardless of item_policy, so thread count
// is max(batch_policy, item_policy) threads, never the product. A
// batch of ONE item dispatches inline on the worker (no region opened),
// so item_policy's parallelism survives exactly when there is no
// cross-item parallelism to collide with. The defaults give each
// dispatch the whole machine across items and keep items serial inside,
// so batched and unbatched dispatch are directly comparable at equal
// worker count.
//
// Shutdown drains: close() stops admissions, workers finish everything
// already queued (in-flight requests complete Ok), then join. Requests
// that can no longer run (workers == 0, or raced past close) resolve to
// RejectedShutdown — every future is always satisfied.

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "kvcache/session_manager.hpp"
#include "parallel/exec_policy.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/server_stats.hpp"

namespace gpa::serve {

struct ServerConfig {
  int workers = 1;
  std::size_t queue_capacity = 1024;
  BatchPolicy policy{};
  /// Deadline-aware priority aging (see RequestQueue): a queued request
  /// whose deadline is within this of now is scheduled one priority
  /// class higher. 0 disables aging.
  std::chrono::microseconds age_threshold{0};
  /// Weighted fairness across priority classes (see RequestQueue):
  /// non-empty maps run smooth weighted round-robin over the classes
  /// present in the queue (class → weight, unlisted classes weigh 1);
  /// empty keeps strict highest-class-first.
  std::map<int, Index> fairness_weights{};
  /// Across-items dispatch (default: all cores, one item per grab).
  ExecPolicy batch_policy{0, 1, Schedule::Dynamic};
  /// Per-item kernel policy (default serial: items don't oversubscribe
  /// each other; raise it for few-large-request deployments).
  ExecPolicy item_policy = ExecPolicy::serial();
  /// Session backend for RequestKind::Decode. Without one, every decode
  /// request resolves to RejectedSession at admission (a server can opt
  /// out of stateful traffic entirely).
  std::shared_ptr<kvcache::SessionManager> sessions;
};

class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission: validates the request (throws InvalidArgument on
  /// contract violations — shape mismatch, missing mask), then either
  /// queues it or resolves the future immediately with a rejection.
  /// Never blocks.
  std::future<Response> submit(Request r);

  /// Idempotent: stop admissions, drain the queue, join workers.
  void shutdown();

  StatsSnapshot stats() const { return stats_.snapshot(); }
  std::size_t queue_depth() const { return queue_.size(); }
  const ServerConfig& config() const noexcept { return cfg_; }

  const std::shared_ptr<kvcache::SessionManager>& sessions() const noexcept {
    return cfg_.sessions;
  }

 private:
  void worker_loop();
  void dispatch(std::vector<Request>& batch);
  void dispatch_decode(std::vector<Request>& batch);
  void dispatch_pattern(std::vector<Request>& batch);
  std::uint64_t fingerprint_of(const std::shared_ptr<const Csr<float>>& mask);
  static void resolve(Request& r, ResponseStatus status);

  ServerConfig cfg_;
  RequestQueue queue_;
  DynamicBatcher batcher_;
  ServerStats stats_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;

  /// Fingerprint cache keyed by mask identity. Entries pin their mask
  /// (masks are architecture, not data — a deployment has a handful),
  /// so a recycled pointer can never alias a different mask. Capped:
  /// past kFpCacheCap distinct masks, submits hash uncached rather than
  /// grow the server without bound.
  static constexpr std::size_t kFpCacheCap = 64;
  std::mutex fp_mu_;
  std::map<const void*, std::pair<std::shared_ptr<const Csr<float>>, std::uint64_t>> fp_cache_;
};

}  // namespace gpa::serve
