#pragma once
// Serving request/response types. A Request is one attention call — the
// payload (Q, K, V), the mask it runs under, head geometry, options and
// an optional deadline. The server answers through a std::future so
// clients can be synchronous (closed-loop) or fire-and-collect
// (open-loop load generators) without different APIs.
//
// Payloads are shared_ptr<const RequestData> rather than owned matrices:
// a serving frontend hands the same tokenised prompt to retries and
// load generators re-use a payload pool, so the queue holds references,
// not copies. The output matrix IS owned (moved out to the client in
// the Response) and may be preallocated by the caller to make the
// steady-state loop allocation-free: the worker writes each item's
// kernel result straight into that buffer. (Callers that own whole
// Batch<T> vectors outright use core/batched's *_into entry points for
// the same no-realloc contract.)

#include <chrono>
#include <future>
#include <memory>
#include <string_view>
#include <utility>

#include "core/attention_options.hpp"
#include "core/batched.hpp"
#include "core/multihead.hpp"
#include "kvcache/mask_spec.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::serve {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

/// "No deadline": requests wait in the queue indefinitely.
inline constexpr TimePoint kNoDeadline = TimePoint::max();

/// Immutable request payload, shareable across requests.
struct RequestData {
  Matrix<float> q, k, v;
};

/// What the request asks the server to run.
///   Attention — one-shot attention over the carried Q/K/V and mask.
///   Decode    — one incremental token against a cached session: Q/K/V
///               are 1×d rows, the mask lives with the session, and the
///               kernel is SessionManager::decode_step (O(row-nnz)).
///   Pattern   — one-shot CAUSAL attention under an implicit/composed
///               pattern (kvcache::MaskSpec) whose causal row slices are
///               length-independent. Because each item dispatches at its
///               own true length, near-length pattern requests may share
///               a batch: admission keys them by a seq_len BUCKET
///               ceiling (BatchPolicy::seq_buckets) instead of the exact
///               length, with bit-exact per-item results (no padding).
enum class RequestKind : std::uint8_t { Attention, Decode, Pattern };

enum class ResponseStatus : std::uint8_t {
  Ok,                 ///< output holds the attention result
  RejectedQueueFull,  ///< admission control: queue at capacity
  RejectedDeadline,   ///< deadline passed before dispatch
  RejectedShutdown,   ///< server stopping; request not executed
  RejectedSession,    ///< decode: session unknown/evicted, or no manager
  InternalError,      ///< kernel raised; see server log
};

constexpr std::string_view status_name(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::RejectedQueueFull: return "rejected-queue-full";
    case ResponseStatus::RejectedDeadline: return "rejected-deadline";
    case ResponseStatus::RejectedShutdown: return "rejected-shutdown";
    case ResponseStatus::RejectedSession: return "rejected-session";
    case ResponseStatus::InternalError: return "internal-error";
  }
  return "?";
}

struct Response {
  ResponseStatus status = ResponseStatus::Ok;
  std::uint64_t id = 0;
  /// The attention output on Ok; on rejection, the (unwritten) buffer
  /// the request carried, returned so callers can recycle it.
  Matrix<float> output;
  double queue_us = 0.0;    ///< admission → dispatch
  double service_us = 0.0;  ///< dispatch → kernel done (whole batch)
  Index batch_size = 0;     ///< occupancy of the batch this request rode in
};

struct Request {
  RequestKind kind = RequestKind::Attention;
  std::shared_ptr<const RequestData> data;
  /// Attention only; decode requests carry no mask (the session owns it).
  std::shared_ptr<const Csr<float>> mask;
  /// Pattern only: the causal pattern the request runs under. Shared —
  /// a deployment has a handful of patterns, and requests batch iff
  /// their patterns fingerprint identically (same structural identity
  /// MaskTraversal gives the kernels).
  std::shared_ptr<const kvcache::MaskSpec> pattern;
  /// Decode only: the SessionManager session this token extends.
  std::uint64_t session_id = 0;
  /// Scheduling priority: higher pops first, FIFO within a priority
  /// level (see RequestQueue).
  int priority = 0;
  /// head_dim 0 means "one head over the full packed width".
  MultiHeadDims dims{1, 0};
  AttentionOptions opts{};
  TimePoint deadline = kNoDeadline;
  /// Optional preallocated output (resized at admission otherwise).
  Matrix<float> output;

  // --- set by the server at admission ---------------------------------
  std::uint64_t id = 0;
  BatchKey key{};
  TimePoint enqueue_time{};
  std::promise<Response> promise;
};

/// Convenience builder for the common owned-payload case.
inline Request make_request(Matrix<float> q, Matrix<float> k, Matrix<float> v,
                            std::shared_ptr<const Csr<float>> mask,
                            MultiHeadDims dims = {1, 0}) {
  Request r;
  auto data = std::make_shared<RequestData>();
  data->q = std::move(q);
  data->k = std::move(k);
  data->v = std::move(v);
  r.data = std::move(data);
  r.mask = std::move(mask);
  r.dims = dims;
  return r;
}

/// Convenience builder for a causal pattern request (bucket-batchable).
inline Request make_pattern_request(Matrix<float> q, Matrix<float> k, Matrix<float> v,
                                    std::shared_ptr<const kvcache::MaskSpec> pattern) {
  Request r;
  r.kind = RequestKind::Pattern;
  auto data = std::make_shared<RequestData>();
  data->q = std::move(q);
  data->k = std::move(k);
  data->v = std::move(v);
  r.data = std::move(data);
  r.pattern = std::move(pattern);
  return r;
}

/// Convenience builder for one decode token against a cached session.
inline Request make_decode_request(std::uint64_t session_id, Matrix<float> q_row,
                                   Matrix<float> k_row, Matrix<float> v_row) {
  Request r;
  r.kind = RequestKind::Decode;
  r.session_id = session_id;
  auto data = std::make_shared<RequestData>();
  data->q = std::move(q_row);
  data->k = std::move(k_row);
  data->v = std::move(v_row);
  r.data = std::move(data);
  return r;
}

}  // namespace gpa::serve
