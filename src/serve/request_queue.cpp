#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpa::serve {

RequestQueue::Push RequestQueue::try_push(Request& r) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Push::Closed;
    if (q_.size() >= capacity_) return Push::Full;
    q_.push_back(std::move(r));
  }
  // notify_all, not _one: a worker holding a partial batch waits on the
  // same condition variable, and a single notify could land on it even
  // when the new request belongs to an idle worker's next batch.
  cv_.notify_all();
  return Push::Ok;
}

int RequestQueue::effective_priority(const Request& r, TimePoint now) const {
  // kNoDeadline requests never age (TimePoint::max() minus now would
  // also overflow the duration subtraction).
  if (age_threshold_.count() > 0 && r.deadline != kNoDeadline &&
      r.deadline - now <= age_threshold_) {
    return r.priority + 1;
  }
  return r.priority;
}

void RequestQueue::collect_locked(const BatchKey& key, Index max_batch, TimePoint now,
                                  std::vector<Request>& batch, std::vector<Request>& expired) {
  for (auto it = q_.begin();
       it != q_.end() && static_cast<Index>(batch.size()) < max_batch;) {
    if (now >= it->deadline) {
      expired.push_back(std::move(*it));
      it = q_.erase(it);
    } else if (it->key == key) {
      batch.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
}

bool RequestQueue::pop_batch(Index max_batch, std::chrono::microseconds max_wait,
                             std::vector<Request>& batch, std::vector<Request>& expired) {
  GPA_CHECK(max_batch >= 1, "max_batch must be at least 1");
  batch.clear();
  expired.clear();
  std::unique_lock<std::mutex> lk(mu_);

  // Acquire a lead request: the oldest member of the highest priority
  // level present (deque order is arrival order, so the first maximum
  // found is the oldest — FIFO within a level, which is what keeps
  // equal-priority traffic starvation-free). Expired requests met
  // during the scan are swept out and handed back for rejection; if
  // the sweep empties the queue, deliver those before reporting closure.
  while (batch.empty()) {
    cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) {
      return !expired.empty();  // closed_ must hold here
    }
    // Sweep expired first, as a single compaction pass: per-element
    // erase would shift the tail once per expired request (O(n²) under
    // the queue mutex when a burst of deadlines lapses).
    const TimePoint now = Clock::now();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < q_.size(); ++i) {
      if (now >= q_[i].deadline) {
        expired.push_back(std::move(q_[i]));
      } else {
        if (keep != i) q_[keep] = std::move(q_[i]);
        ++keep;
      }
    }
    q_.resize(keep);
    // Aging evaluated at selection time: a request that sat long enough
    // for its deadline to close within the threshold competes one class
    // up from here on (first maximum found is still the oldest of its
    // effective class — FIFO within a level is preserved).
    std::size_t lead = q_.size();
    int lead_prio = 0;
    for (std::size_t i = 0; i < q_.size(); ++i) {
      const int prio = effective_priority(q_[i], now);
      if (lead == q_.size() || prio > lead_prio) {
        lead = i;
        lead_prio = prio;
      }
    }
    if (lead < q_.size()) {
      batch.push_back(std::move(q_[lead]));
      q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(lead));
    }
    // Everything scanned had expired: deliver those immediately rather
    // than sleeping on them (prompt rejection beats a stale future).
    if (batch.empty() && !expired.empty()) return true;
  }

  // Fill up with key-compatible requests; wait out the batching window
  // if the batch is short and time remains. Incompatible requests stay
  // queued for other workers (two masks never share a batch).
  const BatchKey key = batch.front().key;
  collect_locked(key, max_batch, Clock::now(), batch, expired);
  if (static_cast<Index>(batch.size()) < max_batch && max_wait.count() > 0) {
    const TimePoint window_end = Clock::now() + max_wait;
    while (static_cast<Index>(batch.size()) < max_batch && !closed_) {
      // Holding the batch must never cost a member its deadline: if the
      // tightest member deadline falls inside the window, dispatch now
      // (with service headroom) instead of gambling on arrivals.
      TimePoint earliest = TimePoint::max();
      for (const auto& m : batch) earliest = std::min(earliest, m.deadline);
      if (earliest <= window_end) break;
      const auto status = cv_.wait_until(lk, window_end);
      collect_locked(key, max_batch, Clock::now(), batch, expired);
      if (status == std::cv_status::timeout) break;
    }
    // Scheduling-delay safety net: a member whose deadline nevertheless
    // lapsed while we held the batch is shed, not served late with Ok.
    const TimePoint now = Clock::now();
    for (auto it = batch.begin(); it != batch.end();) {
      if (now >= it->deadline) {
        expired.push_back(std::move(*it));
        it = batch.erase(it);
      } else {
        ++it;
      }
    }
  }
  return true;
}

bool RequestQueue::try_pop_one(Request& r) {
  std::lock_guard<std::mutex> lk(mu_);
  if (q_.empty()) return false;
  r = std::move(q_.front());
  q_.pop_front();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

}  // namespace gpa::serve
